// Offline trace-replay invariant checker (obs/replay.h).
//
//   ./build/tools/trace_check TRACE.jsonl [MORE.jsonl ...] [--spans=S.json]
//
// Exit code 0 when every trace satisfies the protocol invariants
// (ψ-certification, quantum arithmetic, counter totals, wire-word
// accounting), 1 when any violation is found, 2 on usage errors.
//
// With --spans=S.json the Chrome Trace Event span file a runner wrote via
// --spans_out is checked too (obs/span.h CheckSpans): every span closed,
// children inside their parents, and — when exactly one trace file is
// given — the per-direction msg/datagram span word sums must equal the
// trace's replayed up/down word totals.
//
// --alerts additionally requires at least one AlertRaised event across
// the given traces (raise/clear pairing is always checked by the replay
// itself). Used by CI fixtures that must prove the health monitor fired.
//
// --tiers additionally requires every trace to be a tree-topology run
// whose aggregator tiers all closed their word ledgers (at least one
// TierEnd event, each certified bit-exactly against its tier's MsgSent
// sum, plus cross-tier flush conservation — all checked by the replay
// whenever tier events appear; the flag turns their absence into a
// failure). Used by CI tree fixtures.

#include <cstdio>
#include <string>
#include <vector>

#include "obs/replay.h"
#include "obs/span.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);
  const std::string spans_path = flags.GetString("spans", "");
  const bool require_alerts = flags.GetBool("alerts", false);
  const bool require_tiers = flags.GetBool("tiers", false);
  const std::vector<std::string>& traces = flags.positional();
  if (!flags.Validate("trace_check TRACE.jsonl [MORE.jsonl ...] "
                      "[--spans=S.json] [--alerts] [--tiers]") ||
      (traces.empty() && spans_path.empty())) {
    std::fprintf(stderr,
                 "usage: %s TRACE.jsonl [MORE.jsonl ...] [--spans=S.json] "
                 "[--alerts] [--tiers]\n",
                 argv[0]);
    return 2;
  }

  bool ok = true;
  int64_t up_words = -1;
  int64_t down_words = -1;
  int64_t alerts_raised = 0;
  for (const std::string& path : traces) {
    const fgm::ReplayReport report = fgm::CheckTraceFile(path);
    std::printf("%s: %s\n", path.c_str(), report.Summary().c_str());
    ok = ok && report.ok();
    // Spans instrument every link tier, so on tree runs the conservation
    // target is the root-tier RunEnd totals plus the certified TierEnd
    // ledgers.
    up_words = report.up_words + report.tier_up_words;
    down_words = report.down_words + report.tier_down_words;
    alerts_raised += report.alerts_raised;
    if (require_tiers && report.tier_ends == 0) {
      std::printf("FAIL: --tiers given but %s has no certified tier "
                  "ledgers (flat run?)\n",
                  path.c_str());
      ok = false;
    }
  }
  if (require_alerts && alerts_raised == 0) {
    std::printf("FAIL: --alerts given but no AlertRaised event found\n");
    ok = false;
  }

  if (!spans_path.empty()) {
    std::string error;
    std::vector<fgm::ParsedSpan> spans;
    if (!fgm::ReadSpanFile(spans_path, &spans, &error)) {
      std::fprintf(stderr, "%s: %s\n", spans_path.c_str(), error.c_str());
      return 2;
    }
    // Word-sum conservation only pins down a single run's traffic.
    const bool check_words = traces.size() == 1;
    fgm::SpanCheckStats stats;
    const std::vector<std::string> issues =
        fgm::CheckSpans(spans, check_words ? up_words : -1,
                        check_words ? down_words : -1, &stats);
    std::printf(
        "%s: spans=%lld open=%lld up_words=%lld down_words=%lld %s\n",
        spans_path.c_str(), static_cast<long long>(stats.spans),
        static_cast<long long>(stats.open),
        static_cast<long long>(stats.msg_up_words),
        static_cast<long long>(stats.msg_down_words),
        issues.empty() ? "OK" : "FAIL");
    for (const std::string& issue : issues) {
      std::printf("  %s\n", issue.c_str());
    }
    ok = ok && issues.empty();
  }
  return ok ? 0 : 1;
}
