// Offline trace-replay invariant checker (obs/replay.h).
//
//   ./build/tools/trace_check TRACE.jsonl [MORE.jsonl ...]
//
// Exit code 0 when every trace satisfies the protocol invariants
// (ψ-certification, quantum arithmetic, counter totals, wire-word
// accounting), 1 when any violation is found, 2 on usage errors.

#include <cstdio>

#include "obs/replay.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s TRACE.jsonl [MORE.jsonl ...]\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const fgm::ReplayReport report = fgm::CheckTraceFile(argv[i]);
    std::printf("%s: %s\n", argv[i], report.Summary().c_str());
    ok = ok && report.ok();
  }
  return ok ? 0 : 1;
}
