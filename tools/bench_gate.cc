// CI bench regression gate.
//
//   ./build/tools/bench_gate --baseline=bench/baselines/BENCH_x.json
//       --current=BENCH_x.json [--tol=0.02] [--time_tol=0]
//       [--tol_field=name=T[,name=T...]] [--verbose]
//
// Diffs two BENCH_*.json reports (bench/bench_common.h JsonReport format:
// {"bench": name, "runs": [{"x": label, ...fields...}], "scalars": {...}}).
// Runs are matched by their "x" label; every numeric field present in the
// baseline must exist in the current report and stay within the relative
// tolerance; string fields (protocol, query) must match exactly.
//
// Machine-dependent fields — name contains "wall", "second", "speedup",
// "per_sec", "ns_per" or "host_" (e.g. the host_cores scalar) — are
// skipped unless --time_tol > 0 is given, in which case they are gated
// at that (looser) tolerance. Everything else (rounds, words, windows,
// barriers, replayed records...) is deterministic for a fixed seed and
// gated at --tol; --tol=0 demands bit-exact equality.
//
// --tol_field=name=T[,name=T...] overrides the tolerance for individual
// fields by exact name, taking precedence over both --tol and the
// time-like skip — so one noisy field can be loosened (or a time-like
// field force-gated) without loosening the bit-exact --tol=0 gate on
// everything else.
//
// --min_field=label.field=V[;label.field=V...] gates the CURRENT report
// against an absolute floor, independent of the baseline: the run with
// x-label `label` must exist and its `field` must be >= V. The list is
// ';'-separated because run labels contain commas
// (e.g. --min_field="k=8,threads=8.speedup=3.0"). This is how CI
// enforces parallel speedup on multi-core runners while the committed
// baseline stays honest about the machine that produced it.
//
// --update inverts the gate: instead of diffing, it validates the
// current report (parseable JSON with a "bench" name) and copies its
// bytes over the baseline path, creating it if absent. This is the one
// sanctioned way to refresh bench/baselines/ after an intentional
// traffic change — the diff shows up in review as a plain file edit.
//
// Exit: 0 = within tolerance, 1 = regression / missing data,
// 2 = usage or parse error.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/flags.h"

namespace {

bool ReadJsonFile(const std::string& path, fgm::JsonNode* out,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return fgm::ParseJson(text.str(), out, error);
}

/// Machine-dependent fields: wall-clock measurements plus host facts
/// (host_cores). Skipped unless --time_tol force-gates them.
bool IsTimeLike(const std::string& name) {
  for (const char* marker :
       {"wall", "second", "speedup", "per_sec", "ns_per", "host_"}) {
    if (name.find(marker) != std::string::npos) return true;
  }
  return false;
}

/// Parses "name=T[,name=T...]" into per-field tolerance overrides.
/// Returns false on an empty name or a non-numeric / negative value.
bool ParseFieldTols(const std::string& spec,
                    std::map<std::string, double>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const size_t eq = item.find('=');
    if (eq == 0 || eq == std::string::npos) return false;
    const std::string name = item.substr(0, eq);
    char* end = nullptr;
    const double value = std::strtod(item.c_str() + eq + 1, &end);
    if (end == nullptr || *end != '\0' || value < 0.0) return false;
    (*out)[name] = value;
    pos = comma + 1;
  }
  return true;
}

/// One absolute-minimum rule from --min_field.
struct MinRule {
  std::string label;  ///< run x-label ("k=8,threads=8")
  std::string field;  ///< numeric field inside the run ("speedup")
  double value;       ///< required minimum (inclusive)
};

/// Parses "label.field=V[;label.field=V...]" (';'-separated — labels
/// contain commas). The field is the segment between the last '.' before
/// the last '=' and that '='; field names contain neither.
bool ParseFieldMins(const std::string& spec, std::vector<MinRule>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string item = spec.substr(pos, semi - pos);
    const size_t eq = item.rfind('=');
    if (eq == std::string::npos || eq + 1 >= item.size()) return false;
    const size_t dot = item.rfind('.', eq);
    if (dot == std::string::npos || dot == 0) return false;
    MinRule rule;
    rule.label = item.substr(0, dot);
    rule.field = item.substr(dot + 1, eq - dot - 1);
    if (rule.field.empty()) return false;
    char* end = nullptr;
    rule.value = std::strtod(item.c_str() + eq + 1, &end);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(rule);
    pos = semi + 1;
  }
  return true;
}

struct Gate {
  double tol = 0.02;
  double time_tol = 0.0;  ///< 0 = skip time-like fields entirely
  /// Exact-name overrides (--tol_field); win over tol AND the
  /// time-like skip.
  std::map<std::string, double> field_tols;
  bool verbose = false;
  int64_t compared = 0;
  int64_t skipped = 0;
  std::vector<std::string> failures;

  void Fail(const std::string& what) { failures.push_back(what); }

  /// Relative comparison: |cur - base| <= tol * max(|base|, 1e-12).
  void Number(const std::string& where, const std::string& name, double base,
              double cur) {
    double limit = tol;
    const auto it = field_tols.find(name);
    if (it != field_tols.end()) {
      limit = it->second;
    } else if (IsTimeLike(name)) {
      if (time_tol <= 0.0) {
        ++skipped;
        return;
      }
      limit = time_tol;
    }
    ++compared;
    const double scale = std::max(std::fabs(base), 1e-12);
    const double rel = std::fabs(cur - base) / scale;
    const bool ok = rel <= limit;
    if (verbose || !ok) {
      std::printf("%s %s.%s: base=%.6g cur=%.6g rel=%.4g (tol %.4g)\n",
                  ok ? "ok  " : "FAIL", where.c_str(), name.c_str(), base,
                  cur, rel, limit);
    }
    if (!ok) {
      Fail(where + "." + name + " drifted beyond tolerance");
    }
  }

  void CompareMembers(const std::string& where, const fgm::JsonNode& base,
                      const fgm::JsonNode& cur) {
    for (const auto& [name, bval] : base.members) {
      const fgm::JsonNode* cval = cur.Find(name);
      if (cval == nullptr) {
        Fail(where + "." + name + " missing from current report");
        continue;
      }
      if (bval.type == fgm::JsonNode::Type::kNumber) {
        if (cval->type != fgm::JsonNode::Type::kNumber) {
          Fail(where + "." + name + " is no longer numeric");
          continue;
        }
        Number(where, name, bval.AsDouble(), cval->AsDouble());
      } else if (bval.type == fgm::JsonNode::Type::kString) {
        ++compared;
        if (cval->type != fgm::JsonNode::Type::kString ||
            cval->str != bval.str) {
          Fail(where + "." + name + ": \"" + bval.str + "\" != \"" +
               (cval->type == fgm::JsonNode::Type::kString ? cval->str
                                                           : "<non-string>") +
               "\"");
        }
      }
      // Nested objects/arrays inside a run are not part of the format.
    }
  }
};

const fgm::JsonNode* FindRun(const fgm::JsonNode& runs,
                             const std::string& label) {
  for (const fgm::JsonNode& run : runs.items) {
    const fgm::JsonNode* x = run.Find("x");
    if (x != nullptr && x->type == fgm::JsonNode::Type::kString &&
        x->str == label) {
      return &run;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);
  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string current_path = flags.GetString("current", "");
  const bool update = flags.GetBool("update", false);
  Gate gate;
  gate.tol = flags.GetDouble("tol", 0.02);
  gate.time_tol = flags.GetDouble("time_tol", 0.0);
  gate.verbose = flags.GetBool("verbose", false);
  const std::string tol_field = flags.GetString("tol_field", "");
  bool tol_field_ok = true;
  if (!tol_field.empty()) {
    tol_field_ok = ParseFieldTols(tol_field, &gate.field_tols);
  }
  const std::string min_field = flags.GetString("min_field", "");
  std::vector<MinRule> min_rules;
  bool min_field_ok = true;
  if (!min_field.empty()) {
    min_field_ok = ParseFieldMins(min_field, &min_rules);
  }
  const std::vector<std::string> unknown = flags.Unparsed();
  if (!unknown.empty() || baseline_path.empty() || current_path.empty() ||
      !tol_field_ok || !min_field_ok) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    if (!tol_field_ok) {
      std::fprintf(stderr, "bad --tol_field=%s (want name=T[,name=T...])\n",
                   tol_field.c_str());
    }
    if (!min_field_ok) {
      std::fprintf(stderr,
                   "bad --min_field=%s (want label.field=V[;label.field=V])\n",
                   min_field.c_str());
    }
    std::fprintf(stderr,
                 "usage: bench_gate --baseline=BENCH_x.json "
                 "--current=BENCH_x.json [--tol=0.02] [--time_tol=0] "
                 "[--tol_field=name=T[,name=T...]] "
                 "[--min_field=label.field=V[;...]] [--update] [--verbose]\n");
    return 2;
  }

  fgm::JsonNode baseline, current;
  std::string error;

  if (update) {
    // Refresh mode: validate the current report, then copy its bytes to
    // the baseline path verbatim (no reformatting — the committed file
    // stays byte-identical to what the bench wrote).
    if (!ReadJsonFile(current_path, &current, &error)) {
      std::fprintf(stderr, "bench_gate: %s: %s\n", current_path.c_str(),
                   error.c_str());
      return 2;
    }
    const fgm::JsonNode* name = current.Find("bench");
    if (name == nullptr || name->type != fgm::JsonNode::Type::kString ||
        name->str.empty()) {
      std::fprintf(stderr, "bench_gate: %s: missing \"bench\" name\n",
                   current_path.c_str());
      return 2;
    }
    std::ifstream in(current_path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_gate: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    out << bytes.str();
    out.close();
    if (!out) {
      std::fprintf(stderr, "bench_gate: write to %s failed\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("bench_gate %s: baseline %s updated from %s (%zu bytes)\n",
                name->str.c_str(), baseline_path.c_str(),
                current_path.c_str(), bytes.str().size());
    return 0;
  }

  if (!ReadJsonFile(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "bench_gate: %s: %s\n", baseline_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (!ReadJsonFile(current_path, &current, &error)) {
    std::fprintf(stderr, "bench_gate: %s: %s\n", current_path.c_str(),
                 error.c_str());
    return 2;
  }

  const fgm::JsonNode* base_name = baseline.Find("bench");
  const fgm::JsonNode* cur_name = current.Find("bench");
  if (base_name == nullptr || cur_name == nullptr ||
      base_name->str != cur_name->str) {
    std::fprintf(stderr, "bench_gate: bench name mismatch (\"%s\" vs \"%s\")\n",
                 base_name != nullptr ? base_name->str.c_str() : "?",
                 cur_name != nullptr ? cur_name->str.c_str() : "?");
    return 1;
  }

  const fgm::JsonNode* base_runs = baseline.Find("runs");
  const fgm::JsonNode* cur_runs = current.Find("runs");
  if (base_runs != nullptr && cur_runs != nullptr) {
    for (const fgm::JsonNode& run : base_runs->items) {
      const fgm::JsonNode* x = run.Find("x");
      const std::string label =
          x != nullptr && x->type == fgm::JsonNode::Type::kString ? x->str
                                                                  : "?";
      const fgm::JsonNode* cur_run = FindRun(*cur_runs, label);
      if (cur_run == nullptr) {
        gate.Fail("run \"" + label + "\" missing from current report");
        continue;
      }
      gate.CompareMembers("run[" + label + "]", run, *cur_run);
    }
  } else if (base_runs != nullptr) {
    gate.Fail("current report has no runs array");
  }

  // Absolute floors on the current report (--min_field): independent of
  // the baseline, so a CI runner can demand speedup the baseline machine
  // could not deliver.
  for (const MinRule& rule : min_rules) {
    ++gate.compared;
    const std::string where = "run[" + rule.label + "]." + rule.field;
    const fgm::JsonNode* run =
        cur_runs != nullptr ? FindRun(*cur_runs, rule.label) : nullptr;
    if (run == nullptr) {
      gate.Fail("min rule: run \"" + rule.label +
                "\" missing from current report");
      continue;
    }
    const fgm::JsonNode* field = run->Find(rule.field);
    if (field == nullptr || field->type != fgm::JsonNode::Type::kNumber) {
      gate.Fail("min rule: " + where + " missing or non-numeric");
      continue;
    }
    const double value = field->AsDouble();
    const bool ok = value >= rule.value;
    if (gate.verbose || !ok) {
      std::printf("%s %s: cur=%.6g (min %.6g)\n", ok ? "ok  " : "FAIL",
                  where.c_str(), value, rule.value);
    }
    if (!ok) gate.Fail(where + " below required minimum");
  }

  const fgm::JsonNode* base_scalars = baseline.Find("scalars");
  const fgm::JsonNode* cur_scalars = current.Find("scalars");
  if (base_scalars != nullptr) {
    if (cur_scalars == nullptr) {
      gate.Fail("current report has no scalars object");
    } else {
      gate.CompareMembers("scalars", *base_scalars, *cur_scalars);
    }
  }

  std::printf(
      "bench_gate %s: %lld comparisons, %lld time-like skipped, %zu "
      "failures\n",
      base_name->str.c_str(), static_cast<long long>(gate.compared),
      static_cast<long long>(gate.skipped), gate.failures.size());
  for (const std::string& f : gate.failures) {
    std::printf("FAIL: %s\n", f.c_str());
  }
  return gate.failures.empty() ? 0 : 1;
}
