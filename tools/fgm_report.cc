// Offline run-report analyzer.
//
//   ./build/tools/fgm_report --trace=trace.jsonl [--metrics=metrics.json]
//       [--timeseries=ts.json] [--spans=spans.json]
//       [--json_out=report.json] [--max_rounds=24] [--check=true]
//
// Renders the observability triple a runner invocation writes
// (--trace_out / --metrics_out / --timeseries_out) into a human-readable
// run report: per-round communication table, site-skew summary, FGM/O
// optimizer audit (predicted vs actual gain per round), parallel
// speculation efficiency, and — for runs over the simulated network
// (src/sim) — delivery/drop/retransmit/resync counters, with a flag on
// any round whose in-flight backlog exceeded the 3k+1-word subround
// budget. With --json_out the same report is written as machine-readable
// JSON.
//
// The three files describe one run three ways, so the report cross-checks
// them against each other bit-exactly (the trace_check discipline):
//
//  * the trace replays clean through obs/replay.h;
//  * per-round MsgSent word sums re-add to the RunEnd traffic totals;
//  * each PlanOutcome's words/updates/actual_gain match the per-round sums;
//  * metrics.json's run totals and words_by_kind equal the trace's;
//  * every time-series round sample's cumulative and per-round word counts
//    (total and per message kind), subround count and plan-audit numbers
//    equal the values recomputed from the trace.
//
// --spans adds the causal-span file (--spans_out, obs/span.h) as a fourth
// view: the span invariants must hold (every span closed, children inside
// their parents) and the per-direction msg/datagram span word sums must
// equal the trace's RunEnd totals. The report then prints a critical-path
// summary: the run's time split (network / speculate / barrier / replay /
// commit) and, per subround, which site's RPC or datagram gated progress
// — aggregated into a top-N straggler table with retransmit counts.
//
// Exit: 0 = all checks pass, 1 = a cross-check failed (suppress with
// --check=false), 2 = usage / file / parse error.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.h"
#include "obs/json.h"
#include "obs/replay.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

constexpr int kKinds = static_cast<int>(fgm::MsgKind::kKindCount);

/// Schema version of the --json_out document. Bump on any
/// backwards-incompatible change to the report layout.
/// v2: added the "speculation" object (parallel-runner efficiency:
/// windows/barriers/soft_commits, committed/wasted/replayed tallies and
/// the derived waste ratio, replayed-per-window and barrier rate).
/// v3: added the "alerts" object (health-monitor AlertRaised/AlertCleared
/// tallies, per-rule counts and the full event list).
/// v4: added the tree-topology fields for hierarchical runs (src/hier):
/// top-level "topology"/"leaves" and the "tiers" array (per-tier
/// endpoints, mean fan-in, up/down words and messages, drift flushes,
/// aggregator local polls and the composed-ψ range each tier reported).
constexpr int64_t kReportSchemaVersion = 4;

std::string Format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// Everything the report recomputes for one protocol round. MsgSent
/// events are attributed to the round whose RoundStart most recently
/// preceded them in the stream; the plan-audit events carry their round
/// explicitly.
struct RoundStats {
  int64_t round = 0;
  int64_t msgs = 0;
  int64_t up_words = 0;
  int64_t down_words = 0;
  std::array<int64_t, kKinds> words_by_kind{};
  int64_t subrounds = 0;
  int64_t rebalances = 0;
  int64_t net_dropped_words = 0;  ///< sim MsgDropped words in this round
  int64_t resyncs = 0;            ///< sim SiteResync events in this round
  double psi_start = 0.0;

  bool has_plan = false;  ///< saw PlanChosen
  int64_t full_sites = 0;
  double pred_len = 0.0;
  double pred_gain = 0.0;
  double pred_rate = 0.0;

  bool has_outcome = false;  ///< saw PlanOutcome
  int64_t updates = 0;
  int64_t outcome_words = 0;
  double outcome_pred_gain = 0.0;
  double actual_gain = 0.0;

  int64_t words() const { return up_words + down_words; }
};

struct SiteStats {
  int64_t flush_words = 0;
  int64_t flush_updates = 0;
  int64_t flushes = 0;
  int64_t increments = 0;
};

/// One aggregator tier of a tree-topology run (tier 1 = just below the
/// root). Words/messages come from the tier's TierEnd ledger; flushes,
/// local polls and the composed-ψ range are tallied from the individual
/// tier-stamped events.
struct TierStats {
  int tier = 0;
  int endpoints = 0;  ///< child endpoints of this tier's links
  int64_t up_words = 0, down_words = 0;
  int64_t up_msgs = 0, down_msgs = 0;
  int64_t flushes = 0;
  int64_t flush_words = 0;
  int64_t local_polls = 0;
  bool has_psi = false;
  double min_psi = 0.0;  ///< most negative polled subtree sum
  double max_psi = 0.0;  ///< closest-to-zero polled subtree sum
};

/// One health-monitor alert transition (obs/health.h), as traced.
struct AlertEvent {
  bool raised = false;  ///< true = AlertRaised, false = AlertCleared
  std::string rule;
  int site = -1;  ///< -1 = run-global rule
  int64_t round = 0;
  double value = 0.0;
  double threshold = 0.0;
  std::string reason;
};

/// The whole trace, re-aggregated. rounds[0] is a pre-round bucket for
/// messages sent before the first RoundStart (empty for FGM; CENTRAL has
/// no rounds at all); rounds[r] is protocol round r.
struct TraceSummary {
  std::string protocol = "?";
  int k = 0;
  int64_t lines = 0;
  std::vector<RoundStats> rounds;
  std::vector<SiteStats> sites;

  // Simulated-network tallies (src/sim); all zero on synchronous runs and
  // in the simulator's null mode (which suppresses network events).
  int64_t net_delivered_msgs = 0;
  int64_t net_delivered_words = 0;
  int64_t net_dropped_msgs = 0;
  int64_t net_dropped_words = 0;
  int64_t net_site_downs = 0;
  int64_t net_resyncs = 0;
  int64_t net_resync_words = 0;

  // Health-monitor alert transitions (obs/health.h), in trace order.
  std::vector<AlertEvent> alerts;
  int64_t alerts_raised = 0;
  int64_t alerts_cleared = 0;

  // Tree-topology runs (src/hier): the RunStart spec string ("tree:16"),
  // the leaf count, and one TierStats per aggregator tier. All empty on
  // flat runs.
  std::string topology;
  int64_t leaves = 0;
  std::vector<TierStats> tiers;

  bool has_tiers() const { return !tiers.empty(); }

  bool has_net() const {
    return net_delivered_msgs + net_dropped_msgs + net_site_downs +
               net_resyncs >
           0;
  }

  bool saw_run_end = false;
  int64_t run_events = 0;  ///< RunEnd's count: total trace events emitted
  int64_t run_up_words = 0;
  int64_t run_down_words = 0;
  int64_t run_up_msgs = 0;
  int64_t run_down_msgs = 0;

  RoundStats& Round(int64_t r) {
    if (r < 0) r = 0;
    if (static_cast<size_t>(r) >= rounds.size()) {
      const size_t old = rounds.size();
      rounds.resize(static_cast<size_t>(r) + 1);
      for (size_t i = old; i < rounds.size(); ++i) {
        rounds[i].round = static_cast<int64_t>(i);
      }
    }
    return rounds[static_cast<size_t>(r)];
  }

  SiteStats& Site(int site) {
    if (site < 0) site = 0;
    if (static_cast<size_t>(site) >= sites.size()) {
      sites.resize(static_cast<size_t>(site) + 1);
    }
    return sites[static_cast<size_t>(site)];
  }

  TierStats& Tier(int tier) {
    if (tier < 1) tier = 1;
    if (static_cast<size_t>(tier) > tiers.size()) {
      const size_t old = tiers.size();
      tiers.resize(static_cast<size_t>(tier));
      for (size_t i = old; i < tiers.size(); ++i) {
        tiers[i].tier = static_cast<int>(i) + 1;
      }
    }
    return tiers[static_cast<size_t>(tier) - 1];
  }

  /// Completed-round count = highest round number seen.
  int64_t last_round() const {
    return rounds.empty() ? 0 : rounds.back().round;
  }
};

/// Maps a MsgSent label back to its MsgKind slot; -1 for unknown labels.
int KindIndex(const char* label) {
  if (label == nullptr) return -1;
  for (int i = 0; i < kKinds; ++i) {
    if (std::strcmp(label, fgm::MsgKindName(static_cast<fgm::MsgKind>(i))) ==
        0) {
      return i;
    }
  }
  return -1;
}

bool ReadTrace(const std::string& path, TraceSummary* out,
               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string line;
  int64_t current_round = 0;  // bucket 0 until the first RoundStart
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    fgm::TraceEvent e;
    std::string parse_error;
    if (!fgm::ParseTraceEventJson(line, &e, &parse_error)) {
      *error = Format("line %lld: %s", static_cast<long long>(out->lines + 1),
                      parse_error.c_str());
      return false;
    }
    ++out->lines;
    // Tier-stamped events (src/hier aggregator tiers) never touch the flat
    // per-round/per-site tables; they only feed the tier tallies. This
    // mirrors the replay checker's routing (obs/replay.cc).
    if (e.tier != 0) {
      TierStats& t = out->Tier(e.tier);
      switch (e.kind) {
        case fgm::TraceEventKind::kSubroundEnd: {
          // An aggregator's local poll: e.psi is the polled subtree sum.
          ++t.local_polls;
          if (!t.has_psi || e.psi < t.min_psi) t.min_psi = e.psi;
          if (!t.has_psi || e.psi > t.max_psi) t.max_psi = e.psi;
          t.has_psi = true;
          break;
        }
        case fgm::TraceEventKind::kDriftFlush:
          ++t.flushes;
          t.flush_words += e.words;
          break;
        case fgm::TraceEventKind::kTierEnd:
          t.endpoints = e.k;
          t.up_words = e.up_words;
          t.down_words = e.down_words;
          t.up_msgs = e.up_msgs;
          t.down_msgs = e.down_msgs;
          break;
        default:
          break;  // kMsgSent etc. already summed by the TierEnd ledger
      }
      continue;
    }
    switch (e.kind) {
      case fgm::TraceEventKind::kRunStart:
        out->protocol = e.label != nullptr ? e.label : "?";
        out->k = e.k;
        if (e.reason != nullptr) {
          out->topology = e.reason;
          out->leaves = e.counter;
        }
        break;
      case fgm::TraceEventKind::kRoundStart: {
        current_round = e.round;
        out->Round(e.round).psi_start = e.psi;
        break;
      }
      case fgm::TraceEventKind::kSubroundStart:
        ++out->Round(e.round).subrounds;
        break;
      case fgm::TraceEventKind::kSubroundEnd:
        break;
      case fgm::TraceEventKind::kIncrementMsg:
        ++out->Site(e.site).increments;
        break;
      case fgm::TraceEventKind::kDriftFlush: {
        SiteStats& s = out->Site(e.site);
        ++s.flushes;
        s.flush_words += e.words;
        s.flush_updates += e.count;
        break;
      }
      case fgm::TraceEventKind::kRebalance:
        ++out->Round(e.round).rebalances;
        break;
      case fgm::TraceEventKind::kThresholdCross:
        break;
      case fgm::TraceEventKind::kMsgSent: {
        RoundStats& r = out->Round(current_round);
        ++r.msgs;
        if (e.dir > 0) {
          r.up_words += e.words;
        } else {
          r.down_words += e.words;
        }
        const int kind = KindIndex(e.label);
        if (kind >= 0) r.words_by_kind[static_cast<size_t>(kind)] += e.words;
        break;
      }
      case fgm::TraceEventKind::kPlanChosen: {
        RoundStats& r = out->Round(e.round);
        r.has_plan = true;
        r.full_sites = e.counter;
        r.pred_len = e.pred_len;
        r.pred_gain = e.pred_gain;
        r.pred_rate = e.pred_rate;
        break;
      }
      case fgm::TraceEventKind::kPlanSite:
        break;
      case fgm::TraceEventKind::kPlanOutcome: {
        RoundStats& r = out->Round(e.round);
        r.has_outcome = true;
        r.updates = e.count;
        r.outcome_words = e.words;
        r.outcome_pred_gain = e.pred_gain;
        r.actual_gain = e.actual_gain;
        break;
      }
      case fgm::TraceEventKind::kMsgDelivered:
        ++out->net_delivered_msgs;
        out->net_delivered_words += e.words;
        break;
      case fgm::TraceEventKind::kMsgDropped:
        ++out->net_dropped_msgs;
        out->net_dropped_words += e.words;
        out->Round(current_round).net_dropped_words += e.words;
        break;
      case fgm::TraceEventKind::kSiteDown:
        ++out->net_site_downs;
        break;
      case fgm::TraceEventKind::kSiteResync:
        ++out->net_resyncs;
        out->net_resync_words += e.words;
        ++out->Round(e.round).resyncs;
        break;
      case fgm::TraceEventKind::kAlertRaised:
      case fgm::TraceEventKind::kAlertCleared: {
        AlertEvent a;
        a.raised = e.kind == fgm::TraceEventKind::kAlertRaised;
        a.rule = e.label != nullptr ? e.label : "?";
        a.site = e.site;
        a.round = e.round;
        a.value = e.value;
        a.threshold = e.theta;
        a.reason = e.reason != nullptr ? e.reason : "";
        out->alerts.push_back(a);
        if (a.raised) {
          ++out->alerts_raised;
        } else {
          ++out->alerts_cleared;
        }
        break;
      }
      case fgm::TraceEventKind::kRunEnd:
        out->saw_run_end = true;
        out->run_events = e.count;
        out->run_up_words = e.up_words;
        out->run_down_words = e.down_words;
        out->run_up_msgs = e.up_msgs;
        out->run_down_msgs = e.down_msgs;
        break;
      case fgm::TraceEventKind::kTierEnd:
        break;  // unreachable in valid traces: TierEnd is always tier-stamped
      case fgm::TraceEventKind::kKindCount:
        break;
    }
  }
  if (out->rounds.empty()) out->Round(0);
  return true;
}

bool ReadJsonFile(const std::string& path, fgm::JsonNode* out,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return fgm::ParseJson(text.str(), out, error);
}

/// Collects cross-check failures; every Check* helper appends here.
struct Checker {
  int64_t performed = 0;
  std::vector<std::string> failures;

  void Expect(bool ok, const std::string& what) {
    ++performed;
    if (!ok) failures.push_back(what);
  }
  void ExpectEqInt(int64_t got, int64_t want, const std::string& what) {
    Expect(got == want,
           Format("%s: %lld != %lld", what.c_str(),
                  static_cast<long long>(got), static_cast<long long>(want)));
  }
  void ExpectEqDouble(double got, double want, const std::string& what) {
    // Bit-exact by design: both sides round-trip through %.17g.
    Expect(got == want || (std::isnan(got) && std::isnan(want)),
           Format("%s: %.17g != %.17g", what.c_str(), got, want));
  }
  bool ok() const { return failures.empty(); }
};

/// Trace-internal checks: the per-round ledger must re-add to the RunEnd
/// totals, and every PlanOutcome must restate its round's sums.
void CheckTraceInternal(const TraceSummary& t, Checker* c) {
  c->Expect(t.saw_run_end, "trace has no RunEnd event");
  int64_t up = 0, down = 0, msgs = 0;
  for (const RoundStats& r : t.rounds) {
    up += r.up_words;
    down += r.down_words;
    msgs += r.msgs;
  }
  if (t.saw_run_end) {
    c->ExpectEqInt(up, t.run_up_words, "sum of per-round upstream words");
    c->ExpectEqInt(down, t.run_down_words,
                   "sum of per-round downstream words");
    c->ExpectEqInt(msgs, t.run_up_msgs + t.run_down_msgs,
                   "sum of per-round message counts");
  }
  for (const RoundStats& r : t.rounds) {
    if (!r.has_outcome) continue;
    const std::string tag = Format("round %lld", (long long)r.round);
    c->ExpectEqInt(r.outcome_words, r.words(),
                   tag + " PlanOutcome words vs summed MsgSent words");
    c->ExpectEqDouble(r.actual_gain,
                      static_cast<double>(r.updates) -
                          static_cast<double>(r.outcome_words),
                      tag + " PlanOutcome actual_gain vs updates - words");
    if (r.has_plan) {
      c->ExpectEqDouble(r.outcome_pred_gain, r.pred_gain,
                        tag + " PlanOutcome pred_gain vs PlanChosen");
    }
  }
}

/// metrics.json carries the same run totals the trace's RunEnd does.
void CheckMetrics(const TraceSummary& t, const fgm::JsonNode& m, Checker* c) {
  const fgm::JsonNode* run = m.Find("run");
  c->Expect(run != nullptr, "metrics.json has no \"run\" object");
  if (run == nullptr) return;
  const fgm::JsonNode* total = run->Find("total_words");
  c->Expect(total != nullptr, "metrics.json run has no total_words");
  if (total != nullptr) {
    c->ExpectEqInt(total->AsInt(), t.run_up_words + t.run_down_words,
                   "metrics run.total_words vs trace RunEnd");
  }
  const fgm::JsonNode* rounds = run->Find("rounds");
  if (rounds != nullptr && t.last_round() > 0) {
    c->ExpectEqInt(rounds->AsInt(), t.last_round(),
                   "metrics run.rounds vs trace RoundStart count");
  }
  // Simulated-network runs: metrics.json's "net" section (SimNetStats)
  // must re-state the trace's delivery/drop/fault tallies exactly. Null
  // mode suppresses network events, so only compare when the trace has
  // them.
  const fgm::JsonNode* net = m.Find("net");
  if (net != nullptr && t.has_net()) {
    auto net_int = [&](const char* name) {
      const fgm::JsonNode* v = net->Find(name);
      return v != nullptr ? v->AsInt() : -1;
    };
    c->ExpectEqInt(net_int("delivered_msgs"), t.net_delivered_msgs,
                   "metrics net.delivered_msgs vs trace MsgDelivered count");
    c->ExpectEqInt(net_int("delivered_words"), t.net_delivered_words,
                   "metrics net.delivered_words vs trace MsgDelivered words");
    c->ExpectEqInt(net_int("dropped_msgs"), t.net_dropped_msgs,
                   "metrics net.dropped_msgs vs trace MsgDropped count");
    c->ExpectEqInt(net_int("dropped_words"), t.net_dropped_words,
                   "metrics net.dropped_words vs trace MsgDropped words");
    c->ExpectEqInt(net_int("site_downs"), t.net_site_downs,
                   "metrics net.site_downs vs trace SiteDown count");
    c->ExpectEqInt(net_int("resyncs"), t.net_resyncs,
                   "metrics net.resyncs vs trace SiteResync count");
  }
  const fgm::JsonNode* by_kind = m.Find("words_by_kind");
  c->Expect(by_kind != nullptr, "metrics.json has no words_by_kind");
  if (by_kind != nullptr) {
    for (int i = 0; i < kKinds; ++i) {
      const char* name = fgm::MsgKindName(static_cast<fgm::MsgKind>(i));
      int64_t trace_sum = 0;
      for (const RoundStats& r : t.rounds) {
        trace_sum += r.words_by_kind[static_cast<size_t>(i)];
      }
      const fgm::JsonNode* v = by_kind->Find(name);
      c->Expect(v != nullptr,
                Format("metrics words_by_kind missing \"%s\"", name));
      if (v != nullptr) {
        c->ExpectEqInt(v->AsInt(), trace_sum,
                       Format("metrics words_by_kind[%s] vs trace", name));
      }
    }
  }
}

/// Every retained round sample must restate the trace's per-round and
/// cumulative ledgers bit-exactly (same booking instants by construction).
void CheckTimeSeries(const TraceSummary& t, const fgm::JsonNode& ts,
                     Checker* c, int64_t* round_samples,
                     int64_t* interval_samples) {
  const fgm::JsonNode* samples = ts.Find("samples");
  c->Expect(samples != nullptr && samples->type == fgm::JsonNode::Type::kArray,
            "timeseries has no samples array");
  if (samples == nullptr) return;

  // Cumulative word prefix sums per round, matching the protocol's booking
  // instants (prefix[r] = words shipped through the end of round r).
  const size_t n = t.rounds.size();
  std::vector<int64_t> prefix_words(n, 0);
  std::vector<std::array<int64_t, kKinds>> prefix_kind(n);
  std::vector<int64_t> prefix_subrounds(n, 0);
  int64_t acc = 0, acc_sub = 0;
  std::array<int64_t, kKinds> acc_kind{};
  for (size_t r = 0; r < n; ++r) {
    acc += t.rounds[r].words();
    acc_sub += t.rounds[r].subrounds;
    for (int i = 0; i < kKinds; ++i) {
      acc_kind[static_cast<size_t>(i)] +=
          t.rounds[r].words_by_kind[static_cast<size_t>(i)];
    }
    prefix_words[r] = acc;
    prefix_kind[r] = acc_kind;
    prefix_subrounds[r] = acc_sub;
  }

  int64_t prev_records = -1;
  for (const fgm::JsonNode& s : samples->items) {
    const fgm::JsonNode* kind = s.Find("kind");
    const bool is_round =
        kind != nullptr && kind->type == fgm::JsonNode::Type::kString &&
        kind->str == "round";
    const int64_t records =
        s.Find("records") != nullptr ? s.Find("records")->AsInt() : 0;
    c->Expect(records >= prev_records,
              Format("timeseries records not monotone at sample %lld",
                     (long long)(s.Find("seq") ? s.Find("seq")->AsInt() : -1)));
    prev_records = records;
    if (!is_round) {
      ++*interval_samples;
      continue;
    }
    ++*round_samples;
    const int64_t round = s.Find("round") ? s.Find("round")->AsInt() : -1;
    const std::string tag = Format("timeseries round %lld", (long long)round);
    c->Expect(round >= 1 && static_cast<size_t>(round) < n,
              tag + " out of trace range");
    if (round < 1 || static_cast<size_t>(round) >= n) continue;
    const RoundStats& r = t.rounds[static_cast<size_t>(round)];
    c->ExpectEqInt(s.Find("round_words") ? s.Find("round_words")->AsInt() : -1,
                   r.words(), tag + " round_words vs trace");
    c->ExpectEqInt(s.Find("total_words") ? s.Find("total_words")->AsInt() : -1,
                   prefix_words[static_cast<size_t>(round)],
                   tag + " total_words vs trace prefix");
    c->ExpectEqInt(s.Find("subrounds") ? s.Find("subrounds")->AsInt() : -1,
                   r.subrounds, tag + " subrounds vs trace");
    c->ExpectEqInt(
        s.Find("total_subrounds") ? s.Find("total_subrounds")->AsInt() : -1,
        prefix_subrounds[static_cast<size_t>(round)],
        tag + " total_subrounds vs trace prefix");
    const fgm::JsonNode* cum = s.Find("words_by_kind");
    const fgm::JsonNode* delta = s.Find("round_words_by_kind");
    c->Expect(cum != nullptr && delta != nullptr &&
                  cum->items.size() == static_cast<size_t>(kKinds) &&
                  delta->items.size() == static_cast<size_t>(kKinds),
              tag + " kind arrays missing or wrong length");
    if (cum != nullptr && delta != nullptr &&
        cum->items.size() == static_cast<size_t>(kKinds) &&
        delta->items.size() == static_cast<size_t>(kKinds)) {
      for (int i = 0; i < kKinds; ++i) {
        const char* name = fgm::MsgKindName(static_cast<fgm::MsgKind>(i));
        c->ExpectEqInt(
            cum->items[static_cast<size_t>(i)].AsInt(),
            prefix_kind[static_cast<size_t>(round)][static_cast<size_t>(i)],
            tag + Format(" words_by_kind[%s] vs trace prefix", name));
        c->ExpectEqInt(delta->items[static_cast<size_t>(i)].AsInt(),
                       r.words_by_kind[static_cast<size_t>(i)],
                       tag + Format(" round_words_by_kind[%s] vs trace", name));
      }
    }
    if (r.has_outcome) {
      c->ExpectEqDouble(
          s.Find("actual_gain") ? s.Find("actual_gain")->AsDouble() : 0.0,
          r.actual_gain, tag + " actual_gain vs PlanOutcome");
      c->ExpectEqDouble(
          s.Find("pred_gain") ? s.Find("pred_gain")->AsDouble() : 0.0,
          r.outcome_pred_gain, tag + " pred_gain vs PlanOutcome");
    }
    if (r.has_plan) {
      c->ExpectEqInt(
          s.Find("plan_full_sites") ? s.Find("plan_full_sites")->AsInt() : -1,
          r.full_sites, tag + " plan_full_sites vs PlanChosen");
    }
  }
}

// ---------------------------------------------------------------------------
// Report rendering.

void PrintHeader(const std::string& path, const TraceSummary& t) {
  fgm::PrintBanner("FGM run report: " + path);
  int64_t msgs = 0;
  for (const RoundStats& r : t.rounds) msgs += r.msgs;
  std::printf(
      "protocol %s  k=%d  trace-events=%lld  rounds=%lld  messages=%lld\n"
      "words: total=%lld  upstream=%lld  downstream=%lld\n",
      t.protocol.c_str(), t.k, static_cast<long long>(t.run_events),
      static_cast<long long>(t.last_round()), static_cast<long long>(msgs),
      static_cast<long long>(t.run_up_words + t.run_down_words),
      static_cast<long long>(t.run_up_words),
      static_cast<long long>(t.run_down_words));
}

void PrintRoundTable(const TraceSummary& t, int64_t max_rounds) {
  if (t.last_round() == 0) return;
  fgm::PrintBanner("Per-round communication");
  fgm::TablePrinter table({"round", "subr", "rebal", "msgs", "words", "up",
                           "down", "safe-zone", "quantum", "counter",
                           "phi-value", "drift-flush", "other"});
  const int64_t first =
      std::max<int64_t>(1, t.last_round() - max_rounds + 1);
  if (first > 1) {
    std::printf("(showing the last %lld of %lld rounds)\n",
                static_cast<long long>(t.last_round() - first + 1),
                static_cast<long long>(t.last_round()));
  }
  for (size_t i = static_cast<size_t>(first); i < t.rounds.size(); ++i) {
    const RoundStats& r = t.rounds[i];
    auto kind = [&r](fgm::MsgKind k) {
      return fgm::TablePrinter::Cell(
          r.words_by_kind[static_cast<size_t>(k)]);
    };
    int64_t other = r.words();
    for (fgm::MsgKind k :
         {fgm::MsgKind::kSafeZone, fgm::MsgKind::kQuantum,
          fgm::MsgKind::kCounter, fgm::MsgKind::kPhiValue,
          fgm::MsgKind::kDriftFlush}) {
      other -= r.words_by_kind[static_cast<size_t>(k)];
    }
    table.AddRow({fgm::TablePrinter::Cell(r.round),
                  fgm::TablePrinter::Cell(r.subrounds),
                  fgm::TablePrinter::Cell(r.rebalances),
                  fgm::TablePrinter::Cell(r.msgs),
                  fgm::TablePrinter::Cell(r.words()),
                  fgm::TablePrinter::Cell(r.up_words),
                  fgm::TablePrinter::Cell(r.down_words),
                  kind(fgm::MsgKind::kSafeZone), kind(fgm::MsgKind::kQuantum),
                  kind(fgm::MsgKind::kCounter), kind(fgm::MsgKind::kPhiValue),
                  kind(fgm::MsgKind::kDriftFlush),
                  fgm::TablePrinter::Cell(other)});
  }
  table.Print();
}

void PrintSiteSkew(const TraceSummary& t) {
  if (t.sites.empty()) return;
  fgm::PrintBanner("Site skew (drift flushes)");
  int64_t total_updates = 0, total_words = 0;
  int64_t max_updates = 0, max_words = 0;
  int hot_updates = -1, hot_words = -1;
  for (size_t i = 0; i < t.sites.size(); ++i) {
    const SiteStats& s = t.sites[i];
    total_updates += s.flush_updates;
    total_words += s.flush_words;
    if (s.flush_updates > max_updates) {
      max_updates = s.flush_updates;
      hot_updates = static_cast<int>(i);
    }
    if (s.flush_words > max_words) {
      max_words = s.flush_words;
      hot_words = static_cast<int>(i);
    }
  }
  const double n = static_cast<double>(t.sites.size());
  std::printf(
      "sites=%zu  flushed updates: mean=%.1f max=%lld (site %d, %.2fx mean)\n"
      "flush words: mean=%.1f max=%lld (site %d)\n",
      t.sites.size(), static_cast<double>(total_updates) / n,
      static_cast<long long>(max_updates), hot_updates,
      total_updates > 0
          ? static_cast<double>(max_updates) * n /
                static_cast<double>(total_updates)
          : 0.0,
      static_cast<double>(total_words) / n, static_cast<long long>(max_words),
      hot_words);
}

void PrintOptimizerAudit(const TraceSummary& t, int64_t max_rounds) {
  int64_t outcomes = 0;
  for (const RoundStats& r : t.rounds) outcomes += r.has_outcome ? 1 : 0;
  if (outcomes == 0) return;
  fgm::PrintBanner("FGM/O plan audit: predicted vs actual gain");
  fgm::TablePrinter table({"round", "full", "pred_len", "pred_gain",
                           "actual_gain", "abs_err", "rel_err"});
  double sum_abs = 0.0, sum_rel = 0.0, max_abs = 0.0;
  int64_t shown = 0, audited = 0;
  for (const RoundStats& r : t.rounds) {
    if (!r.has_outcome) continue;
    const double err = std::fabs(r.outcome_pred_gain - r.actual_gain);
    const double rel = err / std::max(std::fabs(r.actual_gain), 1.0);
    ++audited;
    sum_abs += err;
    sum_rel += rel;
    max_abs = std::max(max_abs, err);
    if (outcomes - audited < max_rounds && shown < max_rounds) {
      ++shown;
      table.AddRow({fgm::TablePrinter::Cell(r.round),
                    fgm::TablePrinter::Cell(r.full_sites),
                    fgm::TablePrinter::Cell(r.pred_len),
                    fgm::TablePrinter::Cell(r.outcome_pred_gain),
                    fgm::TablePrinter::Cell(r.actual_gain),
                    fgm::TablePrinter::Cell(err),
                    fgm::TablePrinter::Cell(rel)});
    }
  }
  if (shown < outcomes) {
    std::printf("(showing the last %lld of %lld audited rounds)\n",
                static_cast<long long>(shown),
                static_cast<long long>(outcomes));
  }
  table.Print();
  std::printf(
      "gain prediction error: mean_abs=%.4g max_abs=%.4g mean_rel=%.4g "
      "over %lld rounds\n",
      sum_abs / static_cast<double>(audited), max_abs,
      sum_rel / static_cast<double>(audited),
      static_cast<long long>(audited));
}

/// Simulated-network health: counters from the trace and metrics.json,
/// plus a flag on every round whose end-of-round in-flight backlog
/// exceeded the 3k+1-word subround budget (2k quantum/poll words + k
/// counter increments + 1 — more than one subround's worth of counter
/// traffic still queued means the network cannot keep up with the
/// protocol's cadence).
void PrintNetwork(const TraceSummary& t, const fgm::JsonNode* m,
                  const fgm::JsonNode* ts) {
  const fgm::JsonNode* net = m != nullptr ? m->Find("net") : nullptr;
  if (!t.has_net() && net == nullptr) return;
  fgm::PrintBanner("Simulated network");
  std::printf(
      "delivered: msgs=%lld words=%lld   dropped: msgs=%lld words=%lld\n"
      "site_downs=%lld  resyncs=%lld (resync words=%lld)\n",
      static_cast<long long>(t.net_delivered_msgs),
      static_cast<long long>(t.net_delivered_words),
      static_cast<long long>(t.net_dropped_msgs),
      static_cast<long long>(t.net_dropped_words),
      static_cast<long long>(t.net_site_downs),
      static_cast<long long>(t.net_resyncs),
      static_cast<long long>(t.net_resync_words));
  if (net != nullptr) {
    auto net_int = [&](const char* name) {
      const fgm::JsonNode* v = net->Find(name);
      return static_cast<long long>(v != nullptr ? v->AsInt() : 0);
    };
    std::printf(
        "retransmitted: msgs=%lld words=%lld  stale=%lld  timeouts=%lld\n"
        "max_in_flight_words=%lld  final_tick=%lld\n",
        net_int("retransmitted_msgs"), net_int("retransmitted_words"),
        net_int("stale_msgs"), net_int("timeouts"),
        net_int("max_in_flight_words"), net_int("final_tick"));
  }

  const int64_t budget = 3 * static_cast<int64_t>(t.k) + 1;
  int64_t flagged = 0;
  if (ts != nullptr) {
    const fgm::JsonNode* samples = ts->Find("samples");
    if (samples != nullptr &&
        samples->type == fgm::JsonNode::Type::kArray) {
      for (const fgm::JsonNode& s : samples->items) {
        const fgm::JsonNode* kind = s.Find("kind");
        if (kind == nullptr || kind->type != fgm::JsonNode::Type::kString ||
            kind->str != "round") {
          continue;
        }
        const fgm::JsonNode* in_flight = s.Find("in_flight_words");
        if (in_flight == nullptr || in_flight->AsInt() <= budget) continue;
        ++flagged;
        std::printf(
            "FLAG round %lld: in_flight_words=%lld exceeds the subround "
            "budget %lld (3k+1)\n",
            static_cast<long long>(
                s.Find("round") ? s.Find("round")->AsInt() : -1),
            static_cast<long long>(in_flight->AsInt()),
            static_cast<long long>(budget));
      }
    }
  }
  if (net != nullptr) {
    const fgm::JsonNode* hw = net->Find("max_in_flight_words");
    if (hw != nullptr && hw->AsInt() > budget) {
      std::printf(
          "note: peak in-flight backlog %lld exceeded the subround budget "
          "%lld at some instant\n",
          static_cast<long long>(hw->AsInt()),
          static_cast<long long>(budget));
    }
  }
  if (flagged == 0 && ts != nullptr) {
    std::printf("no round ended with in-flight words over the subround "
                "budget %lld\n",
                static_cast<long long>(budget));
  }
}

/// Tree-topology tier table (src/hier): one row per aggregator tier with
/// its TierEnd word ledger, drift-flush and local-poll tallies, and the
/// range of composed subtree sums its polls observed. fan-in is the mean
/// child count per parent on that tier's links (endpoints[t-1] parents,
/// endpoints[t] children; tier 1's parents are the root's k endpoints).
void PrintTiers(const TraceSummary& t) {
  if (!t.has_tiers()) return;
  fgm::PrintBanner("Tree topology");
  std::printf("topology=%s  tiers=%lld  leaves=%lld  root endpoints k=%d\n",
              t.topology.empty() ? "?" : t.topology.c_str(),
              static_cast<long long>(t.tiers.size() + 1),
              static_cast<long long>(t.leaves), t.k);
  fgm::TablePrinter table({"tier", "endpoints", "fan-in", "up_words",
                           "down_words", "up_msgs", "down_msgs", "flushes",
                           "local_polls", "min_psi", "max_psi"});
  int prev_endpoints = t.k;
  for (const TierStats& tier : t.tiers) {
    const double fan_in =
        prev_endpoints > 0
            ? static_cast<double>(tier.endpoints) / prev_endpoints
            : 0.0;
    table.AddRow({fgm::TablePrinter::Cell(static_cast<int64_t>(tier.tier)),
                  fgm::TablePrinter::Cell(static_cast<int64_t>(tier.endpoints)),
                  fgm::TablePrinter::Cell(fan_in),
                  fgm::TablePrinter::Cell(tier.up_words),
                  fgm::TablePrinter::Cell(tier.down_words),
                  fgm::TablePrinter::Cell(tier.up_msgs),
                  fgm::TablePrinter::Cell(tier.down_msgs),
                  fgm::TablePrinter::Cell(tier.flushes),
                  fgm::TablePrinter::Cell(tier.local_polls),
                  fgm::TablePrinter::Cell(tier.has_psi ? tier.min_psi : 0.0),
                  fgm::TablePrinter::Cell(tier.has_psi ? tier.max_psi : 0.0)});
    prev_endpoints = tier.endpoints;
  }
  table.Print();
}

/// Health-monitor alert log: every raise/clear transition with the
/// measured value vs the rule threshold at the instant it fired.
void PrintAlerts(const TraceSummary& t, int64_t max_rounds) {
  if (t.alerts.empty()) return;
  fgm::PrintBanner("Health alerts");
  std::printf("raised=%lld cleared=%lld (%lld still active at run end)\n",
              static_cast<long long>(t.alerts_raised),
              static_cast<long long>(t.alerts_cleared),
              static_cast<long long>(t.alerts_raised - t.alerts_cleared));
  fgm::TablePrinter table(
      {"event", "rule", "site", "round", "value", "threshold", "reason"});
  const int64_t total = static_cast<int64_t>(t.alerts.size());
  const int64_t first = std::max<int64_t>(0, total - max_rounds);
  if (first > 0) {
    std::printf("(showing the last %lld of %lld transitions)\n",
                static_cast<long long>(total - first),
                static_cast<long long>(total));
  }
  for (size_t i = static_cast<size_t>(first); i < t.alerts.size(); ++i) {
    const AlertEvent& a = t.alerts[i];
    table.AddRow({fgm::TablePrinter::Cell(a.raised ? "RAISE" : "clear"),
                  fgm::TablePrinter::Cell(a.rule),
                  fgm::TablePrinter::Cell(static_cast<int64_t>(a.site)),
                  fgm::TablePrinter::Cell(a.round),
                  fgm::TablePrinter::Cell(a.value),
                  fgm::TablePrinter::Cell(a.threshold),
                  fgm::TablePrinter::Cell(a.reason)});
  }
  table.Print();
}

int64_t MetricCounter(const fgm::JsonNode& m, const char* name) {
  const fgm::JsonNode* counters = m.Find("metrics") != nullptr
                                      ? m.Find("metrics")->Find("counters")
                                      : nullptr;
  const fgm::JsonNode* v =
      counters != nullptr ? counters->Find(name) : nullptr;
  return v != nullptr ? v->AsInt() : 0;
}

double MetricTimerSeconds(const fgm::JsonNode& m, const char* name) {
  const fgm::JsonNode* timers = m.Find("metrics") != nullptr
                                    ? m.Find("metrics")->Find("timers")
                                    : nullptr;
  const fgm::JsonNode* t = timers != nullptr ? timers->Find(name) : nullptr;
  const fgm::JsonNode* v = t != nullptr ? t->Find("total_seconds") : nullptr;
  return v != nullptr ? v->AsDouble() : 0.0;
}

/// The speculation-efficiency numbers the report derives from the
/// metrics registry's spec_* counters. All zero (windows == 0) when the
/// run was serial.
struct SpeculationSummary {
  int64_t windows = 0;
  int64_t barriers = 0;
  int64_t speculated = 0;
  int64_t committed = 0;
  int64_t replayed = 0;
  int64_t wasted = 0;
  int64_t soft_commits = 0;

  double barrier_rate() const {
    return windows > 0
               ? static_cast<double>(barriers) / static_cast<double>(windows)
               : 0.0;
  }
  /// Discarded speculative work per useful record.
  double waste_ratio() const {
    return static_cast<double>(wasted) /
           std::max<double>(1.0, static_cast<double>(committed));
  }
  /// Serial-side replay burden per window.
  double replayed_per_window() const {
    return windows > 0
               ? static_cast<double>(replayed) / static_cast<double>(windows)
               : 0.0;
  }
  double commit_efficiency() const {
    return static_cast<double>(committed) /
           std::max<double>(1.0, static_cast<double>(speculated));
  }
};

SpeculationSummary ReadSpeculation(const fgm::JsonNode& m) {
  SpeculationSummary s;
  s.windows = MetricCounter(m, "spec_windows");
  s.barriers = MetricCounter(m, "spec_barriers");
  s.speculated = MetricCounter(m, "spec_records_speculated");
  s.committed = MetricCounter(m, "spec_records_committed");
  s.replayed = MetricCounter(m, "spec_records_replayed");
  s.wasted = MetricCounter(m, "spec_records_wasted");
  s.soft_commits = MetricCounter(m, "spec_soft_commits");
  return s;
}

/// The spec_* counters must balance: every speculated record was either
/// committed or wasted, and replay only re-derives committed prefixes.
void CheckSpeculation(const SpeculationSummary& s, Checker* c) {
  if (s.windows == 0) return;
  c->ExpectEqInt(s.speculated, s.committed + s.wasted,
                 "speculation: speculated vs committed + wasted");
  c->Expect(s.replayed <= s.committed,
            "speculation: replayed exceeds committed records");
  c->Expect(s.barriers <= s.windows,
            "speculation: more barriers than windows");
}

void PrintSpeculation(const fgm::JsonNode& m, const SpeculationSummary& s) {
  if (s.windows == 0) return;
  fgm::PrintBanner("Speculation efficiency (parallel runner)");
  std::printf(
      "windows=%lld  barriers=%lld (barrier rate %.3f per window)  "
      "soft_commits=%lld\n"
      "records: speculated=%lld committed=%lld replayed=%lld wasted=%lld\n"
      "efficiency: committed/speculated=%.4f  wasted/committed=%.4f  "
      "replayed/window=%.1f\n"
      "time: speculate=%.3fs commit=%.3fs\n",
      static_cast<long long>(s.windows), static_cast<long long>(s.barriers),
      s.barrier_rate(), static_cast<long long>(s.soft_commits),
      static_cast<long long>(s.speculated),
      static_cast<long long>(s.committed),
      static_cast<long long>(s.replayed), static_cast<long long>(s.wasted),
      s.commit_efficiency(), s.waste_ratio(), s.replayed_per_window(),
      MetricTimerSeconds(m, "spec_speculate"),
      MetricTimerSeconds(m, "spec_commit"));
  const fgm::JsonNode* gauges = m.Find("metrics") != nullptr
                                    ? m.Find("metrics")->Find("gauges")
                                    : nullptr;
  if (gauges != nullptr) {
    std::string tasks;
    for (const auto& [name, value] : gauges->members) {
      if (name.rfind("spec_thread", 0) != 0) continue;
      if (!tasks.empty()) tasks += " ";
      tasks += Format("%s=%lld", name.c_str() + std::strlen("spec_"),
                      static_cast<long long>(value.AsInt()));
    }
    if (!tasks.empty()) std::printf("per-thread tasks: %s\n", tasks.c_str());
  }
}

/// Run-level time split + straggler attribution, computed from the span
/// file alone (SummarizeCriticalPath).
void PrintCriticalPath(const fgm::SpanCheckStats& stats,
                       const fgm::CriticalPathSummary& cp,
                       int64_t max_rounds) {
  fgm::PrintBanner("Critical path (spans)");
  const double run = cp.run_time > 0 ? static_cast<double>(cp.run_time) : 1.0;
  auto pct = [run](int64_t v) { return 100.0 * static_cast<double>(v) / run; };
  std::printf("spans=%lld  run_time=%lld  round_time=%lld (%.1f%%)\n",
              static_cast<long long>(stats.spans),
              static_cast<long long>(cp.run_time),
              static_cast<long long>(cp.round_time), pct(cp.round_time));
  std::printf("network=%lld (%.1f%%)  retransmits=%lld\n",
              static_cast<long long>(cp.network_time), pct(cp.network_time),
              static_cast<long long>(cp.retransmits));
  if (cp.speculate_time + cp.barrier_time + cp.replay_time + cp.commit_time >
      0) {
    std::printf(
        "parallel: speculate=%lld (%.1f%%)  barrier-wait=%lld (%.1f%%)  "
        "replay=%lld (%.1f%%)  commit=%lld (%.1f%%)\n",
        static_cast<long long>(cp.speculate_time), pct(cp.speculate_time),
        static_cast<long long>(cp.barrier_time), pct(cp.barrier_time),
        static_cast<long long>(cp.replay_time), pct(cp.replay_time),
        static_cast<long long>(cp.commit_time), pct(cp.commit_time));
  }
  if (!cp.top_sites.empty()) {
    std::printf("gated subrounds: %zu\n", cp.gates.size());
    fgm::TablePrinter table({"site", "gated", "wait", "retransmits"});
    int64_t shown = 0;
    for (const fgm::SiteGating& s : cp.top_sites) {
      if (shown++ >= max_rounds) break;
      table.AddRow({fgm::TablePrinter::Cell(static_cast<int64_t>(s.site)),
                    fgm::TablePrinter::Cell(s.gated),
                    fgm::TablePrinter::Cell(s.wait),
                    fgm::TablePrinter::Cell(s.retransmits)});
    }
    table.Print();
    if (static_cast<int64_t>(cp.top_sites.size()) > max_rounds) {
      std::printf("(showing the top %lld of %zu gating sites)\n",
                  static_cast<long long>(max_rounds), cp.top_sites.size());
    }
  }
}

void WriteJsonReport(const std::string& path, const std::string& trace_path,
                     const TraceSummary& t, const fgm::ReplayReport& replay,
                     const Checker& checks,
                     const fgm::SpanCheckStats* span_stats,
                     const fgm::CriticalPathSummary* cp,
                     const SpeculationSummary* spec) {
  fgm::JsonWriter w;
  w.BeginObject();
  w.Field("version", kReportSchemaVersion);
  w.Field("trace", trace_path);
  w.Field("protocol", t.protocol);
  w.Field("k", static_cast<int64_t>(t.k));
  w.Field("trace_events", t.run_events);
  w.Field("rounds", t.last_round());
  w.Field("up_words", t.run_up_words);
  w.Field("down_words", t.run_down_words);
  w.Key("per_round");
  w.BeginArray();
  for (const RoundStats& r : t.rounds) {
    if (r.round == 0 && r.msgs == 0) continue;  // empty pre-round bucket
    w.BeginObject();
    w.Field("round", r.round);
    w.Field("subrounds", r.subrounds);
    w.Field("rebalances", r.rebalances);
    w.Field("msgs", r.msgs);
    w.Field("up_words", r.up_words);
    w.Field("down_words", r.down_words);
    w.Key("words_by_kind");
    w.BeginArray();
    for (const int64_t v : r.words_by_kind) w.Int(v);
    w.EndArray();
    if (r.has_plan) {
      w.Field("full_sites", r.full_sites);
      w.Field("pred_len", r.pred_len);
      w.Field("pred_rate", r.pred_rate);
    }
    if (r.has_outcome) {
      w.Field("updates", r.updates);
      w.Field("pred_gain", r.outcome_pred_gain);
      w.Field("actual_gain", r.actual_gain);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("sites");
  w.BeginArray();
  for (size_t i = 0; i < t.sites.size(); ++i) {
    w.BeginObject();
    w.Field("site", static_cast<int64_t>(i));
    w.Field("flushes", t.sites[i].flushes);
    w.Field("flush_words", t.sites[i].flush_words);
    w.Field("flush_updates", t.sites[i].flush_updates);
    w.Field("increments", t.sites[i].increments);
    w.EndObject();
  }
  w.EndArray();
  if (t.has_tiers()) {
    if (!t.topology.empty()) w.Field("topology", t.topology);
    w.Field("leaves", t.leaves);
    w.Key("tiers");
    w.BeginArray();
    for (const TierStats& tier : t.tiers) {
      w.BeginObject();
      w.Field("tier", static_cast<int64_t>(tier.tier));
      w.Field("endpoints", static_cast<int64_t>(tier.endpoints));
      w.Field("up_words", tier.up_words);
      w.Field("down_words", tier.down_words);
      w.Field("up_msgs", tier.up_msgs);
      w.Field("down_msgs", tier.down_msgs);
      w.Field("flushes", tier.flushes);
      w.Field("flush_words", tier.flush_words);
      w.Field("local_polls", tier.local_polls);
      if (tier.has_psi) {
        w.Field("min_psi", tier.min_psi);
        w.Field("max_psi", tier.max_psi);
      }
      w.EndObject();
    }
    w.EndArray();
  }
  if (t.has_net()) {
    w.Key("net");
    w.BeginObject();
    w.Field("delivered_msgs", t.net_delivered_msgs);
    w.Field("delivered_words", t.net_delivered_words);
    w.Field("dropped_msgs", t.net_dropped_msgs);
    w.Field("dropped_words", t.net_dropped_words);
    w.Field("site_downs", t.net_site_downs);
    w.Field("resyncs", t.net_resyncs);
    w.Field("resync_words", t.net_resync_words);
    w.EndObject();
  }
  if (span_stats != nullptr && cp != nullptr) {
    w.Key("spans");
    w.BeginObject();
    w.Field("count", span_stats->spans);
    w.Field("open", span_stats->open);
    w.Field("up_words", span_stats->msg_up_words);
    w.Field("down_words", span_stats->msg_down_words);
    w.Field("run_time", cp->run_time);
    w.Field("round_time", cp->round_time);
    w.Field("network_time", cp->network_time);
    w.Field("retransmits", cp->retransmits);
    w.Field("speculate_time", cp->speculate_time);
    w.Field("barrier_time", cp->barrier_time);
    w.Field("replay_time", cp->replay_time);
    w.Field("commit_time", cp->commit_time);
    w.Field("gated_subrounds", static_cast<int64_t>(cp->gates.size()));
    w.Key("top_sites");
    w.BeginArray();
    for (const fgm::SiteGating& s : cp->top_sites) {
      w.BeginObject();
      w.Field("site", static_cast<int64_t>(s.site));
      w.Field("gated", s.gated);
      w.Field("wait", s.wait);
      w.Field("retransmits", s.retransmits);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  if (!t.alerts.empty()) {
    w.Key("alerts");
    w.BeginObject();
    w.Field("raised", t.alerts_raised);
    w.Field("cleared", t.alerts_cleared);
    w.Field("active_at_end", t.alerts_raised - t.alerts_cleared);
    w.Key("events");
    w.BeginArray();
    for (const AlertEvent& a : t.alerts) {
      w.BeginObject();
      w.Field("event", a.raised ? "raise" : "clear");
      w.Field("rule", a.rule);
      w.Field("site", static_cast<int64_t>(a.site));
      w.Field("round", a.round);
      w.Field("value", a.value);
      w.Field("threshold", a.threshold);
      if (!a.reason.empty()) w.Field("reason", a.reason);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  if (spec != nullptr && spec->windows > 0) {
    w.Key("speculation");
    w.BeginObject();
    w.Field("windows", spec->windows);
    w.Field("barriers", spec->barriers);
    w.Field("barrier_rate", spec->barrier_rate());
    w.Field("soft_commits", spec->soft_commits);
    w.Field("speculated", spec->speculated);
    w.Field("committed", spec->committed);
    w.Field("replayed", spec->replayed);
    w.Field("wasted", spec->wasted);
    w.Field("commit_efficiency", spec->commit_efficiency());
    w.Field("waste_ratio", spec->waste_ratio());
    w.Field("replayed_per_window", spec->replayed_per_window());
    w.EndObject();
  }
  w.Key("replay");
  w.BeginObject();
  w.Field("ok", replay.ok());
  w.Field("issues", replay.issue_count);
  w.EndObject();
  w.Key("checks");
  w.BeginObject();
  w.Field("performed", checks.performed);
  w.Field("ok", checks.ok());
  w.Key("failures");
  w.BeginArray();
  for (const std::string& f : checks.failures) w.String(f);
  w.EndArray();
  w.EndObject();
  w.EndObject();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fgm_report: cannot write %s\n", path.c_str());
    return;
  }
  const std::string text = w.Take();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);
  std::string trace_path = flags.GetString("trace", "");
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string ts_path = flags.GetString("timeseries", "");
  const std::string spans_path = flags.GetString("spans", "");
  const std::string json_out = flags.GetString("json_out", "");
  const int64_t max_rounds = flags.GetInt("max_rounds", 24);
  const bool check = flags.GetBool("check", true);
  // Fixture hook: fail unless the metrics carry parallel-runner
  // speculation counters (spec_windows > 0). Guards the report's
  // speculation section against silently disappearing.
  const bool expect_spec = flags.GetBool("expect_spec", false);
  // Fixture hook: fail unless the trace carries at least one AlertRaised
  // event (health monitor). Guards the alert pipeline the same way.
  const bool expect_alerts = flags.GetBool("alerts", false);
  if (trace_path.empty() && !flags.positional().empty()) {
    trace_path = flags.positional().front();
  }
  const std::vector<std::string> unknown = flags.Unparsed();
  if (!unknown.empty() || trace_path.empty()) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    }
    std::fprintf(stderr,
                 "usage: fgm_report --trace=trace.jsonl "
                 "[--metrics=metrics.json] [--timeseries=ts.json] "
                 "[--spans=spans.json] [--json_out=report.json] "
                 "[--max_rounds=N] [--check=true] [--expect_spec=false] "
                 "[--alerts]\n");
    return 2;
  }

  TraceSummary trace;
  std::string error;
  if (!ReadTrace(trace_path, &trace, &error)) {
    std::fprintf(stderr, "fgm_report: %s: %s\n", trace_path.c_str(),
                 error.c_str());
    return 2;
  }

  Checker checks;
  const fgm::ReplayReport replay = fgm::CheckTraceFile(trace_path);
  checks.Expect(replay.ok(), "trace replay: " + replay.Summary());
  CheckTraceInternal(trace, &checks);

  fgm::JsonNode metrics;
  bool have_metrics = false;
  if (!metrics_path.empty()) {
    if (!ReadJsonFile(metrics_path, &metrics, &error)) {
      std::fprintf(stderr, "fgm_report: %s: %s\n", metrics_path.c_str(),
                   error.c_str());
      return 2;
    }
    have_metrics = true;
    CheckMetrics(trace, metrics, &checks);
  }
  SpeculationSummary spec;
  if (have_metrics) {
    spec = ReadSpeculation(metrics);
    CheckSpeculation(spec, &checks);
  }
  if (expect_spec) {
    checks.Expect(spec.windows > 0,
                  "expect_spec: metrics carry no speculation counters "
                  "(spec_windows == 0 or --metrics missing)");
  }
  if (expect_alerts) {
    checks.Expect(trace.alerts_raised > 0,
                  "alerts: trace carries no AlertRaised event");
  }

  int64_t round_samples = 0, interval_samples = 0;
  bool have_ts = false;
  fgm::JsonNode ts;
  if (!ts_path.empty()) {
    if (!ReadJsonFile(ts_path, &ts, &error)) {
      std::fprintf(stderr, "fgm_report: %s: %s\n", ts_path.c_str(),
                   error.c_str());
      return 2;
    }
    have_ts = true;
    CheckTimeSeries(trace, ts, &checks, &round_samples, &interval_samples);
  }

  bool have_spans = false;
  std::vector<fgm::ParsedSpan> spans;
  fgm::SpanCheckStats span_stats;
  fgm::CriticalPathSummary critical_path;
  if (!spans_path.empty()) {
    if (!fgm::ReadSpanFile(spans_path, &spans, &error)) {
      std::fprintf(stderr, "fgm_report: %s: %s\n", spans_path.c_str(),
                   error.c_str());
      return 2;
    }
    have_spans = true;
    // The span file is the fourth view of the same run: its invariants
    // must hold and its wire-word sums must re-add to the trace's totals.
    // Spans instrument every link tier, so on tree runs the target is
    // the root-tier RunEnd totals plus the TierEnd ledgers.
    int64_t span_up_target = trace.run_up_words;
    int64_t span_down_target = trace.run_down_words;
    for (const TierStats& tier : trace.tiers) {
      span_up_target += tier.up_words;
      span_down_target += tier.down_words;
    }
    const std::vector<std::string> span_issues = fgm::CheckSpans(
        spans, span_up_target, span_down_target, &span_stats);
    for (const std::string& issue : span_issues) {
      checks.Expect(false, "spans: " + issue);
    }
    if (span_issues.empty()) checks.Expect(true, "spans");
    critical_path = fgm::SummarizeCriticalPath(spans);
  }

  PrintHeader(trace_path, trace);
  PrintRoundTable(trace, max_rounds);
  PrintTiers(trace);
  PrintSiteSkew(trace);
  PrintOptimizerAudit(trace, max_rounds);
  PrintAlerts(trace, max_rounds);
  if (have_metrics) PrintSpeculation(metrics, spec);
  PrintNetwork(trace, have_metrics ? &metrics : nullptr,
               have_ts ? &ts : nullptr);
  if (have_spans) PrintCriticalPath(span_stats, critical_path, max_rounds);
  if (have_ts) {
    fgm::PrintBanner("Time series");
    const fgm::JsonNode* taken = ts.Find("taken");
    const fgm::JsonNode* dropped = ts.Find("dropped");
    std::printf("samples: taken=%lld dropped=%lld round=%lld interval=%lld\n",
                static_cast<long long>(taken ? taken->AsInt() : 0),
                static_cast<long long>(dropped ? dropped->AsInt() : 0),
                static_cast<long long>(round_samples),
                static_cast<long long>(interval_samples));
  }

  fgm::PrintBanner("Cross-checks");
  std::printf("replay: %s\n", replay.Summary().c_str());
  std::printf("%lld checks, %zu failed\n",
              static_cast<long long>(checks.performed),
              checks.failures.size());
  size_t show = std::min<size_t>(checks.failures.size(), 20);
  for (size_t i = 0; i < show; ++i) {
    std::printf("FAIL: %s\n", checks.failures[i].c_str());
  }
  if (checks.failures.size() > show) {
    std::printf("... and %zu more failures\n", checks.failures.size() - show);
  }

  if (!json_out.empty()) {
    WriteJsonReport(json_out, trace_path, trace, replay, checks,
                    have_spans ? &span_stats : nullptr,
                    have_spans ? &critical_path : nullptr,
                    have_metrics ? &spec : nullptr);
    std::printf("json report: %s\n", json_out.c_str());
  }
  return (check && !checks.ok()) ? 1 : 0;
}
