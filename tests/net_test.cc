// Tests for the simulated network's traffic accounting.

#include <gtest/gtest.h>

#include "net/network.h"

namespace fgm {
namespace {

TEST(SimNetwork, DirectionsAndTotals) {
  SimNetwork net(3);
  net.Downstream(0, MsgKind::kCounter, 1);
  net.Downstream(1, MsgKind::kDriftFlush, 100);
  net.Upstream(2, MsgKind::kSafeZone, 500);
  const TrafficStats& s = net.stats();
  EXPECT_EQ(s.downstream_words, 101);
  EXPECT_EQ(s.upstream_words, 500);
  EXPECT_EQ(s.downstream_messages, 2);
  EXPECT_EQ(s.upstream_messages, 1);
  EXPECT_EQ(s.total_words(), 601);
  EXPECT_EQ(s.total_messages(), 3);
  EXPECT_NEAR(s.upstream_fraction(), 500.0 / 601.0, 1e-12);
}

TEST(SimNetwork, BroadcastChargesEverySiteSeparately) {
  // The paper's model has no multicast: shipping θ to k sites costs k
  // one-word messages.
  SimNetwork net(5);
  net.Broadcast(MsgKind::kQuantum, 1);
  EXPECT_EQ(net.stats().upstream_words, 5);
  EXPECT_EQ(net.stats().upstream_messages, 5);
}

TEST(SimNetwork, WordsByKindBreakdown) {
  SimNetwork net(2);
  net.Upstream(0, MsgKind::kSafeZone, 10);
  net.Upstream(1, MsgKind::kSafeZone, 10);
  net.Downstream(0, MsgKind::kPhiValue, 1);
  const TrafficStats& s = net.stats();
  EXPECT_EQ(s.words_by_kind[static_cast<size_t>(MsgKind::kSafeZone)], 20);
  EXPECT_EQ(s.words_by_kind[static_cast<size_t>(MsgKind::kPhiValue)], 1);
  EXPECT_EQ(s.words_by_kind[static_cast<size_t>(MsgKind::kCounter)], 0);
}

TEST(SimNetwork, ZeroTrafficFractionIsZero) {
  SimNetwork net(1);
  EXPECT_DOUBLE_EQ(net.stats().upstream_fraction(), 0.0);
}

TEST(MsgKindNames, AllDistinct) {
  for (int a = 0; a < static_cast<int>(MsgKind::kKindCount); ++a) {
    for (int b = a + 1; b < static_cast<int>(MsgKind::kKindCount); ++b) {
      EXPECT_STRNE(MsgKindName(static_cast<MsgKind>(a)),
                   MsgKindName(static_cast<MsgKind>(b)));
    }
  }
}

}  // namespace
}  // namespace fgm
