// Unit tests for the util module: RNG, hashing, vectors, subsets, stats,
// command-line flags.

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/hash.h"
#include "util/real_vector.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/subsets.h"

namespace fgm {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256ss a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  EXPECT_EQ(a(), b());
  Xoshiro256ss a2(42);
  EXPECT_NE(a2(), c());
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, NextBoundedCoversRangeUniformly) {
  Xoshiro256ss rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 5 * std::sqrt(n / 10.0));
  }
}

TEST(Xoshiro, NextIntInclusiveBounds) {
  Xoshiro256ss rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro, GaussianMomentsRoughlyStandard) {
  Xoshiro256ss rng(5);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Zipf, SamplesInRangeAndSkewed) {
  Xoshiro256ss rng(13);
  ZipfDistribution zipf(1000, 1.1);
  std::map<uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Sample(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    ++counts[v];
  }
  // Rank 1 must dominate and the tail must still be hit.
  EXPECT_GT(counts[1], counts[10] * 5 / 2);
  EXPECT_GT(counts[1], n / 20);
  EXPECT_GT(counts.size(), 500u);
}

TEST(Zipf, MatchesTheoreticalHeadProbability) {
  Xoshiro256ss rng(17);
  const double s = 1.2;
  const uint64_t n_items = 100;
  ZipfDistribution zipf(n_items, s);
  double harmonic = 0.0;
  for (uint64_t i = 1; i <= n_items; ++i) {
    harmonic += std::pow(static_cast<double>(i), -s);
  }
  const int n = 300000;
  int head = 0;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) == 1) ++head;
  }
  const double expected = 1.0 / harmonic;
  EXPECT_NEAR(static_cast<double>(head) / n, expected, 0.01);
}

TEST(PowerLawWeights, NormalizedAndDecreasing) {
  const std::vector<double> w = PowerLawWeights(10, 1.0);
  double total = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    total += w[i];
    if (i > 0) {
      EXPECT_LT(w[i], w[i - 1]);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PolyHash, PairwiseDistributesUniformly) {
  Xoshiro256ss rng(19);
  BucketHash h(rng, 16);
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++counts[h(static_cast<uint64_t>(i))];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 16, 6 * std::sqrt(n / 16.0));
  }
}

TEST(SignHash, BalancedSigns) {
  Xoshiro256ss rng(23);
  SignHash h(rng);
  int64_t sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += h(static_cast<uint64_t>(i));
  EXPECT_LT(std::llabs(sum), 6 * static_cast<int64_t>(std::sqrt(n)));
}

TEST(SignHash, FourwisePairProductsBalanced) {
  // 4-wise independence implies E[s(a)s(b)] = 0 for a != b.
  Xoshiro256ss rng(29);
  SignHash h(rng);
  int64_t sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += h(static_cast<uint64_t>(i)) * h(static_cast<uint64_t>(i) + 777777);
  }
  EXPECT_LT(std::llabs(sum), 6 * static_cast<int64_t>(std::sqrt(n)));
}

TEST(PolyHash, ModArithmeticMatchesNaive) {
  // MulMod against __int128 reference.
  Xoshiro256ss rng(31);
  constexpr uint64_t p = PolyHash<1>::kMersennePrime;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.NextBounded(p);
    const uint64_t b = rng.NextBounded(p);
    const uint64_t expected =
        static_cast<uint64_t>((static_cast<__uint128_t>(a) * b) % p);
    EXPECT_EQ(PolyHash<1>::MulMod(a, b), expected);
  }
}

TEST(RealVector, BasicOps) {
  RealVector a{1.0, 2.0, 3.0};
  RealVector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 1 * 4 - 2 * 5 + 3 * 6);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 14.0);
  EXPECT_DOUBLE_EQ(a.Norm(), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(a.Sum(), 6.0);
  RealVector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  c -= b;
  EXPECT_DOUBLE_EQ(c[1], a[1]);
  c *= 2.0;
  EXPECT_DOUBLE_EQ(c[2], 6.0);
  c.Axpy(1.0, a);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
}

TEST(RealVector, LpNorms) {
  RealVector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.LpNorm(1), 7.0);
  EXPECT_DOUBLE_EQ(v.LpNorm(2), 5.0);
  EXPECT_NEAR(v.LpNorm(3), std::cbrt(27.0 + 64.0), 1e-12);
  // Monotone decreasing in p.
  EXPECT_GT(v.LpNorm(1), v.LpNorm(2));
  EXPECT_GT(v.LpNorm(2), v.LpNorm(4));
}

TEST(RealVector, DistanceSymmetric) {
  RealVector a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(Subsets, CountsMatchBinomials) {
  EXPECT_EQ(BinomialCoefficient(7, 3), 35);
  EXPECT_EQ(BinomialCoefficient(9, 5), 126);
  EXPECT_EQ(BinomialCoefficient(5, 0), 1);
  EXPECT_EQ(BinomialCoefficient(5, 6), 0);
  EXPECT_EQ(EnumerateSubsets(7, 3).size(), 35u);
  EXPECT_EQ(EnumerateSubsets(4, 4).size(), 1u);
  EXPECT_EQ(EnumerateSubsets(4, 0).size(), 1u);
}

TEST(Subsets, ElementsValidAndDistinct) {
  for (const auto& s : EnumerateSubsets(6, 3)) {
    ASSERT_EQ(s.size(), 3u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::set<int>(s.begin(), s.end()).size(), 3u);
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 6);
    }
  }
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(CountHistogram, QuantilesAndOverflow) {
  CountHistogram h(10);
  for (int i = 0; i < 100; ++i) h.Add(i % 5);
  EXPECT_EQ(h.total(), 100);
  EXPECT_EQ(h.CountAt(3), 20);
  EXPECT_EQ(h.Quantile(0.5), 2);
  EXPECT_EQ(h.max_observed(), 4);
  h.Add(1000);  // overflow bucket
  EXPECT_EQ(h.max_observed(), 1000);
}

/// Builds a Flags instance from a literal argv (argv[0] is the binary).
Flags MakeFlags(std::vector<std::string> args) {
  args.insert(args.begin(), "test_binary");
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesBothForms) {
  Flags f = MakeFlags({"--sites=5", "pos", "--eps", "0.25", "--strict"});
  EXPECT_EQ(f.GetInt("sites", 0), 5);
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.0), 0.25);
  EXPECT_TRUE(f.GetBool("strict", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos");
  EXPECT_TRUE(f.Validate(""));
}

TEST(Flags, ValidateRejectsUnknownFlags) {
  Flags f = MakeFlags({"--sites=5", "--sties=7"});
  EXPECT_EQ(f.GetInt("sites", 0), 5);
  // "--sties" was never read by a getter: Validate must fail on the typo.
  EXPECT_FALSE(f.Validate("usage text"));
}

TEST(Flags, GetCountAcceptsValidValues) {
  Flags f = MakeFlags({"--updates=400000", "--threads=8"});
  EXPECT_EQ(f.GetCount("updates", 0), 400000);
  EXPECT_EQ(f.GetCount("threads", 1), 8);
  EXPECT_EQ(f.GetCount("absent", 42), 42);
  EXPECT_TRUE(f.Validate(""));
}

TEST(Flags, GetCountRejectsNegativeValues) {
  Flags f = MakeFlags({"--updates=-3"});
  // The default is returned in place of the rejected value...
  EXPECT_EQ(f.GetCount("updates", 7), 7);
  // ...and Validate reports the usage error.
  EXPECT_FALSE(f.Validate(""));
}

TEST(Flags, GetCountRejectsNonNumericValues) {
  Flags f = MakeFlags({"--threads=many"});
  EXPECT_EQ(f.GetCount("threads", 1), 1);
  EXPECT_FALSE(f.Validate(""));
}

TEST(Flags, GetCountRejectsTrailingGarbage) {
  Flags f = MakeFlags({"--width=300x"});
  EXPECT_EQ(f.GetCount("width", 5), 5);
  EXPECT_FALSE(f.Validate(""));
}

TEST(Flags, GetIntStillPermitsNegatives) {
  // Signed options (offsets, deltas) go through GetInt unchanged.
  Flags f = MakeFlags({"--delta=-12"});
  EXPECT_EQ(f.GetInt("delta", 0), -12);
  EXPECT_TRUE(f.Validate(""));
}

TEST(CountHistogram, QuantileZeroIsMinimumObservedBucket) {
  CountHistogram h(10);
  for (int i = 0; i < 5; ++i) h.Add(3);
  h.Add(7);
  // Quantile(0.0) must report the smallest populated bucket, not bucket 0.
  EXPECT_EQ(h.Quantile(0.0), 3);
  EXPECT_EQ(h.Quantile(1.0), 7);
  h.Add(1);
  EXPECT_EQ(h.Quantile(0.0), 1);
}

}  // namespace
}  // namespace fgm
