// Fast-AGMS sketch tests: estimation accuracy, linearity, median logic.

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/fast_agms.h"
#include "util/rng.h"

namespace fgm {
namespace {

std::shared_ptr<const AgmsProjection> MakeProjection(int d, int w,
                                                     uint64_t seed) {
  return std::make_shared<const AgmsProjection>(d, w, seed);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(AgmsProjection, MapTouchesOneCellPerRow) {
  auto proj = MakeProjection(5, 64, 1);
  std::vector<CellUpdate> updates;
  proj->Map(12345, 2.0, &updates);
  ASSERT_EQ(updates.size(), 5u);
  for (int r = 0; r < 5; ++r) {
    const size_t idx = updates[static_cast<size_t>(r)].index;
    EXPECT_GE(idx, static_cast<size_t>(r) * 64);
    EXPECT_LT(idx, static_cast<size_t>(r + 1) * 64);
    EXPECT_DOUBLE_EQ(std::fabs(updates[static_cast<size_t>(r)].delta), 2.0);
  }
}

TEST(AgmsProjection, DeterministicForSeed) {
  auto a = MakeProjection(3, 32, 99);
  auto b = MakeProjection(3, 32, 99);
  for (uint64_t key = 0; key < 100; ++key) {
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(a->Bucket(r, key), b->Bucket(r, key));
      EXPECT_EQ(a->Sign(r, key), b->Sign(r, key));
    }
  }
}

TEST(FastAgms, UpdateMatchesMap) {
  auto proj = MakeProjection(3, 16, 5);
  FastAgms sketch(proj);
  FastAgms manual(proj);
  std::vector<CellUpdate> updates;
  for (uint64_t key = 0; key < 50; ++key) {
    sketch.Update(key, 1.0);
    updates.clear();
    proj->Map(key, 1.0, &updates);
    for (const CellUpdate& u : updates) {
      manual.mutable_state()[u.index] += u.delta;
    }
  }
  for (size_t i = 0; i < sketch.state().dim(); ++i) {
    EXPECT_DOUBLE_EQ(sketch.state()[i], manual.state()[i]);
  }
}

TEST(FastAgms, InsertDeleteCancels) {
  auto proj = MakeProjection(5, 32, 7);
  FastAgms sketch(proj);
  for (uint64_t key = 0; key < 100; ++key) sketch.Update(key, 1.0);
  for (uint64_t key = 0; key < 100; ++key) sketch.Update(key, -1.0);
  EXPECT_DOUBLE_EQ(sketch.state().SquaredNorm(), 0.0);
}

// The sketch estimate of a self-join must be within Θ(1/√w) relative
// error. Build a Zipf frequency vector and compare against the exact F2.
TEST(FastAgms, SelfJoinAccuracy) {
  auto proj = MakeProjection(7, 512, 11);
  FastAgms sketch(proj);
  Xoshiro256ss rng(123);
  ZipfDistribution zipf(5000, 1.1);
  std::map<uint64_t, double> freq;
  for (int i = 0; i < 40000; ++i) {
    const uint64_t key = zipf.Sample(rng);
    sketch.Update(key, 1.0);
    freq[key] += 1.0;
  }
  double exact = 0.0;
  for (const auto& [key, f] : freq) {
    (void)key;
    exact += f * f;
  }
  const double estimate = sketch.SelfJoinEstimate();
  EXPECT_NEAR(estimate, exact, 0.25 * exact);
}

TEST(FastAgms, JoinAccuracy) {
  auto proj = MakeProjection(7, 512, 13);
  FastAgms a(proj), b(proj);
  Xoshiro256ss rng(321);
  ZipfDistribution zipf(2000, 1.0);
  std::map<uint64_t, double> fa, fb;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t key = zipf.Sample(rng);
    if (i % 3 == 0) {
      a.Update(key, 1.0);
      fa[key] += 1.0;
    } else {
      b.Update(key, 1.0);
      fb[key] += 1.0;
    }
  }
  double exact = 0.0;
  for (const auto& [key, f] : fa) {
    auto it = fb.find(key);
    if (it != fb.end()) exact += f * it->second;
  }
  const double estimate = FastAgms::JoinEstimate(a, b);
  EXPECT_NEAR(estimate, exact, 0.3 * exact);
}

TEST(FastAgms, EstimatesAreLinearInState) {
  // Sketching is linear: estimate of summed states equals estimate of
  // union stream. This is what lets protocols add drift vectors.
  auto proj = MakeProjection(5, 128, 17);
  FastAgms part1(proj), part2(proj), whole(proj);
  for (uint64_t key = 0; key < 3000; ++key) {
    const double weight = 1.0 + static_cast<double>(key % 3);
    if (key % 2 == 0) {
      part1.Update(key, weight);
    } else {
      part2.Update(key, weight);
    }
    whole.Update(key, weight);
  }
  RealVector sum = part1.state() + part2.state();
  EXPECT_NEAR(SelfJoinEstimate(*proj, sum), whole.SelfJoinEstimate(), 1e-6);
}

TEST(FastAgms, ConcatenatedJoinMatchesPair) {
  auto proj = MakeProjection(5, 64, 19);
  FastAgms a(proj), b(proj);
  for (uint64_t key = 0; key < 500; ++key) {
    a.Update(key, 1.0);
    b.Update(key * 3, 1.0);
  }
  RealVector concat(2 * proj->dimension());
  for (size_t i = 0; i < proj->dimension(); ++i) {
    concat[i] = a.state()[i];
    concat[proj->dimension() + i] = b.state()[i];
  }
  EXPECT_DOUBLE_EQ(JoinEstimateConcatenated(*proj, concat),
                   FastAgms::JoinEstimate(a, b));
}

TEST(FastAgms, SelfJoinOfSingletonIsSquaredWeight) {
  auto proj = MakeProjection(3, 8, 23);
  FastAgms sketch(proj);
  sketch.Update(42, 3.0);
  EXPECT_DOUBLE_EQ(sketch.SelfJoinEstimate(), 9.0);
}

}  // namespace
}  // namespace fgm
