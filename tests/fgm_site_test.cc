// Unit tests for the FGM site state machine: the counter update rule
//   c_i := max{c_i, ⌊(φ(X_i) - z_i)/θ⌋},
// subround bookkeeping, the perspective scale, and flush semantics —
// exercised against a hand-made linear safe function where every value is
// predictable in closed form.

#include <memory>

#include <gtest/gtest.h>

#include "core/fgm_site.h"
#include "safezone/halfspace.h"
#include "sketch/fast_agms.h"

namespace fgm {
namespace {

// With normal -e0, φ(x) = -4 - (-x[0]) = -4 + x[0]: pushing x[0]
// positive raises φ by exactly the same amount.
std::unique_ptr<HalfspaceSafeFunction> LinearPhi() {
  return std::make_unique<HalfspaceSafeFunction>(RealVector{-1.0, 0.0},
                                                 -4.0);
}

std::vector<CellUpdate> Delta(size_t index, double delta) {
  return {CellUpdate{index, delta}};
}

TEST(FgmSite, CounterFollowsTheFloorRule) {
  auto phi = LinearPhi();
  FgmSite site(0, 2);
  site.BeginRound(phi.get());
  EXPECT_DOUBLE_EQ(site.CurrentValue(), -4.0);
  site.BeginSubround(/*quantum=*/1.0);

  // +0.9 above z: floor(0.9) = 0 → silent.
  EXPECT_EQ(site.ApplyUpdate(Delta(0, +0.9)), 0);
  EXPECT_EQ(site.counter(), 0);
  // +1.7 total: floor = 1 → one increment.
  EXPECT_EQ(site.ApplyUpdate(Delta(0, +0.8)), 1);
  EXPECT_EQ(site.counter(), 1);
  // Jump to +4.2 total: floor = 4 → increment of 3 in one message.
  EXPECT_EQ(site.ApplyUpdate(Delta(0, +2.5)), 3);
  EXPECT_EQ(site.counter(), 4);
}

TEST(FgmSite, CounterNeverDecreases) {
  auto phi = LinearPhi();
  FgmSite site(0, 2);
  site.BeginRound(phi.get());
  site.BeginSubround(1.0);
  EXPECT_EQ(site.ApplyUpdate(Delta(0, +2.0)), 2);
  // The value recedes below z: the counter holds (max rule), no message.
  EXPECT_EQ(site.ApplyUpdate(Delta(0, -5.0)), 0);
  EXPECT_EQ(site.counter(), 2);
  // Recovers to +2.5: floor = 2 = counter → still silent.
  EXPECT_EQ(site.ApplyUpdate(Delta(0, +5.5)), 0);
  EXPECT_EQ(site.counter(), 2);
  // +3.1: floor = 3 → one more.
  EXPECT_EQ(site.ApplyUpdate(Delta(0, +0.6)), 1);
}

TEST(FgmSite, SubroundResetsZAndCounter) {
  auto phi = LinearPhi();
  FgmSite site(0, 2);
  site.BeginRound(phi.get());
  site.BeginSubround(1.0);
  site.ApplyUpdate(Delta(0, +2.0));
  EXPECT_EQ(site.counter(), 2);
  // New subround with a different quantum: z re-anchors at the current
  // value, counter goes back to 0.
  site.BeginSubround(0.5);
  EXPECT_EQ(site.counter(), 0);
  // +0.6 from the new z with θ = 0.5 → floor = 1.
  EXPECT_EQ(site.ApplyUpdate(Delta(0, +0.6)), 1);
}

TEST(FgmSite, SubroundValueRangeTracksSupMinusInf) {
  auto phi = LinearPhi();
  FgmSite site(0, 2);
  site.BeginRound(phi.get());
  site.BeginSubround(10.0);  // large quantum: no messages
  EXPECT_DOUBLE_EQ(site.SubroundValueRange(), 0.0);
  site.ApplyUpdate(Delta(0, +2.0));  // value +2
  site.ApplyUpdate(Delta(0, -3.0));  // value -1
  site.ApplyUpdate(Delta(0, +1.0));  // value 0
  EXPECT_DOUBLE_EQ(site.SubroundValueRange(), 3.0);  // sup 2, inf -1
}

TEST(FgmSite, LambdaScalesTheReportedValue) {
  auto phi = LinearPhi();
  FgmSite site(0, 2);
  site.BeginRound(phi.get());
  site.ApplyUpdate(Delta(0, +3.0));  // φ = -1 at λ = 1
  EXPECT_DOUBLE_EQ(site.CurrentValue(), -1.0);
  site.SetLambda(0.5);
  // For the halfspace, λφ(x/λ) = λβ - n·x = 0.5·(-4) + 3 = 1.0.
  EXPECT_DOUBLE_EQ(site.CurrentValue(), 1.0);
}

TEST(FgmSite, FlushResetsDriftButKeepsRoundCounters) {
  auto phi = LinearPhi();
  FgmSite site(0, 2);
  site.BeginRound(phi.get());
  site.BeginSubround(1.0);
  site.ApplyUpdate(Delta(0, +2.0));
  site.ApplyUpdate(Delta(1, 5.0));
  EXPECT_EQ(site.updates_since_flush(), 2);
  EXPECT_EQ(site.updates_in_round(), 2);
  EXPECT_DOUBLE_EQ(site.drift()[0], 2.0);
  site.FlushReset();
  EXPECT_EQ(site.updates_since_flush(), 0);
  EXPECT_EQ(site.updates_in_round(), 2);  // round total survives
  EXPECT_DOUBLE_EQ(site.drift()[0], 0.0);
  EXPECT_DOUBLE_EQ(site.CurrentValue(), -4.0);  // back to φ(0)
  site.ApplyUpdate(Delta(0, +1.0));
  EXPECT_EQ(site.updates_in_round(), 3);
}

TEST(FgmSite, BeginRoundResetsEverything) {
  auto phi = LinearPhi();
  FgmSite site(3, 2);
  site.BeginRound(phi.get());
  site.BeginSubround(1.0);
  site.ApplyUpdate(Delta(0, +2.0));
  site.SetLambda(0.5);
  site.BeginRound(phi.get());
  EXPECT_EQ(site.counter(), 0);
  EXPECT_EQ(site.updates_in_round(), 0);
  EXPECT_DOUBLE_EQ(site.CurrentValue(), -4.0);  // λ back to 1, drift 0
  EXPECT_EQ(site.id(), 3);
}

}  // namespace
}  // namespace fgm
