// Determinism suite for the sharded parallel execution engine (exec/).
//
// The contract under test: for every protocol with a sharded
// implementation and every thread count, the parallel run is
// bit-identical to the serial run — same traffic words and messages per
// message kind, same rounds/subrounds/rebalances, same final estimate,
// and the same JSONL trace line for line. `ctest -L parallel` runs this
// suite; a -DFGM_SANITIZE=thread build runs it under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "driver/runner.h"
#include "exec/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "safezone/ball.h"
#include "safezone/safe_function.h"
#include "sketch/fast_agms.h"
#include "stream/worldcup.h"
#include "util/rng.h"

namespace fgm {
namespace {

// ---------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  int64_t expected = 0;
  for (int job = 0; job < 50; ++job) {
    const int n = 1 + (job * 7) % 97;
    pool.ParallelFor(n, [&](int i) { sum += i; });
    expected += static_cast<int64_t>(n) * (n - 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  int count = 0;
  pool.ParallelFor(10, [&](int) { ++count; });  // non-atomic is fine inline
  EXPECT_EQ(count, 10);
}

// ---------------------------------------------------------------------
// Batched sketch ingestion

TEST(FastAgms, UpdateBatchBitIdenticalToSerialUpdates) {
  auto projection = std::make_shared<const AgmsProjection>(5, 64, 0xBEEF);
  FastAgms serial(projection);
  FastAgms batched(projection);

  Xoshiro256ss rng(42);
  std::vector<uint64_t> keys;
  std::vector<double> weights;
  for (int i = 0; i < 4096; ++i) {
    keys.push_back(rng.NextBounded(777));
    weights.push_back(static_cast<double>(rng.NextBounded(13)) - 6.0);
  }
  for (size_t i = 0; i < keys.size(); ++i) serial.Update(keys[i], weights[i]);
  batched.UpdateBatch(keys.data(), weights.data(), keys.size());

  for (size_t i = 0; i < serial.state().dim(); ++i) {
    EXPECT_EQ(serial.state()[i], batched.state()[i]) << "cell " << i;
  }
}

// ---------------------------------------------------------------------
// Incremental evaluation cross-check (FGM_PARANOID)

TEST(ParanoidDriftEvaluator, AgreesWithReferenceOnCorrectInner) {
  RealVector center(8);
  center[0] = 3.0;
  BallSafeFunction fn(center, 10.0);
  ParanoidDriftEvaluator eval(&fn, fn.MakeEvaluator(), /*period=*/1);
  Xoshiro256ss rng(7);
  for (int i = 0; i < 200; ++i) {
    // Every ApplyDelta cross-checks (period 1); divergence would abort.
    eval.ApplyDelta(rng.NextBounded(8),
                    static_cast<double>(rng.NextBounded(9)) - 4.0);
  }
  EXPECT_NEAR(eval.Value(), fn.Eval(eval.drift()), 1e-9);
}

// An evaluator whose incremental value is wrong on purpose.
class BrokenEvaluator : public VectorDriftEvaluator {
 public:
  explicit BrokenEvaluator(size_t dim) : VectorDriftEvaluator(dim) {}
  void ApplyDelta(size_t index, double delta) override {
    x_[index] += delta;
  }
  double Value() const override { return 1e9; }  // nowhere near φ(x)
  double ValueAtScale(double) const override { return 1e9; }
  void Reset() override { x_.SetZero(); }
  std::unique_ptr<DriftEvaluator> Clone() const override {
    return std::make_unique<BrokenEvaluator>(*this);
  }
};

TEST(ParanoidDriftEvaluatorDeathTest, AbortsOnDivergedInner) {
  RealVector center(4);
  center[0] = 1.0;
  BallSafeFunction fn(center, 10.0);
  ParanoidDriftEvaluator eval(&fn, std::make_unique<BrokenEvaluator>(4),
                              /*period=*/1);
  EXPECT_DEATH(eval.ApplyDelta(0, 1.0), "FGM_PARANOID");
}

TEST(MakeCheckedEvaluator, EnvVariableTogglesTheWrapper) {
  RealVector center(4);
  center[0] = 1.0;
  BallSafeFunction fn(center, 10.0);

  unsetenv("FGM_PARANOID");
  auto inner = fn.MakeEvaluator();
  DriftEvaluator* raw = inner.get();
  auto out = MakeCheckedEvaluator(&fn, std::move(inner));
  EXPECT_EQ(out.get(), raw);  // unset: pass-through

  setenv("FGM_PARANOID", "8", 1);
  auto wrapped = MakeCheckedEvaluator(&fn, fn.MakeEvaluator());
  EXPECT_NE(dynamic_cast<ParanoidDriftEvaluator*>(wrapped.get()), nullptr);
  unsetenv("FGM_PARANOID");
}

// ---------------------------------------------------------------------
// End-to-end determinism: parallel == serial, bit for bit.

struct RunOutput {
  RunResult result;
  std::vector<std::string> trace_lines;
};

RunOutput RunOnce(ProtocolKind protocol, QueryKind query, int threads) {
  RunConfig config;
  config.protocol = protocol;
  config.query = query;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  config.check_every = 5000;
  config.threads = threads;
  MemoryTraceSink sink;
  config.trace = &sink;

  WorldCupConfig wc;
  wc.sites = config.sites;
  wc.total_updates = 30000;
  const std::vector<StreamRecord> trace = GenerateWorldCupTrace(wc);

  RunOutput out;
  out.result = Run(config, trace);
  out.trace_lines.reserve(sink.events_log().size());
  for (const TraceEvent& e : sink.events_log()) {
    out.trace_lines.push_back(JsonlTraceSink::EventJson(e));
  }
  return out;
}

void ExpectIdentical(const RunOutput& serial, const RunOutput& parallel,
                     const std::string& what) {
  SCOPED_TRACE(what);
  const TrafficStats& a = serial.result.traffic;
  const TrafficStats& b = parallel.result.traffic;
  EXPECT_EQ(a.total_words(), b.total_words());
  EXPECT_EQ(a.upstream_words, b.upstream_words);
  EXPECT_EQ(a.downstream_words, b.downstream_words);
  EXPECT_EQ(a.upstream_messages, b.upstream_messages);
  EXPECT_EQ(a.downstream_messages, b.downstream_messages);
  for (size_t i = 0; i < a.words_by_kind.size(); ++i) {
    EXPECT_EQ(a.words_by_kind[i], b.words_by_kind[i]) << "msg kind " << i;
  }
  EXPECT_EQ(serial.result.rounds, parallel.result.rounds);
  EXPECT_EQ(serial.result.subrounds, parallel.result.subrounds);
  EXPECT_EQ(serial.result.rebalances, parallel.result.rebalances);
  EXPECT_EQ(serial.result.events, parallel.result.events);
  EXPECT_EQ(serial.result.checks, parallel.result.checks);
  // Bit-exact floating-point agreement, not approximate.
  EXPECT_EQ(serial.result.max_violation, parallel.result.max_violation);
  EXPECT_EQ(serial.result.final_estimate, parallel.result.final_estimate);

  ASSERT_EQ(serial.trace_lines.size(), parallel.trace_lines.size());
  for (size_t i = 0; i < serial.trace_lines.size(); ++i) {
    ASSERT_EQ(serial.trace_lines[i], parallel.trace_lines[i])
        << "trace line " << i;
  }
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, QueryKind>> {};

TEST_P(ParallelDeterminism, BitIdenticalAcrossThreadCounts) {
  const auto [protocol, query] = GetParam();
  const RunOutput serial = RunOnce(protocol, query, 1);
  EXPECT_GT(serial.result.events, 0);
  for (int threads : {2, 8}) {
    const RunOutput parallel = RunOnce(protocol, query, threads);
    EXPECT_EQ(parallel.result.threads_used, threads);
    EXPECT_GT(parallel.result.parallel_windows, 0);
    ExpectIdentical(serial, parallel,
                    "threads=" + std::to_string(threads));
  }
}

using ParallelParam = std::tuple<ProtocolKind, QueryKind>;

std::string ParallelParamName(const ::testing::TestParamInfo<ParallelParam>& info) {
  std::string name = ProtocolKindName(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '/' || c == '-') c = '_';
  }
  name += std::get<1>(info.param) == QueryKind::kSelfJoin ? "_Q1" : "_Q2";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ParallelDeterminism,
    ::testing::Values(
        std::make_tuple(ProtocolKind::kFgm, QueryKind::kSelfJoin),
        std::make_tuple(ProtocolKind::kFgm, QueryKind::kJoin),
        std::make_tuple(ProtocolKind::kFgmOpt, QueryKind::kSelfJoin),
        std::make_tuple(ProtocolKind::kGm, QueryKind::kSelfJoin),
        std::make_tuple(ProtocolKind::kGm, QueryKind::kJoin)),
    ParallelParamName);

// The run-health time series must also be bit-identical for every thread
// count: round samples land at round boundaries (deterministic by the
// trace equality above) and interval samples at --snapshot_every record
// counts, which the parallel runner aligns its chunks to.
TEST(ParallelDeterminism, TimeSeriesBitIdenticalAcrossThreadCounts) {
  auto run_series = [](int threads) {
    RunConfig config;
    config.protocol = ProtocolKind::kFgm;
    config.query = QueryKind::kSelfJoin;
    config.sites = 5;
    config.depth = 5;
    config.width = 60;
    config.threads = threads;
    config.snapshot_every = 7000;
    TimeSeries series(1 << 14);
    config.timeseries = &series;

    WorldCupConfig wc;
    wc.sites = config.sites;
    wc.total_updates = 30000;
    ::fgm::Run(config, GenerateWorldCupTrace(wc));

    JsonWriter w;
    series.WriteJson(&w);
    return w.Take();
  };
  const std::string serial = run_series(1);
  EXPECT_NE(serial.find("\"kind\":\"interval\""), std::string::npos)
      << "snapshot_every must produce interval samples";
  for (int threads : {2, 8}) {
    EXPECT_EQ(serial, run_series(threads)) << "threads=" << threads;
  }
}

// Parallel runs publish speculation accounting through the metrics
// registry at window granularity; the serial path must publish none.
TEST(ParallelDeterminism, SpeculationMetricsPublishedAtWindowGranularity) {
  auto run_metrics = [](int threads) {
    RunConfig config;
    config.protocol = ProtocolKind::kFgm;
    config.query = QueryKind::kSelfJoin;
    config.sites = 5;
    config.depth = 5;
    config.width = 60;
    config.threads = threads;
    auto metrics = std::make_unique<MetricsRegistry>();
    config.metrics = metrics.get();

    WorldCupConfig wc;
    wc.sites = config.sites;
    wc.total_updates = 30000;
    const RunResult r = ::fgm::Run(config, GenerateWorldCupTrace(wc));
    return std::make_pair(std::move(metrics), r);
  };
  auto [parallel, r] = run_metrics(4);
  EXPECT_EQ(parallel->GetCounter("spec_windows")->value(),
            r.parallel_windows);
  EXPECT_EQ(parallel->GetCounter("spec_barriers")->value(),
            r.parallel_barriers);
  EXPECT_EQ(parallel->GetCounter("spec_records_replayed")->value(),
            r.replayed_records);
  EXPECT_EQ(parallel->GetCounter("spec_records_committed")->value(),
            r.events);
  EXPECT_GE(parallel->GetCounter("spec_records_speculated")->value(),
            parallel->GetCounter("spec_records_committed")->value());
  // Wasted work = speculated beyond the committed prefix; re-derivable.
  EXPECT_EQ(parallel->GetCounter("spec_records_speculated")->value() -
                parallel->GetCounter("spec_records_committed")->value(),
            parallel->GetCounter("spec_records_wasted")->value());

  auto [serial, rs] = run_metrics(1);
  EXPECT_EQ(serial->GetCounter("spec_windows")->value(), 0)
      << "serial path publishes no speculation metrics";
}

TEST(ParallelDeterminism, CentralFallsBackToSerial) {
  // CENTRAL has no sharded implementation; --threads must degrade to the
  // serial loop, not crash or change results.
  const RunOutput serial = RunOnce(ProtocolKind::kCentral,
                                   QueryKind::kSelfJoin, 1);
  const RunOutput parallel = RunOnce(ProtocolKind::kCentral,
                                     QueryKind::kSelfJoin, 8);
  EXPECT_EQ(parallel.result.threads_used, 1);
  EXPECT_EQ(parallel.result.parallel_windows, 0);
  ExpectIdentical(serial, parallel, "central");
}

TEST(ParallelDeterminism, ParanoidModeHoldsUnderParallelExecution) {
  // FGM_PARANOID cross-checks every site evaluator during a parallel run;
  // an incremental-maintenance bug in checkpoint/replay would abort.
  setenv("FGM_PARANOID", "256", 1);
  const RunOutput serial = RunOnce(ProtocolKind::kFgm, QueryKind::kSelfJoin, 1);
  const RunOutput parallel =
      RunOnce(ProtocolKind::kFgm, QueryKind::kSelfJoin, 4);
  unsetenv("FGM_PARANOID");
  ExpectIdentical(serial, parallel, "paranoid");
}

// ---------------------------------------------------------------------
// Bit-identity on the batched fast paths: spans enabled, simulated
// network chaos, and the documented fast_merge relaxation.

RunOutput RunOnceWithSpans(ProtocolKind protocol, int threads) {
  RunConfig config;
  config.protocol = protocol;
  config.query = QueryKind::kSelfJoin;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  config.check_every = 5000;
  config.threads = threads;
  MemoryTraceSink sink;
  config.trace = &sink;
  SpanSink spans;
  config.spans = &spans;

  WorldCupConfig wc;
  wc.sites = config.sites;
  wc.total_updates = 30000;
  const std::vector<StreamRecord> trace = GenerateWorldCupTrace(wc);

  RunOutput out;
  out.result = Run(config, trace);
  EXPECT_GT(spans.spans(), 0);
  out.trace_lines.reserve(sink.events_log().size());
  for (const TraceEvent& e : sink.events_log()) {
    out.trace_lines.push_back(JsonlTraceSink::EventJson(e));
  }
  return out;
}

// Span collection timestamps worker segments but must not perturb the
// protocol: with span_wire off, traffic and traces stay bit-identical to
// serial for every protocol that shards (the window/shard/replay spans
// themselves are wall-clock data, so only their presence is asserted).
TEST(ParallelDeterminism, SpansEnabledStaysBitIdentical) {
  for (ProtocolKind protocol :
       {ProtocolKind::kFgm, ProtocolKind::kFgmOpt, ProtocolKind::kGm}) {
    const RunOutput serial = RunOnceWithSpans(protocol, 1);
    for (int threads : {2, 8}) {
      const RunOutput parallel = RunOnceWithSpans(protocol, threads);
      ExpectIdentical(serial, parallel,
                      std::string(ProtocolKindName(protocol)) +
                          " spans threads=" + std::to_string(threads));
    }
  }
}

RunOutput RunOnceChaos(int threads) {
  RunConfig config;
  config.protocol = ProtocolKind::kFgm;
  config.query = QueryKind::kSelfJoin;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  config.check_every = 5000;
  config.threads = threads;
  config.net.latency = "uniform:1-16";
  config.net.drop = 0.15;
  MemoryTraceSink sink;
  config.trace = &sink;

  WorldCupConfig wc;
  wc.sites = config.sites;
  wc.total_updates = 30000;
  const std::vector<StreamRecord> trace = GenerateWorldCupTrace(wc);

  RunOutput out;
  out.result = Run(config, trace);
  out.trace_lines.reserve(sink.events_log().size());
  for (const TraceEvent& e : sink.events_log()) {
    out.trace_lines.push_back(JsonlTraceSink::EventJson(e));
  }
  return out;
}

// The discrete-event network cannot be sharded (delivery order is part
// of protocol state), so --threads over a simulated network must fall
// back to the serial loop and reproduce it exactly — drops, latency,
// retransmissions and all.
TEST(ParallelDeterminism, SimulatedNetworkChaosFallsBackBitIdentical) {
  const RunOutput serial = RunOnceChaos(1);
  EXPECT_TRUE(serial.result.net_enabled);
  EXPECT_GT(serial.result.net.dropped_msgs, 0);
  const RunOutput parallel = RunOnceChaos(8);
  EXPECT_EQ(parallel.result.threads_used, 1);
  EXPECT_EQ(parallel.result.parallel_windows, 0);
  ExpectIdentical(serial, parallel, "sim chaos");
}

// fast_merge gives up bit-identity with serial (coordinator interactions
// run on live end-of-window state) but must stay deterministic for a
// fixed stream: two runs at the same thread count agree bit for bit, no
// window ever rolls back, and the monitoring output remains sane.
TEST(ParallelDeterminism, FastMergeDeterministicAndNeverRollsBack) {
  auto run_fast = [](int threads) {
    RunConfig config;
    config.protocol = ProtocolKind::kFgm;
    config.query = QueryKind::kSelfJoin;
    config.sites = 5;
    config.depth = 5;
    config.width = 60;
    config.threads = threads;
    config.fast_merge = true;
    WorldCupConfig wc;
    wc.sites = config.sites;
    wc.total_updates = 30000;
    return ::fgm::Run(config, GenerateWorldCupTrace(wc));
  };
  const RunResult a = run_fast(4);
  const RunResult b = run_fast(4);
  EXPECT_GT(a.parallel_windows, 0);
  EXPECT_EQ(a.parallel_barriers, 0);
  EXPECT_EQ(a.replayed_records, 0);
  EXPECT_EQ(a.wasted_records, 0);
  EXPECT_EQ(a.traffic.total_words(), b.traffic.total_words());
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.final_estimate, b.final_estimate);
  EXPECT_EQ(a.events, b.events);
  // Same exact ground truth as any other mode; the estimate still tracks
  // it (loosely — fast merge defers some violations to the next window).
  EXPECT_EQ(a.final_truth, b.final_truth);
  EXPECT_GT(a.rounds, 0);
  EXPECT_GT(a.final_estimate, 0.0);
}

}  // namespace
}  // namespace fgm
