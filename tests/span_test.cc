// Causal span layer (obs/span.h): sink mechanics, Chrome Trace Event
// export/parse round-trip, the CheckSpans invariants, critical-path
// attribution, and end-to-end span emission — serial FGM, the 4-thread
// parallel engine, the span-wire envelope, and the chaos grid (loss ×
// latency × crash), where every span must still close and the
// per-direction span word sums must re-add to the run's traffic totals.

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "driver/runner.h"
#include "obs/span.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

// ---------------------------------------------------------------------
// Sink mechanics.

TEST(SpanSink, AutoParentFollowsTheOpenStack) {
  SpanSink sink;
  const int64_t run = sink.Begin(SpanKind::kRun);
  const int64_t round = sink.Begin(SpanKind::kRound, -1, 1);
  const int64_t sub = sink.Begin(SpanKind::kSubround, -1, 1, 1);
  EXPECT_EQ(sink.CurrentId(), sub);
  sink.End(sub);
  sink.End(round);
  sink.End(run);
  const std::vector<Span> spans = sink.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent, 0) << "first span is the root";
  EXPECT_EQ(spans[1].parent, run);
  EXPECT_EQ(spans[2].parent, round);
  for (const Span& s : spans) EXPECT_GE(s.end, s.begin);
  EXPECT_EQ(sink.open_spans(), 0);
}

TEST(SpanSink, EndToleratesOutOfOrderCloses) {
  SpanSink sink;
  const int64_t run = sink.Begin(SpanKind::kRun);
  const int64_t round = sink.Begin(SpanKind::kRound, -1, 1);
  const int64_t sub = sink.Begin(SpanKind::kSubround, -1, 1, 1);
  // A resync can force-close the round from inside the subround scope.
  sink.End(round, "forced");
  EXPECT_EQ(sink.open_spans(), 2);
  sink.End(sub);
  sink.End(run);
  EXPECT_EQ(sink.open_spans(), 0);
  EXPECT_EQ(sink.Snapshot()[1].reason, std::string("forced"));
}

TEST(SpanSink, CloseAllClosesEverythingInnermostFirst) {
  SpanSink sink;
  sink.Begin(SpanKind::kRun);
  sink.Begin(SpanKind::kRound, -1, 1);
  sink.Begin(SpanKind::kRpc, 2);
  sink.CloseAll("run-end");
  ASSERT_EQ(sink.open_spans(), 0);
  for (const Span& s : sink.Snapshot()) {
    EXPECT_GE(s.end, s.begin);
    EXPECT_EQ(s.reason, std::string("run-end"));
  }
}

TEST(SpanSink, EndWithStatsRecordsWordsAndAttempts) {
  SpanSink sink;
  sink.Begin(SpanKind::kRun);
  const int64_t rpc = sink.Begin(SpanKind::kRpc, 3);
  sink.EndWithStats(rpc, nullptr, /*words=*/17, /*count=*/2);
  const Span s = sink.Snapshot()[1];
  EXPECT_EQ(s.words, 17);
  EXPECT_EQ(s.count, 2);
  sink.CloseAll(nullptr);
}

TEST(SpanSink, TickClockRebasesOpenSpans) {
  SpanSink sink;
  sink.Begin(SpanKind::kRun);
  int64_t now = 100;
  sink.UseTickClock(&now);
  now = 250;
  const int64_t rpc = sink.Begin(SpanKind::kRpc, 0);
  now = 300;
  sink.End(rpc);
  sink.CloseAll(nullptr);
  const std::vector<Span> spans = sink.Snapshot();
  EXPECT_EQ(spans[1].begin, 250);
  EXPECT_EQ(spans[1].end, 300);
  EXPECT_LE(spans[0].begin, spans[1].begin) << "open span rebased";
  EXPECT_GE(spans[0].end, spans[1].end);
}

// ---------------------------------------------------------------------
// Export / parse / check.

TEST(SpanExport, ChromeTraceRoundTripsThroughParser) {
  SpanSink sink;
  sink.Begin(SpanKind::kRun);
  const int64_t round = sink.Begin(SpanKind::kRound, -1, 1);
  Span msg;
  msg.kind = SpanKind::kMsg;
  msg.site = 2;
  msg.round = 1;
  msg.begin = sink.Now();
  msg.words = 9;
  msg.count = 1;
  msg.dir = +1;
  msg.label = "quantum";
  sink.EmitComplete(msg);
  sink.End(round);
  sink.CloseAll(nullptr);

  std::vector<ParsedSpan> parsed;
  std::string error;
  ASSERT_TRUE(ParseSpanJson(sink.ChromeTraceJson(), &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].kind, "run");
  EXPECT_EQ(parsed[1].kind, "round");
  EXPECT_EQ(parsed[2].kind, "msg");
  EXPECT_EQ(parsed[2].site, 2);
  EXPECT_EQ(parsed[2].words, 9);
  EXPECT_EQ(parsed[2].dir, 1);
  EXPECT_EQ(parsed[2].label, "quantum");
  EXPECT_EQ(parsed[2].parent, parsed[1].id);
  EXPECT_TRUE(parsed[2].closed);

  SpanCheckStats stats;
  const std::vector<std::string> issues =
      CheckSpans(parsed, /*expect_up=*/9, /*expect_down=*/0, &stats);
  EXPECT_TRUE(issues.empty()) << issues.front();
  EXPECT_EQ(stats.spans, 3);
  EXPECT_EQ(stats.msg_up_words, 9);
}

TEST(SpanCheck, FlagsOpenSpansContainmentAndWordMismatch) {
  SpanSink sink;
  sink.Begin(SpanKind::kRun);
  sink.Begin(SpanKind::kRpc, 1);  // leaked: never closed
  std::vector<ParsedSpan> parsed;
  std::string error;
  ASSERT_TRUE(ParseSpanJson(sink.ChromeTraceJson(), &parsed, &error)) << error;
  SpanCheckStats stats;
  EXPECT_FALSE(CheckSpans(parsed, -1, -1, &stats).empty());
  EXPECT_EQ(stats.open, 2);

  // Child interval escaping its (closed) parent.
  SpanSink sink2;
  const int64_t run = sink2.Begin(SpanKind::kRun);
  sink2.CloseAll(nullptr);
  Span stray;
  stray.kind = SpanKind::kMsg;
  stray.parent = run;
  stray.site = 0;
  stray.dir = -1;
  stray.begin = sink2.Snapshot()[0].end + 1000;
  stray.end = stray.begin + 1;
  stray.words = 3;
  sink2.EmitComplete(stray);
  ASSERT_TRUE(ParseSpanJson(sink2.ChromeTraceJson(), &parsed, &error))
      << error;
  EXPECT_FALSE(CheckSpans(parsed, -1, -1, nullptr).empty())
      << "child outside parent must be flagged";

  // Word-sum mismatch against the expected totals.
  EXPECT_FALSE(CheckSpans(parsed, /*expect_up=*/0, /*expect_down=*/999,
                          nullptr)
                   .empty());
}

TEST(CriticalPath, AttributesTheSlowestChildPerSubround) {
  SpanSink sink;
  sink.Begin(SpanKind::kRun);
  int64_t now = 0;
  sink.UseTickClock(&now);
  const int64_t round = sink.Begin(SpanKind::kRound, -1, 1);
  const int64_t sub = sink.Begin(SpanKind::kSubround, -1, 1, 1);
  for (int site = 0; site < 3; ++site) {
    Span rpc;
    rpc.kind = SpanKind::kRpc;
    rpc.parent = sub;
    rpc.site = site;
    rpc.begin = 0;
    rpc.end = site == 1 ? 40 : 10;  // site 1 is the straggler
    rpc.count = site == 1 ? 3 : 1;  // with two retransmits
    sink.EmitComplete(rpc);
  }
  now = 40;
  sink.End(sub);
  sink.End(round);
  sink.CloseAll(nullptr);

  std::vector<ParsedSpan> parsed;
  std::string error;
  ASSERT_TRUE(ParseSpanJson(sink.ChromeTraceJson(), &parsed, &error)) << error;
  const CriticalPathSummary cp = SummarizeCriticalPath(parsed);
  ASSERT_EQ(cp.gates.size(), 1u);
  EXPECT_EQ(cp.gates[0].site, 1);
  EXPECT_EQ(cp.gates[0].wait, 40);
  EXPECT_EQ(cp.gates[0].attempts, 3);
  ASSERT_FALSE(cp.top_sites.empty());
  EXPECT_EQ(cp.top_sites[0].site, 1);
  EXPECT_EQ(cp.top_sites[0].gated, 1);
  EXPECT_EQ(cp.top_sites[0].retransmits, 2);
  EXPECT_EQ(cp.network_time, 60) << "sum of rpc durations";
}

// ---------------------------------------------------------------------
// End-to-end: runner-level span emission.

struct SpanRun {
  RunResult result;
  std::vector<ParsedSpan> spans;
  SpanCheckStats stats;
  std::vector<std::string> issues;
};

SpanRun RunWithSpans(ProtocolKind protocol, int threads,
                     const sim::NetSimConfig& net, bool span_wire,
                     int64_t updates = 20000) {
  RunConfig config;
  config.protocol = protocol;
  config.query = QueryKind::kSelfJoin;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  config.threads = threads;
  config.net = net;
  config.span_wire = span_wire;
  SpanSink sink;
  config.spans = &sink;

  WorldCupConfig wc;
  wc.sites = config.sites;
  wc.total_updates = updates;
  const std::vector<StreamRecord> trace = GenerateWorldCupTrace(wc);

  SpanRun out;
  out.result = Run(config, trace);
  std::string error;
  EXPECT_TRUE(ParseSpanJson(sink.ChromeTraceJson(), &out.spans, &error))
      << error;
  out.issues = CheckSpans(out.spans, out.result.traffic.upstream_words,
                          out.result.traffic.downstream_words, &out.stats);
  return out;
}

TEST(SpanEndToEnd, SerialFgmClosesEverySpanAndConservesWords) {
  const SpanRun out = RunWithSpans(ProtocolKind::kFgm, /*threads=*/1,
                                   sim::NetSimConfig(), /*span_wire=*/false);
  EXPECT_TRUE(out.issues.empty()) << out.issues.front();
  EXPECT_EQ(out.stats.open, 0);
  EXPECT_GT(out.stats.spans, out.result.rounds)
      << "at least one span per round plus messages";
  const CriticalPathSummary cp = SummarizeCriticalPath(out.spans);
  EXPECT_GT(cp.run_time, 0);
  EXPECT_EQ(cp.gates.size(), static_cast<size_t>(out.result.subrounds));
}

TEST(SpanEndToEnd, OptimizerProtocolConserves) {
  const SpanRun out = RunWithSpans(ProtocolKind::kFgmOpt, /*threads=*/1,
                                   sim::NetSimConfig(), /*span_wire=*/false);
  EXPECT_TRUE(out.issues.empty()) << out.issues.front();
  EXPECT_EQ(out.stats.open, 0);
}

TEST(SpanEndToEnd, ParallelRunEmitsWindowSpansAndConserves) {
  const SpanRun out = RunWithSpans(ProtocolKind::kFgm, /*threads=*/4,
                                   sim::NetSimConfig(), /*span_wire=*/false);
  EXPECT_TRUE(out.issues.empty()) << out.issues.front();
  EXPECT_EQ(out.stats.open, 0);
  int64_t windows = 0, shard_segments = 0, commits = 0;
  for (const ParsedSpan& s : out.spans) {
    if (s.kind == "speculate") ++windows;
    if (s.kind == "shard-speculate") ++shard_segments;
    if (s.kind == "commit") ++commits;
  }
  EXPECT_EQ(windows, out.result.parallel_windows);
  EXPECT_EQ(commits, windows);
  EXPECT_GT(shard_segments, 0);
  const CriticalPathSummary cp = SummarizeCriticalPath(out.spans);
  EXPECT_GT(cp.speculate_time, 0);
  EXPECT_GT(cp.commit_time, 0);
}

TEST(SpanEndToEnd, SpanWireChargesOneExtraWordPerMessage) {
  const SpanRun plain = RunWithSpans(ProtocolKind::kFgm, 1,
                                     sim::NetSimConfig(), false);
  const SpanRun wired = RunWithSpans(ProtocolKind::kFgm, 1,
                                     sim::NetSimConfig(), true);
  EXPECT_TRUE(wired.issues.empty()) << wired.issues.front();
  // The +1/message envelope cost is charged honestly: total traffic grows
  // by exactly the message count (rounds and messages are unchanged
  // because the charge never feeds back into protocol decisions).
  EXPECT_EQ(wired.result.rounds, plain.result.rounds);
  const int64_t msgs =
      plain.result.traffic.upstream_messages + plain.result.traffic.downstream_messages;
  EXPECT_EQ(wired.result.traffic.total_words(),
            plain.result.traffic.total_words() + msgs);
}

// Chaos grid: every span still closes under loss, latency and a crash —
// dropped attempts and datagrams get their own spans, and the word sums
// still re-add to the (drop-inclusive) charged traffic.
using SpanChaosParam = std::tuple<double, const char*>;

class SpanChaosGrid : public ::testing::TestWithParam<SpanChaosParam> {};

TEST_P(SpanChaosGrid, EverySpanClosesAndWordsConserve) {
  const auto [drop, latency] = GetParam();
  sim::NetSimConfig net;
  net.latency = latency;
  net.drop = drop;
  net.fault_plan = "crash:site=2,at=10000,rejoin=14000";
  const SpanRun out = RunWithSpans(ProtocolKind::kFgm, /*threads=*/1, net,
                                   /*span_wire=*/false);
  EXPECT_TRUE(out.issues.empty()) << out.issues.front();
  EXPECT_EQ(out.stats.open, 0);
  EXPECT_EQ(out.result.net.site_downs, 1);
  bool saw_resync = false, saw_rpc = false;
  for (const ParsedSpan& s : out.spans) {
    if (s.kind == "resync") saw_resync = true;
    if (s.kind == "rpc") saw_rpc = true;
  }
  EXPECT_TRUE(saw_rpc);
  if (out.result.net.resyncs > 0) EXPECT_TRUE(saw_resync);
  if (drop > 0.0) {
    const CriticalPathSummary cp = SummarizeCriticalPath(out.spans);
    EXPECT_EQ(cp.retransmits, out.result.net.retransmitted_msgs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossLatency, SpanChaosGrid,
    ::testing::Combine(::testing::Values(0.0, 0.2),
                       ::testing::Values("uniform:1-16", "exp:8")),
    [](const ::testing::TestParamInfo<SpanChaosParam>& info) {
      std::string name = "drop" + std::to_string(static_cast<int>(
                                      std::get<0>(info.param) * 100));
      name += "_";
      for (const char* p = std::get<1>(info.param); *p != '\0'; ++p) {
        name += (*p == ':' || *p == '-') ? '_' : *p;
      }
      return name;
    });

// Spans must not perturb the run: same protocol, same stream, with and
// without a sink — traffic, rounds and subrounds are bit-identical.
TEST(SpanEndToEnd, SpansOffAndOnProduceIdenticalTraffic) {
  RunConfig config;
  config.protocol = ProtocolKind::kFgm;
  config.query = QueryKind::kSelfJoin;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  WorldCupConfig wc;
  wc.sites = config.sites;
  wc.total_updates = 20000;
  const std::vector<StreamRecord> trace = GenerateWorldCupTrace(wc);

  const RunResult off = fgm::Run(config, trace);
  SpanSink sink;
  config.spans = &sink;
  const RunResult on = fgm::Run(config, trace);
  EXPECT_EQ(on.traffic.total_words(), off.traffic.total_words());
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.subrounds, off.subrounds);
  EXPECT_EQ(on.traffic.upstream_messages, off.traffic.upstream_messages);
  EXPECT_EQ(on.traffic.downstream_messages, off.traffic.downstream_messages);
}

}  // namespace
}  // namespace fgm
