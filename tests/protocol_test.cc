// End-to-end protocol tests: FGM (all variants), classic GM and the
// centralizing baseline, exercised through the experiment driver with
// per-event verification of the monitoring guarantee against exact ground
// truth.

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/fgm_protocol.h"
#include "driver/runner.h"
#include "gm/gm_protocol.h"
#include "stream/partition.h"
#include "stream/window.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

std::vector<StreamRecord> SmallTrace(int sites, int64_t updates,
                                     uint64_t seed = 20190326) {
  WorldCupConfig config;
  config.sites = sites;
  config.total_updates = updates;
  config.duration = 10000.0;
  config.distinct_clients = 2000;
  config.seed = seed;
  return GenerateWorldCupTrace(config);
}

RunConfig SmallRun(ProtocolKind protocol, QueryKind query, int sites,
                   double window) {
  RunConfig config;
  config.protocol = protocol;
  config.query = query;
  config.sites = sites;
  config.depth = 5;
  config.width = 32;
  config.epsilon = 0.15;
  config.window_seconds = window;
  config.check_every = 1;  // verify the guarantee after EVERY event
  config.fp_dimension = 64;
  return config;
}

// The exhaustive correctness sweep: protocol × query × stream model.
// The monitoring guarantee must hold at every event where the protocol
// certifies its bounds.
using SweepParam = std::tuple<ProtocolKind, QueryKind, double>;

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const ProtocolKind p = std::get<0>(info.param);
  const QueryKind q = std::get<1>(info.param);
  const double w = std::get<2>(info.param);
  std::string name = ProtocolKindName(p);
  for (char& c : name) {
    if (c == '/' || c == '-') c = '_';
  }
  name += q == QueryKind::kSelfJoin  ? "_Q1"
          : q == QueryKind::kJoin    ? "_Q2"
                                     : "_Fp";
  name += w > 0 ? "_turnstile" : "_cashregister";
  return name;
}

class GuaranteeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GuaranteeSweep, BoundsHoldAtEveryEvent) {
  const auto [protocol, query, window] = GetParam();
  const int sites = 6;
  const auto trace = SmallTrace(sites, 30000);
  RunConfig config = SmallRun(protocol, query, sites, window);
  const RunResult result = ::fgm::Run(config, trace);
  EXPECT_GT(result.checks, 0);
  // Allow only floating-point hairline overshoots (fraction of margin).
  EXPECT_LE(result.max_violation, 1e-6)
      << result.protocol_name << " / " << result.query_name
      << " window=" << window;
  // All protocols must actually have processed the stream.
  const int64_t expected_events =
      window > 0 ? 2 * static_cast<int64_t>(trace.size())
                 : static_cast<int64_t>(trace.size());
  EXPECT_EQ(result.events, expected_events);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsQueriesModels, GuaranteeSweep,
    ::testing::Combine(
        ::testing::Values(ProtocolKind::kFgm, ProtocolKind::kFgmBasic,
                          ProtocolKind::kFgmOpt, ProtocolKind::kGm,
                          ProtocolKind::kCentral),
        ::testing::Values(QueryKind::kSelfJoin, QueryKind::kJoin,
                          QueryKind::kFpNorm),
        ::testing::Values(0.0, 1500.0)),
    SweepName);

TEST(FgmProtocol, TracksTheQueryAcrossRounds) {
  const int sites = 4;
  const auto trace = SmallTrace(sites, 40000);
  RunConfig config = SmallRun(ProtocolKind::kFgm, QueryKind::kSelfJoin,
                              sites, 0.0);
  config.check_every = 100;
  const RunResult result = ::fgm::Run(config, trace);
  EXPECT_GT(result.rounds, 3);
  // At the end the estimate must be within the bound of the truth.
  EXPECT_NEAR(result.final_estimate, result.final_truth,
              config.epsilon * result.final_truth +
                  2 * config.threshold_floor);
}

TEST(FgmProtocol, SubroundsPerRoundStayNearTheoreticalLog) {
  // §2.5.1: the paper observed ≤ 10 subrounds per round, typically
  // ≈ log2(1/ε_ψ) ≈ 7.
  const int sites = 6;
  const auto trace = SmallTrace(sites, 50000);
  auto query = MakeQuery(SmallRun(ProtocolKind::kFgm, QueryKind::kSelfJoin,
                                  sites, 0.0));
  FgmConfig fc;
  FgmProtocol protocol(query.get(), sites, fc);
  SlidingWindowStream events(&trace, 0.0);
  while (const StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
  }
  ASSERT_GT(protocol.rounds(), 5);
  const double mean = protocol.subrounds_per_round().Mean();
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 20.0);
  EXPECT_LE(protocol.subrounds_per_round().Quantile(0.9), 16);
}

TEST(FgmProtocol, RebalancingExtendsRounds) {
  const int sites = 6;
  const auto trace = SmallTrace(sites, 40000);
  const double window = 1200.0;  // turnstile: drifts partially cancel

  RunConfig with = SmallRun(ProtocolKind::kFgm, QueryKind::kSelfJoin, sites,
                            window);
  with.check_every = 0;
  RunConfig without = with;
  without.protocol = ProtocolKind::kFgmBasic;

  const RunResult r_with = ::fgm::Run(with, trace);
  const RunResult r_without = ::fgm::Run(without, trace);
  EXPECT_GT(r_with.rebalances, 0);
  // Rebalancing must reduce the number of E-shipping rounds.
  EXPECT_LT(r_with.rounds, r_without.rounds);
}

TEST(FgmProtocol, PsiStaysBelowZeroWhileCertified) {
  // Proposition 2.6 at the protocol level: whenever the coordinator's
  // counter is ≤ k (BoundsCertified), the last polled ψ is negative and
  // the estimate bounds are in force.
  const int sites = 5;
  const auto trace = SmallTrace(sites, 20000);
  auto query = MakeQuery(SmallRun(ProtocolKind::kFgm, QueryKind::kSelfJoin,
                                  sites, 0.0));
  FgmConfig fc;
  FgmProtocol protocol(query.get(), sites, fc);
  SlidingWindowStream events(&trace, 0.0);
  while (const StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    ASSERT_TRUE(protocol.BoundsCertified());
    ASSERT_LT(protocol.last_psi(), 0.0);
  }
}

TEST(FgmProtocol, OptimizerUsesCheapFunctionsUnderPressure) {
  // Huge D relative to the stream: FGM/O should stop shipping safe zones
  // (the Fig. 4 adverse regime).
  const int sites = 8;
  const auto trace = SmallTrace(sites, 30000);
  RunConfig config = SmallRun(ProtocolKind::kFgmOpt, QueryKind::kSelfJoin,
                              sites, 600.0);
  config.width = 512;  // D = 2560 vs ~60k events
  config.epsilon = 0.05;
  config.check_every = 0;
  const RunResult opt = ::fgm::Run(config, trace);
  EXPECT_LT(opt.mean_full_function_fraction, 0.9);

  config.protocol = ProtocolKind::kFgm;
  const RunResult plain = ::fgm::Run(config, trace);
  EXPECT_LT(opt.comm_cost, plain.comm_cost);
}

TEST(GmProtocol, ViolationsAndPartialRebalances) {
  const int sites = 6;
  const auto trace = SmallTrace(sites, 30000);
  RunConfig rc = SmallRun(ProtocolKind::kGm, QueryKind::kSelfJoin, sites,
                          0.0);
  auto query = MakeQuery(rc);
  GmConfig gc;
  GmProtocol protocol(query.get(), sites, gc);
  SlidingWindowStream events(&trace, 0.0);
  while (const StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
  }
  EXPECT_GT(protocol.violations(), 0);
  EXPECT_GT(protocol.partial_rebalances(), 0);
  EXPECT_GT(protocol.rounds(), 1);
  // Rebalancing resolves more violations than full syncs do.
  EXPECT_LT(protocol.rounds(), protocol.violations());
}

TEST(GmProtocol, LoadDriftSetsEvaluatorState) {
  auto proj = std::make_shared<const AgmsProjection>(3, 8, 5);
  RealVector e(proj->dimension());
  e[0] = 4.0;
  SelfJoinQuery query(proj, 0.2);
  auto fn = query.MakeSafeFunction(e);
  auto eval = fn->MakeEvaluator();
  RealVector target(proj->dimension());
  target[3] = 1.5;
  target[17] = -2.5;
  LoadDrift(eval.get(), target);
  EXPECT_NEAR(eval->Value(), fn->Eval(target), 1e-9);
  EXPECT_NEAR(Distance(eval->drift(), target), 0.0, 1e-12);
}

TEST(CentralProtocol, ExactAndUnitCost) {
  const int sites = 3;
  const auto trace = SmallTrace(sites, 5000);
  RunConfig config = SmallRun(ProtocolKind::kCentral, QueryKind::kSelfJoin,
                              sites, 0.0);
  const RunResult result = ::fgm::Run(config, trace);
  EXPECT_DOUBLE_EQ(result.comm_cost, 1.0);
  EXPECT_DOUBLE_EQ(result.upstream_fraction, 0.0);
  EXPECT_NEAR(result.final_estimate, result.final_truth,
              1e-9 * std::fabs(result.final_truth));
  EXPECT_DOUBLE_EQ(result.max_violation, 0.0);
}

TEST(FgmProtocol, SkewDoesNotChangeRoundStructure) {
  // §5.4: ψ is a function of the drift sum only, so redistributing the
  // same global stream across sites leaves the round count unchanged
  // (without the optimizer, whose plan depends on per-site rates).
  const int sites = 9;
  auto trace = SmallTrace(sites, 30000);
  const auto skewed = MakeSkewedTrace(trace, sites, 4);

  RunConfig config = SmallRun(ProtocolKind::kFgm, QueryKind::kSelfJoin,
                              sites, 0.0);
  config.check_every = 0;
  const RunResult real = ::fgm::Run(config, trace);
  const RunResult skew = ::fgm::Run(config, skewed);
  EXPECT_EQ(real.rounds, skew.rounds);
}

}  // namespace
}  // namespace fgm
