// End-to-end replay validation: every protocol kind, run under strict
// wire accounting, produces a JSONL trace that the offline checker
// certifies, with summed per-message words bit-matching the run's
// TrafficStats. Also exercises the checker's failure paths on tampered
// and missing traces.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/runner.h"
#include "obs/replay.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

std::vector<StreamRecord> SmallTrace(int sites) {
  WorldCupConfig config;
  config.sites = sites;
  config.total_updates = 30000;
  config.duration = 86400.0;
  config.distinct_clients = 20000;
  return GenerateWorldCupTrace(config);
}

RunConfig SmallRun(ProtocolKind kind, const std::string& trace_path) {
  RunConfig config;
  config.protocol = kind;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  config.epsilon = 0.1;
  config.strict_wire = true;
  config.trace_out = trace_path;
  return config;
}

class ReplayAllProtocols : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ReplayAllProtocols, TraceCertifiesAndWordsMatch) {
  const ProtocolKind kind = GetParam();
  const std::string path = ::testing::TempDir() + "/replay_" +
                           std::to_string(static_cast<int>(kind)) + ".jsonl";
  const RunConfig config = SmallRun(kind, path);
  const RunResult result = ::fgm::Run(config, SmallTrace(config.sites));

  const ReplayReport report = CheckTraceFile(path);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.saw_run_end);
  EXPECT_GT(report.events, 0);
  // Summed per-message trace words bit-match the run's TrafficStats.
  EXPECT_EQ(report.up_words, result.traffic.upstream_words);
  EXPECT_EQ(report.down_words, result.traffic.downstream_words);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ReplayAllProtocols,
    ::testing::Values(ProtocolKind::kCentral, ProtocolKind::kGm,
                      ProtocolKind::kFgmBasic, ProtocolKind::kFgm,
                      ProtocolKind::kFgmOpt),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      switch (info.param) {
        case ProtocolKind::kCentral:
          return std::string("Central");
        case ProtocolKind::kGm:
          return std::string("Gm");
        case ProtocolKind::kFgmBasic:
          return std::string("FgmBasic");
        case ProtocolKind::kFgm:
          return std::string("Fgm");
        case ProtocolKind::kFgmOpt:
          return std::string("FgmOpt");
      }
      return std::string("Unknown");
    });

TEST(ReplayChecker, GmTraceTalliesRoundsAndFlushes) {
  const std::string path = ::testing::TempDir() + "/replay_gm_tally.jsonl";
  const RunConfig config = SmallRun(ProtocolKind::kGm, path);
  const RunResult result = ::fgm::Run(config, SmallTrace(config.sites));

  const ReplayReport report = CheckTraceFile(path);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.rounds, result.rounds);
  EXPECT_GT(report.messages, 0);
  // GM has no FGM/O optimizer, so the trace carries no plan audit.
  EXPECT_EQ(report.plans, 0);
  EXPECT_EQ(report.plan_outcomes, 0);
  std::remove(path.c_str());
}

TEST(ReplayChecker, FgmOTraceCarriesPlanAudit) {
  const std::string path = ::testing::TempDir() + "/replay_fgmo_plan.jsonl";
  const RunConfig config = SmallRun(ProtocolKind::kFgmOpt, path);
  const RunResult result = ::fgm::Run(config, SmallTrace(config.sites));

  const ReplayReport report = CheckTraceFile(path);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // One PlanChosen per round; one PlanOutcome per *completed* round (the
  // final round ends with the run, so its outcome is never observed).
  EXPECT_EQ(report.plans, result.rounds);
  EXPECT_EQ(report.plan_outcomes, result.rounds - 1);
  std::remove(path.c_str());
}

/// Replaces the number following `"field":` on the first line containing
/// `"ev":"<ev>"` with `replacement`; returns the tampered trace text.
std::string TamperFirst(const std::string& path, const std::string& ev,
                        const std::string& field,
                        const std::string& replacement, bool* corrupted) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open());
  std::string tampered, line;
  const std::string key = "\"" + field + "\":";
  *corrupted = false;
  while (std::getline(in, line)) {
    const size_t at = line.find(key);
    if (!*corrupted &&
        line.find("\"ev\":\"" + ev + "\"") != std::string::npos &&
        at != std::string::npos) {
      size_t begin = at + key.size();
      size_t end = begin;
      while (end < line.size() && line[end] != ',' && line[end] != '}') {
        ++end;
      }
      line.replace(begin, end - begin, replacement);
      *corrupted = true;
    }
    tampered += line + "\n";
  }
  return tampered;
}

// The per-round ledger check: a PlanOutcome's words must re-sum the
// round's MsgSent events bit-exactly.
TEST(ReplayChecker, DetectsTamperedPlanOutcomeWords) {
  const std::string path = ::testing::TempDir() + "/replay_plan_words.jsonl";
  const RunConfig config = SmallRun(ProtocolKind::kFgmOpt, path);
  ::fgm::Run(config, SmallTrace(config.sites));

  bool corrupted = false;
  const std::string tampered =
      TamperFirst(path, "PlanOutcome", "words", "999999999", &corrupted);
  std::remove(path.c_str());
  ASSERT_TRUE(corrupted) << "expected a PlanOutcome in the FGM/O trace";

  std::istringstream in(tampered);
  const ReplayReport report = CheckTrace(in);
  EXPECT_FALSE(report.ok()) << "tampered PlanOutcome words must be detected";
}

TEST(ReplayChecker, DetectsTamperedPlanOutcomeGain) {
  const std::string path = ::testing::TempDir() + "/replay_plan_gain.jsonl";
  const RunConfig config = SmallRun(ProtocolKind::kFgmOpt, path);
  ::fgm::Run(config, SmallTrace(config.sites));

  bool corrupted = false;
  const std::string tampered =
      TamperFirst(path, "PlanOutcome", "actual_gain", "12345.5", &corrupted);
  std::remove(path.c_str());
  ASSERT_TRUE(corrupted);

  std::istringstream in(tampered);
  const ReplayReport report = CheckTrace(in);
  EXPECT_FALSE(report.ok()) << "actual_gain must equal updates - words";
}

TEST(ReplayChecker, DetectsTamperedCounterTotal) {
  const std::string path = ::testing::TempDir() + "/replay_tamper.jsonl";
  const RunConfig config = SmallRun(ProtocolKind::kFgm, path);
  ::fgm::Run(config, SmallTrace(config.sites));

  // Corrupt the first poll's counter total; the quantum arithmetic check
  // must flag it.
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string tampered, line;
  bool corrupted = false;
  while (std::getline(in, line)) {
    const size_t at = line.find("\"counter\":");
    if (!corrupted && line.find("\"ev\":\"SubroundEnd\"") != std::string::npos &&
        at != std::string::npos) {
      size_t digits_begin = at + std::string("\"counter\":").size();
      size_t digits_end = digits_begin;
      while (digits_end < line.size() && std::isdigit(line[digits_end])) {
        ++digits_end;
      }
      line.replace(digits_begin, digits_end - digits_begin, "999999999");
      corrupted = true;
    }
    tampered += line + "\n";
  }
  in.close();
  std::remove(path.c_str());
  ASSERT_TRUE(corrupted) << "expected at least one SubroundEnd in the trace";

  std::istringstream tampered_in(tampered);
  const ReplayReport report = CheckTrace(tampered_in);
  EXPECT_FALSE(report.ok()) << "tampered counter must be detected";
}

TEST(ReplayChecker, MissingFileIsAnIssue) {
  const ReplayReport report =
      CheckTraceFile(::testing::TempDir() + "/no_such_trace.jsonl");
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace fgm
