// End-to-end replay validation: every protocol kind, run under strict
// wire accounting, produces a JSONL trace that the offline checker
// certifies, with summed per-message words bit-matching the run's
// TrafficStats. Also exercises the checker's failure paths on tampered
// and missing traces.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/runner.h"
#include "obs/replay.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

std::vector<StreamRecord> SmallTrace(int sites) {
  WorldCupConfig config;
  config.sites = sites;
  config.total_updates = 30000;
  config.duration = 86400.0;
  config.distinct_clients = 20000;
  return GenerateWorldCupTrace(config);
}

RunConfig SmallRun(ProtocolKind kind, const std::string& trace_path) {
  RunConfig config;
  config.protocol = kind;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  config.epsilon = 0.1;
  config.strict_wire = true;
  config.trace_out = trace_path;
  return config;
}

class ReplayAllProtocols : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ReplayAllProtocols, TraceCertifiesAndWordsMatch) {
  const ProtocolKind kind = GetParam();
  const std::string path = ::testing::TempDir() + "/replay_" +
                           std::to_string(static_cast<int>(kind)) + ".jsonl";
  const RunConfig config = SmallRun(kind, path);
  const RunResult result = ::fgm::Run(config, SmallTrace(config.sites));

  const ReplayReport report = CheckTraceFile(path);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.saw_run_end);
  EXPECT_GT(report.events, 0);
  // Summed per-message trace words bit-match the run's TrafficStats.
  EXPECT_EQ(report.up_words, result.traffic.upstream_words);
  EXPECT_EQ(report.down_words, result.traffic.downstream_words);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ReplayAllProtocols,
    ::testing::Values(ProtocolKind::kCentral, ProtocolKind::kGm,
                      ProtocolKind::kFgmBasic, ProtocolKind::kFgm,
                      ProtocolKind::kFgmOpt),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      switch (info.param) {
        case ProtocolKind::kCentral:
          return std::string("Central");
        case ProtocolKind::kGm:
          return std::string("Gm");
        case ProtocolKind::kFgmBasic:
          return std::string("FgmBasic");
        case ProtocolKind::kFgm:
          return std::string("Fgm");
        case ProtocolKind::kFgmOpt:
          return std::string("FgmOpt");
      }
      return std::string("Unknown");
    });

TEST(ReplayChecker, DetectsTamperedCounterTotal) {
  const std::string path = ::testing::TempDir() + "/replay_tamper.jsonl";
  const RunConfig config = SmallRun(ProtocolKind::kFgm, path);
  ::fgm::Run(config, SmallTrace(config.sites));

  // Corrupt the first poll's counter total; the quantum arithmetic check
  // must flag it.
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string tampered, line;
  bool corrupted = false;
  while (std::getline(in, line)) {
    const size_t at = line.find("\"counter\":");
    if (!corrupted && line.find("\"ev\":\"SubroundEnd\"") != std::string::npos &&
        at != std::string::npos) {
      size_t digits_begin = at + std::string("\"counter\":").size();
      size_t digits_end = digits_begin;
      while (digits_end < line.size() && std::isdigit(line[digits_end])) {
        ++digits_end;
      }
      line.replace(digits_begin, digits_end - digits_begin, "999999999");
      corrupted = true;
    }
    tampered += line + "\n";
  }
  in.close();
  std::remove(path.c_str());
  ASSERT_TRUE(corrupted) << "expected at least one SubroundEnd in the trace";

  std::istringstream tampered_in(tampered);
  const ReplayReport report = CheckTrace(tampered_in);
  EXPECT_FALSE(report.ok()) << "tampered counter must be detected";
}

TEST(ReplayChecker, MissingFileIsAnIssue) {
  const ReplayReport report =
      CheckTraceFile(::testing::TempDir() + "/no_such_trace.jsonl");
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace fgm
