// Tests for quantile (percentile) monitoring: bucketization, the rank
// thresholds, the linear safe zone, and the end-to-end guarantee.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/fgm_protocol.h"
#include "query/quantile.h"
#include "query/variance.h"
#include "stream/window.h"
#include "stream/worldcup.h"
#include "util/rng.h"

namespace fgm {
namespace {

TEST(QuantileQuery, BucketizationRoundTrips) {
  QuantileQuery query(32, 0.5, 0.05);
  for (const double v : {0.1, 1.0, 14.0, 480.0, 19999.0}) {
    const int b = query.BucketOf(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 32);
    // The bucket's upper edge is at or above the value (monotone).
    EXPECT_GE(query.BucketValue(b), v * 0.999);
  }
  EXPECT_EQ(query.BucketOf(0.01), 0);
  EXPECT_EQ(query.BucketOf(1e9), 31);
  EXPECT_LE(query.BucketOf(10.0), query.BucketOf(100.0));
}

TEST(QuantileQuery, EvaluateFindsTheRankCrossing) {
  QuantileQuery query(8, 0.5, 0.1);
  RealVector state(8);
  state[2] = 10.0;
  state[5] = 9.0;
  // N = 19, target = 9.5: prefix reaches 10 at bucket 2.
  EXPECT_DOUBLE_EQ(query.Evaluate(state), 2.0);
  state[5] = 11.0;
  // N = 21, target = 10.5: prefix 10 at bucket 2, 21 at bucket 5.
  EXPECT_DOUBLE_EQ(query.Evaluate(state), 5.0);
}

TEST(QuantileQuery, ThresholdsBracketTheQuantile) {
  QuantileQuery query(16, 0.5, 0.1);
  Xoshiro256ss rng(1);
  RealVector e(16);
  for (int i = 0; i < 2000; ++i) {
    e[rng.NextBounded(16)] += 1.0;
  }
  const ThresholdPair t = query.Thresholds(e);
  const double q = query.Evaluate(e);
  EXPECT_LE(t.lo, q);
  EXPECT_GE(t.hi, q);
  EXPECT_LE(t.hi - t.lo, 16.0);
}

TEST(QuantileQuery, SafeZoneDef21Safety) {
  QuantileQuery query(16, 0.5, 0.1);
  Xoshiro256ss rng(2);
  RealVector e(16);
  // A spread-out reference histogram.
  for (int i = 0; i < 3000; ++i) {
    e[std::min<uint64_t>(rng.NextBounded(20), 15)] += 1.0;
  }
  auto fn = query.MakeSafeFunction(e);
  ASSERT_LT(fn->AtZero(), 0.0);
  const ThresholdPair t = query.Thresholds(e);

  int quiescent = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    // Definition 2.1 with k = 3 sites; drifts may delete (negative).
    RealVector sum(16);
    double psi = 0.0;
    for (int s = 0; s < 3; ++s) {
      RealVector x(16);
      for (size_t i = 0; i < 16; ++i) x[i] = 15.0 * rng.NextGaussian();
      psi += fn->Eval(x);
      sum += x;
    }
    if (psi > 0.0) continue;
    ++quiescent;
    sum *= 1.0 / 3.0;
    sum += e;
    const double q = query.Evaluate(sum);
    ASSERT_GE(q, t.lo);
    ASSERT_LE(q, t.hi);
  }
  EXPECT_GT(quiescent, 50);
}

TEST(QuantileQuery, BootstrapHandlesEmptyReference) {
  QuantileQuery query(16, 0.9, 0.05);
  const ThresholdPair cold = query.Thresholds(RealVector(16));
  EXPECT_LT(cold.lo, -1e200);
  auto fn = query.MakeSafeFunction(RealVector(16));
  EXPECT_LT(fn->AtZero(), 0.0);
}

class QuantileSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(QuantileSweep, GuaranteeHoldsEndToEndUnderFgm) {
  const auto [phi, window] = GetParam();
  WorldCupConfig wc;
  wc.sites = 5;
  wc.total_updates = 30000;
  wc.duration = 8000.0;
  const auto trace = GenerateWorldCupTrace(wc);

  QuantileQuery query(48, phi, 0.05);
  FgmConfig config;
  FgmProtocol protocol(&query, 5, config);

  RealVector truth(query.dimension());
  std::vector<CellUpdate> deltas;
  SlidingWindowStream events(&trace, window);
  int64_t checks = 0;
  while (const StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    deltas.clear();
    query.MapRecord(*rec, &deltas);
    for (const auto& u : deltas) truth[u.index] += u.delta / 5.0;
    if (protocol.BoundsCertified()) {
      const ThresholdPair t = protocol.CurrentThresholds();
      const double q = query.Evaluate(truth);
      ASSERT_GE(q, t.lo);
      ASSERT_LE(q, t.hi);
      ++checks;
    }
  }
  EXPECT_GT(checks, 1000);
  EXPECT_GT(protocol.rounds(), 1);
  // D = #buckets is tiny: monitoring must be far below centralizing.
  const double cost =
      static_cast<double>(protocol.traffic().total_words()) /
      static_cast<double>(events.produced());
  EXPECT_LT(cost, 0.7);
}

INSTANTIATE_TEST_SUITE_P(
    PhiAndModel, QuantileSweep,
    ::testing::Combine(::testing::Values(0.5, 0.95),
                       ::testing::Values(0.0, 1500.0)));

TEST(QuantileQuery, OptimizerFeedbackGuardPreventsCheapPlanBlowup) {
  // The quantile zone barely moves while raw drift norms churn, so the
  // optimizer's Eq. 16-17 model badly overrates cheap bounds here; the
  // feedback guard (DESIGN.md §3b) must keep FGM/O in FGM's cost range.
  WorldCupConfig wc;
  wc.sites = 8;
  wc.total_updates = 60000;
  wc.duration = 20000.0;
  const auto trace = GenerateWorldCupTrace(wc);

  QuantileQuery query(48, 0.95, 0.02);
  auto run = [&](bool optimizer) {
    FgmConfig config;
    config.optimizer = optimizer;
    FgmProtocol protocol(&query, 8, config);
    SlidingWindowStream events(&trace, 6000.0);
    int64_t n = 0;
    while (const StreamRecord* rec = events.Next()) {
      protocol.ProcessRecord(*rec);
      ++n;
    }
    return static_cast<double>(protocol.traffic().total_words()) /
           static_cast<double>(n);
  };
  const double fgm = run(false);
  const double fgm_o = run(true);
  EXPECT_LT(fgm_o, 4.0 * fgm + 0.05);
}

}  // namespace
}  // namespace fgm
