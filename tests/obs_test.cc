// Observability layer: trace-sink event ordering under a real multi-round
// FGM run, the metrics registry and its JSON export, and the JSONL event
// schema (golden lines + parse round-trip).

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/fgm_protocol.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/replay.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "query/query.h"
#include "sketch/fast_agms.h"
#include "stream/record.h"
#include "util/rng.h"

namespace fgm {
namespace {

TEST(TraceSink, FgmRunEventOrdering) {
  auto proj = std::make_shared<const AgmsProjection>(5, 100, 42);
  SelfJoinQuery query(proj, 0.1);
  MemoryTraceSink sink;
  FgmConfig config;
  config.trace = &sink;
  const int k = 4;
  FgmProtocol protocol(&query, k, config);
  Xoshiro256ss rng(11);
  StreamRecord rec;
  for (int i = 0; i < 40000; ++i) {
    rec.site = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(k)));
    rec.cid = rng.NextBounded(5000);
    protocol.ProcessRecord(rec);
  }
  ASSERT_GT(protocol.rounds(), 1) << "test needs a multi-round run";

  const auto& events = sink.events_log();
  ASSERT_FALSE(events.empty());
  // The sink stamps dense sequence numbers starting at 0.
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_EQ(events[i].seq, static_cast<int64_t>(i));
  }
  // The protocol opens round 1 at construction, before anything else.
  EXPECT_EQ(events[0].kind, TraceEventKind::kRoundStart);
  EXPECT_EQ(events[0].round, 1);

  int64_t round_starts = 0, subround_starts = 0, rebalances = 0;
  int64_t current_round = 0, current_subround = 0;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kRoundStart:
        ++round_starts;
        EXPECT_EQ(e.round, round_starts) << "rounds numbered consecutively";
        EXPECT_EQ(e.k, k);
        EXPECT_LT(e.value, 0.0) << "phi(0) < 0";
        current_round = e.round;
        current_subround = 0;
        break;
      case TraceEventKind::kSubroundStart:
        ++subround_starts;
        EXPECT_EQ(e.round, current_round) << "subround outside its round";
        EXPECT_EQ(e.subround, current_subround + 1);
        EXPECT_LT(e.psi, 0.0);
        EXPECT_GT(e.theta, 0.0);
        current_subround = e.subround;
        break;
      case TraceEventKind::kIncrementMsg:
        EXPECT_EQ(e.round, current_round);
        EXPECT_EQ(e.subround, current_subround);
        EXPECT_GE(e.site, 0);
        EXPECT_LT(e.site, k);
        EXPECT_GT(e.counter, 0);
        break;
      case TraceEventKind::kRebalance:
        ++rebalances;
        EXPECT_EQ(e.round, current_round);
        EXPECT_GT(e.lambda, 0.0);
        EXPECT_LE(e.lambda, 1.0);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(round_starts, protocol.rounds());
  EXPECT_EQ(subround_starts, protocol.subrounds());
  EXPECT_EQ(rebalances, protocol.rebalances());
  EXPECT_EQ(sink.events(), static_cast<int64_t>(events.size()));
}

TEST(MetricsRegistry, InstrumentsAndPointerStability) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("rounds");
  c->Add(3);
  c->Add();
  EXPECT_EQ(c->value(), 4);
  EXPECT_EQ(registry.GetCounter("rounds"), c) << "same name, same instrument";

  registry.GetGauge("comm_cost")->Set(0.25);
  EXPECT_DOUBLE_EQ(registry.GetGauge("comm_cost")->value(), 0.25);

  RunningStats* s = registry.GetStats("psi");
  s->Add(1.0);
  s->Add(3.0);
  EXPECT_DOUBLE_EQ(s->mean(), 2.0);

  CountHistogram* h = registry.GetHistogram("subrounds_per_round");
  h->Add(7);
  h->Add(7);
  h->Add(9);
  EXPECT_EQ(h->total(), 3);

  WallTimer* t = registry.GetTimer("sketch_update");
  t->AddSeconds(0.5);
  EXPECT_EQ(t->count(), 1);
}

TEST(MetricsRegistry, JsonExportCarriesEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("events")->Add(42);
  registry.GetGauge("cost")->Set(0.5);
  registry.GetStats("psi")->Add(2.0);
  registry.GetHistogram("rounds")->Add(3);
  registry.GetTimer("encode")->AddSeconds(1.5);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"events\":42"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"cost\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"encode\""), std::string::npos);
}

TEST(ScopedTimer, NullTimerIsANoOp) {
  // Must not crash and must not require a registry.
  ScopedTimer timer(nullptr);
}

// Golden JSONL lines: the schema is a contract with the offline checker
// and external tooling; a change here must be deliberate.
TEST(JsonlSchema, GoldenEventLines) {
  TraceEvent e;
  e.kind = TraceEventKind::kRoundStart;
  e.seq = 1;
  e.round = 2;
  e.k = 4;
  e.psi = -4.0;
  e.value = -1.0;
  e.eps = 0.0078125;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"RoundStart\",\"seq\":1,\"round\":2,\"k\":4,"
            "\"psi\":-4,\"phi0\":-1,\"eps_psi\":0.0078125}");

  e = TraceEvent();
  e.kind = TraceEventKind::kSubroundStart;
  e.seq = 2;
  e.round = 2;
  e.subround = 1;
  e.psi = -4.0;
  e.theta = 0.5;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"SubroundStart\",\"seq\":2,\"round\":2,"
            "\"subround\":1,\"psi\":-4,\"theta\":0.5}");

  e = TraceEvent();
  e.kind = TraceEventKind::kMsgSent;
  e.seq = 3;
  e.site = 0;
  e.label = "Quantum";
  e.dir = -1;
  e.words = 3;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"MsgSent\",\"seq\":3,\"site\":0,\"msg\":\"Quantum\","
            "\"dir\":\"down\",\"words\":3}");

  e = TraceEvent();
  e.kind = TraceEventKind::kRunEnd;
  e.seq = 4;
  e.count = 10;
  e.up_words = 100;
  e.down_words = 50;
  e.up_msgs = 7;
  e.down_msgs = 6;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"RunEnd\",\"seq\":4,\"events\":10,\"up_words\":100,"
            "\"down_words\":50,\"up_msgs\":7,\"down_msgs\":6}");
}

// JSON has no inf/nan literal; emitting them raw produces a document no
// parser accepts. The writer serializes every non-finite double as null,
// and the parsers on this side map null numeric fields back to NaN.
TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::nan("");
  EXPECT_EQ(JsonWriter::Number(inf), "null");
  EXPECT_EQ(JsonWriter::Number(-inf), "null");
  EXPECT_EQ(JsonWriter::Number(nan), "null");
  EXPECT_EQ(JsonWriter::Number(1.5), "1.5");

  JsonWriter w;
  w.BeginObject();
  w.Field("x", nan);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"x\":null}");

  // Both parsers read the null back as NaN.
  std::map<std::string, JsonValue> flat;
  std::string error;
  ASSERT_TRUE(ParseFlatJsonObject("{\"x\":null}", &flat, &error)) << error;
  EXPECT_EQ(flat.at("x").type, JsonValue::Type::kNull);

  JsonNode node;
  ASSERT_TRUE(ParseJson("{\"x\":null}", &node, &error)) << error;
  const JsonNode* x = node.Find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(std::isnan(x->AsDouble()));
}

// A trace event carrying a non-finite double must still produce a line
// the replay parser accepts (the value comes back as NaN).
TEST(JsonlSchema, NonFiniteEventFieldRoundTripsAsNull) {
  TraceEvent e;
  e.kind = TraceEventKind::kPlanOutcome;
  e.round = 3;
  e.count = 10;
  e.words = 4;
  e.pred_gain = std::numeric_limits<double>::infinity();
  e.actual_gain = 6.0;
  const std::string line = JsonlTraceSink::EventJson(e);
  EXPECT_NE(line.find("\"pred_gain\":null"), std::string::npos) << line;

  TraceEvent parsed;
  std::string error;
  ASSERT_TRUE(ParseTraceEventJson(line, &parsed, &error)) << error;
  EXPECT_TRUE(std::isnan(parsed.pred_gain));
  EXPECT_EQ(parsed.actual_gain, 6.0);
}

TEST(JsonParse, NestedDocuments) {
  const std::string doc =
      "{\"run\":{\"words\":12,\"cost\":0.5},"
      "\"kinds\":[1,2,3],\"name\":\"fgm\",\"flag\":true,"
      "\"nested\":[{\"a\":[]},{}]}";
  JsonNode root;
  std::string error;
  ASSERT_TRUE(ParseJson(doc, &root, &error)) << error;
  ASSERT_EQ(root.type, JsonNode::Type::kObject);
  // Member order is preserved.
  ASSERT_EQ(root.members.size(), 5u);
  EXPECT_EQ(root.members[0].first, "run");
  EXPECT_EQ(root.members[4].first, "nested");

  const JsonNode* run = root.Find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->Find("words")->AsInt(), 12);
  EXPECT_DOUBLE_EQ(run->Find("cost")->AsDouble(), 0.5);

  const JsonNode* kinds = root.Find("kinds");
  ASSERT_NE(kinds, nullptr);
  ASSERT_EQ(kinds->items.size(), 3u);
  EXPECT_EQ(kinds->items[2].AsInt(), 3);

  EXPECT_EQ(root.Find("name")->str, "fgm");
  EXPECT_TRUE(root.Find("flag")->boolean);
  EXPECT_EQ(root.Find("no_such_key"), nullptr);

  // Malformed documents and trailing garbage are rejected.
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", &root, &error));
  EXPECT_FALSE(ParseJson("{\"a\":", &root, &error));
  EXPECT_FALSE(ParseJson("[1,2,", &root, &error));
  EXPECT_FALSE(ParseJson("", &root, &error));
}

TEST(TimeSeriesTest, RingBufferDropsOldestAndExportsJson) {
  TimeSeries series(4);
  for (int i = 0; i < 6; ++i) {
    RunSnapshot s;
    s.kind = i % 2 == 0 ? "round" : "interval";
    s.records = 100 * (i + 1);
    s.round = i + 1;
    s.round_words = 10 + i;
    s.words_by_kind[0] = 7;
    series.Record(s);
  }
  EXPECT_EQ(series.samples_taken(), 6);
  EXPECT_EQ(series.samples_dropped(), 2);
  const auto samples = series.Samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().seq, 2) << "oldest two samples evicted";
  EXPECT_EQ(samples.back().records, 600);

  JsonWriter w;
  series.WriteJson(&w);
  JsonNode root;
  std::string error;
  ASSERT_TRUE(ParseJson(w.str(), &root, &error)) << error;
  ASSERT_NE(root.Find("version"), nullptr);
  EXPECT_EQ(root.Find("version")->AsInt(), kTimeSeriesSchemaVersion);
  EXPECT_EQ(root.Find("taken")->AsInt(), 6);
  EXPECT_EQ(root.Find("dropped")->AsInt(), 2);
  const JsonNode* out = root.Find("samples");
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->items.size(), 4u);
  EXPECT_EQ(out->items[0].Find("seq")->AsInt(), 2);
  EXPECT_EQ(out->items[0].Find("kind")->str, "round");
  ASSERT_EQ(out->items[0].Find("words_by_kind")->items.size(),
            static_cast<size_t>(kSnapshotMsgKinds));
  EXPECT_EQ(out->items[0].Find("words_by_kind")->items[0].AsInt(), 7);
}

// FGM protocols feed the time series at round boundaries only; a short
// multi-round run must produce one "round" sample per completed round,
// with per-round word deltas summing to the cumulative count.
TEST(TimeSeriesTest, FgmRunProducesRoundSamples) {
  auto proj = std::make_shared<const AgmsProjection>(5, 100, 42);
  SelfJoinQuery query(proj, 0.1);
  TimeSeries series(1 << 14);
  FgmConfig config;
  config.timeseries = &series;
  const int k = 4;
  FgmProtocol protocol(&query, k, config);
  Xoshiro256ss rng(11);
  StreamRecord rec;
  for (int i = 0; i < 40000; ++i) {
    rec.site = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(k)));
    rec.cid = rng.NextBounded(5000);
    protocol.ProcessRecord(rec);
  }
  ASSERT_GT(protocol.rounds(), 1);
  EXPECT_EQ(series.samples_taken(), protocol.rounds() - 1)
      << "one sample per completed round";
  int64_t delta_sum = 0;
  int64_t prev_total = 0;
  for (const RunSnapshot& s : series.Samples()) {
    EXPECT_STREQ(s.kind, "round");
    // The boundary snapshot reads ψ after the final counter collection has
    // pushed it past the termination threshold, so it may be positive; it
    // must only be finite.
    EXPECT_TRUE(std::isfinite(s.psi));
    EXPECT_GE(s.total_words, prev_total) << "cumulative words are monotone";
    prev_total = s.total_words;
    delta_sum += s.round_words;
    int64_t kind_sum = 0;
    for (const int64_t v : s.round_words_by_kind) kind_sum += v;
    EXPECT_EQ(kind_sum, s.round_words) << "per-kind deltas cover the round";
    EXPECT_GE(s.site_updates_max, 0);
    EXPECT_GE(s.drift_norm_max, 0.0);
  }
  EXPECT_EQ(delta_sum, series.Samples().back().total_words)
      << "round deltas sum to the last cumulative total";
}

// A capacity smaller than the completed-round count forces the ring
// buffer to wrap mid-run: the retained window must be the LAST `capacity`
// round samples, contiguous and still monotone in cumulative words.
TEST(TimeSeriesTest, CapacitySmallerThanRoundCountKeepsTheTail) {
  auto proj = std::make_shared<const AgmsProjection>(5, 100, 42);
  SelfJoinQuery query(proj, 0.1);
  constexpr size_t kCapacity = 8;
  TimeSeries series(kCapacity);
  FgmConfig config;
  config.timeseries = &series;
  const int k = 4;
  FgmProtocol protocol(&query, k, config);
  Xoshiro256ss rng(11);
  StreamRecord rec;
  for (int i = 0; i < 40000; ++i) {
    rec.site = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(k)));
    rec.cid = rng.NextBounded(5000);
    protocol.ProcessRecord(rec);
  }
  ASSERT_GT(protocol.rounds(), static_cast<int64_t>(kCapacity))
      << "the run must complete more rounds than the ring holds";
  EXPECT_EQ(series.samples_taken(), protocol.rounds() - 1);
  EXPECT_EQ(series.samples_dropped(),
            series.samples_taken() - static_cast<int64_t>(kCapacity));
  const auto samples = series.Samples();
  ASSERT_EQ(samples.size(), kCapacity);
  int64_t prev_seq = samples.front().seq - 1;
  int64_t prev_total = -1;
  for (const RunSnapshot& s : samples) {
    EXPECT_EQ(s.seq, prev_seq + 1) << "retained window is contiguous";
    prev_seq = s.seq;
    EXPECT_GE(s.total_words, prev_total);
    prev_total = s.total_words;
  }
  EXPECT_EQ(samples.back().seq, series.samples_taken() - 1)
      << "the newest sample survives the wrap";
}

// Golden-file regression for the exported time-series document: a
// hand-built series must serialize byte-identically to the committed
// golden. A diff here means the schema changed — update the golden AND
// bump kTimeSeriesSchemaVersion.
TEST(TimeSeriesTest, JsonMatchesGoldenFile) {
  TimeSeries series(4);
  for (int i = 0; i < 3; ++i) {
    RunSnapshot s;
    s.kind = i % 2 == 0 ? "round" : "interval";
    s.records = 100 * (i + 1);
    s.round = i + 1;
    s.subrounds = 2;
    s.total_subrounds = 2 * (i + 1);
    s.psi = -1.5;
    s.theta = 0.25;
    s.lambda = 1.0;
    s.total_words = 40 * (i + 1);
    s.round_words = 40;
    s.words_by_kind[0] = 30;
    s.round_words_by_kind[0] = 30;
    series.Record(s);
  }
  JsonWriter w;
  series.WriteJson(&w);

  const std::string golden_path =
      std::string(FGM_TEST_GOLDEN_DIR) + "/timeseries_v1.json";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(w.str(), want.str())
      << "time-series schema drifted from " << golden_path
      << " — update the golden and bump kTimeSeriesSchemaVersion";
}

// Golden lines for the FGM/O plan-audit events (same contract discipline
// as GoldenEventLines above).
TEST(JsonlSchema, GoldenPlanAuditLines) {
  TraceEvent e;
  e.kind = TraceEventKind::kPlanChosen;
  e.seq = 5;
  e.round = 7;
  e.counter = 3;
  e.k = 4;
  e.pred_len = 2.5;
  e.pred_gain = 10.0;
  e.pred_rate = 4.0;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"PlanChosen\",\"seq\":5,\"round\":7,\"full_sites\":3,"
            "\"k\":4,\"pred_len\":2.5,\"pred_gain\":10,\"pred_rate\":4}");

  e = TraceEvent();
  e.kind = TraceEventKind::kPlanSite;
  e.seq = 6;
  e.round = 7;
  e.site = 2;
  e.counter = 1;
  e.alpha = 0.25;
  e.beta = 0.5;
  e.gamma = 0.75;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"PlanSite\",\"seq\":6,\"round\":7,\"site\":2,\"d\":1,"
            "\"alpha\":0.25,\"beta\":0.5,\"gamma\":0.75}");

  e = TraceEvent();
  e.kind = TraceEventKind::kPlanOutcome;
  e.seq = 8;
  e.round = 7;
  e.count = 100;
  e.words = 40;
  e.pred_gain = 55.0;
  e.actual_gain = 60.0;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"PlanOutcome\",\"seq\":8,\"round\":7,\"updates\":100,"
            "\"words\":40,\"pred_gain\":55,\"actual_gain\":60}");
}

TEST(JsonlSchema, ParseRoundTripsBitExactly) {
  TraceEvent e;
  e.kind = TraceEventKind::kSubroundStart;
  e.seq = 9;
  e.round = 3;
  e.subround = 2;
  e.psi = -1.2345678901234567e-3;  // needs full %.17g round-trip
  e.theta = e.psi / -8.0;
  const std::string line = JsonlTraceSink::EventJson(e);

  TraceEvent parsed;
  std::string error;
  ASSERT_TRUE(ParseTraceEventJson(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.kind, TraceEventKind::kSubroundStart);
  EXPECT_EQ(parsed.seq, 9);
  EXPECT_EQ(parsed.round, 3);
  EXPECT_EQ(parsed.subround, 2);
  EXPECT_EQ(parsed.psi, e.psi) << "double must round-trip bit-exactly";
  EXPECT_EQ(parsed.theta, e.theta);

  EXPECT_FALSE(ParseTraceEventJson("{\"ev\":\"NoSuchEvent\",\"seq\":0}",
                                   &parsed, &error));
  EXPECT_FALSE(ParseTraceEventJson("not json", &parsed, &error));
}

}  // namespace
}  // namespace fgm
