// Observability layer: trace-sink event ordering under a real multi-round
// FGM run, the metrics registry and its JSON export, and the JSONL event
// schema (golden lines + parse round-trip).

#include <cstdint>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/fgm_protocol.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/replay.h"
#include "obs/trace.h"
#include "query/query.h"
#include "sketch/fast_agms.h"
#include "stream/record.h"
#include "util/rng.h"

namespace fgm {
namespace {

TEST(TraceSink, FgmRunEventOrdering) {
  auto proj = std::make_shared<const AgmsProjection>(5, 100, 42);
  SelfJoinQuery query(proj, 0.1);
  MemoryTraceSink sink;
  FgmConfig config;
  config.trace = &sink;
  const int k = 4;
  FgmProtocol protocol(&query, k, config);
  Xoshiro256ss rng(11);
  StreamRecord rec;
  for (int i = 0; i < 40000; ++i) {
    rec.site = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(k)));
    rec.cid = rng.NextBounded(5000);
    protocol.ProcessRecord(rec);
  }
  ASSERT_GT(protocol.rounds(), 1) << "test needs a multi-round run";

  const auto& events = sink.events_log();
  ASSERT_FALSE(events.empty());
  // The sink stamps dense sequence numbers starting at 0.
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_EQ(events[i].seq, static_cast<int64_t>(i));
  }
  // The protocol opens round 1 at construction, before anything else.
  EXPECT_EQ(events[0].kind, TraceEventKind::kRoundStart);
  EXPECT_EQ(events[0].round, 1);

  int64_t round_starts = 0, subround_starts = 0, rebalances = 0;
  int64_t current_round = 0, current_subround = 0;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kRoundStart:
        ++round_starts;
        EXPECT_EQ(e.round, round_starts) << "rounds numbered consecutively";
        EXPECT_EQ(e.k, k);
        EXPECT_LT(e.value, 0.0) << "phi(0) < 0";
        current_round = e.round;
        current_subround = 0;
        break;
      case TraceEventKind::kSubroundStart:
        ++subround_starts;
        EXPECT_EQ(e.round, current_round) << "subround outside its round";
        EXPECT_EQ(e.subround, current_subround + 1);
        EXPECT_LT(e.psi, 0.0);
        EXPECT_GT(e.theta, 0.0);
        current_subround = e.subround;
        break;
      case TraceEventKind::kIncrementMsg:
        EXPECT_EQ(e.round, current_round);
        EXPECT_EQ(e.subround, current_subround);
        EXPECT_GE(e.site, 0);
        EXPECT_LT(e.site, k);
        EXPECT_GT(e.counter, 0);
        break;
      case TraceEventKind::kRebalance:
        ++rebalances;
        EXPECT_EQ(e.round, current_round);
        EXPECT_GT(e.lambda, 0.0);
        EXPECT_LE(e.lambda, 1.0);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(round_starts, protocol.rounds());
  EXPECT_EQ(subround_starts, protocol.subrounds());
  EXPECT_EQ(rebalances, protocol.rebalances());
  EXPECT_EQ(sink.events(), static_cast<int64_t>(events.size()));
}

TEST(MetricsRegistry, InstrumentsAndPointerStability) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("rounds");
  c->Add(3);
  c->Add();
  EXPECT_EQ(c->value(), 4);
  EXPECT_EQ(registry.GetCounter("rounds"), c) << "same name, same instrument";

  registry.GetGauge("comm_cost")->Set(0.25);
  EXPECT_DOUBLE_EQ(registry.GetGauge("comm_cost")->value(), 0.25);

  RunningStats* s = registry.GetStats("psi");
  s->Add(1.0);
  s->Add(3.0);
  EXPECT_DOUBLE_EQ(s->mean(), 2.0);

  CountHistogram* h = registry.GetHistogram("subrounds_per_round");
  h->Add(7);
  h->Add(7);
  h->Add(9);
  EXPECT_EQ(h->total(), 3);

  WallTimer* t = registry.GetTimer("sketch_update");
  t->AddSeconds(0.5);
  EXPECT_EQ(t->count(), 1);
}

TEST(MetricsRegistry, JsonExportCarriesEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("events")->Add(42);
  registry.GetGauge("cost")->Set(0.5);
  registry.GetStats("psi")->Add(2.0);
  registry.GetHistogram("rounds")->Add(3);
  registry.GetTimer("encode")->AddSeconds(1.5);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"events\":42"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"cost\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"encode\""), std::string::npos);
}

TEST(ScopedTimer, NullTimerIsANoOp) {
  // Must not crash and must not require a registry.
  ScopedTimer timer(nullptr);
}

// Golden JSONL lines: the schema is a contract with the offline checker
// and external tooling; a change here must be deliberate.
TEST(JsonlSchema, GoldenEventLines) {
  TraceEvent e;
  e.kind = TraceEventKind::kRoundStart;
  e.seq = 1;
  e.round = 2;
  e.k = 4;
  e.psi = -4.0;
  e.value = -1.0;
  e.eps = 0.0078125;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"RoundStart\",\"seq\":1,\"round\":2,\"k\":4,"
            "\"psi\":-4,\"phi0\":-1,\"eps_psi\":0.0078125}");

  e = TraceEvent();
  e.kind = TraceEventKind::kSubroundStart;
  e.seq = 2;
  e.round = 2;
  e.subround = 1;
  e.psi = -4.0;
  e.theta = 0.5;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"SubroundStart\",\"seq\":2,\"round\":2,"
            "\"subround\":1,\"psi\":-4,\"theta\":0.5}");

  e = TraceEvent();
  e.kind = TraceEventKind::kMsgSent;
  e.seq = 3;
  e.site = 0;
  e.label = "Quantum";
  e.dir = -1;
  e.words = 3;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"MsgSent\",\"seq\":3,\"site\":0,\"msg\":\"Quantum\","
            "\"dir\":\"down\",\"words\":3}");

  e = TraceEvent();
  e.kind = TraceEventKind::kRunEnd;
  e.seq = 4;
  e.count = 10;
  e.up_words = 100;
  e.down_words = 50;
  e.up_msgs = 7;
  e.down_msgs = 6;
  EXPECT_EQ(JsonlTraceSink::EventJson(e),
            "{\"ev\":\"RunEnd\",\"seq\":4,\"events\":10,\"up_words\":100,"
            "\"down_words\":50,\"up_msgs\":7,\"down_msgs\":6}");
}

TEST(JsonlSchema, ParseRoundTripsBitExactly) {
  TraceEvent e;
  e.kind = TraceEventKind::kSubroundStart;
  e.seq = 9;
  e.round = 3;
  e.subround = 2;
  e.psi = -1.2345678901234567e-3;  // needs full %.17g round-trip
  e.theta = e.psi / -8.0;
  const std::string line = JsonlTraceSink::EventJson(e);

  TraceEvent parsed;
  std::string error;
  ASSERT_TRUE(ParseTraceEventJson(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.kind, TraceEventKind::kSubroundStart);
  EXPECT_EQ(parsed.seq, 9);
  EXPECT_EQ(parsed.round, 3);
  EXPECT_EQ(parsed.subround, 2);
  EXPECT_EQ(parsed.psi, e.psi) << "double must round-trip bit-exactly";
  EXPECT_EQ(parsed.theta, e.theta);

  EXPECT_FALSE(ParseTraceEventJson("{\"ev\":\"NoSuchEvent\",\"seq\":0}",
                                   &parsed, &error));
  EXPECT_FALSE(ParseTraceEventJson("not json", &parsed, &error));
}

}  // namespace
}  // namespace fgm
