// Simulated-network suite (src/sim).
//
// Two contracts under test:
//
//  1. Null-mode parity — with --net_latency=0, no loss and no fault plan,
//     the discrete-event network is a pass-through: the run is
//     bit-identical (trace line for line, traffic word for word, same
//     rounds/subrounds and final estimate) to the synchronous strict-wire
//     path, for every protocol.
//
//  2. Chaos grid — under seeded loss, latency jitter and site
//     crash/rejoin plans, every run still completes with zero
//     threshold-violation misses at the certified check points, and the
//     trace-replay checker re-certifies ψ-safety at every delivery point
//     plus exact send/deliver/drop conservation.
//
// `ctest -L sim` runs this suite plus the runner → trace_check fixtures.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "driver/runner.h"
#include "obs/replay.h"
#include "obs/trace.h"
#include "sim/net_config.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

struct SimRunOutput {
  RunResult result;
  std::vector<std::string> trace_lines;
};

SimRunOutput RunOnce(ProtocolKind protocol, const sim::NetSimConfig& net,
                     bool strict_wire, int64_t updates = 20000) {
  RunConfig config;
  config.protocol = protocol;
  config.query = QueryKind::kSelfJoin;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  config.check_every = 1000;
  config.strict_wire = strict_wire;
  config.net = net;
  MemoryTraceSink sink;
  config.trace = &sink;

  WorldCupConfig wc;
  wc.sites = config.sites;
  wc.total_updates = updates;
  const std::vector<StreamRecord> trace = GenerateWorldCupTrace(wc);

  SimRunOutput out;
  out.result = Run(config, trace);
  out.trace_lines.reserve(sink.events_log().size());
  for (const TraceEvent& e : sink.events_log()) {
    out.trace_lines.push_back(JsonlTraceSink::EventJson(e));
  }
  return out;
}

/// Re-runs the replay checker over the in-memory trace.
ReplayReport Recheck(const SimRunOutput& out) {
  std::ostringstream joined;
  for (const std::string& line : out.trace_lines) joined << line << "\n";
  std::istringstream in(joined.str());
  return CheckTrace(in);
}

// ---------------------------------------------------------------------
// Null-mode parity.

class NullModeParity : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(NullModeParity, BitIdenticalToSynchronousStrictWire) {
  const ProtocolKind protocol = GetParam();
  const SimRunOutput sync = RunOnce(protocol, sim::NetSimConfig{},
                                    /*strict_wire=*/true);
  ASSERT_FALSE(sync.result.net_enabled);

  sim::NetSimConfig net;
  net.latency = "0";  // simulator on, null mode
  const SimRunOutput null = RunOnce(protocol, net, /*strict_wire=*/false);
  ASSERT_TRUE(null.result.net_enabled);

  const TrafficStats& a = sync.result.traffic;
  const TrafficStats& b = null.result.traffic;
  EXPECT_EQ(a.total_words(), b.total_words());
  EXPECT_EQ(a.upstream_words, b.upstream_words);
  EXPECT_EQ(a.downstream_words, b.downstream_words);
  EXPECT_EQ(a.upstream_messages, b.upstream_messages);
  EXPECT_EQ(a.downstream_messages, b.downstream_messages);
  for (size_t i = 0; i < a.words_by_kind.size(); ++i) {
    EXPECT_EQ(a.words_by_kind[i], b.words_by_kind[i]) << "msg kind " << i;
  }
  EXPECT_EQ(sync.result.rounds, null.result.rounds);
  EXPECT_EQ(sync.result.subrounds, null.result.subrounds);
  EXPECT_EQ(sync.result.rebalances, null.result.rebalances);
  EXPECT_EQ(sync.result.events, null.result.events);
  // Bit-exact floating-point agreement, not approximate.
  EXPECT_EQ(sync.result.max_violation, null.result.max_violation);
  EXPECT_EQ(sync.result.final_estimate, null.result.final_estimate);

  // Null mode delivers instantly: nothing dropped or retransmitted, and
  // no net trace events (the traces stay identical). A counter datagram
  // is still queued for one drain cycle, so at most one word is ever in
  // flight.
  EXPECT_EQ(null.result.net.dropped_msgs, 0);
  EXPECT_EQ(null.result.net.retransmitted_msgs, 0);
  EXPECT_LE(null.result.net.max_in_flight_words, 1);

  ASSERT_EQ(sync.trace_lines.size(), null.trace_lines.size());
  for (size_t i = 0; i < sync.trace_lines.size(); ++i) {
    ASSERT_EQ(sync.trace_lines[i], null.trace_lines[i])
        << "trace line " << i;
  }
}

std::string ProtocolParamName(
    const ::testing::TestParamInfo<ProtocolKind>& info) {
  std::string name = ProtocolKindName(info.param);
  for (char& c : name) {
    if (c == '/' || c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Protocols, NullModeParity,
                         ::testing::Values(ProtocolKind::kFgm,
                                           ProtocolKind::kFgmOpt,
                                           ProtocolKind::kGm,
                                           ProtocolKind::kCentral),
                         ProtocolParamName);

// ---------------------------------------------------------------------
// Chaos grid: loss × latency, no faults.

using ChaosParam = std::tuple<double, const char*>;

class ChaosGrid : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(ChaosGrid, CompletesWithZeroMissesAndCertifiedTrace) {
  const auto [drop, latency] = GetParam();
  sim::NetSimConfig net;
  net.latency = latency;
  net.drop = drop;
  const SimRunOutput out = RunOnce(ProtocolKind::kFgm, net,
                                   /*strict_wire=*/false);
  EXPECT_EQ(out.result.events, 20000);
  EXPECT_GT(out.result.rounds, 0);
  EXPECT_GT(out.result.checks, 0);
  // Zero threshold-violation misses at every certified instant.
  EXPECT_EQ(out.result.max_violation, 0.0);
  // The configured loss actually bit.
  EXPECT_GT(out.result.net.dropped_msgs, 0);
  EXPECT_GT(out.result.net.retransmitted_msgs, 0);

  const ReplayReport report = Recheck(out);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.drops, out.result.net.dropped_msgs);
  EXPECT_EQ(report.deliveries, out.result.net.delivered_msgs);
}

std::string ChaosParamName(const ::testing::TestParamInfo<ChaosParam>& info) {
  std::string name = "drop" + std::to_string(
      static_cast<int>(std::get<0>(info.param) * 100));
  name += "_";
  for (const char* p = std::get<1>(info.param); *p != '\0'; ++p) {
    name += (*p == ':' || *p == '-') ? '_' : *p;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    LossLatency, ChaosGrid,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.5),
                       ::testing::Values("fixed:4", "uniform:1-16", "exp:8")),
    ChaosParamName);

// ---------------------------------------------------------------------
// Fault plans: crash/rejoin and outage windows.

TEST(FaultPlans, CrashRejoinWithinDeadlineResyncsTheSite) {
  sim::NetSimConfig net;
  net.latency = "uniform:1-16";
  net.drop = 0.1;
  // Down for 2000 ticks < dead_deadline (4096): the site stays a round
  // member and rejoins through the kResync handshake.
  net.fault_plan = "crash:site=2,at=20000,rejoin=22000";
  const SimRunOutput out = RunOnce(ProtocolKind::kFgm, net,
                                   /*strict_wire=*/false);
  EXPECT_EQ(out.result.max_violation, 0.0);
  EXPECT_EQ(out.result.net.site_downs, 1);
  EXPECT_GE(out.result.net.resyncs, 1);

  const ReplayReport report = Recheck(out);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.resyncs, 1);
}

TEST(FaultPlans, CrashPastDeadlineDegradesToReducedKAndRecovers) {
  sim::NetSimConfig net;
  net.latency = "uniform:1-16";
  net.drop = 0.1;
  // Down for 10000 ticks > dead_deadline: the coordinator ends the round
  // without the site (reduced k) and reconfigures back at rejoin.
  net.fault_plan = "crash:site=2,at=20000,rejoin=30000";
  const SimRunOutput out = RunOnce(ProtocolKind::kFgm, net,
                                   /*strict_wire=*/false);
  EXPECT_EQ(out.result.max_violation, 0.0);
  EXPECT_EQ(out.result.net.site_downs, 1);
  EXPECT_GE(out.result.net.resyncs, 1);

  const ReplayReport report = Recheck(out);
  EXPECT_TRUE(report.ok()) << report.Summary();

  // The trace must contain a reduced-k RoundStart while the site is out.
  bool saw_reduced_k = false;
  for (const std::string& line : out.trace_lines) {
    if (line.find("\"ev\":\"RoundStart\"") != std::string::npos &&
        line.find("\"k\":4") != std::string::npos) {
      saw_reduced_k = true;
      break;
    }
  }
  EXPECT_TRUE(saw_reduced_k);
}

TEST(FaultPlans, OutageWindowAndMultiSitePlan) {
  sim::NetSimConfig net;
  net.latency = "exp:8";
  net.drop = 0.05;
  net.fault_plan =
      "outage:site=1,from=15000,to=16000;crash:site=3,at=40000,rejoin=42000";
  const SimRunOutput out = RunOnce(ProtocolKind::kFgm, net,
                                   /*strict_wire=*/false);
  EXPECT_EQ(out.result.max_violation, 0.0);
  EXPECT_EQ(out.result.net.site_downs, 2);

  const ReplayReport report = Recheck(out);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(FaultPlans, OptimizerProtocolSurvivesChaos) {
  sim::NetSimConfig net;
  net.latency = "uniform:1-16";
  net.drop = 0.2;
  net.fault_plan = "crash:site=0,at=25000,rejoin=27000";
  const SimRunOutput out = RunOnce(ProtocolKind::kFgmOpt, net,
                                   /*strict_wire=*/false);
  EXPECT_EQ(out.result.max_violation, 0.0);
  EXPECT_GE(out.result.net.site_downs, 1);

  const ReplayReport report = Recheck(out);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ---------------------------------------------------------------------
// Determinism and engine interplay.

TEST(SimDeterminism, SameSeedSameRun) {
  sim::NetSimConfig net;
  net.latency = "uniform:1-16";
  net.drop = 0.2;
  net.fault_plan = "crash:site=2,at=20000,rejoin=26000";
  const SimRunOutput a = RunOnce(ProtocolKind::kFgm, net,
                                 /*strict_wire=*/false);
  const SimRunOutput b = RunOnce(ProtocolKind::kFgm, net,
                                 /*strict_wire=*/false);
  EXPECT_EQ(a.result.traffic.total_words(), b.result.traffic.total_words());
  EXPECT_EQ(a.result.net.final_tick, b.result.net.final_tick);
  ASSERT_EQ(a.trace_lines.size(), b.trace_lines.size());
  for (size_t i = 0; i < a.trace_lines.size(); ++i) {
    ASSERT_EQ(a.trace_lines[i], b.trace_lines[i]) << "trace line " << i;
  }
}

TEST(SimDeterminism, DifferentSeedDifferentSchedule) {
  sim::NetSimConfig net;
  net.latency = "uniform:1-16";
  net.drop = 0.2;
  const SimRunOutput a = RunOnce(ProtocolKind::kFgm, net,
                                 /*strict_wire=*/false);
  net.seed = 0xfeedbeef;
  const SimRunOutput b = RunOnce(ProtocolKind::kFgm, net,
                                 /*strict_wire=*/false);
  EXPECT_NE(a.result.net.final_tick, b.result.net.final_tick);
}

TEST(SimDeterminism, ThreadedRequestFallsBackToIdenticalSerialRun) {
  sim::NetSimConfig net;
  net.latency = "fixed:4";
  net.drop = 0.1;

  RunConfig config;
  config.protocol = ProtocolKind::kFgm;
  config.query = QueryKind::kSelfJoin;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  config.check_every = 1000;
  config.net = net;
  WorldCupConfig wc;
  wc.sites = config.sites;
  wc.total_updates = 20000;
  const std::vector<StreamRecord> trace = GenerateWorldCupTrace(wc);

  const RunResult serial = ::fgm::Run(config, trace);
  config.threads = 4;  // speculation unsound over a lossy network
  const RunResult fallback = ::fgm::Run(config, trace);
  EXPECT_EQ(fallback.threads_used, 1);
  EXPECT_EQ(serial.traffic.total_words(), fallback.traffic.total_words());
  EXPECT_EQ(serial.rounds, fallback.rounds);
  EXPECT_EQ(serial.net.final_tick, fallback.net.final_tick);
}

}  // namespace
}  // namespace fgm
