// Hierarchical-FGM suite (src/hier).
//
// Four contracts under test:
//
//  1. Topology algebra — TreeTopology::Parse accepts exactly the
//     documented specs, and the O(1) index math is self-consistent:
//     Parent() inverts ChildBegin()/ChildEnd(), fan-ins differ by at
//     most one, and LeavesUnder() partitions the leaf set at every tier.
//
//  2. Flat equivalence — a depth-1 tree (fanout >= sites) IS the flat
//     star: same protocol object, bit-identical trace, word-identical
//     traffic, for every protocol that accepts the flag.
//
//  3. Deep-tree correctness — two- and three-tier trees monitor the same
//     query with zero threshold-violation misses, and the trace-replay
//     checker certifies the root tier with the unmodified flat
//     invariants plus the per-tier word ledgers (TierEnd).
//
//  4. Fault tolerance at aggregator granularity — crashing a tier-1
//     aggregator under loss and latency jitter costs resyncs or a
//     reduced-m round, never a missed bound.
//
// `ctest -L hier` runs this suite plus the runner → trace_check --tiers
// fixture.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "driver/runner.h"
#include "hier/topology.h"
#include "obs/replay.h"
#include "obs/trace.h"
#include "sim/net_config.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

using hier::TreeTopology;

// ---------------------------------------------------------------------
// Topology parsing.

TEST(TreeTopologyParse, SingleFanoutExtendsDepthToCover) {
  TreeTopology topo;
  std::string error;
  ASSERT_TRUE(TreeTopology::Parse("tree:4", 16, &topo, &error)) << error;
  EXPECT_EQ(topo.depth(), 2);
  EXPECT_EQ(topo.leaves(), 16);
  EXPECT_EQ(topo.NodesAt(0), 1);
  EXPECT_EQ(topo.NodesAt(1), 4);
  EXPECT_EQ(topo.NodesAt(2), 16);
  EXPECT_FALSE(topo.IsFlat());

  // 3^3 = 27: three link tiers for 20 leaves (3^2 = 9 < 20).
  ASSERT_TRUE(TreeTopology::Parse("tree:3", 20, &topo, &error)) << error;
  EXPECT_EQ(topo.depth(), 3);
  EXPECT_EQ(topo.NodesAt(1), 3);
  EXPECT_EQ(topo.leaves(), 20);
}

TEST(TreeTopologyParse, FanoutCoveringAllLeavesIsFlat) {
  TreeTopology topo;
  std::string error;
  ASSERT_TRUE(TreeTopology::Parse("tree:16", 16, &topo, &error)) << error;
  EXPECT_TRUE(topo.IsFlat());
  EXPECT_EQ(topo.depth(), 1);
  ASSERT_TRUE(TreeTopology::Parse("tree:1000", 16, &topo, &error)) << error;
  EXPECT_TRUE(topo.IsFlat());
}

TEST(TreeTopologyParse, MultiLevelSpecSetsPerTierCounts) {
  TreeTopology topo;
  std::string error;
  ASSERT_TRUE(TreeTopology::Parse("tree:2,8", 16, &topo, &error)) << error;
  EXPECT_EQ(topo.depth(), 2);
  EXPECT_EQ(topo.NodesAt(0), 1);
  EXPECT_EQ(topo.NodesAt(1), 2);
  EXPECT_EQ(topo.NodesAt(2), 16);
  ASSERT_EQ(topo.fanouts().size(), 2u);
  EXPECT_EQ(topo.fanouts()[0], 2);
  EXPECT_EQ(topo.fanouts()[1], 8);
}

TEST(TreeTopologyParse, CanonicalSpecRoundTrips) {
  TreeTopology topo;
  std::string error;
  ASSERT_TRUE(TreeTopology::Parse("tree:4", 16, &topo, &error)) << error;
  const std::string canonical = topo.spec();
  TreeTopology again;
  ASSERT_TRUE(TreeTopology::Parse(canonical, 16, &again, &error)) << error;
  EXPECT_EQ(again.spec(), canonical);
  EXPECT_EQ(again.depth(), topo.depth());
}

TEST(TreeTopologyParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "star:4",      // missing prefix
      "tree:",       // empty level list
      "tree:x",      // non-numeric
      "tree:4x",     // trailing junk
      "tree:1",      // fanout < 2
      "tree:0",      // fanout < 2
      "tree:4,",     // empty trailing level
      "tree:4,,4",   // empty middle level
      "tree:2,2",    // 2*2 = 4 < 16: product does not cover
      "tree:99999999999999",  // overflow
  };
  for (const char* spec : bad) {
    TreeTopology topo;
    std::string error;
    EXPECT_FALSE(TreeTopology::Parse(spec, 16, &topo, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// ---------------------------------------------------------------------
// Index math identities.

TEST(TreeTopologyIndexMath, ParentInvertsChildRangesAndLeavesPartition) {
  const struct {
    const char* spec;
    int leaves;
  } cases[] = {
      {"tree:3", 17},   // irregular: fan-ins must differ by at most one
      {"tree:8,7", 50},
      {"tree:4", 16},
      {"tree:2", 9},    // depth 4
  };
  for (const auto& c : cases) {
    TreeTopology topo;
    std::string error;
    ASSERT_TRUE(TreeTopology::Parse(c.spec, c.leaves, &topo, &error))
        << c.spec << ": " << error;
    for (int tier = 0; tier < topo.depth(); ++tier) {
      const int parents = topo.NodesAt(tier);
      const int children = topo.NodesAt(tier + 1);
      int covered = 0;
      int min_fan = children, max_fan = 0;
      for (int node = 0; node < parents; ++node) {
        const int begin = topo.ChildBegin(tier, node);
        const int end = topo.ChildEnd(tier, node);
        ASSERT_EQ(begin, covered) << c.spec << " tier " << tier;
        ASSERT_GT(end, begin) << c.spec << " tier " << tier;
        for (int child = begin; child < end; ++child) {
          ASSERT_EQ(topo.Parent(tier + 1, child), node)
              << c.spec << " tier " << tier << " child " << child;
        }
        min_fan = std::min(min_fan, end - begin);
        max_fan = std::max(max_fan, end - begin);
        covered = end;
      }
      ASSERT_EQ(covered, children) << c.spec << " tier " << tier;
      EXPECT_LE(max_fan - min_fan, 1) << c.spec << " tier " << tier;

      int leaves_sum = 0;
      for (int node = 0; node < parents; ++node) {
        leaves_sum += topo.LeavesUnder(tier, node);
      }
      EXPECT_EQ(leaves_sum, topo.leaves()) << c.spec << " tier " << tier;
    }
    EXPECT_EQ(topo.LeavesUnder(0, 0), topo.leaves()) << c.spec;
  }
}

// ---------------------------------------------------------------------
// Runner integration helpers.

struct TreeRunOutput {
  RunResult result;
  std::vector<std::string> trace_lines;
};

std::vector<StreamRecord> TestTrace(int sites, int64_t updates) {
  WorldCupConfig wc;
  wc.sites = sites;
  wc.total_updates = updates;
  return GenerateWorldCupTrace(wc);
}

RunConfig TreeConfig(ProtocolKind protocol, int sites,
                     const std::string& topology) {
  RunConfig config;
  config.protocol = protocol;
  config.query = QueryKind::kSelfJoin;
  config.sites = sites;
  config.depth = 5;
  config.width = 60;
  config.check_every = 1000;
  config.topology = topology;
  return config;
}

/// Runs with an in-memory trace sink (flat and depth-1 runs only: deep
/// trees put the topology spec into RunStart by pointer, so their traces
/// must be serialized before Run returns — use RunToFile).
TreeRunOutput RunInMemory(RunConfig config,
                          const std::vector<StreamRecord>& trace) {
  MemoryTraceSink sink;
  config.trace = &sink;
  TreeRunOutput out;
  out.result = Run(config, trace);
  for (const TraceEvent& e : sink.events_log()) {
    out.trace_lines.push_back(JsonlTraceSink::EventJson(e));
  }
  return out;
}

/// Runs with a JSONL trace sink on disk and returns the replay verdict.
RunResult RunToFile(RunConfig config, const std::vector<StreamRecord>& trace,
                    const std::string& path, ReplayReport* report) {
  RunResult result;
  {
    JsonlTraceSink sink(path);
    config.trace = &sink;
    result = Run(config, trace);
  }
  *report = CheckTraceFile(path);
  return result;
}

// ---------------------------------------------------------------------
// Flat equivalence: a depth-1 tree is the flat star, bit for bit.

class DepthOneTreeIsFlat : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(DepthOneTreeIsFlat, TraceAndTrafficBitIdentical) {
  const ProtocolKind protocol = GetParam();
  const std::vector<StreamRecord> trace = TestTrace(16, 20000);

  const TreeRunOutput flat =
      RunInMemory(TreeConfig(protocol, 16, ""), trace);
  const TreeRunOutput tree =
      RunInMemory(TreeConfig(protocol, 16, "tree:16"), trace);

  EXPECT_TRUE(tree.result.topology.empty());
  EXPECT_TRUE(tree.result.tier_traffic.empty());
  const TrafficStats& a = flat.result.traffic;
  const TrafficStats& b = tree.result.traffic;
  EXPECT_EQ(a.total_words(), b.total_words());
  EXPECT_EQ(a.upstream_words, b.upstream_words);
  EXPECT_EQ(a.downstream_words, b.downstream_words);
  EXPECT_EQ(flat.result.rounds, tree.result.rounds);
  EXPECT_EQ(flat.result.subrounds, tree.result.subrounds);
  EXPECT_EQ(flat.result.max_violation, tree.result.max_violation);
  EXPECT_EQ(flat.result.final_estimate, tree.result.final_estimate);

  ASSERT_EQ(flat.trace_lines.size(), tree.trace_lines.size());
  for (size_t i = 0; i < flat.trace_lines.size(); ++i) {
    ASSERT_EQ(flat.trace_lines[i], tree.trace_lines[i])
        << "trace line " << i;
  }
}

std::string ProtocolParamName(
    const ::testing::TestParamInfo<ProtocolKind>& info) {
  std::string name = ProtocolKindName(info.param);
  for (char& c : name) {
    if (c == '/' || c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Protocols, DepthOneTreeIsFlat,
                         ::testing::Values(ProtocolKind::kFgm,
                                           ProtocolKind::kFgmOpt,
                                           ProtocolKind::kGm),
                         ProtocolParamName);

// ---------------------------------------------------------------------
// Deep-tree correctness.

TEST(DeepTree, TwoTierSelfJoinMonitorsWithCertifiedTrace) {
  const std::vector<StreamRecord> trace = TestTrace(16, 30000);
  const std::string path = ::testing::TempDir() + "/hier_two_tier.jsonl";

  ReplayReport report;
  const RunResult tree =
      RunToFile(TreeConfig(ProtocolKind::kFgm, 16, "tree:4"), trace, path,
                &report);

  EXPECT_EQ(tree.max_violation, 0.0);
  EXPECT_EQ(tree.topology, "tree:4,4");
  // Per-link-tier traffic, root-side first; entry 0 repeats the root
  // totals the headline TrafficStats carries.
  ASSERT_EQ(tree.tier_traffic.size(), 2u);
  EXPECT_EQ(tree.tier_traffic[0].total_words(), tree.traffic.total_words());
  EXPECT_GT(tree.tier_traffic[1].total_words(), 0);
  EXPECT_GT(tree.local_polls, 0);
  EXPECT_GT(tree.rounds, 0);

  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.tier_ends, 0) << report.Summary();
  EXPECT_GT(report.tier_words, 0);

  // The root now talks to 4 aggregators instead of 16 sites; its own
  // traffic must shrink vs the flat star on the same stream.
  const TreeRunOutput flat =
      RunInMemory(TreeConfig(ProtocolKind::kFgm, 16, ""), trace);
  EXPECT_LT(tree.traffic.total_words(), flat.result.traffic.total_words());
  EXPECT_EQ(tree.rounds, flat.result.rounds);
}

TEST(DeepTree, ThreeTierTreeMonitorsWithCertifiedTrace) {
  const std::vector<StreamRecord> trace = TestTrace(27, 30000);
  const std::string path = ::testing::TempDir() + "/hier_three_tier.jsonl";

  ReplayReport report;
  const RunResult tree =
      RunToFile(TreeConfig(ProtocolKind::kFgm, 27, "tree:3"), trace, path,
                &report);

  EXPECT_EQ(tree.max_violation, 0.0);
  EXPECT_EQ(tree.topology, "tree:3,3,3");
  ASSERT_EQ(tree.tier_traffic.size(), 3u);
  EXPECT_EQ(tree.tier_traffic[0].total_words(), tree.traffic.total_words());
  EXPECT_GT(tree.tier_traffic[1].total_words(), 0);
  EXPECT_GT(tree.tier_traffic[2].total_words(), 0);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.tier_ends, 0);
}

TEST(DeepTree, OptimizerProtocolPlansAtRootGranularity) {
  const std::vector<StreamRecord> trace = TestTrace(64, 30000);
  const std::string path = ::testing::TempDir() + "/hier_fgmo.jsonl";

  ReplayReport report;
  const RunResult tree =
      RunToFile(TreeConfig(ProtocolKind::kFgmOpt, 64, "tree:8"), trace,
                path, &report);

  EXPECT_EQ(tree.max_violation, 0.0);
  EXPECT_EQ(tree.topology, "tree:8,8");
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.plans, 0) << "FGM/O must still emit plan events";
}

// ---------------------------------------------------------------------
// Aggregator-failure chaos grid: drop × latency × tier-1 crash/rejoin.
// Fault-plan site indices address tier-1 aggregators on tree runs.

using HierChaosParam = std::tuple<double, const char*>;

class HierChaosGrid : public ::testing::TestWithParam<HierChaosParam> {};

TEST_P(HierChaosGrid, AggregatorCrashNeverCostsCorrectness) {
  const double drop = std::get<0>(GetParam());
  const char* latency = std::get<1>(GetParam());
  const std::vector<StreamRecord> trace = TestTrace(16, 30000);

  RunConfig config = TreeConfig(ProtocolKind::kFgm, 16, "tree:4");
  config.check_every = 500;
  config.net.latency = latency;
  config.net.drop = drop;
  config.net.fault_plan = "crash:site=1,at=20000,rejoin=26000";

  std::string name(latency);
  for (char& c : name) {
    if (c == ':' || c == '-') c = '_';
  }
  const std::string path = ::testing::TempDir() + "/hier_chaos_" + name +
                           "_" + std::to_string(static_cast<int>(drop * 100)) +
                           ".jsonl";
  ReplayReport report;
  const RunResult tree = RunToFile(config, trace, path, &report);

  EXPECT_EQ(tree.max_violation, 0.0);
  EXPECT_EQ(tree.net.site_downs, 1);
  EXPECT_GE(tree.net.resyncs, 1);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.tier_ends, 0);
}

INSTANTIATE_TEST_SUITE_P(
    DropByLatency, HierChaosGrid,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.2),
                       ::testing::Values("fixed:4", "uniform:1-16")),
    [](const ::testing::TestParamInfo<HierChaosParam>& info) {
      std::string name(std::get<1>(info.param));
      for (char& c : name) {
        if (c == ':' || c == '-') c = '_';
      }
      return name + "_drop" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100));
    });

TEST(HierFaults, AggregatorPastDeadlineDegradesToReducedKAndRecovers) {
  const std::vector<StreamRecord> trace = TestTrace(16, 30000);

  RunConfig config = TreeConfig(ProtocolKind::kFgm, 16, "tree:4");
  config.check_every = 500;
  config.net.latency = "uniform:1-16";
  config.net.drop = 0.1;
  config.net.fault_plan = "crash:site=1,at=20000,rejoin=30000";

  const std::string path =
      ::testing::TempDir() + "/hier_deadline.jsonl";
  ReplayReport report;
  const RunResult tree = RunToFile(config, trace, path, &report);

  EXPECT_EQ(tree.max_violation, 0.0);
  EXPECT_EQ(tree.net.site_downs, 1);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ---------------------------------------------------------------------
// Rejections: parse errors and protocols without subround machinery.

TEST(HierDeathTest, MalformedTopologySpecDiesInRun) {
  const std::vector<StreamRecord> trace = TestTrace(4, 100);
  RunConfig config = TreeConfig(ProtocolKind::kFgm, 4, "tree:0");
  EXPECT_DEATH(::fgm::Run(config, trace), "FGM_CHECK failed");
}

TEST(HierDeathTest, UncoveringTopologySpecDiesInRun) {
  const std::vector<StreamRecord> trace = TestTrace(16, 100);
  RunConfig config = TreeConfig(ProtocolKind::kFgm, 16, "tree:2,2");
  EXPECT_DEATH(::fgm::Run(config, trace), "FGM_CHECK failed");
}

TEST(HierDeathTest, GmProtocolRejectsDeepTrees) {
  const std::vector<StreamRecord> trace = TestTrace(16, 100);
  RunConfig config = TreeConfig(ProtocolKind::kGm, 16, "tree:4");
  EXPECT_DEATH(::fgm::Run(config, trace), "FGM_CHECK failed");
}

TEST(HierDeathTest, CentralProtocolRejectsDeepTrees) {
  const std::vector<StreamRecord> trace = TestTrace(16, 100);
  RunConfig config = TreeConfig(ProtocolKind::kCentral, 16, "tree:4");
  EXPECT_DEATH(::fgm::Run(config, trace), "FGM_CHECK failed");
}

}  // namespace
}  // namespace fgm
