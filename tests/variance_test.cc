// Tests for variance monitoring: the quadratic-over-linear safe zone, the
// tangent-plane upper bound, the query wiring, and the end-to-end
// guarantee through the protocols.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "driver/runner.h"
#include "query/variance.h"
#include "safezone/variance_sz.h"
#include "stream/worldcup.h"
#include "util/rng.h"

namespace fgm {
namespace {

RealVector MakeState(double n, double mean, double var) {
  // (count, Σv, Σv²) with the requested moments.
  return RealVector{n, n * mean, n * (var + mean * mean)};
}

TEST(VarianceOfState, MatchesMoments) {
  const RealVector s = MakeState(50.0, 3.0, 7.5);
  EXPECT_NEAR(VarianceOfState(s), 7.5, 1e-12);
  EXPECT_DOUBLE_EQ(VarianceOfState(RealVector(3)), 0.0);
}

TEST(VarianceLower, NegativeAtReferenceAndSafe) {
  const RealVector e = MakeState(40.0, 5.0, 10.0);
  VarianceLowerSafeFunction fn(e, /*t_lo=*/6.0);
  EXPECT_LT(fn.Eval(RealVector(3)), 0.0);
  // Randomized safety: φ(x) ≤ 0 ⇒ var(E + x) ≥ t_lo.
  Xoshiro256ss rng(1);
  int quiescent = 0;
  for (int t = 0; t < 5000; ++t) {
    RealVector x{4.0 * rng.NextGaussian(), 30.0 * rng.NextGaussian(),
                 300.0 * rng.NextGaussian()};
    if (fn.Eval(x) > 0.0) continue;
    ++quiescent;
    RealVector s = e;
    s += x;
    ASSERT_GE(VarianceOfState(s), 6.0 - 1e-9);
  }
  EXPECT_GT(quiescent, 50);
}

TEST(VarianceLower, ConvexOnTheDomain) {
  const RealVector e = MakeState(40.0, 5.0, 10.0);
  VarianceLowerSafeFunction fn(e, 6.0);
  Xoshiro256ss rng(2);
  for (int t = 0; t < 2000; ++t) {
    // Stay within n + x0 > 0.
    RealVector a{30.0 * rng.NextDouble() - 20.0, 30.0 * rng.NextGaussian(),
                 300.0 * rng.NextGaussian()};
    RealVector b{30.0 * rng.NextDouble() - 20.0, 30.0 * rng.NextGaussian(),
                 300.0 * rng.NextGaussian()};
    const double theta = rng.NextDouble();
    RealVector mid = a;
    mid *= theta;
    mid.Axpy(1.0 - theta, b);
    const double rhs = theta * fn.Eval(a) + (1.0 - theta) * fn.Eval(b);
    ASSERT_LE(fn.Eval(mid), rhs + 1e-7 * (1.0 + std::fabs(rhs)));
  }
}

TEST(VarianceUpper, TangentPlaneIsInsideTheRegion) {
  const RealVector e = MakeState(40.0, 5.0, 10.0);
  VarianceUpperSafeFunction fn(e, /*t_hi=*/14.0);
  EXPECT_LT(fn.Eval(RealVector(3)), 0.0);
  Xoshiro256ss rng(3);
  int quiescent = 0;
  for (int t = 0; t < 5000; ++t) {
    RealVector x{6.0 * rng.NextGaussian(), 40.0 * rng.NextGaussian(),
                 400.0 * rng.NextGaussian()};
    if (fn.Eval(x) > 0.0) continue;
    RealVector s = e;
    s += x;
    if (s[0] <= 1e-9) continue;  // variance undefined; region vacuous
    ++quiescent;
    ASSERT_LE(VarianceOfState(s), 14.0 + 1e-9);
  }
  EXPECT_GT(quiescent, 50);
}

TEST(VarianceSafeFunction, TwoSidedDef21Safety) {
  const RealVector e = MakeState(60.0, 4.0, 12.0);
  auto fn = MakeVarianceSafeFunction(e, 9.0, 15.0);
  ASSERT_LT(fn->AtZero(), 0.0);
  Xoshiro256ss rng(4);
  int quiescent = 0;
  for (int t = 0; t < 5000; ++t) {
    // Definition 2.1 with k = 3 sites.
    RealVector sum(3);
    double psi = 0.0;
    for (int i = 0; i < 3; ++i) {
      RealVector x{3.0 * rng.NextGaussian(), 15.0 * rng.NextGaussian(),
                   150.0 * rng.NextGaussian()};
      psi += fn->Eval(x);
      sum += x;
    }
    if (psi > 0.0) continue;
    ++quiescent;
    sum *= 1.0 / 3.0;
    sum += e;
    ASSERT_GT(sum[0], 0.0);
    const double var = VarianceOfState(sum);
    ASSERT_GE(var, 9.0 - 1e-9);
    ASSERT_LE(var, 15.0 + 1e-9);
  }
  EXPECT_GT(quiescent, 20);
}

TEST(ResponseSize, DeterministicPositiveAndTyped) {
  StreamRecord a;
  a.cid = 123;
  a.type = FileType::kHtml;
  StreamRecord b = a;
  EXPECT_DOUBLE_EQ(ResponseSizeOf(a), ResponseSizeOf(b));
  EXPECT_GT(ResponseSizeOf(a), 0.0);
  b.type = FileType::kVideo;
  EXPECT_GT(ResponseSizeOf(b), ResponseSizeOf(a));
}

TEST(VarianceQuery, StateMappingAndEvaluate) {
  VarianceQuery query(0.1);
  StreamRecord rec;
  rec.cid = 99;
  rec.type = FileType::kImage;
  rec.weight = -1.0;
  std::vector<CellUpdate> deltas;
  query.MapRecord(rec, &deltas);
  ASSERT_EQ(deltas.size(), 3u);
  const double v = ResponseSizeOf(rec);
  EXPECT_DOUBLE_EQ(deltas[0].delta, -1.0);
  EXPECT_DOUBLE_EQ(deltas[1].delta, -v);
  EXPECT_DOUBLE_EQ(deltas[2].delta, -v * v);
}

TEST(VarianceQuery, BootstrapThenRealThresholds) {
  VarianceQuery query(0.1, 1e-3, /*bootstrap_count=*/32.0);
  const ThresholdPair cold = query.Thresholds(RealVector(3));
  EXPECT_LT(cold.lo, -1e200);
  EXPECT_GT(cold.hi, 1e200);
  auto cold_fn = query.MakeSafeFunction(RealVector(3));
  EXPECT_LT(cold_fn->AtZero(), 0.0);

  const RealVector warm = MakeState(100.0, 4.0, 9.0);
  const ThresholdPair t = query.Thresholds(warm);
  EXPECT_NEAR(t.lo, 9.0 * 0.9, 1e-9);
  EXPECT_NEAR(t.hi, 9.0 * 1.1, 1e-9);
  auto fn = query.MakeSafeFunction(warm);
  EXPECT_LT(fn->AtZero(), 0.0);
}

class VarianceProtocolSweep : public ::testing::TestWithParam<ProtocolKind> {
};

TEST_P(VarianceProtocolSweep, GuaranteeHoldsEndToEnd) {
  WorldCupConfig wc;
  wc.sites = 5;
  wc.total_updates = 30000;
  wc.duration = 8000.0;
  const auto trace = GenerateWorldCupTrace(wc);
  RunConfig config;
  config.protocol = GetParam();
  config.query = QueryKind::kVariance;
  config.sites = 5;
  config.epsilon = 0.15;
  config.window_seconds = 1200.0;
  config.check_every = 1;
  const RunResult result = ::fgm::Run(config, trace);
  EXPECT_GT(result.checks, 0);
  EXPECT_LE(result.max_violation, 1e-6) << result.protocol_name;
  // D = 3, so monitoring must crush the centralizing cost.
  if (GetParam() != ProtocolKind::kCentral) {
    EXPECT_LT(result.comm_cost, 0.6) << result.protocol_name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, VarianceProtocolSweep,
                         ::testing::Values(ProtocolKind::kCentral,
                                           ProtocolKind::kGm,
                                           ProtocolKind::kFgm,
                                           ProtocolKind::kFgmOpt));

}  // namespace
}  // namespace fgm
