// Unit and end-to-end tests for the run-health monitor (obs/health.h):
// EWMA determinism, alert-rule raise/clear transitions with hysteresis,
// deterministic down/rejoin straggler alerts through a faulted simulated
// run, the die_at partial-telemetry path, and the passive-monitor
// bit-identity guarantee.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/runner.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

TEST(Ewma, FirstSampleSeedsThenFoldsDeterministically) {
  Ewma e;
  e.set_alpha(0.5);
  EXPECT_EQ(e.samples(), 0);
  e.Observe(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);  // first sample seeds, no decay
  e.Observe(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.Observe(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 17.5);
  EXPECT_EQ(e.samples(), 3);
}

SiteNetSample Sample(int64_t delivered, int64_t dropped,
                     int64_t latency_ticks, int64_t latency_samples) {
  SiteNetSample s;
  s.delivered_msgs = delivered;
  s.delivered_words = delivered * 4;
  s.dropped_msgs = dropped;
  s.dropped_words = dropped * 4;
  s.latency_ticks = latency_ticks;
  s.latency_samples = latency_samples;
  return s;
}

TEST(HealthMonitor, LossyLinkRaisesAndClearsWithHysteresis) {
  HealthMonitor hm(3);
  const double thr = hm.config().lossy_drop_threshold;

  // Site 1 drops 40% of its messages for one round: EWMA seeds at 0.4,
  // well over the 0.15 threshold.
  SiteNetSample cum = Sample(60, 40, 60, 60);
  hm.ObserveNet(1, cum);
  hm.EvaluateAlerts(/*round=*/1, /*t=*/100);
  EXPECT_TRUE(hm.alert_active(AlertRule::kLossyLink, 1));
  EXPECT_FALSE(hm.alert_active(AlertRule::kLossyLink, 0));
  EXPECT_EQ(hm.alerts_raised(), 1);

  // One clean round is not enough: hysteresis holds the alert until the
  // EWMA decays below threshold·clear_factor, not just below threshold.
  cum.delivered_msgs += 100;
  cum.latency_ticks += 100;
  cum.latency_samples += 100;
  hm.ObserveNet(1, cum);
  hm.EvaluateAlerts(2, 200);
  ASSERT_GT(hm.drop_fraction(1), thr * hm.config().clear_factor);
  EXPECT_TRUE(hm.alert_active(AlertRule::kLossyLink, 1));
  EXPECT_EQ(hm.alerts_cleared(), 0);

  // Clean rounds until the EWMA crosses the clear bar.
  for (int round = 3; round < 20; ++round) {
    cum.delivered_msgs += 100;
    cum.latency_ticks += 100;
    cum.latency_samples += 100;
    hm.ObserveNet(1, cum);
    hm.EvaluateAlerts(round, round * 100);
    if (!hm.alert_active(AlertRule::kLossyLink, 1)) break;
  }
  EXPECT_FALSE(hm.alert_active(AlertRule::kLossyLink, 1));
  EXPECT_LT(hm.drop_fraction(1), thr * hm.config().clear_factor);
  EXPECT_EQ(hm.alerts_raised(), 1);
  EXPECT_EQ(hm.alerts_cleared(), 1);
}

TEST(HealthMonitor, DownAndRejoinAreDeterministicAndDeduped) {
  MemoryTraceSink sink;
  HealthMonitor hm(5);
  hm.set_trace(&sink);

  hm.NoteSiteDown(2, /*round=*/7, /*t=*/1000);
  hm.NoteSiteDown(2, 7, 1001);  // duplicate signal: no double raise
  EXPECT_TRUE(hm.alert_active(AlertRule::kStragglerSite, 2));
  EXPECT_TRUE(hm.site_down(2));
  EXPECT_EQ(hm.alerts_raised(), 1);

  hm.NoteSiteUp(2, 9, 2000);
  EXPECT_FALSE(hm.alert_active(AlertRule::kStragglerSite, 2));
  EXPECT_FALSE(hm.site_down(2));
  EXPECT_EQ(hm.alerts_cleared(), 1);

  ASSERT_EQ(sink.events_log().size(), 2u);
  const TraceEvent& raise = sink.events_log()[0];
  EXPECT_EQ(raise.kind, TraceEventKind::kAlertRaised);
  EXPECT_STREQ(raise.label, "straggler_site");
  EXPECT_EQ(raise.site, 2);
  EXPECT_EQ(raise.round, 7);
  EXPECT_STREQ(raise.reason, "down");
  const TraceEvent& clear = sink.events_log()[1];
  EXPECT_EQ(clear.kind, TraceEventKind::kAlertCleared);
  EXPECT_STREQ(clear.reason, "rejoin");
}

TEST(HealthMonitor, PsiMarginAlertNeedsWarmup) {
  HealthMonitor hm(3);
  // Every round ends 2·|stop| past the stop level: overshoot EWMA = 2.
  for (int round = 1; round <= 2; ++round) {
    hm.ObservePsiMargin(/*last_psi=*/1.0, /*stop_level=*/-1.0);
    hm.EvaluateAlerts(round, round);
    EXPECT_FALSE(hm.alert_active(AlertRule::kPsiMargin, -1))
        << "fired before min_rounds warmup";
  }
  hm.ObservePsiMargin(1.0, -1.0);
  hm.EvaluateAlerts(3, 3);
  EXPECT_TRUE(hm.alert_active(AlertRule::kPsiMargin, -1));
}

TEST(HealthMonitor, StuckSubroundRaisesAndClears) {
  HealthMonitor hm(3);
  const int64_t need = hm.config().stuck_progress_samples;
  hm.ObserveProgress(/*records=*/1000, /*round=*/1, /*total_subrounds=*/5,
                     /*t=*/1);
  for (int64_t i = 0; i < need; ++i) {
    hm.ObserveProgress(1000 * (i + 2), 1, 5, i + 2);
  }
  EXPECT_TRUE(hm.alert_active(AlertRule::kStuckSubround, -1));
  hm.ObserveProgress(9000, 2, 6, 99);  // subrounds advanced: recovers
  EXPECT_FALSE(hm.alert_active(AlertRule::kStuckSubround, -1));
}

TEST(HealthMonitor, ShipCostReflectsLinkQuality) {
  HealthMonitor hm(3);
  EXPECT_DOUBLE_EQ(hm.ShipCostFactor(0), 1.0);  // clean link

  // 50% drop: every shipped word is expected to be sent twice.
  hm.ObserveNet(1, Sample(50, 50, 50, 50));
  EXPECT_NEAR(hm.ShipCostFactor(1), 2.0, 1e-9);

  hm.NoteSiteDown(2, 1, 1);
  EXPECT_DOUBLE_EQ(hm.ShipCostFactor(2), hm.config().max_ship_cost);
  EXPECT_GT(hm.RebalanceCostFactor(), 1.0);
}

TEST(HealthMonitor, PrometheusTextExposition) {
  HealthMonitor hm(2);
  hm.NoteSiteDown(1, 3, 50);
  const std::string text = hm.PrometheusText(/*records=*/1234, /*rounds=*/7,
                                             /*total_words=*/999, /*psi=*/-2.5);
  EXPECT_NE(text.find("# TYPE fgm_records_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("fgm_records_total 1234\n"), std::string::npos);
  EXPECT_NE(text.find("fgm_rounds_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("fgm_psi -2.5\n"), std::string::npos);
  EXPECT_NE(text.find("fgm_site_down{site=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("fgm_alert_active{rule=\"straggler_site\",site=\"1\"}"),
            std::string::npos);
  // Exposition discipline: every metric line is "name[{labels}] value".
  for (size_t pos = 0; pos < text.size();) {
    size_t end = text.find('\n', pos);
    ASSERT_NE(end, std::string::npos) << "unterminated exposition line";
    const std::string line = text.substr(pos, end - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    pos = end + 1;
  }
}

TEST(HealthMonitor, HeartbeatJsonParses) {
  HealthMonitor hm(2);
  hm.NoteSiteDown(0, 1, 1);
  const std::string line = hm.HeartbeatJson(500, 3, 4200, -1.25);
  JsonNode node;
  std::string error;
  ASSERT_TRUE(ParseJson(line, &node, &error)) << error;
  EXPECT_EQ(node.Find("records")->AsInt(), 500);
  EXPECT_EQ(node.Find("rounds")->AsInt(), 3);
  EXPECT_EQ(node.Find("words")->AsInt(), 4200);
  EXPECT_DOUBLE_EQ(node.Find("psi")->AsDouble(), -1.25);
  EXPECT_EQ(node.Find("alerts_active")->AsInt(), 1);
  EXPECT_EQ(node.Find("alerts_raised")->AsInt(), 1);
}

// ---------------------------------------------------------------------------
// End-to-end: the chaos grid drives the deterministic straggler alert.

std::vector<StreamRecord> SmallTrace(int64_t updates) {
  WorldCupConfig wc;
  wc.sites = 5;
  wc.total_updates = updates;
  return GenerateWorldCupTrace(wc);
}

RunConfig SmallConfig() {
  RunConfig config;
  config.protocol = ProtocolKind::kFgm;
  config.query = QueryKind::kSelfJoin;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  config.check_every = 1000;
  return config;
}

TEST(HealthEndToEnd, FaultedSiteRaisesAndRecoveredSiteClears) {
  MemoryTraceSink sink;
  HealthMonitor hm(5);
  RunConfig config = SmallConfig();
  config.net.latency = "uniform:1-16";
  config.net.drop = 0.2;
  config.net.fault_plan = "crash:site=2,at=20000,rejoin=26000";
  config.trace = &sink;
  config.health = &hm;

  const RunResult r = ::fgm::Run(config, SmallTrace(30000));
  EXPECT_EQ(r.net.site_downs, 1);
  EXPECT_EQ(r.net.resyncs, 1);
  EXPECT_GT(r.alerts_raised, 0);

  bool saw_down = false, saw_rejoin = false;
  for (const TraceEvent& e : sink.events_log()) {
    if (e.kind == TraceEventKind::kAlertRaised && e.site == 2 &&
        std::string(e.label) == "straggler_site" && e.reason != nullptr &&
        std::string(e.reason) == "down") {
      saw_down = true;
    }
    if (e.kind == TraceEventKind::kAlertCleared && e.site == 2 &&
        std::string(e.label) == "straggler_site" && e.reason != nullptr &&
        std::string(e.reason) == "rejoin") {
      EXPECT_TRUE(saw_down) << "clear before raise";
      saw_rejoin = true;
    }
  }
  EXPECT_TRUE(saw_down) << "crash did not raise a straggler_site alert";
  EXPECT_TRUE(saw_rejoin) << "rejoin did not clear the straggler_site alert";
}

TEST(HealthEndToEnd, PassiveMonitorKeepsTrafficBitIdentical) {
  // The monitor observing a run (health_planning off) must not perturb
  // the protocol: plans, rounds and every traffic word stay identical.
  RunConfig plain = SmallConfig();
  plain.protocol = ProtocolKind::kFgmOpt;
  const std::vector<StreamRecord> trace = SmallTrace(30000);
  const RunResult base = ::fgm::Run(plain, trace);

  HealthMonitor hm(5);
  RunConfig monitored = plain;
  monitored.health = &hm;
  const RunResult obs = ::fgm::Run(monitored, trace);

  EXPECT_EQ(base.traffic.total_words(), obs.traffic.total_words());
  EXPECT_EQ(base.traffic.upstream_words, obs.traffic.upstream_words);
  EXPECT_EQ(base.rounds, obs.rounds);
  EXPECT_EQ(base.subrounds, obs.subrounds);
  EXPECT_EQ(base.rebalances, obs.rebalances);
}

TEST(HealthEndToEnd, DieAtStopsEarlyAndStillReports) {
  RunConfig config = SmallConfig();
  config.die_at = 9000;
  const RunResult r = ::fgm::Run(config, SmallTrace(30000));
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.events, 9000);  // cash-register: events == records
  EXPECT_GT(r.rounds, 0);
  EXPECT_GT(r.traffic.total_words(), 0);
}

TEST(HealthEndToEnd, HealthPlanningKeepsGuaranteeUnderChaos) {
  RunConfig config = SmallConfig();
  config.protocol = ProtocolKind::kFgmOpt;
  config.net.latency = "fixed:4";
  config.net.drop = 0.1;
  config.net.fault_plan = "crash:site=2,at=10000,rejoin=16000";
  config.health_planning = true;
  const RunResult r = ::fgm::Run(config, SmallTrace(30000));
  EXPECT_EQ(r.max_violation, 0.0);
  EXPECT_GT(r.rounds, 0);
}

}  // namespace
}  // namespace fgm
