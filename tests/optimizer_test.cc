// Unit tests for the FGM/O cost-based round optimizer (§4.2).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "util/rng.h"

namespace fgm {
namespace {

// Reference rate computation for an arbitrary plan d:
// (g(d) - C)/τ(d), the optimizer's steady-state objective.
double RateOf(const std::vector<SiteRates>& rates,
              const std::vector<uint8_t>& d, int64_t dim, double overhead) {
  const int k = static_cast<int>(rates.size());
  double denom = 0.0;
  int n = 0;
  for (int i = 0; i < k; ++i) {
    const auto& r = rates[static_cast<size_t>(i)];
    if (!r.active) continue;
    denom += d[static_cast<size_t>(i)] ? r.alpha : r.beta;
    n += d[static_cast<size_t>(i)];
  }
  const double tau = denom > 1e-12 ? static_cast<double>(k) / denom : 1e15;
  double downstream = 0.0;
  for (int i = 0; i < k; ++i) {
    downstream += std::min(rates[static_cast<size_t>(i)].gamma * tau,
                           static_cast<double>(dim));
  }
  return (tau - downstream - static_cast<double>(dim) * n - overhead) / tau;
}

TEST(Optimizer, MatchesExhaustiveSearchOnRandomInstances) {
  Xoshiro256ss rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 2 + static_cast<int>(rng.NextBounded(7));  // up to 8 sites
    const int64_t dim = 1 + static_cast<int64_t>(rng.NextBounded(2000));
    const double overhead = rng.NextDouble() * 50.0;
    std::vector<SiteRates> rates(static_cast<size_t>(k));
    double gamma_total = 0.0;
    for (auto& r : rates) {
      r.alpha = 1e-6 + rng.NextDouble() * 0.01;
      r.beta = r.alpha + rng.NextDouble() * 0.05;
      r.gamma = rng.NextDouble();
      gamma_total += r.gamma;
    }
    for (auto& r : rates) r.gamma /= gamma_total;

    const RoundPlan plan = OptimizeRoundPlan(rates, dim, overhead);
    const double greedy_rate =
        RateOf(rates, plan.full_function, dim, overhead);

    double best = -1e300;
    for (int mask = 0; mask < (1 << k); ++mask) {
      std::vector<uint8_t> d(static_cast<size_t>(k));
      for (int i = 0; i < k; ++i) d[static_cast<size_t>(i)] = (mask >> i) & 1;
      best = std::max(best, RateOf(rates, d, dim, overhead));
    }
    ASSERT_NEAR(greedy_rate, best, 1e-6 * (1.0 + std::fabs(best)))
        << "trial " << trial << " k=" << k << " D=" << dim;
  }
}

TEST(Optimizer, InactiveSitesNeverGetTheFullFunction) {
  std::vector<SiteRates> rates(4);
  for (auto& r : rates) {
    r.alpha = 0.001;
    r.beta = 0.02;
    r.gamma = 0.25;
  }
  rates[2].active = false;
  const RoundPlan plan = OptimizeRoundPlan(rates, 10);
  EXPECT_EQ(plan.full_function[2], 0);
}

TEST(Optimizer, CheapDimensionPrefersFullFunctions) {
  // When D is tiny, shipping φ costs almost nothing and the longer rounds
  // it buys always win.
  std::vector<SiteRates> rates(5);
  for (auto& r : rates) {
    r.alpha = 0.0001;
    r.beta = 0.05;
    r.gamma = 0.2;
  }
  const RoundPlan plan = OptimizeRoundPlan(rates, 1);
  for (uint8_t d : plan.full_function) EXPECT_EQ(d, 1);
}

TEST(Optimizer, HugeDimensionPrefersCheapFunctions) {
  // When D dwarfs any achievable round length, safe zones are not worth
  // shipping (the Fig. 4 adverse regime).
  std::vector<SiteRates> rates(5);
  for (auto& r : rates) {
    r.alpha = 0.01;
    r.beta = 0.05;
    r.gamma = 0.2;
  }
  const RoundPlan plan = OptimizeRoundPlan(rates, 1000000);
  for (uint8_t d : plan.full_function) EXPECT_EQ(d, 0);
}

TEST(Optimizer, SkewedRatesPickTheHotSites)
{
  // Two fast sites and three idle-ish ones: with a moderate D the greedy
  // plan should invest the D words only in the sites driving ψ.
  std::vector<SiteRates> rates(5);
  for (size_t i = 0; i < 5; ++i) {
    const bool hot = i < 2;
    rates[i].alpha = hot ? 0.0005 : 0.004;
    rates[i].beta = hot ? 0.08 : 0.0045;
    rates[i].gamma = hot ? 0.45 : 0.1 / 3;
  }
  const RoundPlan plan = OptimizeRoundPlan(rates, 60);
  EXPECT_EQ(plan.full_function[0], 1);
  EXPECT_EQ(plan.full_function[1], 1);
  EXPECT_EQ(plan.full_function[2] + plan.full_function[3] +
                plan.full_function[4],
            0);
}

TEST(EstimateSiteRates, BasicDerivation) {
  // One round of τ = 100 updates, φ(0) = -10.
  const std::vector<double> phi_end = {-5.0, -10.0};
  const std::vector<double> drift_norm = {8.0, 2.0};
  const std::vector<int64_t> site_updates = {60, 40};
  const auto rates = EstimateSiteRates(-10.0, phi_end, drift_norm,
                                       site_updates);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_TRUE(rates[0].active);
  EXPECT_NEAR(rates[0].alpha, 5.0 / (10.0 * 100.0), 1e-12);
  EXPECT_NEAR(rates[0].beta, 8.0 / (10.0 * 100.0), 1e-12);
  EXPECT_NEAR(rates[0].gamma, 0.6, 1e-12);
  // Site 1: φ did not move → α clamps to a tiny positive value, β stays.
  EXPECT_GT(rates[1].alpha, 0.0);
  EXPECT_LT(rates[1].alpha, 1e-9);
  EXPECT_NEAR(rates[1].beta, 2.0 / (10.0 * 100.0), 1e-12);
}

TEST(EstimateSiteRates, SilentSitesBecomeInactive) {
  const auto rates = EstimateSiteRates(-1.0, {-0.5, -1.0}, {1.0, 0.0},
                                       {10, 0});
  EXPECT_TRUE(rates[0].active);
  EXPECT_FALSE(rates[1].active);
}

TEST(ExtrapolateRates, LinearExtrapolationWithClamping) {
  std::vector<SiteRates> prev(3), last(3);
  // Site 0: accelerating.
  prev[0] = {0.01, 0.02, 0.5, true};
  last[0] = {0.02, 0.03, 0.5, true};
  // Site 1: decelerating so hard the extrapolation would go negative.
  prev[1] = {0.05, 0.06, 0.3, true};
  last[1] = {0.01, 0.012, 0.3, true};
  // Site 2: inactive last round.
  prev[2] = {0.01, 0.02, 0.2, true};
  last[2].active = false;

  const auto result = ExtrapolateRates(prev, last);
  EXPECT_NEAR(result[0].alpha, 0.03, 1e-12);
  EXPECT_NEAR(result[0].beta, 0.04, 1e-12);
  EXPECT_GT(result[1].alpha, 0.0);   // clamped positive
  EXPECT_GE(result[1].beta, result[1].alpha);
  EXPECT_FALSE(result[2].active);    // stays first-order/inactive
}

TEST(ExtrapolateRates, ZeroDampingReturnsLastRates) {
  std::vector<SiteRates> prev(1), last(1);
  prev[0] = {0.01, 0.02, 1.0, true};
  last[0] = {0.03, 0.05, 1.0, true};
  const auto result = ExtrapolateRates(prev, last, /*damping=*/0.0);
  EXPECT_DOUBLE_EQ(result[0].alpha, 0.03);
  EXPECT_DOUBLE_EQ(result[0].beta, 0.05);
}

TEST(EstimateSiteRates, AlphaNeverExceedsBeta) {
  Xoshiro256ss rng(7);
  for (int t = 0; t < 100; ++t) {
    std::vector<double> phi_end(3), norm(3);
    std::vector<int64_t> updates(3);
    for (int i = 0; i < 3; ++i) {
      norm[static_cast<size_t>(i)] = rng.NextDouble() * 10.0;
      // Nonexpansiveness implies φ_end - φ(0) <= ‖X‖.
      phi_end[static_cast<size_t>(i)] =
          -10.0 + norm[static_cast<size_t>(i)] * rng.NextDouble();
      updates[static_cast<size_t>(i)] =
          static_cast<int64_t>(rng.NextBounded(100));
    }
    for (const auto& r : EstimateSiteRates(-10.0, phi_end, norm, updates)) {
      if (r.active) {
        ASSERT_GT(r.alpha, 0.0);
        ASSERT_LE(r.alpha, r.beta);
      }
    }
  }
}

}  // namespace
}  // namespace fgm
