// Tests for simultaneous multi-query monitoring: lifting, composition,
// and the end-to-end guarantee of EVERY member query under one protocol.

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/fgm_protocol.h"
#include "query/multi.h"
#include "query/variance.h"
#include "safezone/ball.h"
#include "safezone/lifted.h"
#include "stream/window.h"
#include "stream/worldcup.h"
#include "util/rng.h"

namespace fgm {
namespace {

std::unique_ptr<MultiQuery> MakeSelfJoinPlusVariance(double eps) {
  auto projection = std::make_shared<const AgmsProjection>(5, 32, 11);
  std::vector<std::unique_ptr<ContinuousQuery>> members;
  members.push_back(std::make_unique<SelfJoinQuery>(projection, eps));
  members.push_back(std::make_unique<VarianceQuery>(eps));
  return std::make_unique<MultiQuery>(std::move(members));
}

TEST(LiftedSafeFunction, ActsOnItsBlockOnly) {
  auto ball = std::make_unique<BallSafeFunction>(RealVector{1.0, 0.0}, 2.0);
  const BallSafeFunction reference(RealVector{1.0, 0.0}, 2.0);
  LiftedSafeFunction lifted(std::move(ball), /*offset=*/3, /*total_dim=*/7);
  EXPECT_EQ(lifted.dimension(), 7u);
  EXPECT_DOUBLE_EQ(lifted.AtZero(), reference.AtZero());

  RealVector x(7);
  x[0] = 100.0;  // outside the block: must not matter
  x[3] = 0.5;
  x[4] = -0.25;
  EXPECT_DOUBLE_EQ(lifted.Eval(x),
                   reference.Eval(RealVector{0.5, -0.25}));

  auto eval = lifted.MakeEvaluator();
  eval->ApplyDelta(0, 100.0);
  eval->ApplyDelta(3, 0.5);
  eval->ApplyDelta(4, -0.25);
  EXPECT_DOUBLE_EQ(eval->Value(), lifted.Eval(x));
  EXPECT_DOUBLE_EQ(eval->drift()[0], 100.0);
  const double lambda = 0.5;
  EXPECT_NEAR(eval->ValueAtScale(lambda), PerspectiveEval(lifted, x, lambda),
              1e-12);
}

TEST(MultiQuery, ConcatenatesStatesAndDeltas) {
  auto multi = MakeSelfJoinPlusVariance(0.1);
  EXPECT_EQ(multi->dimension(), 5u * 32u + 3u);
  EXPECT_EQ(multi->member_count(), 2u);
  StreamRecord rec;
  rec.cid = 7;
  rec.type = FileType::kImage;
  rec.weight = 1.0;
  std::vector<CellUpdate> deltas;
  multi->MapRecord(rec, &deltas);
  ASSERT_EQ(deltas.size(), 5u + 3u);
  for (size_t j = 0; j < 5; ++j) EXPECT_LT(deltas[j].index, 160u);
  for (size_t j = 5; j < 8; ++j) EXPECT_GE(deltas[j].index, 160u);
}

TEST(MultiQuery, MemberEvaluationSlices) {
  auto multi = MakeSelfJoinPlusVariance(0.1);
  RealVector state(multi->dimension());
  // Put variance-ish content into member 1's block.
  state[160] = 10.0;   // count
  state[161] = 40.0;   // Σv
  state[162] = 250.0;  // Σv²
  EXPECT_NEAR(multi->EvaluateMember(1, state), 25.0 - 16.0, 1e-12);
}

TEST(MultiQuery, SafeFunctionGuardsEveryMember) {
  // Build a warm state, then check Def 2.1 for BOTH member conditions.
  auto multi = MakeSelfJoinPlusVariance(0.25);
  Xoshiro256ss rng(3);
  RealVector e(multi->dimension());
  std::vector<CellUpdate> deltas;
  StreamRecord rec;
  for (int i = 0; i < 3000; ++i) {
    rec.cid = rng.NextBounded(200);
    rec.type = (i % 3) ? FileType::kImage : FileType::kVideo;
    rec.weight = 1.0;
    deltas.clear();
    multi->MapRecord(rec, &deltas);
    for (const auto& u : deltas) e[u.index] += u.delta;
  }
  auto fn = multi->MakeSafeFunction(e);
  ASSERT_LT(fn->AtZero(), 0.0);

  const ThresholdPair t0 = multi->MemberThresholds(0, e);
  const ThresholdPair t1 = multi->MemberThresholds(1, e);
  const double scale = std::fabs(fn->AtZero());
  int quiescent = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    RealVector x(multi->dimension());
    // Random drift, heavier in the low-dimension variance block.
    for (size_t i = 0; i < x.dim(); ++i) {
      const double s = i >= 160 ? 10.0 : 0.2;
      x[i] = s * scale * rng.NextGaussian() /
             std::sqrt(static_cast<double>(x.dim()));
    }
    if (fn->Eval(x) > 0.0) continue;
    ++quiescent;
    RealVector s = e;
    s += x;
    const double q0 = multi->EvaluateMember(0, s);
    const double q1 = multi->EvaluateMember(1, s);
    ASSERT_GE(q0, t0.lo - 1e-6 * std::fabs(t0.lo));
    ASSERT_LE(q0, t0.hi + 1e-6 * std::fabs(t0.hi));
    ASSERT_GE(q1, t1.lo - 1e-6 * (1.0 + std::fabs(t1.lo)));
    ASSERT_LE(q1, t1.hi + 1e-6 * (1.0 + std::fabs(t1.hi)));
  }
  EXPECT_GT(quiescent, 20);
}

TEST(MultiQuery, EndToEndBothGuaranteesUnderFgm) {
  WorldCupConfig wc;
  wc.sites = 5;
  wc.total_updates = 25000;
  wc.duration = 8000.0;
  const auto trace = GenerateWorldCupTrace(wc);

  auto multi = MakeSelfJoinPlusVariance(0.2);
  FgmConfig config;
  FgmProtocol protocol(multi.get(), 5, config);

  RealVector truth(multi->dimension());
  std::vector<CellUpdate> deltas;
  SlidingWindowStream events(&trace, 1500.0);
  int64_t n = 0;
  while (const StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    deltas.clear();
    multi->MapRecord(*rec, &deltas);
    for (const auto& u : deltas) truth[u.index] += u.delta / 5.0;
    if (++n % 50 == 0 && protocol.BoundsCertified()) {
      const RealVector& e = protocol.GlobalEstimate();
      for (size_t m = 0; m < multi->member_count(); ++m) {
        const ThresholdPair t = multi->MemberThresholds(m, e);
        const double q = multi->EvaluateMember(m, truth);
        ASSERT_GE(q, t.lo - 1e-6 * (1.0 + std::fabs(t.lo))) << "member " << m;
        ASSERT_LE(q, t.hi + 1e-6 * (1.0 + std::fabs(t.hi))) << "member " << m;
      }
    }
  }
  EXPECT_GT(protocol.rounds(), 2);
}

}  // namespace
}  // namespace fgm
