// Tests for the elementary safe functions: ball, halfspace, Lp-norm
// threshold, cheap bound, and the generic max/sum compositions.
//
// Property checks shared by all safe functions:
//  * φ(0) < 0;
//  * the safety implication of Def. 2.1 via Lemma 2.4: convexity +
//    0-sublevel containment (checked on random points);
//  * incremental evaluators agree with reference Eval;
//  * perspectives λφ(x/λ) agree with explicit scaling;
//  * nonexpansiveness on random pairs.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "safezone/ball.h"
#include "safezone/cheap_bound.h"
#include "safezone/compose.h"
#include "safezone/halfspace.h"
#include "safezone/norm_threshold.h"
#include "safezone/safe_function.h"
#include "util/rng.h"

namespace fgm {
namespace {

RealVector RandomVector(size_t dim, double scale, Xoshiro256ss& rng) {
  RealVector v(dim);
  for (size_t i = 0; i < dim; ++i) v[i] = scale * rng.NextGaussian();
  return v;
}

// Shared property harness.
void CheckEvaluatorAgreesWithEval(const SafeFunction& fn, Xoshiro256ss& rng,
                                  int trials = 50) {
  auto eval = fn.MakeEvaluator();
  RealVector x(fn.dimension());
  for (int t = 0; t < trials; ++t) {
    const size_t idx = rng.NextBounded(fn.dimension());
    const double delta = rng.NextGaussian();
    eval->ApplyDelta(idx, delta);
    x[idx] += delta;
    ASSERT_NEAR(eval->Value(), fn.Eval(x),
                1e-7 * (1.0 + std::fabs(fn.Eval(x))))
        << "trial " << t;
    const double lambda = 0.05 + 0.95 * rng.NextDouble();
    ASSERT_NEAR(eval->ValueAtScale(lambda), PerspectiveEval(fn, x, lambda),
                1e-7 * (1.0 + std::fabs(fn.Eval(x))));
  }
  eval->Reset();
  EXPECT_NEAR(eval->Value(), fn.AtZero(), 1e-9);
}

void CheckConvexityOnRandomSegments(const SafeFunction& fn,
                                    Xoshiro256ss& rng, double scale,
                                    int trials = 200) {
  for (int t = 0; t < trials; ++t) {
    const RealVector a = RandomVector(fn.dimension(), scale, rng);
    const RealVector b = RandomVector(fn.dimension(), scale, rng);
    const double theta = rng.NextDouble();
    RealVector mid = a;
    mid *= theta;
    mid.Axpy(1.0 - theta, b);
    const double lhs = fn.Eval(mid);
    const double rhs = theta * fn.Eval(a) + (1.0 - theta) * fn.Eval(b);
    ASSERT_LE(lhs, rhs + 1e-7 * (1.0 + std::fabs(rhs)));
  }
}

void CheckLipschitz(const SafeFunction& fn, Xoshiro256ss& rng, double scale,
                    int trials = 200) {
  const double bound = fn.LipschitzBound();
  for (int t = 0; t < trials; ++t) {
    const RealVector a = RandomVector(fn.dimension(), scale, rng);
    const RealVector b = RandomVector(fn.dimension(), scale, rng);
    const double diff = std::fabs(fn.Eval(a) - fn.Eval(b));
    ASSERT_LE(diff, bound * Distance(a, b) + 1e-9);
  }
}

TEST(Ball, ValuesAndGeometry) {
  BallSafeFunction ball(RealVector{1.0, 2.0}, 5.0);
  EXPECT_DOUBLE_EQ(ball.AtZero(), std::sqrt(5.0) - 5.0);
  // Point on the sphere around -center.
  EXPECT_NEAR(ball.Eval(RealVector{4.0, -2.0}), 0.0, 1e-12);
  EXPECT_LT(ball.Eval(RealVector{-1.0, -2.0}), 0.0);
  EXPECT_GT(ball.Eval(RealVector{10.0, 0.0}), 0.0);
}

TEST(Ball, Properties) {
  Xoshiro256ss rng(1);
  BallSafeFunction ball(RandomVector(8, 1.0, rng), 6.0);
  CheckEvaluatorAgreesWithEval(ball, rng);
  CheckConvexityOnRandomSegments(ball, rng, 4.0);
  CheckLipschitz(ball, rng, 4.0);
}

TEST(Halfspace, ValuesAndGeometry) {
  HalfspaceSafeFunction hs(RealVector{3.0, 4.0}, -2.0);
  EXPECT_DOUBLE_EQ(hs.AtZero(), -2.0);
  // φ(x) = -2 - (3x0+4x1)/5.
  EXPECT_DOUBLE_EQ(hs.Eval(RealVector{5.0, 0.0}), -5.0);
  EXPECT_DOUBLE_EQ(hs.Eval(RealVector{-5.0, 0.0}), 1.0);
}

TEST(Halfspace, Properties) {
  Xoshiro256ss rng(2);
  HalfspaceSafeFunction hs(RandomVector(8, 1.0, rng), -1.5);
  CheckEvaluatorAgreesWithEval(hs, rng);
  CheckConvexityOnRandomSegments(hs, rng, 4.0);
  CheckLipschitz(hs, rng, 4.0);
}

TEST(LpNormThreshold, MatchesClosedForms) {
  LpNormThreshold l2(RealVector{3.0, 4.0}, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(l2.AtZero(), -5.0);
  EXPECT_NEAR(l2.Eval(RealVector{0.0, -4.0}), -7.0, 1e-12);

  LpNormThreshold l1(RealVector{1.0, -1.0}, 1.0, 4.0);
  EXPECT_DOUBLE_EQ(l1.AtZero(), -2.0);
  EXPECT_DOUBLE_EQ(l1.Eval(RealVector{1.0, 1.0}), -2.0);
}

TEST(LpNormThreshold, PropertiesAcrossP) {
  Xoshiro256ss rng(3);
  for (const double p : {1.0, 1.5, 2.0, 3.0}) {
    LpNormThreshold fn(RandomVector(6, 0.5, rng), p, 8.0);
    CheckEvaluatorAgreesWithEval(fn, rng);
    CheckConvexityOnRandomSegments(fn, rng, 3.0, 100);
    CheckLipschitz(fn, rng, 3.0, 100);
  }
}

TEST(LpNormThreshold, LipschitzBoundTightensForLargeP) {
  LpNormThreshold l1(RealVector(16), 1.0, 1.0);
  LpNormThreshold l2(RealVector(16), 2.0, 1.0);
  LpNormThreshold l3(RealVector(16), 3.0, 1.0);
  EXPECT_NEAR(l1.LipschitzBound(), 4.0, 1e-12);  // D^{1/2}
  EXPECT_DOUBLE_EQ(l2.LipschitzBound(), 1.0);
  EXPECT_DOUBLE_EQ(l3.LipschitzBound(), 1.0);
}

TEST(CheapBound, DominatesTheFunctionItWasBuiltFor) {
  Xoshiro256ss rng(4);
  BallSafeFunction ball(RandomVector(8, 1.0, rng), 7.0);
  const CheapBoundFunction cheap = CheapBoundFunction::For(ball);
  EXPECT_DOUBLE_EQ(cheap.AtZero(), ball.AtZero());
  for (int t = 0; t < 300; ++t) {
    const RealVector x = RandomVector(8, 5.0, rng);
    ASSERT_GE(cheap.Eval(x) + 1e-9, ball.Eval(x));
  }
}

TEST(CheapBound, Properties) {
  Xoshiro256ss rng(5);
  CheapBoundFunction cheap(8, -3.0);
  CheckEvaluatorAgreesWithEval(cheap, rng);
  CheckConvexityOnRandomSegments(cheap, rng, 4.0);
  CheckLipschitz(cheap, rng, 4.0);
  EXPECT_EQ(CheapBoundFunction::kShippingWords, 3);
}

TEST(MaxComposition, IsPointwiseMax) {
  Xoshiro256ss rng(6);
  auto make = [&]() {
    std::vector<std::unique_ptr<SafeFunction>> children;
    children.push_back(
        std::make_unique<BallSafeFunction>(RealVector{1.0, 0.0}, 3.0));
    children.push_back(
        std::make_unique<HalfspaceSafeFunction>(RealVector{0.0, 1.0}, -1.0));
    return MaxComposition(std::move(children));
  };
  MaxComposition fn = make();
  for (int t = 0; t < 100; ++t) {
    const RealVector x = RandomVector(2, 3.0, rng);
    const double expected =
        std::max(BallSafeFunction(RealVector{1.0, 0.0}, 3.0).Eval(x),
                 HalfspaceSafeFunction(RealVector{0.0, 1.0}, -1.0).Eval(x));
    ASSERT_DOUBLE_EQ(fn.Eval(x), expected);
  }
  CheckEvaluatorAgreesWithEval(fn, rng);
  CheckConvexityOnRandomSegments(fn, rng, 3.0, 100);
  CheckLipschitz(fn, rng, 3.0, 100);
}

TEST(SumComposition, IsPointwiseSumAndSafeForUnions) {
  Xoshiro256ss rng(7);
  std::vector<std::unique_ptr<SafeFunction>> children;
  children.push_back(
      std::make_unique<BallSafeFunction>(RealVector{0.5, 0.0}, 2.0));
  children.push_back(
      std::make_unique<BallSafeFunction>(RealVector{-0.5, 0.0}, 2.0));
  SumComposition fn(std::move(children));
  EXPECT_LT(fn.AtZero(), 0.0);
  CheckEvaluatorAgreesWithEval(fn, rng);
  CheckConvexityOnRandomSegments(fn, rng, 2.0, 100);
}

TEST(F2TwoSided, EncodesTheAdmissibleRegion) {
  // §3.0.3: φ(x) = max{-ε‖E‖ - x·E/‖E‖, ‖x+E‖ - (1+ε)‖E‖}; its 0-sublevel
  // must sit inside {(1-ε)‖E‖ ≤ ‖x+E‖ ≤ (1+ε)‖E‖}.
  Xoshiro256ss rng(8);
  const RealVector e = RandomVector(6, 2.0, rng);
  const double eps = 0.15;
  auto fn = MakeF2TwoSided(e, eps);
  EXPECT_LT(fn->AtZero(), 0.0);
  int inside = 0;
  for (int t = 0; t < 2000; ++t) {
    const RealVector x = RandomVector(6, 1.0, rng);
    if (fn->Eval(x) <= 0.0) {
      ++inside;
      RealVector s = x;
      s += e;
      ASSERT_GE(s.Norm(), (1.0 - eps) * e.Norm() - 1e-9);
      ASSERT_LE(s.Norm(), (1.0 + eps) * e.Norm() + 1e-9);
    }
  }
  EXPECT_GT(inside, 0);  // the test actually exercised the sublevel
}

TEST(F2TwoSided, Def21SafetyForManySites) {
  // Definition 2.1 with k sites: Σφ(X_i) ≤ 0 ⇒ E + avg(X_i) ∈ A.
  Xoshiro256ss rng(9);
  const RealVector e = RandomVector(5, 3.0, rng);
  const double eps = 0.2;
  auto fn = MakeF2TwoSided(e, eps);
  for (int k : {1, 2, 5}) {
    int triggered = 0;
    for (int t = 0; t < 3000; ++t) {
      std::vector<RealVector> drifts;
      double psi = 0.0;
      for (int i = 0; i < k; ++i) {
        drifts.push_back(RandomVector(5, 0.4, rng));
        psi += fn->Eval(drifts.back());
      }
      if (psi > 0.0) continue;
      ++triggered;
      RealVector avg(5);
      for (const auto& x : drifts) avg += x;
      avg *= 1.0 / k;
      avg += e;
      ASSERT_GE(avg.Norm(), (1.0 - eps) * e.Norm() - 1e-9);
      ASSERT_LE(avg.Norm(), (1.0 + eps) * e.Norm() + 1e-9);
    }
    EXPECT_GT(triggered, 0) << "k=" << k;
  }
}

TEST(NaiveDriftEvaluator, MatchesReference) {
  Xoshiro256ss rng(10);
  BallSafeFunction ball(RandomVector(4, 1.0, rng), 4.0);
  NaiveDriftEvaluator eval(&ball);
  RealVector x(4);
  for (int t = 0; t < 30; ++t) {
    const size_t idx = rng.NextBounded(4);
    const double delta = rng.NextGaussian();
    eval.ApplyDelta(idx, delta);
    x[idx] += delta;
    ASSERT_DOUBLE_EQ(eval.Value(), ball.Eval(x));
  }
}

}  // namespace
}  // namespace fgm
