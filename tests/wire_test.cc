// Wire-format tests: round trips, and — crucially — that the encoded
// sizes equal the analytic word counts the protocols charge.

#include <gtest/gtest.h>

#include "net/wire.h"
#include "safezone/cheap_bound.h"
#include "util/rng.h"

namespace fgm {
namespace {

TEST(WordBuffer, PutGetRoundTrip) {
  WordBuffer buf;
  buf.PutReal(3.25);
  buf.PutCount(-42);
  buf.PutVector(RealVector{1.0, 2.0});
  EXPECT_EQ(buf.size_words(), 4u);
  EXPECT_DOUBLE_EQ(buf.GetReal(0), 3.25);
  EXPECT_EQ(buf.GetCount(1), -42);
  const RealVector v = buf.GetVector(2, 2);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(ScalarMessages, OneWordEach) {
  WordBuffer buf;
  QuantumMsg{0.5}.Encode(&buf);
  EXPECT_EQ(buf.size_words(), static_cast<size_t>(QuantumMsg::kWords));
  EXPECT_DOUBLE_EQ(QuantumMsg::Decode(buf).theta, 0.5);

  WordBuffer buf2;
  LambdaMsg{0.75}.Encode(&buf2);
  EXPECT_EQ(buf2.size_words(), static_cast<size_t>(LambdaMsg::kWords));
  EXPECT_DOUBLE_EQ(LambdaMsg::Decode(buf2).lambda, 0.75);

  WordBuffer buf3;
  CounterMsg{7}.Encode(&buf3);
  EXPECT_EQ(buf3.size_words(), static_cast<size_t>(CounterMsg::kWords));
  EXPECT_EQ(CounterMsg::Decode(buf3).increment, 7);

  WordBuffer buf4;
  PhiValueMsg{-1.5}.Encode(&buf4);
  EXPECT_EQ(buf4.size_words(), static_cast<size_t>(PhiValueMsg::kWords));
  EXPECT_DOUBLE_EQ(PhiValueMsg::Decode(buf4).value, -1.5);
}

TEST(SafeZoneMsg, CostsExactlyD) {
  // The protocols charge D words per full safe-zone shipment.
  Xoshiro256ss rng(1);
  RealVector e(100);
  for (size_t i = 0; i < e.dim(); ++i) e[i] = rng.NextGaussian();
  SafeZoneMsg msg{e};
  WordBuffer buf;
  msg.Encode(&buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size_words()), msg.Words());
  EXPECT_EQ(msg.Words(), 100);
  const SafeZoneMsg decoded = SafeZoneMsg::Decode(buf, 100);
  EXPECT_DOUBLE_EQ(Distance(decoded.reference, e), 0.0);
}

TEST(CheapZoneMsg, CostsExactlyTheCheapShippingWords) {
  CheapZoneMsg msg{1.0, 1.0, -3.5};
  WordBuffer buf;
  msg.Encode(&buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size_words()), CheapZoneMsg::kWords);
  // ... which is what CheapBoundFunction advertises.
  EXPECT_EQ(CheapZoneMsg::kWords, CheapBoundFunction::kShippingWords);
  const CheapZoneMsg decoded = CheapZoneMsg::Decode(buf);
  EXPECT_DOUBLE_EQ(decoded.offset, -3.5);
}

TEST(RawUpdateMsg, PacksKeyAndSignIntoOneWord) {
  WordBuffer buf;
  RawUpdateMsg insert;
  insert.key = 0x0123456789ABCDEull;
  insert.is_delete = 0;
  insert.Encode(&buf);
  RawUpdateMsg del;
  del.key = 42;
  del.is_delete = 1;
  del.Encode(&buf);
  EXPECT_EQ(buf.size_words(), 2u);
  const RawUpdateMsg a = RawUpdateMsg::Decode(buf, 0);
  const RawUpdateMsg b = RawUpdateMsg::Decode(buf, 1);
  EXPECT_EQ(a.key, 0x0123456789ABCDEull);
  EXPECT_EQ(a.is_delete, 0u);
  EXPECT_EQ(b.key, 42u);
  EXPECT_EQ(b.is_delete, 1u);
}

TEST(DriftFlushMsg, DenseRoundTripAndSize) {
  DriftFlushMsg msg;
  msg.update_count = 500;
  msg.dense = true;
  msg.drift = RealVector{1.0, -2.0, 3.0};
  WordBuffer buf;
  msg.Encode(&buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size_words()), msg.Words());
  EXPECT_EQ(msg.Words(), 4);  // 1 + D
  const DriftFlushMsg decoded = DriftFlushMsg::Decode(buf, 3);
  EXPECT_TRUE(decoded.dense);
  EXPECT_EQ(decoded.update_count, 500);
  EXPECT_DOUBLE_EQ(decoded.drift[2], 3.0);
}

TEST(DriftFlushMsg, VerbatimRoundTripAndSize) {
  DriftFlushMsg msg;
  msg.update_count = 2;
  msg.dense = false;
  RawUpdateMsg u1;
  u1.key = 7;
  u1.is_delete = 0;
  RawUpdateMsg u2;
  u2.key = 9;
  u2.is_delete = 1;
  msg.raw = {u1, u2};
  WordBuffer buf;
  msg.Encode(&buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size_words()), msg.Words());
  EXPECT_EQ(msg.Words(), 3);  // 1 + n
  const DriftFlushMsg decoded = DriftFlushMsg::Decode(buf, 1000);
  EXPECT_FALSE(decoded.dense);
  ASSERT_EQ(decoded.raw.size(), 2u);
  EXPECT_EQ(decoded.raw[1].key, 9u);
  EXPECT_EQ(decoded.raw[1].is_delete, 1u);
}

TEST(DriftFlushMsg, ChargedWordsMatchesTheSmallerEncoding) {
  // The protocols charge min(D, n) + 1 — exactly the smaller of the two
  // encodings.
  for (const auto& [dim, n] : std::vector<std::pair<size_t, int64_t>>{
           {100, 5}, {100, 100}, {100, 5000}, {3, 1}}) {
    DriftFlushMsg dense_msg;
    dense_msg.update_count = n;
    dense_msg.dense = true;
    dense_msg.drift = RealVector(dim);
    DriftFlushMsg raw_msg;
    raw_msg.update_count = n;
    raw_msg.dense = false;
    raw_msg.raw.resize(static_cast<size_t>(n));
    const int64_t smaller = std::min(dense_msg.Words(), raw_msg.Words());
    EXPECT_EQ(DriftFlushMsg::ChargedWords(dim, n), smaller)
        << "dim=" << dim << " n=" << n;
  }
}

}  // namespace
}  // namespace fgm
