// Wire-format tests: round trips, and — crucially — that the encoded
// sizes equal the analytic word counts the protocols charge.

#include <gtest/gtest.h>

#include "net/wire.h"
#include "safezone/cheap_bound.h"
#include "util/rng.h"

namespace fgm {
namespace {

TEST(WordBuffer, PutGetRoundTrip) {
  WordBuffer buf;
  buf.PutReal(3.25);
  buf.PutCount(-42);
  buf.PutVector(RealVector{1.0, 2.0});
  EXPECT_EQ(buf.size_words(), 4u);
  EXPECT_DOUBLE_EQ(buf.GetReal(0), 3.25);
  EXPECT_EQ(buf.GetCount(1), -42);
  const RealVector v = buf.GetVector(2, 2);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(ScalarMessages, OneWordEach) {
  WordBuffer buf;
  QuantumMsg{0.5}.Encode(&buf);
  EXPECT_EQ(buf.size_words(), static_cast<size_t>(QuantumMsg::kWords));
  EXPECT_DOUBLE_EQ(QuantumMsg::Decode(buf).theta, 0.5);

  WordBuffer buf2;
  LambdaMsg{0.75}.Encode(&buf2);
  EXPECT_EQ(buf2.size_words(), static_cast<size_t>(LambdaMsg::kWords));
  EXPECT_DOUBLE_EQ(LambdaMsg::Decode(buf2).lambda, 0.75);

  WordBuffer buf3;
  CounterMsg{7}.Encode(&buf3);
  EXPECT_EQ(buf3.size_words(), static_cast<size_t>(CounterMsg::kWords));
  EXPECT_EQ(CounterMsg::Decode(buf3).increment, 7);

  WordBuffer buf4;
  PhiValueMsg{-1.5}.Encode(&buf4);
  EXPECT_EQ(buf4.size_words(), static_cast<size_t>(PhiValueMsg::kWords));
  EXPECT_DOUBLE_EQ(PhiValueMsg::Decode(buf4).value, -1.5);
}

TEST(SafeZoneMsg, CostsExactlyD) {
  // The protocols charge D words per full safe-zone shipment.
  Xoshiro256ss rng(1);
  RealVector e(100);
  for (size_t i = 0; i < e.dim(); ++i) e[i] = rng.NextGaussian();
  SafeZoneMsg msg{e};
  WordBuffer buf;
  msg.Encode(&buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size_words()), msg.Words());
  EXPECT_EQ(msg.Words(), 100);
  const SafeZoneMsg decoded = SafeZoneMsg::Decode(buf, 100);
  EXPECT_DOUBLE_EQ(Distance(decoded.reference, e), 0.0);
}

TEST(CheapZoneMsg, CostsExactlyTheCheapShippingWords) {
  CheapZoneMsg msg{1.0, 1.0, -3.5};
  WordBuffer buf;
  msg.Encode(&buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size_words()), CheapZoneMsg::kWords);
  // ... which is what CheapBoundFunction advertises.
  EXPECT_EQ(CheapZoneMsg::kWords, CheapBoundFunction::kShippingWords);
  const CheapZoneMsg decoded = CheapZoneMsg::Decode(buf);
  EXPECT_DOUBLE_EQ(decoded.offset, -3.5);
}

TEST(RawUpdateMsg, PacksKeyAndSignIntoOneWord) {
  WordBuffer buf;
  RawUpdateMsg insert;
  insert.key = 0x0123456789ABCDEull;
  insert.is_delete = 0;
  insert.Encode(&buf);
  RawUpdateMsg del;
  del.key = 42;
  del.is_delete = 1;
  del.Encode(&buf);
  EXPECT_EQ(buf.size_words(), 2u);
  const RawUpdateMsg a = RawUpdateMsg::Decode(buf, 0);
  const RawUpdateMsg b = RawUpdateMsg::Decode(buf, 1);
  EXPECT_EQ(a.key, 0x0123456789ABCDEull);
  EXPECT_EQ(a.is_delete, 0u);
  EXPECT_EQ(b.key, 42u);
  EXPECT_EQ(b.is_delete, 1u);
}

TEST(DriftFlushMsg, DenseRoundTripAndSize) {
  DriftFlushMsg msg;
  msg.update_count = 500;
  msg.dense = true;
  msg.drift = RealVector{1.0, -2.0, 3.0};
  WordBuffer buf;
  msg.Encode(&buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size_words()), msg.Words());
  EXPECT_EQ(msg.Words(), 4);  // 1 + D
  const DriftFlushMsg decoded = DriftFlushMsg::Decode(buf);
  EXPECT_TRUE(decoded.dense);
  EXPECT_EQ(decoded.update_count, 500);
  EXPECT_DOUBLE_EQ(decoded.drift[2], 3.0);
}

TEST(DriftFlushMsg, VerbatimRoundTripAndSize) {
  DriftFlushMsg msg;
  msg.update_count = 2;
  msg.dense = false;
  RawUpdateMsg u1;
  u1.key = 7;
  u1.is_delete = 0;
  RawUpdateMsg u2;
  u2.key = 9;
  u2.is_delete = 1;
  msg.raw = {u1, u2};
  WordBuffer buf;
  msg.Encode(&buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size_words()), msg.Words());
  EXPECT_EQ(msg.Words(), 3);  // 1 + n
  const DriftFlushMsg decoded = DriftFlushMsg::Decode(buf);
  EXPECT_FALSE(decoded.dense);
  ASSERT_EQ(decoded.raw.size(), 2u);
  EXPECT_EQ(decoded.raw[1].key, 9u);
  EXPECT_EQ(decoded.raw[1].is_delete, 1u);
}

TEST(WordBuffer, CountsAbove2To53SurviveTheWire) {
  // Regression: counts used to be value-cast through the double word,
  // which silently rounds integers above 2^53.
  const int64_t counts[] = {(int64_t{1} << 53) + 1,
                            (int64_t{1} << 62) + 12345,
                            -((int64_t{1} << 53) + 1),
                            INT64_MAX,
                            INT64_MIN};
  WordBuffer buf;
  for (const int64_t c : counts) buf.PutCount(c);
  for (size_t i = 0; i < std::size(counts); ++i) {
    EXPECT_EQ(buf.GetCount(i), counts[i]) << "i=" << i;
  }
}

TEST(ControlMsg, RoundTripsEveryOpcode) {
  for (const ControlOp op : {ControlOp::kPollPhi, ControlOp::kFlushRequest,
                             ControlOp::kDriftRequest,
                             ControlOp::kViolation}) {
    WordBuffer buf;
    ControlMsg{op}.Encode(&buf);
    EXPECT_EQ(buf.size_words(), static_cast<size_t>(ControlMsg::kWords));
    EXPECT_EQ(ControlMsg::Decode(buf).op, op);
  }
}

TEST(RawUpdateMsg, TopKeyBitSurvivesTheWire) {
  // Regression: the old single-word packing (key << 1) dropped the MSB of
  // 64-bit keys. Boundary keys now spill into an extension word.
  const uint64_t keys[] = {0,
                           1,
                           (uint64_t{1} << 62) - 1,  // last 1-word key
                           uint64_t{1} << 62,        // first 2-word key
                           uint64_t{1} << 63,
                           UINT64_MAX};
  for (const uint64_t key : keys) {
    for (const bool is_delete : {false, true}) {
      RawUpdateMsg msg;
      msg.key = key;
      msg.is_delete = is_delete;
      WordBuffer buf;
      msg.Encode(&buf);
      EXPECT_EQ(static_cast<int64_t>(buf.size_words()), msg.Words());
      EXPECT_EQ(msg.Words(), (key >> 62) != 0 ? 2 : 1) << "key=" << key;
      const RawUpdateMsg decoded = RawUpdateMsg::Decode(buf, 0);
      EXPECT_EQ(decoded.key, key);
      EXPECT_EQ(decoded.is_delete, is_delete);
    }
  }
}

TEST(RawUpdateMsg, RecordRoundTrip) {
  StreamRecord record;
  record.site = 5;
  record.cid = 123456789;
  record.type = static_cast<FileType>(3);
  record.weight = -1.0;
  const RawUpdateMsg msg = RawUpdateMsg::FromRecord(record);
  WordBuffer buf;
  msg.Encode(&buf);
  const StreamRecord back = RawUpdateMsg::Decode(buf, 0).ToRecord(5);
  EXPECT_EQ(back.site, record.site);
  EXPECT_EQ(back.cid, record.cid);
  EXPECT_EQ(back.type, record.type);
  EXPECT_DOUBLE_EQ(back.weight, record.weight);
}

TEST(RawUpdateLog, BacksVerbatimFlushesUntilDenseWins) {
  RawUpdateLog log;
  StreamRecord record;
  record.site = 0;
  record.type = static_cast<FileType>(0);
  record.weight = 1.0;
  // Dense cost is 3 words: the log stays valid for up to 3 raw words.
  for (uint64_t cid = 0; cid < 3; ++cid) {
    record.cid = cid;
    log.Record(record, /*dense_words=*/3);
  }
  EXPECT_TRUE(log.valid());
  EXPECT_EQ(log.words(), 3);
  EXPECT_EQ(log.updates().size(), 3u);
  record.cid = 3;
  log.Record(record, 3);  // 4th word: verbatim can no longer win
  EXPECT_FALSE(log.valid());
  // The logged prefix is retained (ignored until Reset) so a speculative
  // Rewind across the invalidation can restore it.
  EXPECT_EQ(log.updates().size(), 3u);
  log.Reset();
  EXPECT_TRUE(log.valid());
  // Unpackable records (non-unit weight) invalidate the log.
  record.weight = 2.0;
  log.Record(record, 3);
  EXPECT_FALSE(log.valid());
}

TEST(RawUpdateLog, MarkAndRewindRestoreTheExactState) {
  RawUpdateLog log;
  StreamRecord record;
  record.site = 0;
  record.type = static_cast<FileType>(0);
  record.weight = 1.0;
  record.cid = 1;
  log.Record(record, /*dense_words=*/2);
  const uint64_t first_key = log.updates()[0].key;
  const RawUpdateLog::Mark mark = log.MarkPosition();
  EXPECT_EQ(mark.size, 1u);
  EXPECT_EQ(mark.words, 1);
  EXPECT_TRUE(mark.valid);

  // Run past the dense threshold so the log invalidates, then rewind.
  record.cid = 2;
  log.Record(record, 2);
  record.cid = 3;
  log.Record(record, 2);
  EXPECT_FALSE(log.valid());
  log.Rewind(mark);
  EXPECT_TRUE(log.valid());
  EXPECT_EQ(log.words(), 1);
  ASSERT_EQ(log.updates().size(), 1u);
  EXPECT_EQ(log.updates()[0].key, first_key);

  // The rewound log continues recording as if the rolled-back records
  // never happened.
  record.cid = 4;
  log.Record(record, 2);
  EXPECT_TRUE(log.valid());
  EXPECT_EQ(log.updates().size(), 2u);
}

TEST(DriftFlushMsg, ForFlushPicksTheCheaperRepresentation) {
  RealVector drift{1.0, -1.0, 0.0};
  StreamRecord record;
  record.site = 0;
  record.type = static_cast<FileType>(0);
  record.weight = 1.0;

  RawUpdateLog log;
  record.cid = 7;
  log.Record(record, drift.dim());
  const DriftFlushMsg verbatim = DriftFlushMsg::ForFlush(drift, 1, log);
  EXPECT_FALSE(verbatim.dense);
  EXPECT_EQ(verbatim.Words(), 2);  // 1 + 1 raw word < 1 + D
  // The sender-local drift is populated either way.
  EXPECT_DOUBLE_EQ(verbatim.drift[0], 1.0);

  // An incomplete log (an update bypassed it) forces the dense form.
  const DriftFlushMsg dense = DriftFlushMsg::ForFlush(drift, 2, log);
  EXPECT_TRUE(dense.dense);
  EXPECT_EQ(dense.Words(), 4);  // 1 + D

  // Strict-mode wire: verbatim decodes to raw updates + empty drift.
  WordBuffer buf;
  verbatim.Encode(&buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size_words()), verbatim.Words());
  const DriftFlushMsg decoded = DriftFlushMsg::Decode(buf);
  EXPECT_FALSE(decoded.dense);
  EXPECT_EQ(decoded.update_count, 1);
  ASSERT_EQ(decoded.raw.size(), 1u);
  EXPECT_EQ(decoded.raw[0].key >> 3, 7u);
  EXPECT_EQ(decoded.drift.dim(), 0u);
}

TEST(DriftFlushMsg, VerbatimWithBoundaryKeysReencodesIdentically) {
  // Property-style check over the strict-mode invariant: decode(encode(m))
  // re-encodes to the identical bits, including multi-word raw updates
  // and huge counts.
  DriftFlushMsg msg;
  msg.update_count = 3;
  msg.dense = false;
  RawUpdateMsg u1;
  u1.key = (uint64_t{1} << 62) - 1;
  RawUpdateMsg u2;
  u2.key = uint64_t{1} << 63;
  u2.is_delete = true;
  RawUpdateMsg u3;
  u3.key = UINT64_MAX;
  msg.raw = {u1, u2, u3};
  WordBuffer wire;
  msg.Encode(&wire);
  EXPECT_EQ(static_cast<int64_t>(wire.size_words()), msg.Words());
  EXPECT_EQ(msg.Words(), 1 + 1 + 2 + 2);
  const DriftFlushMsg decoded = DriftFlushMsg::Decode(wire);
  WordBuffer reencoded;
  decoded.Encode(&reencoded);
  EXPECT_TRUE(wire.SameBits(reencoded));
  EXPECT_EQ(decoded.raw[1].key, uint64_t{1} << 63);
  EXPECT_TRUE(decoded.raw[1].is_delete);

  DriftFlushMsg dense_msg;
  dense_msg.update_count = (int64_t{1} << 53) + 99;
  dense_msg.dense = true;
  dense_msg.drift = RealVector{0.5, -0.0, 3e300};
  WordBuffer dense_wire;
  dense_msg.Encode(&dense_wire);
  const DriftFlushMsg dense_decoded = DriftFlushMsg::Decode(dense_wire);
  EXPECT_EQ(dense_decoded.update_count, (int64_t{1} << 53) + 99);
  WordBuffer dense_reencoded;
  dense_decoded.Encode(&dense_reencoded);
  EXPECT_TRUE(dense_wire.SameBits(dense_reencoded));
}

TEST(DriftFlushMsg, ChargedWordsMatchesTheSmallerEncoding) {
  // The protocols charge min(D, n) + 1 — exactly the smaller of the two
  // encodings.
  for (const auto& [dim, n] : std::vector<std::pair<size_t, int64_t>>{
           {100, 5}, {100, 100}, {100, 5000}, {3, 1}}) {
    DriftFlushMsg dense_msg;
    dense_msg.update_count = n;
    dense_msg.dense = true;
    dense_msg.drift = RealVector(dim);
    DriftFlushMsg raw_msg;
    raw_msg.update_count = n;
    raw_msg.dense = false;
    raw_msg.raw.resize(static_cast<size_t>(n));
    const int64_t smaller = std::min(dense_msg.Words(), raw_msg.Words());
    EXPECT_EQ(DriftFlushMsg::ChargedWords(dim, n), smaller)
        << "dim=" << dim << " n=" << n;
  }
}

}  // namespace
}  // namespace fgm
