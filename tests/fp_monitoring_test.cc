// Tests for F_p-moment monitoring (paper §3): one-shot queries, the
// per-round progress of Lemma 3.1, and count-window driving.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/fgm_protocol.h"
#include "driver/runner.h"
#include "query/oneshot.h"
#include "stream/worldcup.h"
#include "util/rng.h"

namespace fgm {
namespace {

StreamRecord UniformRecord(int k, uint64_t key_space, Xoshiro256ss& rng) {
  StreamRecord rec;
  rec.site = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(k)));
  rec.cid = rng.NextBounded(key_space);
  rec.weight = 1.0;
  return rec;
}

TEST(OneShotFpQuery, AlarmLatchesAtOneMinusEps) {
  OneShotFpQuery query(32, 2.0, 100.0, 0.1);
  EXPECT_FALSE(query.AlarmRaised(89.0));
  EXPECT_TRUE(query.AlarmRaised(90.0));
  EXPECT_TRUE(query.AlarmRaised(150.0));
}

TEST(OneShotFpQuery, SafeFunctionUsesTheFixedThreshold) {
  OneShotFpQuery query(8, 2.0, 50.0, 0.05);
  RealVector e(8);
  e[0] = 30.0;
  auto fn = query.MakeSafeFunction(e);
  EXPECT_DOUBLE_EQ(fn->AtZero(), 30.0 - 50.0);
  const ThresholdPair t = query.Thresholds(e);
  EXPECT_DOUBLE_EQ(t.hi, 50.0);
}

TEST(OneShotFp, FgmRaisesTheAlarmAndNeverOvershoots) {
  // While the FGM protocol is quiescent, ‖S‖_2 must stay below T; the
  // alarm fires once the estimate reaches (1-ε)T.
  const int k = 4;
  const double threshold = 400.0;
  const double eps = 0.05;
  OneShotFpQuery query(64, 2.0, threshold, eps);
  FgmConfig config;
  config.rebalance = false;
  FgmProtocol protocol(&query, k, config);
  Xoshiro256ss rng(17);
  RealVector truth(64);
  int64_t updates = 0;
  while (!query.AlarmRaised(protocol.Estimate())) {
    ASSERT_LT(updates, 10000000);
    const StreamRecord rec = UniformRecord(k, 64, rng);
    protocol.ProcessRecord(rec);
    truth[rec.cid % 64] += 1.0 / k;
    ++updates;
    if (protocol.BoundsCertified()) {
      ASSERT_LE(truth.Norm(), threshold * (1.0 + 1e-9));
    }
  }
  EXPECT_GT(protocol.rounds(), 1);
  EXPECT_GE(protocol.Estimate(), (1.0 - eps) * threshold);
}

TEST(Lemma31, OneRoundForF1ReachesTheThreshold) {
  // For p = 1 (and nonnegative drifts) Lemma 3.1 gives, after a single
  // round, ‖S‖_1 ≥ T̃ = T(1-ε_ψ) + ε_ψ‖E‖_1: one round suffices for the
  // L1 counter regardless of k.
  const int k = 8;
  const double threshold = 5000.0;
  OneShotFpQuery query(64, 1.0, threshold, 0.05);
  FgmConfig config;
  config.rebalance = false;
  FgmProtocol protocol(&query, k, config);
  Xoshiro256ss rng(23);
  // Feed until the first round completes (rounds() starts at 1).
  int64_t updates = 0;
  while (protocol.rounds() < 2 && updates < 10000000) {
    protocol.ProcessRecord(UniformRecord(k, 64, rng));
    ++updates;
  }
  ASSERT_EQ(protocol.rounds(), 2);
  // ‖E‖_1 after the first round ≥ T(1 - ε_ψ) up to the subround slack.
  EXPECT_GE(protocol.Estimate(), threshold * (1.0 - 3 * config.eps_psi));
}

TEST(Lemma31, F2RoundMakesTheGuaranteedProgress) {
  // p = 2: after one round from E = 0, ‖S‖² ≥ T̃²/k (Lemma 3.1 with
  // ‖E‖ = 0). Use orthogonal site streams — the worst case — and check
  // the guaranteed progress is still achieved.
  const int k = 4;
  const double threshold = 500.0;
  OneShotFpQuery query(64, 2.0, threshold, 0.05);
  FgmConfig config;
  config.rebalance = false;
  FgmProtocol protocol(&query, k, config);
  Xoshiro256ss rng(29);
  int64_t updates = 0;
  while (protocol.rounds() < 2 && updates < 10000000) {
    StreamRecord rec;
    rec.site = static_cast<int32_t>(rng.NextBounded(k));
    rec.cid = static_cast<uint64_t>(rec.site) * 16 + rng.NextBounded(16);
    rec.weight = 1.0;
    protocol.ProcessRecord(rec);
    ++updates;
  }
  ASSERT_EQ(protocol.rounds(), 2);
  const double t_tilde = threshold * (1.0 - config.eps_psi);
  EXPECT_GE(protocol.Estimate() * protocol.Estimate(),
            t_tilde * t_tilde / k * (1.0 - 0.05));
}

TEST(CountWindow, DriverRunsAndPreservesGuarantee) {
  WorldCupConfig wc;
  wc.sites = 4;
  wc.total_updates = 20000;
  wc.duration = 5000.0;
  const auto trace = GenerateWorldCupTrace(wc);
  RunConfig config;
  config.protocol = ProtocolKind::kFgm;
  config.query = QueryKind::kSelfJoin;
  config.sites = 4;
  config.depth = 5;
  config.width = 32;
  config.epsilon = 0.15;
  config.count_window = 4000;
  config.check_every = 1;
  const RunResult result = ::fgm::Run(config, trace);
  EXPECT_LE(result.max_violation, 1e-6);
  // Every insert beyond the first `count_window` evicts one record.
  EXPECT_EQ(result.events, 2 * 20000 - 4000);
}

}  // namespace
}  // namespace fgm
