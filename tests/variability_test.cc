// Theorem 2.7: the communication cost of all subrounds is O(kV) words,
// where V is the ψ-variability of §2.5.1 — concretely at most (9k+3)·V.
// These tests measure both sides on live runs.

#include <gtest/gtest.h>

#include "core/fgm_protocol.h"
#include "driver/runner.h"
#include "stream/window.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

struct VariabilityRun {
  double variability;
  int64_t subround_words;
  int64_t subrounds;
};

VariabilityRun RunOnce(QueryKind query_kind, double window, double epsilon,
                       bool rebalance) {
  const int sites = 6;
  WorldCupConfig wc;
  wc.sites = sites;
  wc.total_updates = 40000;
  wc.duration = 10000.0;
  const auto trace = GenerateWorldCupTrace(wc);

  RunConfig rc;
  rc.query = query_kind;
  rc.sites = sites;
  rc.depth = 5;
  rc.width = 32;
  rc.epsilon = epsilon;
  auto query = MakeQuery(rc);

  FgmConfig config;
  config.rebalance = rebalance;
  FgmProtocol protocol(query.get(), sites, config);
  SlidingWindowStream events(&trace, window);
  while (const StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
  }
  return VariabilityRun{protocol.psi_variability(), protocol.SubroundWords(),
                        protocol.subrounds()};
}

class Theorem27Sweep
    : public ::testing::TestWithParam<std::tuple<QueryKind, double, bool>> {};

TEST_P(Theorem27Sweep, SubroundCostBoundedByVariability) {
  const auto [query, window, rebalance] = GetParam();
  const int k = 6;
  const VariabilityRun run = RunOnce(query, window, 0.15, rebalance);
  ASSERT_GT(run.subrounds, 0);
  ASSERT_GT(run.variability, 0.0);
  // Theorem 2.7: subround words ≤ (9k+3)·V.
  EXPECT_LE(static_cast<double>(run.subround_words),
            (9.0 * k + 3.0) * run.variability);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, Theorem27Sweep,
    ::testing::Combine(::testing::Values(QueryKind::kSelfJoin,
                                         QueryKind::kJoin),
                       ::testing::Values(0.0, 1500.0),
                       ::testing::Values(false, true)));

TEST(Theorem27, TighterAccuracyRaisesVariabilityAndCostTogether) {
  const VariabilityRun loose = RunOnce(QueryKind::kSelfJoin, 1500.0, 0.2,
                                       /*rebalance=*/true);
  const VariabilityRun tight = RunOnce(QueryKind::kSelfJoin, 1500.0, 0.05,
                                       /*rebalance=*/true);
  EXPECT_GT(tight.variability, loose.variability);
  EXPECT_GT(tight.subround_words, loose.subround_words);
}

TEST(Variability, EachSubroundContributesAtLeastAThird) {
  // The proof of Thm 2.7 shows every completed subround increases V by at
  // least 1/3 (Δψ_n ≥ |ψ_{n-1}|/2 and |ψ_n| ≤ |ψ_{n-1}| + Δψ_n... the
  // net effect: V ≥ subrounds/3). Check the aggregate form.
  const VariabilityRun run = RunOnce(QueryKind::kSelfJoin, 0.0, 0.15,
                                     /*rebalance=*/false);
  // The last subround of the run may still be in flight (uncounted).
  EXPECT_GE(run.variability, static_cast<double>(run.subrounds - 1) / 3.0);
}

}  // namespace
}  // namespace fgm
