// Unit tests for the adaptive speculation-horizon controller
// (exec/horizon.h) and the speculation-efficiency invariants of the
// parallel runner: every speculated record is either committed or
// wasted, replay never exceeds commit, and fast_merge never rolls back.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "driver/runner.h"
#include "exec/horizon.h"
#include "obs/metrics.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

// ---------------------------------------------------------------------
// HorizonController

TEST(HorizonController, GrowsGeometricallyOnCleanWindows) {
  HorizonController ctrl(128, 65536);
  EXPECT_EQ(ctrl.horizon(), 128);
  int64_t expected = 128;
  for (int i = 0; i < 9; ++i) {
    ctrl.OnWindow(ctrl.horizon(), ctrl.horizon(), /*barrier=*/false);
    expected = std::min<int64_t>(expected * 2, 65536);
    EXPECT_EQ(ctrl.horizon(), expected) << "clean window " << i;
  }
  EXPECT_EQ(ctrl.horizon(), 65536);
  // Saturated: further clean windows stay at the maximum.
  ctrl.OnWindow(ctrl.horizon(), ctrl.horizon(), false);
  EXPECT_EQ(ctrl.horizon(), 65536);
}

TEST(HorizonController, PartiallyConsumedCleanWindowDoesNotGrow) {
  HorizonController ctrl(128, 65536);
  // consumed < window without a barrier (end of stream): no probe.
  ctrl.OnWindow(64, 128, /*barrier=*/false);
  EXPECT_EQ(ctrl.horizon(), 128);
}

TEST(HorizonController, ConvergesUpToSteadyBarrierGap) {
  HorizonController ctrl(16, 65536);
  for (int i = 0; i < 60; ++i) {
    ctrl.OnWindow(200, 1000, /*barrier=*/true);
  }
  EXPECT_NEAR(ctrl.gap_ewma(), 200.0, 1.0);
  EXPECT_EQ(ctrl.horizon(), static_cast<int64_t>(ctrl.gap_ewma()));
}

TEST(HorizonController, ShrinksBackFromMaxWhenBarriersAppear) {
  HorizonController ctrl(128, 65536);
  for (int i = 0; i < 12; ++i) {
    ctrl.OnWindow(ctrl.horizon(), ctrl.horizon(), false);
  }
  ASSERT_EQ(ctrl.horizon(), 65536);
  // A dense-barrier phase at gap 200 re-centers the horizon down; the
  // first barrier sees the whole clean stretch in since_barrier, then
  // the EWMA decays it away.
  for (int i = 0; i < 80; ++i) {
    ctrl.OnWindow(200, ctrl.horizon(), /*barrier=*/true);
  }
  EXPECT_NEAR(ctrl.gap_ewma(), 200.0, 5.0);
  EXPECT_LT(ctrl.horizon(), 256);
}

TEST(HorizonController, GapAccumulatesAcrossCleanWindows) {
  HorizonController ctrl(16, 65536);
  // 3 clean windows of 100 records then a barrier after 50 more: the
  // observed hard gap is 350, not 50.
  for (int i = 0; i < 3; ++i) ctrl.OnWindow(100, 100, false);
  ctrl.OnWindow(50, 100, true);
  // gap_ewma = 0.75 * 16 + 0.25 * 350 = 99.5
  EXPECT_NEAR(ctrl.gap_ewma(), 99.5, 1e-9);
}

TEST(HorizonController, SoftDensityRaisesFloorBeforeAnyBarrier) {
  HorizonController ctrl(128, 65536);
  // 1 soft crossing per 1000 records -> windows should span ~8000.
  ctrl.NoteSoftDensity(1, 1000);
  EXPECT_EQ(ctrl.soft_floor(), 8000);
  EXPECT_EQ(ctrl.horizon(), 8000);
  // The floor itself is EWMA-smoothed on the next observation.
  ctrl.NoteSoftDensity(1, 500);  // target 4000
  EXPECT_EQ(ctrl.soft_floor(), static_cast<int64_t>(0.75 * 8000 + 0.25 * 4000));
  // The horizon never shrinks from a floor update.
  EXPECT_EQ(ctrl.horizon(), 8000);
}

TEST(HorizonController, SoftFloorCappedByObservedHardGap) {
  HorizonController ctrl(16, 65536);
  for (int i = 0; i < 60; ++i) ctrl.OnWindow(200, 1000, true);
  const int64_t recentered = ctrl.horizon();
  ASSERT_NEAR(static_cast<double>(recentered), 200.0, 2.0);
  // Soft density alone would ask for 8× 200 = 1600, but speculating past
  // the next hard barrier is pure waste — the cap holds the horizon at
  // the hard gap.
  ctrl.NoteSoftDensity(1, 200);
  EXPECT_EQ(ctrl.soft_floor(), 1600);
  EXPECT_EQ(ctrl.horizon(), recentered);
}

TEST(HorizonController, IgnoresDegenerateDensityInputs) {
  HorizonController ctrl(128, 65536);
  ctrl.NoteSoftDensity(0, 1000);
  ctrl.NoteSoftDensity(5, 0);
  ctrl.NoteSoftDensity(-1, 100);
  EXPECT_EQ(ctrl.soft_floor(), 0);
  EXPECT_EQ(ctrl.horizon(), 128);
}

TEST(HorizonController, ClampsToConfiguredBounds) {
  HorizonController ctrl(256, 1024);
  // Tiny barrier gaps cannot push the horizon below the minimum...
  for (int i = 0; i < 40; ++i) ctrl.OnWindow(1, 8, true);
  EXPECT_EQ(ctrl.horizon(), 256);
  // ...and neither probing nor the soft floor exceeds the maximum.
  HorizonController wide(256, 1024);
  for (int i = 0; i < 10; ++i) wide.OnWindow(wide.horizon(), wide.horizon(), false);
  EXPECT_EQ(wide.horizon(), 1024);
  wide.NoteSoftDensity(1, 100000);
  EXPECT_LE(wide.horizon(), 1024);
}

TEST(HorizonController, DeterministicForIdenticalFeedback) {
  // The controller must be a pure function of its feedback sequence —
  // this is what keeps parallel runs bit-identical across machines.
  HorizonController a(128, 65536);
  HorizonController b(128, 65536);
  const int64_t consumed[] = {128, 256, 97, 512, 1024, 300, 2048, 11};
  for (int rep = 0; rep < 4; ++rep) {
    for (size_t i = 0; i < 8; ++i) {
      const bool barrier = (i % 3) == 2;
      a.OnWindow(consumed[i], a.horizon(), barrier);
      b.OnWindow(consumed[i], b.horizon(), barrier);
      if ((i % 2) == 0) {
        a.NoteSoftDensity(3, consumed[i]);
        b.NoteSoftDensity(3, consumed[i]);
      }
      ASSERT_EQ(a.horizon(), b.horizon()) << "rep " << rep << " step " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Speculation-efficiency invariants (end-to-end, via the metrics
// registry the runner publishes into at window granularity).

struct SpecRun {
  std::unique_ptr<MetricsRegistry> metrics;
  RunResult result;
};

SpecRun RunWithMetrics(ProtocolKind protocol, int threads, bool fast_merge) {
  RunConfig config;
  config.protocol = protocol;
  config.query = QueryKind::kSelfJoin;
  config.sites = 5;
  config.depth = 5;
  config.width = 60;
  config.threads = threads;
  config.fast_merge = fast_merge;
  SpecRun out;
  out.metrics = std::make_unique<MetricsRegistry>();
  config.metrics = out.metrics.get();

  WorldCupConfig wc;
  wc.sites = config.sites;
  wc.total_updates = 30000;
  out.result = Run(config, GenerateWorldCupTrace(wc));
  return out;
}

void ExpectEfficiencyInvariants(const SpecRun& run) {
  const int64_t speculated =
      run.metrics->GetCounter("spec_records_speculated")->value();
  const int64_t committed =
      run.metrics->GetCounter("spec_records_committed")->value();
  const int64_t wasted =
      run.metrics->GetCounter("spec_records_wasted")->value();
  const int64_t replayed =
      run.metrics->GetCounter("spec_records_replayed")->value();
  // Every speculated record is either committed or discarded past a
  // barrier — nothing is double-counted and nothing leaks.
  EXPECT_EQ(speculated, committed + wasted);
  EXPECT_EQ(committed, run.result.events);
  // Replay re-derives committed prefixes only.
  EXPECT_LE(replayed, committed);
  EXPECT_EQ(replayed, run.result.replayed_records);
  EXPECT_EQ(wasted, run.result.wasted_records);
  EXPECT_EQ(run.metrics->GetCounter("spec_soft_commits")->value(),
            run.result.soft_commits);
}

TEST(SpeculationEfficiency, InvariantHoldsOnValueSeriesPath) {
  // FGM supports value-series speculation: soft subround crossings must
  // show up, and the accounting must balance.
  const SpecRun run = RunWithMetrics(ProtocolKind::kFgm, 4, false);
  EXPECT_GT(run.result.parallel_windows, 0);
  EXPECT_GT(run.result.soft_commits, 0);
  ExpectEfficiencyInvariants(run);
}

TEST(SpeculationEfficiency, InvariantHoldsOnEventPath) {
  // GM runs the event/barrier path (no value series); same conservation.
  const SpecRun run = RunWithMetrics(ProtocolKind::kGm, 4, false);
  EXPECT_GT(run.result.parallel_windows, 0);
  EXPECT_EQ(run.result.soft_commits, 0);
  ExpectEfficiencyInvariants(run);
}

TEST(SpeculationEfficiency, FastMergeNeverRollsBack) {
  const SpecRun run = RunWithMetrics(ProtocolKind::kFgm, 4, true);
  EXPECT_GT(run.result.parallel_windows, 0);
  EXPECT_EQ(run.result.parallel_barriers, 0);
  EXPECT_EQ(run.result.replayed_records, 0);
  EXPECT_EQ(run.result.wasted_records, 0);
  ExpectEfficiencyInvariants(run);
}

}  // namespace
}  // namespace fgm
