// Tests for heavy-hitter monitoring: the max-of-halfspaces safe zone with
// lazy-heap incremental evaluation, the report-set semantics, and the
// end-to-end set guarantee through FGM.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/fgm_protocol.h"
#include "query/heavy_hitters.h"
#include "safezone/heavy_hitters_sz.h"
#include "stream/window.h"
#include "stream/worldcup.h"
#include "util/rng.h"

namespace fgm {
namespace {

RealVector SkewedHistogram(size_t dim, Xoshiro256ss& rng, int draws = 4000) {
  RealVector h(dim);
  ZipfDistribution zipf(dim, 1.2);
  for (int i = 0; i < draws; ++i) h[zipf.Sample(rng) - 1] += 1.0;
  return h;
}

TEST(HeavyHitterSafeFunction, NegativeAtZeroAndGroupsNonempty) {
  Xoshiro256ss rng(1);
  const RealVector e = SkewedHistogram(32, rng);
  HeavyHitterSafeFunction fn(e, /*theta=*/0.05, /*eps=*/0.02);
  EXPECT_LT(fn.AtZero(), 0.0);
  int heavies = 0;
  for (uint8_t h : fn.heavy()) heavies += h;
  EXPECT_GT(heavies, 0);
  EXPECT_LT(heavies, 32);
}

TEST(HeavyHitterSafeFunction, Def21Safety) {
  Xoshiro256ss rng(2);
  const RealVector e = SkewedHistogram(24, rng);
  const double theta = 0.06, eps = 0.03;
  HeavyHitterSafeFunction fn(e, theta, eps);
  const double scale = std::fabs(fn.AtZero());
  int quiescent = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    RealVector sum(24);
    double psi = 0.0;
    for (int s = 0; s < 3; ++s) {
      RealVector x(24);
      for (size_t i = 0; i < 24; ++i) {
        x[i] = 0.8 * scale * rng.NextGaussian();
      }
      psi += fn.Eval(x);
      sum += x;
    }
    if (psi > 0.0) continue;
    ++quiescent;
    sum *= 1.0 / 3.0;
    sum += e;
    const double n = sum.Sum();
    for (size_t i = 0; i < 24; ++i) {
      if (fn.heavy()[i]) {
        ASSERT_GE(sum[i], (theta - eps) * n - 1e-9 * n);
      } else {
        ASSERT_LE(sum[i], (theta + eps) * n + 1e-9 * n);
      }
    }
  }
  EXPECT_GT(quiescent, 50);
}

TEST(HeavyHitterSafeFunction, LazyHeapEvaluatorMatchesEval) {
  Xoshiro256ss rng(3);
  const RealVector e = SkewedHistogram(16, rng);
  HeavyHitterSafeFunction fn(e, 0.08, 0.03);
  auto eval = fn.MakeEvaluator();
  RealVector x(16);
  for (int t = 0; t < 2000; ++t) {
    const size_t idx = rng.NextBounded(16);
    const double delta = 3.0 * rng.NextGaussian();
    eval->ApplyDelta(idx, delta);
    x[idx] += delta;
    const double ref = fn.Eval(x);
    ASSERT_NEAR(eval->Value(), ref, 1e-9 * (1.0 + std::fabs(ref)))
        << "step " << t;
    if (t % 50 == 0) {
      const double lambda = 0.1 + 0.9 * rng.NextDouble();
      ASSERT_NEAR(eval->ValueAtScale(lambda),
                  PerspectiveEval(fn, x, lambda),
                  1e-9 * (1.0 + std::fabs(ref)));
    }
  }
  eval->Reset();
  EXPECT_NEAR(eval->Value(), fn.AtZero(), 1e-12);
}

TEST(HeavyHitterSafeFunction, ConvexAndNonexpansive) {
  Xoshiro256ss rng(4);
  const RealVector e = SkewedHistogram(12, rng);
  HeavyHitterSafeFunction fn(e, 0.08, 0.03);
  for (int t = 0; t < 500; ++t) {
    RealVector a(12), b(12);
    for (size_t i = 0; i < 12; ++i) {
      a[i] = 50.0 * rng.NextGaussian();
      b[i] = 50.0 * rng.NextGaussian();
    }
    const double theta = rng.NextDouble();
    RealVector mid = a;
    mid *= theta;
    mid.Axpy(1.0 - theta, b);
    ASSERT_LE(fn.Eval(mid),
              theta * fn.Eval(a) + (1.0 - theta) * fn.Eval(b) + 1e-9);
    ASSERT_LE(std::fabs(fn.Eval(a) - fn.Eval(b)), Distance(a, b) + 1e-9);
  }
}

TEST(HeavyHitterQuery, ReportSetAndValidity) {
  HeavyHitterQuery query(8, 0.2, 0.05);
  RealVector state(8);
  state[0] = 50.0;  // 50%
  state[1] = 30.0;  // 30%
  state[2] = 20.0;  // 20% — exactly at θ
  const auto report = query.ReportSet(state);
  EXPECT_EQ(report[0], 1);
  EXPECT_EQ(report[1], 1);
  EXPECT_EQ(report[2], 1);
  EXPECT_EQ(report[3], 0);
  EXPECT_TRUE(query.SetIsValidFor(report, state));
  EXPECT_DOUBLE_EQ(query.Evaluate(state), 3.0);

  // Shrink item 0 below (θ-ε)N = 0.15·55 = 8.25: the report is invalid.
  RealVector moved = state;
  moved[0] = 5.0;
  EXPECT_FALSE(query.SetIsValidFor(report, moved));
}

TEST(HeavyHitterQuery, EndToEndSetGuaranteeUnderFgm) {
  WorldCupConfig wc;
  wc.sites = 5;
  wc.total_updates = 30000;
  wc.duration = 8000.0;
  wc.distinct_clients = 500;  // folded into few buckets → real heavies
  const auto trace = GenerateWorldCupTrace(wc);

  HeavyHitterQuery query(64, /*theta=*/0.04, /*epsilon=*/0.015);
  FgmConfig config;
  FgmProtocol protocol(&query, 5, config);

  RealVector truth(query.dimension());
  std::vector<CellUpdate> deltas;
  SlidingWindowStream events(&trace, 1500.0);
  std::vector<uint8_t> report = query.ReportSet(protocol.GlobalEstimate());
  int64_t rounds_seen = protocol.rounds();
  int64_t checks = 0;
  bool past_bootstrap = false;
  while (const StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    deltas.clear();
    query.MapRecord(*rec, &deltas);
    for (const auto& u : deltas) truth[u.index] += u.delta / 5.0;
    if (protocol.rounds() != rounds_seen) {
      rounds_seen = protocol.rounds();
      report = query.ReportSet(protocol.GlobalEstimate());
      past_bootstrap = protocol.GlobalEstimate().Sum() >= 32.0;
    }
    if (past_bootstrap && protocol.BoundsCertified()) {
      ASSERT_TRUE(query.SetIsValidFor(report, truth))
          << "at event " << checks;
      ++checks;
    }
  }
  EXPECT_GT(checks, 1000);
  EXPECT_GT(protocol.rounds(), 1);
}

}  // namespace
}  // namespace fgm
