// Tests for the stream substrate: generator, windows, partitioning, skew.

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "stream/partition.h"
#include "stream/window.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

WorldCupConfig SmallConfig() {
  WorldCupConfig config;
  config.sites = 9;
  config.total_updates = 20000;
  config.duration = 10000.0;
  config.distinct_clients = 2000;
  return config;
}

TEST(WorldCup, DeterministicAndSorted) {
  const auto a = GenerateWorldCupTrace(SmallConfig());
  const auto b = GenerateWorldCupTrace(SmallConfig());
  ASSERT_EQ(a.size(), 20000u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].cid, b[i].cid);
    ASSERT_EQ(a[i].site, b[i].site);
    if (i > 0) ASSERT_GE(a[i].time, a[i - 1].time);
    ASSERT_GE(a[i].time, 0.0);
    ASSERT_LE(a[i].time, 10000.0);
    ASSERT_DOUBLE_EQ(a[i].weight, 1.0);
  }
  WorldCupConfig other = SmallConfig();
  other.seed += 1;
  const auto c = GenerateWorldCupTrace(other);
  int diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff += a[i].cid != c[i].cid;
  EXPECT_GT(diff, 1000);
}

TEST(WorldCup, SiteRatesAreSkewed) {
  const auto trace = GenerateWorldCupTrace(SmallConfig());
  auto counts = SiteCounts(trace, 9);
  std::sort(counts.begin(), counts.end());
  // A 1/r power law: the largest site should dwarf the smallest.
  EXPECT_GT(counts.back(), 4 * counts.front());
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(WorldCup, ClientPopularityIsZipfLike) {
  const auto trace = GenerateWorldCupTrace(SmallConfig());
  std::map<uint64_t, int> freq;
  for (const auto& rec : trace) ++freq[rec.cid];
  std::vector<int> counts;
  for (const auto& [cid, c] : freq) {
    (void)cid;
    counts.push_back(c);
  }
  std::sort(counts.rbegin(), counts.rend());
  EXPECT_GT(counts[0], 10 * counts[std::min<size_t>(99, counts.size() - 1)]);
}

TEST(WorldCup, TypeMixMatchesConfig) {
  const auto trace = GenerateWorldCupTrace(SmallConfig());
  int html = 0, image = 0;
  for (const auto& rec : trace) {
    html += rec.type == FileType::kHtml;
    image += rec.type == FileType::kImage;
  }
  EXPECT_NEAR(static_cast<double>(html) / trace.size(), 0.22, 0.02);
  EXPECT_NEAR(static_cast<double>(image) / trace.size(), 0.66, 0.02);
}

TEST(SlidingWindow, CashRegisterPassesThrough) {
  const auto trace = GenerateWorldCupTrace(SmallConfig());
  SlidingWindowStream events(&trace, 0.0);
  int64_t n = 0;
  while (const StreamRecord* rec = events.Next()) {
    ASSERT_DOUBLE_EQ(rec->weight, 1.0);
    ++n;
  }
  EXPECT_EQ(n, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(events.deletes(), 0);
}

TEST(SlidingWindow, EveryInsertEventuallyDeleted) {
  const auto trace = GenerateWorldCupTrace(SmallConfig());
  SlidingWindowStream events(&trace, 500.0);
  std::map<uint64_t, int> live;  // cid -> live count
  int64_t inserts = 0, deletes = 0;
  double last_time = 0.0;
  while (const StreamRecord* rec = events.Next()) {
    ASSERT_GE(rec->time, last_time);  // time-ordered interleaving
    last_time = rec->time;
    if (rec->weight > 0) {
      ++inserts;
      ++live[rec->cid];
    } else {
      ++deletes;
      --live[rec->cid];
      ASSERT_GE(live[rec->cid], 0);
    }
  }
  EXPECT_EQ(inserts, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(deletes, inserts);  // window fully drains at end of stream
}

TEST(SlidingWindow, WindowContentsNeverOlderThanTw) {
  const auto trace = GenerateWorldCupTrace(SmallConfig());
  const double tw = 800.0;
  SlidingWindowStream events(&trace, tw);
  std::vector<double> live_times;
  while (const StreamRecord* rec = events.Next()) {
    if (rec->weight > 0) {
      live_times.push_back(rec->time);
    } else {
      // Deletion fires at insert time + TW (up to float rounding).
      const double original = rec->time - tw;
      auto it = std::min_element(
          live_times.begin(), live_times.end(), [&](double a, double b) {
            return std::fabs(a - original) < std::fabs(b - original);
          });
      ASSERT_NE(it, live_times.end());
      ASSERT_NEAR(*it, original, 1e-6);
      live_times.erase(it);
    }
    for (double t : live_times) ASSERT_GE(t, rec->time - tw - 1e-9);
  }
}

TEST(CountWindow, KeepsExactlyCapacity) {
  const auto trace = GenerateWorldCupTrace(SmallConfig());
  CountWindowStream events(&trace, 100);
  int64_t live = 0, max_live = 0;
  while (const StreamRecord* rec = events.Next()) {
    live += rec->weight > 0 ? 1 : -1;
    max_live = std::max(max_live, live);
    ASSERT_LE(live, 101);  // eviction lags the insert by one event
  }
  EXPECT_EQ(max_live, 101);
  EXPECT_EQ(live, 100);  // the final window remains
}

TEST(Partition, RehashPreservesGlobalStream) {
  const auto trace = GenerateWorldCupTrace(SmallConfig());
  const auto rehashed = RehashSites(trace, 4);
  ASSERT_EQ(rehashed.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(rehashed[i].cid, trace[i].cid);
    ASSERT_EQ(static_cast<int>(rehashed[i].type),
              static_cast<int>(trace[i].type));
    ASSERT_GE(rehashed[i].site, 0);
    ASSERT_LT(rehashed[i].site, 4);
  }
  // All 4 sites get traffic.
  const auto counts = SiteCounts(rehashed, 4);
  for (int64_t c : counts) EXPECT_GT(c, 0);
}

TEST(Partition, SkewTransformMatchesPaperSetup) {
  const auto trace = GenerateWorldCupTrace(SmallConfig());
  const auto skewed = MakeSkewedTrace(trace, 9, /*group_size=*/4);
  ASSERT_EQ(skewed.size(), trace.size());
  // Global stream identical.
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(skewed[i].cid, trace[i].cid);
    ASSERT_EQ(skewed[i].time, trace[i].time);
  }
  const auto before = SiteCounts(trace, 9);
  const auto after = SiteCounts(skewed, 9);
  // Exactly group_size - 1 = 3 sites lose their stream entirely; the hot
  // site absorbs the group's records.
  int empty = 0;
  int64_t hot_max = 0;
  for (int i = 0; i < 9; ++i) {
    if (after[static_cast<size_t>(i)] == 0 &&
        before[static_cast<size_t>(i)] > 0) {
      ++empty;
    }
    hot_max = std::max(hot_max, after[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(empty, 3);
  int64_t group_total = 0;
  std::vector<int64_t> sorted = before;
  std::sort(sorted.rbegin(), sorted.rend());
  for (int g = 0; g < 4; ++g) group_total += sorted[static_cast<size_t>(g)];
  EXPECT_EQ(hot_max, group_total);
}

}  // namespace
}  // namespace fgm
