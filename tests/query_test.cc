// Tests for the query layer: record→delta mapping, thresholds with the
// relative/floor rule, safe-function construction around estimates.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "query/query.h"
#include "util/rng.h"

namespace fgm {
namespace {

std::shared_ptr<const AgmsProjection> Proj(int d = 5, int w = 16,
                                           uint64_t seed = 3) {
  return std::make_shared<const AgmsProjection>(d, w, seed);
}

StreamRecord Rec(uint64_t cid, FileType type = FileType::kHtml,
                 double weight = 1.0) {
  StreamRecord rec;
  rec.cid = cid;
  rec.type = type;
  rec.weight = weight;
  return rec;
}

TEST(RelativeThresholds, RelativeAndFloorRegimes) {
  // Large value: relative margin dominates.
  ThresholdPair t = RelativeThresholds(1000.0, 0.1, 1.0);
  EXPECT_DOUBLE_EQ(t.lo, 900.0);
  EXPECT_DOUBLE_EQ(t.hi, 1100.0);
  // Near zero: the floor keeps the interval nondegenerate.
  t = RelativeThresholds(0.0, 0.1, 1.0);
  EXPECT_DOUBLE_EQ(t.lo, -1.0);
  EXPECT_DOUBLE_EQ(t.hi, 1.0);
  // Negative values (join estimates): interval flips around the center.
  t = RelativeThresholds(-1000.0, 0.1, 1.0);
  EXPECT_DOUBLE_EQ(t.lo, -1100.0);
  EXPECT_DOUBLE_EQ(t.hi, -900.0);
}

TEST(SelfJoinQuery, MapRecordUsesTheProjection) {
  auto proj = Proj();
  SelfJoinQuery query(proj, 0.1);
  EXPECT_EQ(query.dimension(), proj->dimension());
  std::vector<CellUpdate> deltas;
  query.MapRecord(Rec(42, FileType::kImage, -1.0), &deltas);
  ASSERT_EQ(deltas.size(), 5u);  // one cell per row, type ignored
  for (const auto& u : deltas) {
    EXPECT_LT(u.index, proj->dimension());
    EXPECT_DOUBLE_EQ(std::fabs(u.delta), 1.0);
  }
}

TEST(SelfJoinQuery, EvaluateMatchesSketchEstimate) {
  auto proj = Proj();
  SelfJoinQuery query(proj, 0.1);
  RealVector state(query.dimension());
  std::vector<CellUpdate> deltas;
  for (uint64_t cid = 0; cid < 200; ++cid) {
    deltas.clear();
    query.MapRecord(Rec(cid % 37), &deltas);
    for (const auto& u : deltas) state[u.index] += u.delta;
  }
  EXPECT_DOUBLE_EQ(query.Evaluate(state), SelfJoinEstimate(*proj, state));
  EXPECT_GT(query.Evaluate(state), 0.0);
}

TEST(SelfJoinQuery, SafeFunctionIsCenteredOnTheEstimate) {
  auto proj = Proj();
  SelfJoinQuery query(proj, 0.2);
  RealVector e(query.dimension());
  std::vector<CellUpdate> deltas;
  for (uint64_t cid = 0; cid < 500; ++cid) {
    deltas.clear();
    query.MapRecord(Rec(cid % 29), &deltas);
    for (const auto& u : deltas) e[u.index] += u.delta;
  }
  auto fn = query.MakeSafeFunction(e);
  EXPECT_LT(fn->AtZero(), 0.0);
  const ThresholdPair t = query.Thresholds(e);
  const double q = query.Evaluate(e);
  EXPECT_LT(t.lo, q);
  EXPECT_GT(t.hi, q);
  EXPECT_NEAR(t.hi - q, 0.2 * q, 1e-9);
}

TEST(JoinQuery, HtmlGoesToFirstSketch) {
  auto proj = Proj();
  JoinQuery query(proj, 0.1);
  EXPECT_EQ(query.dimension(), 2 * proj->dimension());
  std::vector<CellUpdate> html, other;
  query.MapRecord(Rec(7, FileType::kHtml), &html);
  query.MapRecord(Rec(7, FileType::kImage), &other);
  ASSERT_EQ(html.size(), 5u);
  ASSERT_EQ(other.size(), 5u);
  for (size_t i = 0; i < html.size(); ++i) {
    EXPECT_LT(html[i].index, proj->dimension());
    EXPECT_EQ(other[i].index, html[i].index + proj->dimension());
    EXPECT_DOUBLE_EQ(other[i].delta, html[i].delta);
  }
}

TEST(JoinQuery, EvaluateIsTheMedianRowProduct) {
  auto proj = Proj();
  JoinQuery query(proj, 0.1);
  RealVector state(query.dimension());
  std::vector<CellUpdate> deltas;
  Xoshiro256ss rng(5);
  for (int i = 0; i < 1000; ++i) {
    deltas.clear();
    query.MapRecord(Rec(rng.NextBounded(50),
                        (i % 3 == 0) ? FileType::kHtml : FileType::kImage),
                    &deltas);
    for (const auto& u : deltas) state[u.index] += u.delta;
  }
  EXPECT_DOUBLE_EQ(query.Evaluate(state),
                   JoinEstimateConcatenated(*proj, state));
}

TEST(JoinQuery, SafeFunctionValidAtColdStart) {
  auto proj = Proj();
  JoinQuery query(proj, 0.1);
  auto fn = query.MakeSafeFunction(RealVector(query.dimension()));
  EXPECT_LT(fn->AtZero(), 0.0);
}

TEST(FpNormQuery, MapFoldsKeysIntoDimension) {
  FpNormQuery query(16, 2.0, 0.1, FpNormQuery::Mode::kMonotoneUpper);
  std::vector<CellUpdate> deltas;
  query.MapRecord(Rec(16 * 5 + 3), &deltas);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].index, 3u);
  EXPECT_DOUBLE_EQ(deltas[0].delta, 1.0);
}

TEST(FpNormQuery, EvaluateIsLpNorm) {
  FpNormQuery q1(4, 1.0, 0.1, FpNormQuery::Mode::kMonotoneUpper);
  FpNormQuery q3(4, 3.0, 0.1, FpNormQuery::Mode::kMonotoneUpper);
  RealVector v{1.0, -2.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(q1.Evaluate(v), 5.0);
  EXPECT_NEAR(q3.Evaluate(v), std::cbrt(1.0 + 8.0 + 8.0), 1e-12);
}

TEST(FpNormQuery, TwoSidedUsesCompositionAwayFromZero) {
  FpNormQuery query(8, 2.0, 0.1, FpNormQuery::Mode::kTwoSided);
  RealVector e(8);
  e[0] = 10.0;
  auto fn = query.MakeSafeFunction(e);
  EXPECT_LT(fn->AtZero(), 0.0);
  // Drift that shrinks the norm below (1-ε)‖E‖ must violate.
  RealVector shrink(8);
  shrink[0] = -2.0;
  EXPECT_GT(fn->Eval(shrink), 0.0);
  // Drift that grows the norm beyond (1+ε)‖E‖ must violate.
  RealVector grow(8);
  grow[0] = 2.0;
  EXPECT_GT(fn->Eval(grow), 0.0);
  // Small drift stays quiescent.
  RealVector small(8);
  small[1] = 0.3;
  EXPECT_LT(fn->Eval(small), 0.0);
}

TEST(FpNormQuery, MonotoneUpperAtColdStart) {
  FpNormQuery query(8, 2.0, 0.1, FpNormQuery::Mode::kMonotoneUpper);
  auto fn = query.MakeSafeFunction(RealVector(8));
  EXPECT_LT(fn->AtZero(), 0.0);
}

}  // namespace
}  // namespace fgm
