// Transport-layer tests: unit round trips through the serializing
// transport, and the headline parity property — a full protocol run
// charges bit-identical traffic and produces bit-identical estimates
// whether messages are merely counted or actually encoded, size-checked,
// decoded and delivered (strict wire accounting).

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/central.h"
#include "core/fgm_protocol.h"
#include "driver/runner.h"
#include "gm/gm_protocol.h"
#include "net/transport.h"
#include "net/wire.h"
#include "stream/window.h"
#include "stream/worldcup.h"

namespace fgm {
namespace {

std::vector<StreamRecord> SmallTrace(int sites, int64_t updates) {
  WorldCupConfig config;
  config.sites = sites;
  config.total_updates = updates;
  config.duration = 10000.0;
  config.distinct_clients = 2000;
  config.seed = 20190326;
  return GenerateWorldCupTrace(config);
}

std::unique_ptr<ContinuousQuery> SmallQuery(int sites) {
  RunConfig config;
  config.query = QueryKind::kSelfJoin;
  config.sites = sites;
  config.depth = 5;
  config.width = 32;
  config.epsilon = 0.15;
  return MakeQuery(config);
}

template <typename Protocol>
void Drive(Protocol* protocol, const std::vector<StreamRecord>& trace,
           double window) {
  SlidingWindowStream events(&trace, window);
  while (const StreamRecord* rec = events.Next()) {
    protocol->ProcessRecord(*rec);
  }
}

void ExpectSameTraffic(const TrafficStats& counting,
                       const TrafficStats& serializing) {
  EXPECT_EQ(counting.upstream_words, serializing.upstream_words);
  EXPECT_EQ(counting.downstream_words, serializing.downstream_words);
  EXPECT_EQ(counting.upstream_messages, serializing.upstream_messages);
  EXPECT_EQ(counting.downstream_messages, serializing.downstream_messages);
  for (size_t i = 0; i < counting.words_by_kind.size(); ++i) {
    EXPECT_EQ(counting.words_by_kind[i], serializing.words_by_kind[i])
        << MsgKindName(static_cast<MsgKind>(i));
  }
}

// ---------------------------------------------------------------------
// Unit round trips: each typed send charges exactly the encoded size and
// delivers an identical message.

TEST(SerializingTransport, ChargesExactlyTheEncodedWords) {
  auto transport = MakeTransport(TransportMode::kSerializing, 4);
  EXPECT_STREQ(transport->name(), "serializing");

  RealVector e(10);
  e[3] = 2.5;
  const SafeZoneMsg zone = transport->ShipSafeZone(0, SafeZoneMsg{e});
  EXPECT_DOUBLE_EQ(zone.reference[3], 2.5);
  EXPECT_EQ(transport->stats().upstream_words, 10);

  const CheapZoneMsg cheap =
      transport->ShipCheapZone(1, CheapZoneMsg{1.5, 1.0, -4.0});
  EXPECT_DOUBLE_EQ(cheap.offset, -4.0);
  EXPECT_EQ(transport->stats().upstream_words, 13);
  EXPECT_EQ(transport->stats()
                .words_by_kind[static_cast<size_t>(MsgKind::kSafeZone)],
            13);

  EXPECT_DOUBLE_EQ(transport->ShipQuantum(2, QuantumMsg{0.25}).theta, 0.25);
  EXPECT_DOUBLE_EQ(transport->ShipLambda(3, LambdaMsg{0.5}).lambda, 0.5);
  EXPECT_EQ(transport->ShipControl(0, ControlMsg{ControlOp::kPollPhi}).op,
            ControlOp::kPollPhi);
  EXPECT_EQ(transport->SendControl(0, ControlMsg{ControlOp::kViolation}).op,
            ControlOp::kViolation);
  const int64_t big = (int64_t{1} << 53) + 7;
  EXPECT_EQ(transport->SendCounter(1, CounterMsg{big}).increment, big);
  EXPECT_DOUBLE_EQ(transport->SendPhiValue(2, PhiValueMsg{-0.75}).value,
                   -0.75);
  EXPECT_EQ(transport->stats().upstream_words, 16);
  EXPECT_EQ(transport->stats().downstream_words, 3);

  RawUpdateMsg raw;
  raw.key = uint64_t{1} << 63;  // 2-word key
  const RawUpdateMsg raw_delivered = transport->SendRawUpdate(0, raw);
  EXPECT_EQ(raw_delivered.key, uint64_t{1} << 63);
  EXPECT_EQ(transport->stats()
                .words_by_kind[static_cast<size_t>(MsgKind::kRawUpdate)],
            2);
}

TEST(SerializingTransport, DriftFlushDeliversWhatWasEncoded) {
  auto transport = MakeTransport(TransportMode::kSerializing, 2);

  // Dense: the drift crosses the wire.
  DriftFlushMsg dense;
  dense.update_count = 9;
  dense.dense = true;
  dense.drift = RealVector{1.0, -2.0, 0.5};
  const DriftFlushMsg dense_got = transport->SendDriftFlush(0, dense);
  EXPECT_TRUE(dense_got.dense);
  EXPECT_EQ(dense_got.drift.dim(), 3u);
  EXPECT_DOUBLE_EQ(dense_got.drift[1], -2.0);
  EXPECT_EQ(transport->stats()
                .words_by_kind[static_cast<size_t>(MsgKind::kDriftFlush)],
            4);

  // Verbatim: only the raw updates cross; the sender-local dense copy
  // must NOT leak through the wire.
  DriftFlushMsg verbatim;
  verbatim.update_count = 1;
  verbatim.dense = false;
  verbatim.drift = RealVector{1.0, -2.0, 0.5};  // sender-local only
  RawUpdateMsg u;
  u.key = 42;
  verbatim.raw = {u};
  const DriftFlushMsg verbatim_got = transport->SendDriftFlush(1, verbatim);
  EXPECT_FALSE(verbatim_got.dense);
  EXPECT_EQ(verbatim_got.drift.dim(), 0u);
  ASSERT_EQ(verbatim_got.raw.size(), 1u);
  EXPECT_EQ(verbatim_got.raw[0].key, 42u);
  EXPECT_EQ(transport->stats()
                .words_by_kind[static_cast<size_t>(MsgKind::kDriftFlush)],
            4 + 2);
}

TEST(Transport, CountingModeDeliversUnchanged) {
  auto transport = MakeTransport(TransportMode::kCounting, 2);
  EXPECT_STREQ(transport->name(), "counting");
  DriftFlushMsg verbatim;
  verbatim.update_count = 1;
  verbatim.dense = false;
  verbatim.drift = RealVector{7.0};
  RawUpdateMsg u;
  u.key = 3;
  verbatim.raw = {u};
  // The fast path hands the message through as-is (the local drift stays
  // available), but charges the same wire words as strict mode.
  const DriftFlushMsg got = transport->SendDriftFlush(0, verbatim);
  EXPECT_EQ(got.drift.dim(), 1u);
  EXPECT_EQ(transport->stats()
                .words_by_kind[static_cast<size_t>(MsgKind::kDriftFlush)],
            2);
}

// ---------------------------------------------------------------------
// Parity: counting and serializing runs of every protocol are
// indistinguishable — identical traffic in every breakdown and identical
// (bit-exact) estimates. The windowed FGM runs exercise rebalancing and
// verbatim flushes; FGM/O exercises cheap-zone shipments.

struct FgmParityCase {
  const char* label;
  bool rebalance;
  bool optimizer;
  double window;
};

class FgmParity : public ::testing::TestWithParam<FgmParityCase> {};

TEST_P(FgmParity, CountingAndSerializingRunsAreBitIdentical) {
  const FgmParityCase& param = GetParam();
  const int sites = 5;
  const auto trace = SmallTrace(sites, 25000);
  auto query = SmallQuery(sites);

  FgmConfig counting_config;
  counting_config.transport = TransportMode::kCounting;
  counting_config.rebalance = param.rebalance;
  counting_config.optimizer = param.optimizer;
  FgmConfig strict_config = counting_config;
  strict_config.transport = TransportMode::kSerializing;

  FgmProtocol counting(query.get(), sites, counting_config);
  FgmProtocol strict(query.get(), sites, strict_config);
  Drive(&counting, trace, param.window);
  Drive(&strict, trace, param.window);

  EXPECT_STREQ(counting.transport().name(), "counting");
  EXPECT_STREQ(strict.transport().name(), "serializing");
  ExpectSameTraffic(counting.traffic(), strict.traffic());
  EXPECT_EQ(counting.rounds(), strict.rounds());
  EXPECT_EQ(counting.subrounds(), strict.subrounds());
  EXPECT_EQ(counting.rebalances(), strict.rebalances());
  EXPECT_EQ(counting.Estimate(), strict.Estimate());
  EXPECT_DOUBLE_EQ(Distance(counting.GlobalEstimate(),
                            strict.GlobalEstimate()),
                   0.0);
  if (param.rebalance && param.window > 0) {
    // The turnstile case must actually exercise the rebalancing path.
    EXPECT_GT(counting.rebalances(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, FgmParity,
    ::testing::Values(FgmParityCase{"basic", false, false, 0.0},
                      FgmParityCase{"fgm", true, false, 0.0},
                      FgmParityCase{"fgm_turnstile", true, false, 1200.0},
                      FgmParityCase{"fgmo_turnstile", true, true, 1200.0}),
    [](const ::testing::TestParamInfo<FgmParityCase>& info) {
      return std::string(info.param.label);
    });

TEST(GmParity, CountingAndSerializingRunsAreBitIdentical) {
  const int sites = 5;
  const auto trace = SmallTrace(sites, 25000);
  auto query = SmallQuery(sites);

  GmConfig counting_config;
  counting_config.transport = TransportMode::kCounting;
  GmConfig strict_config = counting_config;
  strict_config.transport = TransportMode::kSerializing;

  GmProtocol counting(query.get(), sites, counting_config);
  GmProtocol strict(query.get(), sites, strict_config);
  Drive(&counting, trace, /*window=*/1200.0);
  Drive(&strict, trace, /*window=*/1200.0);

  ExpectSameTraffic(counting.traffic(), strict.traffic());
  EXPECT_EQ(counting.rounds(), strict.rounds());
  EXPECT_EQ(counting.violations(), strict.violations());
  EXPECT_EQ(counting.partial_rebalances(), strict.partial_rebalances());
  EXPECT_GT(counting.partial_rebalances(), 0);
  EXPECT_EQ(counting.Estimate(), strict.Estimate());
  EXPECT_DOUBLE_EQ(Distance(counting.GlobalEstimate(),
                            strict.GlobalEstimate()),
                   0.0);
}

TEST(CentralParity, CountingAndSerializingRunsAreBitIdentical) {
  const int sites = 3;
  const auto trace = SmallTrace(sites, 8000);
  auto query = SmallQuery(sites);

  CentralProtocol counting(query.get(), sites, TransportMode::kCounting);
  CentralProtocol strict(query.get(), sites, TransportMode::kSerializing);
  Drive(&counting, trace, /*window=*/800.0);
  Drive(&strict, trace, /*window=*/800.0);

  ExpectSameTraffic(counting.traffic(), strict.traffic());
  EXPECT_EQ(counting.Estimate(), strict.Estimate());
  // WorldCup keys are small, so every raw update is one word and the
  // baseline's normalized cost stays exactly 1 under strict accounting.
  EXPECT_EQ(counting.traffic().downstream_words,
            counting.traffic().downstream_messages);
}

// ---------------------------------------------------------------------
// Decode errors fail loudly. A corrupted or truncated wire message must
// never be silently coerced into a plausible value: every decoder aborts
// through FGM_CHECK on the first inconsistent word.

TEST(WireDecodeDeath, TruncatedSafeZonePayload) {
  WordBuffer wire;
  SafeZoneMsg{RealVector{1.0, 2.0, 3.0}}.Encode(&wire);
  // The receiver expects the query dimension; a 3-word payload for a
  // 5-dim zone is a truncated message.
  EXPECT_DEATH(SafeZoneMsg::Decode(wire, 5), "FGM_CHECK failed");
}

TEST(WireDecodeDeath, TruncatedResyncPayload) {
  ResyncMsg msg;
  msg.reference = RealVector{1.0, 2.0};
  msg.theta = -0.5;
  msg.lambda = 1.0;
  msg.round = 3;
  msg.subround = 1;
  WordBuffer wire;
  msg.Encode(&wire);  // 2 + 4 words
  EXPECT_DEATH(ResyncMsg::Decode(wire, 4), "FGM_CHECK failed");
}

TEST(WireDecodeDeath, CorruptedControlOpByte) {
  WordBuffer wire;
  wire.PutCount(99);  // not a ControlOp
  EXPECT_DEATH(ControlMsg::Decode(wire), "FGM_CHECK failed");
}

TEST(WireDecodeDeath, EmptyControlPayload) {
  WordBuffer wire;
  EXPECT_DEATH(ControlMsg::Decode(wire), "FGM_CHECK failed");
}

TEST(WireDecodeDeath, DriftFlushClaimsMoreUpdatesThanEncoded) {
  // Verbatim header announcing 3 raw updates, but only one on the wire.
  WordBuffer wire;
  wire.PutCount(-3);
  RawUpdateMsg u;
  u.key = 7;
  u.Encode(&wire);
  EXPECT_DEATH(DriftFlushMsg::Decode(wire), "FGM_CHECK failed");
}

TEST(WireDecodeDeath, DriftFlushLengthMismatchTrailingWords) {
  // Correct raw updates followed by stray words the header doesn't cover.
  WordBuffer wire;
  wire.PutCount(-1);
  RawUpdateMsg u;
  u.key = 7;
  u.Encode(&wire);
  wire.PutReal(0.0);  // junk past the declared payload
  EXPECT_DEATH(DriftFlushMsg::Decode(wire), "FGM_CHECK failed");
}

TEST(WireDecodeDeath, NonCanonicalRawUpdateExtensionWord) {
  // Extension flag set but the extension word carries no high key bits —
  // a canonical encoder never produces this.
  WordBuffer wire;
  wire.PutBits(uint64_t{2});  // flags: extended=1, delete=0, key=0
  wire.PutBits(uint64_t{0});
  EXPECT_DEATH(RawUpdateMsg::Decode(wire, 0), "FGM_CHECK failed");
}

// ---------------------------------------------------------------------
// Graceful subround-cap handling (the run used to abort on FGM_CHECK).

TEST(FgmProtocol, SubroundCapEndsTheRoundInsteadOfAborting) {
  const int sites = 5;
  const auto trace = SmallTrace(sites, 20000);
  auto query = SmallQuery(sites);
  FgmConfig config;
  config.max_subrounds_per_round = 2;  // far below the typical ~7
  FgmProtocol protocol(query.get(), sites, config);
  Drive(&protocol, trace, /*window=*/0.0);
  EXPECT_GT(protocol.overflow_rounds(), 0);
  EXPECT_GT(protocol.rounds(), 1);
  EXPECT_TRUE(std::isfinite(protocol.Estimate()));

  // An uncapped run of the same workload never overflows.
  FgmConfig uncapped;
  FgmProtocol reference(query.get(), sites, uncapped);
  Drive(&reference, trace, /*window=*/0.0);
  EXPECT_EQ(reference.overflow_rounds(), 0);
}

}  // namespace
}  // namespace fgm
