// Property tests for the sketch-query safe functions (self-join Q1, join
// Q2) and the weighted median composition.
//
// The central check is Definition 2.1 itself, instantiated with random
// drift configurations: whenever Σ_i φ(X_i) ≤ 0 the global sketch state
// must satisfy the monitored thresholds. This validates the entire
// derivation chain (row conditions → median composition → max of sides).

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "safezone/join_sz.h"
#include "safezone/median_compose.h"
#include "safezone/selfjoin_sz.h"
#include "sketch/fast_agms.h"
#include "util/rng.h"
#include "util/subsets.h"

namespace fgm {
namespace {

RealVector RandomVector(size_t dim, double scale, Xoshiro256ss& rng) {
  RealVector v(dim);
  for (size_t i = 0; i < dim; ++i) v[i] = scale * rng.NextGaussian();
  return v;
}

// Builds a reference sketch state from a Zipf stream.
RealVector ReferenceSketch(const AgmsProjection& proj, int updates,
                           Xoshiro256ss& rng, bool concatenated = false) {
  const size_t dim = proj.dimension();
  RealVector state(concatenated ? 2 * dim : dim);
  ZipfDistribution zipf(500, 1.1);
  std::vector<CellUpdate> deltas;
  for (int i = 0; i < updates; ++i) {
    deltas.clear();
    proj.Map(zipf.Sample(rng), 1.0, &deltas);
    const size_t offset =
        (concatenated && rng.NextDouble() < 0.5) ? dim : 0;
    for (const CellUpdate& u : deltas) state[u.index + offset] += u.delta;
  }
  return state;
}

TEST(MedianComposition, MatchesBruteForce) {
  Xoshiro256ss rng(1);
  const std::vector<double> weights = {0.5, 1.0, 2.0, 0.25, 1.5};
  const int m = 3;
  MedianComposition comp(weights, m);
  for (int t = 0; t < 100; ++t) {
    std::vector<double> values(weights.size());
    for (double& v : values) v = rng.NextGaussian();
    double best = -1e300;
    for (const auto& subset : EnumerateSubsets(5, m)) {
      double num = 0.0, den = 0.0;
      for (int i : subset) {
        num += weights[static_cast<size_t>(i)] *
               values[static_cast<size_t>(i)];
        den += weights[static_cast<size_t>(i)] *
               weights[static_cast<size_t>(i)];
      }
      best = std::max(best, num / std::sqrt(den));
    }
    ASSERT_NEAR(comp.Compose(values), best, 1e-12);
  }
}

TEST(MedianComposition, AtZeroIsMinusSmallestSubsetNorm) {
  const std::vector<double> weights = {3.0, 1.0, 2.0};
  MedianComposition comp(weights, 2);
  // Smallest Σw² over 2-subsets: {1, 2} → 1 + 4 = 5.
  EXPECT_NEAR(comp.AtZero(), -std::sqrt(5.0), 1e-12);
  std::vector<double> at_zero = {-3.0, -1.0, -2.0};
  EXPECT_NEAR(comp.Compose(at_zero), comp.AtZero(), 1e-12);
}

TEST(MedianComposition, SafetySemantics) {
  // If Compose(values) <= 0 then fewer than m of the values are positive.
  Xoshiro256ss rng(2);
  const std::vector<double> weights = {1.0, 1.0, 2.0, 0.5};
  const int m = 2;
  MedianComposition comp(weights, m);
  int nontrivial = 0;
  for (int t = 0; t < 2000; ++t) {
    std::vector<double> values(weights.size());
    for (double& v : values) v = rng.NextGaussian();
    if (comp.Compose(values) > 0.0) continue;
    const long positives =
        std::count_if(values.begin(), values.end(),
                      [](double v) { return v > 0.0; });
    ASSERT_LT(positives, m);
    if (positives > 0) ++nontrivial;
  }
  EXPECT_GT(nontrivial, 0);
}

class SketchSafeFunctionTest : public ::testing::TestWithParam<int> {};

TEST_P(SketchSafeFunctionTest, SelfJoinDef21Safety) {
  const int k = GetParam();
  Xoshiro256ss rng(100 + static_cast<uint64_t>(k));
  auto proj = std::make_shared<const AgmsProjection>(5, 32, 7);
  const RealVector e = ReferenceSketch(*proj, 2000, rng);
  const double q = SelfJoinEstimate(*proj, e);
  ASSERT_GT(q, 0.0);
  const double t_lo = 0.8 * q, t_hi = 1.2 * q;
  SelfJoinSafeFunction fn(proj, e, t_lo, t_hi);
  ASSERT_LT(fn.AtZero(), 0.0);

  const double scale = std::fabs(fn.AtZero()) / std::sqrt(32.0 * 5);
  int quiescent = 0;
  for (int t = 0; t < 1500; ++t) {
    double psi = 0.0;
    RealVector sum(e.dim());
    for (int i = 0; i < k; ++i) {
      const RealVector x =
          RandomVector(e.dim(), scale * (0.5 + 2.0 * rng.NextDouble()), rng);
      psi += fn.Eval(x);
      sum += x;
    }
    if (psi > 0.0) continue;
    ++quiescent;
    sum *= 1.0 / k;
    sum += e;
    const double global = SelfJoinEstimate(*proj, sum);
    ASSERT_GE(global, t_lo - 1e-9 * q);
    ASSERT_LE(global, t_hi + 1e-9 * q);
  }
  EXPECT_GT(quiescent, 10) << "test should exercise quiescent states";
}

TEST_P(SketchSafeFunctionTest, JoinDef21Safety) {
  const int k = GetParam();
  Xoshiro256ss rng(200 + static_cast<uint64_t>(k));
  auto proj = std::make_shared<const AgmsProjection>(5, 32, 9);
  const RealVector e = ReferenceSketch(*proj, 4000, rng, /*concatenated=*/true);
  const double q = JoinEstimateConcatenated(*proj, e);
  const double margin = std::max(0.25 * std::fabs(q), 1.0);
  const double t_lo = q - margin, t_hi = q + margin;
  JoinSafeFunction fn(proj, e, t_lo, t_hi);
  ASSERT_LT(fn.AtZero(), 0.0);

  const double scale = std::fabs(fn.AtZero()) / std::sqrt(64.0 * 5);
  int quiescent = 0;
  for (int t = 0; t < 1500; ++t) {
    double psi = 0.0;
    RealVector sum(e.dim());
    for (int i = 0; i < k; ++i) {
      const RealVector x =
          RandomVector(e.dim(), scale * (0.5 + 2.0 * rng.NextDouble()), rng);
      psi += fn.Eval(x);
      sum += x;
    }
    if (psi > 0.0) continue;
    ++quiescent;
    sum *= 1.0 / k;
    sum += e;
    const double global = JoinEstimateConcatenated(*proj, sum);
    ASSERT_GE(global, t_lo - 1e-6 * margin);
    ASSERT_LE(global, t_hi + 1e-6 * margin);
  }
  EXPECT_GT(quiescent, 10);
}

INSTANTIATE_TEST_SUITE_P(VaryingSites, SketchSafeFunctionTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(SelfJoinSafeFunction, EvaluatorMatchesEvalAndPerspective) {
  Xoshiro256ss rng(11);
  auto proj = std::make_shared<const AgmsProjection>(5, 16, 3);
  const RealVector e = ReferenceSketch(*proj, 1000, rng);
  const double q = SelfJoinEstimate(*proj, e);
  SelfJoinSafeFunction fn(proj, e, 0.7 * q, 1.3 * q);
  auto eval = fn.MakeEvaluator();
  RealVector x(e.dim());
  for (int t = 0; t < 300; ++t) {
    const size_t idx = rng.NextBounded(e.dim());
    const double delta = rng.NextGaussian() * 2.0;
    eval->ApplyDelta(idx, delta);
    x[idx] += delta;
    const double ref = fn.Eval(x);
    ASSERT_NEAR(eval->Value(), ref, 1e-6 * (1.0 + std::fabs(ref)));
    const double lambda = 0.05 + 0.95 * rng.NextDouble();
    ASSERT_NEAR(eval->ValueAtScale(lambda), PerspectiveEval(fn, x, lambda),
                1e-6 * (1.0 + std::fabs(ref)));
  }
  eval->Reset();
  EXPECT_NEAR(eval->Value(), fn.AtZero(), 1e-9);
}

TEST(JoinSafeFunction, EvaluatorMatchesEvalAndPerspective) {
  Xoshiro256ss rng(13);
  auto proj = std::make_shared<const AgmsProjection>(5, 16, 5);
  const RealVector e = ReferenceSketch(*proj, 2000, rng, /*concatenated=*/true);
  const double q = JoinEstimateConcatenated(*proj, e);
  const double margin = std::max(0.3 * std::fabs(q), 1.0);
  JoinSafeFunction fn(proj, e, q - margin, q + margin);
  auto eval = fn.MakeEvaluator();
  RealVector x(e.dim());
  for (int t = 0; t < 300; ++t) {
    const size_t idx = rng.NextBounded(e.dim());
    const double delta = rng.NextGaussian() * 2.0;
    eval->ApplyDelta(idx, delta);
    x[idx] += delta;
    const double ref = fn.Eval(x);
    ASSERT_NEAR(eval->Value(), ref, 1e-6 * (1.0 + std::fabs(ref)));
    const double lambda = 0.05 + 0.95 * rng.NextDouble();
    ASSERT_NEAR(eval->ValueAtScale(lambda), PerspectiveEval(fn, x, lambda),
                1e-6 * (1.0 + std::fabs(ref)));
  }
  eval->Reset();
  EXPECT_NEAR(eval->Value(), fn.AtZero(), 1e-9);
}

TEST(SelfJoinSafeFunction, ConvexAndNonexpansive) {
  Xoshiro256ss rng(17);
  auto proj = std::make_shared<const AgmsProjection>(5, 8, 3);
  const RealVector e = ReferenceSketch(*proj, 500, rng);
  const double q = SelfJoinEstimate(*proj, e);
  SelfJoinSafeFunction fn(proj, e, 0.6 * q, 1.4 * q);
  const double scale = 2.0 * std::fabs(fn.AtZero());
  for (int t = 0; t < 300; ++t) {
    const RealVector a = RandomVector(e.dim(), scale, rng);
    const RealVector b = RandomVector(e.dim(), scale, rng);
    const double theta = rng.NextDouble();
    RealVector mid = a;
    mid *= theta;
    mid.Axpy(1.0 - theta, b);
    ASSERT_LE(fn.Eval(mid),
              theta * fn.Eval(a) + (1.0 - theta) * fn.Eval(b) + 1e-7);
    ASSERT_LE(std::fabs(fn.Eval(a) - fn.Eval(b)), Distance(a, b) + 1e-9);
  }
}

TEST(JoinSafeFunction, ConvexAndNonexpansive) {
  Xoshiro256ss rng(19);
  auto proj = std::make_shared<const AgmsProjection>(5, 8, 3);
  const RealVector e = ReferenceSketch(*proj, 1000, rng, /*concatenated=*/true);
  const double q = JoinEstimateConcatenated(*proj, e);
  const double margin = std::max(0.4 * std::fabs(q), 1.0);
  JoinSafeFunction fn(proj, e, q - margin, q + margin);
  const double scale = 2.0 * std::fabs(fn.AtZero());
  for (int t = 0; t < 300; ++t) {
    const RealVector a = RandomVector(e.dim(), scale, rng);
    const RealVector b = RandomVector(e.dim(), scale, rng);
    const double theta = rng.NextDouble();
    RealVector mid = a;
    mid *= theta;
    mid.Axpy(1.0 - theta, b);
    ASSERT_LE(fn.Eval(mid),
              theta * fn.Eval(a) + (1.0 - theta) * fn.Eval(b) + 1e-7);
    ASSERT_LE(std::fabs(fn.Eval(a) - fn.Eval(b)), Distance(a, b) + 1e-9);
  }
}

TEST(SelfJoinSafeFunction, ColdStartWithZeroReference) {
  // At E = 0 the lower side is vacuous (T_lo < 0) and the upper side must
  // still produce a usable function.
  auto proj = std::make_shared<const AgmsProjection>(5, 16, 21);
  SelfJoinSafeFunction fn(proj, RealVector(proj->dimension()), -1.0, 1.0);
  EXPECT_LT(fn.AtZero(), 0.0);
  // Small drift: quiescent; big drift: not.
  RealVector tiny(proj->dimension());
  tiny[0] = 0.01;
  EXPECT_LT(fn.Eval(tiny), 0.0);
  RealVector big(proj->dimension());
  for (size_t i = 0; i < big.dim(); ++i) big[i] = 10.0;
  EXPECT_GT(fn.Eval(big), 0.0);
}

TEST(JoinSafeFunction, ColdStartWithZeroReference) {
  auto proj = std::make_shared<const AgmsProjection>(5, 16, 23);
  JoinSafeFunction fn(proj, RealVector(2 * proj->dimension()), -1.0, 1.0);
  EXPECT_LT(fn.AtZero(), 0.0);
}

TEST(JoinSafeFunction, NegativeEstimateReference) {
  // Join estimates can be negative; thresholds then flip around a negative
  // center and the safe function must still be valid.
  Xoshiro256ss rng(29);
  auto proj = std::make_shared<const AgmsProjection>(5, 16, 25);
  const size_t dim = proj->dimension();
  // Craft a state with clearly negative join estimate: S2 = -S1.
  RealVector e(2 * dim);
  const RealVector base = ReferenceSketch(*proj, 1000, rng);
  for (size_t i = 0; i < dim; ++i) {
    e[i] = base[i];
    e[dim + i] = -base[i];
  }
  const double q = JoinEstimateConcatenated(*proj, e);
  ASSERT_LT(q, 0.0);
  const double margin = 0.3 * std::fabs(q);
  JoinSafeFunction fn(proj, e, q - margin, q + margin);
  EXPECT_LT(fn.AtZero(), 0.0);
  // Def 2.1 spot check, k = 2.
  const double scale = std::fabs(fn.AtZero()) / std::sqrt(32.0 * 5);
  int quiescent = 0;
  for (int t = 0; t < 800; ++t) {
    RealVector a = RandomVector(e.dim(), scale, rng);
    RealVector b = RandomVector(e.dim(), scale, rng);
    if (fn.Eval(a) + fn.Eval(b) > 0.0) continue;
    ++quiescent;
    RealVector avg = a;
    avg += b;
    avg *= 0.5;
    avg += e;
    const double global = JoinEstimateConcatenated(*proj, avg);
    ASSERT_GE(global, q - margin - 1e-6 * margin);
    ASSERT_LE(global, q + margin + 1e-6 * margin);
  }
  EXPECT_GT(quiescent, 10);
}

}  // namespace
}  // namespace fgm
