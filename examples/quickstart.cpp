// Quickstart: monitor a self-join (F2) query over a distributed stream
// with Functional Geometric Monitoring.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--updates=200000] [--sites=10] [--eps=0.1]
//
// The example generates a synthetic WorldCup-like trace, monitors query
// Q1 (self-join size of the CID frequency vector, via Fast-AGMS sketches)
// with the FGM protocol, and prints the communication cost next to the
// centralizing baseline.

#include <cstdio>

#include "driver/runner.h"
#include "stream/partition.h"
#include "stream/worldcup.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);
  const int sites = static_cast<int>(flags.GetInt("sites", 10));
  const int64_t updates = flags.GetInt("updates", 200000);
  const double eps = flags.GetDouble("eps", 0.1);

  // 1. A distributed stream: `sites` sites, one simulated day.
  fgm::WorldCupConfig wc;
  wc.sites = sites;
  wc.total_updates = updates;
  const std::vector<fgm::StreamRecord> trace = GenerateWorldCupTrace(wc);

  // 2. Monitoring configuration: Q1 over a 5x500 Fast-AGMS sketch,
  //    relative accuracy eps, cash-register model.
  fgm::RunConfig config;
  config.query = fgm::QueryKind::kSelfJoin;
  config.sites = sites;
  config.depth = 5;
  config.width = 500;
  config.epsilon = eps;
  config.check_every = 1000;  // verify the guarantee as we go

  std::printf("Monitoring Q1 (self-join) over %lld updates at %d sites, "
              "eps=%.3g\n\n",
              static_cast<long long>(updates), sites, eps);

  // 3. Run FGM and the baseline on the same stream.
  for (const fgm::ProtocolKind kind :
       {fgm::ProtocolKind::kFgm, fgm::ProtocolKind::kCentral}) {
    config.protocol = kind;
    const fgm::RunResult r = fgm::Run(config, trace);
    std::printf("%-8s comm.cost=%6.3f words/update  (up %.0f%%)  rounds=%lld"
                "  estimate=%.4g  truth=%.4g  max bound overshoot=%.2g\n",
                r.protocol_name.c_str(), r.comm_cost,
                100.0 * r.upstream_fraction,
                static_cast<long long>(r.rounds), r.final_estimate,
                r.final_truth, r.max_violation);
  }
  std::printf(
      "\nFGM answered the query within (1±%.3g) continuously, at a fraction "
      "of the cost of centralizing the stream.\n",
      eps);
  return 0;
}
