// Join monitoring (the paper's Q2 workload): the join size of HTML
// requests with non-HTML requests on client id,
//     σ_{TYPE=HTML}(R) ⋈_CID σ_{TYPE≠HTML}(R),
// tracked continuously over a distributed stream. The state vector is the
// concatenation of two Fast-AGMS sketches; the safe zone handles the
// indefinite (hyperbolic) product condition.
//
//   ./build/examples/join_monitoring [--updates=400000] [--sites=27]
//       [--eps=0.1] [--window=14400] [--width=150]

#include <cstdio>
#include <memory>

#include "core/fgm_protocol.h"
#include "query/query.h"
#include "stream/window.h"
#include "stream/worldcup.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);
  const int sites = static_cast<int>(flags.GetInt("sites", 27));
  const int64_t updates = flags.GetInt("updates", 400000);
  const double eps = flags.GetDouble("eps", 0.1);
  const double window = flags.GetDouble("window", 14400.0);
  const int width = static_cast<int>(flags.GetInt("width", 150));

  fgm::WorldCupConfig wc;
  wc.sites = sites;
  wc.total_updates = updates;
  const auto trace = GenerateWorldCupTrace(wc);

  auto projection =
      std::make_shared<const fgm::AgmsProjection>(5, width, /*seed=*/0xA66);
  fgm::JoinQuery query(projection, eps);

  fgm::FgmConfig config;
  config.optimizer = true;  // run the full FGM/O stack
  fgm::FgmProtocol protocol(&query, sites, config);

  fgm::RealVector truth(query.dimension());
  std::vector<fgm::CellUpdate> deltas;

  std::printf("Q2 join over a %.1fh sliding window, %d sites, eps=%.3g, "
              "two 5x%d sketches, FGM/O\n\n",
              window / 3600.0, sites, eps, width);
  std::printf("%12s %16s %16s %10s %8s %8s\n", "event", "FGM/O estimate",
              "exact Q2(S)", "rel.err", "rounds", "full-zone%");

  fgm::SlidingWindowStream events(&trace, window);
  int64_t n = 0;
  const int64_t report_every = updates / 8;
  while (const fgm::StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    deltas.clear();
    query.MapRecord(*rec, &deltas);
    for (const auto& u : deltas) {
      truth[u.index] += u.delta / static_cast<double>(sites);
    }
    if (++n % report_every == 0) {
      const double exact = query.Evaluate(truth);
      const double estimate = protocol.Estimate();
      std::printf("%12lld %16.6g %16.6g %9.2f%% %8lld %9.0f%%\n",
                  static_cast<long long>(n), estimate, exact,
                  exact != 0.0 ? 100.0 * (estimate - exact) / exact : 0.0,
                  static_cast<long long>(protocol.rounds()),
                  100.0 * protocol.mean_full_function_fraction());
    }
  }

  const fgm::TrafficStats& t = protocol.traffic();
  std::printf("\ncommunication: %lld words (%.3f words/update), "
              "%.1f%% upstream; the optimizer shipped the full safe zone "
              "in %.0f%% of site-rounds\n",
              static_cast<long long>(t.total_words()),
              static_cast<double>(t.total_words()) / static_cast<double>(n),
              100.0 * t.upstream_fraction(),
              100.0 * protocol.mean_full_function_fraction());
  return 0;
}
