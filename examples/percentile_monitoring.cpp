// Continuous p95 monitoring of response sizes over a sliding window —
// the "tail latency dashboard" use case. The quantile's rank conditions
// are linear in the histogram state, so the safe zone is just two
// halfspaces; FGM keeps the percentile bracketed within ±eps of the rank
// at a tiny fraction of the centralizing cost (the histogram has only
// `buckets` coordinates).
//
//   ./build/examples/percentile_monitoring [--updates=400000] [--sites=20]
//       [--phi=0.95] [--eps=0.01] [--window=7200] [--buckets=64]

#include <cstdio>

#include "core/fgm_protocol.h"
#include "query/quantile.h"
#include "stream/window.h"
#include "stream/worldcup.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);
  const int sites = static_cast<int>(flags.GetInt("sites", 20));
  const int64_t updates = flags.GetInt("updates", 400000);
  const double phi = flags.GetDouble("phi", 0.95);
  const double eps = flags.GetDouble("eps", 0.01);
  const double window = flags.GetDouble("window", 7200.0);
  const int buckets = static_cast<int>(flags.GetInt("buckets", 64));

  fgm::WorldCupConfig wc;
  wc.sites = sites;
  wc.total_updates = updates;
  const auto trace = GenerateWorldCupTrace(wc);

  fgm::QuantileQuery query(buckets, phi, eps);
  fgm::FgmConfig config;
  fgm::FgmProtocol protocol(&query, sites, config);

  fgm::RealVector truth(query.dimension());
  std::vector<fgm::CellUpdate> deltas;

  std::printf("p%.0f of response sizes over a %.1fh window, %d sites, "
              "rank accuracy ±%.0f%% of N\n\n",
              100 * phi, window / 3600.0, sites, 100 * eps);
  std::printf("%12s %16s %16s %18s\n", "event", "p95 bracket (KB)",
              "exact p95 (KB)", "inside bracket?");

  fgm::SlidingWindowStream events(&trace, window);
  int64_t n = 0, inside = 0, certified = 0;
  while (const fgm::StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    deltas.clear();
    query.MapRecord(*rec, &deltas);
    for (const auto& u : deltas) {
      truth[u.index] += u.delta / static_cast<double>(sites);
    }
    ++n;
    if (protocol.BoundsCertified()) {
      const fgm::ThresholdPair t = protocol.CurrentThresholds();
      const double q = query.Evaluate(truth);
      const bool ok = q >= t.lo && q <= t.hi;
      inside += ok;
      ++certified;
      if (n % (updates / 6) == 0 && t.hi < 1e200) {
        std::printf("%12lld [%7.1f, %7.1f] %16.1f %18s\n",
                    static_cast<long long>(n),
                    query.BucketValue(static_cast<int>(t.lo)),
                    query.BucketValue(static_cast<int>(t.hi)),
                    query.BucketValue(static_cast<int>(q)),
                    ok ? "yes" : "NO");
      }
    }
  }

  const fgm::TrafficStats& t = protocol.traffic();
  std::printf("\nguarantee held at %lld / %lld certified events; "
              "communication %.4f words/update (centralizing = 1.0), "
              "%lld rounds\n",
              static_cast<long long>(inside),
              static_cast<long long>(certified),
              static_cast<double>(t.total_words()) / static_cast<double>(n),
              static_cast<long long>(protocol.rounds()));
  return 0;
}
