// Simultaneous monitoring of two different queries — the self-join size
// (over a Fast-AGMS sketch) and the variance of response sizes — with a
// SINGLE FGM instance, via safe-function composition (Thm 2.2): the
// combined safe zone is the intersection of the members', so one round
// structure, one set of counters and one drift flush guarantee both
// (1±eps) bounds at once.
//
//   ./build/examples/multiquery_monitoring [--updates=300000] [--sites=10]
//       [--eps=0.1] [--window=6000]

#include <cstdio>
#include <memory>

#include "core/fgm_protocol.h"
#include "query/multi.h"
#include "query/variance.h"
#include "stream/window.h"
#include "stream/worldcup.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);
  const int sites = static_cast<int>(flags.GetInt("sites", 10));
  const int64_t updates = flags.GetInt("updates", 300000);
  const double eps = flags.GetDouble("eps", 0.1);
  const double window = flags.GetDouble("window", 6000.0);

  fgm::WorldCupConfig wc;
  wc.sites = sites;
  wc.total_updates = updates;
  wc.duration = 20000.0;
  const auto trace = GenerateWorldCupTrace(wc);

  auto projection =
      std::make_shared<const fgm::AgmsProjection>(5, 60, /*seed=*/0xA67);
  std::vector<std::unique_ptr<fgm::ContinuousQuery>> members;
  members.push_back(std::make_unique<fgm::SelfJoinQuery>(projection, eps));
  members.push_back(std::make_unique<fgm::VarianceQuery>(eps));
  fgm::MultiQuery multi(std::move(members));

  fgm::FgmConfig config;
  fgm::FgmProtocol protocol(&multi, sites, config);

  fgm::RealVector truth(multi.dimension());
  std::vector<fgm::CellUpdate> deltas;

  std::printf("Monitoring %s with one FGM instance, %d sites, eps=%.3g, "
              "TW=%.0fs\n\n",
              multi.name().c_str(), sites, eps, window);
  std::printf("%12s | %14s %14s | %12s %12s\n", "event", "selfjoin est",
              "selfjoin exact", "variance est", "var exact");

  fgm::SlidingWindowStream events(&trace, window);
  int64_t n = 0;
  while (const fgm::StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    deltas.clear();
    multi.MapRecord(*rec, &deltas);
    for (const auto& u : deltas) {
      truth[u.index] += u.delta / static_cast<double>(sites);
    }
    if (++n % (updates / 6) == 0) {
      const fgm::RealVector& e = protocol.GlobalEstimate();
      std::printf("%12lld | %14.6g %14.6g | %12.5g %12.5g\n",
                  static_cast<long long>(n), multi.EvaluateMember(0, e),
                  multi.EvaluateMember(0, truth),
                  multi.EvaluateMember(1, e),
                  multi.EvaluateMember(1, truth));
    }
  }

  const fgm::TrafficStats& t = protocol.traffic();
  std::printf("\nboth guarantees held simultaneously; communication "
              "%.3f words/update, %lld rounds\n",
              static_cast<double>(t.total_words()) / static_cast<double>(n),
              static_cast<long long>(protocol.rounds()));
  return 0;
}
