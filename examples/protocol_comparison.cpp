// Side-by-side comparison of every monitoring protocol in the library on
// one workload: centralizing baseline, classic GM, FGM without
// rebalancing, FGM, and FGM/O.
//
//   ./build/examples/protocol_comparison [--updates=400000] [--sites=27]
//       [--eps=0.1] [--window=14400] [--query=selfjoin|join]
//       [--strict_wire]
//
// --strict_wire routes every protocol message through the serializing
// transport (encode → size-check → decode → verify); the reported costs
// are identical either way — that is the point of the check.

#include <cstdio>
#include <string>

#include "driver/runner.h"
#include "stream/worldcup.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);
  const int sites = static_cast<int>(flags.GetInt("sites", 27));
  const int64_t updates = flags.GetInt("updates", 400000);
  const double eps = flags.GetDouble("eps", 0.1);
  const double window = flags.GetDouble("window", 14400.0);
  const std::string query_name = flags.GetString("query", "selfjoin");
  const bool strict_wire = flags.GetBool("strict_wire", false);

  fgm::WorldCupConfig wc;
  wc.sites = sites;
  wc.total_updates = updates;
  const auto trace = GenerateWorldCupTrace(wc);

  fgm::RunConfig config;
  config.query = query_name == "join" ? fgm::QueryKind::kJoin
                                      : fgm::QueryKind::kSelfJoin;
  config.sites = sites;
  config.depth = 5;
  config.width = query_name == "join" ? 150 : 300;
  config.epsilon = eps;
  config.window_seconds = window;
  config.check_every = 5000;
  config.strict_wire = strict_wire;

  std::printf("Protocol comparison on %s, %lld updates, %d sites, "
              "eps=%.3g, TW=%.1fh%s\n",
              query_name.c_str(), static_cast<long long>(updates), sites,
              eps, window / 3600.0,
              strict_wire ? ", strict wire accounting" : "");

  fgm::TablePrinter table({"protocol", "comm.cost (words/update)",
                           "upstream%", "rounds", "estimate", "truth",
                           "bound overshoot"});
  for (const fgm::ProtocolKind kind :
       {fgm::ProtocolKind::kCentral, fgm::ProtocolKind::kGm,
        fgm::ProtocolKind::kFgmBasic, fgm::ProtocolKind::kFgm,
        fgm::ProtocolKind::kFgmOpt}) {
    config.protocol = kind;
    const fgm::RunResult r = fgm::Run(config, trace);
    table.AddRow({r.protocol_name,
                  fgm::TablePrinter::Cell(r.comm_cost),
                  fgm::TablePrinter::Cell(100.0 * r.upstream_fraction),
                  fgm::TablePrinter::Cell(r.rounds),
                  fgm::TablePrinter::Cell(r.final_estimate),
                  fgm::TablePrinter::Cell(r.final_truth),
                  fgm::TablePrinter::Cell(r.max_violation)});
  }
  table.Print();
  std::printf("\nAll protocols answer Q within (1±%.3g) of the sketch "
              "value continuously; they differ only in the words moved.\n",
              eps);
  return 0;
}
