// Self-join monitoring over a sliding window (the paper's Q1 workload).
//
// Monitors the self-join size R ⋈_CID R of the last `--window` seconds of
// a distributed web-request stream, printing the coordinator's running
// estimate next to the exact value at regular checkpoints, then the final
// communication bill.
//
//   ./build/examples/selfjoin_monitoring [--updates=400000] [--sites=27]
//       [--eps=0.1] [--window=14400] [--width=300]

#include <cstdio>
#include <memory>

#include "core/fgm_protocol.h"
#include "query/query.h"
#include "stream/window.h"
#include "stream/worldcup.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);
  const int sites = static_cast<int>(flags.GetInt("sites", 27));
  const int64_t updates = flags.GetInt("updates", 400000);
  const double eps = flags.GetDouble("eps", 0.1);
  const double window = flags.GetDouble("window", 14400.0);
  const int width = static_cast<int>(flags.GetInt("width", 300));

  fgm::WorldCupConfig wc;
  wc.sites = sites;
  wc.total_updates = updates;
  const auto trace = GenerateWorldCupTrace(wc);

  // The query owns the sketch projection; every site and the coordinator
  // share it, so drift vectors add up linearly.
  auto projection =
      std::make_shared<const fgm::AgmsProjection>(5, width, /*seed=*/0xA65);
  fgm::SelfJoinQuery query(projection, eps);

  fgm::FgmConfig config;  // rebalancing on, optimizer off
  fgm::FgmProtocol protocol(&query, sites, config);

  // Exact reference state, maintained outside the protocol for display.
  fgm::RealVector truth(query.dimension());
  std::vector<fgm::CellUpdate> deltas;

  std::printf("Q1 self-join over a %.1fh sliding window, %d sites, "
              "eps=%.3g, sketch 5x%d\n\n",
              window / 3600.0, sites, eps, width);
  std::printf("%12s %16s %16s %10s %9s\n", "event", "FGM estimate",
              "exact Q1(S)", "rel.err", "rounds");

  fgm::SlidingWindowStream events(&trace, window);
  int64_t n = 0;
  const int64_t report_every = updates / 8;
  while (const fgm::StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    deltas.clear();
    query.MapRecord(*rec, &deltas);
    for (const auto& u : deltas) {
      truth[u.index] += u.delta / static_cast<double>(sites);
    }
    if (++n % report_every == 0) {
      const double exact = query.Evaluate(truth);
      const double estimate = protocol.Estimate();
      std::printf("%12lld %16.6g %16.6g %9.2f%% %9lld\n",
                  static_cast<long long>(n), estimate, exact,
                  exact != 0.0 ? 100.0 * (estimate - exact) / exact : 0.0,
                  static_cast<long long>(protocol.rounds()));
    }
  }

  const fgm::TrafficStats& t = protocol.traffic();
  std::printf("\nstream events: %lld (inserts %lld, window deletes %lld)\n",
              static_cast<long long>(n), static_cast<long long>(events.inserts()),
              static_cast<long long>(events.deletes()));
  std::printf("communication: %lld words total (%.3f words/update), "
              "%.1f%% upstream\n",
              static_cast<long long>(t.total_words()),
              static_cast<double>(t.total_words()) / static_cast<double>(n),
              100.0 * t.upstream_fraction());
  std::printf("rounds: %lld, subrounds: %lld, rebalances: %lld\n",
              static_cast<long long>(protocol.rounds()),
              static_cast<long long>(protocol.subrounds()),
              static_cast<long long>(protocol.rebalances()));
  return 0;
}
