// F_p-moment monitoring of an explicit frequency vector (paper §3).
//
// Tracks ‖S‖_2 of a distributed frequency vector within (1±eps), using
// the two-sided safe function of §3.0.3 (max of a tangent halfspace and a
// ball) so the stream may contain deletions. Demonstrates safe-function
// composition (Theorem 2.2) on the simplest non-sketch query.
//
//   ./build/examples/fp_monitoring [--updates=300000] [--sites=8]
//       [--eps=0.05] [--dim=64] [--window=6000]

#include <cstdio>

#include "core/fgm_protocol.h"
#include "query/query.h"
#include "stream/window.h"
#include "stream/worldcup.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);
  const int sites = static_cast<int>(flags.GetInt("sites", 8));
  const int64_t updates = flags.GetInt("updates", 300000);
  const double eps = flags.GetDouble("eps", 0.05);
  const size_t dim = static_cast<size_t>(flags.GetInt("dim", 64));
  const double window = flags.GetDouble("window", 6000.0);

  fgm::WorldCupConfig wc;
  wc.sites = sites;
  wc.total_updates = updates;
  wc.duration = 20000.0;
  const auto trace = GenerateWorldCupTrace(wc);

  fgm::FpNormQuery query(dim, /*p=*/2.0, eps,
                         fgm::FpNormQuery::Mode::kTwoSided);
  fgm::FgmConfig config;
  fgm::FgmProtocol protocol(&query, sites, config);

  fgm::RealVector truth(dim);
  std::vector<fgm::CellUpdate> deltas;

  std::printf("F2 norm of a %zu-dim frequency vector, %d sites, eps=%.3g, "
              "turnstile window %.0fs\n\n",
              dim, sites, eps, window);
  std::printf("%12s %14s %14s %10s\n", "event", "estimate", "exact",
              "rel.err");

  fgm::SlidingWindowStream events(&trace, window);
  int64_t n = 0;
  while (const fgm::StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    deltas.clear();
    query.MapRecord(*rec, &deltas);
    for (const auto& u : deltas) {
      truth[u.index] += u.delta / static_cast<double>(sites);
    }
    if (++n % (updates / 6) == 0) {
      const double exact = query.Evaluate(truth);
      const double estimate = protocol.Estimate();
      std::printf("%12lld %14.6g %14.6g %9.2f%%\n",
                  static_cast<long long>(n), estimate, exact,
                  exact != 0.0 ? 100.0 * (estimate - exact) / exact : 0.0);
    }
  }

  const fgm::TrafficStats& t = protocol.traffic();
  std::printf("\ncommunication: %.3f words/update (centralizing = 1.0), "
              "%lld rounds, %lld rebalances\n",
              static_cast<double>(t.total_words()) / static_cast<double>(n),
              static_cast<long long>(protocol.rounds()),
              static_cast<long long>(protocol.rebalances()));
  return 0;
}
