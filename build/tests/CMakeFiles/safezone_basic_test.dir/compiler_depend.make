# Empty compiler generated dependencies file for safezone_basic_test.
# This may be replaced when dependencies are built.
