file(REMOVE_RECURSE
  "CMakeFiles/safezone_basic_test.dir/safezone_basic_test.cc.o"
  "CMakeFiles/safezone_basic_test.dir/safezone_basic_test.cc.o.d"
  "safezone_basic_test"
  "safezone_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safezone_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
