file(REMOVE_RECURSE
  "CMakeFiles/variability_test.dir/variability_test.cc.o"
  "CMakeFiles/variability_test.dir/variability_test.cc.o.d"
  "variability_test"
  "variability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
