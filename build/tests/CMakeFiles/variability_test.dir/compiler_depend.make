# Empty compiler generated dependencies file for variability_test.
# This may be replaced when dependencies are built.
