file(REMOVE_RECURSE
  "CMakeFiles/safezone_sketch_test.dir/safezone_sketch_test.cc.o"
  "CMakeFiles/safezone_sketch_test.dir/safezone_sketch_test.cc.o.d"
  "safezone_sketch_test"
  "safezone_sketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safezone_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
