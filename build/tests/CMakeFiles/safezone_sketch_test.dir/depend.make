# Empty dependencies file for safezone_sketch_test.
# This may be replaced when dependencies are built.
