
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transport_test.cc" "tests/CMakeFiles/transport_test.dir/transport_test.cc.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/fgm_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fgm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gm/CMakeFiles/fgm_gm.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fgm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fgm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/safezone/CMakeFiles/fgm_safezone.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/fgm_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/fgm_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fgm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fgm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
