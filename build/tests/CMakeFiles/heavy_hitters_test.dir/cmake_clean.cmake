file(REMOVE_RECURSE
  "CMakeFiles/heavy_hitters_test.dir/heavy_hitters_test.cc.o"
  "CMakeFiles/heavy_hitters_test.dir/heavy_hitters_test.cc.o.d"
  "heavy_hitters_test"
  "heavy_hitters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heavy_hitters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
