file(REMOVE_RECURSE
  "CMakeFiles/fgm_site_test.dir/fgm_site_test.cc.o"
  "CMakeFiles/fgm_site_test.dir/fgm_site_test.cc.o.d"
  "fgm_site_test"
  "fgm_site_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_site_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
