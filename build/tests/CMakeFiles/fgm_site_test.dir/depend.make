# Empty dependencies file for fgm_site_test.
# This may be replaced when dependencies are built.
