file(REMOVE_RECURSE
  "CMakeFiles/fp_monitoring_test.dir/fp_monitoring_test.cc.o"
  "CMakeFiles/fp_monitoring_test.dir/fp_monitoring_test.cc.o.d"
  "fp_monitoring_test"
  "fp_monitoring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_monitoring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
