# Empty compiler generated dependencies file for fp_monitoring_test.
# This may be replaced when dependencies are built.
