# Empty dependencies file for multiquery_monitoring.
# This may be replaced when dependencies are built.
