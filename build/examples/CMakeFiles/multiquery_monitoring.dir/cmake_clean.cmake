file(REMOVE_RECURSE
  "CMakeFiles/multiquery_monitoring.dir/multiquery_monitoring.cpp.o"
  "CMakeFiles/multiquery_monitoring.dir/multiquery_monitoring.cpp.o.d"
  "multiquery_monitoring"
  "multiquery_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiquery_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
