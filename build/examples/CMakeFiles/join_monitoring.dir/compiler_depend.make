# Empty compiler generated dependencies file for join_monitoring.
# This may be replaced when dependencies are built.
