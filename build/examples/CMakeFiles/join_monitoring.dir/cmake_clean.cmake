file(REMOVE_RECURSE
  "CMakeFiles/join_monitoring.dir/join_monitoring.cpp.o"
  "CMakeFiles/join_monitoring.dir/join_monitoring.cpp.o.d"
  "join_monitoring"
  "join_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
