file(REMOVE_RECURSE
  "CMakeFiles/percentile_monitoring.dir/percentile_monitoring.cpp.o"
  "CMakeFiles/percentile_monitoring.dir/percentile_monitoring.cpp.o.d"
  "percentile_monitoring"
  "percentile_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/percentile_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
