# Empty compiler generated dependencies file for percentile_monitoring.
# This may be replaced when dependencies are built.
