file(REMOVE_RECURSE
  "CMakeFiles/selfjoin_monitoring.dir/selfjoin_monitoring.cpp.o"
  "CMakeFiles/selfjoin_monitoring.dir/selfjoin_monitoring.cpp.o.d"
  "selfjoin_monitoring"
  "selfjoin_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfjoin_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
