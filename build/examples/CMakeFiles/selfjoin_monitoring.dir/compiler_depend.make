# Empty compiler generated dependencies file for selfjoin_monitoring.
# This may be replaced when dependencies are built.
