file(REMOVE_RECURSE
  "CMakeFiles/fp_monitoring.dir/fp_monitoring.cpp.o"
  "CMakeFiles/fp_monitoring.dir/fp_monitoring.cpp.o.d"
  "fp_monitoring"
  "fp_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
