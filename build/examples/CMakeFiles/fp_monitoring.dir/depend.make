# Empty dependencies file for fp_monitoring.
# This may be replaced when dependencies are built.
