file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_quiescent.dir/bench_fig1_quiescent.cc.o"
  "CMakeFiles/bench_fig1_quiescent.dir/bench_fig1_quiescent.cc.o.d"
  "bench_fig1_quiescent"
  "bench_fig1_quiescent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_quiescent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
