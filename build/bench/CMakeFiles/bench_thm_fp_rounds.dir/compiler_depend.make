# Empty compiler generated dependencies file for bench_thm_fp_rounds.
# This may be replaced when dependencies are built.
