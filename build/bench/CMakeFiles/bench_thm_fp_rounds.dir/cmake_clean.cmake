file(REMOVE_RECURSE
  "CMakeFiles/bench_thm_fp_rounds.dir/bench_thm_fp_rounds.cc.o"
  "CMakeFiles/bench_thm_fp_rounds.dir/bench_thm_fp_rounds.cc.o.d"
  "bench_thm_fp_rounds"
  "bench_thm_fp_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm_fp_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
