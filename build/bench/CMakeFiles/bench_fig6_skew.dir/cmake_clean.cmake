file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_skew.dir/bench_fig6_skew.cc.o"
  "CMakeFiles/bench_fig6_skew.dir/bench_fig6_skew.cc.o.d"
  "bench_fig6_skew"
  "bench_fig6_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
