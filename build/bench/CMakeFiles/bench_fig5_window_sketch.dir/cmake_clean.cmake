file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_window_sketch.dir/bench_fig5_window_sketch.cc.o"
  "CMakeFiles/bench_fig5_window_sketch.dir/bench_fig5_window_sketch.cc.o.d"
  "bench_fig5_window_sketch"
  "bench_fig5_window_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_window_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
