# Empty compiler generated dependencies file for bench_fig5_window_sketch.
# This may be replaced when dependencies are built.
