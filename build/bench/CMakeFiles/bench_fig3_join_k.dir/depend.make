# Empty dependencies file for bench_fig3_join_k.
# This may be replaced when dependencies are built.
