file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_adverse.dir/bench_fig4_adverse.cc.o"
  "CMakeFiles/bench_fig4_adverse.dir/bench_fig4_adverse.cc.o.d"
  "bench_fig4_adverse"
  "bench_fig4_adverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_adverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
