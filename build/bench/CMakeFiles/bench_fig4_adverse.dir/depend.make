# Empty dependencies file for bench_fig4_adverse.
# This may be replaced when dependencies are built.
