file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_selfjoin_k.dir/bench_fig2_selfjoin_k.cc.o"
  "CMakeFiles/bench_fig2_selfjoin_k.dir/bench_fig2_selfjoin_k.cc.o.d"
  "bench_fig2_selfjoin_k"
  "bench_fig2_selfjoin_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_selfjoin_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
