# Empty compiler generated dependencies file for bench_fig2_selfjoin_k.
# This may be replaced when dependencies are built.
