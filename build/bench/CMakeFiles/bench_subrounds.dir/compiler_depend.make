# Empty compiler generated dependencies file for bench_subrounds.
# This may be replaced when dependencies are built.
