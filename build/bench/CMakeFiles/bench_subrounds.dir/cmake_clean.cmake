file(REMOVE_RECURSE
  "CMakeFiles/bench_subrounds.dir/bench_subrounds.cc.o"
  "CMakeFiles/bench_subrounds.dir/bench_subrounds.cc.o.d"
  "bench_subrounds"
  "bench_subrounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subrounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
