file(REMOVE_RECURSE
  "CMakeFiles/fgm_core.dir/fgm_protocol.cc.o"
  "CMakeFiles/fgm_core.dir/fgm_protocol.cc.o.d"
  "CMakeFiles/fgm_core.dir/fgm_site.cc.o"
  "CMakeFiles/fgm_core.dir/fgm_site.cc.o.d"
  "CMakeFiles/fgm_core.dir/optimizer.cc.o"
  "CMakeFiles/fgm_core.dir/optimizer.cc.o.d"
  "libfgm_core.a"
  "libfgm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
