# Empty dependencies file for fgm_core.
# This may be replaced when dependencies are built.
