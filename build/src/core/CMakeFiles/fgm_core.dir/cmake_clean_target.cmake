file(REMOVE_RECURSE
  "libfgm_core.a"
)
