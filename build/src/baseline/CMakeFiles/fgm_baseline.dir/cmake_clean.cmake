file(REMOVE_RECURSE
  "CMakeFiles/fgm_baseline.dir/central.cc.o"
  "CMakeFiles/fgm_baseline.dir/central.cc.o.d"
  "libfgm_baseline.a"
  "libfgm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
