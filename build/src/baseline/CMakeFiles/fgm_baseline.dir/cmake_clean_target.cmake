file(REMOVE_RECURSE
  "libfgm_baseline.a"
)
