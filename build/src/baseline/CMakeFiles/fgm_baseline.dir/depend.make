# Empty dependencies file for fgm_baseline.
# This may be replaced when dependencies are built.
