file(REMOVE_RECURSE
  "libfgm_driver.a"
)
