# Empty compiler generated dependencies file for fgm_driver.
# This may be replaced when dependencies are built.
