file(REMOVE_RECURSE
  "CMakeFiles/fgm_driver.dir/runner.cc.o"
  "CMakeFiles/fgm_driver.dir/runner.cc.o.d"
  "libfgm_driver.a"
  "libfgm_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
