
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/fgm_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/fgm_net.dir/network.cc.o.d"
  "/root/repo/src/net/transport.cc" "src/net/CMakeFiles/fgm_net.dir/transport.cc.o" "gcc" "src/net/CMakeFiles/fgm_net.dir/transport.cc.o.d"
  "/root/repo/src/net/wire.cc" "src/net/CMakeFiles/fgm_net.dir/wire.cc.o" "gcc" "src/net/CMakeFiles/fgm_net.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fgm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/fgm_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/safezone/CMakeFiles/fgm_safezone.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/fgm_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
