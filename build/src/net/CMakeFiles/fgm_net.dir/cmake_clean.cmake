file(REMOVE_RECURSE
  "CMakeFiles/fgm_net.dir/network.cc.o"
  "CMakeFiles/fgm_net.dir/network.cc.o.d"
  "CMakeFiles/fgm_net.dir/transport.cc.o"
  "CMakeFiles/fgm_net.dir/transport.cc.o.d"
  "CMakeFiles/fgm_net.dir/wire.cc.o"
  "CMakeFiles/fgm_net.dir/wire.cc.o.d"
  "libfgm_net.a"
  "libfgm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
