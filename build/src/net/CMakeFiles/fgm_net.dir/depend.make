# Empty dependencies file for fgm_net.
# This may be replaced when dependencies are built.
