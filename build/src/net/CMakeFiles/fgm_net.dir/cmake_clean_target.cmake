file(REMOVE_RECURSE
  "libfgm_net.a"
)
