file(REMOVE_RECURSE
  "CMakeFiles/fgm_safezone.dir/ball.cc.o"
  "CMakeFiles/fgm_safezone.dir/ball.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/cheap_bound.cc.o"
  "CMakeFiles/fgm_safezone.dir/cheap_bound.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/compose.cc.o"
  "CMakeFiles/fgm_safezone.dir/compose.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/halfspace.cc.o"
  "CMakeFiles/fgm_safezone.dir/halfspace.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/heavy_hitters_sz.cc.o"
  "CMakeFiles/fgm_safezone.dir/heavy_hitters_sz.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/join_sz.cc.o"
  "CMakeFiles/fgm_safezone.dir/join_sz.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/lifted.cc.o"
  "CMakeFiles/fgm_safezone.dir/lifted.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/median_compose.cc.o"
  "CMakeFiles/fgm_safezone.dir/median_compose.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/norm_threshold.cc.o"
  "CMakeFiles/fgm_safezone.dir/norm_threshold.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/safe_function.cc.o"
  "CMakeFiles/fgm_safezone.dir/safe_function.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/selfjoin_sz.cc.o"
  "CMakeFiles/fgm_safezone.dir/selfjoin_sz.cc.o.d"
  "CMakeFiles/fgm_safezone.dir/variance_sz.cc.o"
  "CMakeFiles/fgm_safezone.dir/variance_sz.cc.o.d"
  "libfgm_safezone.a"
  "libfgm_safezone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_safezone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
