file(REMOVE_RECURSE
  "libfgm_safezone.a"
)
