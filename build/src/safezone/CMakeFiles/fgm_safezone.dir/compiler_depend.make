# Empty compiler generated dependencies file for fgm_safezone.
# This may be replaced when dependencies are built.
