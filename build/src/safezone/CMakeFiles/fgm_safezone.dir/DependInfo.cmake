
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/safezone/ball.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/ball.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/ball.cc.o.d"
  "/root/repo/src/safezone/cheap_bound.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/cheap_bound.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/cheap_bound.cc.o.d"
  "/root/repo/src/safezone/compose.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/compose.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/compose.cc.o.d"
  "/root/repo/src/safezone/halfspace.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/halfspace.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/halfspace.cc.o.d"
  "/root/repo/src/safezone/heavy_hitters_sz.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/heavy_hitters_sz.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/heavy_hitters_sz.cc.o.d"
  "/root/repo/src/safezone/join_sz.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/join_sz.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/join_sz.cc.o.d"
  "/root/repo/src/safezone/lifted.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/lifted.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/lifted.cc.o.d"
  "/root/repo/src/safezone/median_compose.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/median_compose.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/median_compose.cc.o.d"
  "/root/repo/src/safezone/norm_threshold.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/norm_threshold.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/norm_threshold.cc.o.d"
  "/root/repo/src/safezone/safe_function.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/safe_function.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/safe_function.cc.o.d"
  "/root/repo/src/safezone/selfjoin_sz.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/selfjoin_sz.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/selfjoin_sz.cc.o.d"
  "/root/repo/src/safezone/variance_sz.cc" "src/safezone/CMakeFiles/fgm_safezone.dir/variance_sz.cc.o" "gcc" "src/safezone/CMakeFiles/fgm_safezone.dir/variance_sz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/fgm_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
