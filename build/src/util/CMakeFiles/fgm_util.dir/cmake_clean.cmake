file(REMOVE_RECURSE
  "CMakeFiles/fgm_util.dir/flags.cc.o"
  "CMakeFiles/fgm_util.dir/flags.cc.o.d"
  "CMakeFiles/fgm_util.dir/hash.cc.o"
  "CMakeFiles/fgm_util.dir/hash.cc.o.d"
  "CMakeFiles/fgm_util.dir/real_vector.cc.o"
  "CMakeFiles/fgm_util.dir/real_vector.cc.o.d"
  "CMakeFiles/fgm_util.dir/rng.cc.o"
  "CMakeFiles/fgm_util.dir/rng.cc.o.d"
  "CMakeFiles/fgm_util.dir/stats.cc.o"
  "CMakeFiles/fgm_util.dir/stats.cc.o.d"
  "CMakeFiles/fgm_util.dir/subsets.cc.o"
  "CMakeFiles/fgm_util.dir/subsets.cc.o.d"
  "CMakeFiles/fgm_util.dir/table.cc.o"
  "CMakeFiles/fgm_util.dir/table.cc.o.d"
  "libfgm_util.a"
  "libfgm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
