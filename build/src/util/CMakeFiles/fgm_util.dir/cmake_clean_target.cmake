file(REMOVE_RECURSE
  "libfgm_util.a"
)
