# Empty compiler generated dependencies file for fgm_util.
# This may be replaced when dependencies are built.
