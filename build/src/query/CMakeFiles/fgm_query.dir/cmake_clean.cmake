file(REMOVE_RECURSE
  "CMakeFiles/fgm_query.dir/heavy_hitters.cc.o"
  "CMakeFiles/fgm_query.dir/heavy_hitters.cc.o.d"
  "CMakeFiles/fgm_query.dir/multi.cc.o"
  "CMakeFiles/fgm_query.dir/multi.cc.o.d"
  "CMakeFiles/fgm_query.dir/oneshot.cc.o"
  "CMakeFiles/fgm_query.dir/oneshot.cc.o.d"
  "CMakeFiles/fgm_query.dir/quantile.cc.o"
  "CMakeFiles/fgm_query.dir/quantile.cc.o.d"
  "CMakeFiles/fgm_query.dir/query.cc.o"
  "CMakeFiles/fgm_query.dir/query.cc.o.d"
  "CMakeFiles/fgm_query.dir/variance.cc.o"
  "CMakeFiles/fgm_query.dir/variance.cc.o.d"
  "libfgm_query.a"
  "libfgm_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
