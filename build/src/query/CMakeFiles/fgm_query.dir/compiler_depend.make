# Empty compiler generated dependencies file for fgm_query.
# This may be replaced when dependencies are built.
