
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/heavy_hitters.cc" "src/query/CMakeFiles/fgm_query.dir/heavy_hitters.cc.o" "gcc" "src/query/CMakeFiles/fgm_query.dir/heavy_hitters.cc.o.d"
  "/root/repo/src/query/multi.cc" "src/query/CMakeFiles/fgm_query.dir/multi.cc.o" "gcc" "src/query/CMakeFiles/fgm_query.dir/multi.cc.o.d"
  "/root/repo/src/query/oneshot.cc" "src/query/CMakeFiles/fgm_query.dir/oneshot.cc.o" "gcc" "src/query/CMakeFiles/fgm_query.dir/oneshot.cc.o.d"
  "/root/repo/src/query/quantile.cc" "src/query/CMakeFiles/fgm_query.dir/quantile.cc.o" "gcc" "src/query/CMakeFiles/fgm_query.dir/quantile.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/fgm_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/fgm_query.dir/query.cc.o.d"
  "/root/repo/src/query/variance.cc" "src/query/CMakeFiles/fgm_query.dir/variance.cc.o" "gcc" "src/query/CMakeFiles/fgm_query.dir/variance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/fgm_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/safezone/CMakeFiles/fgm_safezone.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/fgm_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
