file(REMOVE_RECURSE
  "libfgm_query.a"
)
