
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/drift_stream.cc" "src/stream/CMakeFiles/fgm_stream.dir/drift_stream.cc.o" "gcc" "src/stream/CMakeFiles/fgm_stream.dir/drift_stream.cc.o.d"
  "/root/repo/src/stream/partition.cc" "src/stream/CMakeFiles/fgm_stream.dir/partition.cc.o" "gcc" "src/stream/CMakeFiles/fgm_stream.dir/partition.cc.o.d"
  "/root/repo/src/stream/window.cc" "src/stream/CMakeFiles/fgm_stream.dir/window.cc.o" "gcc" "src/stream/CMakeFiles/fgm_stream.dir/window.cc.o.d"
  "/root/repo/src/stream/worldcup.cc" "src/stream/CMakeFiles/fgm_stream.dir/worldcup.cc.o" "gcc" "src/stream/CMakeFiles/fgm_stream.dir/worldcup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
