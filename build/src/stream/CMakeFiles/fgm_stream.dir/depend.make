# Empty dependencies file for fgm_stream.
# This may be replaced when dependencies are built.
