file(REMOVE_RECURSE
  "libfgm_stream.a"
)
