file(REMOVE_RECURSE
  "CMakeFiles/fgm_stream.dir/drift_stream.cc.o"
  "CMakeFiles/fgm_stream.dir/drift_stream.cc.o.d"
  "CMakeFiles/fgm_stream.dir/partition.cc.o"
  "CMakeFiles/fgm_stream.dir/partition.cc.o.d"
  "CMakeFiles/fgm_stream.dir/window.cc.o"
  "CMakeFiles/fgm_stream.dir/window.cc.o.d"
  "CMakeFiles/fgm_stream.dir/worldcup.cc.o"
  "CMakeFiles/fgm_stream.dir/worldcup.cc.o.d"
  "libfgm_stream.a"
  "libfgm_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
