file(REMOVE_RECURSE
  "libfgm_gm.a"
)
