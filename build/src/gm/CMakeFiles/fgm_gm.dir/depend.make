# Empty dependencies file for fgm_gm.
# This may be replaced when dependencies are built.
