file(REMOVE_RECURSE
  "CMakeFiles/fgm_gm.dir/gm_protocol.cc.o"
  "CMakeFiles/fgm_gm.dir/gm_protocol.cc.o.d"
  "libfgm_gm.a"
  "libfgm_gm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_gm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
