file(REMOVE_RECURSE
  "CMakeFiles/fgm_sketch.dir/fast_agms.cc.o"
  "CMakeFiles/fgm_sketch.dir/fast_agms.cc.o.d"
  "libfgm_sketch.a"
  "libfgm_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgm_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
