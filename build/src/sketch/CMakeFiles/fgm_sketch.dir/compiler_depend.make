# Empty compiler generated dependencies file for fgm_sketch.
# This may be replaced when dependencies are built.
