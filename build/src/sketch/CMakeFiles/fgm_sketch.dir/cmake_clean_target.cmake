file(REMOVE_RECURSE
  "libfgm_sketch.a"
)
