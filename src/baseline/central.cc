#include "baseline/central.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fgm {

CentralProtocol::CentralProtocol(const ContinuousQuery* query, int num_sites,
                                 TransportMode transport, TraceSink* trace,
                                 MetricsRegistry* metrics,
                                 const sim::NetSimConfig& net)
    : query_(query),
      sites_k_(num_sites),
      transport_(net.enabled()
                     ? std::make_unique<sim::EventNetwork>(num_sites, net)
                     : MakeTransport(transport, num_sites)),
      state_(query->dimension()) {
  FGM_CHECK(query != nullptr);
  FGM_CHECK_GE(num_sites, 1);
  // The baseline forwards from every site on every record; a fault plan
  // would make that contact a protocol error (no crash handshake here).
  FGM_CHECK(net.fault_plan.empty());
  if (net.enabled()) {
    sim_ = static_cast<sim::EventNetwork*>(transport_.get());
  }
  if (trace != nullptr) transport_->set_trace(trace);
  if (metrics != nullptr) {
    transport_->set_metrics(metrics);
    sketch_timer_ = metrics->GetTimer("sketch_update");
  }
}

void CentralProtocol::ProcessRecord(const StreamRecord& record) {
  FGM_CHECK(record.site >= 0 && record.site < sites_k_);
  if (sim_ != nullptr) sim_->Advance(1);
  // The update crosses the wire verbatim; the coordinator projects the
  // DELIVERED record (normally 1 word; 2 for keys beyond 62 bits).
  const RawUpdateMsg delivered = transport_->SendRawUpdate(
      record.site, RawUpdateMsg::FromRecord(record));
  delta_scratch_.clear();
  {
    ScopedTimer timed(sketch_timer_);
    query_->MapRecord(delivered.ToRecord(record.site), &delta_scratch_);
  }
  // Global state is the *average* of local states (§2.1): each update
  // contributes its deltas scaled by 1/k.
  const double inv_k = 1.0 / static_cast<double>(sites_k_);
  for (const CellUpdate& u : delta_scratch_) {
    state_[u.index] += inv_k * u.delta;
  }
}

double CentralProtocol::Estimate() const { return query_->Evaluate(state_); }

ThresholdPair CentralProtocol::CurrentThresholds() const {
  const double q = Estimate();
  return ThresholdPair{q, q};
}

}  // namespace fgm
