// Centralizing baseline: every stream update is forwarded to the
// coordinator verbatim (one word per update, downstream only).
//
// This is the method any monitoring protocol must beat; the paper's
// "comm.cost" axes are normalized by exactly this cost, so the baseline
// doubles as the normalizer in the benchmark harness. Its estimate is
// exact at all times.

#ifndef FGM_BASELINE_CENTRAL_H_
#define FGM_BASELINE_CENTRAL_H_

#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "query/query.h"
#include "sim/event_network.h"

namespace fgm {

class CentralProtocol : public MonitoringProtocol {
 public:
  /// `trace` / `metrics` are non-owning observability hooks (obs/);
  /// nullptr (the default) disables them. An enabled `net` config runs
  /// the raw-update stream over the event-simulated network (RPC
  /// discipline: every update is retransmitted until delivered, so the
  /// estimate stays exact); fault plans are rejected.
  CentralProtocol(const ContinuousQuery* query, int num_sites,
                  TransportMode transport = TransportMode::kAuto,
                  TraceSink* trace = nullptr,
                  MetricsRegistry* metrics = nullptr,
                  const sim::NetSimConfig& net = {});

  std::string name() const override { return "CENTRAL"; }
  void ProcessRecord(const StreamRecord& record) override;
  const RealVector& GlobalEstimate() const override { return state_; }
  double Estimate() const override;
  ThresholdPair CurrentThresholds() const override;
  const TrafficStats& traffic() const override { return transport_->stats(); }
  int64_t rounds() const override { return 0; }
  void Finish() override {
    if (sim_ != nullptr) sim_->FinishRun();
  }
  const sim::SimNetStats* net_stats() const override {
    return sim_ != nullptr ? &sim_->net_stats() : nullptr;
  }

  /// The transport carrying this protocol's messages (testing hook).
  const Transport& transport() const { return *transport_; }

 private:
  const ContinuousQuery* query_;
  int sites_k_;
  std::unique_ptr<Transport> transport_;
  sim::EventNetwork* sim_ = nullptr;  // non-owning view into transport_
  WallTimer* sketch_timer_ = nullptr;
  RealVector state_;  // exact global state, scaled by 1/k
  std::vector<CellUpdate> delta_scratch_;
};

}  // namespace fgm

#endif  // FGM_BASELINE_CENTRAL_H_
