#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace fgm {

namespace {

double WordFromBits(uint64_t bits) {
  double word;
  static_assert(sizeof(word) == sizeof(bits));
  std::memcpy(&word, &bits, sizeof(word));
  return word;
}

uint64_t BitsFromWord(double word) {
  uint64_t bits;
  std::memcpy(&bits, &word, sizeof(bits));
  return bits;
}

}  // namespace

void WordBuffer::PutCount(int64_t value) {
  // Bit-cast, not value-cast: doubles represent integers exactly only up
  // to 2^53, and counts above that must survive the wire.
  PutBits(static_cast<uint64_t>(value));
}

void WordBuffer::PutBits(uint64_t bits) {
  words_.push_back(WordFromBits(bits));
}

void WordBuffer::PutVector(const RealVector& v) {
  for (size_t i = 0; i < v.dim(); ++i) words_.push_back(v[i]);
}

double WordBuffer::GetReal(size_t index) const {
  FGM_CHECK_LT(index, words_.size());
  return words_[index];
}

int64_t WordBuffer::GetCount(size_t index) const {
  return static_cast<int64_t>(GetBits(index));
}

uint64_t WordBuffer::GetBits(size_t index) const {
  FGM_CHECK_LT(index, words_.size());
  return BitsFromWord(words_[index]);
}

RealVector WordBuffer::GetVector(size_t index, size_t dim) const {
  FGM_CHECK_LE(index + dim, words_.size());
  RealVector v(dim);
  for (size_t i = 0; i < dim; ++i) v[i] = words_[index + i];
  return v;
}

bool WordBuffer::SameBits(const WordBuffer& other) const {
  if (words_.size() != other.words_.size()) return false;
  return words_.empty() ||
         std::memcmp(words_.data(), other.words_.data(),
                     words_.size() * sizeof(double)) == 0;
}

ControlMsg ControlMsg::Decode(const WordBuffer& in) {
  const int64_t op = in.GetCount(0);
  FGM_CHECK_GE(op, static_cast<int64_t>(ControlOp::kPollPhi));
  FGM_CHECK_LE(op, static_cast<int64_t>(ControlOp::kPollCounter));
  return ControlMsg{static_cast<ControlOp>(op)};
}

void RawUpdateMsg::Encode(WordBuffer* out) const {
  const uint64_t high = key >> 62;
  const uint64_t extended = high != 0 ? 1u : 0u;
  out->PutBits((key << 2) | (extended << 1) |
               (is_delete ? uint64_t{1} : uint64_t{0}));
  if (extended) out->PutBits(high);
}

RawUpdateMsg RawUpdateMsg::Decode(const WordBuffer& in, size_t index) {
  const uint64_t bits = in.GetBits(index);
  RawUpdateMsg msg;
  msg.is_delete = (bits & 1) != 0;
  msg.key = bits >> 2;
  if ((bits & 2) != 0) {
    const uint64_t high = in.GetBits(index + 1);
    // Canonical form: the extension word holds exactly the nonzero top
    // two key bits.
    FGM_CHECK_GT(high, 0u);
    FGM_CHECK_LT(high, uint64_t{1} << 2);
    msg.key |= high << 62;
  }
  return msg;
}

RawUpdateMsg RawUpdateMsg::FromRecord(const StreamRecord& record) {
  FGM_CHECK_EQ(record.cid >> 61, 0u);
  FGM_CHECK(record.weight == 1.0 || record.weight == -1.0);
  RawUpdateMsg msg;
  msg.key = (record.cid << 3) | static_cast<uint64_t>(record.type);
  msg.is_delete = record.weight < 0.0;
  return msg;
}

StreamRecord RawUpdateMsg::ToRecord(int site) const {
  StreamRecord record;
  record.site = site;
  record.cid = key >> 3;
  record.type = static_cast<FileType>(key & 7);
  record.weight = is_delete ? -1.0 : 1.0;
  return record;
}

void RawUpdateLog::Record(const StreamRecord& record, size_t dense_words) {
  if (!valid_) return;
  if ((record.cid >> 61) != 0 ||
      (record.weight != 1.0 && record.weight != -1.0)) {
    Invalidate();
    return;
  }
  const RawUpdateMsg msg = RawUpdateMsg::FromRecord(record);
  words_ += msg.Words();
  if (words_ > static_cast<int64_t>(dense_words)) {
    // Verbatim can no longer beat the dense vector; stop paying for the
    // log.
    Invalidate();
    return;
  }
  updates_.push_back(msg);
}

void RawUpdateLog::Reset() {
  updates_.clear();
  words_ = 0;
  valid_ = true;
}

void RawUpdateLog::Invalidate() {
  // Keep the entries: Record() stops appending once invalid, so the
  // retained prefix stays bounded by the dense cost, and a Rewind() to a
  // mark taken while the log was still valid can restore it exactly.
  valid_ = false;
}

void RawUpdateLog::Rewind(const Mark& mark) {
  FGM_CHECK_LE(mark.size, updates_.size());
  updates_.resize(mark.size);
  words_ = mark.words;
  valid_ = mark.valid;
}

DriftFlushMsg DriftFlushMsg::ForFlush(const RealVector& drift,
                                      int64_t update_count,
                                      const RawUpdateLog& log) {
  DriftFlushMsg msg;
  msg.update_count = update_count;
  msg.drift = drift;
  const bool verbatim_available =
      log.valid() &&
      static_cast<int64_t>(log.updates().size()) == update_count;
  if (verbatim_available &&
      1 + log.words() <= 1 + static_cast<int64_t>(drift.dim())) {
    msg.dense = false;
    msg.raw = log.updates();
  }
  return msg;
}

void DriftFlushMsg::Encode(WordBuffer* out) const {
  // The count's sign flags the representation (counts are nonnegative).
  out->PutCount(dense ? update_count : -update_count);
  if (dense) {
    out->PutVector(drift);
  } else {
    for (const RawUpdateMsg& u : raw) u.Encode(out);
  }
}

DriftFlushMsg DriftFlushMsg::Decode(const WordBuffer& in) {
  DriftFlushMsg msg;
  const int64_t tagged = in.GetCount(0);
  msg.dense = tagged >= 0;
  msg.update_count = tagged >= 0 ? tagged : -tagged;
  if (msg.dense) {
    // The dense payload is the rest of the message.
    msg.drift = in.GetVector(1, in.size_words() - 1);
  } else {
    msg.raw.reserve(static_cast<size_t>(msg.update_count));
    size_t index = 1;
    for (int64_t i = 0; i < msg.update_count; ++i) {
      msg.raw.push_back(RawUpdateMsg::Decode(in, index));
      index += static_cast<size_t>(msg.raw.back().Words());
    }
    FGM_CHECK_EQ(index, in.size_words());
  }
  return msg;
}

int64_t DriftFlushMsg::Words() const {
  if (dense) return 1 + static_cast<int64_t>(drift.dim());
  int64_t words = 1;
  for (const RawUpdateMsg& u : raw) words += u.Words();
  return words;
}

int64_t DriftFlushMsg::ChargedWords(size_t dim, int64_t update_count) {
  return std::min<int64_t>(static_cast<int64_t>(dim), update_count) + 1;
}

}  // namespace fgm
