#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace fgm {

void WordBuffer::PutVector(const RealVector& v) {
  for (size_t i = 0; i < v.dim(); ++i) words_.push_back(v[i]);
}

double WordBuffer::GetReal(size_t index) const {
  FGM_CHECK_LT(index, words_.size());
  return words_[index];
}

int64_t WordBuffer::GetCount(size_t index) const {
  return static_cast<int64_t>(GetReal(index));
}

RealVector WordBuffer::GetVector(size_t index, size_t dim) const {
  FGM_CHECK_LE(index + dim, words_.size());
  RealVector v(dim);
  for (size_t i = 0; i < dim; ++i) v[i] = words_[index + i];
  return v;
}

void RawUpdateMsg::Encode(WordBuffer* out) const {
  // A word stores a real number; we pack the 64 update bits through it.
  uint64_t bits = (static_cast<uint64_t>(key) << 1) |
                  static_cast<uint64_t>(is_delete);
  double word;
  static_assert(sizeof(word) == sizeof(bits));
  std::memcpy(&word, &bits, sizeof(word));
  out->PutReal(word);
}

RawUpdateMsg RawUpdateMsg::Decode(const WordBuffer& in, size_t index) {
  const double word = in.GetReal(index);
  uint64_t bits;
  std::memcpy(&bits, &word, sizeof(bits));
  RawUpdateMsg msg;
  msg.key = bits >> 1;
  msg.is_delete = bits & 1;
  return msg;
}

void DriftFlushMsg::Encode(WordBuffer* out) const {
  // The count's sign flags the representation (counts are nonnegative).
  out->PutCount(dense ? update_count : -update_count);
  if (dense) {
    out->PutVector(drift);
  } else {
    for (const RawUpdateMsg& u : raw) u.Encode(out);
  }
}

DriftFlushMsg DriftFlushMsg::Decode(const WordBuffer& in, size_t dim) {
  DriftFlushMsg msg;
  const int64_t tagged = in.GetCount(0);
  msg.dense = tagged >= 0;
  msg.update_count = tagged >= 0 ? tagged : -tagged;
  if (msg.dense) {
    msg.drift = in.GetVector(1, dim);
  } else {
    msg.raw.reserve(static_cast<size_t>(msg.update_count));
    for (int64_t i = 0; i < msg.update_count; ++i) {
      msg.raw.push_back(RawUpdateMsg::Decode(in, 1 + static_cast<size_t>(i)));
    }
  }
  return msg;
}

int64_t DriftFlushMsg::Words() const {
  return 1 + (dense ? static_cast<int64_t>(drift.dim())
                    : static_cast<int64_t>(raw.size()));
}

int64_t DriftFlushMsg::ChargedWords(size_t dim, int64_t update_count) {
  return std::min<int64_t>(static_cast<int64_t>(dim), update_count) + 1;
}

}  // namespace fgm
