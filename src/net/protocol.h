// Common interface of all monitoring protocols (FGM, classic GM, and the
// centralizing baseline).
//
// The driver feeds records one at a time; a protocol routes each record to
// its site, simulates whatever communication the real protocol would
// perform (synchronously), and keeps the coordinator estimate up to date.

#ifndef FGM_NET_PROTOCOL_H_
#define FGM_NET_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "net/network.h"
#include "query/query.h"
#include "stream/record.h"
#include "util/real_vector.h"

namespace fgm {

namespace sim {
struct SimNetStats;
}  // namespace sim

class MonitoringProtocol {
 public:
  virtual ~MonitoringProtocol() = default;

  virtual std::string name() const = 0;

  /// Processes one stream record at its site.
  virtual void ProcessRecord(const StreamRecord& record) = 0;

  /// The coordinator's current estimate vector E.
  virtual const RealVector& GlobalEstimate() const = 0;

  /// Q(E): the answer the coordinator serves to users.
  virtual double Estimate() const = 0;

  /// The thresholds guaranteed for the current round/epoch:
  /// the protocol maintains Q(S_global) ∈ [lo, hi] while quiescent.
  virtual ThresholdPair CurrentThresholds() const = 0;

  /// Communication performed so far.
  virtual const TrafficStats& traffic() const = 0;

  /// Number of synchronization rounds so far.
  virtual int64_t rounds() const = 0;

  /// True while the protocol can vouch for its thresholds at this instant
  /// (e.g. FGM is mid-subround with counter c ≤ k). Used by correctness
  /// tests to know when to assert the containment Q(S) ∈ [lo, hi]. Under
  /// a simulated network this additionally requires no site down and no
  /// counter increment still in flight.
  virtual bool BoundsCertified() const { return true; }

  /// End-of-stream hook: a protocol over a simulated network (sim/) lets
  /// every in-flight datagram land and drains it here. No-op otherwise.
  virtual void Finish() {}

  /// Network-simulation counters, or nullptr when the protocol runs over
  /// a synchronous transport.
  virtual const sim::SimNetStats* net_stats() const { return nullptr; }
};

}  // namespace fgm

#endif  // FGM_NET_PROTOCOL_H_
