// Message-path transport with strict accounting.
//
// All coordinator ↔ site interactions of the protocols go through this
// interface as typed wire messages (net/wire.h). Two implementations:
//
//  * CountingTransport — the fast simulation path: charges each message's
//    word count to SimNetwork and hands the message through unchanged.
//  * SerializingTransport — the strict path: ENCODES every message into a
//    WordBuffer, cross-checks the encoded size against the charged word
//    count, DECODES a fresh copy, verifies the decode re-encodes to the
//    identical bits, and delivers the decoded copy. Any divergence
//    between the cost model and the real wire format aborts loudly
//    (FGM_CHECK), which is the point: the paper's headline metric is
//    words on the wire, so a drift between "charged" and "transmitted"
//    must be impossible to miss.
//
// Both modes charge identical word counts from the same message objects,
// so reported costs are bit-identical across modes; strict mode only adds
// the encode/decode/verify work. sim::EventNetwork (src/sim) implements
// this same interface over a discrete-event queue with latency, loss and
// fault injection; a future socket backend would slot in the same way.

#ifndef FGM_NET_TRANSPORT_H_
#define FGM_NET_TRANSPORT_H_

#include <memory>

#include "net/network.h"
#include "net/wire.h"
#include "query/query.h"
#include "util/real_vector.h"

namespace fgm {

class MetricsRegistry;
class WallTimer;

/// Resolves kAuto against the FGM_STRICT_WIRE environment variable.
TransportMode ResolveTransportMode(TransportMode mode);

class Transport {
 public:
  explicit Transport(int sites) : network_(sites) {}
  virtual ~Transport() = default;

  int sites() const { return network_.sites(); }
  const TrafficStats& stats() const { return network_.stats(); }
  /// The traffic-accounting star under this transport. Exposed so tree
  /// topologies (src/hier) can stamp each per-tier transport with its
  /// tier (SimNetwork::set_tier) before wiring sinks.
  SimNetwork& network() { return network_; }
  virtual const char* name() const = 0;

  /// Forwards per-message kMsgSent events to `trace` (nullptr disables).
  /// Virtual: the event-network backend also emits delivery/drop events.
  virtual void set_trace(TraceSink* trace) { network_.set_trace(trace); }

  /// Forwards per-message spans to `spans` (nullptr disables). Virtual:
  /// the event-network backend emits latency-stamped spans itself instead
  /// of the point spans SimNetwork records.
  virtual void set_spans(SpanSink* spans) {
    spans_ = spans;
    network_.set_spans(spans);
  }

  /// Enables the span-id wire envelope: every message carries the id of
  /// the innermost open span as one trailing word, charged like any other
  /// payload word (and, on the serializing path, actually encoded so the
  /// charge stays provably honest). Off by default — default traffic is
  /// bit-identical with spans compiled in.
  void set_span_wire(bool on) { span_wire_ = on; }

  /// Registers the wire_encode / wire_decode wall timers with `metrics`
  /// (nullptr detaches). Only the serializing path does timed work.
  void set_metrics(MetricsRegistry* metrics);

  // Coordinator → site. Each call charges the message's words and returns
  // the message as the site receives it.
  virtual SafeZoneMsg ShipSafeZone(int site, SafeZoneMsg msg) = 0;
  virtual CheapZoneMsg ShipCheapZone(int site, CheapZoneMsg msg) = 0;
  virtual QuantumMsg ShipQuantum(int site, QuantumMsg msg) = 0;
  virtual LambdaMsg ShipLambda(int site, LambdaMsg msg) = 0;
  virtual ControlMsg ShipControl(int site, ControlMsg msg) = 0;
  virtual ResyncMsg ShipResync(int site, ResyncMsg msg) = 0;

  // Site → coordinator.
  virtual ControlMsg SendControl(int site, ControlMsg msg) = 0;
  virtual CounterMsg SendCounter(int site, CounterMsg msg) = 0;
  virtual PhiValueMsg SendPhiValue(int site, PhiValueMsg msg) = 0;
  virtual DriftFlushMsg SendDriftFlush(int site, DriftFlushMsg msg) = 0;
  virtual RawUpdateMsg SendRawUpdate(int site, RawUpdateMsg msg) = 0;

 protected:
  /// Extra words per message charged by the span-id envelope.
  int64_t SpanWireExtra() const { return span_wire_ ? 1 : 0; }

  SimNetwork network_;
  WallTimer* encode_timer_ = nullptr;
  WallTimer* decode_timer_ = nullptr;
  SpanSink* spans_ = nullptr;
  bool span_wire_ = false;
};

/// Builds the transport for `mode` (kAuto resolves via the environment).
std::unique_ptr<Transport> MakeTransport(TransportMode mode, int sites);

/// Re-projects verbatim raw updates through the shared query, summing the
/// resulting deltas into `out` (which must be zeroed, query-dimensioned) —
/// what the coordinator of a real deployment does on receiving the
/// verbatim drift representation. Applying the same deltas in the same
/// order as the site makes the reconstruction bit-exact.
void ReprojectRawUpdates(const ContinuousQuery& query, int site,
                         const std::vector<RawUpdateMsg>& raw,
                         RealVector* out);

/// The drift delivered by a flush message: the carried dense vector when
/// present (counting mode, or a strict-mode dense decode), otherwise the
/// re-projection of the verbatim updates into `*scratch`.
const RealVector& DeliveredDrift(const DriftFlushMsg& msg,
                                 const ContinuousQuery& query, int site,
                                 RealVector* scratch);

}  // namespace fgm

#endif  // FGM_NET_TRANSPORT_H_
