// Simulated star network between k sites and a coordinator, with
// word-level traffic accounting.
//
// Terminology follows the paper (§2.2): *downstream* messages flow from
// local sites to the coordinator, *upstream* messages from the coordinator
// to sites. Each message consists of words (one word stores one real
// number or one counter). Protocols are executed synchronously in the
// simulation; SimNetwork only records what WOULD have been transmitted,
// which is the quantity the paper's evaluation measures.

#ifndef FGM_NET_NETWORK_H_
#define FGM_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <string>

namespace fgm {

class SpanSink;
class TraceSink;

/// How protocol messages travel (see net/transport.h). kAuto resolves to
/// kSerializing when the FGM_STRICT_WIRE environment variable is set to a
/// nonzero value, else kCounting.
enum class TransportMode : int {
  kAuto = 0,
  kCounting,     ///< charge word counts only (the fast simulation path)
  kSerializing,  ///< encode, cross-check, decode and deliver every message
};

/// Message classes, for cost breakdowns.
enum class MsgKind : int {
  kSafeZone = 0,   ///< reference vector E / safe-function parameters
  kQuantum,        ///< subround quantum θ (and ε_ψ bookkeeping)
  kLambda,         ///< rebalancing scale factor λ
  kCounter,        ///< subround counter increments
  kPhiValue,       ///< φ(X_i) values collected at subround end
  kDriftFlush,     ///< drift vectors (or verbatim updates) to coordinator
  kControl,        ///< poll/flush requests, violation alerts
  kRawUpdate,      ///< raw stream records (centralizing / promiscuous mode)
  kResync,         ///< crash/rejoin state snapshot (E, θ, λ, round epoch)
  kKindCount,
};

const char* MsgKindName(MsgKind kind);

struct TrafficStats {
  int64_t upstream_words = 0;
  int64_t downstream_words = 0;
  int64_t upstream_messages = 0;
  int64_t downstream_messages = 0;
  std::array<int64_t, static_cast<size_t>(MsgKind::kKindCount)>
      words_by_kind = {};

  int64_t total_words() const { return upstream_words + downstream_words; }
  int64_t total_messages() const {
    return upstream_messages + downstream_messages;
  }
  double upstream_fraction() const {
    const int64_t total = total_words();
    return total > 0 ? static_cast<double>(upstream_words) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

class SimNetwork {
 public:
  explicit SimNetwork(int sites);

  int sites() const { return sites_; }

  /// Records a site → coordinator message.
  void Downstream(int site, MsgKind kind, int64_t words);

  /// Records a coordinator → site message.
  void Upstream(int site, MsgKind kind, int64_t words);

  /// Coordinator → every site (k individual messages; no multicast,
  /// matching the paper's model).
  void Broadcast(MsgKind kind, int64_t words_per_site);

  const TrafficStats& stats() const { return stats_; }

  /// Installs an event sink that receives one kMsgSent event per recorded
  /// message (nullptr disables tracing; the default).
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// Installs a span sink that receives one kMsg span per recorded message
  /// (nullptr disables spans; the default). Under sim::EventNetwork the
  /// event network emits richer latency-stamped spans itself and leaves
  /// this unset.
  void set_spans(SpanSink* spans) { spans_ = spans; }

 private:
  void EmitMsg(int site, MsgKind kind, int64_t words, int dir);
  void EmitSpan(int site, MsgKind kind, int64_t words, int dir);

  int sites_;
  TrafficStats stats_;
  TraceSink* trace_ = nullptr;
  SpanSink* spans_ = nullptr;
};

}  // namespace fgm

#endif  // FGM_NET_NETWORK_H_
