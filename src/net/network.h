// Simulated network between child endpoints and their parent (hub), with
// word-level traffic accounting.
//
// Addressing is general (from, to) endpoint pairs, with the constraint
// that one endpoint of every message is the hub — i.e. each SimNetwork
// instance models one star. The flat protocols use a single star (k
// sites, hub = the coordinator); tree topologies (src/hier) stack one
// SimNetwork per tier, where tier t's hub side is played by the tier-t
// parent nodes and the child endpoints are their children, so a message
// between node `from` at tier t and node `to` at tier t+1 is charged on
// tier t's network under the child's endpoint id. set_tier() stamps the
// tier onto the emitted trace events.
//
// Terminology follows the paper (§2.2): *downstream* messages flow from
// child endpoints to the parent, *upstream* messages from the parent to
// children. Each message consists of words (one word stores one real
// number or one counter). Protocols are executed synchronously in the
// simulation; SimNetwork only records what WOULD have been transmitted,
// which is the quantity the paper's evaluation measures.

#ifndef FGM_NET_NETWORK_H_
#define FGM_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <string>

namespace fgm {

class SpanSink;
class TraceSink;

/// How protocol messages travel (see net/transport.h). kAuto resolves to
/// kSerializing when the FGM_STRICT_WIRE environment variable is set to a
/// nonzero value, else kCounting.
enum class TransportMode : int {
  kAuto = 0,
  kCounting,     ///< charge word counts only (the fast simulation path)
  kSerializing,  ///< encode, cross-check, decode and deliver every message
};

/// Message classes, for cost breakdowns.
enum class MsgKind : int {
  kSafeZone = 0,   ///< reference vector E / safe-function parameters
  kQuantum,        ///< subround quantum θ (and ε_ψ bookkeeping)
  kLambda,         ///< rebalancing scale factor λ
  kCounter,        ///< subround counter increments
  kPhiValue,       ///< φ(X_i) values collected at subround end
  kDriftFlush,     ///< drift vectors (or verbatim updates) to coordinator
  kControl,        ///< poll/flush requests, violation alerts
  kRawUpdate,      ///< raw stream records (centralizing / promiscuous mode)
  kResync,         ///< crash/rejoin state snapshot (E, θ, λ, round epoch)
  kKindCount,
};

const char* MsgKindName(MsgKind kind);

struct TrafficStats {
  int64_t upstream_words = 0;
  int64_t downstream_words = 0;
  int64_t upstream_messages = 0;
  int64_t downstream_messages = 0;
  std::array<int64_t, static_cast<size_t>(MsgKind::kKindCount)>
      words_by_kind = {};

  int64_t total_words() const { return upstream_words + downstream_words; }
  int64_t total_messages() const {
    return upstream_messages + downstream_messages;
  }
  double upstream_fraction() const {
    const int64_t total = total_words();
    return total > 0 ? static_cast<double>(upstream_words) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

class SimNetwork {
 public:
  explicit SimNetwork(int sites);

  int sites() const { return sites_; }

  /// Records a child-endpoint → parent message. `site` is the child
  /// endpoint id (the (from, to) pair is (site, hub)).
  void Downstream(int site, MsgKind kind, int64_t words);

  /// Records a parent → child-endpoint message ((from, to) = (hub, site)).
  void Upstream(int site, MsgKind kind, int64_t words);

  /// Parent → every child endpoint (k individual messages; no multicast,
  /// matching the paper's model).
  void Broadcast(MsgKind kind, int64_t words_per_site);

  const TrafficStats& stats() const { return stats_; }

  /// Tree tier this star carries (src/hier): stamped onto every emitted
  /// kMsgSent event and message span. Flat runs leave it 0 (the root
  /// star), keeping their traces byte-identical.
  void set_tier(int tier) { tier_ = tier; }
  int tier() const { return tier_; }

  /// Installs an event sink that receives one kMsgSent event per recorded
  /// message (nullptr disables tracing; the default).
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// Installs a span sink that receives one kMsg span per recorded message
  /// (nullptr disables spans; the default). Under sim::EventNetwork the
  /// event network emits richer latency-stamped spans itself and leaves
  /// this unset.
  void set_spans(SpanSink* spans) { spans_ = spans; }

 private:
  void EmitMsg(int site, MsgKind kind, int64_t words, int dir);
  void EmitSpan(int site, MsgKind kind, int64_t words, int dir);

  int sites_;
  int tier_ = 0;
  TrafficStats stats_;
  TraceSink* trace_ = nullptr;
  SpanSink* spans_ = nullptr;
};

}  // namespace fgm

#endif  // FGM_NET_NETWORK_H_
