#include "net/network.h"

#include "obs/span.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fgm {

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kSafeZone:
      return "safe-zone";
    case MsgKind::kQuantum:
      return "quantum";
    case MsgKind::kLambda:
      return "lambda";
    case MsgKind::kCounter:
      return "counter";
    case MsgKind::kPhiValue:
      return "phi-value";
    case MsgKind::kDriftFlush:
      return "drift-flush";
    case MsgKind::kControl:
      return "control";
    case MsgKind::kRawUpdate:
      return "raw-update";
    case MsgKind::kResync:
      return "resync";
    case MsgKind::kKindCount:
      break;
  }
  return "unknown";
}

SimNetwork::SimNetwork(int sites) : sites_(sites) { FGM_CHECK_GE(sites, 1); }

void SimNetwork::EmitMsg(int site, MsgKind kind, int64_t words, int dir) {
  TraceEvent e;
  e.kind = TraceEventKind::kMsgSent;
  e.site = site;
  e.label = MsgKindName(kind);
  e.dir = dir;
  e.words = words;
  e.tier = tier_;
  trace_->Emit(e);
}

void SimNetwork::EmitSpan(int site, MsgKind kind, int64_t words, int dir) {
  // The synchronous simulation transmits instantaneously, so the span is
  // a point interval; its value is the words/kind/causal-parent record.
  Span s;
  s.kind = SpanKind::kMsg;
  s.site = site;
  s.begin = spans_->Now();
  s.words = words;
  s.count = 1;
  s.dir = dir;
  s.tier = tier_;
  s.label = MsgKindName(kind);
  spans_->EmitComplete(s);
}

void SimNetwork::Downstream(int site, MsgKind kind, int64_t words) {
  FGM_CHECK(site >= 0 && site < sites_);
  FGM_CHECK_GE(words, 0);
  stats_.downstream_words += words;
  stats_.downstream_messages += 1;
  stats_.words_by_kind[static_cast<size_t>(kind)] += words;
  if (trace_ != nullptr) EmitMsg(site, kind, words, /*dir=*/-1);
  if (spans_ != nullptr) EmitSpan(site, kind, words, /*dir=*/-1);
}

void SimNetwork::Upstream(int site, MsgKind kind, int64_t words) {
  FGM_CHECK(site >= 0 && site < sites_);
  FGM_CHECK_GE(words, 0);
  stats_.upstream_words += words;
  stats_.upstream_messages += 1;
  stats_.words_by_kind[static_cast<size_t>(kind)] += words;
  if (trace_ != nullptr) EmitMsg(site, kind, words, /*dir=*/1);
  if (spans_ != nullptr) EmitSpan(site, kind, words, /*dir=*/1);
}

void SimNetwork::Broadcast(MsgKind kind, int64_t words_per_site) {
  for (int s = 0; s < sites_; ++s) Upstream(s, kind, words_per_site);
}

}  // namespace fgm
