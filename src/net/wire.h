// Wire encodings for the protocol messages.
//
// The paper's cost model (§2.2) counts messages in *words*, each wide
// enough for one real number. This header makes those counts concrete:
// every message type has an explicit encoding into a word buffer, and the
// unit tests assert that the encoded sizes equal the analytic word counts
// the protocols charge to SimNetwork. A deployment on a real transport
// can serialize exactly these structures.
//
// Drift transfers use whichever representation is smaller (§2.1): the
// dense D-word vector, or the verbatim list of raw updates received since
// the last flush (one word each, re-projected by the coordinator).

#ifndef FGM_NET_WIRE_H_
#define FGM_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "util/real_vector.h"

namespace fgm {

/// A sequence of words; one word stores one real number or one counter.
class WordBuffer {
 public:
  size_t size_words() const { return words_.size(); }

  void PutReal(double value) { words_.push_back(value); }
  void PutCount(int64_t value) {
    words_.push_back(static_cast<double>(value));
  }
  void PutVector(const RealVector& v);

  double GetReal(size_t index) const;
  int64_t GetCount(size_t index) const;
  /// Reads `dim` words starting at `index` into a vector.
  RealVector GetVector(size_t index, size_t dim) const;

 private:
  std::vector<double> words_;
};

/// Subround quantum θ (coordinator → site), 1 word.
struct QuantumMsg {
  double theta;
  void Encode(WordBuffer* out) const { out->PutReal(theta); }
  static QuantumMsg Decode(const WordBuffer& in) {
    return QuantumMsg{in.GetReal(0)};
  }
  static constexpr int64_t kWords = 1;
};

/// Rebalancing scale λ (coordinator → site), 1 word.
struct LambdaMsg {
  double lambda;
  void Encode(WordBuffer* out) const { out->PutReal(lambda); }
  static LambdaMsg Decode(const WordBuffer& in) {
    return LambdaMsg{in.GetReal(0)};
  }
  static constexpr int64_t kWords = 1;
};

/// Counter increment (site → coordinator), 1 word.
struct CounterMsg {
  int64_t increment;
  void Encode(WordBuffer* out) const { out->PutCount(increment); }
  static CounterMsg Decode(const WordBuffer& in) {
    return CounterMsg{in.GetCount(0)};
  }
  static constexpr int64_t kWords = 1;
};

/// φ-value reply (site → coordinator), 1 word.
struct PhiValueMsg {
  double value;
  void Encode(WordBuffer* out) const { out->PutReal(value); }
  static PhiValueMsg Decode(const WordBuffer& in) {
    return PhiValueMsg{in.GetReal(0)};
  }
  static constexpr int64_t kWords = 1;
};

/// Full safe-zone shipment (coordinator → site): the reference vector E,
/// from which the site reconstructs φ (§2.4 step 1). D words.
struct SafeZoneMsg {
  RealVector reference;
  void Encode(WordBuffer* out) const { out->PutVector(reference); }
  static SafeZoneMsg Decode(const WordBuffer& in, size_t dim) {
    return SafeZoneMsg{in.GetVector(0, dim)};
  }
  int64_t Words() const { return static_cast<int64_t>(reference.dim()); }
};

/// Cheap safe-function shipment (§4.2.1): (p, q, a) — here the Lipschitz
/// bound, an unused degree slot kept for parity with the paper's (p, q),
/// and the offset a = φ(0). 3 words.
struct CheapZoneMsg {
  double lipschitz;
  double degree;
  double offset;
  void Encode(WordBuffer* out) const {
    out->PutReal(lipschitz);
    out->PutReal(degree);
    out->PutReal(offset);
  }
  static CheapZoneMsg Decode(const WordBuffer& in) {
    return CheapZoneMsg{in.GetReal(0), in.GetReal(1), in.GetReal(2)};
  }
  static constexpr int64_t kWords = 3;
};

/// One raw stream update, shipped verbatim (1 word: the key and sign are
/// packed; the coordinator re-projects through the shared query).
struct RawUpdateMsg {
  uint64_t key : 63;
  uint64_t is_delete : 1;
  void Encode(WordBuffer* out) const;
  static RawUpdateMsg Decode(const WordBuffer& in, size_t index);
  static constexpr int64_t kWords = 1;
};

/// Drift flush (site → coordinator): update count plus either the dense
/// vector or the verbatim updates, whichever is smaller.
struct DriftFlushMsg {
  int64_t update_count = 0;
  bool dense = true;
  RealVector drift;                      // when dense
  std::vector<RawUpdateMsg> raw;         // when !dense

  void Encode(WordBuffer* out) const;
  static DriftFlushMsg Decode(const WordBuffer& in, size_t dim);

  /// Words on the wire: 1 (count, whose sign encodes dense/verbatim) plus
  /// min(D, update_count).
  int64_t Words() const;

  /// The representation the protocols charge for: min(D, n) + 1.
  static int64_t ChargedWords(size_t dim, int64_t update_count);
};

}  // namespace fgm

#endif  // FGM_NET_WIRE_H_
