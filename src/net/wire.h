// Wire encodings for the protocol messages.
//
// The paper's cost model (§2.2) counts messages in *words*, each wide
// enough for one real number. This header makes those counts concrete:
// every message type has an explicit encoding into a word buffer, and the
// transport layer (net/transport.h) cross-checks that the encoded sizes
// equal the word counts charged to SimNetwork — in strict mode every
// message is actually encoded, decoded and delivered from the decoded
// copy. A deployment on a real transport can serialize exactly these
// structures.
//
// Drift transfers use whichever representation is smaller (§2.1): the
// dense D-word vector, or the verbatim list of raw updates received since
// the last flush (normally one word each, re-projected by the
// coordinator).

#ifndef FGM_NET_WIRE_H_
#define FGM_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "stream/record.h"
#include "util/real_vector.h"

namespace fgm {

/// A sequence of words; one word stores one real number or one counter.
/// Counters are bit-cast through the word, NOT value-cast: a double can
/// only represent integers exactly up to 2^53, and a real transport must
/// not corrupt large counts.
class WordBuffer {
 public:
  size_t size_words() const { return words_.size(); }

  void PutReal(double value) { words_.push_back(value); }
  void PutCount(int64_t value);
  void PutBits(uint64_t bits);
  void PutVector(const RealVector& v);

  double GetReal(size_t index) const;
  int64_t GetCount(size_t index) const;
  uint64_t GetBits(size_t index) const;
  /// Reads `dim` words starting at `index` into a vector.
  RealVector GetVector(size_t index, size_t dim) const;

  /// Bitwise equality with another buffer (strict-mode re-encode check;
  /// value comparison would miss NaN payloads and count words).
  bool SameBits(const WordBuffer& other) const;

 private:
  std::vector<double> words_;
};

/// Subround quantum θ (coordinator → site), 1 word.
struct QuantumMsg {
  double theta;
  void Encode(WordBuffer* out) const { out->PutReal(theta); }
  static QuantumMsg Decode(const WordBuffer& in) {
    return QuantumMsg{in.GetReal(0)};
  }
  static constexpr int64_t kWords = 1;
};

/// Rebalancing scale λ (coordinator → site), 1 word.
struct LambdaMsg {
  double lambda;
  void Encode(WordBuffer* out) const { out->PutReal(lambda); }
  static LambdaMsg Decode(const WordBuffer& in) {
    return LambdaMsg{in.GetReal(0)};
  }
  static constexpr int64_t kWords = 1;
};

/// Counter increment (site → coordinator), 1 word.
struct CounterMsg {
  int64_t increment;
  void Encode(WordBuffer* out) const { out->PutCount(increment); }
  static CounterMsg Decode(const WordBuffer& in) {
    return CounterMsg{in.GetCount(0)};
  }
  static constexpr int64_t kWords = 1;
};

/// φ-value reply (site → coordinator), 1 word.
struct PhiValueMsg {
  double value;
  void Encode(WordBuffer* out) const { out->PutReal(value); }
  static PhiValueMsg Decode(const WordBuffer& in) {
    return PhiValueMsg{in.GetReal(0)};
  }
  static constexpr int64_t kWords = 1;
};

/// Control opcodes: poll/flush requests, drift requests and violation
/// alerts. One word on the wire.
enum class ControlOp : int64_t {
  kPollPhi = 1,    ///< coordinator asks a site for its current φ-value
  kFlushRequest,   ///< coordinator asks a site to flush its drift
  kDriftRequest,   ///< GM coordinator collects a rebalancing peer's drift
  kViolation,      ///< GM site reports a local safe-zone violation
  kPollCounter,    ///< FGM coordinator re-polls a site's cumulative counter
};

struct ControlMsg {
  ControlOp op;
  void Encode(WordBuffer* out) const {
    out->PutCount(static_cast<int64_t>(op));
  }
  static ControlMsg Decode(const WordBuffer& in);
  static constexpr int64_t kWords = 1;
};

/// Full safe-zone shipment (coordinator → site): the reference vector E,
/// from which the site reconstructs φ (§2.4 step 1). D words.
struct SafeZoneMsg {
  RealVector reference;
  void Encode(WordBuffer* out) const { out->PutVector(reference); }
  static SafeZoneMsg Decode(const WordBuffer& in, size_t dim) {
    return SafeZoneMsg{in.GetVector(0, dim)};
  }
  int64_t Words() const { return static_cast<int64_t>(reference.dim()); }
};

/// Crash/rejoin state snapshot (coordinator → site): the round's reference
/// vector E plus the current quantum θ, scale λ and the (round, subround)
/// epoch, from which a recovering site rebuilds its safe function and
/// re-enters the protocol. D + 4 words, charged like any other message.
struct ResyncMsg {
  RealVector reference;
  double theta = 0.0;
  double lambda = 1.0;
  int64_t round = 0;
  int64_t subround = 0;

  void Encode(WordBuffer* out) const {
    out->PutVector(reference);
    out->PutReal(theta);
    out->PutReal(lambda);
    out->PutCount(round);
    out->PutCount(subround);
  }
  static ResyncMsg Decode(const WordBuffer& in, size_t dim) {
    ResyncMsg msg;
    msg.reference = in.GetVector(0, dim);
    msg.theta = in.GetReal(dim);
    msg.lambda = in.GetReal(dim + 1);
    msg.round = in.GetCount(dim + 2);
    msg.subround = in.GetCount(dim + 3);
    return msg;
  }
  int64_t Words() const { return static_cast<int64_t>(reference.dim()) + 4; }
};

/// Cheap safe-function shipment (§4.2.1): (p, q, a) — here the Lipschitz
/// bound, an unused degree slot kept for parity with the paper's (p, q),
/// and the offset a = φ(0). 3 words.
struct CheapZoneMsg {
  double lipschitz;
  double degree;
  double offset;
  void Encode(WordBuffer* out) const {
    out->PutReal(lipschitz);
    out->PutReal(degree);
    out->PutReal(offset);
  }
  static CheapZoneMsg Decode(const WordBuffer& in) {
    return CheapZoneMsg{in.GetReal(0), in.GetReal(1), in.GetReal(2)};
  }
  static constexpr int64_t kWords = 3;
};

/// One raw stream update, shipped verbatim and re-projected by the
/// coordinator through the shared query.
///
/// The first word packs the delete flag (bit 0), an extension flag
/// (bit 1) and the low 62 key bits (bits 2..63); a key needing more than
/// 62 bits spills its high bits into a second word, so NO key bit is ever
/// silently dropped (the old single-word `key << 1` packing lost the MSB
/// of large keys).
struct RawUpdateMsg {
  uint64_t key = 0;
  bool is_delete = false;

  /// Words on the wire: 1 for keys below 2^62, 2 beyond.
  int64_t Words() const { return (key >> 62) != 0 ? 2 : 1; }
  void Encode(WordBuffer* out) const;
  /// Reads the update starting at `index`; the caller advances by the
  /// returned message's Words().
  static RawUpdateMsg Decode(const WordBuffer& in, size_t index);

  /// Packs a stream record: key = (cid << 3) | file type, delete flag from
  /// the weight's sign. Checks cid fits 61 bits and |weight| = 1.
  static RawUpdateMsg FromRecord(const StreamRecord& record);
  /// Reconstructs the record at the coordinator (time is not transmitted;
  /// it is irrelevant to re-projection).
  StreamRecord ToRecord(int site) const;
};

/// Site-local log of the raw updates received since the last flush,
/// backing the verbatim DriftFlushMsg representation. Recording stops —
/// and the verbatim option lapses — once the log would cost at least as
/// much as the dense vector, or when an update cannot be packed (non-unit
/// weight, cid beyond 61 bits) or bypassed the log.
class RawUpdateLog {
 public:
  void Record(const StreamRecord& record, size_t dense_words);
  void Reset();
  /// Marks the log out of sync with the drift (an update was applied
  /// without Record); the verbatim representation becomes unavailable.
  /// Entries already logged are kept (and ignored) until the next Reset,
  /// so a Rewind across the invalidation restores the valid prefix.
  void Invalidate();

  bool valid() const { return valid_; }
  int64_t words() const { return words_; }
  const std::vector<RawUpdateMsg>& updates() const { return updates_; }

  /// Snapshot token for speculative execution: MarkPosition() captures the
  /// log state, Rewind() restores it bit-exactly. Only Record() may happen
  /// in between (Reset() discards outstanding marks).
  struct Mark {
    size_t size = 0;
    int64_t words = 0;
    bool valid = true;
  };
  Mark MarkPosition() const { return Mark{updates_.size(), words_, valid_}; }
  void Rewind(const Mark& mark);

 private:
  std::vector<RawUpdateMsg> updates_;
  int64_t words_ = 0;
  bool valid_ = true;
};

/// Drift flush (site → coordinator): update count plus either the dense
/// vector or the verbatim updates, whichever is smaller.
///
/// `drift` is always populated by the SENDING site (local fast-path
/// delivery); only the representation selected by `dense` goes on the
/// wire, so a strict-mode decode of a verbatim flush delivers the raw
/// updates and an empty drift for the coordinator to re-project.
struct DriftFlushMsg {
  int64_t update_count = 0;
  bool dense = true;
  RealVector drift;                      // when dense (or sender-local)
  std::vector<RawUpdateMsg> raw;         // when !dense

  /// Builds the message a site sends for its current drift, choosing the
  /// cheaper representation (verbatim requires a valid, complete log).
  static DriftFlushMsg ForFlush(const RealVector& drift,
                                int64_t update_count,
                                const RawUpdateLog& log);

  void Encode(WordBuffer* out) const;
  static DriftFlushMsg Decode(const WordBuffer& in);

  /// Words on the wire: 1 (count, whose sign encodes dense/verbatim) plus
  /// D (dense) or the summed raw-update words (verbatim). This is also
  /// the amount the transport charges — one definition for both.
  int64_t Words() const;

  /// The analytic charge of the paper's cost model: min(D, n) + 1. Equals
  /// Words() of a ForFlush message whenever every raw update packs into
  /// one word (always true for the paper's workloads).
  static int64_t ChargedWords(size_t dim, int64_t update_count);
};

}  // namespace fgm

#endif  // FGM_NET_WIRE_H_
