#include "net/transport.h"

#include <cstdlib>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/check.h"

namespace fgm {

namespace {

bool StrictWireEnv() {
  const char* env = std::getenv("FGM_STRICT_WIRE");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

class CountingTransport final : public Transport {
 public:
  explicit CountingTransport(int sites) : Transport(sites) {}

  const char* name() const override { return "counting"; }

  SafeZoneMsg ShipSafeZone(int site, SafeZoneMsg msg) override {
    network_.Upstream(site, MsgKind::kSafeZone, msg.Words() + SpanWireExtra());
    return msg;
  }
  CheapZoneMsg ShipCheapZone(int site, CheapZoneMsg msg) override {
    // Cheap bounds are safe-zone shipments in the cost breakdown.
    network_.Upstream(site, MsgKind::kSafeZone,
                      CheapZoneMsg::kWords + SpanWireExtra());
    return msg;
  }
  QuantumMsg ShipQuantum(int site, QuantumMsg msg) override {
    network_.Upstream(site, MsgKind::kQuantum,
                      QuantumMsg::kWords + SpanWireExtra());
    return msg;
  }
  LambdaMsg ShipLambda(int site, LambdaMsg msg) override {
    network_.Upstream(site, MsgKind::kLambda,
                      LambdaMsg::kWords + SpanWireExtra());
    return msg;
  }
  ControlMsg ShipControl(int site, ControlMsg msg) override {
    network_.Upstream(site, MsgKind::kControl,
                      ControlMsg::kWords + SpanWireExtra());
    return msg;
  }
  ResyncMsg ShipResync(int site, ResyncMsg msg) override {
    network_.Upstream(site, MsgKind::kResync, msg.Words() + SpanWireExtra());
    return msg;
  }
  ControlMsg SendControl(int site, ControlMsg msg) override {
    network_.Downstream(site, MsgKind::kControl,
                        ControlMsg::kWords + SpanWireExtra());
    return msg;
  }
  CounterMsg SendCounter(int site, CounterMsg msg) override {
    network_.Downstream(site, MsgKind::kCounter,
                        CounterMsg::kWords + SpanWireExtra());
    return msg;
  }
  PhiValueMsg SendPhiValue(int site, PhiValueMsg msg) override {
    network_.Downstream(site, MsgKind::kPhiValue,
                        PhiValueMsg::kWords + SpanWireExtra());
    return msg;
  }
  DriftFlushMsg SendDriftFlush(int site, DriftFlushMsg msg) override {
    network_.Downstream(site, MsgKind::kDriftFlush,
                        msg.Words() + SpanWireExtra());
    return msg;
  }
  RawUpdateMsg SendRawUpdate(int site, RawUpdateMsg msg) override {
    network_.Downstream(site, MsgKind::kRawUpdate,
                        msg.Words() + SpanWireExtra());
    return msg;
  }
};

class SerializingTransport final : public Transport {
 public:
  explicit SerializingTransport(int sites) : Transport(sites) {}

  const char* name() const override { return "serializing"; }

  SafeZoneMsg ShipSafeZone(int site, SafeZoneMsg msg) override {
    const size_t dim = msg.reference.dim();
    return RoundTrip(
        msg, msg.Words(),
        [dim](const WordBuffer& in) { return SafeZoneMsg::Decode(in, dim); },
        [&](int64_t words) {
          network_.Upstream(site, MsgKind::kSafeZone, words);
        });
  }
  CheapZoneMsg ShipCheapZone(int site, CheapZoneMsg msg) override {
    return RoundTrip(
        msg, CheapZoneMsg::kWords,
        [](const WordBuffer& in) { return CheapZoneMsg::Decode(in); },
        [&](int64_t words) {
          network_.Upstream(site, MsgKind::kSafeZone, words);
        });
  }
  QuantumMsg ShipQuantum(int site, QuantumMsg msg) override {
    return RoundTrip(
        msg, QuantumMsg::kWords,
        [](const WordBuffer& in) { return QuantumMsg::Decode(in); },
        [&](int64_t words) {
          network_.Upstream(site, MsgKind::kQuantum, words);
        });
  }
  LambdaMsg ShipLambda(int site, LambdaMsg msg) override {
    return RoundTrip(
        msg, LambdaMsg::kWords,
        [](const WordBuffer& in) { return LambdaMsg::Decode(in); },
        [&](int64_t words) {
          network_.Upstream(site, MsgKind::kLambda, words);
        });
  }
  ControlMsg ShipControl(int site, ControlMsg msg) override {
    return RoundTrip(
        msg, ControlMsg::kWords,
        [](const WordBuffer& in) { return ControlMsg::Decode(in); },
        [&](int64_t words) {
          network_.Upstream(site, MsgKind::kControl, words);
        });
  }
  ResyncMsg ShipResync(int site, ResyncMsg msg) override {
    const size_t dim = msg.reference.dim();
    return RoundTrip(
        msg, msg.Words(),
        [dim](const WordBuffer& in) { return ResyncMsg::Decode(in, dim); },
        [&](int64_t words) {
          network_.Upstream(site, MsgKind::kResync, words);
        });
  }
  ControlMsg SendControl(int site, ControlMsg msg) override {
    return RoundTrip(
        msg, ControlMsg::kWords,
        [](const WordBuffer& in) { return ControlMsg::Decode(in); },
        [&](int64_t words) {
          network_.Downstream(site, MsgKind::kControl, words);
        });
  }
  CounterMsg SendCounter(int site, CounterMsg msg) override {
    return RoundTrip(
        msg, CounterMsg::kWords,
        [](const WordBuffer& in) { return CounterMsg::Decode(in); },
        [&](int64_t words) {
          network_.Downstream(site, MsgKind::kCounter, words);
        });
  }
  PhiValueMsg SendPhiValue(int site, PhiValueMsg msg) override {
    return RoundTrip(
        msg, PhiValueMsg::kWords,
        [](const WordBuffer& in) { return PhiValueMsg::Decode(in); },
        [&](int64_t words) {
          network_.Downstream(site, MsgKind::kPhiValue, words);
        });
  }
  DriftFlushMsg SendDriftFlush(int site, DriftFlushMsg msg) override {
    return RoundTrip(
        msg, msg.Words(),
        [](const WordBuffer& in) { return DriftFlushMsg::Decode(in); },
        [&](int64_t words) {
          network_.Downstream(site, MsgKind::kDriftFlush, words);
        });
  }
  RawUpdateMsg SendRawUpdate(int site, RawUpdateMsg msg) override {
    return RoundTrip(
        msg, msg.Words(),
        [](const WordBuffer& in) { return RawUpdateMsg::Decode(in, 0); },
        [&](int64_t words) {
          network_.Downstream(site, MsgKind::kRawUpdate, words);
        });
  }

 private:
  /// The strict message path: encode, check encoded size == charged
  /// words, charge, decode, check the decode re-encodes to identical
  /// bits, deliver the decoded copy.
  template <typename Msg, typename DecodeFn, typename ChargeFn>
  Msg RoundTrip(const Msg& msg, int64_t charged_words, DecodeFn decode,
                ChargeFn charge) {
    WordBuffer wire;
    {
      ScopedTimer timed(encode_timer_);
      msg.Encode(&wire);
    }
    FGM_CHECK_EQ(static_cast<int64_t>(wire.size_words()), charged_words);
    charge(charged_words + SpanWireExtra());
    ScopedTimer timed(decode_timer_);
    // Decode sees the payload only — a receiver strips the known trailing
    // span-id word before decoding (some payloads infer their length from
    // the buffer size).
    Msg decoded = decode(wire);
    WordBuffer reencoded;
    decoded.Encode(&reencoded);
    if (span_wire_) {
      // The span-id envelope is one trailing word, actually appended to
      // the wire bits so the +1 charge is backed by transmitted words,
      // and cross-checked bit-exactly like the payload.
      const int64_t span_id = spans_ != nullptr ? spans_->CurrentId() : 0;
      wire.PutCount(span_id);
      reencoded.PutCount(span_id);
    }
    FGM_CHECK(wire.SameBits(reencoded));
    return decoded;
  }
};

}  // namespace

void Transport::set_metrics(MetricsRegistry* metrics) {
  encode_timer_ =
      metrics != nullptr ? metrics->GetTimer("wire_encode") : nullptr;
  decode_timer_ =
      metrics != nullptr ? metrics->GetTimer("wire_decode") : nullptr;
}

TransportMode ResolveTransportMode(TransportMode mode) {
  if (mode != TransportMode::kAuto) return mode;
  return StrictWireEnv() ? TransportMode::kSerializing
                         : TransportMode::kCounting;
}

std::unique_ptr<Transport> MakeTransport(TransportMode mode, int sites) {
  switch (ResolveTransportMode(mode)) {
    case TransportMode::kCounting:
      return std::make_unique<CountingTransport>(sites);
    case TransportMode::kSerializing:
      return std::make_unique<SerializingTransport>(sites);
    case TransportMode::kAuto:
      break;
  }
  FGM_CHECK(false);
  return nullptr;
}

void ReprojectRawUpdates(const ContinuousQuery& query, int site,
                         const std::vector<RawUpdateMsg>& raw,
                         RealVector* out) {
  FGM_CHECK_EQ(out->dim(), query.dimension());
  std::vector<CellUpdate> deltas;
  for (const RawUpdateMsg& u : raw) {
    deltas.clear();
    query.MapRecord(u.ToRecord(site), &deltas);
    for (const CellUpdate& d : deltas) (*out)[d.index] += d.delta;
  }
}

const RealVector& DeliveredDrift(const DriftFlushMsg& msg,
                                 const ContinuousQuery& query, int site,
                                 RealVector* scratch) {
  if (msg.drift.dim() != 0) {
    FGM_CHECK_EQ(msg.drift.dim(), query.dimension());
    return msg.drift;
  }
  if (scratch->dim() != query.dimension()) {
    *scratch = RealVector(query.dimension());
  } else {
    scratch->SetZero();
  }
  ReprojectRawUpdates(query, site, msg.raw, scratch);
  return *scratch;
}

}  // namespace fgm
