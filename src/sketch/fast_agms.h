// Fast-AGMS sketches (Cormode & Garofalakis, VLDB'05).
//
// A Fast-AGMS sketch is a depth × width matrix of counters. Each stream
// update (key, weight) touches exactly one cell per row: the cell chosen by
// a pairwise-independent bucket hash, incremented by weight times a 4-wise
// independent ±1 sign hash. Row inner products estimate join sizes; the
// median over rows boosts confidence. With width w the estimate is within
// Θ(1/√w) relative error with probability 1 - 2^{-Θ(depth)}.
//
// The hash family (AgmsProjection) is separated from the counter data so
// that distributed sites, the coordinator and the exact reference stream
// all share one linear projection: sketching is linear, hence drift vectors
// and sketch states can be added and scaled freely by the protocols.

#ifndef FGM_SKETCH_FAST_AGMS_H_
#define FGM_SKETCH_FAST_AGMS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/hash.h"
#include "util/real_vector.h"

namespace fgm {

/// One cell modification produced by projecting a stream update.
struct CellUpdate {
  size_t index;  ///< flat index into the depth*width state vector
  double delta;  ///< signed weight contribution
};

/// The linear projection defined by the AGMS hash family. Immutable and
/// shareable; all parties in a monitoring task must use the same instance
/// (same seed) so that their sketches are compatible.
class AgmsProjection {
 public:
  AgmsProjection(int depth, int width, uint64_t seed);

  int depth() const { return depth_; }
  int width() const { return width_; }
  /// Dimension of the flattened sketch vector (depth * width).
  size_t dimension() const {
    return static_cast<size_t>(depth_) * static_cast<size_t>(width_);
  }

  uint32_t Bucket(int row, uint64_t key) const {
    return bucket_[static_cast<size_t>(row)](key);
  }
  int Sign(int row, uint64_t key) const {
    return sign_[static_cast<size_t>(row)](key);
  }

  /// Flat index of (row, bucket) in the state vector (row-major).
  size_t CellIndex(int row, uint32_t bucket) const {
    return static_cast<size_t>(row) * static_cast<size_t>(width_) + bucket;
  }

  /// Appends the `depth` cell updates for one stream update to `out`
  /// (does not clear `out`).
  void Map(uint64_t key, double weight, std::vector<CellUpdate>* out) const;

  /// Batched Map: projects `count` updates in one row-major pass (all
  /// records through row 0's hash family, then row 1, ...) while writing
  /// record-major — out[j * depth + d] is record j's row-d cell, exactly
  /// the CellUpdate values Map() emits in the same per-record order, so
  /// consuming the output record by record is bit-identical to per-record
  /// Map() calls. `out` must hold count * depth entries.
  void MapBatch(const uint64_t* keys, const double* weights, size_t count,
                CellUpdate* out) const;

 private:
  int depth_;
  int width_;
  std::vector<BucketHash> bucket_;
  std::vector<SignHash> sign_;
};

/// A sketch: shared projection + owned counter state.
class FastAgms {
 public:
  explicit FastAgms(std::shared_ptr<const AgmsProjection> projection);

  const AgmsProjection& projection() const { return *projection_; }
  const RealVector& state() const { return state_; }
  RealVector& mutable_state() { return state_; }

  /// Applies one stream update.
  void Update(uint64_t key, double weight);

  /// Applies `count` stream updates in one pass, row-major: all rows walk
  /// the batch in record order, so each cell sees exactly the additions
  /// it would see under per-record Update() in the same order — the
  /// result is bit-identical. The row-major loop keeps one row's hash
  /// family hot and touches the state vector sequentially.
  void UpdateBatch(const uint64_t* keys, const double* weights, size_t count);

  /// Self-join (F2) estimate: median over rows of the row squared norm.
  double SelfJoinEstimate() const;

  /// Join estimate between two sketches over the same projection:
  /// median over rows of the row inner products.
  static double JoinEstimate(const FastAgms& a, const FastAgms& b);

 private:
  std::shared_ptr<const AgmsProjection> projection_;
  RealVector state_;
};

/// Median of `values` (odd sizes take the middle element; even sizes the
/// average of the two middle elements). `values` is copied.
double Median(std::vector<double> values);

/// Self-join estimate directly from a flattened state vector.
double SelfJoinEstimate(const AgmsProjection& projection,
                        const RealVector& state);

/// Join estimate from two flattened state vectors over one projection.
double JoinEstimate(const AgmsProjection& projection, const RealVector& s1,
                    const RealVector& s2);

/// Join estimate when the two sketches are concatenated into one state of
/// dimension 2 * projection.dimension() (the Q2 layout of the paper).
double JoinEstimateConcatenated(const AgmsProjection& projection,
                                const RealVector& s1s2);

}  // namespace fgm

#endif  // FGM_SKETCH_FAST_AGMS_H_
