#include "sketch/fast_agms.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace fgm {

AgmsProjection::AgmsProjection(int depth, int width, uint64_t seed)
    : depth_(depth), width_(width) {
  FGM_CHECK_GE(depth, 1);
  FGM_CHECK_GE(width, 1);
  Xoshiro256ss rng(seed);
  bucket_.reserve(static_cast<size_t>(depth));
  sign_.reserve(static_cast<size_t>(depth));
  for (int r = 0; r < depth; ++r) {
    bucket_.emplace_back(rng, static_cast<uint32_t>(width));
    sign_.emplace_back(rng);
  }
}

void AgmsProjection::Map(uint64_t key, double weight,
                         std::vector<CellUpdate>* out) const {
  out->reserve(out->size() + static_cast<size_t>(depth_));
  for (int r = 0; r < depth_; ++r) {
    const uint32_t b = Bucket(r, key);
    const int s = Sign(r, key);
    out->push_back(CellUpdate{CellIndex(r, b), s * weight});
  }
}

void AgmsProjection::MapBatch(const uint64_t* keys, const double* weights,
                              size_t count, CellUpdate* out) const {
  for (int r = 0; r < depth_; ++r) {
    // Row-major keeps one row's hash family hot across the whole batch
    // (the FastAgms::UpdateBatch idiom); the record-major store keeps the
    // per-record delta slices contiguous for the consumer.
    const BucketHash& bucket = bucket_[static_cast<size_t>(r)];
    const SignHash& sign = sign_[static_cast<size_t>(r)];
    for (size_t j = 0; j < count; ++j) {
      out[j * static_cast<size_t>(depth_) + static_cast<size_t>(r)] =
          CellUpdate{CellIndex(r, bucket(keys[j])),
                     sign(keys[j]) * weights[j]};
    }
  }
}

FastAgms::FastAgms(std::shared_ptr<const AgmsProjection> projection)
    : projection_(std::move(projection)),
      state_(projection_->dimension()) {}

void FastAgms::Update(uint64_t key, double weight) {
  const AgmsProjection& p = *projection_;
  for (int r = 0; r < p.depth(); ++r) {
    state_[p.CellIndex(r, p.Bucket(r, key))] += p.Sign(r, key) * weight;
  }
}

void FastAgms::UpdateBatch(const uint64_t* keys, const double* weights,
                           size_t count) {
  const AgmsProjection& p = *projection_;
  const int d = p.depth();
  for (int r = 0; r < d; ++r) {
    // A cell is owned by exactly one row, so processing the batch one row
    // at a time preserves the per-cell addition order of Update().
    for (size_t i = 0; i < count; ++i) {
      state_[p.CellIndex(r, p.Bucket(r, keys[i]))] +=
          p.Sign(r, keys[i]) * weights[i];
    }
  }
}

double FastAgms::SelfJoinEstimate() const {
  return fgm::SelfJoinEstimate(*projection_, state_);
}

double FastAgms::JoinEstimate(const FastAgms& a, const FastAgms& b) {
  FGM_CHECK_EQ(a.projection_.get(), b.projection_.get());
  return fgm::JoinEstimate(*a.projection_, a.state_, b.state_);
}

double Median(std::vector<double> values) {
  FGM_CHECK(!values.empty());
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<long>(mid),
                   values.end());
  if (values.size() % 2 == 1) return values[mid];
  const double hi = values[mid];
  const double lo =
      *std::max_element(values.begin(), values.begin() + static_cast<long>(mid));
  return 0.5 * (lo + hi);
}

double SelfJoinEstimate(const AgmsProjection& projection,
                        const RealVector& state) {
  FGM_CHECK_EQ(state.dim(), projection.dimension());
  const int d = projection.depth();
  const int w = projection.width();
  std::vector<double> rows(static_cast<size_t>(d));
  for (int r = 0; r < d; ++r) {
    double acc = 0.0;
    const size_t base = static_cast<size_t>(r) * static_cast<size_t>(w);
    for (int j = 0; j < w; ++j) {
      const double x = state[base + static_cast<size_t>(j)];
      acc += x * x;
    }
    rows[static_cast<size_t>(r)] = acc;
  }
  return Median(std::move(rows));
}

double JoinEstimate(const AgmsProjection& projection, const RealVector& s1,
                    const RealVector& s2) {
  FGM_CHECK_EQ(s1.dim(), projection.dimension());
  FGM_CHECK_EQ(s2.dim(), projection.dimension());
  const int d = projection.depth();
  const int w = projection.width();
  std::vector<double> rows(static_cast<size_t>(d));
  for (int r = 0; r < d; ++r) {
    double acc = 0.0;
    const size_t base = static_cast<size_t>(r) * static_cast<size_t>(w);
    for (int j = 0; j < w; ++j) {
      acc += s1[base + static_cast<size_t>(j)] * s2[base + static_cast<size_t>(j)];
    }
    rows[static_cast<size_t>(r)] = acc;
  }
  return Median(std::move(rows));
}

double JoinEstimateConcatenated(const AgmsProjection& projection,
                                const RealVector& s1s2) {
  const size_t dim = projection.dimension();
  FGM_CHECK_EQ(s1s2.dim(), 2 * dim);
  const int d = projection.depth();
  const int w = projection.width();
  std::vector<double> rows(static_cast<size_t>(d));
  for (int r = 0; r < d; ++r) {
    double acc = 0.0;
    const size_t base = static_cast<size_t>(r) * static_cast<size_t>(w);
    for (int j = 0; j < w; ++j) {
      acc += s1s2[base + static_cast<size_t>(j)] *
             s1s2[dim + base + static_cast<size_t>(j)];
    }
    rows[static_cast<size_t>(r)] = acc;
  }
  return Median(std::move(rows));
}

}  // namespace fgm
