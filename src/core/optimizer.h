// FGM/O cost-based round optimizer (§4.2).
//
// At the beginning of a round the coordinator decides, per site, whether
// to ship the full safe function (d_i = 1, D words carrying E) or the
// 3-word cheap bound b(x) = L‖x‖ + φ(0) (d_i = 0). It models each local
// stream with two rates measured in the previous round:
//     φ(X_i(t)) ≈ φ(0) + |φ(0)|·α_i·t      (full-function growth)
//     ‖X_i(t)‖ + φ(0) ≈ φ(0) + |φ(0)|·β_i·t (cheap-bound growth)
// (t counts *global* updates), plus the fraction γ_i of updates arriving
// at site i. The round length prediction is τ(d) = k/(β_tot - d·θ) with
// θ_i = β_i - α_i, and the round gain is
//     g(d) = τ - Σ_i min(γ_i·τ, D) - D·Σ_i d_i.
//
// Refinement over the paper's Eq. 14 (documented in DESIGN.md): since
// rounds repeat, the steady-state objective is the gain *per update*
//     rate(d) = (g(d) - C) / τ(d),
// where C is the fixed per-round overhead (subround quanta/polls and the
// end-of-round flush, ≈ (3k+1)·log2(1/ε_ψ) + 4k words). Maximizing g
// alone is scale-free in C and over-values short-round plans. The greedy
// structure is unchanged: for each candidate count n, the optimal choice
// gives the full function to the n sites of largest θ_i (both g and rate
// are increasing in τ for fixed n, §4.2.3).

#ifndef FGM_CORE_OPTIMIZER_H_
#define FGM_CORE_OPTIMIZER_H_

#include <cstdint>
#include <vector>

namespace fgm {

/// Per-site rate estimates from the previous round.
struct SiteRates {
  double alpha = 0.0;  ///< full-function growth rate (per global update)
  double beta = 0.0;   ///< cheap-bound growth rate
  double gamma = 0.0;  ///< fraction of global updates arriving here
  bool active = true;  ///< false when the site saw no updates (forced d=0)
};

struct RoundPlan {
  std::vector<uint8_t> full_function;  ///< d_i: 1 = ship φ, 0 = ship cheap b
  double predicted_length = 0.0;       ///< τ(d) in updates
  double predicted_gain = 0.0;         ///< g(d) - C in words
  double predicted_rate = 0.0;         ///< (g(d) - C)/τ(d), the objective
};

/// Live fleet-health view of the link costs (fed by obs/health.h): a
/// per-site multiplicative factor (≥ 1) on the D-word cost of shipping
/// the full function — lossy links retransmit, so their shipments cost
/// 1/(1-p)·D expected words; down/slow links are penalized further. Null
/// pointer or empty vector ⇒ uniform cost 1, which reproduces the
/// cost model (and the plan) of the health-blind optimizer bit-exactly.
struct HealthView {
  std::vector<double> ship_cost;
};

/// Computes the rate-maximizing plan. `dimension` is D (words to ship E);
/// `round_overhead_words` is the fixed per-round cost C (0 recovers the
/// paper's per-round gain objective up to the 1/τ normalization). When
/// `health` carries per-site ship costs, candidate sites are ranked by
/// θ_i per unit cost and each selected site is charged cost_i·D.
RoundPlan OptimizeRoundPlan(const std::vector<SiteRates>& rates,
                            int64_t dimension,
                            double round_overhead_words = 0.0,
                            const HealthView* health = nullptr);

/// Second-order rate prediction (the paper's §4.2.5 suggests higher-order
/// models as future work): linearly extrapolates each site's α/β from the
/// last two rounds, α' = α_last + damping·(α_last - α_prev), clamped back
/// to 0 < α ≤ β. Sites inactive in either round stay first-order.
std::vector<SiteRates> ExtrapolateRates(const std::vector<SiteRates>& prev,
                                        const std::vector<SiteRates>& last,
                                        double damping = 1.0);

/// Derives the rate estimates from the previous round's observations
/// (§4.2.4): `phi_zero` = φ(0) < 0 of the previous round's function,
/// `phi_end[i]` = φ(X_i) at round end, `drift_norm[i]` = ‖X_i‖ at round
/// end, `site_updates[i]` = updates received by site i; τ = Σ updates.
/// Enforces 0 < α_i ≤ β_i.
std::vector<SiteRates> EstimateSiteRates(
    double phi_zero, const std::vector<double>& phi_end,
    const std::vector<double>& drift_norm,
    const std::vector<int64_t>& site_updates);

}  // namespace fgm

#endif  // FGM_CORE_OPTIMIZER_H_
