// FGM local-site state machine (§2.4, steps executed at sites).
//
// A site holds its drift vector X_i inside a DriftEvaluator for the safe
// function it was shipped this round (the full φ or the cheap bound b),
// tracks its φ-value, and raises counter increments
//     c_i := max{c_i, ⌊(φ(X_i) - z_i)/θ⌋}
// during subrounds. With rebalancing active the site monitors the
// perspective λφ(X_i/λ) instead (§4.1).
//
// The per-update work is split in two halves so the parallel engine can
// speculate (value-series model, exec/sharded.h):
//   * the EVALUATOR side — map the record, apply the deltas, compute the
//     post-update value v = λφ(X_i/λ) (SpeculateBatch / ApplyDeltasValue).
//     This half never reads the subround scalars (z_i, θ, c_i), so it can
//     run ahead of the coordinator;
//   * the COMMIT side — the scalar counter rule over v (CommitValue),
//     which advances z_i-relative counters and the committed shadow value.
// Serial processing (Process/ApplyUpdate) chains the two, which is
// bit-identical to the previous fused implementation.

#ifndef FGM_CORE_FGM_SITE_H_
#define FGM_CORE_FGM_SITE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"
#include "query/query.h"
#include "safezone/safe_function.h"
#include "sketch/fast_agms.h"
#include "stream/record.h"

namespace fgm {

class FgmSite {
 public:
  /// `dim` is the state dimension D, bounding the raw-update log the site
  /// keeps for the verbatim drift representation.
  FgmSite(int id, size_t dim) : id_(id), dim_(dim) {}

  int id() const { return id_; }

  /// Installs the safe function for a new round; drift resets to 0.
  void BeginRound(const SafeFunction* fn);

  /// Starts a subround with quantum θ > 0: records z_i, resets c_i.
  void BeginSubround(double quantum);

  /// Crash-recovery handshake (sim/ networks): rebuilds the evaluator for
  /// the re-shipped safe function while PRESERVING the accumulated drift
  /// — the drift and the raw-update log live in stable storage; only the
  /// evaluator's working state and the subround baseline were volatile.
  /// Re-baselines the counter at the current value under the delivered
  /// λ and θ.
  void ResyncRound(const SafeFunction* fn, double lambda, double theta);

  /// Installs a new rebalancing scale.
  void SetLambda(double lambda);

  /// Maps one local stream record through the query's sketch projection
  /// (into per-site scratch — safe to call concurrently across sites) and
  /// applies the resulting deltas; returns the counter increment to
  /// report (0 = stay silent). Timers may be null.
  int64_t Process(const ContinuousQuery& query, const StreamRecord& record,
                  WallTimer* sketch_timer, WallTimer* safe_fn_timer);

  /// Applies the deltas of one local stream update and returns the
  /// counter increment to report (0 = stay silent). The record is logged
  /// for the verbatim drift representation.
  int64_t ApplyUpdate(const StreamRecord& record,
                      const std::vector<CellUpdate>& deltas);

  /// Delta-only variant (unit tests); forfeits the verbatim
  /// representation for the current flush interval.
  int64_t ApplyUpdate(const std::vector<CellUpdate>& deltas);

  // -- Value-series speculation (parallel engine) ---------------------------

  /// Evaluator half of `n` Process() calls, batched: maps the records
  /// base[positions[j]] through the query (batched projection), logs them,
  /// applies the deltas and writes the post-update value sequence into
  /// `values[0..n)`. Does NOT run the counter rule — feed the values to
  /// CommitValue() in order (possibly interleaved with other sites under a
  /// global order) to reproduce serial behavior bit-exactly.
  void SpeculateBatch(const ContinuousQuery& query, const StreamRecord* base,
                      const int64_t* positions, int64_t n, double* values,
                      WallTimer* sketch_timer, WallTimer* safe_fn_timer);

  /// Commit half: runs the counter rule on one post-update value and
  /// advances the committed shadow value and the subround value range.
  /// Returns the counter increment to report (0 = stay silent).
  int64_t CommitValue(double v);

  /// Re-applies one record after RestoreCheckpoint(): map + log + deltas
  /// + update counters, skipping the value computation (the commit side
  /// already consumed this record's value). Leaves the evaluator
  /// bit-identical to a serial Process() of the same record.
  void ReplayUpdate(const ContinuousQuery& query, const StreamRecord& record);

  /// Last committed value — what the coordinator may read mid-speculation
  /// in place of CurrentValue() (the evaluator may have run ahead).
  double committed_value() const { return committed_v_; }

  /// Declares the evaluator state committed (e.g. fast-merge mode, where
  /// speculated records are committed wholesale without a value walk).
  void SyncCommittedToLive() { committed_v_ = CurrentValue(); }

  /// The value the site currently reports: λφ(X_i/λ).
  double CurrentValue() const { return evaluator_->ValueAtScale(lambda_); }

  /// Range (sup - inf) of the reported value during the current subround
  /// — the site's contribution to the ψ-variability of §2.5.1.
  double SubroundValueRange() const { return value_max_ - value_min_; }

  /// The current drift vector (flushed to the coordinator).
  const RealVector& drift() const { return evaluator_->drift(); }

  /// Builds the flush message for the coordinator: the update count plus
  /// the cheaper of the dense drift and the verbatim raw-update log.
  DriftFlushMsg MakeFlushMsg() const {
    return DriftFlushMsg::ForFlush(drift(), updates_since_flush_, log_);
  }

  /// Resets the drift to 0 after a flush; keeps round bookkeeping.
  void FlushReset();

  int64_t updates_since_flush() const { return updates_since_flush_; }
  int64_t updates_in_round() const { return updates_in_round_; }
  int64_t counter() const { return counter_; }

  /// Snapshots the speculative (evaluator-side) state — evaluator, log
  /// position, update counters — so a later RestoreCheckpoint rewinds the
  /// site bit-exactly. The commit-side scalars (z_/λ/θ, counter, value
  /// range, committed value) only move at coordinator commits and are
  /// deliberately not saved: the commit walk advances them past the
  /// checkpoint, and restoring them would clobber committed state. At
  /// most one restore per save; a new save discards the old snapshot.
  void SaveCheckpoint();
  void RestoreCheckpoint();

 private:
  struct Checkpoint {
    std::unique_ptr<DriftEvaluator> evaluator;
    RawUpdateLog::Mark mark;
    int64_t updates_since_flush = 0;
    int64_t updates_in_round = 0;
    bool valid = false;
  };

  /// Applies deltas + update counters, returns the post-update value.
  double ApplyDeltasValue(const CellUpdate* deltas, size_t n);

  int id_;
  size_t dim_;
  RawUpdateLog log_;
  std::unique_ptr<DriftEvaluator> evaluator_;
  std::vector<CellUpdate> deltas_;  // per-site scratch for Process()
  std::vector<CellUpdate> batch_deltas_;  // scratch for SpeculateBatch()
  std::vector<size_t> batch_ends_;        // scratch for SpeculateBatch()
  Checkpoint checkpoint_;
  double lambda_ = 1.0;
  double quantum_ = 1.0;
  double z_ = 0.0;
  double committed_v_ = 0.0;  ///< shadow of CurrentValue() at last commit
  double value_min_ = 0.0;
  double value_max_ = 0.0;
  int64_t counter_ = 0;
  int64_t updates_since_flush_ = 0;
  int64_t updates_in_round_ = 0;
};

}  // namespace fgm

#endif  // FGM_CORE_FGM_SITE_H_
