// FGM protocol configuration.

#ifndef FGM_CORE_FGM_CONFIG_H_
#define FGM_CORE_FGM_CONFIG_H_

#include <cstdint>

#include "net/network.h"
#include "sim/net_config.h"

namespace fgm {

class HealthMonitor;
class MetricsRegistry;
class SpanSink;
class TimeSeries;
class TraceSink;
class WallTimer;

struct FgmConfig {
  /// How protocol messages travel: counting-only (fast simulation) or the
  /// strict serializing path that encodes/decodes every message and
  /// cross-checks charged vs encoded words. kAuto follows the
  /// FGM_STRICT_WIRE environment variable.
  TransportMode transport = TransportMode::kAuto;

  /// Simulated-network parameters (sim/net_config.h). When enabled() the
  /// protocol runs over a sim::EventNetwork instead of the synchronous
  /// transport: counter increments become fire-and-forget datagrams,
  /// control RPCs gain latency/loss/retransmission, and the fault plan
  /// drives the crash/rejoin handshake.
  sim::NetSimConfig net;

  /// ε_ψ of §2.4: subrounds end when ψ ≥ ε_ψ·k·φ(0). The paper uses 0.01
  /// throughout and so do we.
  double eps_psi = 0.01;

  /// Enables the overhead-free rebalancing of §4.1 (balance vector +
  /// scaling factor λ). Part of the protocol the paper calls "FGM".
  bool rebalance = true;

  /// Enables the cost-based optimizer of §4.2 ("FGM/O"): per-round choice
  /// between the full safe function and the 3-word cheap bound per site.
  bool optimizer = false;

  /// Second-order rate prediction for the optimizer (§4.2.5's suggested
  /// extension): extrapolates the per-site rates from the last two rounds
  /// instead of reusing the last round's verbatim.
  bool optimizer_second_order = false;

  /// Feedback guard for the optimizer (§4.2.5 notes the crude linear
  /// model "will often be fooled"): the coordinator keeps an EWMA of the
  /// measured words-per-update of mostly-cheap vs mostly-full rounds and
  /// overrides a cheap plan with the all-full plan when cheap rounds have
  /// demonstrably cost more (by feedback_margin). Every
  /// feedback_probe_period-th round the model's choice passes through
  /// unguarded so the estimate can recover after workload shifts.
  bool optimizer_feedback = true;
  double feedback_margin = 1.1;
  int64_t feedback_probe_period = 16;

  /// Runaway-cheap-round cutoff: a mostly-cheap round that has already
  /// spent more than this many times the cost of a full-zone round
  /// (k·D + expected subround overhead) is ended early, bounding the
  /// damage of a mispredicted plan to O(k·D) words.
  double feedback_budget_factor = 4.0;

  /// Rebalancing is abandoned (the round ends) when the recomputed scale
  /// λ = 1 - µ* drops below this. Must exceed eps_psi.
  double min_lambda = 0.05;

  /// Rebalancing exists to avoid re-shipping safe zones; it only pays when
  /// the zone shipping it avoids costs more than the extra subround
  /// overhead it incurs (§4.1.1 explicitly leaves the flush policy as a
  /// conservatively-chosen heuristic). The round is ended directly when
  /// the current plan's average upstream words per site falls below this.
  double rebalance_min_words_per_site = 16.0;

  /// Bisection tolerance for µ* as a fraction of |φ(0)|.
  double bisection_tol = 1e-3;

  /// Cap on subrounds per round — a runaway-loop backstop only. Hitting
  /// it forces the round to end (counted in overflow_rounds()) instead of
  /// aborting the run. Note that with rebalancing a round can
  /// legitimately last very long: when the balance vector keeps
  /// cancelling itself (stationary windowed streams), λ stays near 1 and
  /// the round keeps being extended, which is the desired behaviour.
  int64_t max_subrounds_per_round = int64_t{1} << 40;

  /// Structured event sink (obs/trace.h). Non-owning; nullptr (the
  /// default) disables tracing and every hook reduces to one branch.
  TraceSink* trace = nullptr;

  /// Metrics registry (obs/metrics.h) receiving the per-phase wall
  /// timers. Non-owning; nullptr disables.
  MetricsRegistry* metrics = nullptr;

  /// Run-health time series (obs/timeseries.h): one RunSnapshot per
  /// completed round (words by kind, ψ/θ/λ, plan audit, site skew).
  /// Non-owning; nullptr disables — sampling happens only at round
  /// boundaries, never on the record path.
  TimeSeries* timeseries = nullptr;

  /// Causal span sink (obs/span.h): rounds → subrounds → RPCs → wire
  /// messages become parent/child intervals for critical-path
  /// attribution. Non-owning; nullptr (the default) disables spans and
  /// every hook reduces to one branch.
  SpanSink* spans = nullptr;

  /// Ships the innermost open span's id as one extra word on every wire
  /// message (charged and, on serializing paths, actually encoded). Off
  /// by default so default traffic stays bit-identical.
  bool span_wire = false;

  /// Live run-health monitor (obs/health.h): EWMA estimators over the
  /// round-boundary snapshot stream plus the alert-rule engine. Fed at
  /// round boundaries and fault transitions only — never on the record
  /// path. Non-owning; nullptr (the default) disables every hook.
  HealthMonitor* health = nullptr;

  /// Health-aware plan selection: once the monitor's rate EWMAs have
  /// warmed up, FGM/O plans from them instead of the last-round-only
  /// estimates, charges lossy/slow/down sites their expected shipping
  /// cost (HealthView), and raises the rebalance profitability bar by the
  /// fleet-mean cost factor. Requires `health`; off by default so the
  /// plans (and traffic) stay bit-identical to the seed optimizer.
  bool health_planning = false;
};

}  // namespace fgm

#endif  // FGM_CORE_FGM_CONFIG_H_
