#include "core/fgm_protocol.h"

#include <algorithm>
#include <cmath>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fgm {

namespace {

// An enabled net-sim config swaps the synchronous transport for the
// discrete-event network; everything downstream only sees Transport.
std::unique_ptr<Transport> MakeFgmTransport(const FgmConfig& config,
                                            int num_sites) {
  if (config.net.enabled()) {
    return std::make_unique<sim::EventNetwork>(num_sites, config.net);
  }
  return MakeTransport(config.transport, num_sites);
}

}  // namespace

FgmProtocol::FgmProtocol(const ContinuousQuery* query, int num_sites,
                         FgmConfig config)
    : query_(query),
      sites_k_(num_sites),
      config_(config),
      transport_(MakeFgmTransport(config, num_sites)),
      live_k_(num_sites),
      estimate_(query->dimension()),
      balance_(query->dimension()) {
  FGM_CHECK(query != nullptr);
  FGM_CHECK_GE(num_sites, 1);
  FGM_CHECK_GT(config_.eps_psi, 0.0);
  FGM_CHECK_LT(config_.eps_psi, 1.0);
  FGM_CHECK_GE(config_.max_subrounds_per_round, 1);
  sites_.reserve(static_cast<size_t>(num_sites));
  round_drift_.reserve(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    sites_.emplace_back(i, query->dimension());
    round_drift_.emplace_back(query->dimension());
  }
  plan_.assign(static_cast<size_t>(num_sites), 1);
  site_ok_.assign(static_cast<size_t>(num_sites), 1);
  in_round_.assign(static_cast<size_t>(num_sites), 1);
  down_since_.assign(static_cast<size_t>(num_sites), 0);
  coord_seen_ci_.assign(static_cast<size_t>(num_sites), 0);
  if (config_.net.enabled()) {
    sim_ = static_cast<sim::EventNetwork*>(transport_.get());
    lossy_net_ = config_.net.lossy();
  }
  // Observability hooks must be live before the first round is traced.
  trace_ = config_.trace;
  timeseries_ = config_.timeseries;
  spans_ = config_.spans;
  health_ = config_.health;
  if (health_ != nullptr && trace_ != nullptr) health_->set_trace(trace_);
  if (trace_ != nullptr) transport_->set_trace(trace_);
  if (spans_ != nullptr) transport_->set_spans(spans_);
  if (config_.span_wire) transport_->set_span_wire(true);
  if (config_.metrics != nullptr) {
    transport_->set_metrics(config_.metrics);
    sketch_timer_ = config_.metrics->GetTimer("sketch_update");
    safe_fn_timer_ = config_.metrics->GetTimer("safe_fn_eval");
    if (config_.optimizer) {
      plan_gain_abs_err_ = config_.metrics->GetStats("plan_gain_abs_err");
      plan_gain_rel_err_ = config_.metrics->GetStats("plan_gain_rel_err");
    }
  }
  StartRound();
  // The very first round has no previous round to count against; its
  // setup traffic is still charged (the coordinator must distribute the
  // initial safe functions).
}

std::string FgmProtocol::name() const {
  if (config_.optimizer) return "FGM/O";
  return config_.rebalance ? "FGM" : "FGM-basic";
}

void FgmProtocol::ProcessRecord(const StreamRecord& record) {
  if (sim_ != nullptr) SimTick();
  const int64_t increment = LocalProcess(record, nullptr);
  CommitRecords(1);
  if (increment > 0) {
    CommitEvent(LocalEvent{0, record.site, increment, 0.0});
  }
}

int64_t FgmProtocol::LocalProcess(const StreamRecord& record, double* value) {
  FGM_CHECK(record.site >= 0 && record.site < sites_k_);
  (void)value;  // FGM events carry the counter increment, not a φ-value.
  FgmSite& site = sites_[static_cast<size_t>(record.site)];
  return site.Process(*query_, record, sketch_timer_, safe_fn_timer_);
}

bool FgmProtocol::CommitEvent(const LocalEvent& event) {
  if (sim_ != nullptr) {
    const size_t s = static_cast<size_t>(event.site);
    // Sites post their CUMULATIVE per-subround counter as a one-word
    // fire-and-forget datagram: a lost or reordered datagram is healed by
    // any later one (the coordinator applies positive deltas only). A
    // site outside the round — or down — keeps ingesting records into its
    // local drift but posts nothing; its contribution reaches E at the
    // next resync/flush.
    if (site_ok_[s] != 0 && in_round_[s] != 0) {
      sim_->PostCounter(event.site, CounterMsg{sites_[s].counter()},
                        rounds_, subrounds_this_round_);
      DrainNetwork();
    }
    return false;
  }
  if (SendCounterIncrement(event.site, event.weight)) {
    PollAndAdvance();
    return true;
  }
  return false;
}

bool FgmProtocol::SendCounterIncrement(int site, int64_t increment) {
  // One-word message carrying the increase to c_i.
  const CounterMsg delivered =
      transport_->SendCounter(site, CounterMsg{increment});
  counter_total_ += delivered.increment;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kIncrementMsg;
    e.round = rounds_;
    e.subround = subrounds_this_round_;
    e.site = site;
    e.counter = delivered.increment;
    trace_->Emit(e);
  }
  return counter_total_ > sites_k_;
}

void FgmProtocol::MaterializeForCommit() {
  if (materialize_cb_ == nullptr) return;
  commit_hard_ = true;
  (*materialize_cb_)(commit_pos_);
}

int64_t FgmProtocol::CommitValueSeries(
    const int32_t* site_by_pos, int64_t count, const ValueSeries* series,
    const std::function<void(int64_t)>& materialize, bool fast_merge,
    int64_t* soft_interactions) {
  commit_cursor_.assign(static_cast<size_t>(sites_k_), 0);
  materialize_cb_ = fast_merge ? nullptr : &materialize;
  int64_t soft = 0;
  int64_t consumed = count;
  // Fast merge commits the whole window wholesale; account it upfront so
  // a poll mid-walk sees every window record (deferral semantics).
  if (fast_merge) total_updates_ += count;
  for (int64_t pos = 0; pos < count; ++pos) {
    const size_t shard = static_cast<size_t>(site_by_pos[pos]);
    FGM_CHECK_LT(commit_cursor_[shard], series[shard].count);
    const double v =
        series[shard].values[static_cast<size_t>(commit_cursor_[shard]++)];
    const int64_t increment = sites_[shard].CommitValue(v);
    if (!fast_merge) ++total_updates_;
    if (increment <= 0) continue;
    commit_pos_ = pos;
    if (!SendCounterIncrement(static_cast<int>(shard), increment)) continue;
    if (fast_merge) {
      // The interaction runs on live end-of-window state; detection for
      // the values recorded after it defers to the next window.
      for (int i = 0; i < sites_k_; ++i) {
        if (in_round_[static_cast<size_t>(i)] != 0) {
          sites_[static_cast<size_t>(i)].SyncCommittedToLive();
        }
      }
      PollAndAdvance();
      break;
    }
    commit_hard_ = false;
    PollAndAdvance();
    if (commit_hard_) {
      consumed = pos + 1;
      break;
    }
    ++soft;
  }
  materialize_cb_ = nullptr;
  commit_pos_ = -1;
  commit_hard_ = false;
  if (soft_interactions != nullptr) *soft_interactions = soft;
  return consumed;
}

void FgmProtocol::StartRound() {
  // Observe the finished round before any of its state is reset: plan
  // outcome vs prediction, and the round's time-series sample. The words
  // booked here fall strictly between this round's RoundStart event and
  // its PlanOutcome, which is what lets the replay checker re-sum them.
  if (spans_ != nullptr && round_span_ != 0) {
    spans_->End(round_span_);
    round_span_ = 0;
  }
  if (rounds_ > 0) EmitRoundObservability();

  // Book the ending round's measured cost rate under its plan class
  // (feedback guard input), then snapshot for the new round.
  if (rounds_ > 0 && config_.optimizer) {
    const int64_t words =
        transport_->stats().total_words() - round_start_words_;
    const int64_t updates = total_updates_ - round_start_updates_;
    if (updates > 0) {
      int64_t full_count = 0;
      for (uint8_t d : plan_) full_count += d;
      // Class 1 = "has cheap sites": even a few cheap bounds can poison a
      // round with variability-driven subround churn.
      const size_t cls = (full_count < sites_k_) ? 1 : 0;
      const double rate =
          static_cast<double>(words) / static_cast<double>(updates);
      class_cost_ewma_[cls] = class_cost_count_[cls] == 0
                                  ? rate
                                  : 0.7 * class_cost_ewma_[cls] + 0.3 * rate;
      ++class_cost_count_[cls];
    }
  }
  round_start_words_ = transport_->stats().total_words();
  round_start_words_by_kind_ = transport_->stats().words_by_kind;
  round_start_updates_ = total_updates_;

  ++rounds_;
  if (spans_ != nullptr) {
    // Rounds parent to the run, never to whatever scope triggered them
    // (a reconfigure's resync scope outlives no round).
    round_span_ = spans_->BeginWithParent(SpanKind::kRound, -1, rounds_, 0,
                                          nullptr, spans_->root());
  }
  if (rounds_ > 1) {
    subround_histogram_.Add(subrounds_this_round_);
  }
  subrounds_this_round_ = 0;

  // Round membership: every site whose link is up joins. A site dropped
  // by the dead-site deadline keeps accumulating drift locally and is
  // re-admitted (after a flush) by the first StartRound following its
  // rejoin. In synchronous mode every site is always a member.
  if (sim_ != nullptr) {
    live_k_ = 0;
    for (int i = 0; i < sites_k_; ++i) {
      in_round_[static_cast<size_t>(i)] = site_ok_[static_cast<size_t>(i)];
      live_k_ += site_ok_[static_cast<size_t>(i)] != 0 ? 1 : 0;
    }
    FGM_CHECK_GE(live_k_, 1);  // the fault plan killed every site
    paused_ = false;
  }

  query_value_ = query_->Evaluate(estimate_);
  thresholds_ = query_->Thresholds(estimate_);
  // A site that is down right now keeps accumulating drift through an
  // evaluator built against the OUTGOING round's safe function, and only
  // rebuilds it at resync. Keep retired safe functions alive until a
  // round starts with every site up (when no evaluator can reference
  // them any longer). The cheap bound needs the same treatment: a site
  // that crashed on a d = 0 plan evaluates the outgoing round's b(x)
  // until its resync rebuilds φ.
  if (sim_ != nullptr && safe_fn_ != nullptr) {
    if (live_k_ < sites_k_) {
      retired_safe_fns_.push_back(std::move(safe_fn_));
      if (cheap_fn_ != nullptr) {
        retired_safe_fns_.push_back(std::move(cheap_fn_));
      }
    } else {
      retired_safe_fns_.clear();
    }
  }
  safe_fn_ = query_->MakeSafeFunction(estimate_);
  phi_zero_ = safe_fn_->AtZero();
  FGM_CHECK_LT(phi_zero_, 0.0);
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kRoundStart;
    e.round = rounds_;
    e.k = live_k_;
    e.psi = static_cast<double>(live_k_) * phi_zero_;
    e.value = phi_zero_;
    e.eps = config_.eps_psi;
    trace_->Emit(e);
  }
  cheap_fn_ =
      std::make_unique<CheapBoundFunction>(CheapBoundFunction::For(*safe_fn_));

  // FGM/O: choose the per-site plan from the previous round's rates. The
  // fixed per-round overhead covers the expected subround traffic
  // ((3k+1) words per subround, ~log2(1/ε_ψ) subrounds) plus the
  // end-of-round poll and flush acknowledgements.
  const std::vector<SiteRates>* rates_used = nullptr;
  // A reduced-k round (a site dead past the deadline) ships full zones to
  // the survivors: the optimizer's cost model prices a full-k round.
  if (config_.optimizer && have_rates_ && live_k_ == sites_k_) {
    const double k = static_cast<double>(sites_k_);
    const double overhead =
        (3.0 * k + 1.0) * std::log2(1.0 / config_.eps_psi) + 4.0 * k;
    // Health-aware planning: once the monitor's EWMAs have warmed up,
    // plan from the smoothed per-site rates (a one-round spike no longer
    // flips the plan) and charge each site its expected shipping cost
    // over its live link quality.
    const bool health_rates = config_.health_planning && health_ != nullptr &&
                              health_->have_rates();
    HealthView health_view;
    const HealthView* view = nullptr;
    if (health_rates) {
      scratch_rates_.assign(static_cast<size_t>(sites_k_), SiteRates{});
      double gamma_sum = 0.0;
      for (int i = 0; i < sites_k_; ++i) {
        if (health_->rate_rounds(i) > 0) gamma_sum += health_->rate_gamma(i);
      }
      for (int i = 0; i < sites_k_; ++i) {
        SiteRates& r = scratch_rates_[static_cast<size_t>(i)];
        if (health_->rate_rounds(i) == 0) {
          r.active = false;  // never reported: excluded, forced d = 0
          continue;
        }
        r.alpha = health_->rate_alpha(i);
        r.beta = health_->rate_beta(i);
        // The EWMA gammas need not sum to 1 (sites observe different
        // round subsets); renormalize so the γ_i·τ downstream term keeps
        // its share-of-stream meaning.
        r.gamma = gamma_sum > 0.0 ? health_->rate_gamma(i) / gamma_sum : 0.0;
        if (r.alpha <= 0.0) r.alpha = 1e-12;
        if (r.beta < r.alpha) r.beta = r.alpha;
        r.active = r.beta > 0.0;
      }
      health_view.ship_cost.resize(static_cast<size_t>(sites_k_));
      for (int i = 0; i < sites_k_; ++i) {
        health_view.ship_cost[static_cast<size_t>(i)] =
            health_->ShipCostFactor(i);
      }
      view = &health_view;
    }
    const std::vector<SiteRates>& rates =
        health_rates
            ? scratch_rates_
            : ((config_.optimizer_second_order && have_older_rates_)
                   ? (scratch_rates_ =
                          ExtrapolateRates(older_rates_, prev_rates_))
                   : prev_rates_);
    rates_used = &rates;
    const RoundPlan round_plan = OptimizeRoundPlan(
        rates, static_cast<int64_t>(query_->dimension()), overhead, view);
    plan_ = round_plan.full_function;
    plan_predicted_ = true;
    plan_pred_len_ = round_plan.predicted_length;
    plan_pred_gain_ = round_plan.predicted_gain;
    plan_pred_rate_ = round_plan.predicted_rate;
    // Feedback guard: if mostly-cheap rounds have measurably cost more
    // per update than mostly-full rounds, override a cheap plan (§4.2.5's
    // "fooled optimizer" failure mode). Probe rounds pass unguarded.
    if (config_.optimizer_feedback &&
        rounds_ % config_.feedback_probe_period != 0) {
      int64_t full_count = 0;
      for (uint8_t d : plan_) full_count += d;
      const bool has_cheap = full_count < sites_k_;
      if (has_cheap && class_cost_count_[0] > 0 &&
          class_cost_count_[1] > 0 &&
          class_cost_ewma_[1] >
              config_.feedback_margin * class_cost_ewma_[0]) {
        plan_.assign(static_cast<size_t>(sites_k_), 1);
        ++cheap_overrides_;
        // The executed plan is no longer the one the model priced; its
        // prediction would audit a round that never ran.
        plan_predicted_ = false;
      }
    }
  } else {
    plan_.assign(static_cast<size_t>(sites_k_), 1);
    plan_predicted_ = false;
  }
  if (!plan_predicted_) {
    plan_pred_len_ = 0.0;
    plan_pred_gain_ = 0.0;
    plan_pred_rate_ = 0.0;
  }

  // Plan audit: what FGM/O decided and why, before the round's traffic.
  if (trace_ != nullptr && config_.optimizer) {
    int64_t full_sites = 0;
    for (uint8_t d : plan_) full_sites += d;
    TraceEvent e;
    e.kind = TraceEventKind::kPlanChosen;
    e.round = rounds_;
    e.counter = full_sites;
    e.k = sites_k_;
    e.pred_len = plan_pred_len_;
    e.pred_gain = plan_pred_gain_;
    e.pred_rate = plan_pred_rate_;
    trace_->Emit(e);
    if (rates_used != nullptr) {
      for (int i = 0; i < sites_k_; ++i) {
        const SiteRates& r = (*rates_used)[static_cast<size_t>(i)];
        TraceEvent s;
        s.kind = TraceEventKind::kPlanSite;
        s.round = rounds_;
        s.site = i;
        s.counter = plan_[static_cast<size_t>(i)];
        s.alpha = r.alpha;
        s.beta = r.beta;
        s.gamma = r.gamma;
        trace_->Emit(s);
      }
    }
  }

  for (int i = 0; i < sites_k_; ++i) {
    FgmSite& site = sites_[static_cast<size_t>(i)];
    round_drift_[static_cast<size_t>(i)].SetZero();
    if (in_round_[static_cast<size_t>(i)] == 0) continue;
    if (plan_[static_cast<size_t>(i)]) {
      // Ship E; the site reconstructs φ from it (§2.4 step 1).
      transport_->ShipSafeZone(i, SafeZoneMsg{estimate_});
      site.BeginRound(safe_fn_.get());
      ++full_function_ships_;
    } else {
      // Ship the 3-word cheap bound (§4.2.1).
      transport_->ShipCheapZone(
          i, CheapZoneMsg{cheap_fn_->LipschitzBound(), 1.0,
                          cheap_fn_->AtZero()});
      site.BeginRound(cheap_fn_.get());
    }
    ++total_function_ships_;
  }

  balance_.SetZero();
  lambda_ = 1.0;
  psi_b_ = 0.0;

  // Initially ψ = kφ(0) (both φ and b share the value at zero).
  StartSubround(static_cast<double>(live_k_) * phi_zero_);
}

void FgmProtocol::EmitRoundObservability() {
  if (trace_ == nullptr && timeseries_ == nullptr &&
      plan_gain_abs_err_ == nullptr && health_ == nullptr) {
    return;
  }
  const TrafficStats& t = transport_->stats();
  const int64_t round_words = t.total_words() - round_start_words_;
  const int64_t round_updates = total_updates_ - round_start_updates_;
  // Gain is measured against the centralizing baseline's one word per
  // update, the same normalization the optimizer's g(d) uses.
  const double actual_gain =
      static_cast<double>(round_updates) - static_cast<double>(round_words);
  if (trace_ != nullptr && config_.optimizer) {
    TraceEvent e;
    e.kind = TraceEventKind::kPlanOutcome;
    e.round = rounds_;
    e.count = round_updates;
    e.words = round_words;
    e.pred_gain = plan_pred_gain_;
    e.actual_gain = actual_gain;
    trace_->Emit(e);
  }
  if (plan_gain_abs_err_ != nullptr && plan_predicted_) {
    const double err = std::fabs(plan_pred_gain_ - actual_gain);
    plan_gain_abs_err_->Add(err);
    plan_gain_rel_err_->Add(err /
                            std::max(std::fabs(actual_gain), 1.0));
  }
  if (timeseries_ != nullptr || health_ != nullptr) {
    static_assert(kSnapshotMsgKinds == static_cast<int>(MsgKind::kKindCount),
                  "RunSnapshot's kind slots must cover every MsgKind");
    RunSnapshot s;
    s.kind = "round";
    s.records = total_updates_;
    s.round = rounds_;
    s.subrounds = subrounds_this_round_;
    s.total_subrounds = subrounds_;
    s.psi = last_psi_;
    s.theta = last_theta_;
    s.lambda = lambda_;
    s.total_words = t.total_words();
    s.round_words = round_words;
    for (size_t i = 0; i < s.words_by_kind.size(); ++i) {
      s.words_by_kind[i] = t.words_by_kind[i];
      s.round_words_by_kind[i] =
          t.words_by_kind[i] - round_start_words_by_kind_[i];
    }
    for (uint8_t d : plan_) s.plan_full_sites += d;
    s.pred_gain = plan_pred_gain_;
    s.actual_gain = actual_gain;
    int64_t updates_sum = 0;
    for (int i = 0; i < sites_k_; ++i) {
      const int64_t u = sites_[static_cast<size_t>(i)].updates_in_round();
      updates_sum += u;
      s.site_updates_max = std::max(s.site_updates_max, u);
      const double norm = round_drift_[static_cast<size_t>(i)].Norm();
      if (norm > s.drift_norm_max) {
        s.drift_norm_max = norm;
        s.hot_site = i;
      }
      s.drift_norm_mean += norm;
    }
    s.site_updates_mean =
        static_cast<double>(updates_sum) / static_cast<double>(sites_k_);
    s.drift_norm_mean /= static_cast<double>(sites_k_);
    if (sim_ != nullptr) {
      const sim::SimNetStats& n = sim_->net_stats();
      s.in_flight_words = n.in_flight_words;
      s.max_in_flight_words = n.max_in_flight_words;
      s.retransmit_words = n.retransmitted_words;
      s.dropped_words = n.dropped_words;
      s.resyncs = n.resyncs;
    }
    if (timeseries_ != nullptr) timeseries_->Record(s);
    if (health_ != nullptr) {
      // This runs before ++rounds_ / membership / φ rebuild, so live_k_
      // and phi_zero_ still describe the finished round — exactly the
      // values its stop level was computed from.
      health_->ObserveRound(s);
      for (int i = 0; i < sites_k_; ++i) {
        health_->ObserveSite(i, sites_[static_cast<size_t>(i)].updates_in_round(),
                             round_drift_[static_cast<size_t>(i)].Norm());
      }
      if (sim_ != nullptr) {
        const std::vector<sim::SiteNetStats>& per_site = sim_->site_stats();
        for (int i = 0; i < sites_k_; ++i) {
          const sim::SiteNetStats& n = per_site[static_cast<size_t>(i)];
          SiteNetSample sample;
          sample.delivered_msgs = n.delivered_msgs;
          sample.delivered_words = n.delivered_words;
          sample.dropped_msgs = n.dropped_msgs;
          sample.dropped_words = n.dropped_words;
          sample.retransmitted_msgs = n.retransmitted_msgs;
          sample.retransmitted_words = n.retransmitted_words;
          sample.latency_ticks = n.latency_ticks;
          sample.latency_samples = n.latency_samples;
          sample.downs = n.downs;
          health_->ObserveNet(i, sample);
        }
      }
      health_->ObservePsiMargin(
          last_psi_,
          config_.eps_psi * static_cast<double>(live_k_) * phi_zero_);
      health_->ObserveOverflowRounds(overflow_rounds_);
      health_->EvaluateAlerts(rounds_, sim_ != nullptr ? sim_->now() : 0);
    }
  }
}

void FgmProtocol::StartSubround(double psi_total) {
  FGM_CHECK_LT(psi_total, 0.0);
  last_psi_ = psi_total;
  const double quantum = -psi_total / (2.0 * static_cast<double>(live_k_));
  last_theta_ = quantum;
  counter_total_ = 0;
  ++subrounds_;
  ++subrounds_this_round_;
  if (spans_ != nullptr) {
    subround_span_ =
        spans_->BeginWithParent(SpanKind::kSubround, -1, rounds_,
                                subrounds_this_round_, nullptr, round_span_);
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kSubroundStart;
    e.round = rounds_;
    e.subround = subrounds_this_round_;
    e.psi = psi_total;
    e.theta = quantum;
    trace_->Emit(e);
  }
  for (int i = 0; i < sites_k_; ++i) {
    if (in_round_[static_cast<size_t>(i)] == 0) continue;
    FgmSite& site = sites_[static_cast<size_t>(i)];
    const QuantumMsg delivered =
        transport_->ShipQuantum(i, QuantumMsg{quantum});
    site.BeginSubround(delivered.theta);
    coord_seen_ci_[static_cast<size_t>(i)] = 0;
  }
  if (sim_ != nullptr) last_counter_activity_ = sim_->now();
}

void FgmProtocol::PollAndAdvance(const char* reason) {
  // Collect all φ(X_i): k one-word poll requests + k one-word replies.
  double psi = 0.0;
  double delta_psi = 0.0;  // Δψ_n of §2.5.1: Σ_i (sup Φ_i,n - inf Φ_i,n)
  for (int i = 0; i < sites_k_; ++i) {
    if (in_round_[static_cast<size_t>(i)] == 0) continue;
    const FgmSite& site = sites_[static_cast<size_t>(i)];
    transport_->ShipControl(i, ControlMsg{ControlOp::kPollPhi});
    // The committed shadow value: identical to CurrentValue() in serial
    // operation; during a value-series commit walk the evaluator has run
    // ahead, and the shadow is the value as of the walk position.
    const PhiValueMsg reply =
        transport_->SendPhiValue(i, PhiValueMsg{site.committed_value()});
    psi += reply.value;
    delta_psi += site.SubroundValueRange();
  }
  last_psi_ = psi + psi_b_;
  if (last_psi_ != 0.0) {
    psi_variability_ += delta_psi / std::fabs(last_psi_);
  }
  if (spans_ != nullptr && subround_span_ != 0) {
    // Closed after the poll RPCs: the subround span covers the wait for
    // every member's φ reply, which is what gates its critical path.
    spans_->End(subround_span_, reason);
    subround_span_ = 0;
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kSubroundEnd;
    e.round = rounds_;
    e.subround = subrounds_this_round_;
    e.psi = last_psi_;
    e.counter = counter_total_;
    e.reason = reason;
    trace_->Emit(e);
  }
  const double stop_level =
      config_.eps_psi * static_cast<double>(live_k_) * phi_zero_;
  if (last_psi_ >= stop_level) {
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kThresholdCross;
      e.round = rounds_;
      e.psi = last_psi_;
      e.value = stop_level;
      e.label = "psi-exhausted";
      trace_->Emit(e);
    }
    // Subrounds exhausted for this safe function / scale. Rebalance and
    // round end read true drift state: materialize the walk prefix first.
    MaterializeForCommit();
    if (config_.rebalance) {
      TryRebalance();
    } else {
      EndRound(/*already_flushed=*/false);
    }
  } else if (CheapRoundOverBudget()) {
    // A mispredicted cheap plan is burning subround overhead; cut the
    // round so the feedback guard can redirect the next one.
    MaterializeForCommit();
    EndRound(/*already_flushed=*/false);
  } else if (subrounds_this_round_ >= config_.max_subrounds_per_round) {
    // Subround cap reached: end the round instead of aborting the run.
    ++overflow_rounds_;
    MaterializeForCommit();
    EndRound(/*already_flushed=*/false);
  } else {
    StartSubround(last_psi_);
  }
}

bool FgmProtocol::CheapRoundOverBudget() const {
  if (!config_.optimizer || !config_.optimizer_feedback) return false;
  int64_t full_count = 0;
  for (uint8_t d : plan_) full_count += d;
  if (full_count >= sites_k_) return false;
  const double k = static_cast<double>(sites_k_);
  const double full_round_words =
      k * static_cast<double>(query_->dimension()) +
      (3.0 * k + 1.0) * std::log2(1.0 / config_.eps_psi) + 4.0 * k;
  const double spent = static_cast<double>(
      transport_->stats().total_words() - round_start_words_);
  return spent > config_.feedback_budget_factor * full_round_words;
}

void FgmProtocol::FlushAllSites() {
  for (int i = 0; i < sites_k_; ++i) {
    // Non-members flush at their rejoin reconfiguration instead; a member
    // that is down (deadline-triggered round end) keeps its un-flushed
    // drift locally until it rejoins.
    if (in_round_[static_cast<size_t>(i)] == 0) continue;
    if (sim_ != nullptr && site_ok_[static_cast<size_t>(i)] == 0) continue;
    FgmSite& site = sites_[static_cast<size_t>(i)];
    transport_->ShipControl(i, ControlMsg{ControlOp::kFlushRequest});
    // The site ships either the dense drift or the verbatim raw updates,
    // whichever is smaller, plus its update count (§2.1, §4.2.4). The
    // message itself is the single definition of the flush cost; an
    // empty-stream site's flush is the 1-word acknowledgement (§5.4).
    const DriftFlushMsg delivered =
        transport_->SendDriftFlush(i, site.MakeFlushMsg());
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kDriftFlush;
      e.round = rounds_;
      e.site = i;
      e.words = delivered.Words();
      e.count = delivered.update_count;
      trace_->Emit(e);
    }
    if (delivered.update_count > 0) {
      const RealVector& drift =
          DeliveredDrift(delivered, *query_, i, &flush_scratch_);
      balance_ += drift;
      round_drift_[static_cast<size_t>(i)] += drift;
      site.FlushReset();
    }
  }
}

double FgmProtocol::FindMuStar() const {
  // g(µ) = φ(B/(µk)) is monotone along the ray (φ convex, φ(0) < 0):
  // {µ : g(µ) ≤ 0} = [µ*, ∞). Bisection on [lo, 1].
  if (balance_.Norm() == 0.0) return 0.0;
  const double k = static_cast<double>(live_k_);
  RealVector scaled(balance_.dim());
  auto g = [&](double mu) {
    scaled = balance_;
    scaled *= 1.0 / (mu * k);
    return safe_fn_->Eval(scaled);
  };
  if (g(1.0) >= 0.0) return 1.0;
  double lo = 1e-6, hi = 1.0;
  if (g(lo) < 0.0) return 0.0;  // B/k direction never leaves the zone
  const double tol = config_.bisection_tol * std::fabs(phi_zero_);
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double v = g(mid);
    if (v < 0.0) {
      hi = mid;
      if (v > -tol) break;
    } else {
      lo = mid;
    }
  }
  // Return the safe side (g(hi) ≤ 0 so ψ_B ≤ 0).
  return hi;
}

void FgmProtocol::TryRebalance() {
  // The subround cap also bounds rebalancing-extended rounds: end the
  // round gracefully instead of stretching it further.
  if (subrounds_this_round_ >= config_.max_subrounds_per_round) {
    ++overflow_rounds_;
    EndRound(/*already_flushed=*/false);
    return;
  }
  // Rebalancing buys longer rounds at the price of extra subround
  // overhead; when the next round's zone shipping is nearly free (e.g.
  // the optimizer chose cheap bounds everywhere), ending the round is
  // cheaper than stretching it.
  double plan_words = 0.0;
  for (int i = 0; i < sites_k_; ++i) {
    if (in_round_[static_cast<size_t>(i)] == 0) continue;
    plan_words += plan_[static_cast<size_t>(i)]
                      ? static_cast<double>(query_->dimension())
                      : CheapBoundFunction::kShippingWords;
  }
  // Under health-aware planning the profitability bar rises with the
  // fleet-mean shipping cost: a rebalance whose flush + λ traffic must
  // cross lossy/slow/down links has to save proportionally more re-ship
  // words to pay for itself.
  double min_words_per_site = config_.rebalance_min_words_per_site;
  if (config_.health_planning && health_ != nullptr) {
    min_words_per_site *= health_->RebalanceCostFactor();
  }
  if (plan_words / static_cast<double>(live_k_) < min_words_per_site) {
    EndRound(/*already_flushed=*/false);
    return;
  }
  FlushAllSites();
  const double k = static_cast<double>(live_k_);
  const double mu = FindMuStar();
  const double lambda = 1.0 - mu;
  if (lambda < config_.min_lambda) {
    EndRound(/*already_flushed=*/true);
    return;
  }
  // ψ_B = µkφ(B/(µk)) ≤ 0 by the bisection's choice of µ.
  if (mu > 0.0) {
    RealVector scaled = balance_;
    scaled *= 1.0 / (mu * k);
    psi_b_ = mu * k * safe_fn_->Eval(scaled);
    FGM_CHECK_LE(psi_b_, 0.0);
  } else {
    psi_b_ = 0.0;
  }
  lambda_ = lambda;
  // All drifts are zero after the flush, so ψ = Σλφ(0) = kλφ(0).
  const double psi = k * lambda_ * phi_zero_;
  const double stop_level = config_.eps_psi * k * phi_zero_;
  if (psi + psi_b_ <= stop_level) {
    ++rebalances_;
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kRebalance;
      e.round = rounds_;
      e.lambda = lambda_;
      e.value = psi_b_;
      e.psi = psi + psi_b_;
      trace_->Emit(e);
    }
    for (int i = 0; i < sites_k_; ++i) {
      if (in_round_[static_cast<size_t>(i)] == 0) continue;
      const LambdaMsg delivered =
          transport_->ShipLambda(i, LambdaMsg{lambda_});
      sites_[static_cast<size_t>(i)].SetLambda(delivered.lambda);
    }
    StartSubround(psi + psi_b_);
  } else {
    EndRound(/*already_flushed=*/true);
  }
}

void FgmProtocol::EndRound(bool already_flushed) {
  if (!already_flushed) FlushAllSites();

  // Derive the FGM/O rate estimates from this round's observations.
  if (config_.optimizer) {
    std::vector<double> phi_end(static_cast<size_t>(sites_k_));
    std::vector<double> drift_norm(static_cast<size_t>(sites_k_));
    std::vector<int64_t> site_updates(static_cast<size_t>(sites_k_));
    int64_t tau = 0;
    // The cheap bound is b(x) = L‖x‖ + φ(0) (Eq. 17 with the Lipschitz
    // factor made explicit), so its growth rate scales with L.
    const double lipschitz = cheap_fn_->LipschitzBound();
    for (int i = 0; i < sites_k_; ++i) {
      const RealVector& x = round_drift_[static_cast<size_t>(i)];
      phi_end[static_cast<size_t>(i)] = safe_fn_->Eval(x);
      drift_norm[static_cast<size_t>(i)] = lipschitz * x.Norm();
      site_updates[static_cast<size_t>(i)] =
          sites_[static_cast<size_t>(i)].updates_in_round();
      tau += site_updates[static_cast<size_t>(i)];
    }
    if (tau > 0) {
      if (have_rates_) {
        older_rates_ = std::move(prev_rates_);
        have_older_rates_ = true;
      }
      prev_rates_ =
          EstimateSiteRates(phi_zero_, phi_end, drift_norm, site_updates);
      have_rates_ = true;
      if (health_ != nullptr) {
        for (int i = 0; i < sites_k_; ++i) {
          const SiteRates& r = prev_rates_[static_cast<size_t>(i)];
          if (r.active) health_->ObserveRates(i, r.alpha, r.beta, r.gamma);
        }
      }
    }
  }

  // E absorbs the total drift of the round: E += B/k.
  estimate_.Axpy(1.0 / static_cast<double>(sites_k_), balance_);
  StartRound();
}

bool FgmProtocol::BoundsCertified() const {
  if (counter_total_ > live_k_) return false;
  if (sim_ == nullptr) return true;
  // Under a simulated network the subround invariant c ≤ k only covers
  // the increments the coordinator has SEEN. Certify exactly the instants
  // where the full-k round is intact and no counter weight is pending
  // (in flight or dropped): every site-local increment then took effect
  // at the coordinator, so the synchronous argument applies verbatim.
  if (paused_ || live_k_ != sites_k_) return false;
  return PendingCounterWeight() == 0;
}

int64_t FgmProtocol::PendingCounterWeight() const {
  int64_t pending = 0;
  for (int i = 0; i < sites_k_; ++i) {
    if (in_round_[static_cast<size_t>(i)] == 0) continue;
    const int64_t delta = sites_[static_cast<size_t>(i)].counter() -
                          coord_seen_ci_[static_cast<size_t>(i)];
    if (delta > 0) pending += delta;
  }
  return pending;
}

void FgmProtocol::Finish() {
  if (sim_ == nullptr) return;
  sim_->FinishRun();
  DrainNetwork();
}

void FgmProtocol::SimTick() {
  sim_->Advance(1);
  DrainNetwork();
}

void FgmProtocol::DrainNetwork() {
  sim::FaultNotice fault;
  while (sim_->PopFault(&fault)) HandleFault(fault);
  if (paused_) CheckDeadlines();
  sim::CounterDelivery delivery;
  while (sim_->PopCounter(&delivery)) {
    HandleCounterDelivery(delivery);
    // Poll inside the drain loop: once a poll advances the subround, the
    // remaining queued datagrams carry a stale epoch and are discarded.
    if (!paused_ && counter_total_ > live_k_) PollAndAdvance();
  }
  MaybeSilencePoll();
}

void FgmProtocol::HandleFault(const sim::FaultNotice& fault) {
  const size_t s = static_cast<size_t>(fault.site);
  if (!fault.up) {
    site_ok_[s] = 0;
    down_since_[s] = sim_->now();
    if (health_ != nullptr) {
      health_->NoteSiteDown(fault.site, rounds_, sim_->now());
    }
    // A down round member pauses subround progress (polls would FGM_CHECK
    // addressing a dead link); counters from live members keep
    // accumulating and the subround resumes at resync.
    if (in_round_[s] != 0) paused_ = true;
    return;
  }
  site_ok_[s] = 1;
  if (health_ != nullptr) {
    health_->NoteSiteUp(fault.site, rounds_, sim_->now());
  }
  if (in_round_[s] != 0) {
    ResyncSite(fault.site);
    if (!AnyInRoundSiteDown()) {
      paused_ = false;
      // The interrupted subround cannot be resumed — the rejoined site's
      // subround baseline z_i was volatile. Poll everyone and start a
      // fresh (labelled) subround from the authoritative ψ.
      PollAndAdvance("resync");
    }
  } else {
    RejoinReconfigure(fault.site);
  }
}

bool FgmProtocol::AnyInRoundSiteDown() const {
  for (int i = 0; i < sites_k_; ++i) {
    if (in_round_[static_cast<size_t>(i)] != 0 &&
        site_ok_[static_cast<size_t>(i)] == 0) {
      return true;
    }
  }
  return false;
}

void FgmProtocol::ResyncSite(int site) {
  ResyncMsg msg;
  msg.reference = estimate_;
  msg.theta = last_theta_;
  msg.lambda = lambda_;
  msg.round = rounds_;
  msg.subround = subrounds_this_round_;
  sim_->NoteResync();
  int64_t resync_span = 0;
  if (spans_ != nullptr) {
    // Parented to the run: the handshake interrupts whatever subround is
    // open rather than nesting inside it.
    resync_span = spans_->BeginWithParent(SpanKind::kResync, site, rounds_,
                                          subrounds_this_round_, "rejoin",
                                          spans_->root());
  }
  if (trace_ != nullptr) {
    // Emitted before the handshake ships: the site is up again from here
    // on, and the replay checker clears its down state at this event.
    TraceEvent e;
    e.kind = TraceEventKind::kSiteResync;
    e.site = site;
    e.round = rounds_;
    e.words = msg.Words();
    e.t = sim_->now();
    e.reason = "rejoin";
    trace_->Emit(e);
  }
  const ResyncMsg delivered = transport_->ShipResync(site, msg);
  // Recovery always ships the full reference and the site rebuilds φ from
  // it, even when its round plan was the cheap bound. Sound: b ≥ φ
  // pointwise, so replacing one summand of the monitored Σf_i (f_i ∈
  // {φ, b}) by φ keeps Σf_i ≥ Σφ — the threshold test stays conservative.
  sites_[static_cast<size_t>(site)].ResyncRound(
      safe_fn_.get(), delivered.lambda, delivered.theta);
  plan_[static_cast<size_t>(site)] = 1;
  // The site's per-subround counter restarted from zero; re-baseline.
  // Pre-crash datagrams still in flight for this epoch then re-apply as
  // fresh deltas — that only inflates c (an earlier poll), never misses.
  coord_seen_ci_[static_cast<size_t>(site)] = 0;
  if (spans_ != nullptr) spans_->End(resync_span);
}

void FgmProtocol::RejoinReconfigure(int site) {
  // The returning site is not a round member (it was dropped by the
  // deadline). Pull its surviving drift into the balance vector before
  // the reconfiguring round resets its evaluator, then end the reduced
  // round — the next StartRound re-admits every up site.
  sim_->NoteResync();
  int64_t resync_span = 0;
  if (spans_ != nullptr) {
    resync_span = spans_->BeginWithParent(SpanKind::kResync, site, rounds_,
                                          subrounds_this_round_, "reconfig",
                                          spans_->root());
  }
  if (trace_ != nullptr) {
    // Emitted before the flush exchange: the site is up again from here
    // on, and the replay checker clears its down state at this event.
    TraceEvent e;
    e.kind = TraceEventKind::kSiteResync;
    e.site = site;
    e.round = rounds_;
    e.words = 0;
    e.t = sim_->now();
    e.reason = "reconfig";
    trace_->Emit(e);
  }
  FgmSite& s = sites_[static_cast<size_t>(site)];
  transport_->ShipControl(site, ControlMsg{ControlOp::kFlushRequest});
  const DriftFlushMsg delivered =
      transport_->SendDriftFlush(site, s.MakeFlushMsg());
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kDriftFlush;
    e.round = rounds_;
    e.site = site;
    e.words = delivered.Words();
    e.count = delivered.update_count;
    trace_->Emit(e);
  }
  if (delivered.update_count > 0) {
    const RealVector& drift =
        DeliveredDrift(delivered, *query_, site, &flush_scratch_);
    balance_ += drift;
    s.FlushReset();
  }
  CloseSubroundForced("reconfig");
  EndRound(/*already_flushed=*/false);
  if (spans_ != nullptr) spans_->End(resync_span);
}

void FgmProtocol::CloseSubroundForced(const char* reason) {
  // A forced round end (deadline / reconfiguration) abandons the open
  // subround without a φ-value poll; the trace still needs a labelled
  // kSubroundEnd so the replay checker sees the subround closed.
  if (spans_ != nullptr && subround_span_ != 0) {
    // Before the trace_ gate: the span must close even when tracing is
    // off, or a forced round end leaks an open subround span.
    spans_->End(subround_span_, reason);
    subround_span_ = 0;
  }
  if (trace_ == nullptr) return;
  TraceEvent e;
  e.kind = TraceEventKind::kSubroundEnd;
  e.round = rounds_;
  e.subround = subrounds_this_round_;
  e.psi = last_psi_;
  e.counter = counter_total_;
  e.reason = reason;
  trace_->Emit(e);
}

void FgmProtocol::HandleCounterDelivery(const sim::CounterDelivery& delivery) {
  if (delivery.round != rounds_ ||
      delivery.subround != subrounds_this_round_) {
    sim_->NoteStale();
    return;
  }
  ApplyCounterDelta(delivery.site, delivery.msg.increment, nullptr);
}

void FgmProtocol::ApplyCounterDelta(int site, int64_t cumulative,
                                    const char* reason) {
  const size_t s = static_cast<size_t>(site);
  const int64_t delta = cumulative - coord_seen_ci_[s];
  if (delta <= 0) return;  // reordered duplicate of an older cumulative
  coord_seen_ci_[s] = cumulative;
  counter_total_ += delta;
  last_counter_activity_ = sim_->now();
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kIncrementMsg;
    e.round = rounds_;
    e.subround = subrounds_this_round_;
    e.site = site;
    e.counter = delta;
    e.reason = reason;
    trace_->Emit(e);
  }
}

void FgmProtocol::MaybeSilencePoll() {
  if (!lossy_net_ || paused_) return;
  if (sim_->now() - last_counter_activity_ < config_.net.silence_timeout) {
    return;
  }
  // The subround may be stalled on dropped datagrams from sites that have
  // since gone quiet: re-poll every member's cumulative counter (request
  // + one-word reply, charged and retransmitted like any control RPC).
  sim_->NoteTimeout();
  last_counter_activity_ = sim_->now();
  for (int i = 0; i < sites_k_; ++i) {
    const size_t s = static_cast<size_t>(i);
    if (in_round_[s] == 0 || site_ok_[s] == 0) continue;
    transport_->ShipControl(i, ControlMsg{ControlOp::kPollCounter});
    const CounterMsg reply =
        transport_->SendCounter(i, CounterMsg{sites_[s].counter()});
    ApplyCounterDelta(i, reply.increment, "timeout-poll");
  }
  if (counter_total_ > live_k_) PollAndAdvance();
}

void FgmProtocol::CheckDeadlines() {
  bool expired = false;
  for (int i = 0; i < sites_k_; ++i) {
    const size_t s = static_cast<size_t>(i);
    if (in_round_[s] != 0 && site_ok_[s] == 0 &&
        sim_->now() - down_since_[s] >= config_.net.dead_deadline) {
      expired = true;
      break;
    }
  }
  if (!expired) return;
  // Graceful degradation: a member stayed dead past the deadline. End the
  // round without it — FlushAllSites skips down sites (their un-flushed
  // drift survives locally and folds in at rejoin) and StartRound
  // reconstitutes the round over the surviving sites (reduced k).
  CloseSubroundForced("deadline");
  EndRound(/*already_flushed=*/false);
}

int64_t FgmProtocol::SubroundWords() const {
  const TrafficStats& t = transport_->stats();
  // Quantum broadcast (k), φ-value replies (k) and counter increments
  // (≤ k+1) — the paper's 3k+1 words per subround. Poll/flush requests
  // are charged as kControl and excluded here.
  return t.words_by_kind[static_cast<size_t>(MsgKind::kQuantum)] +
         t.words_by_kind[static_cast<size_t>(MsgKind::kCounter)] +
         t.words_by_kind[static_cast<size_t>(MsgKind::kPhiValue)];
}

double FgmProtocol::mean_full_function_fraction() const {
  if (total_function_ships_ == 0) return 0.0;
  return static_cast<double>(full_function_ships_) /
         static_cast<double>(total_function_ships_);
}

}  // namespace fgm
