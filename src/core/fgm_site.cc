#include "core/fgm_site.h"

#include <cmath>

#include "util/check.h"

namespace fgm {

void FgmSite::BeginRound(const SafeFunction* fn) {
  FGM_CHECK(fn != nullptr);
  evaluator_ = fn->MakeEvaluator();
  lambda_ = 1.0;
  quantum_ = 1.0;
  z_ = 0.0;
  counter_ = 0;
  updates_since_flush_ = 0;
  updates_in_round_ = 0;
  log_.Reset();
}

void FgmSite::BeginSubround(double quantum) {
  FGM_CHECK_GT(quantum, 0.0);
  quantum_ = quantum;
  z_ = CurrentValue();
  value_min_ = z_;
  value_max_ = z_;
  counter_ = 0;
}

int64_t FgmSite::ApplyUpdate(const StreamRecord& record,
                             const std::vector<CellUpdate>& deltas) {
  log_.Record(record, dim_);
  return ApplyDeltas(deltas);
}

int64_t FgmSite::ApplyUpdate(const std::vector<CellUpdate>& deltas) {
  // An update the log does not see desynchronizes it from the drift; the
  // record-taking overload keeps it live.
  log_.Invalidate();
  return ApplyDeltas(deltas);
}

int64_t FgmSite::ApplyDeltas(const std::vector<CellUpdate>& deltas) {
  for (const CellUpdate& u : deltas) {
    evaluator_->ApplyDelta(u.index, u.delta);
  }
  ++updates_since_flush_;
  ++updates_in_round_;
  const double v = CurrentValue();
  if (v < value_min_) value_min_ = v;
  if (v > value_max_) value_max_ = v;
  const double steps = std::floor((v - z_) / quantum_);
  // Counters only move up (max in the paper's update rule); a site whose
  // φ-value recedes stays silent.
  if (steps > static_cast<double>(counter_)) {
    const int64_t candidate = static_cast<int64_t>(steps);
    const int64_t increment = candidate - counter_;
    counter_ = candidate;
    return increment;
  }
  return 0;
}

void FgmSite::FlushReset() {
  evaluator_->Reset();
  updates_since_flush_ = 0;
  log_.Reset();
}

}  // namespace fgm
