#include "core/fgm_site.h"

#include <cmath>

#include "util/check.h"

namespace fgm {

void FgmSite::BeginRound(const SafeFunction* fn) {
  FGM_CHECK(fn != nullptr);
  // Wrapped with the FGM_PARANOID cross-check when the env var is set.
  evaluator_ = MakeCheckedEvaluator(fn, fn->MakeEvaluator());
  lambda_ = 1.0;
  quantum_ = 1.0;
  z_ = 0.0;
  counter_ = 0;
  updates_since_flush_ = 0;
  updates_in_round_ = 0;
  log_.Reset();
  // The evaluator was just rebuilt, so live == committed by definition.
  committed_v_ = CurrentValue();
  checkpoint_.valid = false;
}

void FgmSite::ResyncRound(const SafeFunction* fn, double lambda,
                          double theta) {
  FGM_CHECK(fn != nullptr);
  FGM_CHECK_GT(theta, 0.0);
  // Replay the surviving drift into a fresh evaluator for the delivered
  // reference, one delta per non-zero entry (the same reconstruction the
  // coordinator's verbatim-flush path uses).
  const RealVector drift =
      evaluator_ != nullptr ? evaluator_->drift() : RealVector(dim_);
  evaluator_ = MakeCheckedEvaluator(fn, fn->MakeEvaluator());
  for (size_t i = 0; i < drift.dim(); ++i) {
    if (drift[i] != 0.0) evaluator_->ApplyDelta(i, drift[i]);
  }
  lambda_ = lambda;
  quantum_ = theta;
  committed_v_ = CurrentValue();
  z_ = committed_v_;
  value_min_ = z_;
  value_max_ = z_;
  counter_ = 0;
  checkpoint_.valid = false;
}

void FgmSite::SetLambda(double lambda) {
  lambda_ = lambda;
  // λ only changes at a coordinator rebalance, where the evaluator state
  // is committed; refresh the shadow under the new scale.
  committed_v_ = CurrentValue();
}

void FgmSite::BeginSubround(double quantum) {
  FGM_CHECK_GT(quantum, 0.0);
  quantum_ = quantum;
  // Re-anchor on the committed value: identical to CurrentValue() in
  // serial operation, and the correct baseline while speculation has the
  // evaluator running ahead of the commit walk.
  z_ = committed_v_;
  value_min_ = z_;
  value_max_ = z_;
  counter_ = 0;
}

int64_t FgmSite::Process(const ContinuousQuery& query,
                         const StreamRecord& record, WallTimer* sketch_timer,
                         WallTimer* safe_fn_timer) {
  deltas_.clear();
  {
    ScopedTimer timed(sketch_timer);
    query.MapRecord(record, &deltas_);
  }
  ScopedTimer timed(safe_fn_timer);
  return ApplyUpdate(record, deltas_);
}

int64_t FgmSite::ApplyUpdate(const StreamRecord& record,
                             const std::vector<CellUpdate>& deltas) {
  log_.Record(record, dim_);
  return CommitValue(ApplyDeltasValue(deltas.data(), deltas.size()));
}

int64_t FgmSite::ApplyUpdate(const std::vector<CellUpdate>& deltas) {
  // An update the log does not see desynchronizes it from the drift; the
  // record-taking overload keeps it live.
  log_.Invalidate();
  return CommitValue(ApplyDeltasValue(deltas.data(), deltas.size()));
}

double FgmSite::ApplyDeltasValue(const CellUpdate* deltas, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    evaluator_->ApplyDelta(deltas[i].index, deltas[i].delta);
  }
  ++updates_since_flush_;
  ++updates_in_round_;
  return CurrentValue();
}

int64_t FgmSite::CommitValue(double v) {
  committed_v_ = v;
  if (v < value_min_) value_min_ = v;
  if (v > value_max_) value_max_ = v;
  const double steps = std::floor((v - z_) / quantum_);
  // Counters only move up (max in the paper's update rule); a site whose
  // φ-value recedes stays silent.
  if (steps > static_cast<double>(counter_)) {
    const int64_t candidate = static_cast<int64_t>(steps);
    const int64_t increment = candidate - counter_;
    counter_ = candidate;
    return increment;
  }
  return 0;
}

void FgmSite::SpeculateBatch(const ContinuousQuery& query,
                             const StreamRecord* base,
                             const int64_t* positions, int64_t n,
                             double* values, WallTimer* sketch_timer,
                             WallTimer* safe_fn_timer) {
  // Map in blocks so the scratch buffer stays cache-resident while still
  // amortizing the projection's row-major hash pass.
  constexpr int64_t kMapBlock = 512;
  for (int64_t start = 0; start < n; start += kMapBlock) {
    const int64_t m = std::min(kMapBlock, n - start);
    batch_deltas_.clear();
    batch_ends_.clear();
    {
      ScopedTimer timed(sketch_timer);
      query.MapRecordBatch(base, positions + start, m, &batch_deltas_,
                           &batch_ends_);
    }
    ScopedTimer timed(safe_fn_timer);
    size_t delta_begin = 0;
    for (int64_t j = 0; j < m; ++j) {
      log_.Record(base[positions[start + j]], dim_);
      const size_t delta_end = batch_ends_[static_cast<size_t>(j)];
      values[start + j] = ApplyDeltasValue(batch_deltas_.data() + delta_begin,
                                           delta_end - delta_begin);
      delta_begin = delta_end;
    }
  }
}

void FgmSite::ReplayUpdate(const ContinuousQuery& query,
                           const StreamRecord& record) {
  deltas_.clear();
  query.MapRecord(record, &deltas_);
  log_.Record(record, dim_);
  for (const CellUpdate& u : deltas_) {
    evaluator_->ApplyDelta(u.index, u.delta);
  }
  ++updates_since_flush_;
  ++updates_in_round_;
}

void FgmSite::FlushReset() {
  evaluator_->Reset();
  updates_since_flush_ = 0;
  log_.Reset();
  // The drift just went to zero under coordinator control: committed.
  committed_v_ = CurrentValue();
}

void FgmSite::SaveCheckpoint() {
  checkpoint_.evaluator = evaluator_->Clone();
  checkpoint_.mark = log_.MarkPosition();
  checkpoint_.updates_since_flush = updates_since_flush_;
  checkpoint_.updates_in_round = updates_in_round_;
  checkpoint_.valid = true;
}

void FgmSite::RestoreCheckpoint() {
  FGM_CHECK(checkpoint_.valid);
  evaluator_ = std::move(checkpoint_.evaluator);
  log_.Rewind(checkpoint_.mark);
  updates_since_flush_ = checkpoint_.updates_since_flush;
  updates_in_round_ = checkpoint_.updates_in_round;
  checkpoint_.valid = false;
}

}  // namespace fgm
