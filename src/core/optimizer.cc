#include "core/optimizer.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fgm {

namespace {
// Round length used when the predicted drift rates of the selected plan
// sum to ~0 ("the round never ends"); any value larger than a realistic
// stream keeps the gain comparison correct.
constexpr double kInfiniteRound = 1e15;
constexpr double kTinyRate = 1e-12;
}  // namespace

RoundPlan OptimizeRoundPlan(const std::vector<SiteRates>& rates,
                            int64_t dimension, double round_overhead_words,
                            const HealthView* health) {
  const int k = static_cast<int>(rates.size());
  FGM_CHECK_GE(k, 1);
  const double big_d = static_cast<double>(dimension);

  // Per-site shipping cost factors (1 without a health view). Dividing by
  // an exact 1.0 and multiplying by it leave doubles unchanged, so the
  // no-health path is bit-identical to the original cost model.
  std::vector<double> cost(static_cast<size_t>(k), 1.0);
  if (health != nullptr) {
    for (size_t i = 0; i < health->ship_cost.size() && i < cost.size();
         ++i) {
      cost[i] = std::max(1.0, health->ship_cost[i]);
    }
  }

  // Active sites sorted by θ_i = β_i - α_i per unit shipping cost,
  // descending: the best n-plan gives the full function to the n sites
  // where a D-word shipment buys the most round extension.
  std::vector<int> order;
  double beta_tot = 0.0;
  for (int i = 0; i < k; ++i) {
    if (rates[static_cast<size_t>(i)].active) {
      order.push_back(i);
      beta_tot += rates[static_cast<size_t>(i)].beta;
    }
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ra = rates[static_cast<size_t>(a)];
    const auto& rb = rates[static_cast<size_t>(b)];
    return (ra.beta - ra.alpha) / cost[static_cast<size_t>(a)] >
           (rb.beta - rb.alpha) / cost[static_cast<size_t>(b)];
  });

  auto gain_for = [&](int n, double* tau_out) {
    double denom = beta_tot;
    double ship = 0.0;
    for (int j = 0; j < n; ++j) {
      const int site = order[static_cast<size_t>(j)];
      const auto& r = rates[static_cast<size_t>(site)];
      denom -= r.beta - r.alpha;
      ship += big_d * cost[static_cast<size_t>(site)];
    }
    const double tau =
        denom > kTinyRate ? static_cast<double>(k) / denom : kInfiniteRound;
    double downstream = 0.0;
    for (int i = 0; i < k; ++i) {
      downstream +=
          std::min(rates[static_cast<size_t>(i)].gamma * tau, big_d);
    }
    *tau_out = tau;
    return tau - downstream - ship - round_overhead_words;
  };

  int best_n = 0;
  double best_gain = 0.0, best_tau = 0.0, best_rate = 0.0;
  for (int n = 0; n <= static_cast<int>(order.size()); ++n) {
    double tau;
    const double g = gain_for(n, &tau);
    const double rate = g / tau;
    if (n == 0 || rate > best_rate) {
      best_n = n;
      best_gain = g;
      best_tau = tau;
      best_rate = rate;
    }
  }

  RoundPlan plan;
  plan.full_function.assign(static_cast<size_t>(k), 0);
  for (int j = 0; j < best_n; ++j) {
    plan.full_function[static_cast<size_t>(order[static_cast<size_t>(j)])] = 1;
  }
  plan.predicted_length = best_tau;
  plan.predicted_gain = best_gain;
  plan.predicted_rate = best_rate;
  return plan;
}

std::vector<SiteRates> ExtrapolateRates(const std::vector<SiteRates>& prev,
                                        const std::vector<SiteRates>& last,
                                        double damping) {
  FGM_CHECK_EQ(prev.size(), last.size());
  std::vector<SiteRates> result = last;
  for (size_t i = 0; i < last.size(); ++i) {
    if (!prev[i].active || !last[i].active) continue;
    SiteRates& r = result[i];
    r.alpha = last[i].alpha + damping * (last[i].alpha - prev[i].alpha);
    r.beta = last[i].beta + damping * (last[i].beta - prev[i].beta);
    if (r.alpha <= 0.0) r.alpha = kTinyRate;
    if (r.beta < r.alpha) r.beta = r.alpha;
  }
  return result;
}

std::vector<SiteRates> EstimateSiteRates(
    double phi_zero, const std::vector<double>& phi_end,
    const std::vector<double>& drift_norm,
    const std::vector<int64_t>& site_updates) {
  FGM_CHECK_LT(phi_zero, 0.0);
  const size_t k = phi_end.size();
  FGM_CHECK_EQ(drift_norm.size(), k);
  FGM_CHECK_EQ(site_updates.size(), k);

  int64_t tau = 0;
  for (int64_t n : site_updates) tau += n;

  std::vector<SiteRates> rates(k);
  const double denom = std::fabs(phi_zero) * static_cast<double>(tau);
  for (size_t i = 0; i < k; ++i) {
    SiteRates& r = rates[i];
    if (tau == 0 || site_updates[i] == 0) {
      // §4.2.4: sites with no updates last round are excluded from the
      // optimization and get the cheap function (d_i = 0).
      r.active = false;
      continue;
    }
    r.beta = drift_norm[i] / denom;
    r.alpha = (phi_end[i] - phi_zero) / denom;
    // Enforce 0 < α ≤ β. A non-positive α means the site's φ barely moved
    // (or receded) — shipping it the full function is maximally valuable,
    // which the clamp expresses by making θ_i = β_i - α_i largest.
    if (r.alpha <= 0.0) r.alpha = kTinyRate;
    if (r.beta < r.alpha) r.beta = r.alpha;
    if (r.beta <= 0.0) {
      r.active = false;
      continue;
    }
    r.gamma = static_cast<double>(site_updates[i]) / static_cast<double>(tau);
  }
  return rates;
}

}  // namespace fgm
