// The Functional Geometric Monitoring protocol (paper §2.4, §4.1, §4.2).
//
// Rounds: the coordinator knows E = S at the start of a round, builds the
// (A, E, k)-safe function φ via the query, and ships it (or the 3-word
// cheap bound, under the FGM/O optimizer) to every site. The round
// monitors ψ = Σ_i φ(X_i) ≤ 0 through subrounds with quantum θ = -ψ/2k
// and per-site counters; when the global counter exceeds k the
// coordinator polls all φ-values and either starts another subround,
// rebalances (flush drifts into the balance vector B, rescale by λ), or
// ends the round by folding the collected drift into E.
//
// The simulation is synchronous, but every coordinator ↔ site interaction
// goes through the Transport as a typed wire message (net/wire.h): the
// receiving side acts on the DELIVERED message, and every word the real
// protocol would transmit is charged by the transport. Under
// TransportMode::kSerializing each message is additionally encoded,
// cross-checked against the charge, decoded and verified (strict wire
// accounting).

#ifndef FGM_CORE_FGM_PROTOCOL_H_
#define FGM_CORE_FGM_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fgm_config.h"
#include "core/fgm_site.h"
#include "core/optimizer.h"
#include "exec/sharded.h"
#include "net/network.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "query/query.h"
#include "safezone/cheap_bound.h"
#include "safezone/safe_function.h"
#include "sim/event_network.h"
#include "util/stats.h"

namespace fgm {

class FgmProtocol : public MonitoringProtocol, public ShardedProtocol {
 public:
  /// `query` must outlive the protocol.
  FgmProtocol(const ContinuousQuery* query, int num_sites, FgmConfig config);

  std::string name() const override;
  void ProcessRecord(const StreamRecord& record) override;
  const RealVector& GlobalEstimate() const override { return estimate_; }
  double Estimate() const override { return query_value_; }
  ThresholdPair CurrentThresholds() const override { return thresholds_; }
  const TrafficStats& traffic() const override { return transport_->stats(); }
  int64_t rounds() const override { return rounds_; }
  bool BoundsCertified() const override;
  void Finish() override;
  const sim::SimNetStats* net_stats() const override {
    return sim_ != nullptr ? &sim_->net_stats() : nullptr;
  }

  int64_t subrounds() const { return subrounds_; }
  int64_t rebalances() const { return rebalances_; }
  /// Histogram of subrounds per completed round (§2.5.1 observation).
  const CountHistogram& subrounds_per_round() const {
    return subround_histogram_;
  }
  /// Fraction of sites given the full safe function, averaged over rounds
  /// (diagnostics for the FGM/O optimizer).
  double mean_full_function_fraction() const;
  const FgmConfig& config() const { return config_; }

  /// Current ψ + ψ_B as known to the coordinator after the last poll
  /// (testing hook).
  double last_psi() const { return last_psi_; }

  /// Most recent subround quantum θ = -ψ/2k (observability hook).
  double last_quantum() const { return last_theta_; }
  /// Current rebalance scale λ (1 when no rebalance is active).
  double current_lambda() const { return lambda_; }
  /// Subrounds completed so far in the current round.
  int64_t subrounds_this_round() const { return subrounds_this_round_; }

  /// Accumulated ψ-variability V = Σ_n |Δψ_n|/|ψ_n| over all completed
  /// subrounds (§2.5.1). Theorem 2.7 bounds the total subround traffic by
  /// (9k+3)·V words; see SubroundWords().
  double psi_variability() const { return psi_variability_; }

  /// Words spent on subround machinery so far (quanta, counters,
  /// φ-value polls).
  int64_t SubroundWords() const;

  /// How often the feedback guard replaced a cheap plan with the all-full
  /// plan (diagnostics).
  int64_t cheap_plan_overrides() const { return cheap_overrides_; }

  /// Rounds forcibly ended because the subround cap was hit (graceful
  /// degradation instead of aborting the run).
  int64_t overflow_rounds() const { return overflow_rounds_; }

  /// The transport carrying this protocol's messages (testing hook).
  const Transport& transport() const { return *transport_; }

  // ShardedProtocol — one shard per site. Speculation may raise up to
  // k - c + 1 more counter-increment weight before the commit path is
  // guaranteed to trigger PollAndAdvance (counter_total_ > k).
  int shard_count() const override { return sites_k_; }
  int64_t SpeculationBudget() const override {
    return static_cast<int64_t>(sites_k_) - counter_total_ + 1;
  }
  int64_t LocalProcess(const StreamRecord& record, double* value) override;
  void CommitRecords(int64_t count) override { total_updates_ += count; }
  bool CommitEvent(const LocalEvent& event) override;
  void SaveCheckpoint(int shard) override {
    sites_[static_cast<size_t>(shard)].SaveCheckpoint();
  }
  void RestoreCheckpoint(int shard) override {
    sites_[static_cast<size_t>(shard)].RestoreCheckpoint();
  }
  bool SupportsSpeculation() const override { return sim_ == nullptr; }

  // Value-series speculation (exec/sharded.h): the counter rule is scalar
  // in the post-update value v = λφ(X_i/λ), so workers record v-series
  // and the coordinator walk replays the rule over them, crossing
  // subrounds softly. Only rebalance / round end / overflow materialize.
  bool SupportsValueSeries() const override { return sim_ == nullptr; }
  void SpeculateShard(int shard, const StreamRecord* base,
                      const int64_t* positions, int64_t n,
                      double* values) override {
    sites_[static_cast<size_t>(shard)].SpeculateBatch(
        *query_, base, positions, n, values, sketch_timer_, safe_fn_timer_);
  }
  int64_t CommitValueSeries(const int32_t* site_by_pos, int64_t count,
                            const ValueSeries* series,
                            const std::function<void(int64_t)>& materialize,
                            bool fast_merge,
                            int64_t* soft_interactions) override;

 private:
  void StartRound();
  /// Plan audit + time-series emission for the round that just ended.
  /// Runs at the top of StartRound, after EndRound's flush but before any
  /// per-round state is reset, so it sees the finished round verbatim.
  void EmitRoundObservability();
  void StartSubround(double psi_total);
  /// `reason` labels the SubroundEnd trace event when the poll was forced
  /// by the network machinery (resync) rather than by the counter
  /// crossing live_k_; nullptr for the ordinary trigger.
  void PollAndAdvance(const char* reason = nullptr);
  void TryRebalance();
  void EndRound(bool already_flushed);
  /// True when a mostly-cheap round has outspent its budget (see
  /// FgmConfig::feedback_budget_factor).
  bool CheapRoundOverBudget() const;
  void FlushAllSites();
  /// Bisection for µ* = inf{µ : φ(B/(µk)) ≥ 0}; returns a value in [0, 1],
  /// or 1 when even µ = 1 fails.
  double FindMuStar() const;
  /// Sends one counter-increment message (shared by CommitEvent and the
  /// value-series commit walk); returns true when the accumulated total
  /// crossed k and the coordinator must poll.
  bool SendCounterIncrement(int site, int64_t increment);
  /// Inside a value-series commit walk: rebuilds true site drift state as
  /// of the current walk position before a hard coordinator interaction.
  /// No-op outside a walk (serial / sim operation) and under fast merge.
  void MaterializeForCommit();

  // Simulated-network machinery (all no-ops when sim_ == nullptr).
  /// Per-record clock tick + drain, called at the top of ProcessRecord.
  void SimTick();
  /// Drains due fault transitions and counter datagrams, then checks the
  /// dead-site deadline and the silence timeout.
  void DrainNetwork();
  void HandleFault(const sim::FaultNotice& fault);
  void HandleCounterDelivery(const sim::CounterDelivery& delivery);
  /// Applies a cumulative per-subround counter value from `site`,
  /// emitting kIncrementMsg for the positive delta (if any).
  void ApplyCounterDelta(int site, int64_t cumulative, const char* reason);
  /// Coordinator re-polls every live member's cumulative counter after
  /// silence_timeout ticks without counter activity (lossy links only —
  /// a dropped datagram whose site then goes quiet would otherwise stall
  /// the subround forever).
  void MaybeSilencePoll();
  /// Drops members dead past dead_deadline from the round: ends the round
  /// over the surviving sites (reduced-k graceful degradation).
  void CheckDeadlines();
  /// Crash/rejoin handshake for a site still in the round: re-ships the
  /// round state (E, θ, λ, epoch) as a kResync message, rebuilds the
  /// site's evaluator over its surviving drift and, once no member is
  /// down, forces a fresh labelled subround (the interrupted one is
  /// unsound — the site's subround baseline z_i was volatile).
  void ResyncSite(int site);
  /// Rejoin of a site that is not a round member (it was dropped by the
  /// deadline): flush its surviving drift into the balance vector, then
  /// end the round so the next one reconfigures back to full k.
  void RejoinReconfigure(int site);
  /// Emits a labelled kSubroundEnd for a subround abandoned by a forced
  /// round end (no φ-value poll happened).
  void CloseSubroundForced(const char* reason);
  bool AnyInRoundSiteDown() const;
  /// Counter weight the sites have accumulated this subround but the
  /// coordinator has not yet seen (in flight or dropped).
  int64_t PendingCounterWeight() const;

  const ContinuousQuery* query_;
  int sites_k_;
  FgmConfig config_;
  std::unique_ptr<Transport> transport_;

  // Simulated network (non-owning view into transport_; nullptr when the
  // protocol runs over a synchronous transport). The protocol-side site
  // state mirrors the network's link state as of the last drain.
  sim::EventNetwork* sim_ = nullptr;
  bool lossy_net_ = false;          ///< sim_ && (drop > 0 || fault plan)
  int live_k_;                      ///< members of the current round
  std::vector<uint8_t> site_ok_;    ///< link up, as of the last drain
  std::vector<uint8_t> in_round_;   ///< membership in the current round
  std::vector<int64_t> down_since_; ///< tick of the last down transition
  std::vector<int64_t> coord_seen_ci_;  ///< cumulative counter seen/site
  bool paused_ = false;  ///< a round member is down: polls suppressed
  int64_t last_counter_activity_ = 0;

  // Observability (non-owning; null when disabled).
  TraceSink* trace_ = nullptr;
  TimeSeries* timeseries_ = nullptr;
  SpanSink* spans_ = nullptr;
  HealthMonitor* health_ = nullptr;
  int64_t round_span_ = 0;     ///< open kRound span id (0 = none)
  int64_t subround_span_ = 0;  ///< open kSubround span id (0 = none)
  WallTimer* sketch_timer_ = nullptr;
  WallTimer* safe_fn_timer_ = nullptr;
  RunningStats* plan_gain_abs_err_ = nullptr;
  RunningStats* plan_gain_rel_err_ = nullptr;

  RealVector estimate_;  // E
  double query_value_ = 0.0;
  ThresholdPair thresholds_{0.0, 0.0};

  std::unique_ptr<SafeFunction> safe_fn_;
  std::unique_ptr<CheapBoundFunction> cheap_fn_;
  /// Safe functions of earlier rounds still referenced by the evaluators
  /// of currently-down sites (sim mode); freed at the first all-up round.
  std::vector<std::unique_ptr<SafeFunction>> retired_safe_fns_;
  double phi_zero_ = -1.0;

  std::vector<FgmSite> sites_;
  std::vector<uint8_t> plan_;  // d_i of the optimizer (1 = full function)

  // Rebalancing state (§4.1).
  RealVector balance_;  // B
  double lambda_ = 1.0;
  double psi_b_ = 0.0;

  // Value-series commit-walk state (non-null / live only inside
  // CommitValueSeries; see exec/sharded.h).
  const std::function<void(int64_t)>* materialize_cb_ = nullptr;
  int64_t commit_pos_ = -1;   ///< walk position of the in-flight event
  bool commit_hard_ = false;  ///< the last poll materialized (hard)
  std::vector<int64_t> commit_cursor_;  ///< per-shard value-series cursor

  // Subround tracking.
  int64_t counter_total_ = 0;  // c
  double last_psi_ = 0.0;
  double last_theta_ = 0.0;
  int64_t subrounds_this_round_ = 0;
  double psi_variability_ = 0.0;

  // Plan audit: the prediction behind the current round's plan, kept so
  // the round's outcome can be compared against it at the next boundary.
  bool plan_predicted_ = false;
  double plan_pred_len_ = 0.0;
  double plan_pred_gain_ = 0.0;
  double plan_pred_rate_ = 0.0;
  std::array<int64_t, static_cast<size_t>(MsgKind::kKindCount)>
      round_start_words_by_kind_{};

  // Optimizer inputs gathered during the round.
  std::vector<RealVector> round_drift_;  // coordinator-side per-site Σflushes
  bool have_rates_ = false;
  std::vector<SiteRates> prev_rates_;
  bool have_older_rates_ = false;
  std::vector<SiteRates> older_rates_;  // for second-order extrapolation
  mutable std::vector<SiteRates> scratch_rates_;

  // Optimizer feedback guard: measured words/update of mostly-full vs
  // mostly-cheap rounds (EWMA), see FgmConfig::optimizer_feedback.
  int64_t round_start_words_ = 0;
  int64_t round_start_updates_ = 0;
  int64_t total_updates_ = 0;
  double class_cost_ewma_[2] = {0.0, 0.0};  // [0]=mostly full, [1]=cheap
  int64_t class_cost_count_[2] = {0, 0};
  int64_t cheap_overrides_ = 0;

  // Statistics.
  int64_t rounds_ = 0;
  int64_t subrounds_ = 0;
  int64_t rebalances_ = 0;
  int64_t overflow_rounds_ = 0;
  CountHistogram subround_histogram_{64};
  int64_t full_function_ships_ = 0;
  int64_t total_function_ships_ = 0;

  RealVector flush_scratch_;  // verbatim-flush re-projection target
};

}  // namespace fgm

#endif  // FGM_CORE_FGM_PROTOCOL_H_
