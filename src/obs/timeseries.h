// Run-health time series: periodic snapshots of protocol state.
//
// A trace records every event; this module records *state* — one
// RunSnapshot per round boundary (and optionally every N records) holding
// the quantities the paper's evaluation plots per round: cumulative and
// per-round words split by message kind, subround counts, the ψ/θ/λ
// trajectory, the FGM/O plan audit numbers, and per-site skew aggregates
// (update counts and drift norms). Samples land in a bounded ring buffer
// so long runs cannot exhaust memory; when full, the oldest samples are
// dropped and counted.
//
// Same zero-cost discipline as TraceSink: producers hold a raw
// `TimeSeries*` that is null when disabled, and sampling happens at round
// boundaries / configured intervals only — never per record.

#ifndef FGM_OBS_TIMESERIES_H_
#define FGM_OBS_TIMESERIES_H_

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace fgm {

class JsonWriter;

/// Maximum message-kind slots a snapshot carries. Matches
/// MsgKind::kKindCount (static_asserted where both headers are visible;
/// obs cannot include net headers — fgm_net links fgm_obs).
inline constexpr int kSnapshotMsgKinds = 9;

/// One sampled point of a run. Flat scalars + fixed arrays only, so the
/// ring buffer never allocates per sample beyond the deque node.
struct RunSnapshot {
  /// "round" = taken at a round boundary; "interval" = --snapshot_every.
  const char* kind = "round";
  int64_t seq = 0;      ///< dense sample index, assigned by TimeSeries
  int64_t records = 0;  ///< stream records processed so far
  int64_t round = 0;    ///< current protocol round (1-based)
  int64_t subrounds = 0;       ///< subrounds completed in this round so far
  int64_t total_subrounds = 0; ///< subrounds completed over the whole run
  double psi = 0.0;     ///< coordinator ψ at the sample point
  double theta = 0.0;   ///< most recent subround quantum
  double lambda = 0.0;  ///< current rebalance scale (1 = none)

  // Communication, cumulative since run start and delta since the
  // previous *round* sample. Indices are MsgKind values.
  int64_t total_words = 0;
  int64_t round_words = 0;
  std::array<int64_t, kSnapshotMsgKinds> words_by_kind{};
  std::array<int64_t, kSnapshotMsgKinds> round_words_by_kind{};

  // FGM/O plan audit (round samples; zero when the optimizer is off or
  // has no rate history yet).
  int64_t plan_full_sites = 0;  ///< sites assigned d_i = full function
  double pred_gain = 0.0;       ///< plan's predicted gain for the round
  double actual_gain = 0.0;     ///< measured gain (updates − words)

  // Per-site skew at the sample point.
  int64_t site_updates_max = 0;   ///< busiest site's updates this round
  double site_updates_mean = 0.0; ///< mean updates per site this round
  double drift_norm_max = 0.0;    ///< largest per-site drift ‖X_i‖
  double drift_norm_mean = 0.0;
  int hot_site = -1;  ///< site with the max drift norm (-1 = none)

  // Simulated-network health (all zero on synchronous transports).
  int64_t in_flight_words = 0;      ///< datagram words queued right now
  int64_t max_in_flight_words = 0;  ///< run-wide high-water mark
  int64_t retransmit_words = 0;     ///< cumulative RPC retransmissions
  int64_t dropped_words = 0;        ///< cumulative words lost to drop
  int64_t resyncs = 0;              ///< crash/rejoin handshakes so far
};

/// Schema version of the exported time-series document. Bump on any
/// backwards-incompatible change to the sample layout.
constexpr int64_t kTimeSeriesSchemaVersion = 1;

/// Bounded, thread-safe collection of RunSnapshots with JSON export.
class TimeSeries {
 public:
  /// `capacity` bounds retained samples; oldest are dropped when full.
  explicit TimeSeries(size_t capacity = 4096);

  /// Appends a sample (stamps its seq). Thread-safe.
  void Record(RunSnapshot snapshot);

  int64_t samples_taken() const;   ///< total Record() calls
  int64_t samples_dropped() const; ///< evicted by the capacity bound
  std::vector<RunSnapshot> Samples() const;  ///< retained samples, in order

  /// Writes {"version":..,"capacity":..,"taken":..,"dropped":..,
  /// "samples":[...]} into an open writer scope (one complete object).
  void WriteJson(JsonWriter* w) const;
  /// Writes the JSON document to `path`; FGM_CHECKs on I/O failure.
  void WriteFile(const std::string& path) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<RunSnapshot> samples_;
  int64_t taken_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace fgm

#endif  // FGM_OBS_TIMESERIES_H_
