#include "obs/span.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/json.h"
#include "util/check.h"

namespace fgm {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRun:
      return "run";
    case SpanKind::kRound:
      return "round";
    case SpanKind::kSubround:
      return "subround";
    case SpanKind::kRpc:
      return "rpc";
    case SpanKind::kMsg:
      return "msg";
    case SpanKind::kDatagram:
      return "datagram";
    case SpanKind::kResync:
      return "resync";
    case SpanKind::kSpeculate:
      return "speculate";
    case SpanKind::kShardSpeculate:
      return "shard-speculate";
    case SpanKind::kReplay:
      return "replay";
    case SpanKind::kBarrierWait:
      return "barrier-wait";
    case SpanKind::kCommit:
      return "commit";
    case SpanKind::kKindCount:
      break;
  }
  return "unknown";
}

SpanSink::SpanSink() : epoch_(std::chrono::steady_clock::now()) {}

int64_t SpanSink::NowUnlocked() const {
  if (ticks_ != nullptr) return *ticks_;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int64_t SpanSink::Now() const { return NowUnlocked(); }

void SpanSink::UseTickClock(const int64_t* ticks) {
  std::lock_guard<std::mutex> lock(mu_);
  ticks_ = ticks;
  // Spans opened on the wall clock (the run span precedes the network's
  // existence) are rebased so they still contain their tick-stamped
  // children.
  const int64_t now = NowUnlocked();
  for (const int64_t id : stack_) {
    Span& s = spans_[static_cast<size_t>(id - 1)];
    s.begin = now;
  }
}

int64_t SpanSink::Begin(SpanKind kind, int site, int64_t round,
                        int64_t subround, const char* label) {
  return BeginWithParent(kind, site, round, subround, label,
                         Span::kAutoParent);
}

int64_t SpanSink::BeginWithParent(SpanKind kind, int site, int64_t round,
                                  int64_t subround, const char* label,
                                  int64_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.id = static_cast<int64_t>(spans_.size()) + 1;
  s.parent = parent == Span::kAutoParent
                 ? (stack_.empty() ? 0 : stack_.back())
                 : parent;
  s.kind = kind;
  s.site = site;
  s.round = round;
  s.subround = subround;
  s.begin = NowUnlocked();
  s.end = 0;
  s.label = label;
  spans_.push_back(s);
  open_.push_back(1);
  stack_.push_back(s.id);
  return s.id;
}

void SpanSink::End(int64_t id, const char* reason) {
  std::lock_guard<std::mutex> lock(mu_);
  EndUnlocked(id, reason);
}

void SpanSink::EndWithStats(int64_t id, const char* reason, int64_t words,
                            int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  FGM_CHECK(id >= 1 && id <= static_cast<int64_t>(spans_.size()));
  Span& s = spans_[static_cast<size_t>(id - 1)];
  s.words = words;
  s.count = count;
  EndUnlocked(id, reason);
}

void SpanSink::SetTier(int64_t id, int tier) {
  std::lock_guard<std::mutex> lock(mu_);
  FGM_CHECK(id >= 1 && id <= static_cast<int64_t>(spans_.size()));
  spans_[static_cast<size_t>(id - 1)].tier = tier;
}

void SpanSink::EndUnlocked(int64_t id, const char* reason) {
  FGM_CHECK(id >= 1 && id <= static_cast<int64_t>(spans_.size()));
  const size_t idx = static_cast<size_t>(id - 1);
  FGM_CHECK(open_[idx] != 0);
  Span& s = spans_[idx];
  s.end = std::max(NowUnlocked(), s.begin);
  if (reason != nullptr) s.reason = reason;
  open_[idx] = 0;
  // Usually the innermost scope; forced round ends close a subround from
  // inside a resync scope, so removal searches from the top.
  for (size_t i = stack_.size(); i > 0; --i) {
    if (stack_[i - 1] == id) {
      stack_.erase(stack_.begin() + static_cast<int64_t>(i - 1));
      return;
    }
  }
  FGM_CHECK(false);  // End() on a span that was never on the stack
}

void SpanSink::EmitComplete(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  span.id = static_cast<int64_t>(spans_.size()) + 1;
  if (span.parent == Span::kAutoParent) {
    span.parent = stack_.empty() ? 0 : stack_.back();
  }
  if (span.end == 0) span.end = span.begin;
  FGM_CHECK_GE(span.end, span.begin);
  spans_.push_back(span);
  open_.push_back(0);
}

void SpanSink::CloseAll(const char* reason) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t close_at = NowUnlocked();
  for (const Span& s : spans_) {
    close_at = std::max(close_at, std::max(s.begin, s.end));
  }
  while (!stack_.empty()) {
    const size_t idx = static_cast<size_t>(stack_.back() - 1);
    stack_.pop_back();
    Span& s = spans_[idx];
    s.end = close_at;
    if (s.reason == nullptr) s.reason = reason;
    open_[idx] = 0;
  }
}

int64_t SpanSink::root() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.empty() ? 0 : 1;
}

int64_t SpanSink::CurrentId() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stack_.empty() ? 0 : stack_.back();
}

int64_t SpanSink::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(spans_.size());
}

int64_t SpanSink::open_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(stack_.size());
}

std::vector<Span> SpanSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string SpanSink::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    const bool is_open = open_[i] != 0;
    w.BeginObject();
    w.Field("name", SpanKindName(s.kind));
    w.Field("cat", "fgm");
    w.Field("ph", is_open ? "B" : "X");
    w.Field("ts", s.begin);
    if (!is_open) w.Field("dur", s.end - s.begin);
    w.Field("pid", int64_t{0});
    w.Field("tid", static_cast<int64_t>(s.site) + 1);
    w.Key("args");
    w.BeginObject();
    w.Field("id", s.id);
    w.Field("parent", s.parent);
    w.Field("kind", SpanKindName(s.kind));
    w.Field("site", static_cast<int64_t>(s.site));
    w.Field("round", s.round);
    w.Field("subround", s.subround);
    w.Field("words", s.words);
    w.Field("count", s.count);
    w.Field("dir", static_cast<int64_t>(s.dir));
    w.Field("queue", s.queue);
    w.Field("transit", s.transit);
    w.Field("drain", s.drain);
    if (s.tier != 0) w.Field("tier", static_cast<int64_t>(s.tier));
    if (s.label != nullptr) w.Field("label", s.label);
    if (s.reason != nullptr) w.Field("reason", s.reason);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("otherData");
  w.BeginObject();
  w.Field("clock", ticks_ != nullptr ? "sim-ticks" : "ns");
  w.EndObject();
  w.EndObject();
  return w.Take();
}

void SpanSink::WriteChromeTrace(const std::string& path) const {
  const std::string text = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  FGM_CHECK(f != nullptr);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

namespace {

int64_t ArgInt(const JsonNode& args, const char* key) {
  const JsonNode* v = args.Find(key);
  return v != nullptr ? v->AsInt(0) : 0;
}

std::string ArgStr(const JsonNode& args, const char* key) {
  const JsonNode* v = args.Find(key);
  return v != nullptr && v->type == JsonNode::Type::kString ? v->str
                                                           : std::string();
}

}  // namespace

bool ParseSpanJson(const std::string& text, std::vector<ParsedSpan>* out,
                   std::string* error) {
  out->clear();
  JsonNode doc;
  if (!ParseJson(text, &doc, error)) return false;
  if (doc.type != JsonNode::Type::kObject) {
    *error = "span document is not a JSON object";
    return false;
  }
  const JsonNode* events = doc.Find("traceEvents");
  if (events == nullptr || events->type != JsonNode::Type::kArray) {
    *error = "span document has no traceEvents array";
    return false;
  }
  for (const JsonNode& ev : events->items) {
    if (ev.type != JsonNode::Type::kObject) {
      *error = "traceEvents entry is not an object";
      return false;
    }
    const JsonNode* ph = ev.Find("ph");
    if (ph == nullptr || ph->type != JsonNode::Type::kString ||
        (ph->str != "X" && ph->str != "B")) {
      *error = "traceEvents entry has no X/B phase";
      return false;
    }
    const JsonNode* args = ev.Find("args");
    if (args == nullptr || args->type != JsonNode::Type::kObject) {
      *error = "traceEvents entry has no args object";
      return false;
    }
    ParsedSpan s;
    s.closed = ph->str == "X";
    s.begin = ev.Find("ts") != nullptr ? ev.Find("ts")->AsInt(0) : 0;
    const JsonNode* dur = ev.Find("dur");
    s.end = s.begin + (dur != nullptr ? dur->AsInt(0) : 0);
    s.id = ArgInt(*args, "id");
    s.parent = ArgInt(*args, "parent");
    s.kind = ArgStr(*args, "kind");
    s.site = static_cast<int>(ArgInt(*args, "site"));
    s.round = ArgInt(*args, "round");
    s.subround = ArgInt(*args, "subround");
    s.words = ArgInt(*args, "words");
    s.count = ArgInt(*args, "count");
    s.dir = static_cast<int>(ArgInt(*args, "dir"));
    s.queue = ArgInt(*args, "queue");
    s.transit = ArgInt(*args, "transit");
    s.drain = ArgInt(*args, "drain");
    s.tier = static_cast<int>(ArgInt(*args, "tier"));
    s.label = ArgStr(*args, "label");
    s.reason = ArgStr(*args, "reason");
    out->push_back(std::move(s));
  }
  return true;
}

bool ReadSpanFile(const std::string& path, std::vector<ParsedSpan>* out,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseSpanJson(text.str(), out, error);
}

std::vector<std::string> CheckSpans(const std::vector<ParsedSpan>& spans,
                                    int64_t expect_up_words,
                                    int64_t expect_down_words,
                                    SpanCheckStats* stats) {
  constexpr size_t kMaxIssues = 64;
  std::vector<std::string> issues;
  int64_t suppressed = 0;
  auto issue = [&](const std::string& what) {
    if (issues.size() < kMaxIssues) {
      issues.push_back(what);
    } else {
      ++suppressed;
    }
  };

  SpanCheckStats local;
  std::map<int64_t, const ParsedSpan*> by_id;
  for (const ParsedSpan& s : spans) {
    ++local.spans;
    if (s.id <= 0) {
      issue("span with non-positive id " + std::to_string(s.id));
      continue;
    }
    if (!by_id.emplace(s.id, &s).second) {
      issue("duplicate span id " + std::to_string(s.id));
    }
  }
  for (const ParsedSpan& s : spans) {
    const std::string where = "span " + std::to_string(s.id) + " (" +
                              s.kind + ")";
    if (!s.closed) {
      ++local.open;
      issue(where + " was never closed");
      continue;
    }
    if (s.end < s.begin) {
      issue(where + " ends before it begins");
    }
    if (s.parent != 0) {
      const auto it = by_id.find(s.parent);
      if (it == by_id.end()) {
        issue(where + " has unknown parent " + std::to_string(s.parent));
      } else {
        const ParsedSpan& p = *it->second;
        if (p.closed && (s.begin < p.begin || s.end > p.end)) {
          issue(where + " [" + std::to_string(s.begin) + "," +
                std::to_string(s.end) + "] escapes parent " +
                std::to_string(p.id) + " (" + p.kind + ") [" +
                std::to_string(p.begin) + "," + std::to_string(p.end) +
                "]");
        }
      }
    }
    if (s.kind == "msg" || s.kind == "datagram") {
      if (s.dir > 0) {
        local.msg_up_words += s.words;
      } else if (s.dir < 0) {
        local.msg_down_words += s.words;
      } else {
        issue(where + " has no direction");
      }
    }
  }
  if (expect_up_words >= 0 && local.msg_up_words != expect_up_words) {
    issue("upstream span words " + std::to_string(local.msg_up_words) +
          " != traced MsgSent words " + std::to_string(expect_up_words));
  }
  if (expect_down_words >= 0 && local.msg_down_words != expect_down_words) {
    issue("downstream span words " + std::to_string(local.msg_down_words) +
          " != traced MsgSent words " + std::to_string(expect_down_words));
  }
  if (suppressed > 0) {
    issues.push_back("... " + std::to_string(suppressed) +
                     " more violations suppressed");
  }
  if (stats != nullptr) *stats = local;
  return issues;
}

CriticalPathSummary SummarizeCriticalPath(
    const std::vector<ParsedSpan>& spans) {
  CriticalPathSummary out;
  std::map<int64_t, const ParsedSpan*> by_id;
  for (const ParsedSpan& s : spans) by_id.emplace(s.id, &s);

  // Subround spans, keyed by id for parent lookup and by (round,
  // subround) for datagram matching (datagrams parent to the run — they
  // straddle subround boundaries — but carry their epoch).
  std::map<int64_t, const ParsedSpan*> subrounds;
  for (const ParsedSpan& s : spans) {
    const int64_t dur = s.end - s.begin;
    if (s.kind == "run") {
      out.run_time += dur;
    } else if (s.kind == "round") {
      out.round_time += dur;
    } else if (s.kind == "subround") {
      subrounds.emplace(s.id, &s);
    } else if (s.kind == "rpc") {
      out.network_time += dur;
      if (s.count > 1) out.retransmits += s.count - 1;
    } else if (s.kind == "datagram") {
      out.network_time += s.transit;
    } else if (s.kind == "shard-speculate") {
      out.speculate_time += dur;
    } else if (s.kind == "barrier-wait") {
      out.barrier_time += dur;
    } else if (s.kind == "replay") {
      out.replay_time += dur;
    } else if (s.kind == "commit") {
      out.commit_time += dur;
    }
  }

  // Gating: per subround, the message-level child with the latest end
  // (ties toward the lower site — deterministic). RPC spans cover their
  // retransmit chains; datagrams match by epoch.
  struct GateState {
    SubroundGate gate;
    int64_t latest_end = 0;
  };
  std::map<int64_t, GateState> gate_by_subround;  // subround span id
  auto consider = [&](const ParsedSpan& sub, const ParsedSpan& child) {
    if (child.site < 0) return;
    GateState& g = gate_by_subround[sub.id];
    g.gate.round = sub.round;
    g.gate.subround = sub.subround;
    const bool later =
        g.gate.site < 0 || child.end > g.latest_end ||
        (child.end == g.latest_end && child.site < g.gate.site);
    if (later) {
      g.gate.site = child.site;
      g.gate.wait = child.end - child.begin;
      g.gate.attempts = std::max<int64_t>(child.count, 1);
      g.latest_end = child.end;
    }
  };
  for (const ParsedSpan& s : spans) {
    if (s.kind == "rpc" || s.kind == "msg") {
      const auto it = subrounds.find(s.parent);
      if (it != subrounds.end()) consider(*it->second, s);
    } else if (s.kind == "datagram") {
      for (const auto& [id, sub] : subrounds) {
        if (sub->round == s.round && sub->subround == s.subround) {
          consider(*sub, s);
          break;
        }
      }
    }
  }
  for (const auto& [id, g] : gate_by_subround) out.gates.push_back(g.gate);
  std::sort(out.gates.begin(), out.gates.end(),
            [](const SubroundGate& a, const SubroundGate& b) {
              if (a.round != b.round) return a.round < b.round;
              return a.subround < b.subround;
            });

  std::map<int, SiteGating> per_site;
  for (const SubroundGate& g : out.gates) {
    SiteGating& sg = per_site[g.site];
    sg.site = g.site;
    ++sg.gated;
    sg.wait += g.wait;
    sg.retransmits += g.attempts - 1;
  }
  for (const auto& [site, sg] : per_site) out.top_sites.push_back(sg);
  std::sort(out.top_sites.begin(), out.top_sites.end(),
            [](const SiteGating& a, const SiteGating& b) {
              if (a.gated != b.gated) return a.gated > b.gated;
              return a.site < b.site;
            });
  return out;
}

}  // namespace fgm
