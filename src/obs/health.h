// Online run-health monitor: EWMA estimators + declarative alert rules.
//
// The trace records every event and the time series records state at
// round boundaries; neither answers "is this run healthy *right now*?"
// HealthMonitor consumes the same round-boundary RunSnapshot stream (plus
// a handful of protocol-side observations) and maintains exponentially
// weighted moving averages of the quantities that characterise run
// health: per-site update/drift skew and FGM/O rate estimates, per-kind
// word rates, round/subround cadence, speculation waste, and — over the
// simulated network — per-site drop/latency/retransmission signals
// attributed from sim::SiteNetStats.
//
// On top of the estimators sits a small declarative alert-rule engine.
// Each rule is a named predicate over the EWMAs with hysteresis (an alert
// raised at threshold T clears only below T·clear_factor), and every
// raise/clear transition is emitted as a typed kAlertRaised /
// kAlertCleared trace event that the replay checker pairs like
// SiteDown/SiteResync windows. Rules:
//
//  * straggler_site — a site is down (raised/cleared deterministically on
//    the crash/rejoin handshake) or its delivery latency EWMA sits far
//    above the fleet mean;
//  * lossy_link    — a site's per-round drop fraction EWMA crossed the
//    lossy threshold;
//  * psi_margin    — the ψ-overshoot past the ε_ψ·k·φ(0) stop level is
//    eroding the safety margin (subrounds systematically overshoot);
//  * budget_overflow — the fraction of rounds ending on the subround
//    budget backstop is too high;
//  * stuck_subround — the run keeps processing records but the global
//    subround counter has not advanced for several progress samples.
//
// The monitor also feeds back into planning: core/optimizer consumes a
// HealthView of per-site shipping-cost factors (lossy or slow links make
// the D-word full function effectively more expensive), and the protocol
// substitutes the warmed-up EWMA rates for the last-round-only estimates
// when FgmConfig::health_planning is set.
//
// Zero-cost discipline, same as every obs sink: producers hold a raw
// `HealthMonitor*` that is null when disabled; all feeding happens at
// round boundaries or explicit heartbeat points, never per record. With
// the monitor disabled (and health_planning off) traffic is bit-identical
// to a seed run.
//
// Layering: obs cannot depend on sim or core, so the per-site network
// sample is mirrored here as a plain struct (SiteNetSample) and the
// protocol copies sim::SiteNetStats fields across when feeding.

#ifndef FGM_OBS_HEALTH_H_
#define FGM_OBS_HEALTH_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/timeseries.h"

namespace fgm {

class TraceSink;

/// One exponentially weighted moving average. The first sample seeds the
/// value directly; later samples fold in with weight `alpha`.
class Ewma {
 public:
  void Observe(double x) {
    value_ = samples_ == 0 ? x : alpha_ * x + (1.0 - alpha_) * value_;
    ++samples_;
  }
  void set_alpha(double alpha) { alpha_ = alpha; }
  double value() const { return value_; }
  int64_t samples() const { return samples_; }

 private:
  double alpha_ = 0.3;
  double value_ = 0.0;
  int64_t samples_ = 0;
};

/// The built-in alert rules. Site-scoped rules carry the site id in their
/// events; run-global rules use site = -1.
enum class AlertRule : int {
  kStragglerSite = 0,  ///< site down / delivery latency far above fleet
  kLossyLink,          ///< per-site drop-fraction EWMA over threshold
  kPsiMargin,          ///< ψ-overshoot past the stop level is eroding
  kBudgetOverflow,     ///< too many rounds end on the subround backstop
  kStuckSubround,      ///< records flow but subrounds stopped advancing
  kRuleCount,
};

const char* AlertRuleName(AlertRule rule);

/// Thresholds and smoothing constants for the monitor. The defaults are
/// deliberately conservative: alerts mean "act", not "glance".
struct HealthConfig {
  double ewma_alpha = 0.3;   ///< weight of the newest sample in each EWMA
  int64_t min_rounds = 3;    ///< rate-EWMA warmup before have_rates()

  double lossy_drop_threshold = 0.15;      ///< drop fraction ⇒ lossy_link
  double straggler_latency_factor = 3.0;   ///< site latency vs fleet mean
  int64_t straggler_min_samples = 8;       ///< latency samples before judging
  double psi_margin_threshold = 0.25;      ///< overshoot fraction of |stop|
  double overflow_threshold = 0.25;        ///< EWMA of overflow indicator
  int64_t stuck_progress_samples = 3;      ///< stagnant heartbeats ⇒ stuck
  double clear_factor = 0.5;  ///< hysteresis: clear below threshold·this
  double max_ship_cost = 4.0; ///< clamp on per-site cost inflation
};

/// Mirror of sim::SiteNetStats (obs cannot include sim headers). All
/// counts are cumulative; the monitor diffs successive samples itself.
struct SiteNetSample {
  int64_t delivered_msgs = 0;
  int64_t delivered_words = 0;
  int64_t dropped_msgs = 0;
  int64_t dropped_words = 0;
  int64_t retransmitted_msgs = 0;
  int64_t retransmitted_words = 0;
  int64_t latency_ticks = 0;
  int64_t latency_samples = 0;
  int64_t downs = 0;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(int sites, const HealthConfig& config = {});

  /// Alert transitions are emitted to this sink (non-owning, may be null:
  /// the monitor still tracks state, only the events are suppressed).
  void set_trace(TraceSink* trace) { trace_ = trace; }

  // ---- Feeding (round boundaries / heartbeat points only) ------------

  /// One completed round: cadence, per-kind word rates, plan audit.
  void ObserveRound(const RunSnapshot& snapshot);
  /// One site's contribution to the finished round.
  void ObserveSite(int site, int64_t updates, double drift_norm);
  /// Cumulative per-site network counters (mirrored sim::SiteNetStats).
  void ObserveNet(int site, const SiteNetSample& cumulative);
  /// The optimizer's measured α/β/γ for one site, one round.
  void ObserveRates(int site, double alpha, double beta, double gamma);
  /// End-of-round ψ against the ε_ψ·k·φ(0) stop level (both < 0).
  void ObservePsiMargin(double last_psi, double stop_level);
  /// Cumulative count of rounds ended by the subround-budget backstop.
  void ObserveOverflowRounds(int64_t cumulative_overflow_rounds);
  /// Parallel-engine speculation outcome (cumulative update counts).
  void ObserveSpeculation(int64_t committed_updates, int64_t wasted_updates);
  /// Record-cadence heartbeat: drives the stuck_subround rule.
  void ObserveProgress(int64_t records, int64_t round,
                       int64_t total_subrounds, int64_t t);
  /// Deterministic straggler transitions from the crash/rejoin handshake.
  void NoteSiteDown(int site, int64_t round, int64_t t);
  void NoteSiteUp(int site, int64_t round, int64_t t);

  /// Evaluates the threshold rules (lossy_link, straggler latency,
  /// psi_margin, budget_overflow) and emits raise/clear transitions.
  /// Call once per completed round, after the Observe* feeds.
  void EvaluateAlerts(int64_t round, int64_t t);

  // ---- Views ---------------------------------------------------------

  int sites() const { return sites_; }
  const HealthConfig& config() const { return config_; }

  /// True once every rate EWMA has at least min_rounds samples on some
  /// site (sites that never reported stay inactive in the plan anyway).
  bool have_rates() const;
  double rate_alpha(int site) const;
  double rate_beta(int site) const;
  double rate_gamma(int site) const;
  int64_t rate_rounds(int site) const;

  double drop_fraction(int site) const;  ///< EWMA of per-round drop share
  double latency(int site) const;        ///< EWMA mean delivery delay
  bool site_down(int site) const;

  /// Multiplicative cost factor for shipping the D-word full function to
  /// `site`: 1 on a clean link, up to max_ship_cost on lossy/slow/down
  /// links (a dropped shipment is retransmitted — real words).
  double ShipCostFactor(int site) const;
  /// Fleet-mean ship cost: scales the rebalance profitability bar (a
  /// rebalance whose traffic crosses degraded links must pay for more).
  double RebalanceCostFactor() const;

  bool alert_active(AlertRule rule, int site) const;
  int64_t alerts_raised() const { return alerts_raised_; }
  int64_t alerts_cleared() const { return alerts_cleared_; }
  int64_t active_alert_count() const {
    return static_cast<int64_t>(active_.size());
  }

  // ---- Export --------------------------------------------------------

  /// Prometheus text-exposition snapshot of every estimator and alert.
  /// Atomically replaces `path` (write temp + rename) so scrapers never
  /// see a torn file. FGM_CHECKs on I/O failure.
  void WritePrometheus(const std::string& path, int64_t records,
                       int64_t rounds, int64_t total_words,
                       double psi) const;
  /// Same exposition as a string (tests, in-process scraping).
  std::string PrometheusText(int64_t records, int64_t rounds,
                             int64_t total_words, double psi) const;

  /// One JSONL heartbeat line (no trailing newline): run counters plus
  /// the alert tallies, for `runner --live_out` streaming.
  std::string HeartbeatJson(int64_t records, int64_t rounds,
                            int64_t total_words, double psi) const;

 private:
  struct SiteHealth {
    Ewma rate_alpha, rate_beta, rate_gamma;
    Ewma updates, drift_norm;
    Ewma drop_frac;        ///< per-round dropped/(delivered+dropped) msgs
    Ewma latency;          ///< per-round mean delivery delay in ticks
    Ewma retransmit_frac;  ///< per-round retransmitted/delivered msgs
    SiteNetSample last;    ///< cumulative baseline for diffing
    bool down = false;
    int64_t rate_rounds = 0;
  };

  /// Drives one (rule, site) alert through its raise/clear transitions,
  /// emitting trace events on edges. `reason` may be null.
  void SetActive(AlertRule rule, int site, bool active, double value,
                 double threshold, int64_t round, int64_t t,
                 const char* reason);

  const int sites_;
  const HealthConfig config_;
  TraceSink* trace_ = nullptr;

  std::vector<SiteHealth> site_;

  // Run-global estimators.
  Ewma round_records_;    ///< records per round (cadence)
  Ewma round_subrounds_;  ///< subrounds per round (cadence)
  Ewma round_words_;      ///< words per round
  std::vector<Ewma> kind_words_;  ///< per-MsgKind words per round
  Ewma psi_overshoot_;    ///< (ψ_end − stop)/|stop| at round end
  Ewma overflow_rate_;    ///< overflow-round indicator per round
  Ewma speculation_waste_;  ///< wasted/(committed+wasted) updates
  int64_t last_records_ = 0;
  int64_t last_overflow_rounds_ = 0;
  int64_t last_spec_committed_ = 0;
  int64_t last_spec_wasted_ = 0;

  // stuck_subround bookkeeping.
  int64_t progress_subrounds_ = -1;
  int64_t stagnant_samples_ = 0;

  // Alert engine state: currently-firing (rule, site) pairs.
  std::set<std::pair<int, int>> active_;
  int64_t alerts_raised_ = 0;
  int64_t alerts_cleared_ = 0;
};

}  // namespace fgm

#endif  // FGM_OBS_HEALTH_H_
