#include "obs/timeseries.h"

#include <cstdio>

#include "obs/json.h"
#include "util/check.h"

namespace fgm {

TimeSeries::TimeSeries(size_t capacity) : capacity_(capacity) {
  FGM_CHECK(capacity_ > 0);
}

void TimeSeries::Record(RunSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.seq = taken_++;
  if (samples_.size() == capacity_) {
    samples_.pop_front();
    ++dropped_;
  }
  samples_.push_back(snapshot);
}

int64_t TimeSeries::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return taken_;
}

int64_t TimeSeries::samples_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<RunSnapshot> TimeSeries::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {samples_.begin(), samples_.end()};
}

namespace {

void WriteKindArray(JsonWriter* w, const char* key,
                    const std::array<int64_t, kSnapshotMsgKinds>& words) {
  w->Key(key);
  w->BeginArray();
  for (const int64_t v : words) w->Int(v);
  w->EndArray();
}

}  // namespace

void TimeSeries::WriteJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Field("version", kTimeSeriesSchemaVersion);
  w->Field("capacity", static_cast<int64_t>(capacity_));
  w->Field("taken", taken_);
  w->Field("dropped", dropped_);
  w->Key("samples");
  w->BeginArray();
  for (const RunSnapshot& s : samples_) {
    w->BeginObject();
    w->Field("kind", s.kind);
    w->Field("seq", s.seq);
    w->Field("records", s.records);
    w->Field("round", s.round);
    w->Field("subrounds", s.subrounds);
    w->Field("total_subrounds", s.total_subrounds);
    w->Field("psi", s.psi);
    w->Field("theta", s.theta);
    w->Field("lambda", s.lambda);
    w->Field("total_words", s.total_words);
    w->Field("round_words", s.round_words);
    WriteKindArray(w, "words_by_kind", s.words_by_kind);
    WriteKindArray(w, "round_words_by_kind", s.round_words_by_kind);
    w->Field("plan_full_sites", s.plan_full_sites);
    w->Field("pred_gain", s.pred_gain);
    w->Field("actual_gain", s.actual_gain);
    w->Field("site_updates_max", s.site_updates_max);
    w->Field("site_updates_mean", s.site_updates_mean);
    w->Field("drift_norm_max", s.drift_norm_max);
    w->Field("drift_norm_mean", s.drift_norm_mean);
    w->Field("hot_site", static_cast<int64_t>(s.hot_site));
    w->Field("in_flight_words", s.in_flight_words);
    w->Field("max_in_flight_words", s.max_in_flight_words);
    w->Field("retransmit_words", s.retransmit_words);
    w->Field("dropped_words", s.dropped_words);
    w->Field("resyncs", s.resyncs);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void TimeSeries::WriteFile(const std::string& path) const {
  JsonWriter w;
  WriteJson(&w);
  std::FILE* f = std::fopen(path.c_str(), "w");
  FGM_CHECK(f != nullptr);
  const std::string& text = w.str();
  FGM_CHECK(std::fwrite(text.data(), 1, text.size(), f) == text.size());
  std::fputc('\n', f);
  FGM_CHECK(std::fclose(f) == 0);
}

}  // namespace fgm
