// Causal span tracing for protocol runs.
//
// A trace (obs/trace.h) records *events*; spans record *intervals* with
// causal parent/child structure: the run contains rounds, rounds contain
// subrounds, subrounds contain the RPCs that drive them, RPCs contain
// their per-attempt wire messages (retransmissions included), and the
// parallel engine's speculation windows contain per-shard speculate /
// barrier-wait / replay segments. Timestamps come from the simulated
// event clock when the run uses sim::EventNetwork (UseTickClock), else
// from a monotonic nanosecond clock, so simulated latency is attributed
// per message and real compute time per phase.
//
// Same zero-cost discipline as TraceSink: producers hold a raw
// `SpanSink*` that is null when disabled, and every hook is a single
// pointer test. bench_micro measures the disabled hook to keep this
// honest.
//
// Export is Chrome Trace Event JSON ({"traceEvents":[...]}, "ph":"X"
// complete events), loadable in Perfetto / chrome://tracing. Spans that
// were never closed export as "ph":"B" begin events; CheckSpans flags
// them — a finished run must close every span.

#ifndef FGM_OBS_SPAN_H_
#define FGM_OBS_SPAN_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fgm {

enum class SpanKind : int {
  kRun = 0,         ///< whole run (root; every other span nests inside)
  kRound,           ///< one protocol round
  kSubround,        ///< one subround within a round
  kRpc,             ///< blocking request/response incl. retransmit chain
  kMsg,             ///< one charged wire message (one RPC attempt)
  kDatagram,        ///< fire-and-forget counter datagram (post → drain)
  kResync,          ///< crash/rejoin handshake (resync or reconfigure)
  kSpeculate,       ///< parallel engine: one speculation window
  kShardSpeculate,  ///< one shard's worker-side speculation segment
  kReplay,          ///< one shard's post-rollback replay segment
  kBarrierWait,     ///< shard done → slowest shard done (blocked time)
  kCommit,          ///< window's serial commit segment
  kKindCount,
};

const char* SpanKindName(SpanKind kind);

/// One causal interval. Flat by design (plain scalars + static strings)
/// so the sink stores spans without per-span allocation.
struct Span {
  /// parent value meaning "assign the innermost open span (else the
  /// root) when emitted".
  static constexpr int64_t kAutoParent = -1;

  int64_t id = 0;                 ///< dense from 1, assigned by the sink
  int64_t parent = kAutoParent;   ///< parent span id; 0 = none (root)
  SpanKind kind = SpanKind::kMsg;
  int site = -1;                  ///< -1 = coordinator / whole run
  int64_t round = 0;
  int64_t subround = 0;
  int64_t begin = 0;              ///< ticks (sim clock) or ns (wall)
  int64_t end = 0;
  int64_t words = 0;   ///< charged wire words (kMsg/kDatagram: exact)
  int64_t count = 0;   ///< attempts (kRpc), records (shard segments)
  int dir = 0;         ///< +1 coordinator → site, -1 site → coordinator
  int64_t queue = 0;   ///< ticks queued before transit (reorder jitter)
  int64_t transit = 0; ///< ticks on the wire (latency + transfer)
  int64_t drain = 0;   ///< ticks between arrival and the protocol drain
  /// Tree topologies (src/hier): the tier whose machinery this span
  /// belongs to. 0 = the root star (flat runs never set it; not
  /// exported), t ≥ 1 = a tier-t aggregator's local protocol.
  int tier = 0;
  const char* label = nullptr;   ///< static string: msg kind, phase name
  const char* reason = nullptr;  ///< static string: loss / forced close
};

/// Thread-safe span collector with scope stack and Chrome-trace export.
///
/// Begin/End manage *scoped* spans (run, round, subround, RPC, resync):
/// Begin pushes the span onto an open-scope stack and End closes it
/// (removal tolerates out-of-stack-order closes — forced round ends close
/// a subround from inside a resync scope). EmitComplete records a closed
/// leaf span in one call; its parent defaults to the innermost open scope
/// at emission time.
class SpanSink {
 public:
  SpanSink();

  /// Opens a scoped span whose parent is the innermost open span (the
  /// root when none). Returns the span id.
  int64_t Begin(SpanKind kind, int site = -1, int64_t round = 0,
                int64_t subround = 0, const char* label = nullptr);
  /// Opens a scoped span with an explicit parent id (0 = none). Used
  /// where causal parentage differs from the current scope: rounds parent
  /// to the run, resyncs to the run (they straddle subround boundaries).
  int64_t BeginWithParent(SpanKind kind, int site, int64_t round,
                          int64_t subround, const char* label,
                          int64_t parent);
  /// Closes an open scoped span, stamping its end time. `reason`, when
  /// given, labels why the scope closed (forced round end, run end).
  void End(int64_t id, const char* reason = nullptr);
  /// End() that also records totals only known at close time: an RPC's
  /// attempt count and total charged words across its retransmit chain.
  void EndWithStats(int64_t id, const char* reason, int64_t words,
                    int64_t count);

  /// Stamps the tree tier (src/hier) an open or closed span belongs to.
  /// Flat runs never call this; tier 0 is not exported.
  void SetTier(int64_t id, int tier);

  /// Records an already-delimited span (begin/end set by the caller; a
  /// zero `end` means instantaneous: end = begin). Span::kAutoParent
  /// resolves to the innermost open scope.
  void EmitComplete(Span span);

  /// Closes every still-open scope, innermost first, with `reason`. The
  /// close timestamp is max(now, latest end seen) so parents always
  /// contain their children. Call once when the run finishes.
  void CloseAll(const char* reason);

  /// Id of the first span opened (the run span); 0 before any Begin.
  int64_t root() const;
  /// Id of the innermost open scope (0 when none) — the span id that
  /// rides the wire envelope under --span_wire.
  int64_t CurrentId() const;

  /// Current timestamp: the registered tick clock when present, else
  /// nanoseconds since sink construction. Safe to call from worker
  /// threads (the tick clock is only registered during setup).
  int64_t Now() const;
  /// Switches timestamps to the simulated event clock `*ticks` and
  /// rebases any open span onto it (the run span opens on the wall clock
  /// before the network exists).
  void UseTickClock(const int64_t* ticks);

  int64_t spans() const;       ///< total spans recorded
  int64_t open_spans() const;  ///< still-open scoped spans
  std::vector<Span> Snapshot() const;  ///< all spans, in id order

  /// Renders {"traceEvents":[...]} (Chrome Trace Event JSON). Closed
  /// spans are "ph":"X" complete events; open spans are "ph":"B".
  std::string ChromeTraceJson() const;
  /// Writes ChromeTraceJson() to `path`; FGM_CHECKs on I/O failure.
  void WriteChromeTrace(const std::string& path) const;

 private:
  int64_t NowUnlocked() const;
  void EndUnlocked(int64_t id, const char* reason);

  mutable std::mutex mu_;
  const int64_t* ticks_ = nullptr;  // set once during setup
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Span> spans_;   // id = index + 1
  std::vector<char> open_;    // parallel to spans_
  std::vector<int64_t> stack_;  // ids of open scoped spans, outermost first
};

// ---- Offline side: parse exported spans and re-verify invariants ----

/// A span read back from Chrome Trace Event JSON (strings owned).
struct ParsedSpan {
  int64_t id = 0;
  int64_t parent = 0;
  std::string kind;
  int site = -1;
  int64_t round = 0;
  int64_t subround = 0;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t words = 0;
  int64_t count = 0;
  int dir = 0;
  int64_t queue = 0;
  int64_t transit = 0;
  int64_t drain = 0;
  int tier = 0;  ///< tree tier (src/hier); 0 = root star / flat run
  std::string label;
  std::string reason;
  bool closed = true;  ///< "ph":"X"; false for a leaked "ph":"B"
};

/// Parses a Chrome Trace Event JSON file written by WriteChromeTrace.
/// Returns false and sets `*error` on malformed input.
bool ReadSpanFile(const std::string& path, std::vector<ParsedSpan>* out,
                  std::string* error);
/// Same, from the document text.
bool ParseSpanJson(const std::string& text, std::vector<ParsedSpan>* out,
                   std::string* error);

struct SpanCheckStats {
  int64_t spans = 0;
  int64_t open = 0;            ///< spans exported as "ph":"B"
  int64_t msg_up_words = 0;    ///< Σ words over kMsg/kDatagram, dir > 0
  int64_t msg_down_words = 0;  ///< Σ words over kMsg/kDatagram, dir < 0
};

/// Span conservation invariants: every span closed with end ≥ begin, ids
/// unique, every parent exists and contains its child's interval, and —
/// when `expect_up_words` / `expect_down_words` are ≥ 0 — the
/// per-direction word sums over message-level spans (kMsg + kDatagram)
/// equal the expectation (the trace's MsgSent totals). Returns one
/// message per violation (empty = all invariants hold).
std::vector<std::string> CheckSpans(const std::vector<ParsedSpan>& spans,
                                    int64_t expect_up_words,
                                    int64_t expect_down_words,
                                    SpanCheckStats* stats = nullptr);

// ---- Critical-path extraction ----

/// Which site's response gated one subround (the child message/RPC span
/// with the latest end; ties break toward the lower site id).
struct SubroundGate {
  int64_t round = 0;
  int64_t subround = 0;
  int site = -1;
  int64_t wait = 0;      ///< duration of the gating span
  int64_t attempts = 1;  ///< RPC attempts of the gating span (retransmits)
};

struct SiteGating {
  int site = -1;
  int64_t gated = 0;      ///< subrounds this site gated
  int64_t wait = 0;       ///< summed gating-span duration
  int64_t retransmits = 0;///< extra attempts across its gating spans
};

/// Run-level time split plus per-subround straggler attribution,
/// computed purely from exported spans.
struct CriticalPathSummary {
  int64_t run_time = 0;        ///< run span duration
  int64_t round_time = 0;      ///< Σ round-span durations
  int64_t network_time = 0;    ///< Σ kRpc durations + datagram transit
  int64_t retransmits = 0;     ///< RPC attempts beyond the first
  int64_t speculate_time = 0;  ///< Σ kShardSpeculate durations
  int64_t barrier_time = 0;    ///< Σ kBarrierWait durations
  int64_t replay_time = 0;     ///< Σ kReplay durations
  int64_t commit_time = 0;     ///< Σ kCommit durations
  std::vector<SubroundGate> gates;     ///< one per subround with children
  std::vector<SiteGating> top_sites;   ///< descending by subrounds gated
};

CriticalPathSummary SummarizeCriticalPath(
    const std::vector<ParsedSpan>& spans);

}  // namespace fgm

#endif  // FGM_OBS_SPAN_H_
