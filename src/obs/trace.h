// Structured protocol event traces.
//
// The FGM/GM protocols compute the quantities that define their behaviour
// — the ψ trajectory across subrounds, the quantum θ = -ψ/2k, counter
// increments c_i, rebalance scales λ, per-message word costs — and then
// throw them away. A TraceSink captures them as typed events so a run can
// be debugged, plotted, or re-verified offline (obs/replay.h checks the
// protocol invariants event by event).
//
// Tracing is OFF by default and must stay free when off: every emitter
// holds a raw `TraceSink*` that is null when disabled, and each hook is a
// single pointer test (`if (trace_ != nullptr) { build event; emit; }`) —
// the event is only constructed inside the branch. bench_micro measures
// the disabled hook to keep this honest.

#ifndef FGM_OBS_TRACE_H_
#define FGM_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace fgm {

enum class TraceEventKind : int {
  kRunStart = 0,    ///< driver: protocol/query identity, k
  kRoundStart,      ///< coordinator: new round, φ(0), ε_ψ, initial ψ
  kSubroundStart,   ///< coordinator: ψ at entry and the quantum θ = -ψ/2k
  kSubroundEnd,     ///< coordinator: recomputed ψ after the φ-value poll
  kIncrementMsg,    ///< site → coordinator counter increment (c_i raise)
  kDriftFlush,      ///< site → coordinator drift flush (words, updates)
  kRebalance,       ///< coordinator: accepted rebalance (λ, ψ_B, new ψ)
  kThresholdCross,  ///< ψ reached the termination level / GM site violation
  kMsgSent,         ///< one wire message (kind, direction, words)
  kPlanChosen,      ///< FGM/O: round plan (full sites, τ, predicted gain)
  kPlanSite,        ///< FGM/O: per-site d_i with the α/β/γ rate estimates
  kPlanOutcome,     ///< FGM/O: round's actual words/updates vs prediction
  kMsgDelivered,    ///< sim: a queued wire message reached its endpoint
  kMsgDropped,      ///< sim: a wire message was lost (loss or down target)
  kSiteDown,        ///< sim: a site crashed or its link went down
  kSiteResync,      ///< coordinator: crash/rejoin handshake completed
  kAlertRaised,     ///< health monitor: an alert rule started firing
  kAlertCleared,    ///< health monitor: a previously raised rule recovered
  kTierEnd,         ///< hier: per-tier traffic totals (before RunEnd)
  kRunEnd,          ///< driver: final TrafficStats totals
  kKindCount,
};

const char* TraceEventKindName(TraceEventKind kind);

/// One protocol event. Flat by design: every field is a plain scalar so
/// sinks can store or serialize events without allocation; each event
/// kind populates (and serializes) only its relevant fields — see
/// JsonlTraceSink for the per-kind JSON schema.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kRunStart;
  int64_t seq = 0;       ///< assigned by the sink, dense from 0
  int site = -1;         ///< -1 = coordinator / whole run
  int64_t round = 0;     ///< 1-based protocol round
  int64_t subround = 0;  ///< 1-based subround within the round
  double psi = 0.0;      ///< coordinator's ψ (incl. ψ_B) for the event
  double theta = 0.0;    ///< subround quantum
  double lambda = 0.0;   ///< rebalancing scale
  double value = 0.0;    ///< φ(0) (RoundStart), ψ_B (Rebalance), φ (GM)
  double eps = 0.0;      ///< ε_ψ (RoundStart)
  int k = 0;             ///< number of sites (RunStart / RoundStart)
  int64_t counter = 0;   ///< counter increment / post-poll counter total
  int64_t words = 0;     ///< words on the wire (MsgSent, DriftFlush)
  int64_t count = 0;     ///< update count (DriftFlush), events (RunEnd)
  int dir = 0;           ///< MsgSent: +1 coord → site, -1 site → coord
  int64_t up_words = 0, down_words = 0;  ///< RunEnd traffic totals
  int64_t up_msgs = 0, down_msgs = 0;
  double alpha = 0.0;        ///< PlanSite: site update rate estimate
  double beta = 0.0;         ///< PlanSite: full-function drain rate estimate
  double gamma = 0.0;        ///< PlanSite: cheap-bound drain rate estimate
  double pred_len = 0.0;     ///< PlanChosen: predicted round length τ
  double pred_gain = 0.0;    ///< PlanChosen/PlanOutcome: predicted gain g−C
  double pred_rate = 0.0;    ///< PlanChosen: predicted gain rate (g−C)/τ
  double actual_gain = 0.0;  ///< PlanOutcome: measured gain for the round
  int64_t t = 0;             ///< sim tick (delivery/drop/fault events)
  /// Tree topologies (src/hier): which tier's link or local subround the
  /// event belongs to. 0 = the root star (the flat protocol's only tier;
  /// never serialized, keeping flat traces byte-identical); tier t ≥ 1 =
  /// the links between tier-t nodes and their children / a tier-t
  /// aggregator's local subround machinery.
  int tier = 0;
  const char* label = nullptr;  ///< static string: msg kind, protocol name
  const char* reason = nullptr;  ///< static string: drop cause, poll cause
};

/// Event consumer. Emitters call Emit(), which stamps the sequence number
/// and forwards to the implementation. Emit is serialized by a mutex so
/// concurrent emitters (parallel runner worker threads) cannot tear the
/// sequence numbering or the sink's buffer; the disabled path never
/// reaches Emit and stays one null-pointer test.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  void Emit(TraceEvent event) {
    std::lock_guard<std::mutex> lock(mu_);
    event.seq = next_seq_++;
    OnEvent(event);
  }

  int64_t events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_seq_;
  }

 protected:
  virtual void OnEvent(const TraceEvent& event) = 0;

 private:
  mutable std::mutex mu_;
  int64_t next_seq_ = 0;
};

/// Buffers all events in memory (tests, in-process analysis).
class MemoryTraceSink : public TraceSink {
 public:
  const std::vector<TraceEvent>& events_log() const { return events_; }

 protected:
  void OnEvent(const TraceEvent& event) override { events_.push_back(event); }

 private:
  std::vector<TraceEvent> events_;
};

/// Counts events and otherwise discards them (overhead measurement).
class CountingTraceSink : public TraceSink {
 protected:
  void OnEvent(const TraceEvent&) override {}
};

/// Writes one JSON object per event (JSONL). Doubles are emitted with
/// round-trip precision so the replay checker can re-verify the protocol
/// arithmetic bit-exactly. Schema: every line carries "ev" and "seq";
/// the remaining keys depend on the event kind and are exactly the fields
/// listed per kind in EventJson().
class JsonlTraceSink : public TraceSink {
 public:
  /// Opens `path` for writing; FGM_CHECKs on failure.
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  /// Renders one event as its JSONL line (no trailing newline).
  static std::string EventJson(const TraceEvent& event);

 protected:
  void OnEvent(const TraceEvent& event) override;

 private:
  std::FILE* out_;
};

}  // namespace fgm

#endif  // FGM_OBS_TRACE_H_
