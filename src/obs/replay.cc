#include "obs/replay.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "obs/json.h"

namespace fgm {

namespace {

/// Labels parsed from traces must outlive the returned TraceEvent;
/// interning into a process-lifetime set gives them static storage.
const char* Intern(const std::string& s) {
  static std::set<std::string>* pool = new std::set<std::string>();
  return pool->insert(s).first->c_str();
}

int64_t GetInt(const std::map<std::string, JsonValue>& obj,
               const std::string& key, int64_t fallback = 0) {
  const auto it = obj.find(key);
  if (it == obj.end() || it->second.type != JsonValue::Type::kNumber) {
    return fallback;
  }
  return it->second.int_val;
}

double GetDouble(const std::map<std::string, JsonValue>& obj,
                 const std::string& key, double fallback = 0.0) {
  const auto it = obj.find(key);
  if (it == obj.end()) return fallback;
  // The writer serializes non-finite doubles as null; read them back as
  // NaN so "the value was not finite" stays observable.
  if (it->second.type == JsonValue::Type::kNull) return std::nan("");
  if (it->second.type != JsonValue::Type::kNumber) return fallback;
  return it->second.num;
}

const char* GetLabel(const std::map<std::string, JsonValue>& obj,
                     const std::string& key) {
  const auto it = obj.find(key);
  if (it == obj.end() || it->second.type != JsonValue::Type::kString) {
    return nullptr;
  }
  return Intern(it->second.str);
}

}  // namespace

bool ParseTraceEventJson(const std::string& line, TraceEvent* event,
                         std::string* error) {
  std::map<std::string, JsonValue> obj;
  if (!ParseFlatJsonObject(line, &obj, error)) return false;
  const auto ev = obj.find("ev");
  if (ev == obj.end() || ev->second.type != JsonValue::Type::kString) {
    *error = "missing \"ev\" kind";
    return false;
  }
  *event = TraceEvent{};
  bool known = false;
  for (int i = 0; i < static_cast<int>(TraceEventKind::kKindCount); ++i) {
    const auto kind = static_cast<TraceEventKind>(i);
    if (ev->second.str == TraceEventKindName(kind)) {
      event->kind = kind;
      known = true;
      break;
    }
  }
  if (!known) {
    *error = "unknown event kind \"" + ev->second.str + "\"";
    return false;
  }
  event->seq = GetInt(obj, "seq", -1);
  event->site = static_cast<int>(GetInt(obj, "site", -1));
  event->round = GetInt(obj, "round");
  event->subround = GetInt(obj, "subround");
  event->psi = GetDouble(obj, "psi");
  event->theta = GetDouble(obj, "theta");
  event->lambda = GetDouble(obj, "lambda");
  event->eps = GetDouble(obj, "eps_psi");
  event->k = static_cast<int>(GetInt(obj, "k"));
  event->words = GetInt(obj, "words");
  event->up_words = GetInt(obj, "up_words");
  event->down_words = GetInt(obj, "down_words");
  event->up_msgs = GetInt(obj, "up_msgs");
  event->down_msgs = GetInt(obj, "down_msgs");
  event->t = GetInt(obj, "t");
  event->tier = static_cast<int>(GetInt(obj, "tier"));
  switch (event->kind) {
    case TraceEventKind::kRunStart:
      event->label = GetLabel(obj, "protocol");
      // Tree runs announce their spec; `k` is then the root fan-in and
      // `leaves` the true site count (flat runs omit both).
      event->reason = GetLabel(obj, "topology");
      event->counter = GetInt(obj, "leaves");
      break;
    case TraceEventKind::kRoundStart:
      event->value = GetDouble(obj, "phi0");
      break;
    case TraceEventKind::kSubroundEnd:
      event->counter = GetInt(obj, "counter");
      event->reason = GetLabel(obj, "reason");
      break;
    case TraceEventKind::kIncrementMsg:
      event->counter = GetInt(obj, "increment");
      event->reason = GetLabel(obj, "reason");
      break;
    case TraceEventKind::kDriftFlush:
      event->count = GetInt(obj, "updates");
      break;
    case TraceEventKind::kRebalance:
      event->value = GetDouble(obj, "psi_b");
      break;
    case TraceEventKind::kThresholdCross:
      event->value = GetDouble(obj, "value");
      event->label = GetLabel(obj, "reason");
      break;
    case TraceEventKind::kMsgSent: {
      event->label = GetLabel(obj, "msg");
      const char* dir = GetLabel(obj, "dir");
      event->dir = (dir != nullptr && std::strcmp(dir, "up") == 0) ? 1 : -1;
      break;
    }
    case TraceEventKind::kPlanChosen:
      event->counter = GetInt(obj, "full_sites");
      event->pred_len = GetDouble(obj, "pred_len");
      event->pred_gain = GetDouble(obj, "pred_gain");
      event->pred_rate = GetDouble(obj, "pred_rate");
      break;
    case TraceEventKind::kPlanSite:
      event->counter = GetInt(obj, "d");
      event->alpha = GetDouble(obj, "alpha");
      event->beta = GetDouble(obj, "beta");
      event->gamma = GetDouble(obj, "gamma");
      break;
    case TraceEventKind::kPlanOutcome:
      event->count = GetInt(obj, "updates");
      event->pred_gain = GetDouble(obj, "pred_gain");
      event->actual_gain = GetDouble(obj, "actual_gain");
      break;
    case TraceEventKind::kMsgDelivered:
    case TraceEventKind::kMsgDropped: {
      event->label = GetLabel(obj, "msg");
      const char* dir = GetLabel(obj, "dir");
      event->dir = (dir != nullptr && std::strcmp(dir, "up") == 0) ? 1 : -1;
      event->reason = GetLabel(obj, "reason");
      break;
    }
    case TraceEventKind::kSiteDown:
    case TraceEventKind::kSiteResync:
      event->reason = GetLabel(obj, "reason");
      break;
    case TraceEventKind::kAlertRaised:
    case TraceEventKind::kAlertCleared:
      event->label = GetLabel(obj, "rule");
      event->value = GetDouble(obj, "value");
      event->theta = GetDouble(obj, "threshold");
      event->reason = GetLabel(obj, "reason");
      break;
    case TraceEventKind::kRunEnd:
      event->count = GetInt(obj, "events");
      break;
    default:
      break;
  }
  return true;
}

namespace {

constexpr size_t kMaxRecordedIssues = 20;

class Checker {
 public:
  ReplayReport Run(std::istream& in) {
    std::string line;
    int64_t next_seq = 0;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      TraceEvent e;
      std::string error;
      if (!ParseTraceEventJson(line, &e, &error)) {
        Fail(next_seq, "unparseable line: " + error);
        ++next_seq;
        continue;
      }
      if (e.seq != next_seq) {
        Fail(e.seq, "sequence gap: expected seq " + std::to_string(next_seq));
      }
      next_seq = e.seq + 1;
      ++report_.events;
      Check(e);
    }
    report_.up_words = up_words_;
    report_.down_words = down_words_;
    return std::move(report_);
  }

 private:
  void Fail(int64_t seq, std::string message) {
    ++report_.issue_count;
    if (report_.issues.size() < kMaxRecordedIssues) {
      report_.issues.push_back(ReplayIssue{seq, std::move(message)});
    }
  }

  void CheckRound(const TraceEvent& e) {
    if (in_round_ && e.round != round_) {
      Fail(e.seq, "event round " + std::to_string(e.round) +
                      " != current round " + std::to_string(round_));
    }
  }

  bool fgm_round() const { return in_round_ && eps_ > 0.0; }

  /// Aggregator-tier events of a tree-topology run. They live outside the
  /// root star's protocol state machine, so they bypass every flat
  /// invariant (round ledger, up/down word totals, subround pairing) and
  /// feed a per-tier ledger instead, closed bit-exactly by kTierEnd.
  void CheckTier(const TraceEvent& e) {
    TierTally& tally = tiers_[e.tier];
    switch (e.kind) {
      case TraceEventKind::kMsgSent:
        if (e.words < 1) Fail(e.seq, "wire message below 1 word");
        if (e.dir > 0) {
          tally.up_words += e.words;
          ++tally.up_msgs;
        } else {
          tally.down_words += e.words;
          ++tally.down_msgs;
        }
        break;

      case TraceEventKind::kSubroundEnd:
        // An aggregator's local poll: unreasoned polls fire only once the
        // local counter passed the node's fan-in (carried in `k`);
        // cascade re-baselines carry reason "rebaseline".
        ++tally.local_polls;
        if (e.counter < 0) Fail(e.seq, "negative aggregator counter");
        if (e.reason == nullptr && e.counter <= e.k) {
          Fail(e.seq, "tier " + std::to_string(e.tier) +
                          " local poll before the counter exceeded the "
                          "fan-in");
        }
        break;

      case TraceEventKind::kDriftFlush:
        ++tally.flushes;
        if (e.words < 1) Fail(e.seq, "drift flush below 1 word");
        if (e.count < 0) Fail(e.seq, "negative flush update count");
        break;

      case TraceEventKind::kTierEnd:
        ++report_.tier_ends;
        if (tally.tier_end) {
          Fail(e.seq, "duplicate TierEnd for tier " + std::to_string(e.tier));
        }
        tally.tier_end = true;
        // Close the tier's word ledger exactly, like RunEnd closes the
        // root's.
        if (e.up_words != tally.up_words ||
            e.down_words != tally.down_words) {
          Fail(e.seq, "tier " + std::to_string(e.tier) +
                          " summed MsgSent words (" +
                          std::to_string(tally.up_words) + " up, " +
                          std::to_string(tally.down_words) +
                          " down) != TierEnd totals (" +
                          std::to_string(e.up_words) + " up, " +
                          std::to_string(e.down_words) + " down)");
        }
        if (e.up_msgs != tally.up_msgs || e.down_msgs != tally.down_msgs) {
          Fail(e.seq, "tier " + std::to_string(e.tier) +
                          " MsgSent message counts != TierEnd totals");
        }
        if (e.k < 1) Fail(e.seq, "TierEnd with no endpoints");
        break;

      default:
        Fail(e.seq, std::string("unexpected tier-stamped event kind \"") +
                        TraceEventKindName(e.kind) + "\"");
        break;
    }
  }

  void Check(const TraceEvent& e) {
    if (e.tier != 0) {
      if (e.tier < 0) {
        Fail(e.seq, "negative tier stamp");
        return;
      }
      CheckTier(e);
      return;
    }
    switch (e.kind) {
      case TraceEventKind::kRunStart:
        if (e.k >= 1) {
          k_ = e.k;
          run_k_ = e.k;
        }
        hier_mode_ = e.reason != nullptr;
        break;

      case TraceEventKind::kRoundStart: {
        ++report_.rounds;
        if (subround_open_) {
          Fail(e.seq, "round started while a subround is still open");
          subround_open_ = false;
        }
        if (e.round != last_round_ + 1) {
          Fail(e.seq, "round numbering jumped from " +
                          std::to_string(last_round_) + " to " +
                          std::to_string(e.round));
        }
        last_round_ = e.round;
        round_ = e.round;
        in_round_ = true;
        round_msg_words_ = 0;
        if (e.k >= 1) {
          if (k_ > 0 && e.k != k_) {
            // Reduced-k (or recovered) rounds are legal only after the
            // simulated network changed the live site set, and k must
            // stay within [1, RunStart k].
            if (!(sim_mode_ && site_set_changed_ &&
                  (run_k_ == 0 || e.k <= run_k_))) {
              Fail(e.seq, "site count k changed");
            }
          }
          k_ = e.k;
        }
        phi0_ = e.value;
        eps_ = e.eps;
        subround_ = 0;
        if (!(phi0_ < 0.0)) Fail(e.seq, "round started with phi(0) >= 0");
        if (eps_ > 0.0) {
          // FGM round: the termination level and initial psi, recomputed
          // exactly as the coordinator computes them.
          stop_level_ = eps_ * static_cast<double>(k_) * phi0_;
          const double initial_psi = static_cast<double>(k_) * phi0_;
          if (e.psi != initial_psi) {
            Fail(e.seq, "round-start psi != k*phi(0)");
          }
          expected_psi_ = e.psi;
          have_expected_psi_ = true;
        } else {
          have_expected_psi_ = false;
        }
        break;
      }

      case TraceEventKind::kSubroundStart: {
        ++report_.subrounds;
        CheckRound(e);
        if (!fgm_round()) {
          Fail(e.seq, "subround outside an FGM round");
          break;
        }
        if (subround_open_) Fail(e.seq, "nested subround");
        if (e.subround != subround_ + 1) {
          Fail(e.seq, "subround numbering jumped to " +
                          std::to_string(e.subround));
        }
        subround_ = e.subround;
        subround_open_ = true;
        increment_sum_ = 0;
        if (have_expected_psi_ && e.psi != expected_psi_) {
          Fail(e.seq, "psi discontinuity: subround psi differs from the "
                      "value announced by the preceding event");
        }
        have_expected_psi_ = false;
        // Certified instant: psi at or below the (negative) termination
        // level, hence psi < 0.
        if (!(e.psi <= stop_level_)) {
          Fail(e.seq, "subround started with psi above eps_psi*k*phi(0)");
        }
        const double want_theta =
            -e.psi / (2.0 * static_cast<double>(k_));
        if (e.theta != want_theta) {
          Fail(e.seq, "quantum theta != -psi/2k");
        }
        break;
      }

      case TraceEventKind::kIncrementMsg:
        ++report_.increments;
        CheckRound(e);
        if (!subround_open_) {
          Fail(e.seq, "counter increment outside a subround");
          break;
        }
        if (e.counter <= 0) Fail(e.seq, "non-positive counter increment");
        if (e.site < 0 || (run_k_ > 0 && e.site >= run_k_)) {
          Fail(e.seq, "increment from invalid site");
        }
        if (e.reason != nullptr && !sim_mode_) {
          Fail(e.seq, "reasoned increment outside a simulated run");
        }
        // Delivery-point safety: while every site is reachable the
        // coordinator polls as soon as the total passes k, so no further
        // unreasoned increment may land on a total already past it.
        // During a down window deliveries accumulate (the poll is
        // deferred), and timeout-poll batches apply several deltas
        // back-to-back — both carry exemptions the trace makes explicit.
        if (e.reason == nullptr && down_sites_.empty() &&
            increment_sum_ > k_) {
          Fail(e.seq, "increment delivered after the counter total passed "
                      "k without a poll");
        }
        increment_sum_ += e.counter;
        break;

      case TraceEventKind::kSubroundEnd:
        CheckRound(e);
        if (!subround_open_) {
          Fail(e.seq, "subround end without a matching start");
          break;
        }
        subround_open_ = false;
        if (e.subround != subround_) Fail(e.seq, "subround id mismatch");
        if (e.counter != increment_sum_) {
          Fail(e.seq, "poll counter total " + std::to_string(e.counter) +
                          " != sum of increments " +
                          std::to_string(increment_sum_));
        }
        if (e.reason != nullptr) {
          // Forced polls (resync after a rejoin, silence-timeout) may
          // legitimately fire at any counter total, but only simulated
          // networks produce them.
          if (!sim_mode_) {
            Fail(e.seq, "forced poll outside a simulated run");
          }
        } else if (e.counter <= k_) {
          Fail(e.seq, "phi-value poll before the counter exceeded k");
        }
        expected_psi_ = e.psi;
        have_expected_psi_ = true;
        break;

      case TraceEventKind::kRebalance:
        ++report_.rebalances;
        CheckRound(e);
        if (!fgm_round()) break;  // GM partial rebalances: tally only
        if (!(e.lambda > 0.0 && e.lambda <= 1.0)) {
          Fail(e.seq, "rebalance lambda outside (0, 1]");
        }
        if (!(e.value <= 0.0)) Fail(e.seq, "rebalance with psi_B > 0");
        {
          const double want =
              static_cast<double>(k_) * e.lambda * phi0_ + e.value;
          if (e.psi != want) {
            Fail(e.seq, "rebalance psi != k*lambda*phi(0) + psi_B");
          }
        }
        if (!(e.psi <= stop_level_)) {
          Fail(e.seq, "rebalance accepted without restored slack");
        }
        expected_psi_ = e.psi;
        have_expected_psi_ = true;
        break;

      case TraceEventKind::kThresholdCross:
        CheckRound(e);
        if (e.label != nullptr &&
            std::strcmp(e.label, "psi-exhausted") == 0) {
          if (!fgm_round()) {
            Fail(e.seq, "psi-exhausted cross outside an FGM round");
          } else if (!(e.psi >= stop_level_)) {
            Fail(e.seq, "round ended as psi-exhausted below the "
                        "termination level");
          }
        } else if (e.label != nullptr &&
                   std::strcmp(e.label, "local-violation") == 0) {
          if (!(e.value > 0.0)) {
            Fail(e.seq, "local violation reported with phi <= 0");
          }
        }
        break;

      case TraceEventKind::kDriftFlush:
        ++report_.flushes;
        CheckRound(e);
        if (e.words < 1) Fail(e.seq, "drift flush below 1 word");
        if (e.count < 0) Fail(e.seq, "negative flush update count");
        break;

      case TraceEventKind::kMsgSent:
        ++report_.messages;
        if (e.words < 1) Fail(e.seq, "wire message below 1 word");
        if (e.dir > 0) {
          up_words_ += e.words;
          ++up_msgs_;
        } else {
          down_words_ += e.words;
          ++down_msgs_;
        }
        round_msg_words_ += e.words;
        break;

      case TraceEventKind::kPlanChosen:
        ++report_.plans;
        CheckRound(e);
        if (e.counter < 0 || (e.k > 0 && e.counter > e.k)) {
          Fail(e.seq, "plan with full_sites outside [0, k]");
        }
        break;

      case TraceEventKind::kPlanSite:
        CheckRound(e);
        if (e.counter != 0 && e.counter != 1) {
          Fail(e.seq, "plan site d outside {0, 1}");
        }
        if (e.site < 0 || (k_ > 0 && e.site >= k_)) {
          Fail(e.seq, "plan for invalid site");
        }
        if (!(e.gamma >= 0.0 && e.gamma <= 1.0)) {
          Fail(e.seq, "plan site gamma outside [0, 1]");
        }
        break;

      case TraceEventKind::kPlanOutcome:
        ++report_.plan_outcomes;
        CheckRound(e);
        // The outcome closes the round's word ledger: its `words` must
        // re-sum the round's individual MsgSent events bit-exactly (the
        // per-round analogue of the RunEnd totals check), and the gain is
        // recomputable from the traced operands.
        if (e.words != round_msg_words_) {
          Fail(e.seq, "plan outcome words " + std::to_string(e.words) +
                          " != summed MsgSent words of the round " +
                          std::to_string(round_msg_words_));
        }
        if (e.actual_gain != static_cast<double>(e.count) -
                                 static_cast<double>(e.words)) {
          Fail(e.seq, "plan outcome actual_gain != updates - words");
        }
        break;

      case TraceEventKind::kMsgDelivered:
        ++report_.deliveries;
        sim_mode_ = true;
        if (e.words < 1) Fail(e.seq, "delivered message below 1 word");
        if (e.dir > 0) {
          // Coordinator→site traffic: the protocols never address a site
          // inside a SiteDown..SiteResync window, so a delivery there is
          // a hardening bug (the pause/resync machinery was bypassed).
          if (down_sites_.count(e.site) != 0) {
            Fail(e.seq, "delivery to site " + std::to_string(e.site) +
                            " while it is down");
          }
          delivered_up_words_ += e.words;
          ++delivered_up_msgs_;
        } else {
          delivered_down_words_ += e.words;
          ++delivered_down_msgs_;
        }
        break;

      case TraceEventKind::kMsgDropped:
        ++report_.drops;
        sim_mode_ = true;
        if (e.words < 1) Fail(e.seq, "dropped message below 1 word");
        if (e.dir > 0) {
          dropped_up_words_ += e.words;
          ++dropped_up_msgs_;
        } else {
          dropped_down_words_ += e.words;
          ++dropped_down_msgs_;
        }
        break;

      case TraceEventKind::kSiteDown:
        sim_mode_ = true;
        site_set_changed_ = true;
        if (e.site < 0 || (run_k_ > 0 && e.site >= run_k_)) {
          Fail(e.seq, "SiteDown for invalid site");
        } else if (!down_sites_.insert(e.site).second) {
          Fail(e.seq, "site " + std::to_string(e.site) +
                          " went down while already down");
        }
        break;

      case TraceEventKind::kSiteResync:
        ++report_.resyncs;
        sim_mode_ = true;
        site_set_changed_ = true;
        if (e.words < 0) Fail(e.seq, "negative resync word count");
        if (down_sites_.erase(e.site) == 0) {
          Fail(e.seq, "resync for site " + std::to_string(e.site) +
                          " which was not down");
        }
        break;

      case TraceEventKind::kAlertRaised: {
        ++report_.alerts_raised;
        const std::string rule = e.label != nullptr ? e.label : "?";
        if (!active_alerts_.insert({rule, e.site}).second) {
          Fail(e.seq, "alert \"" + rule + "\" re-raised for site " +
                          std::to_string(e.site) + " while already active");
        }
        break;
      }

      case TraceEventKind::kAlertCleared: {
        ++report_.alerts_cleared;
        const std::string rule = e.label != nullptr ? e.label : "?";
        if (active_alerts_.erase({rule, e.site}) == 0) {
          Fail(e.seq, "alert \"" + rule + "\" cleared for site " +
                          std::to_string(e.site) + " without being raised");
        }
        break;
      }

      case TraceEventKind::kTierEnd:
        Fail(e.seq, "TierEnd without a tier stamp");
        break;

      case TraceEventKind::kRunEnd:
        report_.saw_run_end = true;
        // Tree runs: every aggregator tier that carried traffic must have
        // closed its ledger, and flush fan-out must widen towards the
        // leaves — each root-tier flush collection pulls at least as many
        // flush messages across every deeper tier (word conservation
        // across tiers: drift only reaches the root through a complete
        // chain of per-tier flushes).
        {
          int64_t prev_flushes = report_.flushes;
          int prev_tier = 0;
          for (const auto& entry : tiers_) {
            const TierTally& tally = entry.second;
            if (!tally.tier_end &&
                tally.up_words + tally.down_words > 0) {
              Fail(e.seq, "tier " + std::to_string(entry.first) +
                              " carried traffic but never emitted TierEnd");
            }
            if (entry.first == prev_tier + 1 &&
                tally.flushes < prev_flushes) {
              Fail(e.seq, "tier " + std::to_string(entry.first) + " saw " +
                              std::to_string(tally.flushes) +
                              " drift flushes, fewer than tier " +
                              std::to_string(prev_tier) + "'s " +
                              std::to_string(prev_flushes));
            }
            prev_flushes = tally.flushes;
            prev_tier = entry.first;
            report_.tier_words += tally.up_words + tally.down_words;
            report_.tier_up_words += tally.up_words;
            report_.tier_down_words += tally.down_words;
          }
          if (!tiers_.empty() && !hier_mode_) {
            Fail(e.seq, "tier-stamped events in a run whose RunStart "
                        "announced no topology");
          }
        }
        if (e.up_words != up_words_ || e.down_words != down_words_) {
          Fail(e.seq,
               "summed MsgSent words (" + std::to_string(up_words_) + " up, " +
                   std::to_string(down_words_) + " down) != TrafficStats (" +
                   std::to_string(e.up_words) + " up, " +
                   std::to_string(e.down_words) + " down)");
        }
        if (e.up_msgs != up_msgs_ || e.down_msgs != down_msgs_) {
          Fail(e.seq, "MsgSent message counts != TrafficStats");
        }
        // Delivery conservation: when the trace carries network events,
        // every charged send must surface exactly once as a delivery or a
        // drop. (Null-mode sim runs suppress network events entirely and
        // skip this, preserving byte parity with synchronous traces.)
        if (report_.deliveries + report_.drops > 0) {
          if (delivered_up_words_ + dropped_up_words_ != up_words_ ||
              delivered_down_words_ + dropped_down_words_ != down_words_) {
            Fail(e.seq, "delivered+dropped words (" +
                            std::to_string(delivered_up_words_ +
                                           dropped_up_words_) +
                            " up, " +
                            std::to_string(delivered_down_words_ +
                                           dropped_down_words_) +
                            " down) != sent words (" +
                            std::to_string(up_words_) + " up, " +
                            std::to_string(down_words_) + " down)");
          }
          if (delivered_up_msgs_ + dropped_up_msgs_ != up_msgs_ ||
              delivered_down_msgs_ + dropped_down_msgs_ != down_msgs_) {
            Fail(e.seq, "delivered+dropped message counts != sent counts");
          }
        }
        break;

      case TraceEventKind::kKindCount:
        break;
    }
  }

  /// Per-tier ledger of a tree-topology run, keyed by tier (1 = the tier
  /// just below the root).
  struct TierTally {
    int64_t up_words = 0, down_words = 0;
    int64_t up_msgs = 0, down_msgs = 0;
    int64_t flushes = 0;
    int64_t local_polls = 0;
    bool tier_end = false;
  };

  ReplayReport report_;
  int k_ = 0;
  int run_k_ = 0;  ///< site count announced at RunStart (never shrinks)
  bool hier_mode_ = false;  ///< RunStart announced a tree topology
  std::map<int, TierTally> tiers_;
  bool sim_mode_ = false;        ///< any sim network event seen
  bool site_set_changed_ = false;  ///< any SiteDown/SiteResync seen
  std::set<int> down_sites_;
  /// Currently-firing (rule, site) alert pairs; raise/clear must alternate.
  std::set<std::pair<std::string, int>> active_alerts_;
  bool in_round_ = false;
  int64_t round_ = 0;
  int64_t last_round_ = 0;
  double phi0_ = 0.0;
  double eps_ = 0.0;
  double stop_level_ = 0.0;
  bool subround_open_ = false;
  int64_t subround_ = 0;
  int64_t increment_sum_ = 0;
  int64_t round_msg_words_ = 0;
  double expected_psi_ = 0.0;
  bool have_expected_psi_ = false;
  int64_t up_words_ = 0, down_words_ = 0;
  int64_t up_msgs_ = 0, down_msgs_ = 0;
  int64_t delivered_up_words_ = 0, delivered_down_words_ = 0;
  int64_t delivered_up_msgs_ = 0, delivered_down_msgs_ = 0;
  int64_t dropped_up_words_ = 0, dropped_down_words_ = 0;
  int64_t dropped_up_msgs_ = 0, dropped_down_msgs_ = 0;
};

}  // namespace

std::string ReplayReport::Summary() const {
  std::ostringstream out;
  out << "events=" << events << " rounds=" << rounds << " subrounds="
      << subrounds << " increments=" << increments << " flushes=" << flushes
      << " rebalances=" << rebalances << " messages=" << messages
      << " plans=" << plans << " words=" << (up_words + down_words);
  if (deliveries + drops + resyncs > 0) {
    out << " deliveries=" << deliveries << " drops=" << drops
        << " resyncs=" << resyncs;
  }
  if (alerts_raised + alerts_cleared > 0) {
    out << " alerts_raised=" << alerts_raised
        << " alerts_cleared=" << alerts_cleared;
  }
  if (tier_ends > 0) {
    out << " tiers=" << tier_ends << " tier_words=" << tier_words;
  }
  out << (saw_run_end ? "" : " (no RunEnd totals)");
  if (ok()) {
    out << " — all invariants hold";
  } else {
    out << " — " << issue_count << " violation(s)";
    for (const ReplayIssue& issue : issues) {
      out << "\n  seq " << issue.seq << ": " << issue.message;
    }
    if (issue_count > static_cast<int64_t>(issues.size())) {
      out << "\n  ... and " << (issue_count - issues.size()) << " more";
    }
  }
  return out.str();
}

ReplayReport CheckTrace(std::istream& in) { return Checker().Run(in); }

ReplayReport CheckTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ReplayReport report;
    report.issue_count = 1;
    report.issues.push_back(ReplayIssue{-1, "cannot open " + path});
    return report;
  }
  return CheckTrace(in);
}

}  // namespace fgm
