#include "obs/metrics.h"

#include <cstdio>

namespace fgm {

namespace {

template <typename Map, typename Maker>
typename Map::mapped_type::element_type* GetOrCreate(Map* map,
                                                     const std::string& name,
                                                     Maker make) {
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(name, make()).first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&counters_, name,
                     [] { return std::make_unique<Counter>(); });
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&gauges_, name, [] { return std::make_unique<Gauge>(); });
}

RunningStats* MetricsRegistry::GetStats(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&stats_, name,
                     [] { return std::make_unique<RunningStats>(); });
}

CountHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                              int max_value) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&histograms_, name, [max_value] {
    return std::make_unique<CountHistogram>(max_value);
  });
}

WallTimer* MetricsRegistry::GetTimer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&timers_, name,
                     [] { return std::make_unique<WallTimer>(); });
}

void MetricsRegistry::WriteJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();

  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, counter] : counters_) {
    w->Field(name, counter->value());
  }
  w->EndObject();

  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w->Field(name, gauge->value());
  }
  w->EndObject();

  w->Key("stats");
  w->BeginObject();
  for (const auto& [name, s] : stats_) {
    w->Key(name);
    w->BeginObject();
    w->Field("count", s->count());
    w->Field("mean", s->mean());
    w->Field("stddev", s->stddev());
    w->Field("min", s->min());
    w->Field("max", s->max());
    w->EndObject();
  }
  w->EndObject();

  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, h] : histograms_) {
    w->Key(name);
    w->BeginObject();
    w->Field("total", h->total());
    w->Field("mean", h->Mean());
    w->Field("max", h->max_observed());
    w->Field("p50", h->Quantile(0.5));
    w->Field("p95", h->Quantile(0.95));
    w->Key("buckets");
    w->BeginObject();
    for (int64_t v = 0; v <= h->bucket_limit(); ++v) {
      if (h->CountAt(v) == 0) continue;
      char key[24];
      std::snprintf(key, sizeof(key), "%lld", static_cast<long long>(v));
      // The last bucket aggregates every value >= bucket_limit.
      w->Field(v == h->bucket_limit() ? "overflow" : key, h->CountAt(v));
    }
    w->EndObject();
    w->EndObject();
  }
  w->EndObject();

  w->Key("timers");
  w->BeginObject();
  for (const auto& [name, t] : timers_) {
    w->Key(name);
    w->BeginObject();
    w->Field("count", t->count());
    w->Field("total_seconds", t->total_seconds());
    w->EndObject();
  }
  w->EndObject();

  w->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.Take();
}

}  // namespace fgm
