#include "obs/trace.h"

#include "obs/json.h"
#include "util/check.h"

namespace fgm {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRunStart:
      return "RunStart";
    case TraceEventKind::kRoundStart:
      return "RoundStart";
    case TraceEventKind::kSubroundStart:
      return "SubroundStart";
    case TraceEventKind::kSubroundEnd:
      return "SubroundEnd";
    case TraceEventKind::kIncrementMsg:
      return "IncrementMsg";
    case TraceEventKind::kDriftFlush:
      return "DriftFlush";
    case TraceEventKind::kRebalance:
      return "Rebalance";
    case TraceEventKind::kThresholdCross:
      return "ThresholdCross";
    case TraceEventKind::kMsgSent:
      return "MsgSent";
    case TraceEventKind::kPlanChosen:
      return "PlanChosen";
    case TraceEventKind::kPlanSite:
      return "PlanSite";
    case TraceEventKind::kPlanOutcome:
      return "PlanOutcome";
    case TraceEventKind::kMsgDelivered:
      return "MsgDelivered";
    case TraceEventKind::kMsgDropped:
      return "MsgDropped";
    case TraceEventKind::kSiteDown:
      return "SiteDown";
    case TraceEventKind::kSiteResync:
      return "SiteResync";
    case TraceEventKind::kAlertRaised:
      return "AlertRaised";
    case TraceEventKind::kAlertCleared:
      return "AlertCleared";
    case TraceEventKind::kTierEnd:
      return "TierEnd";
    case TraceEventKind::kRunEnd:
      return "RunEnd";
    case TraceEventKind::kKindCount:
      break;
  }
  return "unknown";
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : out_(std::fopen(path.c_str(), "w")) {
  FGM_CHECK(out_ != nullptr);
}

JsonlTraceSink::~JsonlTraceSink() {
  if (out_ != nullptr) std::fclose(out_);
}

std::string JsonlTraceSink::EventJson(const TraceEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ev", TraceEventKindName(e.kind));
  w.Field("seq", e.seq);
  switch (e.kind) {
    case TraceEventKind::kRunStart:
      w.Field("protocol", e.label != nullptr ? e.label : "?");
      w.Field("k", static_cast<int64_t>(e.k));
      // Tree runs announce their topology spec ("tree:4", ...) and carry
      // k = the root's fan-in (its effective site count); the true leaf
      // count rides in `counter`. Flat runs leave `reason` null and stay
      // byte-identical to the historic schema.
      if (e.reason != nullptr) {
        w.Field("topology", e.reason);
        w.Field("leaves", e.counter);
      }
      break;
    case TraceEventKind::kRoundStart:
      w.Field("round", e.round);
      w.Field("k", static_cast<int64_t>(e.k));
      w.Field("psi", e.psi);
      w.Field("phi0", e.value);
      w.Field("eps_psi", e.eps);
      break;
    case TraceEventKind::kSubroundStart:
      w.Field("round", e.round);
      w.Field("subround", e.subround);
      w.Field("psi", e.psi);
      w.Field("theta", e.theta);
      break;
    case TraceEventKind::kSubroundEnd:
      w.Field("round", e.round);
      w.Field("subround", e.subround);
      w.Field("psi", e.psi);
      w.Field("counter", e.counter);
      // Only forced polls (resync recovery) carry a reason; ordinary
      // counter-exhaustion polls keep the PR-2 schema bit-identical.
      if (e.reason != nullptr) w.Field("reason", e.reason);
      // Aggregator-local polls (tree topologies) name the polling node
      // and its fan-in; root-tier polls never set these.
      if (e.tier != 0) {
        w.Field("site", static_cast<int64_t>(e.site));
        w.Field("k", static_cast<int64_t>(e.k));
      }
      break;
    case TraceEventKind::kIncrementMsg:
      w.Field("round", e.round);
      w.Field("subround", e.subround);
      w.Field("site", static_cast<int64_t>(e.site));
      w.Field("increment", e.counter);
      if (e.reason != nullptr) w.Field("reason", e.reason);
      break;
    case TraceEventKind::kDriftFlush:
      w.Field("round", e.round);
      w.Field("site", static_cast<int64_t>(e.site));
      w.Field("words", e.words);
      w.Field("updates", e.count);
      break;
    case TraceEventKind::kRebalance:
      w.Field("round", e.round);
      w.Field("lambda", e.lambda);
      w.Field("psi_b", e.value);
      w.Field("psi", e.psi);
      break;
    case TraceEventKind::kThresholdCross:
      w.Field("round", e.round);
      w.Field("site", static_cast<int64_t>(e.site));
      w.Field("psi", e.psi);
      w.Field("value", e.value);
      w.Field("reason", e.label != nullptr ? e.label : "?");
      break;
    case TraceEventKind::kMsgSent:
      w.Field("site", static_cast<int64_t>(e.site));
      w.Field("msg", e.label != nullptr ? e.label : "?");
      w.Field("dir", e.dir > 0 ? "up" : "down");
      w.Field("words", e.words);
      break;
    case TraceEventKind::kPlanChosen:
      w.Field("round", e.round);
      w.Field("full_sites", e.counter);
      w.Field("k", static_cast<int64_t>(e.k));
      w.Field("pred_len", e.pred_len);
      w.Field("pred_gain", e.pred_gain);
      w.Field("pred_rate", e.pred_rate);
      break;
    case TraceEventKind::kPlanSite:
      w.Field("round", e.round);
      w.Field("site", static_cast<int64_t>(e.site));
      w.Field("d", e.counter);
      w.Field("alpha", e.alpha);
      w.Field("beta", e.beta);
      w.Field("gamma", e.gamma);
      break;
    case TraceEventKind::kPlanOutcome:
      w.Field("round", e.round);
      w.Field("updates", e.count);
      w.Field("words", e.words);
      w.Field("pred_gain", e.pred_gain);
      w.Field("actual_gain", e.actual_gain);
      break;
    case TraceEventKind::kMsgDelivered:
      w.Field("site", static_cast<int64_t>(e.site));
      w.Field("msg", e.label != nullptr ? e.label : "?");
      w.Field("dir", e.dir > 0 ? "up" : "down");
      w.Field("words", e.words);
      w.Field("t", e.t);
      break;
    case TraceEventKind::kMsgDropped:
      w.Field("site", static_cast<int64_t>(e.site));
      w.Field("msg", e.label != nullptr ? e.label : "?");
      w.Field("dir", e.dir > 0 ? "up" : "down");
      w.Field("words", e.words);
      w.Field("t", e.t);
      w.Field("reason", e.reason != nullptr ? e.reason : "?");
      break;
    case TraceEventKind::kSiteDown:
      w.Field("site", static_cast<int64_t>(e.site));
      w.Field("t", e.t);
      w.Field("reason", e.reason != nullptr ? e.reason : "?");
      break;
    case TraceEventKind::kSiteResync:
      w.Field("site", static_cast<int64_t>(e.site));
      w.Field("round", e.round);
      w.Field("words", e.words);
      w.Field("t", e.t);
      w.Field("reason", e.reason != nullptr ? e.reason : "?");
      break;
    case TraceEventKind::kAlertRaised:
    case TraceEventKind::kAlertCleared:
      // `rule` is the alert rule's name; `site` is -1 for run-global
      // rules (ψ-margin, budget overflow, stuck subround). `value` is the
      // observed metric, `threshold` the level it crossed (raise) or
      // recovered under (clear).
      w.Field("rule", e.label != nullptr ? e.label : "?");
      w.Field("site", static_cast<int64_t>(e.site));
      w.Field("round", e.round);
      w.Field("value", e.value);
      w.Field("threshold", e.theta);
      w.Field("t", e.t);
      if (e.reason != nullptr) w.Field("reason", e.reason);
      break;
    case TraceEventKind::kTierEnd:
      // Per-tier traffic ledger of a tree-topology run (src/hier): the
      // words/messages that crossed the links between tier-`tier` nodes
      // and their children, plus that tier's endpoint count in `k`.
      // Emitted once per tier before RunEnd; never on flat runs.
      w.Field("k", static_cast<int64_t>(e.k));
      w.Field("up_words", e.up_words);
      w.Field("down_words", e.down_words);
      w.Field("up_msgs", e.up_msgs);
      w.Field("down_msgs", e.down_msgs);
      break;
    case TraceEventKind::kRunEnd:
      w.Field("events", e.count);
      w.Field("up_words", e.up_words);
      w.Field("down_words", e.down_words);
      w.Field("up_msgs", e.up_msgs);
      w.Field("down_msgs", e.down_msgs);
      break;
    case TraceEventKind::kKindCount:
      break;
  }
  // Tier stamp for tree topologies. Flat runs never set it, so every
  // pre-existing schema line stays byte-identical.
  if (e.tier != 0) w.Field("tier", static_cast<int64_t>(e.tier));
  w.EndObject();
  return w.Take();
}

void JsonlTraceSink::OnEvent(const TraceEvent& event) {
  const std::string line = EventJson(event);
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fputc('\n', out_);
}

}  // namespace fgm
