#include "obs/health.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "obs/json.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fgm {

const char* AlertRuleName(AlertRule rule) {
  switch (rule) {
    case AlertRule::kStragglerSite:
      return "straggler_site";
    case AlertRule::kLossyLink:
      return "lossy_link";
    case AlertRule::kPsiMargin:
      return "psi_margin";
    case AlertRule::kBudgetOverflow:
      return "budget_overflow";
    case AlertRule::kStuckSubround:
      return "stuck_subround";
    case AlertRule::kRuleCount:
      break;
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(int sites, const HealthConfig& config)
    : sites_(sites),
      config_(config),
      site_(static_cast<size_t>(sites)),
      kind_words_(kSnapshotMsgKinds) {
  FGM_CHECK_GE(sites, 1);
  const double a = config_.ewma_alpha;
  for (SiteHealth& s : site_) {
    s.rate_alpha.set_alpha(a);
    s.rate_beta.set_alpha(a);
    s.rate_gamma.set_alpha(a);
    s.updates.set_alpha(a);
    s.drift_norm.set_alpha(a);
    s.drop_frac.set_alpha(a);
    s.latency.set_alpha(a);
    s.retransmit_frac.set_alpha(a);
  }
  round_records_.set_alpha(a);
  round_subrounds_.set_alpha(a);
  round_words_.set_alpha(a);
  for (Ewma& e : kind_words_) e.set_alpha(a);
  psi_overshoot_.set_alpha(a);
  overflow_rate_.set_alpha(a);
  speculation_waste_.set_alpha(a);
}

void HealthMonitor::ObserveRound(const RunSnapshot& snapshot) {
  round_records_.Observe(
      static_cast<double>(snapshot.records - last_records_));
  last_records_ = snapshot.records;
  round_subrounds_.Observe(static_cast<double>(snapshot.subrounds));
  round_words_.Observe(static_cast<double>(snapshot.round_words));
  for (int k = 0; k < kSnapshotMsgKinds; ++k) {
    kind_words_[static_cast<size_t>(k)].Observe(
        static_cast<double>(snapshot.round_words_by_kind[static_cast<size_t>(k)]));
  }
}

void HealthMonitor::ObserveSite(int site, int64_t updates,
                                double drift_norm) {
  FGM_CHECK(site >= 0 && site < sites_);
  SiteHealth& s = site_[static_cast<size_t>(site)];
  s.updates.Observe(static_cast<double>(updates));
  s.drift_norm.Observe(drift_norm);
}

void HealthMonitor::ObserveNet(int site, const SiteNetSample& cumulative) {
  FGM_CHECK(site >= 0 && site < sites_);
  SiteHealth& s = site_[static_cast<size_t>(site)];
  const SiteNetSample& prev = s.last;
  const int64_t delivered = cumulative.delivered_msgs - prev.delivered_msgs;
  const int64_t dropped = cumulative.dropped_msgs - prev.dropped_msgs;
  const int64_t retrans =
      cumulative.retransmitted_msgs - prev.retransmitted_msgs;
  const int64_t lat_ticks = cumulative.latency_ticks - prev.latency_ticks;
  const int64_t lat_samples =
      cumulative.latency_samples - prev.latency_samples;
  // Rounds with no traffic toward this site carry no signal; observing a
  // synthetic 0 would bias the EWMAs toward "healthy" while a site is
  // paused, so such rounds are skipped entirely.
  if (delivered + dropped > 0) {
    s.drop_frac.Observe(static_cast<double>(dropped) /
                        static_cast<double>(delivered + dropped));
    s.retransmit_frac.Observe(
        static_cast<double>(retrans) /
        static_cast<double>(delivered > 0 ? delivered : 1));
  }
  if (lat_samples > 0) {
    s.latency.Observe(static_cast<double>(lat_ticks) /
                      static_cast<double>(lat_samples));
  }
  s.last = cumulative;
}

void HealthMonitor::ObserveRates(int site, double alpha, double beta,
                                 double gamma) {
  FGM_CHECK(site >= 0 && site < sites_);
  SiteHealth& s = site_[static_cast<size_t>(site)];
  s.rate_alpha.Observe(alpha);
  s.rate_beta.Observe(beta);
  s.rate_gamma.Observe(gamma);
  ++s.rate_rounds;
}

void HealthMonitor::ObservePsiMargin(double last_psi, double stop_level) {
  if (!(stop_level < 0.0)) return;  // not an FGM round
  // Both values are negative; a round that ends with ψ well past the stop
  // level (toward 0) has eaten its safety margin. Normalize by |stop| so
  // the signal is scale-free across queries.
  psi_overshoot_.Observe((last_psi - stop_level) / -stop_level);
}

void HealthMonitor::ObserveOverflowRounds(int64_t cumulative) {
  overflow_rate_.Observe(cumulative > last_overflow_rounds_ ? 1.0 : 0.0);
  last_overflow_rounds_ = cumulative;
}

void HealthMonitor::ObserveSpeculation(int64_t committed_updates,
                                       int64_t wasted_updates) {
  const int64_t dc = committed_updates - last_spec_committed_;
  const int64_t dw = wasted_updates - last_spec_wasted_;
  if (dc + dw > 0) {
    speculation_waste_.Observe(static_cast<double>(dw) /
                               static_cast<double>(dc + dw));
  }
  last_spec_committed_ = committed_updates;
  last_spec_wasted_ = wasted_updates;
}

void HealthMonitor::ObserveProgress(int64_t records, int64_t round,
                                    int64_t total_subrounds, int64_t t) {
  (void)records;
  if (total_subrounds == progress_subrounds_) {
    ++stagnant_samples_;
  } else {
    stagnant_samples_ = 0;
    progress_subrounds_ = total_subrounds;
  }
  SetActive(AlertRule::kStuckSubround, -1,
            stagnant_samples_ >= config_.stuck_progress_samples,
            static_cast<double>(stagnant_samples_),
            static_cast<double>(config_.stuck_progress_samples), round, t,
            nullptr);
}

void HealthMonitor::NoteSiteDown(int site, int64_t round, int64_t t) {
  FGM_CHECK(site >= 0 && site < sites_);
  site_[static_cast<size_t>(site)].down = true;
  SetActive(AlertRule::kStragglerSite, site, true, 1.0, 1.0, round, t,
            "down");
}

void HealthMonitor::NoteSiteUp(int site, int64_t round, int64_t t) {
  FGM_CHECK(site >= 0 && site < sites_);
  site_[static_cast<size_t>(site)].down = false;
  SetActive(AlertRule::kStragglerSite, site, false, 0.0, 1.0, round, t,
            "rejoin");
}

void HealthMonitor::EvaluateAlerts(int64_t round, int64_t t) {
  // lossy_link: per-site drop-fraction EWMA with hysteresis.
  for (int i = 0; i < sites_; ++i) {
    const SiteHealth& s = site_[static_cast<size_t>(i)];
    if (s.drop_frac.samples() == 0) continue;
    const bool was = alert_active(AlertRule::kLossyLink, i);
    const double thr = was
        ? config_.lossy_drop_threshold * config_.clear_factor
        : config_.lossy_drop_threshold;
    SetActive(AlertRule::kLossyLink, i, s.drop_frac.value() >= thr,
              s.drop_frac.value(), thr, round, t, nullptr);
  }

  // straggler_site (latency form): a site whose delivery latency EWMA sits
  // far above the fleet mean. Down windows own the alert for their site —
  // the handshake raised it with reason "down" and will clear it on
  // rejoin, so latency evaluation skips down sites.
  double fleet_lat = 0.0;
  int fleet_n = 0;
  for (const SiteHealth& s : site_) {
    if (s.latency.samples() >= config_.straggler_min_samples) {
      fleet_lat += s.latency.value();
      ++fleet_n;
    }
  }
  if (fleet_n >= 2) {
    const double mean = fleet_lat / static_cast<double>(fleet_n);
    if (mean > 0.0) {
      for (int i = 0; i < sites_; ++i) {
        const SiteHealth& s = site_[static_cast<size_t>(i)];
        if (s.down) continue;
        if (s.latency.samples() < config_.straggler_min_samples) continue;
        const bool was = alert_active(AlertRule::kStragglerSite, i);
        const double factor = was
            ? config_.straggler_latency_factor * config_.clear_factor
            : config_.straggler_latency_factor;
        SetActive(AlertRule::kStragglerSite, i,
                  s.latency.value() >= factor * mean, s.latency.value(),
                  factor * mean, round, t, "slow");
      }
    }
  }

  // psi_margin (run-global): systematic overshoot past the stop level.
  if (psi_overshoot_.samples() >= config_.min_rounds) {
    const bool was = alert_active(AlertRule::kPsiMargin, -1);
    const double thr = was
        ? config_.psi_margin_threshold * config_.clear_factor
        : config_.psi_margin_threshold;
    SetActive(AlertRule::kPsiMargin, -1, psi_overshoot_.value() >= thr,
              psi_overshoot_.value(), thr, round, t, nullptr);
  }

  // budget_overflow (run-global): too many rounds end on the backstop.
  if (overflow_rate_.samples() >= config_.min_rounds) {
    const bool was = alert_active(AlertRule::kBudgetOverflow, -1);
    const double thr = was
        ? config_.overflow_threshold * config_.clear_factor
        : config_.overflow_threshold;
    SetActive(AlertRule::kBudgetOverflow, -1, overflow_rate_.value() >= thr,
              overflow_rate_.value(), thr, round, t, nullptr);
  }
}

bool HealthMonitor::have_rates() const {
  for (const SiteHealth& s : site_) {
    if (s.rate_rounds >= config_.min_rounds) return true;
  }
  return false;
}

double HealthMonitor::rate_alpha(int site) const {
  return site_[static_cast<size_t>(site)].rate_alpha.value();
}
double HealthMonitor::rate_beta(int site) const {
  return site_[static_cast<size_t>(site)].rate_beta.value();
}
double HealthMonitor::rate_gamma(int site) const {
  return site_[static_cast<size_t>(site)].rate_gamma.value();
}
int64_t HealthMonitor::rate_rounds(int site) const {
  return site_[static_cast<size_t>(site)].rate_rounds;
}
double HealthMonitor::drop_fraction(int site) const {
  return site_[static_cast<size_t>(site)].drop_frac.value();
}
double HealthMonitor::latency(int site) const {
  return site_[static_cast<size_t>(site)].latency.value();
}
bool HealthMonitor::site_down(int site) const {
  return site_[static_cast<size_t>(site)].down;
}

double HealthMonitor::ShipCostFactor(int site) const {
  const SiteHealth& s = site_[static_cast<size_t>(site)];
  if (s.down) return config_.max_ship_cost;
  double cost = 1.0;
  if (s.drop_frac.samples() > 0) {
    // Expected attempts per delivered message on a link dropping fraction
    // p: 1/(1-p) — every retransmission is real words on the wire.
    const double p = std::min(s.drop_frac.value(), 0.95);
    cost = 1.0 / (1.0 - p);
  }
  if (cost < 1.0) cost = 1.0;
  if (cost > config_.max_ship_cost) cost = config_.max_ship_cost;
  return cost;
}

double HealthMonitor::RebalanceCostFactor() const {
  double sum = 0.0;
  for (int i = 0; i < sites_; ++i) sum += ShipCostFactor(i);
  return sum / static_cast<double>(sites_);
}

bool HealthMonitor::alert_active(AlertRule rule, int site) const {
  return active_.count({static_cast<int>(rule), site}) != 0;
}

void HealthMonitor::SetActive(AlertRule rule, int site, bool active,
                              double value, double threshold, int64_t round,
                              int64_t t, const char* reason) {
  const std::pair<int, int> key{static_cast<int>(rule), site};
  if (active) {
    if (!active_.insert(key).second) return;  // already firing
    ++alerts_raised_;
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kAlertRaised;
      e.label = AlertRuleName(rule);
      e.site = site;
      e.round = round;
      e.value = value;
      e.theta = threshold;
      e.t = t;
      e.reason = reason;
      trace_->Emit(e);
    }
  } else {
    if (active_.erase(key) == 0) return;  // was not firing
    ++alerts_cleared_;
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kAlertCleared;
      e.label = AlertRuleName(rule);
      e.site = site;
      e.round = round;
      e.value = value;
      e.theta = threshold;
      e.t = t;
      e.reason = reason;
      trace_->Emit(e);
    }
  }
}

namespace {

void Line(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(std::min(
                                  n, static_cast<int>(sizeof(buf) - 1))));
  out->push_back('\n');
}

}  // namespace

std::string HealthMonitor::PrometheusText(int64_t records, int64_t rounds,
                                          int64_t total_words,
                                          double psi) const {
  std::string out;
  Line(&out, "# TYPE fgm_records_total counter");
  Line(&out, "fgm_records_total %" PRId64, records);
  Line(&out, "# TYPE fgm_rounds_total counter");
  Line(&out, "fgm_rounds_total %" PRId64, rounds);
  Line(&out, "# TYPE fgm_words_total counter");
  Line(&out, "fgm_words_total %" PRId64, total_words);
  Line(&out, "# TYPE fgm_psi gauge");
  Line(&out, "fgm_psi %.17g", psi);

  Line(&out, "# TYPE fgm_round_records gauge");
  Line(&out, "fgm_round_records %.17g", round_records_.value());
  Line(&out, "# TYPE fgm_round_subrounds gauge");
  Line(&out, "fgm_round_subrounds %.17g", round_subrounds_.value());
  Line(&out, "# TYPE fgm_round_words gauge");
  Line(&out, "fgm_round_words %.17g", round_words_.value());
  Line(&out, "# TYPE fgm_round_words_by_kind gauge");
  for (int k = 0; k < kSnapshotMsgKinds; ++k) {
    Line(&out, "fgm_round_words_by_kind{kind=\"%d\"} %.17g", k,
         kind_words_[static_cast<size_t>(k)].value());
  }
  Line(&out, "# TYPE fgm_psi_overshoot gauge");
  Line(&out, "fgm_psi_overshoot %.17g", psi_overshoot_.value());
  Line(&out, "# TYPE fgm_overflow_rate gauge");
  Line(&out, "fgm_overflow_rate %.17g", overflow_rate_.value());
  Line(&out, "# TYPE fgm_speculation_waste gauge");
  Line(&out, "fgm_speculation_waste %.17g", speculation_waste_.value());

  Line(&out, "# TYPE fgm_site_rate_alpha gauge");
  for (int i = 0; i < sites_; ++i) {
    Line(&out, "fgm_site_rate_alpha{site=\"%d\"} %.17g", i, rate_alpha(i));
  }
  Line(&out, "# TYPE fgm_site_rate_beta gauge");
  for (int i = 0; i < sites_; ++i) {
    Line(&out, "fgm_site_rate_beta{site=\"%d\"} %.17g", i, rate_beta(i));
  }
  Line(&out, "# TYPE fgm_site_rate_gamma gauge");
  for (int i = 0; i < sites_; ++i) {
    Line(&out, "fgm_site_rate_gamma{site=\"%d\"} %.17g", i, rate_gamma(i));
  }
  Line(&out, "# TYPE fgm_site_drop_fraction gauge");
  for (int i = 0; i < sites_; ++i) {
    Line(&out, "fgm_site_drop_fraction{site=\"%d\"} %.17g", i,
         drop_fraction(i));
  }
  Line(&out, "# TYPE fgm_site_latency_ticks gauge");
  for (int i = 0; i < sites_; ++i) {
    Line(&out, "fgm_site_latency_ticks{site=\"%d\"} %.17g", i, latency(i));
  }
  Line(&out, "# TYPE fgm_site_ship_cost gauge");
  for (int i = 0; i < sites_; ++i) {
    Line(&out, "fgm_site_ship_cost{site=\"%d\"} %.17g", i,
         ShipCostFactor(i));
  }
  Line(&out, "# TYPE fgm_site_down gauge");
  for (int i = 0; i < sites_; ++i) {
    Line(&out, "fgm_site_down{site=\"%d\"} %d", i, site_down(i) ? 1 : 0);
  }

  Line(&out, "# TYPE fgm_alerts_raised_total counter");
  Line(&out, "fgm_alerts_raised_total %" PRId64, alerts_raised_);
  Line(&out, "# TYPE fgm_alerts_cleared_total counter");
  Line(&out, "fgm_alerts_cleared_total %" PRId64, alerts_cleared_);
  Line(&out, "# TYPE fgm_alert_active gauge");
  for (const auto& key : active_) {
    Line(&out, "fgm_alert_active{rule=\"%s\",site=\"%d\"} 1",
         AlertRuleName(static_cast<AlertRule>(key.first)), key.second);
  }
  return out;
}

void HealthMonitor::WritePrometheus(const std::string& path, int64_t records,
                                    int64_t rounds, int64_t total_words,
                                    double psi) const {
  const std::string text = PrometheusText(records, rounds, total_words, psi);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  FGM_CHECK(f != nullptr);
  FGM_CHECK_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  FGM_CHECK_EQ(std::fclose(f), 0);
  FGM_CHECK_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
}

std::string HealthMonitor::HeartbeatJson(int64_t records, int64_t rounds,
                                         int64_t total_words,
                                         double psi) const {
  JsonWriter w;
  w.BeginObject();
  w.Field("records", records);
  w.Field("rounds", rounds);
  w.Field("words", total_words);
  w.Field("psi", psi);
  w.Field("round_records", round_records_.value());
  w.Field("round_subrounds", round_subrounds_.value());
  w.Field("round_words", round_words_.value());
  w.Field("psi_overshoot", psi_overshoot_.value());
  w.Field("overflow_rate", overflow_rate_.value());
  w.Field("speculation_waste", speculation_waste_.value());
  w.Field("alerts_active", active_alert_count());
  w.Field("alerts_raised", alerts_raised_);
  w.Field("alerts_cleared", alerts_cleared_);
  w.EndObject();
  return w.Take();
}

}  // namespace fgm
