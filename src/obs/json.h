// Minimal JSON emission and flat-object parsing for the observability
// layer (trace sinks, metrics export, bench reports, replay checker).
//
// The writer is a streaming emitter with automatic comma placement;
// doubles are printed with %.17g so every value round-trips bit-exactly
// through text — the replay checker relies on this to re-verify protocol
// arithmetic (θ = -ψ/2k and friends) on decoded values. The parser only
// handles the flat one-level objects the JSONL trace schema uses; it is
// not a general JSON parser and rejects nesting.

#ifndef FGM_OBS_JSON_H_
#define FGM_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fgm {

class JsonWriter {
 public:
  /// Renders a double with round-trip precision. Non-finite values (JSON
  /// has no inf/nan) serialize as `null`; parsers on this side map null
  /// numeric fields back to NaN.
  static std::string Number(double value);
  /// Quotes and escapes a string.
  static std::string Quoted(const std::string& value);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& name);
  void String(const std::string& value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);

  /// Convenience: Key + scalar.
  void Field(const std::string& name, const std::string& value);
  void Field(const std::string& name, const char* value);
  void Field(const std::string& name, int64_t value);
  void Field(const std::string& name, double value);
  void Field(const std::string& name, bool value);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Separate();

  std::string out_;
  std::vector<bool> has_item_;  // per open scope: already holds an item
  bool pending_key_ = false;
};

/// One scalar value of a flat JSON object.
struct JsonValue {
  enum class Type { kString, kNumber, kBool, kNull };
  Type type = Type::kNull;
  std::string str;       // kString
  double num = 0.0;      // kNumber (always set)
  int64_t int_val = 0;   // kNumber with integral syntax
  bool is_int = false;
  bool boolean = false;  // kBool
};

/// Parses a single flat JSON object `{"key": value, ...}` with scalar
/// values only (string / number / true / false / null). Returns false and
/// sets `*error` on malformed input or nesting. This is the fast path the
/// per-line trace replay uses; nested documents go through ParseJson.
bool ParseFlatJsonObject(const std::string& text,
                         std::map<std::string, JsonValue>* out,
                         std::string* error);

/// One node of a parsed JSON document (general, nested). Numbers keep
/// both the double and (when the syntax was integral) the int64 reading;
/// null numeric fields read back as NaN through AsDouble().
struct JsonNode {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double num = 0.0;
  int64_t int_val = 0;
  bool is_int = false;
  std::string str;
  std::vector<JsonNode> items;  // kArray elements
  std::vector<std::pair<std::string, JsonNode>> members;  // kObject, in order

  /// Member lookup (kObject only); nullptr when absent.
  const JsonNode* Find(const std::string& key) const;
  /// Number as double; NaN for null, `fallback` for any other non-number.
  double AsDouble(double fallback = 0.0) const;
  /// Number with integral syntax (doubles truncate); `fallback` otherwise.
  int64_t AsInt(int64_t fallback = 0) const;
};

/// Parses a complete JSON document (objects, arrays, scalars, nesting).
/// Returns false and sets `*error` on malformed input. Used by the
/// offline analysis tools (fgm_report, bench_gate) to read the nested
/// metrics / time-series / BENCH_*.json files.
bool ParseJson(const std::string& text, JsonNode* out, std::string* error);

}  // namespace fgm

#endif  // FGM_OBS_JSON_H_
