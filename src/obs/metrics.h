// Named metrics registry: counters, gauges, running statistics,
// count histograms and wall-time timers, exportable as one JSON object.
//
// Like tracing, metrics are OFF by default and free when off: hot paths
// resolve their instrument pointers ONCE at construction (null when no
// registry is configured) and each use is a pointer test. A ScopedTimer
// on a null timer never reads the clock.

#ifndef FGM_OBS_METRICS_H_
#define FGM_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json.h"
#include "util/stats.h"

namespace fgm {

// Counters, gauges and timers are updated from worker threads when the
// parallel runner is active, so their mutators are lock-free atomics
// (relaxed: instruments are statistical accumulators, not synchronization
// points). The registry itself is mutex-guarded — Get* runs at
// construction time and WriteJson after the run, never on the hot path.

/// Monotone event count.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated wall time over many timed sections.
class WallTimer {
 public:
  void AddSeconds(double s) {
    total_seconds_.fetch_add(s, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  double total_seconds() const {
    return total_seconds_.load(std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> total_seconds_{0.0};
  std::atomic<int64_t> count_{0};
};

/// RAII section timer; a null timer costs one branch and never touches
/// the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(WallTimer* timer) : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (timer_ != nullptr) {
      timer_->AddSeconds(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  WallTimer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Registry of named instruments. Get* creates on first use and returns a
/// pointer that stays valid for the registry's lifetime, so hot paths can
/// resolve once and skip the map lookup thereafter.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  RunningStats* GetStats(const std::string& name);
  CountHistogram* GetHistogram(const std::string& name, int max_value = 64);
  WallTimer* GetTimer(const std::string& name);

  /// Serializes every instrument into `w` as one JSON object:
  /// {"counters":{..}, "gauges":{..}, "stats":{..}, "histograms":{..},
  ///  "timers":{..}}.
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<RunningStats>> stats_;
  std::map<std::string, std::unique_ptr<CountHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<WallTimer>> timers_;
};

}  // namespace fgm

#endif  // FGM_OBS_METRICS_H_
