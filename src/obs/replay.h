// Trace-replay invariant checker.
//
// Reads a JSONL event trace (obs/trace.h) and re-verifies the protocol
// invariants offline, independent of the code that produced the trace:
//
//  * ψ ≤ 0 at every certified instant — every subround starts with
//    ψ ≤ ε_ψ·k·φ(0) < 0, and the value matches the one announced by the
//    preceding RoundStart / SubroundEnd / Rebalance event bit-exactly;
//  * the quantum obeys θ = -ψ/2k (recomputed from the traced ψ);
//  * subround termination obeys the ε_ψ·k·φ(0) test: a ThresholdCross
//    with reason "psi-exhausted" requires ψ ≥ ε_ψ·k·φ(0), and subrounds
//    only continue below it;
//  * counter totals match the quantum arithmetic: the coordinator total
//    at each poll equals the sum of the positive per-site increments of
//    that subround and exceeds k;
//  * rebalances restore slack: λ ∈ (0,1], ψ_B ≤ 0, and the restored
//    ψ = kλφ(0) + ψ_B stays at or below the termination level;
//  * summed per-message MsgSent words equal the RunEnd TrafficStats
//    totals exactly (closing the loop on strict wire accounting);
//  * FGM/O plan audit: each PlanOutcome's word count re-sums the round's
//    MsgSent events bit-exactly (the per-round ledger), its actual gain
//    equals updates - words, and PlanChosen/PlanSite events carry sane
//    d/γ values for the current round.
//
// Traces produced over the simulated network (src/sim) additionally carry
// MsgDelivered / MsgDropped / SiteDown / SiteResync events, and the
// checker verifies delivery-point safety on top:
//
//  * conservation: per direction, summed MsgSent words and messages equal
//    summed MsgDelivered + MsgDropped words and messages (every charged
//    attempt is accounted exactly once);
//  * no coordinator→site delivery addresses a site inside a
//    SiteDown..SiteResync window, and the down/up transitions alternate
//    per site;
//  * forced polls (SubroundEnd with a "reason": resync or timeout) are
//    exempt from the counter>k rule but only legal in simulated runs, as
//    are reduced-k rounds after a site-set change — k may then shrink or
//    recover within [1, RunStart k];
//  * outside a down window, no unreasoned increment lands on a counter
//    total already past k (the coordinator must have polled first).
//
// Tree-topology runs (src/hier) stamp aggregator-tier events with
// "tier" >= 1. Those live outside the root star's state machine: the
// checker keeps a separate per-tier ledger (words/messages by direction,
// drift flushes, local polls) closed bit-exactly by each TierEnd event,
// requires unreasoned aggregator polls to carry a local counter above the
// node's fan-in, and at RunEnd checks that flush fan-out widens towards
// the leaves — drift words only reach the root through a complete chain
// of per-tier flushes. The root tier itself is certified verbatim by the
// flat invariants with k = the root's fan-in.
//
// Health-monitor alerts (obs/health.h) pair like down windows: an
// AlertRaised for a (rule, site) must not re-raise while active, and an
// AlertCleared must clear an outstanding raise of the same (rule, site).
// Alerts still active at RunEnd are legal (the condition simply persisted).
//
// All double comparisons are exact: the JSONL sink prints with round-trip
// precision and the checker recomputes with the same operation order the
// protocol used, so any mismatch is a real divergence, not rounding.

#ifndef FGM_OBS_REPLAY_H_
#define FGM_OBS_REPLAY_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace fgm {

/// Parses one JSONL trace line back into a TraceEvent. Returns false and
/// sets `*error` on malformed lines or unknown event kinds. String fields
/// ("msg", "reason", "protocol") are resolved to static storage via
/// interning, so the returned event owns nothing.
bool ParseTraceEventJson(const std::string& line, TraceEvent* event,
                         std::string* error);

struct ReplayIssue {
  int64_t seq = -1;  ///< event sequence number, -1 = whole-trace issue
  std::string message;
};

struct ReplayReport {
  // Tallies of what the trace contained.
  int64_t events = 0;
  int64_t rounds = 0;
  int64_t subrounds = 0;
  int64_t increments = 0;
  int64_t flushes = 0;
  int64_t rebalances = 0;
  int64_t messages = 0;
  int64_t plans = 0;          ///< FGM/O PlanChosen events
  int64_t plan_outcomes = 0;  ///< FGM/O PlanOutcome events
  int64_t deliveries = 0;     ///< sim MsgDelivered events
  int64_t drops = 0;          ///< sim MsgDropped events
  int64_t resyncs = 0;        ///< sim SiteResync events
  int64_t alerts_raised = 0;  ///< health AlertRaised events
  int64_t alerts_cleared = 0; ///< health AlertCleared events
  int64_t tier_ends = 0;      ///< hier TierEnd ledgers (tree runs only)
  int64_t tier_words = 0;     ///< total words on aggregator-tier links
  int64_t tier_up_words = 0;    ///< upstream share of tier_words
  int64_t tier_down_words = 0;  ///< downstream share of tier_words
  int64_t up_words = 0;
  int64_t down_words = 0;
  bool saw_run_end = false;

  /// Total violations found; `issues` records the first few in detail.
  int64_t issue_count = 0;
  std::vector<ReplayIssue> issues;

  bool ok() const { return issue_count == 0; }
  /// Human-readable one-line summary (+ issue lines when failing).
  std::string Summary() const;
};

/// Checks a trace read line-by-line from `in`.
ReplayReport CheckTrace(std::istream& in);

/// Checks a trace file; reports an issue when the file cannot be opened.
ReplayReport CheckTraceFile(const std::string& path);

}  // namespace fgm

#endif  // FGM_OBS_REPLAY_H_
