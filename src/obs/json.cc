#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace fgm {

std::string JsonWriter::Number(double value) {
  // JSON has no inf/nan; both serialize as null so traces stay parseable
  // (a raw `inf` token would invalidate the whole JSONL line). Parsers map
  // null numeric fields back to NaN, keeping "non-finite" observable.
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string JsonWriter::Quoted(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_item_.empty()) {
    if (has_item_.back()) out_.push_back(',');
    has_item_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_.push_back('{');
  has_item_.push_back(false);
}

void JsonWriter::EndObject() {
  FGM_CHECK(!has_item_.empty());
  has_item_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  Separate();
  out_.push_back('[');
  has_item_.push_back(false);
}

void JsonWriter::EndArray() {
  FGM_CHECK(!has_item_.empty());
  has_item_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(const std::string& name) {
  Separate();
  out_ += Quoted(name);
  out_.push_back(':');
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  Separate();
  out_ += Quoted(value);
}

void JsonWriter::Int(int64_t value) {
  Separate();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Double(double value) {
  Separate();
  out_ += Number(value);
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
}

void JsonWriter::Field(const std::string& name, const std::string& value) {
  Key(name);
  String(value);
}

void JsonWriter::Field(const std::string& name, const char* value) {
  Key(name);
  String(value);
}

void JsonWriter::Field(const std::string& name, int64_t value) {
  Key(name);
  Int(value);
}

void JsonWriter::Field(const std::string& name, double value) {
  Key(name);
  Double(value);
}

void JsonWriter::Field(const std::string& name, bool value) {
  Key(name);
  Bool(value);
}

namespace {

void SkipSpace(const std::string& s, size_t* i) {
  while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i]))) {
    ++*i;
  }
}

bool ParseString(const std::string& s, size_t* i, std::string* out,
                 std::string* error) {
  if (*i >= s.size() || s[*i] != '"') {
    *error = "expected string";
    return false;
  }
  ++*i;
  out->clear();
  while (*i < s.size() && s[*i] != '"') {
    char c = s[*i];
    if (c == '\\') {
      ++*i;
      if (*i >= s.size()) {
        *error = "truncated escape";
        return false;
      }
      switch (s[*i]) {
        case '"':
          c = '"';
          break;
        case '\\':
          c = '\\';
          break;
        case 'n':
          c = '\n';
          break;
        case 't':
          c = '\t';
          break;
        case 'r':
          c = '\r';
          break;
        case 'u': {
          if (*i + 4 >= s.size()) {
            *error = "truncated \\u escape";
            return false;
          }
          const unsigned long code =
              std::strtoul(s.substr(*i + 1, 4).c_str(), nullptr, 16);
          *i += 4;
          c = static_cast<char>(code & 0x7f);
          break;
        }
        default:
          *error = "unknown escape";
          return false;
      }
    }
    out->push_back(c);
    ++*i;
  }
  if (*i >= s.size()) {
    *error = "unterminated string";
    return false;
  }
  ++*i;  // closing quote
  return true;
}

bool ParseValue(const std::string& s, size_t* i, JsonValue* out,
                std::string* error) {
  SkipSpace(s, i);
  if (*i >= s.size()) {
    *error = "expected value";
    return false;
  }
  const char c = s[*i];
  if (c == '"') {
    out->type = JsonValue::Type::kString;
    return ParseString(s, i, &out->str, error);
  }
  if (c == '{' || c == '[') {
    *error = "nested values are not part of the flat schema";
    return false;
  }
  if (s.compare(*i, 4, "true") == 0) {
    out->type = JsonValue::Type::kBool;
    out->boolean = true;
    *i += 4;
    return true;
  }
  if (s.compare(*i, 5, "false") == 0) {
    out->type = JsonValue::Type::kBool;
    out->boolean = false;
    *i += 5;
    return true;
  }
  if (s.compare(*i, 4, "null") == 0) {
    out->type = JsonValue::Type::kNull;
    *i += 4;
    return true;
  }
  // Number.
  size_t end = *i;
  bool integral = true;
  while (end < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[end])) || s[end] == '-' ||
          s[end] == '+' || s[end] == '.' || s[end] == 'e' || s[end] == 'E')) {
    if (s[end] == '.' || s[end] == 'e' || s[end] == 'E') integral = false;
    ++end;
  }
  if (end == *i) {
    *error = "expected value";
    return false;
  }
  const std::string token = s.substr(*i, end - *i);
  out->type = JsonValue::Type::kNumber;
  out->num = std::strtod(token.c_str(), nullptr);
  out->is_int = integral;
  if (integral) {
    out->int_val = std::strtoll(token.c_str(), nullptr, 10);
  } else {
    out->int_val = static_cast<int64_t>(out->num);
  }
  *i = end;
  return true;
}

// Recursive-descent parser for the nested documents the offline tools
// read. Shares the scalar token logic above via JsonValue.
bool ParseNode(const std::string& s, size_t* i, JsonNode* out,
               std::string* error, int depth) {
  if (depth > 64) {
    *error = "nesting too deep";
    return false;
  }
  SkipSpace(s, i);
  if (*i >= s.size()) {
    *error = "expected value";
    return false;
  }
  const char c = s[*i];
  if (c == '{') {
    out->type = JsonNode::Type::kObject;
    ++*i;
    SkipSpace(s, i);
    if (*i < s.size() && s[*i] == '}') {
      ++*i;
      return true;
    }
    while (true) {
      SkipSpace(s, i);
      std::string key;
      if (!ParseString(s, i, &key, error)) return false;
      SkipSpace(s, i);
      if (*i >= s.size() || s[*i] != ':') {
        *error = "expected ':'";
        return false;
      }
      ++*i;
      JsonNode child;
      if (!ParseNode(s, i, &child, error, depth + 1)) return false;
      out->members.emplace_back(std::move(key), std::move(child));
      SkipSpace(s, i);
      if (*i < s.size() && s[*i] == ',') {
        ++*i;
        continue;
      }
      if (*i < s.size() && s[*i] == '}') {
        ++*i;
        return true;
      }
      *error = "expected ',' or '}'";
      return false;
    }
  }
  if (c == '[') {
    out->type = JsonNode::Type::kArray;
    ++*i;
    SkipSpace(s, i);
    if (*i < s.size() && s[*i] == ']') {
      ++*i;
      return true;
    }
    while (true) {
      JsonNode child;
      if (!ParseNode(s, i, &child, error, depth + 1)) return false;
      out->items.push_back(std::move(child));
      SkipSpace(s, i);
      if (*i < s.size() && s[*i] == ',') {
        ++*i;
        continue;
      }
      if (*i < s.size() && s[*i] == ']') {
        ++*i;
        return true;
      }
      *error = "expected ',' or ']'";
      return false;
    }
  }
  JsonValue scalar;
  if (!ParseValue(s, i, &scalar, error)) return false;
  switch (scalar.type) {
    case JsonValue::Type::kString:
      out->type = JsonNode::Type::kString;
      out->str = std::move(scalar.str);
      break;
    case JsonValue::Type::kBool:
      out->type = JsonNode::Type::kBool;
      out->boolean = scalar.boolean;
      break;
    case JsonValue::Type::kNull:
      out->type = JsonNode::Type::kNull;
      break;
    case JsonValue::Type::kNumber:
      out->type = JsonNode::Type::kNumber;
      out->num = scalar.num;
      out->int_val = scalar.int_val;
      out->is_int = scalar.is_int;
      break;
  }
  return true;
}

}  // namespace

const JsonNode* JsonNode::Find(const std::string& key) const {
  for (const auto& [name, node] : members) {
    if (name == key) return &node;
  }
  return nullptr;
}

double JsonNode::AsDouble(double fallback) const {
  if (type == Type::kNumber) return num;
  // Null numeric fields are the writer's encoding of inf/nan.
  if (type == Type::kNull) return std::nan("");
  return fallback;
}

int64_t JsonNode::AsInt(int64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  return is_int ? int_val : static_cast<int64_t>(num);
}

bool ParseJson(const std::string& text, JsonNode* out, std::string* error) {
  *out = JsonNode();
  size_t i = 0;
  if (!ParseNode(text, &i, out, error, 0)) return false;
  SkipSpace(text, &i);
  if (i != text.size()) {
    *error = "trailing characters after document";
    return false;
  }
  return true;
}

bool ParseFlatJsonObject(const std::string& text,
                         std::map<std::string, JsonValue>* out,
                         std::string* error) {
  out->clear();
  size_t i = 0;
  SkipSpace(text, &i);
  if (i >= text.size() || text[i] != '{') {
    *error = "expected '{'";
    return false;
  }
  ++i;
  SkipSpace(text, &i);
  if (i < text.size() && text[i] == '}') {
    ++i;
  } else {
    while (true) {
      SkipSpace(text, &i);
      std::string key;
      if (!ParseString(text, &i, &key, error)) return false;
      SkipSpace(text, &i);
      if (i >= text.size() || text[i] != ':') {
        *error = "expected ':'";
        return false;
      }
      ++i;
      JsonValue value;
      if (!ParseValue(text, &i, &value, error)) return false;
      (*out)[key] = value;
      SkipSpace(text, &i);
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < text.size() && text[i] == '}') {
        ++i;
        break;
      }
      *error = "expected ',' or '}'";
      return false;
    }
  }
  SkipSpace(text, &i);
  if (i != text.size()) {
    *error = "trailing characters after object";
    return false;
  }
  return true;
}

}  // namespace fgm
