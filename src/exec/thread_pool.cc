#include "exec/thread_pool.h"

#include "util/check.h"

namespace fgm {

ThreadPool::ThreadPool(int threads) {
  FGM_CHECK_GE(threads, 1);
  task_tally_.assign(static_cast<size_t>(threads), 0);
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true, std::memory_order_relaxed);
  }
  job_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::RunTasks(const std::function<void(int)>& fn, int limit) {
  int done = 0;
  for (;;) {
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= limit) break;
    fn(i);
    ++done;
  }
  return done;
}

std::vector<int64_t> ThreadPool::TaskTally() const {
  std::lock_guard<std::mutex> lock(mu_);
  return task_tally_;
}

void ThreadPool::WorkerLoop(int slot) {
  // Spin budget before blocking: long enough to bridge the gap between
  // back-to-back speculation windows, short enough that an idle pool
  // parks its workers within microseconds.
  constexpr int kSpinIterations = 4096;
  int64_t seen = 0;
  for (;;) {
    for (int spin = 0; spin < kSpinIterations; ++spin) {
      if (shutdown_.load(std::memory_order_relaxed) ||
          generation_.load(std::memory_order_relaxed) != seen) {
        break;
      }
    }
    const std::function<void(int)>* job;
    int limit;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // The predicate only reads atomics; when the spin already saw the
      // new generation the wait returns without sleeping, and the mutex
      // acquisition orders the job snapshot after the publisher's writes.
      job_ready_.wait(lock, [&] {
        return shutdown_.load(std::memory_order_relaxed) ||
               generation_.load(std::memory_order_relaxed) != seen;
      });
      if (shutdown_.load(std::memory_order_relaxed)) return;
      // Snapshot the job under the lock; a worker that missed a whole
      // job (generation advanced twice) simply joins the current one.
      seen = generation_.load(std::memory_order_relaxed);
      job = job_;
      limit = job_limit_;
      ++draining_;
    }
    const int done = job != nullptr ? RunTasks(*job, limit) : 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished_ += done;
      task_tally_[static_cast<size_t>(slot)] += done;
      --draining_;
    }
    job_done_.notify_all();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    task_tally_[0] += n;
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  // A straggler from the previous job may still be inside its (empty)
  // drain loop; publishing a new job would hand it stale work. Wait it
  // out — by this point the previous job's indices are exhausted, so the
  // straggler exits immediately.
  job_done_.wait(lock, [&] { return draining_ == 0; });
  job_ = &fn;
  job_limit_ = n;
  next_.store(0, std::memory_order_relaxed);
  finished_ = 0;
  generation_.fetch_add(1, std::memory_order_release);
  lock.unlock();
  job_ready_.notify_all();

  const int done = RunTasks(fn, n);

  lock.lock();
  finished_ += done;
  task_tally_[0] += done;
  // Mutex acquire/release orders every task's writes before the return.
  job_done_.wait(lock, [&] { return finished_ >= n && draining_ == 0; });
  job_ = nullptr;
}

}  // namespace fgm
