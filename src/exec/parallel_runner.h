// Speculate-and-replay parallel driver for ShardedProtocols.
//
// The runner advances all sites concurrently inside a speculation window,
// merges the coordinator-visible events by global stream position, and
// commits them serially — producing traffic statistics and event traces
// that are bit-identical to the single-threaded run (see exec/sharded.h
// for the contract and DESIGN.md §5d for the argument).
//
// The window length (speculation horizon) adapts to the observed distance
// between coordinator barriers: long horizons amortize the per-window
// fork/join and checkpoint cost in quiet phases, short horizons bound the
// replayed work when barriers are dense.

#ifndef FGM_EXEC_PARALLEL_RUNNER_H_
#define FGM_EXEC_PARALLEL_RUNNER_H_

#include <cstdint>
#include <vector>

#include "exec/sharded.h"
#include "exec/thread_pool.h"
#include "stream/record.h"

namespace fgm {

class Counter;
class Gauge;
class MetricsRegistry;
class RunningStats;
class SpanSink;
class WallTimer;

struct ParallelRunnerOptions {
  /// Total worker parallelism including the calling thread.
  int threads = 1;
  /// Bounds for the adaptive speculation horizon (records per window).
  int64_t min_horizon = 128;
  int64_t max_horizon = 65536;
  /// Speculation accounting sink (non-owning; nullptr = off). Instrument
  /// pointers are resolved once at construction; all bookkeeping happens
  /// at window granularity — never per record — so the record path is
  /// unchanged whether or not a registry is attached.
  MetricsRegistry* metrics = nullptr;
  /// Causal span sink (non-owning; nullptr = off): one kSpeculate span
  /// per window with per-shard speculate / barrier-wait / replay children
  /// and the serial commit segment. Workers only stamp two timestamps
  /// into their own shard; all span emission is coordinator-side.
  SpanSink* spans = nullptr;
};

class ParallelRunner {
 public:
  /// `protocol` must outlive the runner.
  ParallelRunner(ShardedProtocol* protocol, ParallelRunnerOptions options);

  /// Feeds `count` records to the protocol. After the call returns the
  /// protocol state equals the serial state after ProcessRecord on each
  /// record in order; calls may be split at any record boundary.
  void Process(const StreamRecord* records, int64_t count);

  // Diagnostics.
  int64_t windows() const { return windows_; }
  int64_t barriers() const { return barriers_; }
  int64_t replayed_records() const { return replayed_; }
  /// Speculated records discarded past a barrier (rolled back, NOT
  /// replayed — the rollback restores the checkpoint and the replay of
  /// the prefix is counted separately in replayed_records()).
  int64_t wasted_records() const { return wasted_; }
  int threads() const { return pool_.threads(); }

  /// Publishes the per-thread shard-task split and the final horizon to
  /// the registry (gauges `spec_thread<i>_tasks`, `spec_horizon`). Called
  /// once after a run; no-op without a registry.
  void PublishThreadStats();

 private:
  /// Runs one speculation window; returns how many leading records were
  /// committed (the whole window, or everything up to and including the
  /// barrier record).
  int64_t RunWindow(const StreamRecord* records, int64_t count);

  struct Shard {
    std::vector<int64_t> positions;  ///< window positions, ascending
    std::vector<LocalEvent> events;  ///< events found while speculating
    int64_t processed = 0;           ///< prefix of `positions` processed
    int64_t span_begin = 0;  ///< worker-stamped speculate segment start
    int64_t span_end = 0;    ///< worker-stamped speculate segment end
  };

  ShardedProtocol* protocol_;
  ParallelRunnerOptions opts_;
  ThreadPool pool_;

  std::vector<Shard> shards_;
  std::vector<int> active_;          ///< shard ids with records this window
  std::vector<LocalEvent> merged_;

  int64_t horizon_;
  double gap_ewma_;        ///< smoothed records-per-barrier estimate
  int64_t since_barrier_ = 0;

  int64_t windows_ = 0;
  int64_t barriers_ = 0;
  int64_t replayed_ = 0;
  int64_t wasted_ = 0;

  // Speculation accounting instruments (null when no registry; each use
  // is a pointer test at window granularity).
  Counter* spec_windows_ = nullptr;
  Counter* spec_barriers_ = nullptr;
  Counter* spec_speculated_ = nullptr;  ///< records processed speculatively
  Counter* spec_committed_ = nullptr;   ///< records committed
  Counter* spec_replayed_ = nullptr;    ///< records replayed after rollback
  Counter* spec_wasted_ = nullptr;      ///< records discarded past barriers
  WallTimer* spec_speculate_timer_ = nullptr;
  WallTimer* spec_commit_timer_ = nullptr;
  RunningStats* spec_horizon_stats_ = nullptr;  ///< horizon per window
  Gauge* spec_horizon_ = nullptr;               ///< final adapted horizon
};

}  // namespace fgm

#endif  // FGM_EXEC_PARALLEL_RUNNER_H_
