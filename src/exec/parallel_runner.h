// Speculate-and-replay parallel driver for ShardedProtocols.
//
// The runner advances all sites concurrently inside a speculation window
// and commits the coordinator-visible work serially in global stream
// order, producing traffic statistics and event traces that are
// bit-identical to the single-threaded run (see exec/sharded.h for the
// contract and DESIGN.md §5d/§5h for the argument). Two commit paths:
//
//   * value-series (protocols with SupportsValueSeries, e.g. FGM):
//     workers fold whole per-shard batches into the drift and record the
//     per-record value sequence; the coordinator replays the scalar event
//     rule over the recorded values (a linear zipper over the per-shard
//     series — no sort, no per-event rollback). Subround crossings commit
//     softly; only rare hard interactions (rebalance, round end) restore
//     checkpoints and replay the committed prefix.
//   * event/barrier (legacy, e.g. GM): workers gather events, the runner
//     zipper-merges them by position, finds the first budget crossing,
//     rolls overshooting shards back and replays to the barrier.
//
// The window length (speculation horizon) adapts via HorizonController:
// re-centered on the observed hard-barrier gap, doubled on clean windows,
// floored by the committed soft-interaction density.
//
// With `fast_merge` (opt-in) bit-identity is relaxed to
// traffic-stat-identity: no checkpoints, no replay — a window always
// commits whole, and coordinator interactions run on live end-of-window
// site state (event detection past the interaction defers to the next
// window). Deterministic for a fixed stream, independent of thread count.

#ifndef FGM_EXEC_PARALLEL_RUNNER_H_
#define FGM_EXEC_PARALLEL_RUNNER_H_

#include <cstdint>
#include <vector>

#include "exec/horizon.h"
#include "exec/sharded.h"
#include "exec/thread_pool.h"
#include "stream/record.h"

namespace fgm {

class Counter;
class Gauge;
class MetricsRegistry;
class RunningStats;
class SpanSink;
class WallTimer;

struct ParallelRunnerOptions {
  /// Total worker parallelism including the calling thread.
  int threads = 1;
  /// Bounds for the adaptive speculation horizon (records per window).
  int64_t min_horizon = 128;
  int64_t max_horizon = 65536;
  /// Relax bit-identity to traffic-stat-identity (see header comment).
  bool fast_merge = false;
  /// Speculation accounting sink (non-owning; nullptr = off). Instrument
  /// pointers are resolved once at construction; all bookkeeping happens
  /// at window granularity — never per record — so the record path is
  /// unchanged whether or not a registry is attached.
  MetricsRegistry* metrics = nullptr;
  /// Causal span sink (non-owning; nullptr = off): one kSpeculate span
  /// per window with per-shard speculate / barrier-wait / replay children
  /// and the serial commit segment. Workers only stamp two timestamps
  /// into their own shard; all span emission is coordinator-side.
  SpanSink* spans = nullptr;
};

class ParallelRunner {
 public:
  /// `protocol` must outlive the runner.
  ParallelRunner(ShardedProtocol* protocol, ParallelRunnerOptions options);

  /// Feeds `count` records to the protocol. After the call returns the
  /// protocol state equals the serial state after ProcessRecord on each
  /// record in order; calls may be split at any record boundary.
  void Process(const StreamRecord* records, int64_t count);

  // Diagnostics.
  int64_t windows() const { return windows_; }
  int64_t barriers() const { return barriers_; }
  int64_t replayed_records() const { return replayed_; }
  /// Speculated records discarded past a barrier (rolled back, NOT
  /// replayed — the rollback restores the checkpoint and the replay of
  /// the prefix is counted separately in replayed_records()).
  int64_t wasted_records() const { return wasted_; }
  /// Soft coordinator interactions committed without ending a window
  /// (value-series subround crossings).
  int64_t soft_commits() const { return soft_commits_; }
  int threads() const { return pool_.threads(); }

  /// Publishes the per-thread shard-task split and the final horizon to
  /// the registry (gauges `spec_thread<i>_tasks`, `spec_horizon`). Called
  /// once after a run; no-op without a registry.
  void PublishThreadStats();

 private:
  struct Shard {
    std::vector<int64_t> positions;  ///< window positions, ascending
    std::vector<double> values;      ///< recorded value series (v-path)
    std::vector<LocalEvent> events;  ///< events found (event path)
    int64_t processed = 0;           ///< prefix of `positions` processed
    int64_t replay_prefix = 0;       ///< committed prefix to replay
    int64_t span_begin = 0;  ///< worker-stamped speculate segment start
    int64_t span_end = 0;    ///< worker-stamped speculate segment end
  };

  /// Runs one speculation window; returns how many leading records were
  /// committed. Sets *hard when the window ended at a hard barrier.
  int64_t RunValueWindow(const StreamRecord* records, int64_t count,
                         int64_t* soft, bool* hard);
  int64_t RunEventWindow(const StreamRecord* records, int64_t count,
                         bool* hard);

  /// Distributes window records to shards (fills site_of_ / positions /
  /// active_) and opens the window span. Returns the span id (0 = off).
  int64_t BeginWindow(const StreamRecord* records, int64_t count);
  /// Emits per-shard speculate + barrier-wait spans after the join.
  void EmitShardSpans(int64_t window_span);
  /// Closes the window: commit span, window span, shard scratch reset.
  void EndWindow(int64_t window_span, int64_t commit_begin, int64_t consumed);

  /// Hard-barrier materialization (value path): every active shard that
  /// speculated past `pos` restores its checkpoint and replays its
  /// committed prefix. The replays are independent per shard and run on
  /// the pool; replay output lands in the shard's own (already consumed)
  /// value buffer, so no shared scratch is touched by workers.
  void MaterializeShards(const StreamRecord* records, int64_t pos,
                         int64_t window_span);

  ShardedProtocol* protocol_;
  ParallelRunnerOptions opts_;
  ThreadPool pool_;
  bool use_values_;

  std::vector<Shard> shards_;
  std::vector<int> active_;          ///< shard ids with records this window
  std::vector<int32_t> site_of_;     ///< window position -> shard id
  std::vector<ValueSeries> series_;  ///< per-shard view into Shard::values
  std::vector<int> replay_shards_;   ///< shards rolled back this barrier
  std::vector<LocalEvent> merged_;         ///< event path: zipper output
  std::vector<size_t> merge_cursor_;       ///< event-path zipper cursors

  HorizonController horizon_;

  int64_t windows_ = 0;
  int64_t barriers_ = 0;
  int64_t replayed_ = 0;
  int64_t wasted_ = 0;
  int64_t soft_commits_ = 0;

  // Speculation accounting instruments (null when no registry; each use
  // is a pointer test at window granularity).
  Counter* spec_windows_ = nullptr;
  Counter* spec_barriers_ = nullptr;
  Counter* spec_speculated_ = nullptr;  ///< records processed speculatively
  Counter* spec_committed_ = nullptr;   ///< records committed
  Counter* spec_replayed_ = nullptr;    ///< records replayed after rollback
  Counter* spec_wasted_ = nullptr;      ///< records discarded past barriers
  Counter* spec_soft_ = nullptr;        ///< soft interactions committed
  WallTimer* spec_speculate_timer_ = nullptr;
  WallTimer* spec_commit_timer_ = nullptr;
  RunningStats* spec_horizon_stats_ = nullptr;  ///< horizon per window
  Gauge* spec_horizon_ = nullptr;               ///< final adapted horizon
};

}  // namespace fgm

#endif  // FGM_EXEC_PARALLEL_RUNNER_H_
