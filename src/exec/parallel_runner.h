// Speculate-and-replay parallel driver for ShardedProtocols.
//
// The runner advances all sites concurrently inside a speculation window,
// merges the coordinator-visible events by global stream position, and
// commits them serially — producing traffic statistics and event traces
// that are bit-identical to the single-threaded run (see exec/sharded.h
// for the contract and DESIGN.md §5d for the argument).
//
// The window length (speculation horizon) adapts to the observed distance
// between coordinator barriers: long horizons amortize the per-window
// fork/join and checkpoint cost in quiet phases, short horizons bound the
// replayed work when barriers are dense.

#ifndef FGM_EXEC_PARALLEL_RUNNER_H_
#define FGM_EXEC_PARALLEL_RUNNER_H_

#include <cstdint>
#include <vector>

#include "exec/sharded.h"
#include "exec/thread_pool.h"
#include "stream/record.h"

namespace fgm {

struct ParallelRunnerOptions {
  /// Total worker parallelism including the calling thread.
  int threads = 1;
  /// Bounds for the adaptive speculation horizon (records per window).
  int64_t min_horizon = 128;
  int64_t max_horizon = 65536;
};

class ParallelRunner {
 public:
  /// `protocol` must outlive the runner.
  ParallelRunner(ShardedProtocol* protocol, ParallelRunnerOptions options);

  /// Feeds `count` records to the protocol. After the call returns the
  /// protocol state equals the serial state after ProcessRecord on each
  /// record in order; calls may be split at any record boundary.
  void Process(const StreamRecord* records, int64_t count);

  // Diagnostics.
  int64_t windows() const { return windows_; }
  int64_t barriers() const { return barriers_; }
  int64_t replayed_records() const { return replayed_; }
  int threads() const { return pool_.threads(); }

 private:
  /// Runs one speculation window; returns how many leading records were
  /// committed (the whole window, or everything up to and including the
  /// barrier record).
  int64_t RunWindow(const StreamRecord* records, int64_t count);

  struct Shard {
    std::vector<int64_t> positions;  ///< window positions, ascending
    std::vector<LocalEvent> events;  ///< events found while speculating
    int64_t processed = 0;           ///< prefix of `positions` processed
  };

  ShardedProtocol* protocol_;
  ParallelRunnerOptions opts_;
  ThreadPool pool_;

  std::vector<Shard> shards_;
  std::vector<int> active_;          ///< shard ids with records this window
  std::vector<LocalEvent> merged_;

  int64_t horizon_;
  double gap_ewma_;        ///< smoothed records-per-barrier estimate
  int64_t since_barrier_ = 0;

  int64_t windows_ = 0;
  int64_t barriers_ = 0;
  int64_t replayed_ = 0;
};

}  // namespace fgm

#endif  // FGM_EXEC_PARALLEL_RUNNER_H_
