// Fixed-size worker pool for the parallel execution engine.
//
// The pool runs index-based parallel-for jobs: workers (plus the calling
// thread) pull task indices from a shared atomic cursor, so uneven task
// costs balance dynamically. Between jobs workers SPIN briefly on the
// job generation (the parallel runner submits windows back to back, and
// a condition-variable round trip per window costs more than a small
// window's work) and then BLOCK — on an oversubscribed or single-core
// host the pool still degrades to roughly serial execution instead of
// burning cycles, which matters because the simulator is routinely run
// under `taskset` and inside small CI containers.

#ifndef FGM_EXEC_THREAD_POOL_H_
#define FGM_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fgm {

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread, so
  /// the pool spawns `threads - 1` workers. threads <= 1 spawns none and
  /// ParallelFor runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n), distributing indices dynamically
  /// across the workers and the calling thread; returns when all n calls
  /// have finished. Calls must not throw (the library is exception-free)
  /// and must not re-enter ParallelFor.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Tasks executed by each thread over the pool's lifetime (slot 0 is
  /// the calling thread). Updated under the pool mutex at job boundaries
  /// — reading it costs nothing on the per-task path.
  std::vector<int64_t> TaskTally() const;

 private:
  void WorkerLoop(int slot);
  /// Pulls indices from next_ until the job is exhausted; returns how many
  /// tasks this thread executed.
  int RunTasks(const std::function<void(int)>& fn, int limit);

  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  const std::function<void(int)>* job_ = nullptr;
  int job_limit_ = 0;
  // Atomics so idle workers can poll for the next job without the mutex;
  // both are only WRITTEN under mu_, which keeps the condvar protocol
  // sound. Workers still snapshot job_/job_limit_ under the lock.
  std::atomic<int64_t> generation_{0};
  std::atomic<bool> shutdown_{false};
  int finished_ = 0;  // tasks completed in the current job (guarded by mu_)
  int draining_ = 0;  // workers currently inside RunTasks (guarded by mu_)
  std::vector<int64_t> task_tally_;  // per-thread lifetime task counts

  // Lock-free task cursor — the only state touched per task.
  std::atomic<int> next_{0};
};

}  // namespace fgm

#endif  // FGM_EXEC_THREAD_POOL_H_
