// Adaptive speculation-horizon controller for the parallel runner.
//
// The horizon is the number of records offered to one speculation window.
// Long windows amortize the per-window fork/join, checkpoint and merge
// costs; short windows bound the work rolled back and replayed when a
// window ends at a hard coordinator barrier. The controller balances the
// two from run-time feedback:
//
//   * every window that ends at a hard barrier re-centers the horizon on
//     an EWMA of the observed records-per-barrier gap, so the overshoot
//     (speculated work past the barrier) stays proportional to the
//     useful work;
//   * every barrier-free window doubles the horizon (geometric probing)
//     up to the maximum;
//   * the committed soft-interaction density (subround crossings per
//     record, the per-round subround density of obs/timeseries) sets a
//     FLOOR: a window should span many subrounds, because under
//     value-series speculation subround crossings are scalar re-basings
//     that cost nothing to cross but a fork/join to split on. The floor
//     keeps one dense-but-soft phase from pinning the engine at tiny
//     windows.
//
// Deterministic: the horizon sequence depends only on the feedback
// sequence, never on wall time or thread count, so parallel runs stay
// bit-identical across machines and thread counts.

#ifndef FGM_EXEC_HORIZON_H_
#define FGM_EXEC_HORIZON_H_

#include <algorithm>
#include <cstdint>

#include "util/check.h"

namespace fgm {

class HorizonController {
 public:
  HorizonController(int64_t min_horizon, int64_t max_horizon)
      : min_(std::max<int64_t>(min_horizon, 1)),
        max_(std::max(max_horizon, min_)),
        horizon_(min_),
        gap_ewma_(static_cast<double>(min_)) {
    FGM_CHECK_GE(min_horizon, 1);
    FGM_CHECK_GE(max_horizon, min_horizon);
  }

  /// Records to offer to the next speculation window.
  int64_t horizon() const { return horizon_; }

  /// Smoothed records-per-hard-barrier estimate (testing hook).
  double gap_ewma() const { return gap_ewma_; }

  /// Feedback after one window: `consumed` of `window` offered records
  /// were committed; `barrier` is true when the window was cut short by a
  /// hard coordinator barrier (rollback + replay happened).
  void OnWindow(int64_t consumed, int64_t window, bool barrier) {
    FGM_CHECK_GE(consumed, 0);
    since_barrier_ += consumed;
    if (barrier) {
      // Re-center on the smoothed barrier gap so speculation overshoot
      // stays proportional to the useful work between barriers.
      hard_seen_ = true;
      gap_ewma_ =
          0.75 * gap_ewma_ + 0.25 * static_cast<double>(since_barrier_);
      since_barrier_ = 0;
      horizon_ = Clamp(static_cast<int64_t>(gap_ewma_));
    } else if (consumed >= window) {
      // Barrier-free window: probe longer windows geometrically.
      horizon_ = Clamp(horizon_ * 2);
    }
  }

  /// Density hint: `soft` committed soft interactions (subround
  /// crossings) were observed over `records` committed records. Raises
  /// the horizon floor to kSubroundsPerWindow subround lengths so each
  /// window amortizes its fork/join over many soft crossings. Once a
  /// hard barrier has been seen the floor is capped at the hard-gap
  /// EWMA: speculating past the next hard barrier is pure waste, so
  /// soft density may accelerate the ramp-up but never push the horizon
  /// beyond the distance the hard barriers allow.
  void NoteSoftDensity(int64_t soft, int64_t records) {
    if (soft <= 0 || records <= 0) return;
    const double per_soft =
        static_cast<double>(records) / static_cast<double>(soft);
    const double target = kSubroundsPerWindow * per_soft;
    soft_floor_ = Clamp(soft_floor_ == 0
                            ? static_cast<int64_t>(target)
                            : static_cast<int64_t>(0.75 * static_cast<double>(
                                                              soft_floor_) +
                                                   0.25 * target));
    const int64_t cap =
        hard_seen_ ? Clamp(static_cast<int64_t>(gap_ewma_)) : max_;
    horizon_ = std::max(horizon_, std::min(soft_floor_, cap));
  }

  int64_t soft_floor() const { return soft_floor_; }

 private:
  /// Windows should span about this many soft (subround) crossings.
  static constexpr double kSubroundsPerWindow = 8.0;

  int64_t Clamp(int64_t h) const { return std::clamp(h, min_, max_); }

  int64_t min_;
  int64_t max_;
  int64_t horizon_;
  double gap_ewma_;            ///< smoothed records-per-hard-barrier
  int64_t since_barrier_ = 0;  ///< committed records since the last barrier
  int64_t soft_floor_ = 0;     ///< density-derived lower bound (0 = none)
  bool hard_seen_ = false;     ///< any hard barrier observed yet
};

}  // namespace fgm

#endif  // FGM_EXEC_HORIZON_H_
