#include "exec/parallel_runner.h"

#include <algorithm>
#include <limits>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/check.h"

namespace fgm {

ParallelRunner::ParallelRunner(ShardedProtocol* protocol,
                               ParallelRunnerOptions options)
    : protocol_(protocol),
      opts_(options),
      pool_(options.threads),
      use_values_(protocol->SupportsValueSeries()),
      shards_(static_cast<size_t>(protocol->shard_count())),
      series_(static_cast<size_t>(protocol->shard_count())),
      horizon_(options.min_horizon, options.max_horizon) {
  FGM_CHECK(protocol != nullptr);
  if (opts_.metrics != nullptr) {
    MetricsRegistry* m = opts_.metrics;
    spec_windows_ = m->GetCounter("spec_windows");
    spec_barriers_ = m->GetCounter("spec_barriers");
    spec_speculated_ = m->GetCounter("spec_records_speculated");
    spec_committed_ = m->GetCounter("spec_records_committed");
    spec_replayed_ = m->GetCounter("spec_records_replayed");
    spec_wasted_ = m->GetCounter("spec_records_wasted");
    spec_soft_ = m->GetCounter("spec_soft_commits");
    spec_speculate_timer_ = m->GetTimer("spec_speculate");
    spec_commit_timer_ = m->GetTimer("spec_commit");
    spec_horizon_stats_ = m->GetStats("spec_horizon_per_window");
    spec_horizon_ = m->GetGauge("spec_horizon");
  }
}

void ParallelRunner::PublishThreadStats() {
  if (opts_.metrics == nullptr) return;
  const std::vector<int64_t> tally = pool_.TaskTally();
  for (size_t i = 0; i < tally.size(); ++i) {
    opts_.metrics
        ->GetGauge("spec_thread" + std::to_string(i) + "_tasks")
        ->Set(static_cast<double>(tally[i]));
  }
  if (spec_horizon_ != nullptr) {
    spec_horizon_->Set(static_cast<double>(horizon_.horizon()));
  }
}

void ParallelRunner::Process(const StreamRecord* records, int64_t count) {
  int64_t done = 0;
  while (done < count) {
    const int64_t window = std::min(horizon_.horizon(), count - done);
    int64_t soft = 0;
    bool hard = false;
    const int64_t consumed =
        use_values_ ? RunValueWindow(records + done, window, &soft, &hard)
                    : RunEventWindow(records + done, window, &hard);
    FGM_CHECK_GE(consumed, 1);
    done += consumed;
    horizon_.OnWindow(consumed, window, hard);
    if (soft > 0) horizon_.NoteSoftDensity(soft, consumed);
  }
}

int64_t ParallelRunner::BeginWindow(const StreamRecord* records,
                                    int64_t count) {
  ++windows_;
  if (spec_windows_ != nullptr) {
    spec_windows_->Add(1);
    spec_horizon_stats_->Add(static_cast<double>(count));
  }
  active_.clear();
  if (use_values_) site_of_.resize(static_cast<size_t>(count));
  for (int64_t pos = 0; pos < count; ++pos) {
    const int32_t s = records[pos].site;
    FGM_CHECK(s >= 0 && s < static_cast<int32_t>(shards_.size()));
    if (use_values_) site_of_[static_cast<size_t>(pos)] = s;
    Shard& shard = shards_[static_cast<size_t>(s)];
    if (shard.positions.empty()) active_.push_back(s);
    shard.positions.push_back(pos);
  }
  if (opts_.spans == nullptr) return 0;
  // Explicitly parented to the run: the commit below may open protocol
  // round/subround scopes that stay open across windows, so the stack
  // top is not a valid causal parent here.
  return opts_.spans->BeginWithParent(SpanKind::kSpeculate, -1, 0, 0, nullptr,
                                      opts_.spans->root());
}

void ParallelRunner::EmitShardSpans(int64_t window_span) {
  SpanSink* const spans = opts_.spans;
  if (spans == nullptr) return;
  // Barrier-wait: from a shard's own finish to the slowest shard's
  // finish (approximated by the join instant) — the blocked time that
  // explains sub-linear speedup.
  const int64_t join_tick = spans->Now();
  for (int s : active_) {
    const Shard& shard = shards_[static_cast<size_t>(s)];
    Span seg;
    seg.kind = SpanKind::kShardSpeculate;
    seg.parent = window_span;
    seg.site = s;
    seg.begin = shard.span_begin;
    seg.end = std::max(shard.span_end, shard.span_begin);
    seg.count = shard.processed;
    spans->EmitComplete(seg);
    Span wait;
    wait.kind = SpanKind::kBarrierWait;
    wait.parent = window_span;
    wait.site = s;
    wait.begin = seg.end;
    wait.end = std::max(join_tick, seg.end);
    spans->EmitComplete(wait);
  }
}

void ParallelRunner::EndWindow(int64_t window_span, int64_t commit_begin,
                               int64_t consumed) {
  SpanSink* const spans = opts_.spans;
  if (spans != nullptr) {
    Span commit;
    commit.kind = SpanKind::kCommit;
    commit.parent = window_span;
    commit.begin = commit_begin;
    commit.end = spans->Now();
    commit.count = consumed;
    spans->EmitComplete(commit);
    spans->End(window_span);
  }
  for (int s : active_) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    shard.positions.clear();
    shard.values.clear();
    shard.events.clear();
    shard.processed = 0;
    shard.replay_prefix = 0;
    shard.span_begin = 0;
    shard.span_end = 0;
  }
}

// ---------------------------------------------------------------------------
// Value-series path
// ---------------------------------------------------------------------------

int64_t ParallelRunner::RunValueWindow(const StreamRecord* records,
                                       int64_t count, int64_t* soft,
                                       bool* hard) {
  const int64_t window_span = BeginWindow(records, count);
  SpanSink* const spans = opts_.spans;

  // Checkpoints guard the hard-barrier rollback; fast merge never rolls
  // back, so it skips the per-window evaluator clone entirely.
  if (!opts_.fast_merge) {
    for (int s : active_) protocol_->SaveCheckpoint(s);
  }

  // Speculate: every active shard folds its WHOLE window batch into its
  // drift and records the per-record value series. No early stop — the
  // event rule runs at commit, over the recorded values.
  {
    ScopedTimer t(spec_speculate_timer_);
    pool_.ParallelFor(static_cast<int>(active_.size()), [&](int j) {
      const int s = active_[static_cast<size_t>(j)];
      Shard& shard = shards_[static_cast<size_t>(s)];
      if (spans != nullptr) shard.span_begin = spans->Now();
      const int64_t n = static_cast<int64_t>(shard.positions.size());
      shard.values.resize(static_cast<size_t>(n));
      protocol_->SpeculateShard(s, records, shard.positions.data(), n,
                                shard.values.data());
      shard.processed = n;
      if (spans != nullptr) shard.span_end = spans->Now();
    });
  }
  EmitShardSpans(window_span);
  if (spec_speculated_ != nullptr) spec_speculated_->Add(count);

  // Commit walk: the protocol zips the per-shard value series back into
  // global stream order (per-shard cursors — no sort) and replays its
  // scalar event rule; hard interactions call back into
  // MaterializeShards before reading drift state.
  for (int s : active_) {
    const Shard& shard = shards_[static_cast<size_t>(s)];
    series_[static_cast<size_t>(s)] = ValueSeries{
        shard.values.data(), static_cast<int64_t>(shard.values.size())};
  }
  const int64_t replayed_before = replayed_;
  const int64_t wasted_before = wasted_;
  int64_t commit_begin = 0;
  if (spans != nullptr) commit_begin = spans->Now();
  int64_t consumed;
  {
    ScopedTimer t(spec_commit_timer_);
    consumed = protocol_->CommitValueSeries(
        site_of_.data(), count, series_.data(),
        [&](int64_t pos) { MaterializeShards(records, pos, window_span); },
        opts_.fast_merge, soft);
  }
  FGM_CHECK_GE(consumed, 1);
  *hard = consumed < count;
  if (*hard) ++barriers_;
  soft_commits_ += *soft;

  if (spec_committed_ != nullptr) {
    spec_committed_->Add(consumed);
    spec_soft_->Add(*soft);
    if (*hard) {
      spec_barriers_->Add(1);
      spec_replayed_->Add(replayed_ - replayed_before);
      spec_wasted_->Add(wasted_ - wasted_before);
    }
  }
  EndWindow(window_span, commit_begin, consumed);
  return consumed;
}

void ParallelRunner::MaterializeShards(const StreamRecord* records,
                                       int64_t pos, int64_t window_span) {
  SpanSink* const spans = opts_.spans;
  replay_shards_.clear();
  for (int s : active_) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    const auto prefix_end = std::upper_bound(shard.positions.begin(),
                                             shard.positions.end(), pos);
    shard.replay_prefix = prefix_end - shard.positions.begin();
    const int64_t n = static_cast<int64_t>(shard.positions.size());
    wasted_ += n - shard.replay_prefix;
    // A fully committed shard's evaluator is already exact.
    if (n > shard.replay_prefix) replay_shards_.push_back(s);
  }
  // Restore + replay in parallel: shards are independent, and the
  // recomputed values — discarded, the commit walk already consumed
  // them — overwrite the shard's own spent value buffer. Replay from
  // the bit-exact checkpoint repeats the identical delta sequence in
  // the identical order, so the restored state matches the serial run.
  pool_.ParallelFor(static_cast<int>(replay_shards_.size()), [&](int j) {
    const int s = replay_shards_[static_cast<size_t>(j)];
    Shard& shard = shards_[static_cast<size_t>(s)];
    if (spans != nullptr) shard.span_begin = spans->Now();
    protocol_->RestoreCheckpoint(s);
    if (shard.replay_prefix > 0) {
      protocol_->SpeculateShard(s, records, shard.positions.data(),
                                shard.replay_prefix, shard.values.data());
    }
    if (spans != nullptr) shard.span_end = spans->Now();
  });
  for (int s : replay_shards_) {
    const Shard& shard = shards_[static_cast<size_t>(s)];
    replayed_ += shard.replay_prefix;
    if (spans != nullptr) {
      Span replay;
      replay.kind = SpanKind::kReplay;
      replay.parent = window_span;
      replay.site = s;
      replay.begin = shard.span_begin;
      replay.end = std::max(shard.span_end, shard.span_begin);
      replay.count = shard.replay_prefix;
      spans->EmitComplete(replay);
    }
  }
}

// ---------------------------------------------------------------------------
// Event/barrier path (protocols without value-series support, e.g. GM)
// ---------------------------------------------------------------------------

int64_t ParallelRunner::RunEventWindow(const StreamRecord* records,
                                       int64_t count, bool* hard) {
  const int64_t window_span = BeginWindow(records, count);
  SpanSink* const spans = opts_.spans;
  // Under fast merge every shard processes its whole batch (no early
  // stop) and nothing ever rolls back.
  const int64_t budget =
      opts_.fast_merge ? std::numeric_limits<int64_t>::max()
                       : protocol_->SpeculationBudget();
  FGM_CHECK_GE(budget, 1);
  if (!opts_.fast_merge) {
    for (int s : active_) protocol_->SaveCheckpoint(s);
  }

  // Speculate: every active shard advances through its own records. A
  // shard stops once its OWN event weight reaches the budget — the merged
  // crossing can only be at or before that position, so every event below
  // the barrier is guaranteed to have been gathered.
  {
    ScopedTimer t(spec_speculate_timer_);
    pool_.ParallelFor(static_cast<int>(active_.size()), [&](int j) {
      const int s = active_[static_cast<size_t>(j)];
      Shard& shard = shards_[static_cast<size_t>(s)];
      if (spans != nullptr) shard.span_begin = spans->Now();
      shard.processed = protocol_->LocalProcessBatch(
          records, shard.positions.data(),
          static_cast<int64_t>(shard.positions.size()), budget,
          static_cast<int32_t>(s), &shard.events);
      if (spans != nullptr) shard.span_end = spans->Now();
    });
  }
  EmitShardSpans(window_span);
  if (spec_speculated_ != nullptr) {
    int64_t processed = 0;
    for (int s : active_) processed += shards_[static_cast<size_t>(s)].processed;
    spec_speculated_->Add(processed);
  }

  // Zipper-merge the per-shard event lists (each already ascending in
  // position) into global order — deterministic, no sort.
  merged_.clear();
  merge_cursor_.assign(shards_.size(), 0);
  for (;;) {
    int best = -1;
    int64_t best_pos = 0;
    for (int s : active_) {
      const Shard& shard = shards_[static_cast<size_t>(s)];
      const size_t cur = merge_cursor_[static_cast<size_t>(s)];
      if (cur >= shard.events.size()) continue;
      const int64_t p = shard.events[cur].pos;
      if (best < 0 || p < best_pos) {
        best = s;
        best_pos = p;
      }
    }
    if (best < 0) break;
    merged_.push_back(
        shards_[static_cast<size_t>(best)]
            .events[merge_cursor_[static_cast<size_t>(best)]++]);
  }

  int64_t consumed;
  int64_t commit_begin = 0;
  const int64_t replayed_before = replayed_;
  const int64_t wasted_before = wasted_;
  ScopedTimer commit_timer(spec_commit_timer_);
  if (opts_.fast_merge) {
    // Relaxed commit: the whole window commits; events replay in order
    // until the first one that triggers a coordinator interaction (which
    // runs on live end-of-window state); the rest are stale — detection
    // defers to the sites' next records.
    if (spans != nullptr) commit_begin = spans->Now();
    protocol_->CommitRecords(count);
    for (const LocalEvent& event : merged_) {
      if (protocol_->CommitEvent(event)) break;
    }
    consumed = count;
    *hard = false;
    EndWindow(window_span, commit_begin, consumed);
    if (spec_committed_ != nullptr) spec_committed_->Add(consumed);
    return consumed;
  }

  // The barrier is the first position where the accumulated weight meets
  // the budget — exactly where the serial run enters the coordinator.
  int64_t barrier = -1;
  size_t barrier_idx = 0;
  int64_t cum = 0;
  for (size_t i = 0; i < merged_.size(); ++i) {
    cum += merged_[i].weight;
    if (cum >= budget) {
      barrier = merged_[i].pos;
      barrier_idx = i;
      break;
    }
  }

  if (barrier < 0) {
    // No coordinator interaction in this window: all speculation commits.
    // No shard can have stopped early (its own weight alone would have
    // crossed the budget), so the whole window was processed.
    for (int s : active_) {
      const Shard& shard = shards_[static_cast<size_t>(s)];
      FGM_CHECK_EQ(shard.processed,
                   static_cast<int64_t>(shard.positions.size()));
    }
    if (spans != nullptr) commit_begin = spans->Now();
    protocol_->CommitRecords(count);
    for (const LocalEvent& event : merged_) {
      const bool fired = protocol_->CommitEvent(event);
      FGM_CHECK(!fired);
    }
    consumed = count;
  } else {
    ++barriers_;
    replay_shards_.clear();
    for (int s : active_) {
      Shard& shard = shards_[static_cast<size_t>(s)];
      const auto prefix_end = std::upper_bound(shard.positions.begin(),
                                               shard.positions.end(), barrier);
      shard.replay_prefix = prefix_end - shard.positions.begin();
      wasted_ += shard.processed - shard.replay_prefix;
      if (shard.processed > shard.replay_prefix) replay_shards_.push_back(s);
    }
    // Roll back every shard that ran past the barrier and replay its
    // records up to it, in parallel — the replays are independent per
    // shard and the replayed events (already zipper-merged above) land
    // in the shard's own spent event buffer. Replay from the bit-exact
    // checkpoint repeats the identical operations, so the restored
    // state matches the serial run.
    pool_.ParallelFor(static_cast<int>(replay_shards_.size()), [&](int j) {
      const int s = replay_shards_[static_cast<size_t>(j)];
      Shard& shard = shards_[static_cast<size_t>(s)];
      if (spans != nullptr) shard.span_begin = spans->Now();
      protocol_->RestoreCheckpoint(s);
      if (shard.replay_prefix > 0) {
        shard.events.clear();
        protocol_->LocalProcessBatch(records, shard.positions.data(),
                                     shard.replay_prefix,
                                     std::numeric_limits<int64_t>::max(),
                                     static_cast<int32_t>(s), &shard.events);
      }
      if (spans != nullptr) shard.span_end = spans->Now();
    });
    for (int s : replay_shards_) {
      const Shard& shard = shards_[static_cast<size_t>(s)];
      replayed_ += shard.replay_prefix;
      if (spans != nullptr) {
        Span replay;
        replay.kind = SpanKind::kReplay;
        replay.parent = window_span;
        replay.site = s;
        replay.begin = shard.span_begin;
        replay.end = std::max(shard.span_end, shard.span_begin);
        replay.count = shard.replay_prefix;
        spans->EmitComplete(replay);
      }
    }
    if (spans != nullptr) commit_begin = spans->Now();
    protocol_->CommitRecords(barrier + 1);
    for (size_t i = 0; i <= barrier_idx; ++i) {
      const bool fired = protocol_->CommitEvent(merged_[i]);
      FGM_CHECK_EQ(fired, i == barrier_idx);
    }
    consumed = barrier + 1;
  }
  *hard = barrier >= 0;
  if (spec_committed_ != nullptr) {
    spec_committed_->Add(consumed);
    if (barrier >= 0) {
      spec_barriers_->Add(1);
      spec_replayed_->Add(replayed_ - replayed_before);
      spec_wasted_->Add(wasted_ - wasted_before);
    }
  }
  EndWindow(window_span, commit_begin, consumed);
  return consumed;
}

}  // namespace fgm
