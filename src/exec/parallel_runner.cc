#include "exec/parallel_runner.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/check.h"

namespace fgm {

ParallelRunner::ParallelRunner(ShardedProtocol* protocol,
                               ParallelRunnerOptions options)
    : protocol_(protocol),
      opts_(options),
      pool_(options.threads),
      shards_(static_cast<size_t>(protocol->shard_count())),
      horizon_(std::max<int64_t>(options.min_horizon, 1)),
      gap_ewma_(static_cast<double>(horizon_)) {
  FGM_CHECK(protocol != nullptr);
  FGM_CHECK_GE(opts_.min_horizon, 1);
  FGM_CHECK_GE(opts_.max_horizon, opts_.min_horizon);
  if (opts_.metrics != nullptr) {
    MetricsRegistry* m = opts_.metrics;
    spec_windows_ = m->GetCounter("spec_windows");
    spec_barriers_ = m->GetCounter("spec_barriers");
    spec_speculated_ = m->GetCounter("spec_records_speculated");
    spec_committed_ = m->GetCounter("spec_records_committed");
    spec_replayed_ = m->GetCounter("spec_records_replayed");
    spec_wasted_ = m->GetCounter("spec_records_wasted");
    spec_speculate_timer_ = m->GetTimer("spec_speculate");
    spec_commit_timer_ = m->GetTimer("spec_commit");
    spec_horizon_stats_ = m->GetStats("spec_horizon_per_window");
    spec_horizon_ = m->GetGauge("spec_horizon");
  }
}

void ParallelRunner::PublishThreadStats() {
  if (opts_.metrics == nullptr) return;
  const std::vector<int64_t> tally = pool_.TaskTally();
  for (size_t i = 0; i < tally.size(); ++i) {
    opts_.metrics
        ->GetGauge("spec_thread" + std::to_string(i) + "_tasks")
        ->Set(static_cast<double>(tally[i]));
  }
  if (spec_horizon_ != nullptr) {
    spec_horizon_->Set(static_cast<double>(horizon_));
  }
}

void ParallelRunner::Process(const StreamRecord* records, int64_t count) {
  int64_t done = 0;
  while (done < count) {
    const int64_t window = std::min(horizon_, count - done);
    const int64_t consumed = RunWindow(records + done, window);
    FGM_CHECK_GE(consumed, 1);
    done += consumed;
    since_barrier_ += consumed;
    if (consumed < window) {
      // Hit a barrier: re-center the horizon on the smoothed barrier gap,
      // so the speculation overshoot (work thrown away past the barrier)
      // stays proportional to the useful work.
      gap_ewma_ = 0.75 * gap_ewma_ + 0.25 * static_cast<double>(since_barrier_);
      since_barrier_ = 0;
      horizon_ = std::clamp(static_cast<int64_t>(gap_ewma_),
                            opts_.min_horizon, opts_.max_horizon);
    } else {
      // Barrier-free window: probe longer windows geometrically.
      horizon_ = std::min(horizon_ * 2, opts_.max_horizon);
    }
  }
}

int64_t ParallelRunner::RunWindow(const StreamRecord* records, int64_t count) {
  ++windows_;
  if (spec_windows_ != nullptr) {
    spec_windows_->Add(1);
    spec_horizon_stats_->Add(static_cast<double>(count));
  }
  SpanSink* const spans = opts_.spans;
  int64_t window_span = 0;
  if (spans != nullptr) {
    // Explicitly parented to the run: the commit below may open protocol
    // round/subround scopes that stay open across windows, so the stack
    // top is not a valid causal parent here.
    window_span = spans->BeginWithParent(SpanKind::kSpeculate, -1, 0, 0,
                                         nullptr, spans->root());
  }
  const int64_t budget = protocol_->SpeculationBudget();
  FGM_CHECK_GE(budget, 1);

  active_.clear();
  for (int64_t pos = 0; pos < count; ++pos) {
    const int32_t s = records[pos].site;
    FGM_CHECK(s >= 0 && s < static_cast<int32_t>(shards_.size()));
    Shard& shard = shards_[static_cast<size_t>(s)];
    if (shard.positions.empty()) active_.push_back(s);
    shard.positions.push_back(pos);
  }
  for (int s : active_) protocol_->SaveCheckpoint(s);

  // Speculate: every active shard advances through its own records. A
  // shard stops once its OWN event weight reaches the budget — the merged
  // crossing can only be at or before that position, so every event below
  // the barrier is guaranteed to have been gathered.
  {
    ScopedTimer t(spec_speculate_timer_);
    pool_.ParallelFor(static_cast<int>(active_.size()), [&](int j) {
      const int s = active_[static_cast<size_t>(j)];
      Shard& shard = shards_[static_cast<size_t>(s)];
      // Workers stamp only their own shard's timestamps; the coordinator
      // turns them into spans after the join.
      if (spans != nullptr) shard.span_begin = spans->Now();
      int64_t own_weight = 0;
      for (const int64_t pos : shard.positions) {
        double value = 0.0;
        const int64_t w = protocol_->LocalProcess(records[pos], &value);
        ++shard.processed;
        if (w > 0) {
          shard.events.push_back(
              LocalEvent{pos, static_cast<int32_t>(s), w, value});
          own_weight += w;
          if (own_weight >= budget) break;
        }
      }
      if (spans != nullptr) shard.span_end = spans->Now();
    });
  }
  if (spans != nullptr) {
    // Barrier-wait: from a shard's own finish to the slowest shard's
    // finish (approximated by the join instant) — the blocked time that
    // explains sub-linear speedup.
    const int64_t join_tick = spans->Now();
    for (int s : active_) {
      const Shard& shard = shards_[static_cast<size_t>(s)];
      Span seg;
      seg.kind = SpanKind::kShardSpeculate;
      seg.parent = window_span;
      seg.site = s;
      seg.begin = shard.span_begin;
      seg.end = std::max(shard.span_end, shard.span_begin);
      seg.count = shard.processed;
      spans->EmitComplete(seg);
      Span wait;
      wait.kind = SpanKind::kBarrierWait;
      wait.parent = window_span;
      wait.site = s;
      wait.begin = seg.end;
      wait.end = std::max(join_tick, seg.end);
      spans->EmitComplete(wait);
    }
  }
  if (spec_speculated_ != nullptr) {
    int64_t processed = 0;
    for (int s : active_) processed += shards_[static_cast<size_t>(s)].processed;
    spec_speculated_->Add(processed);
  }

  // Merge by global position (positions are unique, so the order — and
  // everything committed from it — is deterministic).
  merged_.clear();
  for (int s : active_) {
    const Shard& shard = shards_[static_cast<size_t>(s)];
    merged_.insert(merged_.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(merged_.begin(), merged_.end(),
            [](const LocalEvent& a, const LocalEvent& b) {
              return a.pos < b.pos;
            });

  // The barrier is the first position where the accumulated weight meets
  // the budget — exactly where the serial run enters the coordinator.
  int64_t barrier = -1;
  size_t barrier_idx = 0;
  int64_t cum = 0;
  for (size_t i = 0; i < merged_.size(); ++i) {
    cum += merged_[i].weight;
    if (cum >= budget) {
      barrier = merged_[i].pos;
      barrier_idx = i;
      break;
    }
  }

  int64_t consumed;
  int64_t commit_begin = 0;
  const int64_t replayed_before = replayed_;
  const int64_t wasted_before = wasted_;
  ScopedTimer commit_timer(spec_commit_timer_);
  if (barrier < 0) {
    // No coordinator interaction in this window: all speculation commits.
    // No shard can have stopped early (its own weight alone would have
    // crossed the budget), so the whole window was processed.
    for (int s : active_) {
      const Shard& shard = shards_[static_cast<size_t>(s)];
      FGM_CHECK_EQ(shard.processed,
                   static_cast<int64_t>(shard.positions.size()));
    }
    if (spans != nullptr) commit_begin = spans->Now();
    protocol_->CommitRecords(count);
    for (const LocalEvent& event : merged_) {
      const bool fired = protocol_->CommitEvent(event);
      FGM_CHECK(!fired);
    }
    consumed = count;
  } else {
    ++barriers_;
    // Roll back every shard that ran past the barrier and replay its
    // records up to it; replay from the bit-exact checkpoint repeats the
    // identical operations, so the restored state matches the serial run.
    for (int s : active_) {
      Shard& shard = shards_[static_cast<size_t>(s)];
      const auto prefix_end = std::upper_bound(shard.positions.begin(),
                                               shard.positions.end(), barrier);
      const int64_t prefix = prefix_end - shard.positions.begin();
      if (shard.processed > prefix) {
        const int64_t replay_begin =
            spans != nullptr ? spans->Now() : 0;
        protocol_->RestoreCheckpoint(s);
        replayed_ += prefix;
        wasted_ += shard.processed - prefix;
        for (int64_t i = 0; i < prefix; ++i) {
          double value = 0.0;
          protocol_->LocalProcess(records[shard.positions[static_cast<size_t>(i)]],
                                  &value);
        }
        if (spans != nullptr) {
          Span replay;
          replay.kind = SpanKind::kReplay;
          replay.parent = window_span;
          replay.site = s;
          replay.begin = replay_begin;
          replay.end = spans->Now();
          replay.count = prefix;
          spans->EmitComplete(replay);
        }
      }
    }
    if (spans != nullptr) commit_begin = spans->Now();
    protocol_->CommitRecords(barrier + 1);
    for (size_t i = 0; i <= barrier_idx; ++i) {
      const bool fired = protocol_->CommitEvent(merged_[i]);
      FGM_CHECK_EQ(fired, i == barrier_idx);
    }
    consumed = barrier + 1;
  }
  if (spans != nullptr) {
    Span commit;
    commit.kind = SpanKind::kCommit;
    commit.parent = window_span;
    commit.begin = commit_begin;
    commit.end = spans->Now();
    commit.count = consumed;
    spans->EmitComplete(commit);
    spans->End(window_span);
  }

  for (int s : active_) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    shard.positions.clear();
    shard.events.clear();
    shard.processed = 0;
    shard.span_begin = 0;
    shard.span_end = 0;
  }
  if (spec_committed_ != nullptr) {
    spec_committed_->Add(consumed);
    if (barrier >= 0) {
      spec_barriers_->Add(1);
      spec_replayed_->Add(replayed_ - replayed_before);
      spec_wasted_->Add(wasted_ - wasted_before);
    }
  }
  return consumed;
}

}  // namespace fgm
