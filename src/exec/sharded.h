// Sharded-execution interface of the monitoring protocols.
//
// Between coordinator interactions the k sites of a geometric-monitoring
// protocol are completely independent: each one folds its own records
// into its drift and only *sometimes* produces a coordinator-visible
// event (an FGM counter increment, a GM safe-zone violation). A protocol
// that implements ShardedProtocol splits its per-record work into
//
//   LocalProcess  — the site-local part; called concurrently, one thread
//                   per shard (site), NEVER for the same shard from two
//                   threads at once. Must not touch coordinator state,
//                   the transport, or the trace.
//   CommitEvent   — the coordinator part; called by one thread, in the
//                   exact global stream order, and performs the message
//                   traffic / trace emission / counter arithmetic of the
//                   serial protocol word for word.
//
// plus checkpoint hooks that let the ParallelRunner speculate: sites run
// ahead in parallel, the runner merges their events by stream position,
// finds the first position where the accumulated event weight reaches
// SpeculationBudget() (the barrier — the point where the serial protocol
// would have entered the coordinator), rolls overshooting shards back to
// their checkpoints and replays them up to the barrier. Replay from a
// bit-exact checkpoint applies the same floating-point operations in the
// same order, so the committed run is bit-identical to the serial one.
//
// Value-series speculation (the batched fast path). For FGM the event
// rule is *scalar*: a counter increment depends only on the site's
// post-update value v = λφ(X_i/λ) and on the subround baseline (z_i, θ,
// c_i) — and starting a new subround touches ONLY that scalar baseline,
// never the drift. A protocol that also implements the value-series hooks
// lets the runner split the work differently:
//
//   SpeculateShard    — workers fold whole per-shard record batches into
//                       the drift and record every post-update value;
//   CommitValueSeries — the coordinator replays the scalar event rule
//                       over the recorded values in global stream order,
//                       carrying the committed baseline across subround
//                       crossings WITHOUT invalidating the speculated
//                       drift. Only interactions that must read true
//                       drift state (rebalance, round end) materialize
//                       the sites via the runner's callback and end the
//                       window.
//
// Subround boundaries thus become "soft" (scalar re-basing, no rollback)
// and the rollback-replay machinery is reserved for the rare hard
// interactions — the difference between the engine losing to serial and
// beating it.

#ifndef FGM_EXEC_SHARDED_H_
#define FGM_EXEC_SHARDED_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "stream/record.h"

namespace fgm {

/// One site-local coordinator-visible event produced during speculation.
struct LocalEvent {
  int64_t pos = 0;     ///< global position of the record within the window
  int32_t site = 0;    ///< shard that produced the event
  int64_t weight = 0;  ///< contribution towards SpeculationBudget()
  double value = 0.0;  ///< protocol payload (e.g. φ(X_i) for a violation)
};

/// One shard's recorded post-update values for a speculation window,
/// aligned with the shard's window records in stream order.
struct ValueSeries {
  const double* values = nullptr;
  int64_t count = 0;
};

class ShardedProtocol {
 public:
  virtual ~ShardedProtocol() = default;

  /// Number of shards (= sites); records route by StreamRecord::site.
  virtual int shard_count() const = 0;

  /// Merged event weight that triggers the next coordinator interaction,
  /// given the CURRENT protocol state. Always >= 1. FGM: k - c + 1 counter
  /// steps; GM: 1 (the first violation).
  virtual int64_t SpeculationBudget() const = 0;

  /// Site-local processing of one record of shard `record.site`. Returns
  /// the event weight (0 = no event); `*value` receives the event payload.
  /// Thread-safe across DIFFERENT shards.
  virtual int64_t LocalProcess(const StreamRecord& record, double* value) = 0;

  /// Batched LocalProcess over one shard's window records: processes
  /// base[positions[j]] for j in [0, n) in order, appending any events
  /// (with their global positions) to `events`, and stops early once the
  /// shard's OWN accumulated event weight reaches `budget`. Returns the
  /// number of records processed. The default loops LocalProcess;
  /// protocols override it to amortize the sketch-projection mapping over
  /// the whole batch. Thread-safe across DIFFERENT shards.
  virtual int64_t LocalProcessBatch(const StreamRecord* base,
                                    const int64_t* positions, int64_t n,
                                    int64_t budget, int32_t shard,
                                    std::vector<LocalEvent>* events) {
    int64_t own_weight = 0;
    int64_t processed = 0;
    for (int64_t j = 0; j < n; ++j) {
      double value = 0.0;
      const int64_t w = LocalProcess(base[positions[j]], &value);
      ++processed;
      if (w > 0) {
        events->push_back(LocalEvent{positions[j], shard, w, value});
        own_weight += w;
        if (own_weight >= budget) break;
      }
    }
    return processed;
  }

  /// Accounts `count` records as globally processed (coordinator-side
  /// bookkeeping such as FGM's total update counter). Called before the
  /// corresponding CommitEvent calls, coordinator thread only.
  virtual void CommitRecords(int64_t count) = 0;

  /// Performs the coordinator side of one event, exactly as the serial
  /// protocol would (transport traffic, traces, counters). Returns true
  /// when the event triggered a coordinator interaction that changed site
  /// state (poll / rebalance / round change) — every speculative result
  /// past this event's position is then stale. Coordinator thread only.
  virtual bool CommitEvent(const LocalEvent& event) = 0;

  /// Snapshots / restores shard-local state, bit-exactly. RestoreCheckpoint
  /// consumes the checkpoint (at most one restore per save).
  virtual void SaveCheckpoint(int shard) = 0;
  virtual void RestoreCheckpoint(int shard) = 0;

  /// False when the protocol's commit path is not replay-safe — e.g. FGM
  /// over a simulated network, where the event queue advances with every
  /// record and speculation would reorder deliveries. The runner falls
  /// back to serial execution.
  virtual bool SupportsSpeculation() const { return true; }

  // --- Value-series hooks (see the header comment). Optional; only
  // consulted when SupportsSpeculation() is true. ---

  /// True when the protocol's event rule is scalar in the recorded
  /// post-update value, so the runner may use SpeculateShard +
  /// CommitValueSeries instead of the event/barrier path.
  virtual bool SupportsValueSeries() const { return false; }

  /// Worker-side batched speculation for one shard: processes
  /// base[positions[j]] for j in [0, n) in order and writes each record's
  /// post-update value into values[j]. Never evaluates the event rule —
  /// that is CommitValueSeries' job. Thread-safe across DIFFERENT shards.
  virtual void SpeculateShard(int shard, const StreamRecord* base,
                              const int64_t* positions, int64_t n,
                              double* values) {
    (void)shard, (void)base, (void)positions, (void)n, (void)values;
  }

  /// Coordinator-side commit of a speculated window in global stream
  /// order: site_by_pos[p] names the shard of window position p and
  /// series[shard] holds that shard's recorded values (consumed in
  /// order). The protocol advances its committed scalar state — event
  /// rule, traffic, traces, record accounting — bit-identically to the
  /// serial run, and calls materialize(p) immediately before any
  /// interaction that must read true site drift state (rebalance, round
  /// end); the callee rebuilds every shard's drift as of position p.
  /// Returns the number of records committed: `count` when the window
  /// completed (possibly crossing several subrounds softly), else the
  /// position just past the materialized interaction.
  /// `*soft_interactions` (may be null) accumulates the soft coordinator
  /// interactions committed inside the window.
  ///
  /// With `fast_merge` the bit-identity contract is relaxed (see
  /// DESIGN.md §5h): the whole window always commits (returns `count`),
  /// coordinator interactions run on live end-of-window site state
  /// without materialization, and event detection for values recorded
  /// after an interaction is deferred to the next window (sound, because
  /// the event rules are cumulative).
  virtual int64_t CommitValueSeries(
      const int32_t* site_by_pos, int64_t count, const ValueSeries* series,
      const std::function<void(int64_t)>& materialize, bool fast_merge,
      int64_t* soft_interactions) {
    (void)site_by_pos, (void)count, (void)series, (void)materialize;
    (void)fast_merge, (void)soft_interactions;
    return 0;
  }
};

}  // namespace fgm

#endif  // FGM_EXEC_SHARDED_H_
