// Sharded-execution interface of the monitoring protocols.
//
// Between coordinator interactions the k sites of a geometric-monitoring
// protocol are completely independent: each one folds its own records
// into its drift and only *sometimes* produces a coordinator-visible
// event (an FGM counter increment, a GM safe-zone violation). A protocol
// that implements ShardedProtocol splits its per-record work into
//
//   LocalProcess  — the site-local part; called concurrently, one thread
//                   per shard (site), NEVER for the same shard from two
//                   threads at once. Must not touch coordinator state,
//                   the transport, or the trace.
//   CommitEvent   — the coordinator part; called by one thread, in the
//                   exact global stream order, and performs the message
//                   traffic / trace emission / counter arithmetic of the
//                   serial protocol word for word.
//
// plus checkpoint hooks that let the ParallelRunner speculate: sites run
// ahead in parallel, the runner merges their events by stream position,
// finds the first position where the accumulated event weight reaches
// SpeculationBudget() (the barrier — the point where the serial protocol
// would have entered the coordinator), rolls overshooting shards back to
// their checkpoints and replays them up to the barrier. Replay from a
// bit-exact checkpoint applies the same floating-point operations in the
// same order, so the committed run is bit-identical to the serial one.

#ifndef FGM_EXEC_SHARDED_H_
#define FGM_EXEC_SHARDED_H_

#include <cstdint>

#include "stream/record.h"

namespace fgm {

/// One site-local coordinator-visible event produced during speculation.
struct LocalEvent {
  int64_t pos = 0;     ///< global position of the record within the window
  int32_t site = 0;    ///< shard that produced the event
  int64_t weight = 0;  ///< contribution towards SpeculationBudget()
  double value = 0.0;  ///< protocol payload (e.g. φ(X_i) for a violation)
};

class ShardedProtocol {
 public:
  virtual ~ShardedProtocol() = default;

  /// Number of shards (= sites); records route by StreamRecord::site.
  virtual int shard_count() const = 0;

  /// Merged event weight that triggers the next coordinator interaction,
  /// given the CURRENT protocol state. Always >= 1. FGM: k - c + 1 counter
  /// steps; GM: 1 (the first violation).
  virtual int64_t SpeculationBudget() const = 0;

  /// Site-local processing of one record of shard `record.site`. Returns
  /// the event weight (0 = no event); `*value` receives the event payload.
  /// Thread-safe across DIFFERENT shards.
  virtual int64_t LocalProcess(const StreamRecord& record, double* value) = 0;

  /// Accounts `count` records as globally processed (coordinator-side
  /// bookkeeping such as FGM's total update counter). Called before the
  /// corresponding CommitEvent calls, coordinator thread only.
  virtual void CommitRecords(int64_t count) = 0;

  /// Performs the coordinator side of one event, exactly as the serial
  /// protocol would (transport traffic, traces, counters). Returns true
  /// when the event triggered a coordinator interaction that changed site
  /// state (poll / rebalance / round change) — every speculative result
  /// past this event's position is then stale. Coordinator thread only.
  virtual bool CommitEvent(const LocalEvent& event) = 0;

  /// Snapshots / restores shard-local state, bit-exactly. RestoreCheckpoint
  /// consumes the checkpoint (at most one restore per save).
  virtual void SaveCheckpoint(int shard) = 0;
  virtual void RestoreCheckpoint(int shard) = 0;

  /// False when the protocol's commit path is not replay-safe — e.g. FGM
  /// over a simulated network, where the event queue advances with every
  /// record and speculation would reorder deliveries. The runner falls
  /// back to serial execution.
  virtual bool SupportsSpeculation() const { return true; }
};

}  // namespace fgm

#endif  // FGM_EXEC_SHARDED_H_
