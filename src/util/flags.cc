#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace fgm {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

int64_t Flags::GetCount(const std::string& name,
                        int64_t default_value) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + " expects an integer, got \"" +
                      it->second + "\"");
    return default_value;
  }
  if (value < 0) {
    errors_.push_back("--" + name + " must be non-negative, got " +
                      it->second);
    return default_value;
  }
  return value;
}

bool Flags::Validate(const char* usage) const {
  std::vector<std::string> problems = errors_;
  for (const std::string& name : Unparsed()) {
    problems.push_back("unknown flag --" + name);
  }
  if (problems.empty()) return true;
  for (const std::string& p : problems) {
    std::fprintf(stderr, "%s\n", p.c_str());
  }
  if (usage != nullptr && usage[0] != '\0') {
    std::fprintf(stderr, "usage: %s\n", usage);
  }
  return false;
}

std::vector<std::string> Flags::Unparsed() const {
  std::vector<std::string> result;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!read_.count(name)) result.push_back(name);
  }
  return result;
}

}  // namespace fgm
