// Small statistics accumulators used by protocol metrics and tests.

#ifndef FGM_UTIL_STATS_H_
#define FGM_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace fgm {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over nonnegative integers (e.g. subround counts).
class CountHistogram {
 public:
  explicit CountHistogram(int max_value = 32);

  void Add(int64_t value);

  int64_t total() const { return total_; }
  int64_t CountAt(int64_t value) const;
  int64_t max_observed() const { return max_observed_; }
  /// Index of the overflow bucket; every value >= this is aggregated there.
  int64_t bucket_limit() const {
    return static_cast<int64_t>(buckets_.size()) - 1;
  }
  double Mean() const;
  /// Smallest v such that at least `q` fraction of samples are <= v and at
  /// least one sample is <= v; Quantile(0.0) is the minimum observed
  /// bucket (not bucket 0 when no sample landed there).
  int64_t Quantile(double q) const;

 private:
  std::vector<int64_t> buckets_;  // last bucket is overflow
  int64_t total_ = 0;
  int64_t sum_ = 0;
  int64_t max_observed_ = 0;
};

}  // namespace fgm

#endif  // FGM_UTIL_STATS_H_
