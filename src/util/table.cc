#include "util/table.h"

#include <algorithm>
#include <cinttypes>

#include "util/check.h"

namespace fgm {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  FGM_CHECK(!columns_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  FGM_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string TablePrinter::Cell(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::fputs("|", out);
    for (size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, " %-*s |", static_cast<int>(widths[c]),
                   cells[c].c_str());
    }
    std::fputs("\n", out);
  };
  auto print_rule = [&]() {
    std::fputs("+", out);
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
      std::fputc('+', out);
    }
    std::fputs("\n", out);
  };
  print_rule();
  print_row(columns_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) std::fputc(',', out);
      std::fputs(cells[c].c_str(), out);
    }
    std::fputc('\n', out);
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(const std::string& title, std::FILE* out) {
  std::fprintf(out, "\n== %s ==\n", title.c_str());
}

}  // namespace fgm
