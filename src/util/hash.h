// k-wise independent hash families over the Mersenne prime 2^61 - 1.
//
// Fast-AGMS sketches need a pairwise-independent bucket hash and a 4-wise
// independent ±1 sign hash per row (Cormode & Garofalakis, VLDB'05). Both
// are provided by PolyHash, a degree-(k-1) polynomial with random
// coefficients evaluated modulo p = 2^61 - 1.

#ifndef FGM_UTIL_HASH_H_
#define FGM_UTIL_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace fgm {

class Xoshiro256ss;

/// Degree-(Degree) polynomial hash over GF(2^61 - 1); a polynomial with
/// Degree+1 random coefficients gives a (Degree+1)-wise independent family.
template <int Degree>
class PolyHash {
 public:
  static constexpr uint64_t kMersennePrime = (uint64_t{1} << 61) - 1;

  PolyHash() : coeff_{} {}

  /// Draws random coefficients in [0, p); the leading coefficient is made
  /// nonzero so the polynomial has full degree.
  explicit PolyHash(Xoshiro256ss& rng);

  /// Evaluates the polynomial at `x` modulo 2^61 - 1. Result in [0, p).
  uint64_t operator()(uint64_t x) const {
    uint64_t acc = coeff_[Degree];
    const uint64_t xm = Mod(x);
    for (int i = Degree - 1; i >= 0; --i) {
      acc = AddMod(MulMod(acc, xm), coeff_[static_cast<size_t>(i)]);
    }
    return acc;
  }

  static uint64_t Mod(uint64_t x) {
    uint64_t r = (x & kMersennePrime) + (x >> 61);
    if (r >= kMersennePrime) r -= kMersennePrime;
    return r;
  }

  static uint64_t AddMod(uint64_t a, uint64_t b) {
    uint64_t r = a + b;  // < 2^62, no overflow
    if (r >= kMersennePrime) r -= kMersennePrime;
    return r;
  }

  static uint64_t MulMod(uint64_t a, uint64_t b) {
    const __uint128_t prod = static_cast<__uint128_t>(a) * b;
    const uint64_t lo = static_cast<uint64_t>(prod) & kMersennePrime;
    const uint64_t hi = static_cast<uint64_t>(prod >> 61);
    return AddMod(lo, Mod(hi));
  }

 private:
  std::array<uint64_t, Degree + 1> coeff_;
};

/// Pairwise-independent hash (degree-1 polynomial).
using PairwiseHash = PolyHash<1>;

/// 4-wise independent hash (degree-3 polynomial).
using FourwiseHash = PolyHash<3>;

/// Pairwise-independent hash into [0, buckets).
class BucketHash {
 public:
  BucketHash() : buckets_(1) {}
  BucketHash(Xoshiro256ss& rng, uint32_t buckets);

  uint32_t buckets() const { return buckets_; }

  uint32_t operator()(uint64_t x) const {
    return static_cast<uint32_t>(hash_(x) % buckets_);
  }

 private:
  PairwiseHash hash_;
  uint32_t buckets_;
};

/// 4-wise independent ±1 hash, as required for AGMS variance bounds.
class SignHash {
 public:
  SignHash() = default;
  explicit SignHash(Xoshiro256ss& rng) : hash_(rng) {}

  int operator()(uint64_t x) const { return (hash_(x) & 1) ? +1 : -1; }

 private:
  FourwiseHash hash_;
};

/// A fast non-cryptographic 64-bit mixer (SplitMix64 finalizer); used for
/// deterministic site re-partitioning, not for sketch guarantees.
uint64_t MixHash64(uint64_t x);

}  // namespace fgm

#endif  // FGM_UTIL_HASH_H_
