#include "util/subsets.h"

#include "util/check.h"

namespace fgm {

int64_t BinomialCoefficient(int n, int m) {
  if (m < 0 || m > n) return 0;
  if (m > n - m) m = n - m;
  int64_t result = 1;
  for (int i = 1; i <= m; ++i) {
    result = result * (n - m + i) / i;
  }
  return result;
}

std::vector<std::vector<int>> EnumerateSubsets(int n, int m,
                                               int64_t max_count) {
  FGM_CHECK_GE(n, 0);
  FGM_CHECK_GE(m, 0);
  FGM_CHECK_LE(m, n);
  FGM_CHECK_LE(BinomialCoefficient(n, m), max_count);

  std::vector<std::vector<int>> result;
  std::vector<int> current(static_cast<size_t>(m));
  // Standard iterative combination enumeration.
  for (int i = 0; i < m; ++i) current[static_cast<size_t>(i)] = i;
  if (m == 0) {
    result.push_back({});
    return result;
  }
  while (true) {
    result.push_back(current);
    // Find rightmost index that can be incremented.
    int i = m - 1;
    while (i >= 0 && current[static_cast<size_t>(i)] == n - m + i) --i;
    if (i < 0) break;
    ++current[static_cast<size_t>(i)];
    for (int j = i + 1; j < m; ++j) {
      current[static_cast<size_t>(j)] = current[static_cast<size_t>(j - 1)] + 1;
    }
  }
  return result;
}

}  // namespace fgm
