// Minimal command-line flag parsing for examples and benchmark binaries.
//
// Accepts `--name=value` and `--name value` forms plus bare `--name` for
// booleans. Unknown flags are collected and reported by Unparsed() so
// binaries can reject typos.

#ifndef FGM_UTIL_FLAGS_H_
#define FGM_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fgm {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;

  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names that were provided but never read through a getter.
  std::vector<std::string> Unparsed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace fgm

#endif  // FGM_UTIL_FLAGS_H_
