// Minimal command-line flag parsing for examples and benchmark binaries.
//
// Accepts `--name=value` and `--name value` forms plus bare `--name` for
// booleans. Unknown flags are collected and reported by Unparsed() so
// binaries can reject typos; count-like options read through GetCount()
// reject negative or non-numeric values, and Validate() turns either
// problem into a usage message on stderr.

#ifndef FGM_UTIL_FLAGS_H_
#define FGM_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fgm {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;

  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Like GetInt, but for count-like options where a negative (or
  /// non-numeric) value is a usage error: the bad value is recorded and
  /// surfaced by Validate(), and the default is returned in its place.
  int64_t GetCount(const std::string& name, int64_t default_value) const;

  /// True when every provided flag was consumed by a getter and every
  /// GetCount value was valid. Otherwise prints one line per problem
  /// (unknown flag / bad value) followed by `usage` to stderr and
  /// returns false; callers exit with a usage error.
  bool Validate(const char* usage) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names that were provided but never read through a getter.
  std::vector<std::string> Unparsed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  mutable std::vector<std::string> errors_;
  std::vector<std::string> positional_;
};

}  // namespace fgm

#endif  // FGM_UTIL_FLAGS_H_
