// Enumeration of fixed-size subsets (combinations).
//
// The weighted-median safe-zone composition (Garofalakis & Samoladas,
// ICDT'17) maximizes over all m-subsets of the "good" sketch rows. The
// number of rows d is small (typically 5–9), so explicit enumeration is
// both exact and fast.

#ifndef FGM_UTIL_SUBSETS_H_
#define FGM_UTIL_SUBSETS_H_

#include <cstdint>
#include <vector>

namespace fgm {

/// Returns all m-subsets of {0, ..., n-1} in lexicographic order.
/// Checked to keep the total count below `max_count` (default guards
/// against accidental exponential blowups).
std::vector<std::vector<int>> EnumerateSubsets(int n, int m,
                                               int64_t max_count = 1 << 20);

/// C(n, m) with overflow care for the small arguments used here.
int64_t BinomialCoefficient(int n, int m);

}  // namespace fgm

#endif  // FGM_UTIL_SUBSETS_H_
