#include "util/stats.h"

#include <cmath>

#include "util/check.h"

namespace fgm {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

CountHistogram::CountHistogram(int max_value)
    : buckets_(static_cast<size_t>(max_value) + 2, 0) {
  FGM_CHECK_GE(max_value, 0);
}

void CountHistogram::Add(int64_t value) {
  FGM_CHECK_GE(value, 0);
  const size_t overflow = buckets_.size() - 1;
  const size_t idx =
      value < static_cast<int64_t>(overflow) ? static_cast<size_t>(value)
                                             : overflow;
  ++buckets_[idx];
  ++total_;
  sum_ += value;
  if (value > max_observed_) max_observed_ = value;
}

int64_t CountHistogram::CountAt(int64_t value) const {
  if (value < 0 || value >= static_cast<int64_t>(buckets_.size())) return 0;
  return buckets_[static_cast<size_t>(value)];
}

double CountHistogram::Mean() const {
  return total_ > 0 ? static_cast<double>(sum_) / static_cast<double>(total_)
                    : 0.0;
}

int64_t CountHistogram::Quantile(double q) const {
  FGM_CHECK_GE(q, 0.0);
  FGM_CHECK_LE(q, 1.0);
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  int64_t seen = 0;
  for (size_t v = 0; v < buckets_.size(); ++v) {
    seen += buckets_[v];
    // `seen > 0` keeps q = 0 (target = 0) from answering an empty prefix:
    // the 0-quantile is the minimum observed bucket.
    if (seen > 0 && static_cast<double>(seen) >= target) {
      return static_cast<int64_t>(v);
    }
  }
  return static_cast<int64_t>(buckets_.size() - 1);
}

}  // namespace fgm
