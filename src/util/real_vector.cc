#include "util/real_vector.h"

#include <algorithm>
#include <cmath>

namespace fgm {

void RealVector::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void RealVector::ResetDim(size_t dim) {
  data_.assign(dim, 0.0);
}

RealVector& RealVector::operator+=(const RealVector& other) {
  FGM_CHECK_EQ(dim(), other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

RealVector& RealVector::operator-=(const RealVector& other) {
  FGM_CHECK_EQ(dim(), other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

RealVector& RealVector::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

void RealVector::Axpy(double alpha, const RealVector& other) {
  FGM_CHECK_EQ(dim(), other.dim());
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

double RealVector::Dot(const RealVector& other) const {
  FGM_CHECK_EQ(dim(), other.dim());
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) acc += data_[i] * other.data_[i];
  return acc;
}

double RealVector::SquaredNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return acc;
}

double RealVector::Norm() const { return std::sqrt(SquaredNorm()); }

double RealVector::LpNorm(double p) const {
  FGM_CHECK_GE(p, 1.0);
  if (p == 2.0) return Norm();
  if (p == 1.0) {
    double acc = 0.0;
    for (double x : data_) acc += std::fabs(x);
    return acc;
  }
  double acc = 0.0;
  for (double x : data_) acc += std::pow(std::fabs(x), p);
  return std::pow(acc, 1.0 / p);
}

double RealVector::Sum() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double Distance(const RealVector& a, const RealVector& b) {
  FGM_CHECK_EQ(a.dim(), b.dim());
  double acc = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace fgm
