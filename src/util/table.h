// Fixed-width table printing for experiment output.
//
// Every benchmark binary prints the rows/series of the paper table or
// figure it reproduces; TablePrinter keeps that output aligned and easy to
// diff or paste into plotting tools (also emits CSV on request).

#ifndef FGM_UTIL_TABLE_H_
#define FGM_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace fgm {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  /// Appends a row; the number of cells must match the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.4g and ints with %lld.
  static std::string Cell(double v);
  static std::string Cell(int64_t v);
  static std::string Cell(const std::string& v) { return v; }

  /// Prints an aligned, boxed table to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  /// Prints comma-separated values (header + rows).
  void PrintCsv(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner, e.g. "== Figure 2: ... ==".
void PrintBanner(const std::string& title, std::FILE* out = stdout);

}  // namespace fgm

#endif  // FGM_UTIL_TABLE_H_
