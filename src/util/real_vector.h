// Dense real vector used for stream states, drifts and sketch contents.
//
// RealVector is a thin, bounds-checked wrapper over contiguous doubles with
// the linear-algebra kernels the monitoring protocols need (dot products,
// norms, axpy). Dimensions are fixed at construction; mixing dimensions is
// a checked error.

#ifndef FGM_UTIL_REAL_VECTOR_H_
#define FGM_UTIL_REAL_VECTOR_H_

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace fgm {

class RealVector {
 public:
  RealVector() = default;
  explicit RealVector(size_t dim) : data_(dim, 0.0) {}
  RealVector(std::initializer_list<double> init) : data_(init) {}
  explicit RealVector(std::vector<double> data) : data_(std::move(data)) {}

  RealVector(const RealVector&) = default;
  RealVector& operator=(const RealVector&) = default;
  RealVector(RealVector&&) = default;
  RealVector& operator=(RealVector&&) = default;

  size_t dim() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const {
    FGM_DCHECK(i < data_.size());
    return data_[i];
  }
  double& operator[](size_t i) {
    FGM_DCHECK(i < data_.size());
    return data_[i];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  const std::vector<double>& values() const { return data_; }

  /// Sets every coordinate to zero.
  void SetZero();

  /// Resizes to `dim` and zeroes all coordinates.
  void ResetDim(size_t dim);

  RealVector& operator+=(const RealVector& other);
  RealVector& operator-=(const RealVector& other);
  RealVector& operator*=(double scalar);

  /// this += alpha * other.
  void Axpy(double alpha, const RealVector& other);

  double Dot(const RealVector& other) const;
  double SquaredNorm() const;
  double Norm() const;

  /// ℓp norm for p >= 1 (p may be fractional); p == 2 uses the fast path.
  double LpNorm(double p) const;

  /// Sum of coordinates.
  double Sum() const;

  friend RealVector operator+(RealVector a, const RealVector& b) {
    a += b;
    return a;
  }
  friend RealVector operator-(RealVector a, const RealVector& b) {
    a -= b;
    return a;
  }
  friend RealVector operator*(double s, RealVector v) {
    v *= s;
    return v;
  }

 private:
  std::vector<double> data_;
};

/// Euclidean distance between two equal-dimension vectors.
double Distance(const RealVector& a, const RealVector& b);

}  // namespace fgm

#endif  // FGM_UTIL_REAL_VECTOR_H_
