#include "util/hash.h"

#include "util/check.h"
#include "util/rng.h"

namespace fgm {

template <int Degree>
PolyHash<Degree>::PolyHash(Xoshiro256ss& rng) {
  for (auto& c : coeff_) c = rng.NextBounded(kMersennePrime);
  // A zero leading coefficient would lower the degree of independence.
  while (coeff_[Degree] == 0) coeff_[Degree] = rng.NextBounded(kMersennePrime);
}

template class PolyHash<1>;
template class PolyHash<3>;

BucketHash::BucketHash(Xoshiro256ss& rng, uint32_t buckets)
    : hash_(rng), buckets_(buckets) {
  FGM_CHECK(buckets >= 1);
}

uint64_t MixHash64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace fgm
