// Deterministic pseudo-random generation for workloads and tests.
//
// Provides:
//  * Xoshiro256ss — a fast, high-quality 64-bit PRNG usable as a C++
//    UniformRandomBitGenerator.
//  * ZipfDistribution — Zipf(s) over {1..n} with O(1) amortized sampling
//    (rejection-inversion, Hörmann & Derflinger).
//  * Small helpers for uniform doubles/ints and exponential variates.
//
// All generators are explicitly seeded; the library never uses global or
// time-dependent randomness, so every experiment is reproducible.

#ifndef FGM_UTIL_RNG_H_
#define FGM_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace fgm {

/// xoshiro256** by Blackman & Vigna (public domain reference
/// implementation), adapted as a UniformRandomBitGenerator.
class Xoshiro256ss {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit lanes from `seed` using SplitMix64, which is the
  /// seeding procedure recommended by the xoshiro authors.
  explicit Xoshiro256ss(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Exponential variate with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Forks an independent generator (jump via reseeding with a drawn value).
  Xoshiro256ss Fork();

 private:
  uint64_t s_[4];
};

/// Zipf distribution over {1, ..., n} with exponent s > 0:
/// P(X = i) ∝ i^{-s}. Uses rejection-inversion sampling so construction is
/// O(1) and sampling is O(1) expected, independent of n.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// Draws one sample in [1, n].
  uint64_t Sample(Xoshiro256ss& rng) const;

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;  // s_ applied to x = 1.5 boundary helper
};

/// Draws `k` nonnegative weights following a power law with exponent
/// `alpha` (weight of rank r ∝ r^{-alpha}), normalized to sum to 1.
/// Used to model skewed per-site stream rates.
std::vector<double> PowerLawWeights(int k, double alpha);

}  // namespace fgm

#endif  // FGM_UTIL_RNG_H_
