#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace fgm {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro256ss::Xoshiro256ss(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
}

Xoshiro256ss::result_type Xoshiro256ss::operator()() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro256ss::NextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

uint64_t Xoshiro256ss::NextBounded(uint64_t bound) {
  FGM_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>((*this)()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Xoshiro256ss::NextInt(int64_t lo, int64_t hi) {
  FGM_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Xoshiro256ss::NextExponential(double rate) {
  FGM_DCHECK(rate > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Xoshiro256ss::NextGaussian() {
  double u, v, q;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    q = u * u + v * v;
  } while (q >= 1.0 || q == 0.0);
  return u * std::sqrt(-2.0 * std::log(q) / q);
}

Xoshiro256ss Xoshiro256ss::Fork() { return Xoshiro256ss((*this)()); }

// ---------------------------------------------------------------------------
// ZipfDistribution: rejection-inversion (Hörmann & Derflinger 1996).
// H(x) = ((x)^{1-s} - 1) / (1-s) for s != 1, log(x) for s == 1, is a
// monotone envelope of the discrete Zipf CDF; we invert it and reject.
// ---------------------------------------------------------------------------

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  FGM_CHECK(n >= 1);
  FGM_CHECK(s > 0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

double ZipfDistribution::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfDistribution::Sample(Xoshiro256ss& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= threshold_ ||
        u >= H(static_cast<double>(k) + 0.5) -
                 std::pow(static_cast<double>(k), -s_)) {
      return k;
    }
  }
}

std::vector<double> PowerLawWeights(int k, double alpha) {
  FGM_CHECK(k >= 1);
  std::vector<double> w(static_cast<size_t>(k));
  double total = 0.0;
  for (int r = 0; r < k; ++r) {
    w[static_cast<size_t>(r)] = std::pow(static_cast<double>(r + 1), -alpha);
    total += w[static_cast<size_t>(r)];
  }
  for (double& x : w) x /= total;
  return w;
}

}  // namespace fgm
