// Lightweight CHECK macros for invariant enforcement.
//
// The library does not use exceptions (per the project style); programming
// errors and violated invariants abort with a diagnostic instead.

#ifndef FGM_UTIL_CHECK_H_
#define FGM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fgm {
namespace internal_check {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "FGM_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace fgm

// Always-on invariant check.
#define FGM_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) {                                               \
      ::fgm::internal_check::CheckFail(__FILE__, __LINE__, #expr); \
    }                                                            \
  } while (false)

// Binary comparison checks, printing both operand texts.
#define FGM_CHECK_OP(a, op, b) FGM_CHECK((a)op(b))
#define FGM_CHECK_EQ(a, b) FGM_CHECK_OP(a, ==, b)
#define FGM_CHECK_NE(a, b) FGM_CHECK_OP(a, !=, b)
#define FGM_CHECK_LT(a, b) FGM_CHECK_OP(a, <, b)
#define FGM_CHECK_LE(a, b) FGM_CHECK_OP(a, <=, b)
#define FGM_CHECK_GT(a, b) FGM_CHECK_OP(a, >, b)
#define FGM_CHECK_GE(a, b) FGM_CHECK_OP(a, >=, b)

// Debug-only check; compiled out in NDEBUG builds (hot paths).
#ifdef NDEBUG
#define FGM_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define FGM_DCHECK(expr) FGM_CHECK(expr)
#endif

#endif  // FGM_UTIL_CHECK_H_
