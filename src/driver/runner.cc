#include "driver/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>

#include "baseline/central.h"
#include "core/fgm_config.h"
#include "exec/parallel_runner.h"
#include "query/quantile.h"
#include "query/variance.h"
#include "core/fgm_protocol.h"
#include "gm/gm_protocol.h"
#include "hier/hier_protocol.h"
#include "hier/topology.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "stream/window.h"
#include "util/check.h"

namespace fgm {

namespace {
volatile std::sig_atomic_t g_stop_requested = 0;
void StopSignalHandler(int) { g_stop_requested = 1; }
}  // namespace

void RequestStop() { g_stop_requested = 1; }
bool StopRequested() { return g_stop_requested != 0; }
void ClearStop() { g_stop_requested = 0; }

void InstallSignalFlush() {
  std::signal(SIGINT, StopSignalHandler);
  std::signal(SIGTERM, StopSignalHandler);
}

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kCentral:
      return "CENTRAL";
    case ProtocolKind::kGm:
      return "GM";
    case ProtocolKind::kFgmBasic:
      return "FGM-basic";
    case ProtocolKind::kFgm:
      return "FGM";
    case ProtocolKind::kFgmOpt:
      return "FGM/O";
  }
  return "?";
}

std::unique_ptr<ContinuousQuery> MakeQuery(const RunConfig& config) {
  switch (config.query) {
    case QueryKind::kSelfJoin: {
      auto projection = std::make_shared<const AgmsProjection>(
          config.depth, config.width, config.sketch_seed);
      return std::make_unique<SelfJoinQuery>(projection, config.epsilon,
                                             config.threshold_floor);
    }
    case QueryKind::kJoin: {
      auto projection = std::make_shared<const AgmsProjection>(
          config.depth, config.width, config.sketch_seed);
      return std::make_unique<JoinQuery>(projection, config.epsilon,
                                         config.threshold_floor);
    }
    case QueryKind::kFpNorm: {
      const auto mode = config.fp_two_sided
                            ? FpNormQuery::Mode::kTwoSided
                            : FpNormQuery::Mode::kMonotoneUpper;
      return std::make_unique<FpNormQuery>(config.fp_dimension, config.fp_p,
                                           config.epsilon, mode,
                                           config.threshold_floor);
    }
    case QueryKind::kVariance:
      return std::make_unique<VarianceQuery>(config.epsilon);
    case QueryKind::kQuantile:
      return std::make_unique<QuantileQuery>(config.quantile_buckets,
                                             config.quantile_phi,
                                             config.epsilon);
  }
  FGM_CHECK(false);
  return nullptr;
}

std::unique_ptr<MonitoringProtocol> MakeProtocol(
    const RunConfig& config, const ContinuousQuery* query) {
  // kAuto still honours the FGM_STRICT_WIRE environment variable.
  const TransportMode mode = config.strict_wire ? TransportMode::kSerializing
                                                : TransportMode::kAuto;
  if (!config.topology.empty()) {
    hier::TreeTopology topo;
    std::string error;
    if (!hier::TreeTopology::Parse(config.topology, config.sites, &topo,
                                   &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      FGM_CHECK(false);
    }
    if (!topo.IsFlat()) {
      // Deep tree: aggregators run the subround protocol over their
      // children, which only the FGM family has. GM/CENTRAL reject.
      FGM_CHECK(config.protocol == ProtocolKind::kFgmBasic ||
                config.protocol == ProtocolKind::kFgm ||
                config.protocol == ProtocolKind::kFgmOpt);
      FgmConfig fgm;
      fgm.transport = mode;
      fgm.net = config.net;
      fgm.rebalance = config.protocol != ProtocolKind::kFgmBasic;
      fgm.optimizer = config.protocol == ProtocolKind::kFgmOpt;
      fgm.trace = config.trace;
      fgm.metrics = config.metrics;
      fgm.spans = config.spans;
      fgm.span_wire = config.span_wire;
      fgm.health = config.health;
      fgm.health_planning = config.health_planning;
      return std::make_unique<HierFgmProtocol>(query, topo, fgm);
    }
    // Depth-1 tree (fanout >= sites): exactly the flat star — fall
    // through to the flat constructors so the run is byte-identical.
  }
  switch (config.protocol) {
    case ProtocolKind::kCentral:
      return std::make_unique<CentralProtocol>(query, config.sites, mode,
                                               config.trace, config.metrics,
                                               config.net);
    case ProtocolKind::kGm: {
      GmConfig gm;
      gm.transport = mode;
      gm.net = config.net;
      gm.trace = config.trace;
      gm.metrics = config.metrics;
      return std::make_unique<GmProtocol>(query, config.sites, gm);
    }
    case ProtocolKind::kFgmBasic: {
      FgmConfig fgm;
      fgm.transport = mode;
      fgm.net = config.net;
      fgm.rebalance = false;
      fgm.trace = config.trace;
      fgm.metrics = config.metrics;
      fgm.timeseries = config.timeseries;
      fgm.spans = config.spans;
      fgm.span_wire = config.span_wire;
      fgm.health = config.health;
      fgm.health_planning = config.health_planning;
      return std::make_unique<FgmProtocol>(query, config.sites, fgm);
    }
    case ProtocolKind::kFgm: {
      FgmConfig fgm;
      fgm.transport = mode;
      fgm.net = config.net;
      fgm.trace = config.trace;
      fgm.metrics = config.metrics;
      fgm.timeseries = config.timeseries;
      fgm.spans = config.spans;
      fgm.span_wire = config.span_wire;
      fgm.health = config.health;
      fgm.health_planning = config.health_planning;
      return std::make_unique<FgmProtocol>(query, config.sites, fgm);
    }
    case ProtocolKind::kFgmOpt: {
      FgmConfig fgm;
      fgm.transport = mode;
      fgm.net = config.net;
      fgm.optimizer = true;
      fgm.trace = config.trace;
      fgm.metrics = config.metrics;
      fgm.timeseries = config.timeseries;
      fgm.spans = config.spans;
      fgm.span_wire = config.span_wire;
      fgm.health = config.health;
      fgm.health_planning = config.health_planning;
      return std::make_unique<FgmProtocol>(query, config.sites, fgm);
    }
  }
  FGM_CHECK(false);
  return nullptr;
}

namespace {

/// JSON run summary: RunResult + traffic breakdown + the metrics registry.
void WriteMetricsFile(const std::string& path, const RunConfig& config,
                      const RunResult& result,
                      const MetricsRegistry& registry) {
  JsonWriter w;
  w.BeginObject();
  w.Key("run");
  w.BeginObject();
  w.Field("protocol", result.protocol_name);
  w.Field("query", result.query_name);
  w.Field("sites", static_cast<int64_t>(config.sites));
  w.Field("strict_wire", config.strict_wire);
  w.Field("events", result.events);
  w.Field("rounds", result.rounds);
  w.Field("subrounds", result.subrounds);
  w.Field("rebalances", result.rebalances);
  w.Field("overflow_rounds", result.overflow_rounds);
  w.Field("mean_full_function_fraction", result.mean_full_function_fraction);
  w.Field("comm_cost", result.comm_cost);
  w.Field("upstream_fraction", result.upstream_fraction);
  w.Field("total_words", result.traffic.total_words());
  w.Field("upstream_words", result.traffic.upstream_words);
  w.Field("downstream_words", result.traffic.downstream_words);
  w.Field("upstream_messages", result.traffic.upstream_messages);
  w.Field("downstream_messages", result.traffic.downstream_messages);
  w.Field("max_violation", result.max_violation);
  w.Field("checks", result.checks);
  w.Field("final_estimate", result.final_estimate);
  w.Field("final_truth", result.final_truth);
  w.Field("wall_seconds", result.wall_seconds);
  w.Field("threads", static_cast<int64_t>(result.threads_used));
  w.Field("parallel_windows", result.parallel_windows);
  w.Field("parallel_barriers", result.parallel_barriers);
  w.Field("replayed_records", result.replayed_records);
  if (!result.topology.empty()) w.Field("topology", result.topology);
  w.EndObject();
  if (!result.tier_traffic.empty()) {
    // Tree-topology runs: per-link-tier traffic, root-side first. Tier 0
    // repeats the headline totals above (the root link is what scales);
    // deeper tiers show the fan-out the aggregators absorbed.
    w.Key("tiers");
    w.BeginArray();
    for (size_t t = 0; t < result.tier_traffic.size(); ++t) {
      const TrafficStats& s = result.tier_traffic[t];
      w.BeginObject();
      w.Field("tier", static_cast<int64_t>(t));
      w.Field("upstream_words", s.upstream_words);
      w.Field("downstream_words", s.downstream_words);
      w.Field("upstream_messages", s.upstream_messages);
      w.Field("downstream_messages", s.downstream_messages);
      w.EndObject();
    }
    w.EndArray();
  }
  if (result.net_enabled) {
    // Only simulated-network runs carry this section, so synchronous
    // summaries stay byte-identical to earlier versions.
    w.Key("net");
    w.BeginObject();
    w.Field("delivered_msgs", result.net.delivered_msgs);
    w.Field("delivered_words", result.net.delivered_words);
    w.Field("dropped_msgs", result.net.dropped_msgs);
    w.Field("dropped_words", result.net.dropped_words);
    w.Field("retransmitted_msgs", result.net.retransmitted_msgs);
    w.Field("retransmitted_words", result.net.retransmitted_words);
    w.Field("stale_msgs", result.net.stale_msgs);
    w.Field("timeouts", result.net.timeouts);
    w.Field("resyncs", result.net.resyncs);
    w.Field("site_downs", result.net.site_downs);
    w.Field("max_in_flight_words", result.net.max_in_flight_words);
    w.Field("final_tick", result.net.final_tick);
    w.EndObject();
  }
  w.Key("words_by_kind");
  w.BeginObject();
  for (size_t i = 0; i < result.traffic.words_by_kind.size(); ++i) {
    w.Field(MsgKindName(static_cast<MsgKind>(i)),
            result.traffic.words_by_kind[i]);
  }
  w.EndObject();
  w.Key("metrics");
  registry.WriteJson(&w);
  w.EndObject();

  std::FILE* f = std::fopen(path.c_str(), "w");
  FGM_CHECK(f != nullptr);
  const std::string text = w.Take();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

RunResult Run(const RunConfig& base_config,
              const std::vector<StreamRecord>& trace) {
  const auto start = std::chrono::steady_clock::now();

  RunConfig config = base_config;
  std::unique_ptr<JsonlTraceSink> file_sink;
  if (config.trace == nullptr && !config.trace_out.empty()) {
    file_sink = std::make_unique<JsonlTraceSink>(config.trace_out);
    config.trace = file_sink.get();
  }
  std::unique_ptr<MetricsRegistry> own_metrics;
  if (config.metrics == nullptr && !config.metrics_out.empty()) {
    own_metrics = std::make_unique<MetricsRegistry>();
    config.metrics = own_metrics.get();
  }
  std::unique_ptr<TimeSeries> own_timeseries;
  if (config.timeseries == nullptr && !config.timeseries_out.empty()) {
    own_timeseries = std::make_unique<TimeSeries>(static_cast<size_t>(
        std::max<int64_t>(config.timeseries_capacity, 1)));
    config.timeseries = own_timeseries.get();
  }

  std::unique_ptr<SpanSink> own_spans;
  if (config.spans == nullptr && !config.spans_out.empty()) {
    own_spans = std::make_unique<SpanSink>();
    config.spans = own_spans.get();
  }
  std::unique_ptr<HealthMonitor> own_health;
  if (config.health == nullptr &&
      (!config.prom_out.empty() || !config.live_out.empty() ||
       config.health_planning)) {
    own_health = std::make_unique<HealthMonitor>(config.sites);
    config.health = own_health.get();
  }
  // The run span must be open before the protocol's constructor starts
  // its first round (round spans parent to it); an event-network
  // transport rebases it onto the simulated clock during construction.
  if (config.spans != nullptr) {
    config.spans->Begin(SpanKind::kRun, -1, 0, 0,
                        ProtocolKindName(config.protocol));
  }

  // Tree topologies: the RunStart announces the spec and carries k = the
  // root's fan-in (its effective site count) so the replay checker
  // certifies the root tier with the flat invariants; flat runs (and
  // depth-1 trees, which ARE the flat star) keep the historic schema.
  hier::TreeTopology topo;
  bool deep_tree = false;
  if (!config.topology.empty()) {
    std::string topo_error;
    if (!hier::TreeTopology::Parse(config.topology, config.sites, &topo,
                                   &topo_error)) {
      std::fprintf(stderr, "%s\n", topo_error.c_str());
      FGM_CHECK(false);
    }
    deep_tree = !topo.IsFlat();
  }

  // RunStart precedes the protocol's own events (its constructor already
  // starts the first round).
  if (config.trace != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kRunStart;
    e.label = ProtocolKindName(config.protocol);
    if (deep_tree) {
      e.k = topo.NodesAt(1);
      e.reason = topo.spec().c_str();
      e.counter = topo.leaves();
    } else {
      e.k = config.sites;
    }
    config.trace->Emit(e);
  }

  std::unique_ptr<ContinuousQuery> query = MakeQuery(config);
  std::unique_ptr<MonitoringProtocol> protocol =
      MakeProtocol(config, query.get());

  // Exact ground-truth state, maintained only when verification is on.
  const bool verify = config.check_every > 0;
  RealVector truth(query->dimension());
  const double inv_k = 1.0 / static_cast<double>(config.sites);
  std::vector<CellUpdate> deltas;

  RunResult result;
  result.protocol_name = protocol->name();
  result.query_name = query->name();

  SlidingWindowStream time_events(&trace, config.window_seconds);
  CountWindowStream count_events(&trace,
                                 std::max<int64_t>(config.count_window, 1));
  const bool use_count = config.count_window > 0;
  auto next_event = [&]() {
    return use_count ? count_events.Next() : time_events.Next();
  };
  int64_t n = 0;
  auto verify_record = [&](const StreamRecord& rec) {
    deltas.clear();
    query->MapRecord(rec, &deltas);
    for (const CellUpdate& u : deltas) truth[u.index] += inv_k * u.delta;
    if (n % config.check_every == 0 && protocol->BoundsCertified()) {
      const double q = query->Evaluate(truth);
      const ThresholdPair t = protocol->CurrentThresholds();
      const double margin = std::max(0.5 * (t.hi - t.lo), 1e-12);
      const double overshoot =
          std::max(std::max(q - t.hi, t.lo - q), 0.0) / margin;
      result.max_violation = std::max(result.max_violation, overshoot);
      ++result.checks;
    }
  };

  // Interval snapshots and the stderr heartbeat. Both run at their own
  // cadence outside the protocol's record path; in parallel mode the
  // chunking below aligns to the snapshot boundary so the series is
  // bit-identical for every thread count.
  FgmProtocol* fgm_proto = dynamic_cast<FgmProtocol*>(protocol.get());
  HierFgmProtocol* hier_proto = dynamic_cast<HierFgmProtocol*>(protocol.get());
  const int64_t snap_every = config.snapshot_every;
  const bool sample = config.timeseries != nullptr && snap_every > 0;
  auto interval_snapshot = [&](int64_t records) {
    static_assert(kSnapshotMsgKinds == static_cast<int>(MsgKind::kKindCount),
                  "RunSnapshot's kind slots must cover every MsgKind");
    RunSnapshot s;
    s.kind = "interval";
    s.records = records;
    s.round = protocol->rounds();
    const TrafficStats& t = protocol->traffic();
    s.total_words = t.total_words();
    for (size_t i = 0; i < s.words_by_kind.size(); ++i) {
      s.words_by_kind[i] = t.words_by_kind[i];
    }
    if (fgm_proto != nullptr) {
      s.psi = fgm_proto->last_psi();
      s.theta = fgm_proto->last_quantum();
      s.lambda = fgm_proto->current_lambda();
      s.subrounds = fgm_proto->subrounds_this_round();
      s.total_subrounds = fgm_proto->subrounds();
    } else if (hier_proto != nullptr) {
      s.psi = hier_proto->last_psi();
      s.theta = hier_proto->last_quantum();
      s.lambda = hier_proto->current_lambda();
      s.subrounds = hier_proto->subrounds_this_round();
      s.total_subrounds = hier_proto->subrounds();
    }
    if (const sim::SimNetStats* ns = protocol->net_stats()) {
      s.in_flight_words = ns->in_flight_words;
      s.max_in_flight_words = ns->max_in_flight_words;
      s.retransmit_words = ns->retransmitted_words;
      s.dropped_words = ns->dropped_words;
      s.resyncs = ns->resyncs;
    }
    config.timeseries->Record(s);
  };
  // Live health export: an atomic Prometheus exposition rewrite plus one
  // flushed JSONL heartbeat line every live_every records, and once more
  // at run end — a scraper (or a tail -f) watches the run move.
  HealthMonitor* health = config.health;
  std::FILE* live_file = nullptr;
  if (health != nullptr && !config.live_out.empty()) {
    live_file = std::fopen(config.live_out.c_str(), "w");
    FGM_CHECK(live_file != nullptr);
  }
  const int64_t live_every = std::max<int64_t>(config.live_every, 1);
  const bool live =
      health != nullptr && (!config.prom_out.empty() || live_file != nullptr);
  auto live_emit = [&](int64_t records) {
    const int64_t total_sub =
        fgm_proto != nullptr
            ? fgm_proto->subrounds()
            : (hier_proto != nullptr ? hier_proto->subrounds() : 0);
    const double psi =
        fgm_proto != nullptr
            ? fgm_proto->last_psi()
            : (hier_proto != nullptr ? hier_proto->last_psi() : 0.0);
    health->ObserveProgress(records, protocol->rounds(), total_sub, records);
    const int64_t words = protocol->traffic().total_words();
    if (!config.prom_out.empty()) {
      health->WritePrometheus(config.prom_out, records, protocol->rounds(),
                              words, psi);
    }
    if (live_file != nullptr) {
      const std::string line =
          health->HeartbeatJson(records, protocol->rounds(), words, psi);
      std::fwrite(line.data(), 1, line.size(), live_file);
      std::fputc('\n', live_file);
      std::fflush(live_file);
    }
  };

  // Cooperative stop (signal or die_at): the loops below exit at the next
  // record/chunk boundary and fall through to the normal end-of-run write
  // path, so a killed run still emits its partial telemetry.
  const int64_t die_at = config.die_at;
  auto should_stop = [&]() {
    return StopRequested() || (die_at > 0 && n >= die_at);
  };

  const int64_t progress = config.progress_every;
  auto progress_emit = [&](int64_t records) {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double rate =
        secs > 0.0 ? static_cast<double>(records) / secs : 0.0;
    if (fgm_proto != nullptr || hier_proto != nullptr) {
      std::fprintf(stderr,
                   "[fgm] %lld records  %.0f rec/s  round %lld  psi %.6g\n",
                   static_cast<long long>(records), rate,
                   static_cast<long long>(protocol->rounds()),
                   fgm_proto != nullptr ? fgm_proto->last_psi()
                                        : hier_proto->last_psi());
    } else {
      std::fprintf(stderr, "[fgm] %lld records  %.0f rec/s  round %lld\n",
                   static_cast<long long>(records), rate,
                   static_cast<long long>(protocol->rounds()));
    }
  };

  ShardedProtocol* sharded =
      config.threads > 1 ? dynamic_cast<ShardedProtocol*>(protocol.get())
                         : nullptr;
  if (sharded != nullptr && !sharded->SupportsSpeculation()) {
    // Simulated-network runs advance a global event clock per record;
    // speculative replay would deliver messages twice. Fall back to the
    // serial reference loop.
    std::fprintf(stderr,
                 "[fgm] %s does not support speculation here "
                 "(simulated network); running serial\n",
                 result.protocol_name.c_str());
    sharded = nullptr;
  }
  if (sharded != nullptr) {
    ParallelRunnerOptions opts;
    opts.threads = config.threads;
    opts.fast_merge = config.fast_merge;
    opts.metrics = config.metrics;
    opts.spans = config.spans;
    ParallelRunner par(sharded, opts);
    std::vector<StreamRecord> chunk;
    // Matches ParallelRunnerOptions::max_horizon, so the adaptive horizon
    // can actually reach its ceiling in quiet phases.
    constexpr int64_t kChunkCap = 65536;
    bool exhausted = false;
    while (!exhausted) {
      chunk.clear();
      // Chunks never straddle a verification or snapshot boundary, so
      // every check and interval sample observes the protocol exactly
      // where the serial loop would.
      int64_t limit = kChunkCap;
      if (verify) {
        limit = std::min(limit,
                         config.check_every - (n % config.check_every));
      }
      if (sample) {
        limit = std::min(limit, snap_every - (n % snap_every));
      }
      if (live) {
        limit = std::min(limit, live_every - (n % live_every));
      }
      if (die_at > 0) {
        limit = std::min(limit, die_at - n);
      }
      if (limit <= 0) break;
      while (static_cast<int64_t>(chunk.size()) < limit) {
        const StreamRecord* rec = next_event();
        if (rec == nullptr) {
          exhausted = true;
          break;
        }
        chunk.push_back(*rec);
      }
      if (chunk.empty()) break;
      const int64_t chunk_start = n;
      par.Process(chunk.data(), static_cast<int64_t>(chunk.size()));
      for (const StreamRecord& rec : chunk) {
        ++n;
        if (verify) verify_record(rec);
      }
      if (sample && n % snap_every == 0) interval_snapshot(n);
      if (live && n % live_every == 0) {
        health->ObserveSpeculation(n, par.wasted_records());
        live_emit(n);
      }
      if (progress > 0 && n / progress != chunk_start / progress) {
        progress_emit(n);
      }
      if (should_stop()) break;
    }
    par.PublishThreadStats();
    result.threads_used = par.threads();
    result.parallel_windows = par.windows();
    result.parallel_barriers = par.barriers();
    result.replayed_records = par.replayed_records();
    result.wasted_records = par.wasted_records();
    result.soft_commits = par.soft_commits();
  } else {
    while (const StreamRecord* rec = next_event()) {
      protocol->ProcessRecord(*rec);
      ++n;
      if (verify) verify_record(*rec);
      if (sample && n % snap_every == 0) interval_snapshot(n);
      if (live && n % live_every == 0) live_emit(n);
      if (progress > 0 && n % progress == 0) progress_emit(n);
      if (should_stop()) break;
    }
  }
  result.stopped_early = should_stop();

  // Let the simulated network land every in-flight message (and the
  // protocol apply it) before totals are read; no-op on synchronous
  // transports.
  protocol->Finish();

  // Every scope still open (run, trailing round/subround) closes at the
  // latest timestamp seen — a finished run exports no dangling spans.
  if (config.spans != nullptr) config.spans->CloseAll("run-end");

  // Final live export with the end-of-run totals; even a run shorter than
  // live_every leaves a complete Prometheus exposition and one heartbeat.
  if (live) live_emit(n);
  if (live_file != nullptr) std::fclose(live_file);

  result.events = n;
  result.traffic = protocol->traffic();
  result.rounds = protocol->rounds();
  result.comm_cost =
      n > 0 ? static_cast<double>(result.traffic.total_words()) /
                  static_cast<double>(n)
            : 0.0;
  result.upstream_fraction = result.traffic.upstream_fraction();
  result.final_estimate = protocol->Estimate();
  if (verify) result.final_truth = query->Evaluate(truth);

  if (auto* fgm = dynamic_cast<FgmProtocol*>(protocol.get())) {
    result.subrounds = fgm->subrounds();
    result.rebalances = fgm->rebalances();
    result.overflow_rounds = fgm->overflow_rounds();
    result.mean_full_function_fraction = fgm->mean_full_function_fraction();
  } else if (hier_proto != nullptr) {
    result.subrounds = hier_proto->subrounds();
    result.rebalances = hier_proto->rebalances();
    result.overflow_rounds = hier_proto->overflow_rounds();
    result.mean_full_function_fraction =
        hier_proto->mean_full_function_fraction();
    result.topology = hier_proto->topology().spec();
    result.local_polls = hier_proto->local_polls();
    for (int t = 0; t < hier_proto->tiers(); ++t) {
      result.tier_traffic.push_back(hier_proto->tier_traffic(t));
    }
  }
  if (const sim::SimNetStats* ns = protocol->net_stats()) {
    result.net_enabled = true;
    result.net = *ns;
  }
  if (health != nullptr) {
    result.alerts_raised = health->alerts_raised();
    result.alerts_cleared = health->alerts_cleared();
  }

  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();

  if (config.trace != nullptr) {
    // Final totals; the replay checker bit-matches them against the sum
    // of the individual MsgSent events.
    TraceEvent e;
    e.kind = TraceEventKind::kRunEnd;
    e.count = config.trace->events();
    e.up_words = result.traffic.upstream_words;
    e.down_words = result.traffic.downstream_words;
    e.up_msgs = result.traffic.upstream_messages;
    e.down_msgs = result.traffic.downstream_messages;
    config.trace->Emit(e);
  }
  if (config.metrics != nullptr) {
    MetricsRegistry* m = config.metrics;
    m->GetCounter("events")->Add(result.events);
    m->GetCounter("rounds")->Add(result.rounds);
    m->GetCounter("subrounds")->Add(result.subrounds);
    m->GetCounter("rebalances")->Add(result.rebalances);
    m->GetCounter("total_words")->Add(result.traffic.total_words());
    m->GetGauge("comm_cost")->Set(result.comm_cost);
    m->GetGauge("upstream_fraction")->Set(result.upstream_fraction);
    const CountHistogram* h = nullptr;
    if (auto* fgm = dynamic_cast<FgmProtocol*>(protocol.get())) {
      h = &fgm->subrounds_per_round();
    } else if (hier_proto != nullptr) {
      h = &hier_proto->subrounds_per_round();
    }
    if (h != nullptr) {
      CountHistogram* out = m->GetHistogram("subrounds_per_round");
      for (int64_t v = 0; v <= h->bucket_limit(); ++v) {
        for (int64_t c = 0; c < h->CountAt(v); ++c) out->Add(v);
      }
    }
  }
  if (!config.metrics_out.empty() && config.metrics != nullptr) {
    WriteMetricsFile(config.metrics_out, config, result, *config.metrics);
  }
  if (!config.timeseries_out.empty() && config.timeseries != nullptr) {
    config.timeseries->WriteFile(config.timeseries_out);
  }
  if (!config.spans_out.empty() && config.spans != nullptr) {
    config.spans->WriteChromeTrace(config.spans_out);
  }
  return result;
}

}  // namespace fgm
