#include "driver/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "baseline/central.h"
#include "core/fgm_config.h"
#include "query/quantile.h"
#include "query/variance.h"
#include "core/fgm_protocol.h"
#include "gm/gm_protocol.h"
#include "stream/window.h"
#include "util/check.h"

namespace fgm {

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kCentral:
      return "CENTRAL";
    case ProtocolKind::kGm:
      return "GM";
    case ProtocolKind::kFgmBasic:
      return "FGM-basic";
    case ProtocolKind::kFgm:
      return "FGM";
    case ProtocolKind::kFgmOpt:
      return "FGM/O";
  }
  return "?";
}

std::unique_ptr<ContinuousQuery> MakeQuery(const RunConfig& config) {
  switch (config.query) {
    case QueryKind::kSelfJoin: {
      auto projection = std::make_shared<const AgmsProjection>(
          config.depth, config.width, config.sketch_seed);
      return std::make_unique<SelfJoinQuery>(projection, config.epsilon,
                                             config.threshold_floor);
    }
    case QueryKind::kJoin: {
      auto projection = std::make_shared<const AgmsProjection>(
          config.depth, config.width, config.sketch_seed);
      return std::make_unique<JoinQuery>(projection, config.epsilon,
                                         config.threshold_floor);
    }
    case QueryKind::kFpNorm: {
      const auto mode = config.fp_two_sided
                            ? FpNormQuery::Mode::kTwoSided
                            : FpNormQuery::Mode::kMonotoneUpper;
      return std::make_unique<FpNormQuery>(config.fp_dimension, config.fp_p,
                                           config.epsilon, mode,
                                           config.threshold_floor);
    }
    case QueryKind::kVariance:
      return std::make_unique<VarianceQuery>(config.epsilon);
    case QueryKind::kQuantile:
      return std::make_unique<QuantileQuery>(config.quantile_buckets,
                                             config.quantile_phi,
                                             config.epsilon);
  }
  FGM_CHECK(false);
  return nullptr;
}

std::unique_ptr<MonitoringProtocol> MakeProtocol(
    const RunConfig& config, const ContinuousQuery* query) {
  // kAuto still honours the FGM_STRICT_WIRE environment variable.
  const TransportMode mode = config.strict_wire ? TransportMode::kSerializing
                                                : TransportMode::kAuto;
  switch (config.protocol) {
    case ProtocolKind::kCentral:
      return std::make_unique<CentralProtocol>(query, config.sites, mode);
    case ProtocolKind::kGm: {
      GmConfig gm;
      gm.transport = mode;
      return std::make_unique<GmProtocol>(query, config.sites, gm);
    }
    case ProtocolKind::kFgmBasic: {
      FgmConfig fgm;
      fgm.transport = mode;
      fgm.rebalance = false;
      return std::make_unique<FgmProtocol>(query, config.sites, fgm);
    }
    case ProtocolKind::kFgm: {
      FgmConfig fgm;
      fgm.transport = mode;
      return std::make_unique<FgmProtocol>(query, config.sites, fgm);
    }
    case ProtocolKind::kFgmOpt: {
      FgmConfig fgm;
      fgm.transport = mode;
      fgm.optimizer = true;
      return std::make_unique<FgmProtocol>(query, config.sites, fgm);
    }
  }
  FGM_CHECK(false);
  return nullptr;
}

RunResult Run(const RunConfig& config,
              const std::vector<StreamRecord>& trace) {
  const auto start = std::chrono::steady_clock::now();

  std::unique_ptr<ContinuousQuery> query = MakeQuery(config);
  std::unique_ptr<MonitoringProtocol> protocol =
      MakeProtocol(config, query.get());

  // Exact ground-truth state, maintained only when verification is on.
  const bool verify = config.check_every > 0;
  RealVector truth(query->dimension());
  const double inv_k = 1.0 / static_cast<double>(config.sites);
  std::vector<CellUpdate> deltas;

  RunResult result;
  result.protocol_name = protocol->name();
  result.query_name = query->name();

  SlidingWindowStream time_events(&trace, config.window_seconds);
  CountWindowStream count_events(&trace,
                                 std::max<int64_t>(config.count_window, 1));
  const bool use_count = config.count_window > 0;
  auto next_event = [&]() {
    return use_count ? count_events.Next() : time_events.Next();
  };
  int64_t n = 0;
  while (const StreamRecord* rec = next_event()) {
    protocol->ProcessRecord(*rec);
    ++n;
    if (verify) {
      deltas.clear();
      query->MapRecord(*rec, &deltas);
      for (const CellUpdate& u : deltas) truth[u.index] += inv_k * u.delta;
      if (n % config.check_every == 0 && protocol->BoundsCertified()) {
        const double q = query->Evaluate(truth);
        const ThresholdPair t = protocol->CurrentThresholds();
        const double margin = std::max(0.5 * (t.hi - t.lo), 1e-12);
        const double overshoot =
            std::max(std::max(q - t.hi, t.lo - q), 0.0) / margin;
        result.max_violation = std::max(result.max_violation, overshoot);
        ++result.checks;
      }
    }
  }

  result.events = n;
  result.traffic = protocol->traffic();
  result.rounds = protocol->rounds();
  result.comm_cost =
      n > 0 ? static_cast<double>(result.traffic.total_words()) /
                  static_cast<double>(n)
            : 0.0;
  result.upstream_fraction = result.traffic.upstream_fraction();
  result.final_estimate = protocol->Estimate();
  if (verify) result.final_truth = query->Evaluate(truth);

  if (auto* fgm = dynamic_cast<FgmProtocol*>(protocol.get())) {
    result.subrounds = fgm->subrounds();
    result.rebalances = fgm->rebalances();
    result.overflow_rounds = fgm->overflow_rounds();
    result.mean_full_function_fraction = fgm->mean_full_function_fraction();
  }

  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace fgm
