// Single-experiment driver with machine-readable observability export.
//
//   ./build/src/driver/runner --protocol=fgm --query=selfjoin
//       [--sites=27] [--updates=400000] [--eps=0.1] [--window=14400]
//       [--count_window=0] [--depth=5] [--width=300] [--check_every=5000]
//       [--threads=1] [--trace_out=trace.jsonl]
//       [--metrics_out=metrics.json] [--timeseries_out=ts.json]
//       [--spans_out=spans.json] [--span_wire]
//       [--snapshot_every=0] [--timeseries_cap=4096] [--progress=0]
//       [--strict_wire]
//       [--net_latency=fixed:4] [--net_drop=0.1] [--net_seed=N]
//       [--fault_plan="crash:site=2,at=50000,rejoin=80000"]
//       [--net_bandwidth=0] [--net_reorder=0] [--net_timeout=64]
//       [--net_silence=256] [--net_deadline=4096]
//       [--topology=tree:4] [--topology=tree:8,4]
//
// --topology=tree:F arranges the sites under aggregator tiers of fanout
// F (src/hier); tree:F with F >= sites IS the flat star and runs
// byte-identically to the default. Deep trees need an FGM-family
// protocol; fault-plan site indices then address tier-1 aggregators.
//
// --threads > 1 runs the sharded parallel engine (exec/); traffic,
// traces, results and time series are bit-identical to --threads=1.
// --fast_merge opts into the relaxed merge (no checkpoints/replay):
// deterministic for a fixed stream, but traffic statistics may differ
// slightly from serial — cross-check with tools/fgm_report.
//
// --net_latency / --net_drop / --fault_plan run the protocol over the
// discrete-event network simulator (src/sim): per-link latency
// ("0", "fixed:T", "uniform:A-B", "exp:M"), iid message loss,
// scheduled crash/outage windows ("crash:site=S,at=T[,rejoin=T2]" /
// "outage:site=S,from=A,to=B", ';'-separated). --net_latency=0 is the
// simulator's null mode, bit-identical to the synchronous path. Fault
// plans require an FGM protocol. Simulated runs force --threads=1.
//
// --spans_out writes causal spans (obs/span.h) as Chrome Trace Event
// JSON loadable in Perfetto; --span_wire additionally charges (and, on
// serializing paths, encodes) the open span's id as one trailing word
// per message. Both default off; default traffic is bit-identical.
//
// --trace_out writes the structured JSONL event trace (obs/trace.h);
// --metrics_out writes a JSON summary of the RunResult plus the metrics
// registry; --timeseries_out writes the per-round run-health series
// (obs/timeseries.h), with extra interval samples every
// --snapshot_every records. --progress=N prints a stderr heartbeat
// every N records. tools/trace_check re-verifies a written trace
// offline; tools/fgm_report renders the trace+metrics+timeseries triple
// into a run report and cross-checks them against each other.

#include <cstdio>
#include <string>

#include "driver/runner.h"
#include "hier/topology.h"
#include "stream/worldcup.h"
#include "util/flags.h"

namespace {

bool ParseProtocol(const std::string& name, fgm::ProtocolKind* kind) {
  if (name == "central") *kind = fgm::ProtocolKind::kCentral;
  else if (name == "gm") *kind = fgm::ProtocolKind::kGm;
  else if (name == "fgm-basic") *kind = fgm::ProtocolKind::kFgmBasic;
  else if (name == "fgm") *kind = fgm::ProtocolKind::kFgm;
  else if (name == "fgm-o") *kind = fgm::ProtocolKind::kFgmOpt;
  else return false;
  return true;
}

bool ParseQuery(const std::string& name, fgm::QueryKind* kind) {
  if (name == "selfjoin") *kind = fgm::QueryKind::kSelfJoin;
  else if (name == "join") *kind = fgm::QueryKind::kJoin;
  else if (name == "fp") *kind = fgm::QueryKind::kFpNorm;
  else if (name == "variance") *kind = fgm::QueryKind::kVariance;
  else if (name == "quantile") *kind = fgm::QueryKind::kQuantile;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fgm::Flags flags(argc, argv);

  fgm::RunConfig config;
  const std::string protocol = flags.GetString("protocol", "fgm");
  const std::string query = flags.GetString("query", "selfjoin");
  if (!ParseProtocol(protocol, &config.protocol)) {
    std::fprintf(stderr,
                 "unknown --protocol=%s "
                 "(central|gm|fgm-basic|fgm|fgm-o)\n",
                 protocol.c_str());
    return 2;
  }
  if (!ParseQuery(query, &config.query)) {
    std::fprintf(stderr,
                 "unknown --query=%s "
                 "(selfjoin|join|fp|variance|quantile)\n",
                 query.c_str());
    return 2;
  }
  config.sites = static_cast<int>(flags.GetCount("sites", 27));
  config.topology = flags.GetString("topology", "");
  const int64_t updates = flags.GetCount("updates", 400000);
  config.epsilon = flags.GetDouble("eps", 0.1);
  config.window_seconds = flags.GetDouble("window", 14400.0);
  config.count_window = flags.GetCount("count_window", 0);
  config.depth = static_cast<int>(flags.GetCount("depth", 5));
  config.width = static_cast<int>(
      flags.GetCount("width", config.query == fgm::QueryKind::kJoin ? 150
                                                                    : 300));
  config.check_every = flags.GetCount("check_every", 5000);
  config.threads = static_cast<int>(flags.GetCount("threads", 1));
  config.fast_merge = flags.GetBool("fast_merge", false);
  config.trace_out = flags.GetString("trace_out", "");
  config.metrics_out = flags.GetString("metrics_out", "");
  config.timeseries_out = flags.GetString("timeseries_out", "");
  config.spans_out = flags.GetString("spans_out", "");
  config.span_wire = flags.GetBool("span_wire", false);
  config.snapshot_every = flags.GetCount("snapshot_every", 0);
  config.timeseries_capacity = flags.GetCount("timeseries_cap", 4096);
  config.progress_every = flags.GetCount("progress", 0);
  config.prom_out = flags.GetString("prom_out", "");
  config.live_out = flags.GetString("live_out", "");
  config.live_every = flags.GetCount("live_every", 20000);
  config.health_planning = flags.GetBool("health_plan", false);
  config.die_at = flags.GetCount("die_at", 0);
  config.strict_wire = flags.GetBool("strict_wire", false);
  config.net.latency = flags.GetString("net_latency", "");
  config.net.drop = flags.GetDouble("net_drop", 0.0);
  config.net.seed = static_cast<uint64_t>(
      flags.GetInt("net_seed", static_cast<int64_t>(config.net.seed)));
  config.net.fault_plan = flags.GetString("fault_plan", "");
  config.net.bandwidth = flags.GetCount("net_bandwidth", 0);
  config.net.reorder_window = flags.GetCount("net_reorder", 0);
  config.net.retransmit_timeout =
      flags.GetCount("net_timeout", config.net.retransmit_timeout);
  config.net.silence_timeout =
      flags.GetCount("net_silence", config.net.silence_timeout);
  config.net.dead_deadline =
      flags.GetCount("net_deadline", config.net.dead_deadline);

  if (!flags.Validate(
          "runner --protocol=central|gm|fgm-basic|fgm|fgm-o "
          "--query=selfjoin|join|fp|variance|quantile [--sites=N] "
          "[--updates=N] [--eps=E] [--window=S] [--count_window=N] "
          "[--depth=N] [--width=N] [--check_every=N] [--threads=N] "
          "[--fast_merge] "
          "[--trace_out=F] [--metrics_out=F] [--timeseries_out=F] "
          "[--spans_out=F] [--span_wire] "
          "[--snapshot_every=N] [--timeseries_cap=N] [--progress=N] "
          "[--prom_out=F] [--live_out=F] [--live_every=N] "
          "[--health_plan] [--die_at=N] "
          "[--strict_wire] [--net_latency=SPEC] [--net_drop=P] "
          "[--net_seed=N] [--fault_plan=PLAN] [--net_bandwidth=N] "
          "[--net_reorder=N] [--net_timeout=N] [--net_silence=N] "
          "[--net_deadline=N] [--topology=tree:F[,F2,…]]")) {
    return 2;
  }

  // Topology validation up front: parse errors and unsupported
  // protocol/topology combinations die here with a one-line message
  // instead of an FGM_CHECK deep inside the run.
  if (!config.topology.empty()) {
    fgm::hier::TreeTopology topo;
    std::string error;
    if (!fgm::hier::TreeTopology::Parse(config.topology, config.sites, &topo,
                                        &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    if (!topo.IsFlat() && (config.protocol == fgm::ProtocolKind::kCentral ||
                           config.protocol == fgm::ProtocolKind::kGm)) {
      std::fprintf(stderr,
                   "--topology=%s: %s has no subround protocol to run at "
                   "aggregators; deep trees need an FGM-family protocol\n",
                   config.topology.c_str(), protocol.c_str());
      return 2;
    }
  }

  fgm::WorldCupConfig wc;
  wc.sites = config.sites;
  wc.total_updates = updates;
  const auto trace = GenerateWorldCupTrace(wc);

  // A SIGINT/SIGTERM stops the run at the next record boundary and still
  // flushes every configured output with the partial data.
  fgm::InstallSignalFlush();

  const fgm::RunResult r = fgm::Run(config, trace);
  std::printf(
      "%s on %s: events=%lld rounds=%lld words=%lld "
      "comm_cost=%.4f upstream=%.1f%% overshoot=%.4g\n",
      r.protocol_name.c_str(), r.query_name.c_str(),
      static_cast<long long>(r.events), static_cast<long long>(r.rounds),
      static_cast<long long>(r.traffic.total_words()), r.comm_cost,
      100.0 * r.upstream_fraction, r.max_violation);
  if (r.threads_used > 1) {
    std::printf("parallel: threads=%d windows=%lld barriers=%lld "
                "replayed=%lld wasted=%lld soft=%lld%s\n",
                r.threads_used, static_cast<long long>(r.parallel_windows),
                static_cast<long long>(r.parallel_barriers),
                static_cast<long long>(r.replayed_records),
                static_cast<long long>(r.wasted_records),
                static_cast<long long>(r.soft_commits),
                config.fast_merge ? " fast_merge" : "");
  }
  if (r.net_enabled) {
    std::printf(
        "net: delivered=%lld dropped=%lld retransmitted=%lld stale=%lld "
        "timeouts=%lld resyncs=%lld site_downs=%lld max_in_flight=%lld "
        "final_tick=%lld\n",
        static_cast<long long>(r.net.delivered_msgs),
        static_cast<long long>(r.net.dropped_msgs),
        static_cast<long long>(r.net.retransmitted_msgs),
        static_cast<long long>(r.net.stale_msgs),
        static_cast<long long>(r.net.timeouts),
        static_cast<long long>(r.net.resyncs),
        static_cast<long long>(r.net.site_downs),
        static_cast<long long>(r.net.max_in_flight_words),
        static_cast<long long>(r.net.final_tick));
  }
  if (!r.topology.empty()) {
    std::printf("tree: %s tiers=%zu root_words=%lld local_polls=%lld\n",
                r.topology.c_str(), r.tier_traffic.size(),
                static_cast<long long>(r.traffic.total_words()),
                static_cast<long long>(r.local_polls));
    for (size_t t = 0; t < r.tier_traffic.size(); ++t) {
      const fgm::TrafficStats& s = r.tier_traffic[t];
      std::printf("  tier %zu: up_words=%lld down_words=%lld up_msgs=%lld "
                  "down_msgs=%lld\n",
                  t, static_cast<long long>(s.upstream_words),
                  static_cast<long long>(s.downstream_words),
                  static_cast<long long>(s.upstream_messages),
                  static_cast<long long>(s.downstream_messages));
    }
  }
  if (r.stopped_early) {
    std::printf("stopped early at %lld records; partial telemetry flushed\n",
                static_cast<long long>(r.events));
  }
  if (r.alerts_raised + r.alerts_cleared > 0) {
    std::printf("health: alerts_raised=%lld alerts_cleared=%lld\n",
                static_cast<long long>(r.alerts_raised),
                static_cast<long long>(r.alerts_cleared));
  }
  if (!config.trace_out.empty()) {
    std::printf("trace: %s\n", config.trace_out.c_str());
  }
  if (!config.metrics_out.empty()) {
    std::printf("metrics: %s\n", config.metrics_out.c_str());
  }
  if (!config.timeseries_out.empty()) {
    std::printf("timeseries: %s\n", config.timeseries_out.c_str());
  }
  if (!config.spans_out.empty()) {
    std::printf("spans: %s\n", config.spans_out.c_str());
  }
  if (!config.prom_out.empty()) {
    std::printf("prom: %s\n", config.prom_out.c_str());
  }
  if (!config.live_out.empty()) {
    std::printf("live: %s\n", config.live_out.c_str());
  }
  return 0;
}
