// Experiment runner: wires generator → sliding window → protocol, tracks
// exact ground truth for verification, and reports the paper's metrics.

#ifndef FGM_DRIVER_RUNNER_H_
#define FGM_DRIVER_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "query/query.h"
#include "sim/event_network.h"
#include "stream/record.h"

namespace fgm {

class HealthMonitor;
class MetricsRegistry;
class SpanSink;
class TimeSeries;
class TraceSink;

enum class ProtocolKind {
  kCentral,   ///< centralizing baseline (the cost normalizer)
  kGm,        ///< classic GM with safe zones + rebalancing
  kFgmBasic,  ///< FGM without rebalancing (§2.4 only; ablation)
  kFgm,       ///< FGM with rebalancing (§4.1) — the paper's "FGM"
  kFgmOpt,    ///< FGM with rebalancing + cost-based optimizer — "FGM/O"
};

const char* ProtocolKindName(ProtocolKind kind);

enum class QueryKind {
  kSelfJoin,  ///< Q1: R ⋈_CID R over one AGMS sketch
  kJoin,      ///< Q2: σ_HTML(R) ⋈_CID σ_≠HTML(R) over two sketches
  kFpNorm,    ///< ‖S‖_p of an explicit frequency vector (§3)
  kVariance,  ///< variance of a numeric attribute (classic GM workload)
  kQuantile,  ///< p-quantile of a numeric attribute (rank-linear zones)
};

struct RunConfig {
  ProtocolKind protocol = ProtocolKind::kFgm;
  QueryKind query = QueryKind::kSelfJoin;

  int sites = 27;

  /// Network topology spec (src/hier). Empty = the flat star. "tree:<f>"
  /// or "tree:<f1>,<f2>,…" arranges the `sites` leaves under aggregator
  /// tiers of the given fanouts; a spec whose first level already covers
  /// every site (fanout >= sites) IS the flat star and runs the flat
  /// protocol byte-identically. Deep trees require an FGM-family
  /// protocol; GM/CENTRAL have no subround machinery to compose and
  /// reject them. Fault-plan site indices address tier-1 aggregators.
  std::string topology;

  // Sketch geometry (D = depth*width for Q1, 2*depth*width for Q2).
  int depth = 7;
  int width = 500;
  uint64_t sketch_seed = 0xA65;

  // F_p query parameters.
  double fp_p = 2.0;
  size_t fp_dimension = 1024;
  bool fp_two_sided = true;

  double epsilon = 0.1;
  double threshold_floor = 1.0;

  // Quantile query parameters.
  double quantile_phi = 0.95;
  int quantile_buckets = 48;

  /// Sliding time window in seconds; <= 0 means cash-register model.
  double window_seconds = 0.0;

  /// Count-based sliding window (most recent N global records); takes
  /// precedence over window_seconds when > 0.
  int64_t count_window = 0;

  /// Verify the monitoring guarantee against exact ground truth every this
  /// many events (0 = never). Verification is O(D) per check.
  int64_t check_every = 0;

  /// Worker threads for the sharded execution engine (exec/). 1 = the
  /// serial reference loop. Results are bit-identical for every thread
  /// count; CENTRAL has no sharded implementation and always runs serial.
  int threads = 1;

  /// Relaxed parallel merge (exec/parallel_runner.h): trades bit-identity
  /// for commit throughput. Traffic statistics stay deterministic for a
  /// fixed stream but may differ from the serial run — verify with
  /// fgm_report. Only meaningful with threads > 1.
  bool fast_merge = false;

  /// Route every protocol message through the serializing transport, which
  /// encodes, size-checks, decodes and verifies each one (strict wire
  /// accounting). Off: the transport follows FGM_STRICT_WIRE.
  bool strict_wire = false;

  /// Simulated-network parameters (src/sim). When enabled() the protocol
  /// runs over the discrete-event network (which always serializes, so
  /// strict wire accounting is implied), speculation is disabled and the
  /// run falls back to the serial loop. Fault plans require an FGM
  /// protocol (GM/CENTRAL have no crash handshake and reject them).
  sim::NetSimConfig net;

  // ---- Observability (obs/) ----

  /// Write a JSONL event trace here (empty = off). Used only when `trace`
  /// is null; the run brackets the protocol's events with RunStart/RunEnd.
  std::string trace_out;

  /// Write a JSON summary (RunResult + metrics registry) here
  /// (empty = off). A private registry is created when `metrics` is null.
  std::string metrics_out;

  /// Write the run-health time series (obs/timeseries.h) here as JSON
  /// (empty = off). A private TimeSeries is created when `timeseries` is
  /// null. FGM protocols add one sample per completed round; the driver
  /// adds "interval" samples every snapshot_every records.
  std::string timeseries_out;

  /// Take an extra "interval" snapshot every this many records (0 = round
  /// boundaries only). In parallel mode chunks are aligned to this
  /// boundary, so samples land at identical record counts for every
  /// thread count and the series stays bit-identical.
  int64_t snapshot_every = 0;

  /// Ring-buffer capacity of the time series (oldest samples drop).
  int64_t timeseries_capacity = 4096;

  /// Print a stderr heartbeat every this many records (0 = silent):
  /// records processed, records/s, current round and ψ.
  int64_t progress_every = 0;

  /// Write causal spans (obs/span.h) here as Chrome Trace Event JSON,
  /// loadable in Perfetto (empty = off). A private SpanSink is created
  /// when `spans` is null. FGM protocols emit round/subround/RPC spans;
  /// the parallel engine adds per-window shard spans.
  std::string spans_out;

  /// Ship the innermost open span's id as one extra charged word on every
  /// wire message (FGM protocols only). Default traffic stays
  /// bit-identical with this off.
  bool span_wire = false;

  /// Write live Prometheus text-exposition snapshots here (empty = off).
  /// The file is atomically rewritten every live_every records and once
  /// more at run end, so a scraper always sees a complete exposition.
  /// Enables the health monitor.
  std::string prom_out;

  /// Stream JSONL health heartbeats here (empty = off): one line every
  /// live_every records, flushed immediately, plus a final line at run
  /// end. Enables the health monitor.
  std::string live_out;

  /// Cadence of the live exports above, in records. In parallel mode
  /// chunks align to this boundary so heartbeats land at identical record
  /// counts for every thread count.
  int64_t live_every = 20000;

  /// Health-aware FGM/O plan selection (FgmConfig::health_planning):
  /// plans from the monitor's EWMA rates and link-cost view once warmed
  /// up. Enables the health monitor. Off by default — default plans (and
  /// traffic) stay bit-identical.
  bool health_planning = false;

  /// Stop processing after this many records (0 = run to the end) and
  /// flush every configured output. Exercises the same partial-telemetry
  /// path a SIGINT/SIGTERM takes, deterministically (tests).
  int64_t die_at = 0;

  /// Caller-provided sinks (non-owning; take precedence over the paths
  /// above for event/metric collection).
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  TimeSeries* timeseries = nullptr;
  SpanSink* spans = nullptr;
  HealthMonitor* health = nullptr;
};

struct RunResult {
  std::string protocol_name;
  std::string query_name;
  TrafficStats traffic;
  int64_t rounds = 0;
  int64_t events = 0;  ///< inserts + window deletes fed to the protocol

  /// Words per streamed update: the paper's normalized "comm.cost"
  /// (the centralizing baseline costs exactly 1.0).
  double comm_cost = 0.0;
  double upstream_fraction = 0.0;

  /// Maximum observed overshoot of the certified bounds, as a fraction of
  /// the bound margin (0 = guarantee always held at check points).
  double max_violation = 0.0;
  int64_t checks = 0;

  double final_estimate = 0.0;
  double final_truth = 0.0;

  double wall_seconds = 0.0;

  // FGM-specific diagnostics (0 for other protocols).
  int64_t subrounds = 0;
  int64_t rebalances = 0;
  /// Rounds force-ended at the subround cap instead of aborting.
  int64_t overflow_rounds = 0;
  double mean_full_function_fraction = 0.0;

  // Parallel-runner diagnostics (zero on the serial path).
  int threads_used = 1;
  int64_t parallel_windows = 0;
  int64_t parallel_barriers = 0;
  int64_t replayed_records = 0;
  int64_t wasted_records = 0;
  int64_t soft_commits = 0;

  // Simulated-network diagnostics (all zero on synchronous transports).
  bool net_enabled = false;
  sim::SimNetStats net;

  // Tree-topology diagnostics (empty/zero on flat runs). `traffic` above
  // then covers the ROOT tier only — the scaling-relevant number; the
  // full per-link-tier breakdown (root-side first) is here.
  std::string topology;
  std::vector<TrafficStats> tier_traffic;
  int64_t local_polls = 0;  ///< aggregator-local subround polls

  // Health-monitor tallies (zero when the monitor is disabled).
  int64_t alerts_raised = 0;
  int64_t alerts_cleared = 0;

  /// True when the run was cut short by RequestStop() or die_at; every
  /// configured output was still flushed with the partial data.
  bool stopped_early = false;
};

/// Builds the query of `config` (the projection is shared and seeded from
/// the config, so all protocols in an experiment see the same sketch).
std::unique_ptr<ContinuousQuery> MakeQuery(const RunConfig& config);

/// Builds the protocol over `query`.
std::unique_ptr<MonitoringProtocol> MakeProtocol(const RunConfig& config,
                                                 const ContinuousQuery* query);

/// Runs one experiment over `trace` (already partitioned into
/// config.sites sites).
RunResult Run(const RunConfig& config, const std::vector<StreamRecord>& trace);

/// Cooperative stop: once set, Run() leaves its record loop at the next
/// safe boundary and flushes every configured output (trace, metrics,
/// time series, spans, Prometheus/live heartbeat) with the partial data.
/// Async-signal-safe; sticky until ClearStop().
void RequestStop();
bool StopRequested();
void ClearStop();

/// Installs SIGINT/SIGTERM handlers that call RequestStop(), so killed
/// runs still emit their partial telemetry through the normal end-of-run
/// write path.
void InstallSignalFlush();

}  // namespace fgm

#endif  // FGM_DRIVER_RUNNER_H_
