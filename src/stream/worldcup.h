// Synthetic WorldCup-like trace generator.
//
// The paper evaluates on day 46 of the WorldCup'98 web logs: 50.3M http
// requests received by 27 mirror sites. That trace is not redistributable
// here, so this generator synthesizes a trace with the properties the
// monitoring protocols are sensitive to (see DESIGN.md §3):
//
//  * k sites with power-law request rates (the real mirrors were highly
//    uneven);
//  * Zipf-distributed client ids (web request popularity is Zipfian);
//  * a realistic HTML/IMAGE/other type mix (the Arlitt & Jin study reports
//    images dominating with most remaining requests being HTML);
//  * a diurnal arrival-rate profile with superimposed bursts, producing
//    the stream variability the paper's "adverse conditions" experiments
//    rely on.
//
// Generation is fully deterministic given the seed.

#ifndef FGM_STREAM_WORLDCUP_H_
#define FGM_STREAM_WORLDCUP_H_

#include <cstdint>
#include <vector>

#include "stream/record.h"

namespace fgm {

struct WorldCupConfig {
  int sites = 27;                   ///< number of mirrors
  int64_t total_updates = 1000000;  ///< trace length in records
  double duration = 86400.0;        ///< trace duration in seconds (one day)
  uint64_t distinct_clients = 200000;
  double client_zipf_s = 1.1;       ///< client-popularity Zipf exponent
  double site_power_alpha = 1.0;    ///< per-site rate power-law exponent
  double diurnal_amplitude = 0.6;   ///< 0 = flat rate, <1 keeps rate positive
  int bursts = 12;                  ///< short high-rate bursts across the day
  double burst_intensity = 3.0;     ///< burst rate multiplier
  double html_fraction = 0.22;      ///< remaining mass mostly images
  double image_fraction = 0.66;
  uint64_t seed = 20190326;         ///< EDBT 2019 opening day
};

/// Generates the trace, sorted by arrival time.
std::vector<StreamRecord> GenerateWorldCupTrace(const WorldCupConfig& config);

/// Per-site record counts of a trace (diagnostics and tests).
std::vector<int64_t> SiteCounts(const std::vector<StreamRecord>& trace,
                                int sites);

}  // namespace fgm

#endif  // FGM_STREAM_WORLDCUP_H_
