#include "stream/drift_stream.h"

#include "util/check.h"
#include "util/rng.h"

namespace fgm {

std::vector<StreamRecord> GenerateDriftTrace(const DriftStreamConfig& config) {
  FGM_CHECK_GE(config.sites, 1);
  FGM_CHECK_GE(config.distinct_keys, 1u);
  Xoshiro256ss rng(config.seed);
  const ZipfDistribution keys(config.distinct_keys, config.zipf_s);

  std::vector<double> site_cdf;
  if (config.site_power_alpha > 0.0) {
    const std::vector<double> weights =
        PowerLawWeights(config.sites, config.site_power_alpha);
    double acc = 0.0;
    for (double w : weights) {
      acc += w;
      site_cdf.push_back(acc);
    }
  }

  std::vector<StreamRecord> trace;
  trace.reserve(static_cast<size_t>(config.total_updates));
  auto draw_site = [&]() {
    if (site_cdf.empty()) {
      return static_cast<int32_t>(
          rng.NextBounded(static_cast<uint64_t>(config.sites)));
    }
    const double u = rng.NextDouble();
    int s = 0;
    while (s + 1 < config.sites && site_cdf[static_cast<size_t>(s)] < u) {
      ++s;
    }
    return static_cast<int32_t>(s);
  };
  while (static_cast<int64_t>(trace.size()) < config.total_updates) {
    StreamRecord rec;
    rec.time = static_cast<double>(trace.size());
    rec.site = draw_site();
    rec.cid = (keys.Sample(rng) - 1 +
               static_cast<uint64_t>(rec.site) * config.site_key_rotation) %
              config.distinct_keys;
    rec.type = FileType::kHtml;
    rec.weight = 1.0;
    trace.push_back(rec);
    if (config.cancel_fraction > 0.0 &&
        rng.NextDouble() < config.cancel_fraction &&
        static_cast<int64_t>(trace.size()) < config.total_updates) {
      // Immediately delete the same key at a different site.
      StreamRecord del = rec;
      del.time = static_cast<double>(trace.size());
      if (config.sites > 1) {
        do {
          del.site = draw_site();
        } while (del.site == rec.site);
      }
      del.weight = -1.0;
      trace.push_back(del);
    }
  }
  return trace;
}

}  // namespace fgm
