// Constant-velocity stream generator (the "statistical inertia" setting
// of §4.1.3): updates are drawn IID from a fixed key distribution, so the
// global frequency vector moves with (approximately) constant velocity.
// Under this assumption the paper argues the FGM rebalancing protocol
// achieves round durations at least half of the ideal maximum.

#ifndef FGM_STREAM_DRIFT_STREAM_H_
#define FGM_STREAM_DRIFT_STREAM_H_

#include <cstdint>
#include <vector>

#include "stream/record.h"

namespace fgm {

struct DriftStreamConfig {
  int sites = 8;
  int64_t total_updates = 200000;
  uint64_t distinct_keys = 256;
  double zipf_s = 1.05;          ///< key popularity (fixed over time)
  double site_power_alpha = 0.0; ///< 0 = uniform site rates
  /// Per-site key rotation: site i maps key x to (x + i·rotation) mod
  /// distinct_keys. With rotation > 0 the *local* drift directions
  /// diverge (each site pushes its own rotated popularity vector) while
  /// the *global* velocity stays constant — the regime where rebalancing
  /// matters.
  uint64_t site_key_rotation = 0;
  /// Fraction of updates emitted as cancelling pairs: an insert of a key
  /// at one site immediately followed by its deletion at another. The
  /// pair moves both local drifts but leaves the global stream state
  /// untouched — the non-monotone regime where the basic protocol burns
  /// rounds on a stationary stream and rebalancing shines (§4.1).
  double cancel_fraction = 0.0;
  uint64_t seed = 0xD21F7;
};

/// Generates an insert-only trace whose frequency vector drifts along a
/// fixed direction (the Zipf popularity vector). Timestamps are evenly
/// spaced in [0, total_updates).
std::vector<StreamRecord> GenerateDriftTrace(const DriftStreamConfig& config);

}  // namespace fgm

#endif  // FGM_STREAM_DRIFT_STREAM_H_
