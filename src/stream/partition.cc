#include "stream/partition.h"

#include <algorithm>
#include <cstdint>

#include "stream/worldcup.h"
#include "util/check.h"
#include "util/hash.h"

namespace fgm {

std::vector<StreamRecord> RehashSites(const std::vector<StreamRecord>& trace,
                                      int k) {
  FGM_CHECK_GE(k, 1);
  std::vector<StreamRecord> out = trace;
  for (StreamRecord& rec : out) {
    rec.site = static_cast<int32_t>(
        MixHash64(static_cast<uint64_t>(rec.site)) % static_cast<uint64_t>(k));
  }
  return out;
}

std::vector<StreamRecord> MakeSkewedTrace(
    const std::vector<StreamRecord>& trace, int sites, int group_size) {
  FGM_CHECK_GE(group_size, 1);
  FGM_CHECK_LE(group_size, sites);
  const std::vector<int64_t> counts = SiteCounts(trace, sites);

  // Rank sites by stream size, descending.
  std::vector<int> order(static_cast<size_t>(sites));
  for (int i = 0; i < sites; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return counts[static_cast<size_t>(a)] > counts[static_cast<size_t>(b)];
  });

  const int hot = order[0];
  std::vector<bool> redirect(static_cast<size_t>(sites), false);
  for (int g = 0; g < group_size; ++g) {
    redirect[static_cast<size_t>(order[static_cast<size_t>(g)])] = true;
  }

  std::vector<StreamRecord> out = trace;
  for (StreamRecord& rec : out) {
    if (redirect[static_cast<size_t>(rec.site)]) rec.site = hot;
  }
  return out;
}

}  // namespace fgm
