// Sliding windows over a record stream.
//
// The turnstile experiments of the paper slide a time window TW over the
// stream: when a record falls out of the window, its deletion (weight -1)
// is issued at the site that originally received it. SlidingWindowStream
// turns a sorted insert-only trace into the interleaved insert/delete event
// sequence, ordered by event time. A count-based window is also provided.

#ifndef FGM_STREAM_WINDOW_H_
#define FGM_STREAM_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "stream/record.h"

namespace fgm {

/// Streaming iterator producing inserts and window-expiry deletes in time
/// order. Usage:
///
///   SlidingWindowStream events(trace, /*window_seconds=*/3600.0);
///   while (auto* rec = events.Next()) { ... }
///
/// A nonpositive window means "no window" (cash-register model: inserts
/// only). Deletion of a record at time t is issued at time t + TW.
class SlidingWindowStream {
 public:
  SlidingWindowStream(const std::vector<StreamRecord>* trace,
                      double window_seconds);

  /// Returns the next event, or nullptr at end of stream. The returned
  /// pointer is valid until the next call.
  const StreamRecord* Next();

  /// Total events produced so far.
  int64_t produced() const { return produced_; }

  /// Number of inserts (resp. deletes) produced so far.
  int64_t inserts() const { return inserts_; }
  int64_t deletes() const { return deletes_; }

 private:
  const std::vector<StreamRecord>* trace_;
  double window_;
  size_t next_insert_ = 0;
  std::deque<StreamRecord> pending_deletes_;  // in expiry-time order
  StreamRecord current_;
  int64_t produced_ = 0;
  int64_t inserts_ = 0;
  int64_t deletes_ = 0;
};

/// Count-based sliding window: keeps the most recent `capacity` records of
/// the global stream; the (n+capacity)-th insert evicts the n-th record.
class CountWindowStream {
 public:
  CountWindowStream(const std::vector<StreamRecord>* trace, int64_t capacity);

  const StreamRecord* Next();

 private:
  const std::vector<StreamRecord>* trace_;
  int64_t capacity_;
  size_t next_insert_ = 0;
  size_t next_evict_ = 0;
  bool evict_pending_ = false;
  StreamRecord current_;
};

}  // namespace fgm

#endif  // FGM_STREAM_WINDOW_H_
