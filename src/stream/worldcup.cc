#include "stream/worldcup.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace fgm {

namespace {

// Arrival-rate profile over [0, duration): a diurnal sinusoid plus a set of
// short Gaussian bursts. Always positive for amplitude < 1.
class RateProfile {
 public:
  RateProfile(const WorldCupConfig& config, Xoshiro256ss& rng)
      : duration_(config.duration), amplitude_(config.diurnal_amplitude) {
    FGM_CHECK(config.diurnal_amplitude >= 0.0 &&
              config.diurnal_amplitude < 1.0);
    for (int b = 0; b < config.bursts; ++b) {
      Burst burst;
      burst.center = rng.NextDouble() * duration_;
      burst.sigma = duration_ * (0.002 + 0.006 * rng.NextDouble());
      burst.height = config.burst_intensity * (0.5 + rng.NextDouble());
      bursts_.push_back(burst);
    }
  }

  double Intensity(double t) const {
    // Peak in the "afternoon" of the simulated day.
    double rate = 1.0 + amplitude_ * std::sin(2.0 * M_PI * t / duration_ -
                                              0.5 * M_PI);
    for (const Burst& b : bursts_) {
      const double z = (t - b.center) / b.sigma;
      rate += b.height * std::exp(-0.5 * z * z);
    }
    return rate;
  }

 private:
  struct Burst {
    double center;
    double sigma;
    double height;
  };
  double duration_;
  double amplitude_;
  std::vector<Burst> bursts_;
};

}  // namespace

std::vector<StreamRecord> GenerateWorldCupTrace(const WorldCupConfig& config) {
  FGM_CHECK_GE(config.sites, 1);
  FGM_CHECK_GE(config.total_updates, 0);
  FGM_CHECK_GT(config.duration, 0.0);
  FGM_CHECK_GE(config.distinct_clients, 1u);
  FGM_CHECK(config.html_fraction + config.image_fraction <= 1.0);

  Xoshiro256ss rng(config.seed);
  const RateProfile profile(config, rng);

  // Numerically integrate the intensity to obtain the cumulative Λ(t) on a
  // grid, then place the i-th arrival at Λ^{-1}((i + u_i)/N · Λ(T)): a
  // deterministic time-warp of an (almost) uniform grid, which keeps the
  // output sorted by construction.
  constexpr int kGrid = 8192;
  std::vector<double> cumulative(kGrid + 1, 0.0);
  const double dt = config.duration / kGrid;
  for (int g = 0; g < kGrid; ++g) {
    const double mid = (g + 0.5) * dt;
    cumulative[static_cast<size_t>(g) + 1] =
        cumulative[static_cast<size_t>(g)] + profile.Intensity(mid) * dt;
  }
  const double total_mass = cumulative.back();

  // Per-site sampling distribution (power law over a shuffled rank order so
  // that the "big" sites are not always ids 0..7).
  std::vector<double> site_weights =
      PowerLawWeights(config.sites, config.site_power_alpha);
  std::vector<int> site_order(static_cast<size_t>(config.sites));
  for (int i = 0; i < config.sites; ++i) site_order[static_cast<size_t>(i)] = i;
  for (int i = config.sites - 1; i > 0; --i) {
    std::swap(site_order[static_cast<size_t>(i)],
              site_order[static_cast<size_t>(rng.NextBounded(
                  static_cast<uint64_t>(i) + 1))]);
  }
  std::vector<double> site_cdf(static_cast<size_t>(config.sites));
  double acc = 0.0;
  for (int i = 0; i < config.sites; ++i) {
    acc += site_weights[static_cast<size_t>(i)];
    site_cdf[static_cast<size_t>(i)] = acc;
  }

  const ZipfDistribution client_dist(config.distinct_clients,
                                     config.client_zipf_s);

  std::vector<StreamRecord> trace;
  trace.reserve(static_cast<size_t>(config.total_updates));
  const double n = static_cast<double>(config.total_updates);
  size_t grid_pos = 0;
  for (int64_t i = 0; i < config.total_updates; ++i) {
    // Jittered stratified mass value, increasing in i.
    const double mass =
        (static_cast<double>(i) + rng.NextDouble()) / n * total_mass;
    while (grid_pos + 1 < cumulative.size() &&
           cumulative[grid_pos + 1] < mass) {
      ++grid_pos;
    }
    const double seg =
        cumulative[grid_pos + 1] - cumulative[grid_pos];
    const double frac = seg > 0 ? (mass - cumulative[grid_pos]) / seg : 0.0;
    const double t = (static_cast<double>(grid_pos) + frac) * dt;

    StreamRecord rec;
    rec.time = t;
    // Categorical site draw via CDF scan (k <= a few dozen).
    const double u = rng.NextDouble();
    int s = 0;
    while (s + 1 < config.sites && site_cdf[static_cast<size_t>(s)] < u) ++s;
    rec.site = site_order[static_cast<size_t>(s)];
    rec.cid = client_dist.Sample(rng);
    const double tu = rng.NextDouble();
    if (tu < config.html_fraction) {
      rec.type = FileType::kHtml;
    } else if (tu < config.html_fraction + config.image_fraction) {
      rec.type = FileType::kImage;
    } else {
      const double rest = tu - config.html_fraction - config.image_fraction;
      const double rest_span =
          1.0 - config.html_fraction - config.image_fraction;
      const double r = rest_span > 0 ? rest / rest_span : 0.0;
      rec.type = r < 0.4 ? FileType::kAudio
                         : (r < 0.6 ? FileType::kVideo : FileType::kOther);
    }
    rec.weight = 1.0;
    trace.push_back(rec);
  }
  return trace;
}

std::vector<int64_t> SiteCounts(const std::vector<StreamRecord>& trace,
                                int sites) {
  std::vector<int64_t> counts(static_cast<size_t>(sites), 0);
  for (const StreamRecord& rec : trace) {
    FGM_CHECK(rec.site >= 0 && rec.site < sites);
    ++counts[static_cast<size_t>(rec.site)];
  }
  return counts;
}

}  // namespace fgm
