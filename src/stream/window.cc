#include "stream/window.h"

#include "util/check.h"

namespace fgm {

SlidingWindowStream::SlidingWindowStream(
    const std::vector<StreamRecord>* trace, double window_seconds)
    : trace_(trace), window_(window_seconds) {
  FGM_CHECK(trace != nullptr);
}

const StreamRecord* SlidingWindowStream::Next() {
  const bool have_insert = next_insert_ < trace_->size();
  const bool have_delete = window_ > 0 && !pending_deletes_.empty();

  if (!have_insert && !have_delete) return nullptr;

  bool emit_delete;
  if (have_insert && have_delete) {
    // Deletes fire at original time + window; break ties in favor of the
    // delete so the window is never larger than TW.
    emit_delete = pending_deletes_.front().time <=
                  (*trace_)[next_insert_].time;
  } else {
    emit_delete = have_delete;
  }

  if (emit_delete) {
    current_ = pending_deletes_.front();
    pending_deletes_.pop_front();
    ++deletes_;
  } else {
    current_ = (*trace_)[next_insert_++];
    if (window_ > 0) {
      StreamRecord del = current_;
      del.time += window_;
      del.weight = -1.0;
      pending_deletes_.push_back(del);
    }
    ++inserts_;
  }
  ++produced_;
  return &current_;
}

CountWindowStream::CountWindowStream(const std::vector<StreamRecord>* trace,
                                     int64_t capacity)
    : trace_(trace), capacity_(capacity) {
  FGM_CHECK(trace != nullptr);
  FGM_CHECK(capacity >= 1);
}

const StreamRecord* CountWindowStream::Next() {
  if (evict_pending_) {
    evict_pending_ = false;
    current_ = (*trace_)[next_evict_++];
    current_.weight = -1.0;
    // The eviction conceptually happens at the time of the insert that
    // displaced it.
    current_.time = (*trace_)[next_insert_ - 1].time;
    return &current_;
  }
  if (next_insert_ >= trace_->size()) return nullptr;
  current_ = (*trace_)[next_insert_++];
  if (static_cast<int64_t>(next_insert_ - next_evict_) > capacity_) {
    evict_pending_ = true;
  }
  return &current_;
}

}  // namespace fgm
