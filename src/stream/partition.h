// Site re-partitioning and skew construction (paper §5.1, §5.4).
//
// The paper studies k < 27 by hashing the original 27 site ids onto fewer
// sites, and studies skew by routing the union of the 8 largest sites'
// streams to a single "hot" site while the other 7 go empty. In both cases
// the *global* stream is unchanged — only its distribution across sites
// moves, which is exactly what these transforms implement.

#ifndef FGM_STREAM_PARTITION_H_
#define FGM_STREAM_PARTITION_H_

#include <vector>

#include "stream/record.h"

namespace fgm {

/// Maps site ids onto [0, k) by hashing (identity when the trace already
/// uses at most k sites). Returns a new trace; global stream is unchanged.
std::vector<StreamRecord> RehashSites(const std::vector<StreamRecord>& trace,
                                      int k);

/// The paper's skew transform: among `sites` sites, find the 8 with the
/// largest streams; reroute all of their records to the single largest
/// ("hot") site. 7 sites end up with empty local streams; the global
/// stream is identical to the input. `group_size` generalizes the 8.
std::vector<StreamRecord> MakeSkewedTrace(
    const std::vector<StreamRecord>& trace, int sites, int group_size = 8);

}  // namespace fgm

#endif  // FGM_STREAM_PARTITION_H_
