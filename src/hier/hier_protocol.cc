#include "hier/hier_protocol.h"

#include <algorithm>
#include <cmath>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fgm {

namespace {

std::unique_ptr<Transport> MakeTierTransport(const FgmConfig& config, int tier,
                                             int endpoints) {
  // Only the root tier runs over the discrete-event network: the fault
  // plan's indices address tier-1 aggregators, and the root links are the
  // bottleneck whose latency/loss behaviour the simulation studies.
  if (tier == 0 && config.net.enabled()) {
    return std::make_unique<sim::EventNetwork>(endpoints, config.net);
  }
  return MakeTransport(config.transport, endpoints);
}

}  // namespace

HierFgmProtocol::HierFgmProtocol(const ContinuousQuery* query,
                                 const hier::TreeTopology& topo,
                                 FgmConfig config)
    : query_(query),
      topo_(topo),
      depth_(topo.depth()),
      m_(topo.NodesAt(1)),
      k_leaves_(topo.leaves()),
      config_(config),
      live_m_(topo.NodesAt(1)),
      live_leaves_(topo.leaves()),
      estimate_(query->dimension()),
      balance_(query->dimension()) {
  FGM_CHECK(query != nullptr);
  // Depth-1 trees ARE the flat star; the runner constructs FgmProtocol
  // for them directly (byte-identical by construction).
  FGM_CHECK_GE(depth_, 2);
  FGM_CHECK_GE(k_leaves_, 1);
  FGM_CHECK_GT(config_.eps_psi, 0.0);
  FGM_CHECK_LT(config_.eps_psi, 1.0);
  FGM_CHECK_GE(config_.max_subrounds_per_round, 1);

  transports_.reserve(static_cast<size_t>(depth_));
  for (int t = 0; t < depth_; ++t) {
    transports_.push_back(
        MakeTierTransport(config_, t, topo_.NodesAt(t + 1)));
    // Tier 0 keeps the default stamp (0) so root-tier traces stay in the
    // flat schema; lower tiers stamp every event/span they emit.
    transports_.back()->network().set_tier(t);
  }
  if (config_.net.enabled()) {
    sim_ = static_cast<sim::EventNetwork*>(transports_[0].get());
    lossy_net_ = config_.net.lossy();
  }

  sites_.reserve(static_cast<size_t>(k_leaves_));
  for (int i = 0; i < k_leaves_; ++i) {
    sites_.emplace_back(i, query->dimension());
  }
  aggs_.resize(static_cast<size_t>(depth_));
  for (int t = 1; t < depth_; ++t) {
    aggs_[static_cast<size_t>(t)].resize(
        static_cast<size_t>(topo_.NodesAt(t)));
    for (int j = 0; j < topo_.NodesAt(t); ++j) {
      AggNode& a = Agg(t, j);
      a.child_begin = topo_.ChildBegin(t, j);
      a.child_end = topo_.ChildEnd(t, j);
      a.leaves = topo_.LeavesUnder(t, j);
      FGM_CHECK_GE(a.fan(), 1);
    }
  }
  leaves1_.resize(static_cast<size_t>(m_));
  for (int j = 0; j < m_; ++j) leaves1_[static_cast<size_t>(j)] =
      topo_.LeavesUnder(1, j);

  round_drift_.reserve(static_cast<size_t>(m_));
  for (int j = 0; j < m_; ++j) round_drift_.emplace_back(query->dimension());
  subtree_updates_.assign(static_cast<size_t>(m_), 0);
  plan_.assign(static_cast<size_t>(m_), 1);
  agg_ok_.assign(static_cast<size_t>(m_), 1);
  in_round_.assign(static_cast<size_t>(m_), 1);
  down_since_.assign(static_cast<size_t>(m_), 0);
  coord_seen_ci_.assign(static_cast<size_t>(m_), 0);

  trace_ = config_.trace;
  spans_ = config_.spans;
  health_ = config_.health;
  if (health_ != nullptr && trace_ != nullptr) health_->set_trace(trace_);
  for (auto& transport : transports_) {
    if (trace_ != nullptr) transport->set_trace(trace_);
    if (spans_ != nullptr) transport->set_spans(spans_);
    if (config_.span_wire) transport->set_span_wire(true);
    if (config_.metrics != nullptr) transport->set_metrics(config_.metrics);
  }
  if (config_.metrics != nullptr) {
    sketch_timer_ = config_.metrics->GetTimer("sketch_update");
    safe_fn_timer_ = config_.metrics->GetTimer("safe_fn_eval");
  }
  StartRound();
}

std::string HierFgmProtocol::name() const {
  if (config_.optimizer) return "FGM/O";
  return config_.rebalance ? "FGM" : "FGM-basic";
}

void HierFgmProtocol::ProcessRecord(const StreamRecord& record) {
  if (sim_ != nullptr) SimTick();
  FGM_CHECK(record.site >= 0 && record.site < k_leaves_);
  ++total_updates_;
  FgmSite& site = sites_[static_cast<size_t>(record.site)];
  const int64_t increment =
      site.Process(*query_, record, sketch_timer_, safe_fn_timer_);
  if (increment <= 0) return;
  // Walk the leaf's counter increment up to its tier-(D-1) aggregator. A
  // leaf whose tier-1 ancestor is outside the round posts nothing — its
  // drift reaches E at the subtree's rejoin flush (mirrors the flat
  // protocol's non-member sites).
  int anc = record.site;
  for (int t = depth_; t > 1; --t) anc = topo_.Parent(t, anc);
  if (in_round_[static_cast<size_t>(anc)] == 0) return;
  const int parent = topo_.Parent(depth_, record.site);
  const CounterMsg delivered = transports_[static_cast<size_t>(depth_ - 1)]
                                   ->SendCounter(record.site,
                                                 CounterMsg{increment});
  NoteChildUnits(depth_ - 1, parent, delivered.increment);
}

// ---------------------------------------------------------------------------
// Aggregator machinery (tiers 1 .. depth-1)

double HierFgmProtocol::ChildValue(int tier, int node) {
  if (tier == depth_) {
    return sites_[static_cast<size_t>(node)].committed_value();
  }
  AggNode& a = Agg(tier, node);
  a.last_reported = VHat(a);
  return a.last_reported;
}

void HierFgmProtocol::RebaselineChild(int tier, int node, double theta) {
  if (tier == depth_) {
    sites_[static_cast<size_t>(node)].BeginSubround(theta);
    return;
  }
  // The quantum is unchanged (the parent's theta_local only moves through
  // a full CascadeSubround); the child re-anchors its export baseline on
  // the value it just reported — its own children stay untouched, and its
  // v̂ bound keeps holding against the fresh baseline.
  AggNode& a = Agg(tier, node);
  a.theta_up = theta;
  a.z_up = a.last_reported;
  a.sent_up = 0;
}

void HierFgmProtocol::LocalPoll(int tier, int node) {
  AggNode& a = Agg(tier, node);
  ++local_polls_;
  const int64_t counter_before = a.counter_local;
  double z = 0.0;
  for (int c = a.child_begin; c < a.child_end; ++c) {
    transports_[static_cast<size_t>(tier)]->ShipControl(
        c, ControlMsg{ControlOp::kPollPhi});
    const PhiValueMsg reply =
        transports_[static_cast<size_t>(tier)]->SendPhiValue(
            c, PhiValueMsg{ChildValue(tier + 1, c)});
    z += reply.value;
  }
  a.z_local = z;
  a.counter_local = 0;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kSubroundEnd;
    e.tier = tier;
    e.site = node;
    e.round = rounds_;
    e.subround = subrounds_this_round_;
    e.psi = z;
    e.counter = counter_before;
    e.k = a.fan();
    trace_->Emit(e);
  }
  for (int c = a.child_begin; c < a.child_end; ++c) {
    const QuantumMsg delivered =
        transports_[static_cast<size_t>(tier)]->ShipQuantum(
            c, QuantumMsg{a.theta_local});
    RebaselineChild(tier + 1, c, delivered.theta);
  }
}

void HierFgmProtocol::NoteChildUnits(int tier, int node, int64_t units) {
  AggNode& a = Agg(tier, node);
  a.counter_local += units;
  ExportUp(tier, node);
  // The export may have advanced the root subround (full cascade reset);
  // re-read the counter rather than using a stale local.
  if (a.counter_local > a.fan()) {
    LocalPoll(tier, node);
    // The re-baseline can lift v̂ (fresh z_local + full fan slack);
    // re-export so the parent's view stays monotone-current.
    ExportUp(tier, node);
  }
}

void HierFgmProtocol::ExportUp(int tier, int node) {
  AggNode& a = Agg(tier, node);
  FGM_CHECK_GT(a.theta_up, 0.0);
  const double vhat = VHat(a);
  const int64_t u =
      static_cast<int64_t>(std::floor((vhat - a.z_up) / a.theta_up));
  if (u <= a.sent_up) return;  // exports are max-monotone
  const int64_t delta = u - a.sent_up;
  a.sent_up = u;
  if (tier > 1) {
    const CounterMsg delivered =
        transports_[static_cast<size_t>(tier - 1)]->SendCounter(
            node, CounterMsg{delta});
    NoteChildUnits(tier - 1, topo_.Parent(tier, node), delivered.increment);
    return;
  }
  // Tier-1 aggregator → root.
  const size_t s = static_cast<size_t>(node);
  if (sim_ != nullptr) {
    // Cumulative fire-and-forget datagram, exactly like a flat site: a
    // lost or reordered datagram is healed by any later one. A subtree
    // whose up-link is down keeps counting; the next export after its
    // resync carries the (re-baselined) cumulative.
    if (agg_ok_[s] != 0 && in_round_[s] != 0) {
      sim_->PostCounter(node, sim::kParent, CounterMsg{a.sent_up}, rounds_,
                        subrounds_this_round_);
      DrainNetwork();
    }
    return;
  }
  if (in_round_[s] == 0) return;
  if (ApplyRootIncrement(node, delta)) PollAndAdvance();
}

bool HierFgmProtocol::ApplyRootIncrement(int agg, int64_t increment) {
  const CounterMsg delivered =
      transports_[0]->SendCounter(agg, CounterMsg{increment});
  counter_total_ += delivered.increment;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kIncrementMsg;
    e.round = rounds_;
    e.subround = subrounds_this_round_;
    e.site = agg;
    e.counter = delivered.increment;
    trace_->Emit(e);
  }
  return counter_total_ > live_m_;
}

// ---------------------------------------------------------------------------
// Tree cascades

void HierFgmProtocol::CascadeZone(int tier, int node, bool full) {
  const int begin = topo_.ChildBegin(tier, node);
  const int end = topo_.ChildEnd(tier, node);
  for (int c = begin; c < end; ++c) {
    if (full) {
      transports_[static_cast<size_t>(tier)]->ShipSafeZone(
          c, SafeZoneMsg{estimate_});
    } else {
      transports_[static_cast<size_t>(tier)]->ShipCheapZone(
          c, CheapZoneMsg{cheap_fn_->LipschitzBound(), 1.0,
                          cheap_fn_->AtZero()});
    }
    if (tier + 1 == depth_) {
      sites_[static_cast<size_t>(c)].BeginRound(
          full ? static_cast<const SafeFunction*>(safe_fn_.get())
               : cheap_fn_.get());
    } else {
      CascadeZone(tier + 1, c, full);
    }
  }
}

void HierFgmProtocol::CascadeSubround(int tier, int node, double theta_up,
                                      bool analytic) {
  AggNode& a = Agg(tier, node);
  a.theta_up = theta_up;
  a.theta_local = theta_up / (2.0 * static_cast<double>(a.fan()));
  a.counter_local = 0;
  a.sent_up = 0;
  if (analytic) {
    // Round start / post-rebalance: every drift is zero, so every leaf
    // value is λφ(0) and the subtree sums need no polls (b(0) = φ(0), so
    // cheap-bound subtrees share the value).
    a.z_local = lambda_ * phi_zero_ * static_cast<double>(a.leaves);
  } else {
    const int64_t counter_before = a.counter_local;
    double z = 0.0;
    for (int c = a.child_begin; c < a.child_end; ++c) {
      transports_[static_cast<size_t>(tier)]->ShipControl(
          c, ControlMsg{ControlOp::kPollPhi});
      const PhiValueMsg reply =
          transports_[static_cast<size_t>(tier)]->SendPhiValue(
              c, PhiValueMsg{ChildValue(tier + 1, c)});
      z += reply.value;
    }
    a.z_local = z;
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kSubroundEnd;
      e.tier = tier;
      e.site = node;
      e.round = rounds_;
      e.subround = subrounds_this_round_;
      e.psi = z;
      e.counter = counter_before;
      e.k = a.fan();
      e.reason = "rebaseline";
      trace_->Emit(e);
    }
  }
  a.z_up = a.z_local;
  a.last_reported = a.z_up;
  for (int c = a.child_begin; c < a.child_end; ++c) {
    const QuantumMsg delivered =
        transports_[static_cast<size_t>(tier)]->ShipQuantum(
            c, QuantumMsg{a.theta_local});
    if (tier + 1 == depth_) {
      sites_[static_cast<size_t>(c)].BeginSubround(delivered.theta);
    } else {
      CascadeSubround(tier + 1, c, delivered.theta, analytic);
    }
  }
}

void HierFgmProtocol::CascadeLambda(int tier, int node, double lambda) {
  const int begin = topo_.ChildBegin(tier, node);
  const int end = topo_.ChildEnd(tier, node);
  for (int c = begin; c < end; ++c) {
    const LambdaMsg delivered =
        transports_[static_cast<size_t>(tier)]->ShipLambda(
            c, LambdaMsg{lambda});
    if (tier + 1 == depth_) {
      sites_[static_cast<size_t>(c)].SetLambda(delivered.lambda);
    } else {
      CascadeLambda(tier + 1, c, delivered.lambda);
    }
  }
}

// ---------------------------------------------------------------------------
// Root coordinator (the flat protocol over m subtree-"sites")

void HierFgmProtocol::StartRound() {
  if (spans_ != nullptr && round_span_ != 0) {
    spans_->End(round_span_);
    round_span_ = 0;
  }
  if (rounds_ > 0) EmitRoundObservability();

  // Feedback-guard bookkeeping over ROOT-tier words: the root link is the
  // bottleneck the plan optimizes, and the replay checker re-sums exactly
  // these words between RoundStart and PlanOutcome.
  if (rounds_ > 0 && config_.optimizer) {
    const int64_t words =
        transports_[0]->stats().total_words() - round_start_words_;
    const int64_t updates = total_updates_ - round_start_updates_;
    if (updates > 0) {
      int64_t full_count = 0;
      for (uint8_t d : plan_) full_count += d;
      const size_t cls = (full_count < m_) ? 1 : 0;
      const double rate =
          static_cast<double>(words) / static_cast<double>(updates);
      class_cost_ewma_[cls] = class_cost_count_[cls] == 0
                                  ? rate
                                  : 0.7 * class_cost_ewma_[cls] + 0.3 * rate;
      ++class_cost_count_[cls];
    }
  }
  round_start_words_ = transports_[0]->stats().total_words();
  round_start_words_by_kind_ = transports_[0]->stats().words_by_kind;
  round_start_updates_ = total_updates_;

  ++rounds_;
  if (spans_ != nullptr) {
    round_span_ = spans_->BeginWithParent(SpanKind::kRound, -1, rounds_, 0,
                                          nullptr, spans_->root());
  }
  if (rounds_ > 1) {
    subround_histogram_.Add(subrounds_this_round_);
  }
  subrounds_this_round_ = 0;

  // Round membership at subtree granularity: every tier-1 aggregator
  // whose up-link is up joins with its whole subtree.
  if (sim_ != nullptr) {
    live_m_ = 0;
    for (int j = 0; j < m_; ++j) {
      in_round_[static_cast<size_t>(j)] = agg_ok_[static_cast<size_t>(j)];
      live_m_ += agg_ok_[static_cast<size_t>(j)] != 0 ? 1 : 0;
    }
    FGM_CHECK_GE(live_m_, 1);  // the fault plan killed every subtree
    paused_ = false;
  }
  live_leaves_ = 0;
  for (int j = 0; j < m_; ++j) {
    if (in_round_[static_cast<size_t>(j)] != 0) {
      live_leaves_ += leaves1_[static_cast<size_t>(j)];
    }
  }

  query_value_ = query_->Evaluate(estimate_);
  thresholds_ = query_->Thresholds(estimate_);
  // Leaves of an out-of-round subtree keep evaluating the outgoing
  // round's functions until the subtree rejoins; keep them alive exactly
  // like the flat protocol keeps functions for down sites.
  if (sim_ != nullptr && safe_fn_ != nullptr) {
    if (live_m_ < m_) {
      retired_safe_fns_.push_back(std::move(safe_fn_));
      if (cheap_fn_ != nullptr) {
        retired_safe_fns_.push_back(std::move(cheap_fn_));
      }
    } else {
      retired_safe_fns_.clear();
    }
  }
  safe_fn_ = query_->MakeSafeFunction(estimate_);
  phi_zero_ = safe_fn_->AtZero();
  FGM_CHECK_LT(phi_zero_, 0.0);
  // The root's trace events carry k = live_m and φ(0)' =
  // live_leaves·φ(0)/live_m, so the flat replay arithmetic certifies the
  // root tier verbatim: k·φ(0)' = live_leaves·φ(0) is the true initial ψ.
  phi0_prime_ = static_cast<double>(live_leaves_) * phi_zero_ /
                static_cast<double>(live_m_);
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kRoundStart;
    e.round = rounds_;
    e.k = live_m_;
    e.psi = static_cast<double>(live_m_) * phi0_prime_;
    e.value = phi0_prime_;
    e.eps = config_.eps_psi;
    trace_->Emit(e);
  }
  cheap_fn_ =
      std::make_unique<CheapBoundFunction>(CheapBoundFunction::For(*safe_fn_));

  // FGM/O at root granularity: one d_j per tier-1 subtree, priced with
  // k = m (the root link's subround overhead is 3m+1 words).
  const std::vector<SiteRates>* rates_used = nullptr;
  if (config_.optimizer && have_rates_ && live_m_ == m_) {
    const double k = static_cast<double>(m_);
    const double overhead =
        (3.0 * k + 1.0) * std::log2(1.0 / config_.eps_psi) + 4.0 * k;
    const bool health_rates = config_.health_planning && health_ != nullptr &&
                              health_->have_rates();
    HealthView health_view;
    const HealthView* view = nullptr;
    if (health_rates) {
      scratch_rates_.assign(static_cast<size_t>(m_), SiteRates{});
      double gamma_sum = 0.0;
      for (int j = 0; j < m_; ++j) {
        if (health_->rate_rounds(j) > 0) gamma_sum += health_->rate_gamma(j);
      }
      for (int j = 0; j < m_; ++j) {
        SiteRates& r = scratch_rates_[static_cast<size_t>(j)];
        if (health_->rate_rounds(j) == 0) {
          r.active = false;
          continue;
        }
        r.alpha = health_->rate_alpha(j);
        r.beta = health_->rate_beta(j);
        r.gamma = gamma_sum > 0.0 ? health_->rate_gamma(j) / gamma_sum : 0.0;
        if (r.alpha <= 0.0) r.alpha = 1e-12;
        if (r.beta < r.alpha) r.beta = r.alpha;
        r.active = r.beta > 0.0;
      }
      health_view.ship_cost.resize(static_cast<size_t>(m_));
      for (int j = 0; j < m_; ++j) {
        health_view.ship_cost[static_cast<size_t>(j)] =
            health_->ShipCostFactor(j);
      }
      view = &health_view;
    }
    const std::vector<SiteRates>& rates =
        health_rates
            ? scratch_rates_
            : ((config_.optimizer_second_order && have_older_rates_)
                   ? (scratch_rates_ =
                          ExtrapolateRates(older_rates_, prev_rates_))
                   : prev_rates_);
    rates_used = &rates;
    const RoundPlan round_plan = OptimizeRoundPlan(
        rates, static_cast<int64_t>(query_->dimension()), overhead, view);
    plan_ = round_plan.full_function;
    plan_predicted_ = true;
    plan_pred_len_ = round_plan.predicted_length;
    plan_pred_gain_ = round_plan.predicted_gain;
    plan_pred_rate_ = round_plan.predicted_rate;
    if (config_.optimizer_feedback &&
        rounds_ % config_.feedback_probe_period != 0) {
      int64_t full_count = 0;
      for (uint8_t d : plan_) full_count += d;
      const bool has_cheap = full_count < m_;
      if (has_cheap && class_cost_count_[0] > 0 && class_cost_count_[1] > 0 &&
          class_cost_ewma_[1] >
              config_.feedback_margin * class_cost_ewma_[0]) {
        plan_.assign(static_cast<size_t>(m_), 1);
        ++cheap_overrides_;
        plan_predicted_ = false;
      }
    }
  } else {
    plan_.assign(static_cast<size_t>(m_), 1);
    plan_predicted_ = false;
  }
  if (!plan_predicted_) {
    plan_pred_len_ = 0.0;
    plan_pred_gain_ = 0.0;
    plan_pred_rate_ = 0.0;
  }

  if (trace_ != nullptr && config_.optimizer) {
    int64_t full_sites = 0;
    for (uint8_t d : plan_) full_sites += d;
    TraceEvent e;
    e.kind = TraceEventKind::kPlanChosen;
    e.round = rounds_;
    e.counter = full_sites;
    e.k = m_;
    e.pred_len = plan_pred_len_;
    e.pred_gain = plan_pred_gain_;
    e.pred_rate = plan_pred_rate_;
    trace_->Emit(e);
    if (rates_used != nullptr) {
      for (int j = 0; j < m_; ++j) {
        const SiteRates& r = (*rates_used)[static_cast<size_t>(j)];
        TraceEvent s;
        s.kind = TraceEventKind::kPlanSite;
        s.round = rounds_;
        s.site = j;
        s.counter = plan_[static_cast<size_t>(j)];
        s.alpha = r.alpha;
        s.beta = r.beta;
        s.gamma = r.gamma;
        trace_->Emit(s);
      }
    }
  }

  // Ship the zones: root → tier-1 aggregator, then the same zone down the
  // subtree (d_j = 0 puts the 3-word cheap bound on EVERY edge of subtree
  // j — the whole subtree shares the plan).
  for (int j = 0; j < m_; ++j) {
    round_drift_[static_cast<size_t>(j)].SetZero();
    subtree_updates_[static_cast<size_t>(j)] = 0;
    if (in_round_[static_cast<size_t>(j)] == 0) continue;
    const bool full = plan_[static_cast<size_t>(j)] != 0;
    if (full) {
      transports_[0]->ShipSafeZone(j, SafeZoneMsg{estimate_});
      ++full_function_ships_;
    } else {
      transports_[0]->ShipCheapZone(
          j, CheapZoneMsg{cheap_fn_->LipschitzBound(), 1.0,
                          cheap_fn_->AtZero()});
    }
    CascadeZone(1, j, full);
    ++total_function_ships_;
  }

  balance_.SetZero();
  lambda_ = 1.0;
  psi_b_ = 0.0;

  StartSubround(static_cast<double>(live_m_) * phi0_prime_,
                /*analytic=*/true);
}

void HierFgmProtocol::EmitRoundObservability() {
  if (trace_ == nullptr && health_ == nullptr) return;
  const TrafficStats& t = transports_[0]->stats();
  const int64_t round_words = t.total_words() - round_start_words_;
  const int64_t round_updates = total_updates_ - round_start_updates_;
  const double actual_gain =
      static_cast<double>(round_updates) - static_cast<double>(round_words);
  if (trace_ != nullptr && config_.optimizer) {
    TraceEvent e;
    e.kind = TraceEventKind::kPlanOutcome;
    e.round = rounds_;
    e.count = round_updates;
    e.words = round_words;
    e.pred_gain = plan_pred_gain_;
    e.actual_gain = actual_gain;
    trace_->Emit(e);
  }
  if (health_ != nullptr) {
    // The health monitor aggregates per-subtree: each tier-1 aggregator
    // is one "site" of the root star, and its update/drift totals are its
    // subtree's.
    RunSnapshot s;
    s.kind = "round";
    s.records = total_updates_;
    s.round = rounds_;
    s.subrounds = subrounds_this_round_;
    s.total_subrounds = subrounds_;
    s.psi = last_psi_;
    s.theta = last_theta_;
    s.lambda = lambda_;
    s.total_words = t.total_words();
    s.round_words = round_words;
    for (size_t i = 0; i < s.words_by_kind.size(); ++i) {
      s.words_by_kind[i] = t.words_by_kind[i];
      s.round_words_by_kind[i] =
          t.words_by_kind[i] - round_start_words_by_kind_[i];
    }
    for (uint8_t d : plan_) s.plan_full_sites += d;
    s.pred_gain = plan_pred_gain_;
    s.actual_gain = actual_gain;
    int64_t updates_sum = 0;
    for (int j = 0; j < m_; ++j) {
      const int64_t u = subtree_updates_[static_cast<size_t>(j)];
      updates_sum += u;
      s.site_updates_max = std::max(s.site_updates_max, u);
      const double norm = round_drift_[static_cast<size_t>(j)].Norm();
      if (norm > s.drift_norm_max) {
        s.drift_norm_max = norm;
        s.hot_site = j;
      }
      s.drift_norm_mean += norm;
    }
    s.site_updates_mean =
        static_cast<double>(updates_sum) / static_cast<double>(m_);
    s.drift_norm_mean /= static_cast<double>(m_);
    if (sim_ != nullptr) {
      const sim::SimNetStats& n = sim_->net_stats();
      s.in_flight_words = n.in_flight_words;
      s.max_in_flight_words = n.max_in_flight_words;
      s.retransmit_words = n.retransmitted_words;
      s.dropped_words = n.dropped_words;
      s.resyncs = n.resyncs;
    }
    health_->ObserveRound(s);
    for (int j = 0; j < m_; ++j) {
      health_->ObserveSite(j, subtree_updates_[static_cast<size_t>(j)],
                           round_drift_[static_cast<size_t>(j)].Norm());
    }
    if (sim_ != nullptr) {
      const std::vector<sim::SiteNetStats>& per_site = sim_->site_stats();
      for (int j = 0; j < m_; ++j) {
        const sim::SiteNetStats& n = per_site[static_cast<size_t>(j)];
        SiteNetSample sample;
        sample.delivered_msgs = n.delivered_msgs;
        sample.delivered_words = n.delivered_words;
        sample.dropped_msgs = n.dropped_msgs;
        sample.dropped_words = n.dropped_words;
        sample.retransmitted_msgs = n.retransmitted_msgs;
        sample.retransmitted_words = n.retransmitted_words;
        sample.latency_ticks = n.latency_ticks;
        sample.latency_samples = n.latency_samples;
        sample.downs = n.downs;
        health_->ObserveNet(j, sample);
      }
    }
    health_->ObservePsiMargin(last_psi_,
                              config_.eps_psi *
                                  static_cast<double>(live_m_) * phi0_prime_);
    health_->ObserveOverflowRounds(overflow_rounds_);
    health_->EvaluateAlerts(rounds_, sim_ != nullptr ? sim_->now() : 0);
  }
}

void HierFgmProtocol::StartSubround(double psi_total, bool analytic) {
  FGM_CHECK_LT(psi_total, 0.0);
  last_psi_ = psi_total;
  const double quantum = -psi_total / (2.0 * static_cast<double>(live_m_));
  last_theta_ = quantum;
  counter_total_ = 0;
  ++subrounds_;
  ++subrounds_this_round_;
  if (spans_ != nullptr) {
    subround_span_ =
        spans_->BeginWithParent(SpanKind::kSubround, -1, rounds_,
                                subrounds_this_round_, nullptr, round_span_);
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kSubroundStart;
    e.round = rounds_;
    e.subround = subrounds_this_round_;
    e.psi = psi_total;
    e.theta = quantum;
    trace_->Emit(e);
  }
  for (int j = 0; j < m_; ++j) {
    if (in_round_[static_cast<size_t>(j)] == 0) continue;
    const QuantumMsg delivered =
        transports_[0]->ShipQuantum(j, QuantumMsg{quantum});
    CascadeSubround(1, j, delivered.theta, analytic);
    coord_seen_ci_[static_cast<size_t>(j)] = 0;
  }
  if (sim_ != nullptr) last_counter_activity_ = sim_->now();
}

void HierFgmProtocol::PollAndAdvance(const char* reason) {
  double psi = 0.0;
  for (int j = 0; j < m_; ++j) {
    if (in_round_[static_cast<size_t>(j)] == 0) continue;
    transports_[0]->ShipControl(j, ControlMsg{ControlOp::kPollPhi});
    // A subtree's poll reply is its aggregator's conservative bound v̂ ≥
    // Σ λφ(x_i): the root's ψ̂ overestimates the true ψ, so rounds can
    // only end EARLIER than flat — safe, never late.
    const PhiValueMsg reply =
        transports_[0]->SendPhiValue(j, PhiValueMsg{ChildValue(1, j)});
    psi += reply.value;
  }
  last_psi_ = psi + psi_b_;
  if (spans_ != nullptr && subround_span_ != 0) {
    spans_->End(subround_span_, reason);
    subround_span_ = 0;
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kSubroundEnd;
    e.round = rounds_;
    e.subround = subrounds_this_round_;
    e.psi = last_psi_;
    e.counter = counter_total_;
    e.reason = reason;
    trace_->Emit(e);
  }
  const double stop_level = config_.eps_psi *
                            static_cast<double>(live_m_) * phi0_prime_;
  if (last_psi_ >= stop_level) {
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kThresholdCross;
      e.round = rounds_;
      e.psi = last_psi_;
      e.value = stop_level;
      e.label = "psi-exhausted";
      trace_->Emit(e);
    }
    if (config_.rebalance) {
      TryRebalance();
    } else {
      EndRound(/*already_flushed=*/false);
    }
  } else if (CheapRoundOverBudget()) {
    EndRound(/*already_flushed=*/false);
  } else if (subrounds_this_round_ >= config_.max_subrounds_per_round) {
    ++overflow_rounds_;
    EndRound(/*already_flushed=*/false);
  } else {
    StartSubround(last_psi_, /*analytic=*/false);
  }
}

bool HierFgmProtocol::CheapRoundOverBudget() const {
  if (!config_.optimizer || !config_.optimizer_feedback) return false;
  int64_t full_count = 0;
  for (uint8_t d : plan_) full_count += d;
  if (full_count >= m_) return false;
  const double k = static_cast<double>(m_);
  const double full_round_words =
      k * static_cast<double>(query_->dimension()) +
      (3.0 * k + 1.0) * std::log2(1.0 / config_.eps_psi) + 4.0 * k;
  const double spent = static_cast<double>(
      transports_[0]->stats().total_words() - round_start_words_);
  return spent > config_.feedback_budget_factor * full_round_words;
}

DriftFlushMsg HierFgmProtocol::CollectSubtreeFlush(int tier, int node) {
  const int begin = topo_.ChildBegin(tier, node);
  const int end = topo_.ChildEnd(tier, node);
  RealVector sum(query_->dimension());
  int64_t count = 0;
  for (int c = begin; c < end; ++c) {
    transports_[static_cast<size_t>(tier)]->ShipControl(
        c, ControlMsg{ControlOp::kFlushRequest});
    DriftFlushMsg msg = (tier + 1 == depth_)
                            ? sites_[static_cast<size_t>(c)].MakeFlushMsg()
                            : CollectSubtreeFlush(tier + 1, c);
    const DriftFlushMsg delivered =
        transports_[static_cast<size_t>(tier)]->SendDriftFlush(c,
                                                               std::move(msg));
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kDriftFlush;
      e.tier = tier;
      e.round = rounds_;
      e.site = c;
      e.words = delivered.Words();
      e.count = delivered.update_count;
      trace_->Emit(e);
    }
    if (delivered.update_count > 0) {
      const RealVector& drift =
          DeliveredDrift(delivered, *query_, c, &flush_scratch_);
      sum += drift;
      count += delivered.update_count;
      if (tier + 1 == depth_) sites_[static_cast<size_t>(c)].FlushReset();
    }
  }
  // One upward message for the whole subtree: the dense drift sum, or the
  // 1-word acknowledgement when nothing flowed (update_count 0 encodes to
  // the count word alone).
  DriftFlushMsg up;
  up.dense = true;
  up.update_count = count;
  if (count > 0) {
    up.drift = std::move(sum);
  } else {
    up.drift = RealVector(0);
  }
  return up;
}

void HierFgmProtocol::FlushAllSubtrees() {
  for (int j = 0; j < m_; ++j) {
    if (in_round_[static_cast<size_t>(j)] == 0) continue;
    if (sim_ != nullptr && agg_ok_[static_cast<size_t>(j)] == 0) continue;
    transports_[0]->ShipControl(j, ControlMsg{ControlOp::kFlushRequest});
    const DriftFlushMsg delivered =
        transports_[0]->SendDriftFlush(j, CollectSubtreeFlush(1, j));
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kDriftFlush;
      e.round = rounds_;
      e.site = j;
      e.words = delivered.Words();
      e.count = delivered.update_count;
      trace_->Emit(e);
    }
    if (delivered.update_count > 0) {
      const RealVector& drift =
          DeliveredDrift(delivered, *query_, j, &flush_scratch_);
      balance_ += drift;
      round_drift_[static_cast<size_t>(j)] += drift;
      subtree_updates_[static_cast<size_t>(j)] += delivered.update_count;
    }
  }
}

double HierFgmProtocol::FindMuStar() const {
  // Identical to the flat bisection, with the LEAF count as k: the
  // balance vector is the total drift of live_leaves sites, and λ is
  // shipped to every leaf.
  if (balance_.Norm() == 0.0) return 0.0;
  const double k = static_cast<double>(live_leaves_);
  RealVector scaled(balance_.dim());
  auto g = [&](double mu) {
    scaled = balance_;
    scaled *= 1.0 / (mu * k);
    return safe_fn_->Eval(scaled);
  };
  if (g(1.0) >= 0.0) return 1.0;
  double lo = 1e-6, hi = 1.0;
  if (g(lo) < 0.0) return 0.0;
  const double tol = config_.bisection_tol * std::fabs(phi_zero_);
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double v = g(mid);
    if (v < 0.0) {
      hi = mid;
      if (v > -tol) break;
    } else {
      lo = mid;
    }
  }
  return hi;
}

void HierFgmProtocol::TryRebalance() {
  if (subrounds_this_round_ >= config_.max_subrounds_per_round) {
    ++overflow_rounds_;
    EndRound(/*already_flushed=*/false);
    return;
  }
  // Profitability bar over the ROOT link: rebalancing avoids re-shipping
  // the per-subtree zones from the root.
  double plan_words = 0.0;
  for (int j = 0; j < m_; ++j) {
    if (in_round_[static_cast<size_t>(j)] == 0) continue;
    plan_words += plan_[static_cast<size_t>(j)]
                      ? static_cast<double>(query_->dimension())
                      : CheapBoundFunction::kShippingWords;
  }
  double min_words_per_site = config_.rebalance_min_words_per_site;
  if (config_.health_planning && health_ != nullptr) {
    min_words_per_site *= health_->RebalanceCostFactor();
  }
  if (plan_words / static_cast<double>(live_m_) < min_words_per_site) {
    EndRound(/*already_flushed=*/false);
    return;
  }
  FlushAllSubtrees();
  const double kb = static_cast<double>(live_leaves_);
  const double mu = FindMuStar();
  const double lambda = 1.0 - mu;
  if (lambda < config_.min_lambda) {
    EndRound(/*already_flushed=*/true);
    return;
  }
  if (mu > 0.0) {
    RealVector scaled = balance_;
    scaled *= 1.0 / (mu * kb);
    psi_b_ = mu * kb * safe_fn_->Eval(scaled);
    FGM_CHECK_LE(psi_b_, 0.0);
  } else {
    psi_b_ = 0.0;
  }
  lambda_ = lambda;
  // Post-flush every drift is zero: the true ψ is live_leaves·λφ(0) =
  // live_m·λ·φ(0)' — the same k·λ·φ(0) + ψ_B shape the replay checker
  // re-derives with k = live_m.
  const double psi = static_cast<double>(live_m_) * lambda_ * phi0_prime_;
  const double stop_level = config_.eps_psi *
                            static_cast<double>(live_m_) * phi0_prime_;
  if (psi + psi_b_ <= stop_level) {
    ++rebalances_;
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kRebalance;
      e.round = rounds_;
      e.lambda = lambda_;
      e.value = psi_b_;
      e.psi = psi + psi_b_;
      trace_->Emit(e);
    }
    for (int j = 0; j < m_; ++j) {
      if (in_round_[static_cast<size_t>(j)] == 0) continue;
      const LambdaMsg delivered =
          transports_[0]->ShipLambda(j, LambdaMsg{lambda_});
      CascadeLambda(1, j, delivered.lambda);
    }
    StartSubround(psi + psi_b_, /*analytic=*/true);
  } else {
    EndRound(/*already_flushed=*/true);
  }
}

void HierFgmProtocol::EndRound(bool already_flushed) {
  if (!already_flushed) FlushAllSubtrees();

  if (config_.optimizer) {
    std::vector<double> phi_end(static_cast<size_t>(m_));
    std::vector<double> drift_norm(static_cast<size_t>(m_));
    std::vector<int64_t> site_updates(static_cast<size_t>(m_));
    int64_t tau = 0;
    const double lipschitz = cheap_fn_->LipschitzBound();
    for (int j = 0; j < m_; ++j) {
      const RealVector& x = round_drift_[static_cast<size_t>(j)];
      phi_end[static_cast<size_t>(j)] = safe_fn_->Eval(x);
      drift_norm[static_cast<size_t>(j)] = lipschitz * x.Norm();
      site_updates[static_cast<size_t>(j)] =
          subtree_updates_[static_cast<size_t>(j)];
      tau += site_updates[static_cast<size_t>(j)];
    }
    if (tau > 0) {
      if (have_rates_) {
        older_rates_ = std::move(prev_rates_);
        have_older_rates_ = true;
      }
      prev_rates_ =
          EstimateSiteRates(phi_zero_, phi_end, drift_norm, site_updates);
      have_rates_ = true;
      if (health_ != nullptr) {
        for (int j = 0; j < m_; ++j) {
          const SiteRates& r = prev_rates_[static_cast<size_t>(j)];
          if (r.active) health_->ObserveRates(j, r.alpha, r.beta, r.gamma);
        }
      }
    }
  }

  // E absorbs the round's total drift per LEAF: E += B/k.
  estimate_.Axpy(1.0 / static_cast<double>(k_leaves_), balance_);
  StartRound();
}

bool HierFgmProtocol::BoundsCertified() const {
  if (counter_total_ > live_m_) return false;
  if (sim_ == nullptr) return true;
  if (paused_ || live_m_ != m_) return false;
  return PendingExportWeight() == 0;
}

int64_t HierFgmProtocol::PendingExportWeight() const {
  int64_t pending = 0;
  for (int j = 0; j < m_; ++j) {
    if (in_round_[static_cast<size_t>(j)] == 0) continue;
    const int64_t delta =
        aggs_[1][static_cast<size_t>(j)].sent_up -
        coord_seen_ci_[static_cast<size_t>(j)];
    if (delta > 0) pending += delta;
  }
  return pending;
}

void HierFgmProtocol::Finish() {
  if (sim_ != nullptr) {
    sim_->FinishRun();
    DrainNetwork();
  }
  EmitTierEnds();
}

void HierFgmProtocol::EmitTierEnds() {
  if (tier_ends_emitted_ || trace_ == nullptr) return;
  tier_ends_emitted_ = true;
  for (int t = 1; t < depth_; ++t) {
    const TrafficStats& s = transports_[static_cast<size_t>(t)]->stats();
    TraceEvent e;
    e.kind = TraceEventKind::kTierEnd;
    e.tier = t;
    e.k = transports_[static_cast<size_t>(t)]->sites();
    e.up_words = s.upstream_words;
    e.down_words = s.downstream_words;
    e.up_msgs = s.upstream_messages;
    e.down_msgs = s.downstream_messages;
    trace_->Emit(e);
  }
}

// ---------------------------------------------------------------------------
// Simulated-network machinery (tier-1 aggregators are the fault domain)

void HierFgmProtocol::SimTick() {
  sim_->Advance(1);
  DrainNetwork();
}

void HierFgmProtocol::DrainNetwork() {
  sim::FaultNotice fault;
  while (sim_->PopFault(&fault)) HandleFault(fault);
  if (paused_) CheckDeadlines();
  sim::CounterDelivery delivery;
  while (sim_->PopCounter(&delivery)) {
    HandleCounterDelivery(delivery);
    if (!paused_ && counter_total_ > live_m_) PollAndAdvance();
  }
  MaybeSilencePoll();
}

void HierFgmProtocol::HandleFault(const sim::FaultNotice& fault) {
  const size_t s = static_cast<size_t>(fault.site);
  if (!fault.up) {
    agg_ok_[s] = 0;
    down_since_[s] = sim_->now();
    if (health_ != nullptr) {
      health_->NoteSiteDown(fault.site, rounds_, sim_->now());
    }
    if (in_round_[s] != 0) paused_ = true;
    return;
  }
  agg_ok_[s] = 1;
  if (health_ != nullptr) {
    health_->NoteSiteUp(fault.site, rounds_, sim_->now());
  }
  if (in_round_[s] != 0) {
    ResyncAggregator(fault.site);
    if (!AnyInRoundAggDown()) {
      paused_ = false;
      PollAndAdvance("resync");
    }
  } else {
    RejoinReconfigure(fault.site);
  }
}

bool HierFgmProtocol::AnyInRoundAggDown() const {
  for (int j = 0; j < m_; ++j) {
    if (in_round_[static_cast<size_t>(j)] != 0 &&
        agg_ok_[static_cast<size_t>(j)] == 0) {
      return true;
    }
  }
  return false;
}

void HierFgmProtocol::ResyncAggregator(int agg) {
  ResyncMsg msg;
  msg.reference = estimate_;
  msg.theta = last_theta_;
  msg.lambda = lambda_;
  msg.round = rounds_;
  msg.subround = subrounds_this_round_;
  sim_->NoteResync();
  int64_t resync_span = 0;
  if (spans_ != nullptr) {
    resync_span = spans_->BeginWithParent(SpanKind::kResync, agg, rounds_,
                                          subrounds_this_round_, "rejoin",
                                          spans_->root());
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kSiteResync;
    e.site = agg;
    e.round = rounds_;
    e.words = msg.Words();
    e.t = sim_->now();
    e.reason = "rejoin";
    trace_->Emit(e);
  }
  const ResyncMsg delivered = transports_[0]->ShipResync(agg, msg);
  // Unlike a flat site, the subtree IS the aggregator's stable storage:
  // its leaves kept their evaluators and drift, and no subround advanced
  // while the round was paused, so θ is unchanged and nothing below the
  // aggregator needs re-shipping. Re-baseline the export edge on the
  // current conservative bound; the "resync"-labelled poll that follows
  // (once every member is up) re-baselines the whole tree.
  AggNode& a = Agg(1, agg);
  a.theta_up = delivered.theta;
  a.z_up = VHat(a);
  a.sent_up = 0;
  a.last_reported = a.z_up;
  coord_seen_ci_[static_cast<size_t>(agg)] = 0;
  if (spans_ != nullptr) spans_->End(resync_span);
}

void HierFgmProtocol::RejoinReconfigure(int agg) {
  sim_->NoteResync();
  int64_t resync_span = 0;
  if (spans_ != nullptr) {
    resync_span = spans_->BeginWithParent(SpanKind::kResync, agg, rounds_,
                                          subrounds_this_round_, "reconfig",
                                          spans_->root());
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kSiteResync;
    e.site = agg;
    e.round = rounds_;
    e.words = 0;
    e.t = sim_->now();
    e.reason = "reconfig";
    trace_->Emit(e);
  }
  // Pull the subtree's surviving drift into the balance vector, then end
  // the reduced round — the next StartRound re-admits every up subtree.
  transports_[0]->ShipControl(agg, ControlMsg{ControlOp::kFlushRequest});
  const DriftFlushMsg delivered =
      transports_[0]->SendDriftFlush(agg, CollectSubtreeFlush(1, agg));
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kDriftFlush;
    e.round = rounds_;
    e.site = agg;
    e.words = delivered.Words();
    e.count = delivered.update_count;
    trace_->Emit(e);
  }
  if (delivered.update_count > 0) {
    const RealVector& drift =
        DeliveredDrift(delivered, *query_, agg, &flush_scratch_);
    balance_ += drift;
  }
  CloseSubroundForced("reconfig");
  EndRound(/*already_flushed=*/false);
  if (spans_ != nullptr) spans_->End(resync_span);
}

void HierFgmProtocol::CloseSubroundForced(const char* reason) {
  if (spans_ != nullptr && subround_span_ != 0) {
    spans_->End(subround_span_, reason);
    subround_span_ = 0;
  }
  if (trace_ == nullptr) return;
  TraceEvent e;
  e.kind = TraceEventKind::kSubroundEnd;
  e.round = rounds_;
  e.subround = subrounds_this_round_;
  e.psi = last_psi_;
  e.counter = counter_total_;
  e.reason = reason;
  trace_->Emit(e);
}

void HierFgmProtocol::HandleCounterDelivery(
    const sim::CounterDelivery& delivery) {
  if (delivery.round != rounds_ ||
      delivery.subround != subrounds_this_round_) {
    sim_->NoteStale();
    return;
  }
  ApplyCounterDelta(delivery.site, delivery.msg.increment, nullptr);
}

void HierFgmProtocol::ApplyCounterDelta(int agg, int64_t cumulative,
                                        const char* reason) {
  const size_t s = static_cast<size_t>(agg);
  const int64_t delta = cumulative - coord_seen_ci_[s];
  if (delta <= 0) return;
  coord_seen_ci_[s] = cumulative;
  counter_total_ += delta;
  last_counter_activity_ = sim_->now();
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kIncrementMsg;
    e.round = rounds_;
    e.subround = subrounds_this_round_;
    e.site = agg;
    e.counter = delta;
    e.reason = reason;
    trace_->Emit(e);
  }
}

void HierFgmProtocol::MaybeSilencePoll() {
  if (!lossy_net_ || paused_) return;
  if (sim_->now() - last_counter_activity_ < config_.net.silence_timeout) {
    return;
  }
  sim_->NoteTimeout();
  last_counter_activity_ = sim_->now();
  for (int j = 0; j < m_; ++j) {
    const size_t s = static_cast<size_t>(j);
    if (in_round_[s] == 0 || agg_ok_[s] == 0) continue;
    transports_[0]->ShipControl(j, ControlMsg{ControlOp::kPollCounter});
    const CounterMsg reply = transports_[0]->SendCounter(
        j, CounterMsg{aggs_[1][s].sent_up});
    ApplyCounterDelta(j, reply.increment, "timeout-poll");
  }
  if (counter_total_ > live_m_) PollAndAdvance();
}

void HierFgmProtocol::CheckDeadlines() {
  bool expired = false;
  for (int j = 0; j < m_; ++j) {
    const size_t s = static_cast<size_t>(j);
    if (in_round_[s] != 0 && agg_ok_[s] == 0 &&
        sim_->now() - down_since_[s] >= config_.net.dead_deadline) {
      expired = true;
      break;
    }
  }
  if (!expired) return;
  // A subtree stayed dead past the deadline: end the round without it
  // (reduced-m graceful degradation; its drift folds in at rejoin).
  CloseSubroundForced("deadline");
  EndRound(/*already_flushed=*/false);
}

double HierFgmProtocol::mean_full_function_fraction() const {
  if (total_function_ships_ == 0) return 0.0;
  return static_cast<double>(full_function_ships_) /
         static_cast<double>(total_function_ships_);
}

}  // namespace fgm
