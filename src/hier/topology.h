// Tree topologies for hierarchical FGM (src/hier).
//
// A TreeTopology arranges the k leaf sites under a root through zero or
// more aggregator tiers. Tier 0 is the root (always one node), tier
// depth() is the leaf tier (k nodes); every tier in between holds
// aggregators. Node counts shrink bottom-up by the per-level fanout:
// with fanouts f_1, …, f_d (tier t's nodes each parent up to f_t
// children at tier t+1), the tier sizes are
//
//   n_d = k,   n_{t-1} = ceil(n_t / f_t),
//
// and the spec is valid iff the chain reaches n_0 == 1, i.e. the fanout
// product covers k. Children are dealt out contiguously and as evenly
// as possible: node i at tier t parents the tier-t+1 range
// [⌊i·n_{t+1}/n_t⌋, ⌊(i+1)·n_{t+1}/n_t⌋), so fan-ins differ by at most
// one and Parent() inverts ChildBegin()/ChildEnd() in O(1).
//
// Specs (the runner's --topology flag):
//
//   tree:<f>          one fanout; the depth is the smallest d with
//                     f^d ≥ k (so tree:f with f ≥ k is the flat star)
//   tree:<f1>,<f2>,…  per-level fanouts, root-side first; the product
//                     must cover k
//
// Parse() rejects malformed specs (missing prefix, empty or non-numeric
// levels, fanout < 2, overflow, product < k) with a one-line message the
// runner surfaces verbatim.

#ifndef FGM_HIER_TOPOLOGY_H_
#define FGM_HIER_TOPOLOGY_H_

#include <string>
#include <vector>

namespace fgm {
namespace hier {

class TreeTopology {
 public:
  /// Parses `spec` ("tree:…") for `leaves` leaf sites. On success fills
  /// `*out` and returns true; on failure returns false with a one-line
  /// diagnostic in `*error`.
  static bool Parse(const std::string& spec, int leaves, TreeTopology* out,
                    std::string* error);

  /// Number of edges on a root → leaf path (= number of link tiers).
  /// depth() == 1 is the flat star: no aggregators, root parents the
  /// leaves directly.
  int depth() const { return static_cast<int>(counts_.size()) - 1; }
  int leaves() const { return counts_.back(); }
  bool IsFlat() const { return depth() == 1; }

  /// Nodes at tier t (t = 0 root … depth() leaves).
  int NodesAt(int tier) const { return counts_[static_cast<size_t>(tier)]; }

  /// The per-level fanout caps the spec requested (size == depth()).
  const std::vector<int>& fanouts() const { return fanouts_; }

  /// Children of node `node` at tier `tier` occupy
  /// [ChildBegin, ChildEnd) at tier+1. Requires tier < depth().
  int ChildBegin(int tier, int node) const;
  int ChildEnd(int tier, int node) const;
  int FanIn(int tier, int node) const {
    return ChildEnd(tier, node) - ChildBegin(tier, node);
  }

  /// Parent (at tier-1) of node `node` at tier `tier`. Requires
  /// tier >= 1.
  int Parent(int tier, int node) const;

  /// Leaves under node `node` at tier `tier`.
  int LeavesUnder(int tier, int node) const;

  /// The canonical spec string ("tree:f1,f2,…").
  const std::string& spec() const { return spec_; }

 private:
  std::vector<int> counts_;   // counts_[t] = nodes at tier t; counts_[0]==1
  std::vector<int> fanouts_;  // requested fanout per level, root-side first
  std::string spec_;
};

}  // namespace hier
}  // namespace fgm

#endif  // FGM_HIER_TOPOLOGY_H_
