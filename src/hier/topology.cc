#include "hier/topology.h"

#include <cstdint>

#include "util/check.h"

namespace fgm {
namespace hier {
namespace {

constexpr int64_t kMaxFanout = 1000000;  // sanity cap; also overflow guard

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Parses one fanout level: all-digits, >= 2, <= kMaxFanout.
bool ParseLevel(const std::string& token, int64_t* out, std::string* error) {
  if (token.empty()) return Fail(error, "--topology: empty fanout level");
  int64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Fail(error, "--topology: fanout '" + token + "' is not a number");
    }
    value = value * 10 + (c - '0');
    if (value > kMaxFanout) {
      return Fail(error, "--topology: fanout '" + token + "' overflows (max " +
                             std::to_string(kMaxFanout) + ")");
    }
  }
  if (value < 2) {
    return Fail(error, "--topology: fanout " + token + " below minimum 2");
  }
  *out = value;
  return true;
}

}  // namespace

bool TreeTopology::Parse(const std::string& spec, int leaves,
                         TreeTopology* out, std::string* error) {
  FGM_CHECK(out != nullptr);
  FGM_CHECK_GE(leaves, 1);
  const std::string prefix = "tree:";
  if (spec.compare(0, prefix.size(), prefix) != 0) {
    return Fail(error, "--topology: expected 'tree:<fanout>' or "
                       "'tree:<f1>,<f2>,…', got '" + spec + "'");
  }
  const std::string body = spec.substr(prefix.size());
  if (body.empty()) return Fail(error, "--topology: no fanouts in '" + spec + "'");

  std::vector<int64_t> fanouts;
  size_t start = 0;
  while (true) {
    const size_t comma = body.find(',', start);
    const std::string token = body.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    int64_t value = 0;
    if (!ParseLevel(token, &value, error)) return false;
    fanouts.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }

  if (fanouts.size() == 1) {
    // Single fanout f: the depth is the smallest d with f^d >= leaves.
    const int64_t f = fanouts[0];
    int64_t cover = f;
    while (cover < leaves) {
      cover *= f;  // f >= 2 and leaves <= INT_MAX: no overflow before cover
      fanouts.push_back(f);
    }
  } else {
    // Explicit per-level list: the product must cover the leaf count.
    int64_t cover = 1;
    for (int64_t f : fanouts) {
      cover *= f;
      if (cover >= leaves) break;  // cap before it can overflow
    }
    if (cover < leaves) {
      return Fail(error, "--topology: fanout product " + std::to_string(cover) +
                             " covers fewer than " + std::to_string(leaves) +
                             " sites");
    }
  }

  // Tier sizes bottom-up: n_d = leaves, n_{t-1} = ceil(n_t / f_t). The
  // covering check above guarantees the chain reaches n_0 == 1.
  const int depth = static_cast<int>(fanouts.size());
  std::vector<int> counts(static_cast<size_t>(depth) + 1);
  counts[static_cast<size_t>(depth)] = leaves;
  for (int t = depth; t >= 1; --t) {
    const int64_t n = counts[static_cast<size_t>(t)];
    const int64_t f = fanouts[static_cast<size_t>(t - 1)];
    counts[static_cast<size_t>(t - 1)] = static_cast<int>((n + f - 1) / f);
  }
  FGM_CHECK_EQ(counts[0], 1);

  out->counts_ = std::move(counts);
  out->fanouts_.assign(fanouts.begin(), fanouts.end());
  out->spec_ = "tree:";
  for (size_t i = 0; i < out->fanouts_.size(); ++i) {
    if (i > 0) out->spec_ += ',';
    out->spec_ += std::to_string(out->fanouts_[i]);
  }
  return true;
}

int TreeTopology::ChildBegin(int tier, int node) const {
  FGM_CHECK(tier >= 0 && tier < depth());
  const int64_t np = counts_[static_cast<size_t>(tier)];
  const int64_t nc = counts_[static_cast<size_t>(tier) + 1];
  FGM_CHECK(node >= 0 && node < np);
  return static_cast<int>(static_cast<int64_t>(node) * nc / np);
}

int TreeTopology::ChildEnd(int tier, int node) const {
  FGM_CHECK(tier >= 0 && tier < depth());
  const int64_t np = counts_[static_cast<size_t>(tier)];
  const int64_t nc = counts_[static_cast<size_t>(tier) + 1];
  FGM_CHECK(node >= 0 && node < np);
  return static_cast<int>((static_cast<int64_t>(node) + 1) * nc / np);
}

int TreeTopology::Parent(int tier, int node) const {
  FGM_CHECK(tier >= 1 && tier <= depth());
  const int64_t np = counts_[static_cast<size_t>(tier) - 1];
  const int64_t nc = counts_[static_cast<size_t>(tier)];
  FGM_CHECK(node >= 0 && node < nc);
  // The parent p is the unique node with ⌊p·nc/np⌋ <= node < ⌊(p+1)·nc/np⌋,
  // i.e. the largest p with p·nc <= node·np + np - 1.
  return static_cast<int>(((static_cast<int64_t>(node) + 1) * np - 1) / nc);
}

int TreeTopology::LeavesUnder(int tier, int node) const {
  FGM_CHECK(tier >= 0 && tier <= depth());
  int begin = node;
  int end = node + 1;
  for (int t = tier; t < depth(); ++t) {
    begin = ChildBegin(t, begin);
    const int64_t np = counts_[static_cast<size_t>(t)];
    const int64_t nc = counts_[static_cast<size_t>(t) + 1];
    end = static_cast<int>(static_cast<int64_t>(end) * nc / np);
  }
  return end - begin;
}

}  // namespace hier
}  // namespace fgm
