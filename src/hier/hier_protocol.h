// Hierarchical FGM over a tree topology (scaling k toward 10⁴ sites).
//
// The flat protocol's coordinator talks to every site directly, so the
// root link carries Θ(k) words per subround. HierFgmProtocol arranges
// the k leaf sites under mid-tier AGGREGATORS (hier/topology.h): each
// aggregator runs the subround machinery over its children as a local
// coordinator — counters in its child quantum θ_t, φ-value mini-polls,
// quantum re-baselines — and simultaneously acts as a SITE toward its
// parent by exporting the sum-composed safe value of its subtree
// (Theorem 2.2: Σ_i φ(X_i) ≤ 0 site-wise implies the global bound, and
// the sum over any subtree is itself a valid summand of the parent's
// sum). The root therefore runs the flat FGM round/subround/rebalance
// machinery verbatim over m = (tier-1 node count) subtree-"sites", and
// its link carries Θ(m) words per subround instead of Θ(k).
//
// Composition invariant (per aggregator a with fan f children counting
// against quantum θ_local = θ_up / 2f):
//
//   v̂(a) = z_local + (counter_local + f)·θ_local  ≥  Σ_{leaves under a} λφ(x_i)
//
// since each child's value stays below its last-reported value plus
// (counted units + 1)·θ_local (the flat per-site counter argument,
// applied per child and summed). Aggregators export ⌊(v̂ − z_up)/θ_up⌋
// units upward monotonically, so the root's counter is a conservative
// lower bound on subtree growth in θ_root units — polls can only happen
// EARLIER than flat, never later, and every threshold guarantee of the
// flat protocol carries over.
//
// Scope: depth ≥ 2 trees of the FGM family (FGM, FGM-basic, FGM/O).
// tree:f with f ≥ k is depth 1 — the runner constructs the flat
// protocol for it, byte-identical by construction. Rebalancing and the
// FGM/O plan operate at root granularity (per tier-1 subtree); serial
// execution only (no sharded speculation).
//
// Faults (sim::EventNetwork on the ROOT tier's links): the fault plan
// targets tier-1 aggregators. A subtree whose up-link is down keeps its
// internal machinery running (those links are fine) but suppresses
// exports; the resync handshake re-ships (E, θ, λ, epoch) to the
// aggregator only — the subtree is its stable storage, and the
// "resync"-labelled subround that follows re-baselines every node.

#ifndef FGM_HIER_HIER_PROTOCOL_H_
#define FGM_HIER_HIER_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fgm_config.h"
#include "core/fgm_site.h"
#include "core/optimizer.h"
#include "hier/topology.h"
#include "net/network.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "query/query.h"
#include "safezone/cheap_bound.h"
#include "safezone/safe_function.h"
#include "sim/event_network.h"
#include "util/stats.h"

namespace fgm {

class HierFgmProtocol : public MonitoringProtocol {
 public:
  /// `query` must outlive the protocol. `topo` must have depth >= 2 and
  /// leaves() == the site count of the run.
  HierFgmProtocol(const ContinuousQuery* query, const hier::TreeTopology& topo,
                  FgmConfig config);

  std::string name() const override;
  void ProcessRecord(const StreamRecord& record) override;
  const RealVector& GlobalEstimate() const override { return estimate_; }
  double Estimate() const override { return query_value_; }
  ThresholdPair CurrentThresholds() const override { return thresholds_; }
  /// Root-tier traffic: the coordinator bottleneck the paper's evaluation
  /// measures, and what the k-sweep benchmark compares against flat.
  /// Lower tiers are reported separately (tier_traffic).
  const TrafficStats& traffic() const override {
    return transports_[0]->stats();
  }
  int64_t rounds() const override { return rounds_; }
  bool BoundsCertified() const override;
  void Finish() override;
  const sim::SimNetStats* net_stats() const override {
    return sim_ != nullptr ? &sim_->net_stats() : nullptr;
  }

  const hier::TreeTopology& topology() const { return topo_; }
  /// Link tiers (= tree depth): tier 0 is the root star, tier t the links
  /// between tier-t nodes and their children.
  int tiers() const { return depth_; }
  const TrafficStats& tier_traffic(int tier) const {
    return transports_[static_cast<size_t>(tier)]->stats();
  }

  int64_t subrounds() const { return subrounds_; }
  int64_t rebalances() const { return rebalances_; }
  int64_t overflow_rounds() const { return overflow_rounds_; }
  const CountHistogram& subrounds_per_round() const {
    return subround_histogram_;
  }
  /// Fraction of tier-1 subtrees given the full safe function, averaged
  /// over rounds (FGM/O plans at root granularity).
  double mean_full_function_fraction() const;
  int64_t cheap_plan_overrides() const { return cheap_overrides_; }
  /// Aggregator-local φ-value mini-polls (tier >= 1).
  int64_t local_polls() const { return local_polls_; }

  double last_psi() const { return last_psi_; }
  double last_quantum() const { return last_theta_; }
  double current_lambda() const { return lambda_; }
  int64_t subrounds_this_round() const { return subrounds_this_round_; }
  const FgmConfig& config() const { return config_; }

 private:
  /// One mid-tier aggregator's protocol state. The node is a local
  /// coordinator for its children (z_local/counter_local against
  /// theta_local) and a site toward its parent (z_up/sent_up against
  /// theta_up).
  struct AggNode {
    int child_begin = 0;  ///< first child (global index at tier + 1)
    int child_end = 0;
    int leaves = 0;            ///< leaf sites under this node
    double theta_up = 0.0;     ///< quantum on the up-link
    double theta_local = 0.0;  ///< = theta_up / (2 · fan)
    double z_up = 0.0;         ///< export baseline toward the parent
    double z_local = 0.0;      ///< Σ children's last-reported values
    int64_t counter_local = 0;  ///< child units since the last re-baseline
    int64_t sent_up = 0;        ///< units exported since the last re-baseline
    double last_reported = 0.0;  ///< last value shipped in a poll reply
    int fan() const { return child_end - child_begin; }
  };

  AggNode& Agg(int tier, int node) {
    return aggs_[static_cast<size_t>(tier)][static_cast<size_t>(node)];
  }
  /// Conservative upper bound on Σ λφ(x_i) over the node's subtree.
  double VHat(const AggNode& a) const {
    return a.z_local +
           static_cast<double>(a.counter_local + a.fan()) * a.theta_local;
  }

  // Root-coordinator machinery (the flat protocol at m subtree-"sites").
  void StartRound();
  void EmitRoundObservability();
  void StartSubround(double psi_total, bool analytic);
  void PollAndAdvance(const char* reason = nullptr);
  void TryRebalance();
  void EndRound(bool already_flushed);
  bool CheapRoundOverBudget() const;
  double FindMuStar() const;

  // Tree cascades.
  /// Ships the round's zone (full reference or cheap bound) to every node
  /// of subtree (tier, node) below the already-served root link.
  void CascadeZone(int tier, int node, bool full);
  /// Installs a fresh up-link quantum on aggregator (tier, node) and
  /// recurses: children are (analytically or by mini-poll) re-baselined
  /// and given their local quantum.
  void CascadeSubround(int tier, int node, double theta_up, bool analytic);
  void CascadeLambda(int tier, int node, double lambda);
  /// The value child `node` at `tier` reports to a φ-value poll: a leaf's
  /// committed λφ(x), an aggregator's v̂.
  double ChildValue(int tier, int node);
  /// Re-baselines child `node` at `tier` after its parent's mini-poll:
  /// leaves re-anchor (BeginSubround), aggregators reset their export
  /// baseline to the value they just reported (quantum unchanged — no
  /// recursion).
  void RebaselineChild(int tier, int node, double theta);
  /// Aggregator-local subround end: counter_local crossed the fan-in.
  /// Polls the children, re-baselines them, resets the local counter.
  void LocalPoll(int tier, int node);
  /// Books `units` child quantum-units at aggregator (tier, node),
  /// exports upward, and runs the local poll when the counter crosses
  /// the fan-in.
  void NoteChildUnits(int tier, int node, int64_t units);
  /// Ships ⌊(v̂ − z_up)/θ_up⌋ − sent_up fresh units up the tree (counter
  /// datagram at tier 1 under sim, synchronous increments otherwise).
  void ExportUp(int tier, int node);
  /// Applies a root-tier counter increment from tier-1 aggregator `agg`
  /// and returns true when the root must poll.
  bool ApplyRootIncrement(int agg, int64_t increment);
  /// Collects subtree (tier, node)'s drift: flush requests to every
  /// child, drifts summed, returned as ONE dense upward message (or the
  /// 1-word empty acknowledgement).
  DriftFlushMsg CollectSubtreeFlush(int tier, int node);
  /// Root side of the end-of-round / rebalance flush over every in-round
  /// subtree.
  void FlushAllSubtrees();

  // Simulated-network machinery at root granularity (tier-1 aggregators
  // are the fault domain; all no-ops when sim_ == nullptr).
  void SimTick();
  void DrainNetwork();
  void HandleFault(const sim::FaultNotice& fault);
  void HandleCounterDelivery(const sim::CounterDelivery& delivery);
  void ApplyCounterDelta(int agg, int64_t cumulative, const char* reason);
  void MaybeSilencePoll();
  void CheckDeadlines();
  void ResyncAggregator(int agg);
  void RejoinReconfigure(int agg);
  void CloseSubroundForced(const char* reason);
  bool AnyInRoundAggDown() const;
  int64_t PendingExportWeight() const;
  /// Per-tier kTierEnd traffic events (emitted once, from Finish()).
  void EmitTierEnds();

  const ContinuousQuery* query_;
  hier::TreeTopology topo_;
  int depth_;     ///< link tiers (tree depth)
  int m_;         ///< tier-1 nodes: the root's subtree-"sites"
  int k_leaves_;  ///< leaf sites
  FgmConfig config_;
  /// transports_[t] carries every tier-t parent ↔ child link, with the
  /// child's GLOBAL tier-(t+1) index as the endpoint id. Tier 0 is the
  /// root star (the sim::EventNetwork when the net sim is enabled);
  /// lower tiers are synchronous.
  std::vector<std::unique_ptr<Transport>> transports_;

  sim::EventNetwork* sim_ = nullptr;
  bool lossy_net_ = false;
  int live_m_;       ///< tier-1 members of the current round
  int live_leaves_;  ///< leaves under the in-round subtrees
  std::vector<uint8_t> agg_ok_;
  std::vector<uint8_t> in_round_;
  std::vector<int64_t> down_since_;
  std::vector<int64_t> coord_seen_ci_;
  bool paused_ = false;
  int64_t last_counter_activity_ = 0;

  TraceSink* trace_ = nullptr;
  SpanSink* spans_ = nullptr;
  HealthMonitor* health_ = nullptr;
  int64_t round_span_ = 0;
  int64_t subround_span_ = 0;
  WallTimer* sketch_timer_ = nullptr;
  WallTimer* safe_fn_timer_ = nullptr;

  RealVector estimate_;
  double query_value_ = 0.0;
  ThresholdPair thresholds_{0.0, 0.0};

  std::unique_ptr<SafeFunction> safe_fn_;
  std::unique_ptr<CheapBoundFunction> cheap_fn_;
  std::vector<std::unique_ptr<SafeFunction>> retired_safe_fns_;
  double phi_zero_ = -1.0;
  /// φ(0)·live_leaves / live_m: the per-subtree-site φ(0) the root's
  /// trace events carry, so the replay checker's flat arithmetic
  /// (ψ₀ = k·φ(0)', stop = ε·k·φ(0)', θ = −ψ/2k) certifies the root tier
  /// verbatim with k = live_m.
  double phi0_prime_ = -1.0;

  std::vector<FgmSite> sites_;                 ///< the k leaves
  std::vector<std::vector<AggNode>> aggs_;     ///< [tier][node], tiers 1..D-1
  std::vector<int> leaves1_;                   ///< leaves under tier-1 node j
  std::vector<uint8_t> plan_;                  ///< FGM/O d_j per subtree

  RealVector balance_;
  double lambda_ = 1.0;
  double psi_b_ = 0.0;

  int64_t counter_total_ = 0;
  double last_psi_ = 0.0;
  double last_theta_ = 0.0;
  int64_t subrounds_this_round_ = 0;

  bool plan_predicted_ = false;
  double plan_pred_len_ = 0.0;
  double plan_pred_gain_ = 0.0;
  double plan_pred_rate_ = 0.0;
  std::array<int64_t, static_cast<size_t>(MsgKind::kKindCount)>
      round_start_words_by_kind_{};

  std::vector<RealVector> round_drift_;     ///< per-subtree Σ flushes
  std::vector<int64_t> subtree_updates_;    ///< per-subtree updates/round
  bool have_rates_ = false;
  std::vector<SiteRates> prev_rates_;
  bool have_older_rates_ = false;
  std::vector<SiteRates> older_rates_;
  mutable std::vector<SiteRates> scratch_rates_;

  int64_t round_start_words_ = 0;
  int64_t round_start_updates_ = 0;
  int64_t total_updates_ = 0;
  double class_cost_ewma_[2] = {0.0, 0.0};
  int64_t class_cost_count_[2] = {0, 0};
  int64_t cheap_overrides_ = 0;

  int64_t rounds_ = 0;
  int64_t subrounds_ = 0;
  int64_t rebalances_ = 0;
  int64_t overflow_rounds_ = 0;
  int64_t local_polls_ = 0;
  CountHistogram subround_histogram_{64};
  int64_t full_function_ships_ = 0;
  int64_t total_function_ships_ = 0;
  bool tier_ends_emitted_ = false;

  RealVector flush_scratch_;
  RealVector flush_sum_scratch_;
};

}  // namespace fgm

#endif  // FGM_HIER_HIER_PROTOCOL_H_
