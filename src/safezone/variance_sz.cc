#include "safezone/variance_sz.h"

#include <cmath>
#include <vector>

#include "safezone/compose.h"
#include "util/check.h"

namespace fgm {

namespace {
// States with fewer than this many items have undefined variance.
constexpr double kMinCount = 1e-9;
// Reported when the drift pushes the count to ~0 (outside the zone; the
// value is large so the protocol reacts, and safety errs conservative).
constexpr double kOutOfDomain = 1e30;
}  // namespace

double VarianceOfState(const RealVector& state) {
  FGM_CHECK_EQ(state.dim(), 3u);
  const double n = state[0];
  if (n <= kMinCount) return 0.0;
  const double mean = state[1] / n;
  return state[2] / n - mean * mean;
}

// ---------------------------------------------------------------------------
// Lower bound
// ---------------------------------------------------------------------------

VarianceLowerSafeFunction::VarianceLowerSafeFunction(RealVector reference,
                                                     double t_lo)
    : reference_(std::move(reference)), t_lo_(t_lo) {
  FGM_CHECK_EQ(reference_.dim(), 3u);
  const double n = reference_[0];
  FGM_CHECK_GT(n, kMinCount);
  FGM_CHECK_GT(VarianceOfState(reference_), t_lo);
  const double v1 = reference_[1];
  // Gradient of the unnormalized function at the reference.
  const double g0 = -v1 * v1 / (n * n) + t_lo_;
  const double g1 = 2.0 * v1 / n;
  scale_ = std::sqrt(g0 * g0 + g1 * g1 + 1.0);
}

double VarianceLowerSafeFunction::Eval(const RealVector& x) const {
  FGM_CHECK_EQ(x.dim(), 3u);
  const double n = reference_[0] + x[0];
  if (n <= kMinCount) return kOutOfDomain;
  const double v1 = reference_[1] + x[1];
  const double v2 = reference_[2] + x[2];
  return (v1 * v1 / n + t_lo_ * n - v2) / scale_;
}

std::unique_ptr<DriftEvaluator> VarianceLowerSafeFunction::MakeEvaluator()
    const {
  // The state is 3-dimensional; from-scratch evaluation is O(1) anyway.
  return std::make_unique<NaiveDriftEvaluator>(this);
}

double VarianceLowerSafeFunction::LipschitzBound() const {
  // The quadratic-over-linear term has unbounded gradient; report a
  // conservative constant so cheap bounds are never competitive.
  return 1e12;
}

// ---------------------------------------------------------------------------
// Upper bound
// ---------------------------------------------------------------------------

VarianceUpperSafeFunction::VarianceUpperSafeFunction(RealVector reference,
                                                     double t_hi)
    : reference_(std::move(reference)), t_hi_(t_hi), w_(3) {
  FGM_CHECK_EQ(reference_.dim(), 3u);
  const double n = reference_[0];
  FGM_CHECK_GT(n, kMinCount);
  FGM_CHECK_LT(VarianceOfState(reference_), t_hi);
  const double v1 = reference_[1];
  // φ(x) = c0 + w·x with the tangent plane of q(V1, n) = V1²/n at E.
  w_[0] = v1 * v1 / (n * n) - t_hi_;
  w_[1] = -2.0 * v1 / n;
  w_[2] = 1.0;
  c0_ = reference_[2] - t_hi_ * n - v1 * v1 / n;
  const double norm = w_.Norm();
  w_ *= 1.0 / norm;
  c0_ /= norm;
  FGM_CHECK_LT(c0_, 0.0);
}

double VarianceUpperSafeFunction::Eval(const RealVector& x) const {
  FGM_CHECK_EQ(x.dim(), 3u);
  return c0_ + w_.Dot(x);
}

std::unique_ptr<DriftEvaluator> VarianceUpperSafeFunction::MakeEvaluator()
    const {
  return std::make_unique<NaiveDriftEvaluator>(this);
}

double VarianceUpperSafeFunction::LipschitzBound() const {
  return 1.0;  // unit-normal affine function
}

std::unique_ptr<SafeFunction> MakeVarianceSafeFunction(
    const RealVector& reference, double t_lo, double t_hi) {
  std::vector<std::unique_ptr<SafeFunction>> children;
  children.push_back(
      std::make_unique<VarianceUpperSafeFunction>(reference, t_hi));
  if (t_lo > 0.0) {
    children.push_back(
        std::make_unique<VarianceLowerSafeFunction>(reference, t_lo));
  }
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<MaxComposition>(std::move(children));
}

}  // namespace fgm
