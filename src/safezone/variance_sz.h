// Safe functions for variance conditions (the classic motivating query of
// geometric monitoring, Sharfman et al. SIGMOD'06).
//
// The linear state is s = (n, V1, V2) = (count, Σv, Σv²); the variance is
//     var(s) = V2/n - (V1/n)².
// Both side conditions reduce to the quadratic-over-linear function
// q(V1, n) = V1²/n, which is jointly convex on {n > 0} (the perspective
// of the square):
//
//  * lower bound var ≥ T_lo (for T_lo > 0):
//        φ_lo(x) = [ (V1+x1)²/(n+x0) + T_lo·(n+x0) - (V2+x2) ] / scale
//    is convex (sum of q, linear, linear) and its 0-sublevel is exactly
//    the admissible set on {n + x0 > 0};
//  * upper bound var ≤ T_hi: since V2 - T_hi·n ≤ q(V1, n) defines the
//    region and q is convex, replacing q by its tangent plane at the
//    reference gives a halfspace inside the region:
//        φ_hi(x) = [ (V2+x2) - T_hi(n+x0)
//                    - (V1²/n + (2V1/n)x1 - (V1²/n²)x0) ] / scale.
//
// Both functions are normalized by `scale` (the gradient magnitude at
// the reference) so their values are commensurate with distances near E;
// they are not globally nonexpansive (the library reports a conservative
// Lipschitz bound, so FGM/O falls back to full safe functions).

#ifndef FGM_SAFEZONE_VARIANCE_SZ_H_
#define FGM_SAFEZONE_VARIANCE_SZ_H_

#include <memory>

#include "safezone/safe_function.h"
#include "util/real_vector.h"

namespace fgm {

/// φ_lo above: safe for {var(s) ≥ T_lo} around reference E = (n, V1, V2)
/// with n > 0 and var(E) > T_lo.
class VarianceLowerSafeFunction : public SafeFunction {
 public:
  VarianceLowerSafeFunction(RealVector reference, double t_lo);

  size_t dimension() const override { return 3; }
  double Eval(const RealVector& x) const override;
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;
  double LipschitzBound() const override;

 private:
  RealVector reference_;
  double t_lo_;
  double scale_;
};

/// φ_hi above: safe for {var(s) ≤ T_hi} around reference E with n > 0 and
/// var(E) < T_hi.
class VarianceUpperSafeFunction : public SafeFunction {
 public:
  VarianceUpperSafeFunction(RealVector reference, double t_hi);

  size_t dimension() const override { return 3; }
  double Eval(const RealVector& x) const override;
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;
  double LipschitzBound() const override;

 private:
  RealVector reference_;
  double t_hi_;
  // Affine form φ(x) = c0 + w·x, precomputed.
  double c0_;
  RealVector w_;
};

/// Variance of a (count, Σv, Σv²) state; 0 when the count is ~0.
double VarianceOfState(const RealVector& state);

/// The two-sided variance safe function: max(φ_lo, φ_hi), with the lower
/// side omitted when T_lo ≤ 0 (variance is nonnegative).
std::unique_ptr<SafeFunction> MakeVarianceSafeFunction(
    const RealVector& reference, double t_lo, double t_hi);

}  // namespace fgm

#endif  // FGM_SAFEZONE_VARIANCE_SZ_H_
