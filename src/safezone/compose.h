// Safe-function composition (Theorem 2.2).
//
// If φ_i is (A_i, E, k)-safe, then
//   * sup_i φ_i is (∩_i A_i, E, k)-safe — intersections of admissible
//     regions compose by pointwise max;
//   * Σ_i φ_i is (∪_i A_i, E, k)-safe (finite families) — unions compose
//     by pointwise sum.
//
// The max composition is the workhorse: two-sided bounds are the
// intersection of an upper- and a lower-bound region, e.g. the paper's F2
// function with deletions (§3.0.3):
//   φ(x) = max{ -ε‖E‖ - x·E/‖E‖,  ‖x+E‖ - (1+ε)‖E‖ }.

#ifndef FGM_SAFEZONE_COMPOSE_H_
#define FGM_SAFEZONE_COMPOSE_H_

#include <memory>
#include <vector>

#include "safezone/safe_function.h"
#include "util/real_vector.h"

namespace fgm {

/// Pointwise maximum of safe functions (intersection of regions).
class MaxComposition : public SafeFunction {
 public:
  explicit MaxComposition(
      std::vector<std::unique_ptr<SafeFunction>> children);

  size_t dimension() const override;
  double Eval(const RealVector& x) const override;
  double AtZero() const override;
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;
  double LipschitzBound() const override;

  const std::vector<std::unique_ptr<SafeFunction>>& children() const {
    return children_;
  }

 private:
  std::vector<std::unique_ptr<SafeFunction>> children_;
};

/// Pointwise sum of safe functions (union of regions; finite family).
class SumComposition : public SafeFunction {
 public:
  explicit SumComposition(
      std::vector<std::unique_ptr<SafeFunction>> children);

  size_t dimension() const override;
  double Eval(const RealVector& x) const override;
  double AtZero() const override;
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;
  double LipschitzBound() const override;

 private:
  std::vector<std::unique_ptr<SafeFunction>> children_;
};

/// Builds the two-sided F2 safe function of §3.0.3 for reference E and
/// accuracy ε: admissible region (1-ε)‖E‖ ≤ ‖S‖ ≤ (1+ε)‖E‖.
/// Requires ‖E‖ > 0.
std::unique_ptr<SafeFunction> MakeF2TwoSided(const RealVector& reference,
                                             double epsilon);

}  // namespace fgm

#endif  // FGM_SAFEZONE_COMPOSE_H_
