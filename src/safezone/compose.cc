#include "safezone/compose.h"

#include <algorithm>

#include "safezone/ball.h"
#include "safezone/halfspace.h"
#include "util/check.h"

namespace fgm {

namespace {

// Forwards deltas to one child evaluator each; for λ > 0,
//   λ·max_i φ_i(x/λ) = max_i λφ_i(x/λ)  and  λ·Σφ_i(x/λ) = Σ λφ_i(x/λ),
// so perspectives compose child-wise. The drift vector is read from the
// first child (all children hold identical drifts).
class ComposedEvaluator : public DriftEvaluator {
 public:
  ComposedEvaluator(std::vector<std::unique_ptr<DriftEvaluator>> children,
                    bool is_max)
      : children_(std::move(children)), is_max_(is_max) {
    FGM_CHECK(!children_.empty());
  }

  void ApplyDelta(size_t index, double delta) override {
    for (auto& child : children_) child->ApplyDelta(index, delta);
  }

  double Value() const override { return ValueAtScale(1.0); }

  double ValueAtScale(double lambda) const override {
    double acc = children_[0]->ValueAtScale(lambda);
    for (size_t i = 1; i < children_.size(); ++i) {
      const double v = children_[i]->ValueAtScale(lambda);
      acc = is_max_ ? std::max(acc, v) : acc + v;
    }
    return acc;
  }

  void Reset() override {
    for (auto& child : children_) child->Reset();
  }

  const RealVector& drift() const override { return children_[0]->drift(); }

  std::unique_ptr<DriftEvaluator> Clone() const override {
    std::vector<std::unique_ptr<DriftEvaluator>> copies;
    copies.reserve(children_.size());
    for (const auto& child : children_) copies.push_back(child->Clone());
    return std::make_unique<ComposedEvaluator>(std::move(copies), is_max_);
  }

 private:
  std::vector<std::unique_ptr<DriftEvaluator>> children_;
  bool is_max_;
};

void CheckChildren(
    const std::vector<std::unique_ptr<SafeFunction>>& children) {
  FGM_CHECK(!children.empty());
  for (const auto& child : children) {
    FGM_CHECK(child != nullptr);
    FGM_CHECK_EQ(child->dimension(), children[0]->dimension());
  }
}

std::unique_ptr<DriftEvaluator> MakeComposedEvaluator(
    const std::vector<std::unique_ptr<SafeFunction>>& children, bool is_max) {
  std::vector<std::unique_ptr<DriftEvaluator>> evals;
  evals.reserve(children.size());
  for (const auto& child : children) evals.push_back(child->MakeEvaluator());
  return std::make_unique<ComposedEvaluator>(std::move(evals), is_max);
}

}  // namespace

MaxComposition::MaxComposition(
    std::vector<std::unique_ptr<SafeFunction>> children)
    : children_(std::move(children)) {
  CheckChildren(children_);
}

size_t MaxComposition::dimension() const { return children_[0]->dimension(); }

double MaxComposition::Eval(const RealVector& x) const {
  double acc = children_[0]->Eval(x);
  for (size_t i = 1; i < children_.size(); ++i) {
    acc = std::max(acc, children_[i]->Eval(x));
  }
  return acc;
}

double MaxComposition::AtZero() const {
  double acc = children_[0]->AtZero();
  for (size_t i = 1; i < children_.size(); ++i) {
    acc = std::max(acc, children_[i]->AtZero());
  }
  return acc;
}

std::unique_ptr<DriftEvaluator> MaxComposition::MakeEvaluator() const {
  return MakeComposedEvaluator(children_, /*is_max=*/true);
}

double MaxComposition::LipschitzBound() const {
  double acc = 0.0;
  for (const auto& child : children_) {
    acc = std::max(acc, child->LipschitzBound());
  }
  return acc;
}

SumComposition::SumComposition(
    std::vector<std::unique_ptr<SafeFunction>> children)
    : children_(std::move(children)) {
  CheckChildren(children_);
}

size_t SumComposition::dimension() const { return children_[0]->dimension(); }

double SumComposition::Eval(const RealVector& x) const {
  double acc = 0.0;
  for (const auto& child : children_) acc += child->Eval(x);
  return acc;
}

double SumComposition::AtZero() const {
  double acc = 0.0;
  for (const auto& child : children_) acc += child->AtZero();
  return acc;
}

std::unique_ptr<DriftEvaluator> SumComposition::MakeEvaluator() const {
  return MakeComposedEvaluator(children_, /*is_max=*/false);
}

double SumComposition::LipschitzBound() const {
  double acc = 0.0;
  for (const auto& child : children_) acc += child->LipschitzBound();
  return acc;
}

std::unique_ptr<SafeFunction> MakeF2TwoSided(const RealVector& reference,
                                             double epsilon) {
  const double norm = reference.Norm();
  FGM_CHECK_GT(norm, 0.0);
  FGM_CHECK_GT(epsilon, 0.0);
  std::vector<std::unique_ptr<SafeFunction>> children;
  // Lower bound ‖S‖ ≥ (1-ε)‖E‖: halfspace tangent to the inner ball at the
  // projection of E, φ(x) = -ε‖E‖ - x·E/‖E‖.
  children.push_back(std::make_unique<HalfspaceSafeFunction>(
      reference, -epsilon * norm));
  // Upper bound ‖S‖ ≤ (1+ε)‖E‖: the ball φ(x) = ‖x+E‖ - (1+ε)‖E‖.
  children.push_back(std::make_unique<BallSafeFunction>(
      reference, (1.0 + epsilon) * norm));
  return std::make_unique<MaxComposition>(std::move(children));
}

}  // namespace fgm
