#include "safezone/safe_function.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace fgm {

double PerspectiveEval(const SafeFunction& fn, const RealVector& x,
                       double lambda) {
  FGM_CHECK_GT(lambda, 0.0);
  FGM_CHECK_LE(lambda, 1.0);
  if (lambda == 1.0) return fn.Eval(x);
  RealVector scaled = x;
  scaled *= 1.0 / lambda;
  return lambda * fn.Eval(scaled);
}

double NaiveDriftEvaluator::ValueAtScale(double lambda) const {
  return PerspectiveEval(*fn_, x_, lambda);
}

ParanoidDriftEvaluator::ParanoidDriftEvaluator(
    const SafeFunction* fn, std::unique_ptr<DriftEvaluator> inner,
    int64_t period)
    : fn_(fn), inner_(std::move(inner)), period_(period) {
  FGM_CHECK(fn_ != nullptr);
  FGM_CHECK(inner_ != nullptr);
  FGM_CHECK_GE(period_, 1);
}

void ParanoidDriftEvaluator::ApplyDelta(size_t index, double delta) {
  inner_->ApplyDelta(index, delta);
  if (++since_check_ >= period_) {
    since_check_ = 0;
    CrossCheck();
  }
}

void ParanoidDriftEvaluator::Reset() {
  inner_->Reset();
  since_check_ = 0;
}

void ParanoidDriftEvaluator::CrossCheck() const {
  const double incremental = inner_->Value();
  const double reference = fn_->Eval(inner_->drift());
  // The incremental value accumulates one rounding per delta; allow a
  // generous relative band around the reference before declaring the
  // maintenance broken.
  const double tol = 1e-6 * std::max(1.0, std::fabs(reference));
  if (!(std::fabs(incremental - reference) <= tol)) {
    FGM_CHECK(false &&
              "FGM_PARANOID: incremental safe-function value diverged from "
              "the reference evaluation");
  }
}

std::unique_ptr<DriftEvaluator> ParanoidDriftEvaluator::Clone() const {
  auto copy =
      std::make_unique<ParanoidDriftEvaluator>(fn_, inner_->Clone(), period_);
  copy->since_check_ = since_check_;
  return copy;
}

std::unique_ptr<DriftEvaluator> MakeCheckedEvaluator(
    const SafeFunction* fn, std::unique_ptr<DriftEvaluator> inner) {
  // Read the environment on every call (rounds are rare; this is not a
  // hot path) so tests can toggle the mode within one process.
  const char* env = std::getenv("FGM_PARANOID");
  if (env == nullptr || env[0] == '\0') return inner;
  const long long parsed = std::strtoll(env, nullptr, 10);
  const int64_t period = parsed > 0 ? static_cast<int64_t>(parsed) : 64;
  return std::make_unique<ParanoidDriftEvaluator>(fn, std::move(inner),
                                                  period);
}

}  // namespace fgm
