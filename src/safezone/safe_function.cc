#include "safezone/safe_function.h"

#include "util/check.h"

namespace fgm {

double PerspectiveEval(const SafeFunction& fn, const RealVector& x,
                       double lambda) {
  FGM_CHECK_GT(lambda, 0.0);
  FGM_CHECK_LE(lambda, 1.0);
  if (lambda == 1.0) return fn.Eval(x);
  RealVector scaled = x;
  scaled *= 1.0 / lambda;
  return lambda * fn.Eval(scaled);
}

double NaiveDriftEvaluator::ValueAtScale(double lambda) const {
  return PerspectiveEval(*fn_, x_, lambda);
}

}  // namespace fgm
