// Weighted median composition of per-row safe functions (paper §5.1.1,
// following Garofalakis & Samoladas, ICDT'17).
//
// Sketch estimates take a median over d rows; the condition
//     median_i{ c_i(S[i]) } ≤ 0
// holds iff at least ⌈d/2⌉ = (d+1)/2 of the per-row conditions hold
// (d odd). Given per-row safe functions φ_i with φ_i(0) < 0 on the set
// D = {rows whose condition holds strictly at the reference}, the
// composed function is
//     φ(X) = max_{I ⊆ D, |I| = |D| - (d-1)/2}
//               Σ_{i∈I} w_i·φ_i(X[i]) / √(Σ_{i∈I} w_i²),
// with weights w_i = |φ_i(0)|.
//
// Why it is safe: if φ(X) ≤ 0, every such subset has a nonpositive
// weighted sum, so fewer than |I| of the φ_i (i ∈ D) are positive — at
// least |D| - (|I|-1) ≥ (d+1)/2 rows still satisfy their condition, and
// the median condition holds. The 1/√(Σw²) normalization keeps the
// composition nonexpansive (Cauchy–Schwarz across rows) whenever the row
// functions are, and φ(0) = -min_I √(Σ_{i∈I} w_i²) < 0.
//
// d is small (5–9), so the subsets are enumerated explicitly.

#ifndef FGM_SAFEZONE_MEDIAN_COMPOSE_H_
#define FGM_SAFEZONE_MEDIAN_COMPOSE_H_

#include <vector>

namespace fgm {

class MedianComposition {
 public:
  /// `weights` are w_i = |φ_i(0)| for the participating rows (all > 0);
  /// `subset_size` is |D| - (d-1)/2 and must be in [1, |D|].
  MedianComposition(std::vector<double> weights, int subset_size);

  /// Empty composition (no rows participate; Compose returns -inf
  /// sentinel). Used when one side of a two-sided bound is trivially true.
  MedianComposition() = default;

  bool empty() const { return subsets_.empty(); }
  int subset_size() const { return subset_size_; }

  /// Composed value given the current per-row values (same order as the
  /// weights passed at construction).
  double Compose(const std::vector<double>& row_values) const;

  /// Composed value at zero: -min_I √(Σ_{i∈I} w_i²).
  double AtZero() const { return at_zero_; }

 private:
  struct Subset {
    std::vector<int> rows;       // indices into the weights vector
    std::vector<double> weight;  // w_i for those rows
    double inv_norm;             // 1/√(Σ w_i²)
  };

  std::vector<double> weights_;
  int subset_size_ = 0;
  std::vector<Subset> subsets_;
  double at_zero_ = 0.0;
};

}  // namespace fgm

#endif  // FGM_SAFEZONE_MEDIAN_COMPOSE_H_
