#include "safezone/norm_threshold.h"

#include <cmath>

#include "util/check.h"

namespace fgm {

namespace {

// Maintains Σ_j |x_j + E_j|^p by replacing the contribution of the touched
// coordinate: O(1) per delta. The perspective for p != 2 has no closed
// incremental form (‖x/λ + E‖_p mixes scales per-coordinate), so
// ValueAtScale recomputes in O(D); p == 2 uses the ball-style O(1) path.
class LpEvaluator : public VectorDriftEvaluator {
 public:
  explicit LpEvaluator(const LpNormThreshold* fn)
      : VectorDriftEvaluator(fn->dimension()),
        fn_(fn),
        is_l2_(fn->p() == 2.0),
        ref_sq_(is_l2_ ? fn->reference().SquaredNorm() : 0.0) {
    Reset();
  }

  void ApplyDelta(size_t index, double delta) override {
    const double e = fn_->reference()[index];
    if (is_l2_) {
      q_ += (2.0 * x_[index] + delta) * delta;
      d_ += e * delta;
    } else {
      const double old_v = x_[index] + e;
      const double new_v = old_v + delta;
      psum_ += std::pow(std::fabs(new_v), fn_->p()) -
               std::pow(std::fabs(old_v), fn_->p());
    }
    x_[index] += delta;
  }

  double Value() const override {
    if (is_l2_) {
      const double arg = q_ + 2.0 * d_ + ref_sq_;
      return std::sqrt(std::max(arg, 0.0)) - fn_->threshold();
    }
    return std::pow(std::max(psum_, 0.0), 1.0 / fn_->p()) - fn_->threshold();
  }

  double ValueAtScale(double lambda) const override {
    if (is_l2_) {
      const double arg = q_ + 2.0 * lambda * d_ + lambda * lambda * ref_sq_;
      return std::sqrt(std::max(arg, 0.0)) - lambda * fn_->threshold();
    }
    return PerspectiveEval(*fn_, x_, lambda);
  }

  void Reset() override {
    x_.SetZero();
    q_ = 0.0;
    d_ = 0.0;
    psum_ = 0.0;
    if (!is_l2_) {
      for (size_t i = 0; i < fn_->dimension(); ++i) {
        psum_ += std::pow(std::fabs(fn_->reference()[i]), fn_->p());
      }
    }
  }

  std::unique_ptr<DriftEvaluator> Clone() const override {
    return std::make_unique<LpEvaluator>(*this);
  }

 private:
  const LpNormThreshold* fn_;
  bool is_l2_;
  double ref_sq_;
  double q_ = 0.0;     // ‖x‖²            (p == 2)
  double d_ = 0.0;     // x·E             (p == 2)
  double psum_ = 0.0;  // Σ|x_j + E_j|^p  (p != 2)
};

}  // namespace

LpNormThreshold::LpNormThreshold(RealVector reference, double p,
                                 double threshold)
    : reference_(std::move(reference)), p_(p), threshold_(threshold) {
  FGM_CHECK_GE(p, 1.0);
  FGM_CHECK_GT(threshold, reference_.LpNorm(p));
}

double LpNormThreshold::Eval(const RealVector& x) const {
  FGM_CHECK_EQ(x.dim(), reference_.dim());
  RealVector shifted = x;
  shifted += reference_;
  return shifted.LpNorm(p_) - threshold_;
}

double LpNormThreshold::AtZero() const {
  return reference_.LpNorm(p_) - threshold_;
}

std::unique_ptr<DriftEvaluator> LpNormThreshold::MakeEvaluator() const {
  return std::make_unique<LpEvaluator>(this);
}

double LpNormThreshold::LipschitzBound() const {
  if (p_ >= 2.0) return 1.0;
  // ‖v‖_p <= D^{1/p - 1/2} ‖v‖_2 for 1 <= p < 2.
  return std::pow(static_cast<double>(dimension()), 1.0 / p_ - 0.5);
}

}  // namespace fgm
