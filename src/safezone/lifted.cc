#include "safezone/lifted.h"

#include "util/check.h"

namespace fgm {

namespace {

// Owns the full-width drift; forwards only the block's deltas to the
// inner evaluator. Coordinates outside the block cannot affect the inner
// value, so Value/ValueAtScale delegate directly.
class LiftedEvaluator : public VectorDriftEvaluator {
 public:
  LiftedEvaluator(const LiftedSafeFunction* fn,
                  std::unique_ptr<DriftEvaluator> inner)
      : VectorDriftEvaluator(fn->dimension()),
        fn_(fn),
        inner_(std::move(inner)) {}

  void ApplyDelta(size_t index, double delta) override {
    x_[index] += delta;
    const size_t offset = fn_->offset();
    if (index >= offset && index < offset + fn_->inner().dimension()) {
      inner_->ApplyDelta(index - offset, delta);
    }
  }

  double Value() const override { return inner_->Value(); }
  double ValueAtScale(double lambda) const override {
    return inner_->ValueAtScale(lambda);
  }

  void Reset() override {
    x_.SetZero();
    inner_->Reset();
  }

  std::unique_ptr<DriftEvaluator> Clone() const override {
    auto copy = std::make_unique<LiftedEvaluator>(fn_, inner_->Clone());
    copy->x_ = x_;
    return copy;
  }

 private:
  const LiftedSafeFunction* fn_;
  std::unique_ptr<DriftEvaluator> inner_;
};

}  // namespace

LiftedSafeFunction::LiftedSafeFunction(std::unique_ptr<SafeFunction> inner,
                                       size_t offset, size_t total_dim)
    : inner_(std::move(inner)), offset_(offset), total_dim_(total_dim) {
  FGM_CHECK(inner_ != nullptr);
  FGM_CHECK_LE(offset_ + inner_->dimension(), total_dim_);
}

double LiftedSafeFunction::Eval(const RealVector& x) const {
  FGM_CHECK_EQ(x.dim(), total_dim_);
  RealVector block(inner_->dimension());
  for (size_t i = 0; i < block.dim(); ++i) block[i] = x[offset_ + i];
  return inner_->Eval(block);
}

std::unique_ptr<DriftEvaluator> LiftedSafeFunction::MakeEvaluator() const {
  return std::make_unique<LiftedEvaluator>(this, inner_->MakeEvaluator());
}

}  // namespace fgm
