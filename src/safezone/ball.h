// Ball safe function: φ(x) = ‖x + c‖ - r.
//
// Its 0-sublevel is the ball of radius r centered at -c; shifted by the
// reference E (folded into c by the caller), this is the canonical safe
// function for upper bounds on Euclidean norms, e.g. the paper's
//     φ⁺_i(x) = ‖x + E[i]‖ - √T⁺
// per-row self-join condition (§5.1.1) and the F2 upper bound of §3.0.3.
// Convex and nonexpansive. Preferred over ‖x+c‖² - r² because the
// first-degree form is level-minimal (Thm 2.5 / Fig. 1).

#ifndef FGM_SAFEZONE_BALL_H_
#define FGM_SAFEZONE_BALL_H_

#include <memory>

#include "safezone/safe_function.h"
#include "util/real_vector.h"

namespace fgm {

class BallSafeFunction : public SafeFunction {
 public:
  /// φ(x) = ‖x + center‖ - radius. Requires radius > ‖center‖ for
  /// φ(0) < 0 (checked).
  BallSafeFunction(RealVector center, double radius);

  size_t dimension() const override { return center_.dim(); }
  double Eval(const RealVector& x) const override;
  double AtZero() const override;
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;

  const RealVector& center() const { return center_; }
  double radius() const { return radius_; }

 private:
  RealVector center_;
  double radius_;
};

}  // namespace fgm

#endif  // FGM_SAFEZONE_BALL_H_
