// Halfspace safe function: φ(x) = β - n·x with a unit normal n.
//
// Its 0-sublevel is the halfspace {x : n·x ≥ β}. With β < 0 this is the
// paper's safe function for lower bounds via a supporting hyperplane, e.g.
// the F2 lower bound of §3.0.3:
//     φ(x) = -ε‖E‖ - x·E/‖E‖,
// i.e. the halfspace tangent to the ball {‖x+E‖ ≥ (1-ε)‖E‖} at the
// projection of E. Affine, hence convex; nonexpansive since ‖n‖ = 1.

#ifndef FGM_SAFEZONE_HALFSPACE_H_
#define FGM_SAFEZONE_HALFSPACE_H_

#include <memory>

#include "safezone/safe_function.h"
#include "util/real_vector.h"

namespace fgm {

class HalfspaceSafeFunction : public SafeFunction {
 public:
  /// φ(x) = offset - normal·x / ‖normal‖. Requires offset < 0 (φ(0) < 0)
  /// and a nonzero normal; the normal is normalized internally.
  HalfspaceSafeFunction(RealVector normal, double offset);

  size_t dimension() const override { return normal_.dim(); }
  double Eval(const RealVector& x) const override;
  double AtZero() const override { return offset_; }
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;

  const RealVector& unit_normal() const { return normal_; }
  double offset() const { return offset_; }

 private:
  RealVector normal_;  // unit length
  double offset_;
};

}  // namespace fgm

#endif  // FGM_SAFEZONE_HALFSPACE_H_
