#include "safezone/join_sz.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fgm {

class JoinEvaluator : public VectorDriftEvaluator {
 public:
  explicit JoinEvaluator(const JoinSafeFunction* fn)
      : VectorDriftEvaluator(fn->dimension()),
        fn_(fn),
        half_dim_(fn->projection().dimension()),
        width_(fn->projection().width()),
        qdu_(static_cast<size_t>(fn->projection().depth()), 0.0),
        udu_(qdu_),
        qdv_(qdu_),
        vdv_(qdu_),
        upper_scratch_(fn->upper_forms_.size()),
        lower_scratch_(fn->lower_forms_.size()) {}

  void ApplyDelta(size_t index, double delta) override {
    const bool first = index < half_dim_;
    const size_t idx0 = first ? index : index - half_dim_;
    const size_t row = idx0 / static_cast<size_t>(width_);
    const double du_old = x_[idx0] + x_[half_dim_ + idx0];
    const double dv_old = x_[idx0] - x_[half_dim_ + idx0];
    const double du_delta = delta;
    const double dv_delta = first ? delta : -delta;
    qdu_[row] += (2.0 * du_old + du_delta) * du_delta;
    qdv_[row] += (2.0 * dv_old + dv_delta) * dv_delta;
    udu_[row] += fn_->u_ref_[idx0] * du_delta;
    vdv_[row] += fn_->v_ref_[idx0] * dv_delta;
    x_[index] += delta;
  }

  double Value() const override { return ValueAtScale(1.0); }

  double ValueAtScale(double lambda) const override {
    for (size_t j = 0; j < fn_->upper_forms_.size(); ++j) {
      const auto& form = fn_->upper_forms_[j];
      const size_t r = static_cast<size_t>(form.row);
      upper_scratch_[j] =
          fn_->RowValue(form, qdu_[r], udu_[r], qdv_[r], vdv_[r], lambda);
    }
    for (size_t j = 0; j < fn_->lower_forms_.size(); ++j) {
      const auto& form = fn_->lower_forms_[j];
      const size_t r = static_cast<size_t>(form.row);
      lower_scratch_[j] =
          fn_->RowValue(form, qdu_[r], udu_[r], qdv_[r], vdv_[r], lambda);
    }
    return fn_->ComposeSides(upper_scratch_, lower_scratch_);
  }

  void Reset() override {
    x_.SetZero();
    std::fill(qdu_.begin(), qdu_.end(), 0.0);
    std::fill(udu_.begin(), udu_.end(), 0.0);
    std::fill(qdv_.begin(), qdv_.end(), 0.0);
    std::fill(vdv_.begin(), vdv_.end(), 0.0);
  }

  std::unique_ptr<DriftEvaluator> Clone() const override {
    return std::make_unique<JoinEvaluator>(*this);
  }

 private:
  const JoinSafeFunction* fn_;
  size_t half_dim_;
  int width_;
  std::vector<double> qdu_;  // per-row ‖du‖², du = x1_row + x2_row
  std::vector<double> udu_;  // per-row U·du
  std::vector<double> qdv_;  // per-row ‖dv‖², dv = x1_row - x2_row
  std::vector<double> vdv_;  // per-row V·dv
  mutable std::vector<double> upper_scratch_;
  mutable std::vector<double> lower_scratch_;
};

bool JoinSafeFunction::MakeRowForm(int row, bool p_is_u, double c,
                                   double p_ref_sq, double q_ref_sq,
                                   RowForm* out) {
  // The row participates only when the reference satisfies the condition
  // strictly: ‖P_ref‖² - ‖Q_ref‖² < c.
  if (!(p_ref_sq - q_ref_sq < c)) return false;
  out->row = row;
  out->p_is_u = p_is_u;
  out->c = c;
  out->p_ref_sq = p_ref_sq;
  out->q_ref = std::sqrt(q_ref_sq);
  if (c >= 0.0) {
    out->tangent = true;
    out->r0 = std::sqrt(c + q_ref_sq);
    // Strict membership with c = 0 forces ‖Q_ref‖ > 0, so r0 > 0 here.
    FGM_CHECK_GT(out->r0, 0.0);
  } else {
    out->tangent = false;
    // Strict membership with c < 0 forces ‖Q_ref‖² > |c| + ‖P_ref‖² > 0.
    FGM_CHECK_GT(out->q_ref, 0.0);
  }
  return true;
}

double JoinSafeFunction::RowValue(const RowForm& form, double qdu, double udu,
                                  double qdv, double vdv,
                                  double lambda) const {
  // Select the primitives of p and q from the u/v roles of this form.
  const double pq = form.p_is_u ? qdu : qdv;   // ‖dp‖²
  const double pd = form.p_is_u ? udu : vdv;   // P_ref·dp
  const double qd = form.p_is_u ? vdv : udu;   // Q_ref·dq
  double value;
  if (form.tangent) {
    // λf(x/λ) = √(‖dp‖² + 2λP·dp + λ²‖P‖²) - (λr0 + Q_ref·dq / r0),
    // using s0·(q̂·dq) = Q_ref·dq and (c+s0²)/r0 = r0.
    const double arg =
        pq + 2.0 * lambda * pd + lambda * lambda * form.p_ref_sq;
    value = std::sqrt(std::max(arg, 0.0)) -
            (lambda * form.r0 + qd / form.r0);
  } else {
    // λf(x/λ) = √(λ²|c| + ‖dp‖² + 2λP·dp + λ²‖P‖²)
    //           - (λ‖Q_ref‖ + Q_ref·dq/‖Q_ref‖).
    const double arg = lambda * lambda * (-form.c + form.p_ref_sq) + pq +
                       2.0 * lambda * pd;
    value = std::sqrt(std::max(arg, 0.0)) -
            (lambda * form.q_ref + qd / form.q_ref);
  }
  // The factor 1/2 normalizes the row function to be nonexpansive in the
  // drift coordinates (the u/v rotation has gain √2 and the two terms add
  // another √2).
  return 0.5 * value;
}

double JoinSafeFunction::ComposeSides(
    const std::vector<double>& upper_values,
    const std::vector<double>& lower_values) const {
  const double up = upper_.Compose(upper_values);
  const double lo = lower_.Compose(lower_values);
  return std::max(up, lo);
}

JoinSafeFunction::JoinSafeFunction(
    std::shared_ptr<const AgmsProjection> projection, RealVector reference,
    double t_lo, double t_hi)
    : projection_(std::move(projection)),
      reference_(std::move(reference)),
      t_lo_(t_lo),
      t_hi_(t_hi) {
  const int d = projection_->depth();
  const int w = projection_->width();
  const size_t half = projection_->dimension();
  FGM_CHECK_EQ(reference_.dim(), 2 * half);
  FGM_CHECK_EQ(d % 2, 1);
  FGM_CHECK_LT(t_lo_, t_hi_);

  u_ref_ = RealVector(half);
  v_ref_ = RealVector(half);
  for (size_t i = 0; i < half; ++i) {
    u_ref_[i] = reference_[i] + reference_[half + i];
    v_ref_[i] = reference_[i] - reference_[half + i];
  }

  std::vector<double> upper_weights;
  std::vector<double> lower_weights;
  for (int r = 0; r < d; ++r) {
    const size_t base = static_cast<size_t>(r) * static_cast<size_t>(w);
    double u_sq = 0.0, v_sq = 0.0;
    for (int j = 0; j < w; ++j) {
      u_sq += u_ref_[base + static_cast<size_t>(j)] *
              u_ref_[base + static_cast<size_t>(j)];
      v_sq += v_ref_[base + static_cast<size_t>(j)] *
              v_ref_[base + static_cast<size_t>(j)];
    }
    RowForm form;
    // Rows whose reference value sits within floating-point noise of a
    // threshold would get a ~zero weight; they are excluded (the median
    // composition then relies on the remaining, strictly-inside rows).
    const double weight_floor =
        1e-10 * (1.0 + std::sqrt(u_sq) + std::sqrt(v_sq));
    // Upper side: ‖u‖² - ‖v‖² ≤ 4T_hi.
    if (MakeRowForm(r, /*p_is_u=*/true, 4.0 * t_hi_, u_sq, v_sq, &form)) {
      const double f0 = RowValue(form, 0.0, 0.0, 0.0, 0.0, 1.0);
      if (f0 < -weight_floor) {
        upper_forms_.push_back(form);
        upper_weights.push_back(-f0);
      }
    }
    // Lower side: ‖v‖² - ‖u‖² ≤ -4T_lo.
    if (MakeRowForm(r, /*p_is_u=*/false, -4.0 * t_lo_, v_sq, u_sq, &form)) {
      const double f0 = RowValue(form, 0.0, 0.0, 0.0, 0.0, 1.0);
      if (f0 < -weight_floor) {
        lower_forms_.push_back(form);
        lower_weights.push_back(-f0);
      }
    }
  }

  const int half_rows = (d - 1) / 2;
  const int m_up = static_cast<int>(upper_forms_.size()) - half_rows;
  const int m_lo = static_cast<int>(lower_forms_.size()) - half_rows;
  FGM_CHECK_GE(m_up, 1);
  FGM_CHECK_GE(m_lo, 1);
  upper_ = MedianComposition(std::move(upper_weights), m_up);
  lower_ = MedianComposition(std::move(lower_weights), m_lo);

  at_zero_ = std::max(upper_.AtZero(), lower_.AtZero());
  FGM_CHECK_LT(at_zero_, 0.0);
}

double JoinSafeFunction::Eval(const RealVector& x) const {
  FGM_CHECK_EQ(x.dim(), dimension());
  const int w = projection_->width();
  const size_t half = projection_->dimension();
  const int d = projection_->depth();
  // Per-row primitives computed from scratch.
  std::vector<double> qdu(static_cast<size_t>(d), 0.0);
  std::vector<double> udu(qdu), qdv(qdu), vdv(qdu);
  for (int r = 0; r < d; ++r) {
    const size_t base = static_cast<size_t>(r) * static_cast<size_t>(w);
    for (int j = 0; j < w; ++j) {
      const size_t i = base + static_cast<size_t>(j);
      const double du = x[i] + x[half + i];
      const double dv = x[i] - x[half + i];
      qdu[static_cast<size_t>(r)] += du * du;
      qdv[static_cast<size_t>(r)] += dv * dv;
      udu[static_cast<size_t>(r)] += u_ref_[i] * du;
      vdv[static_cast<size_t>(r)] += v_ref_[i] * dv;
    }
  }
  std::vector<double> upper_values(upper_forms_.size());
  std::vector<double> lower_values(lower_forms_.size());
  for (size_t j = 0; j < upper_forms_.size(); ++j) {
    const auto& form = upper_forms_[j];
    const size_t r = static_cast<size_t>(form.row);
    upper_values[j] = RowValue(form, qdu[r], udu[r], qdv[r], vdv[r], 1.0);
  }
  for (size_t j = 0; j < lower_forms_.size(); ++j) {
    const auto& form = lower_forms_[j];
    const size_t r = static_cast<size_t>(form.row);
    lower_values[j] = RowValue(form, qdu[r], udu[r], qdv[r], vdv[r], 1.0);
  }
  return ComposeSides(upper_values, lower_values);
}

std::unique_ptr<DriftEvaluator> JoinSafeFunction::MakeEvaluator() const {
  return std::make_unique<JoinEvaluator>(this);
}

}  // namespace fgm
