// Safe function for the join query over two Fast-AGMS sketches (paper
// §5.1.1; the per-row formulas, omitted in the paper, are derived here —
// see DESIGN.md §3).
//
// The state vector is the concatenation S = (S1, S2); the monitored
// condition is
//     T_lo ≤ Q2(S) = median_i S1[i]·S2[i] ≤ T_hi.
// With the rotation u = s1 + s2, v = s1 - s2 the row product becomes
// s1·s2 = (‖u‖² - ‖v‖²)/4, so both side conditions take the canonical
// hyperbolic form ‖p‖² - ‖q‖² ≤ c (upper: p=u, q=v, c=4T_hi; lower:
// p=v, q=u, c=-4T_lo). Per row we use:
//
//  * c ≥ 0 ("tangent" form): f = ‖p‖ - (c + s0·(q̂·q))/r0 with
//    s0 = ‖Q_ref‖, r0 = √(c+s0²), q̂ = Q_ref/‖Q_ref‖. The linear term is
//    the tangent to the convex curve r(s) = √(c+s²) at s0, which lies
//    below the curve, so f ≤ 0 ⇒ ‖p‖² ≤ c + (q̂·q)² ≤ c + ‖q‖². Convex
//    (norm minus affine).
//  * c < 0 ("sqrt" form): f = √(|c| + ‖p‖²) - q̂·q; f ≤ 0 ⇒
//    ‖q‖ ≥ q̂·q ≥ √(|c|+‖p‖²). Convex (√(|c|+‖·‖²) is convex, minus
//    affine).
//
// Both forms contain the reference (f(0) < 0 iff the row condition holds
// strictly at E) and are 2-Lipschitz in the drift (the u/v rotation
// contributes √2 and the two terms another √2), so rows are scaled by 1/2
// to be nonexpansive. Rows compose per side with the weighted median
// composition, sides combine by pointwise max.

#ifndef FGM_SAFEZONE_JOIN_SZ_H_
#define FGM_SAFEZONE_JOIN_SZ_H_

#include <memory>
#include <vector>

#include "safezone/median_compose.h"
#include "safezone/safe_function.h"
#include "sketch/fast_agms.h"
#include "util/real_vector.h"

namespace fgm {

class JoinSafeFunction : public SafeFunction {
 public:
  /// `reference` is the concatenated estimate (E1, E2) of dimension
  /// 2·projection.dimension(). Requires odd depth and
  /// T_lo < Q2(E) < T_hi.
  JoinSafeFunction(std::shared_ptr<const AgmsProjection> projection,
                   RealVector reference, double t_lo, double t_hi);

  size_t dimension() const override { return reference_.dim(); }
  double Eval(const RealVector& x) const override;
  double AtZero() const override { return at_zero_; }
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;

  double t_lo() const { return t_lo_; }
  double t_hi() const { return t_hi_; }
  const RealVector& reference() const { return reference_; }
  const AgmsProjection& projection() const { return *projection_; }

 private:
  friend class JoinEvaluator;

  // One per-row constraint ‖p‖² - ‖q‖² ≤ c in either form, p/q ∈ {u, v}.
  struct RowForm {
    int row = 0;
    bool p_is_u = true;   // p = u (upper side); p = v (lower side)
    bool tangent = true;  // tangent form (c ≥ 0) vs sqrt form (c < 0)
    double c = 0.0;
    double r0 = 0.0;       // tangent: √(c + ‖Q_ref‖²)
    double p_ref_sq = 0.0;  // ‖P_ref‖²
    double q_ref = 0.0;     // ‖Q_ref‖
  };

  /// λ·(f/2)(x/λ) for a row form, from the drift primitives of the row:
  /// qdu = ‖du‖², udu = U·du, qdv = ‖dv‖², vdv = V·dv.
  double RowValue(const RowForm& form, double qdu, double udu, double qdv,
                  double vdv, double lambda) const;

  double ComposeSides(const std::vector<double>& upper_values,
                      const std::vector<double>& lower_values) const;

  /// Builds a row form for condition ‖p‖² - ‖q‖² ≤ c; returns false when
  /// the reference does not satisfy it strictly (row excluded).
  static bool MakeRowForm(int row, bool p_is_u, double c, double p_ref_sq,
                          double q_ref_sq, RowForm* out);

  std::shared_ptr<const AgmsProjection> projection_;
  RealVector reference_;
  double t_lo_;
  double t_hi_;

  RealVector u_ref_;  // E1 + E2 (dimension projection.dimension())
  RealVector v_ref_;  // E1 - E2

  std::vector<RowForm> upper_forms_;
  std::vector<RowForm> lower_forms_;
  MedianComposition upper_;
  MedianComposition lower_;
  double at_zero_ = 0.0;
};

}  // namespace fgm

#endif  // FGM_SAFEZONE_JOIN_SZ_H_
