// Safe function for the self-join (F2) query over a Fast-AGMS sketch
// (paper §5.1.1).
//
// The monitored condition is
//     T_lo ≤ Q1(S) = median_i ‖S[i]‖² ≤ T_hi,
// where S = E + X is the global sketch and S[i] its i-th row. Per-row
// conditions use the level-minimal first-degree forms:
//   * upper (‖S[i]‖² ≤ T_hi):  φ⁺_i(x) = ‖x + E[i]‖ - √T_hi   (ball),
//   * lower (‖S[i]‖² ≥ T_lo):  φ⁻_i(x) = √T_lo - Ê[i]·(E[i]+x)
//     (halfspace tangent to the ball of radius √T_lo at the projection
//     of E[i]; vacuous when T_lo ≤ 0 since squared norms are nonnegative).
// Rows participate on a side only when the reference satisfies the side's
// condition strictly; the median composition (median_compose.h) combines
// the rows, and the two sides combine by pointwise max (Thm 2.2).
//
// Convex and nonexpansive. The evaluator maintains per-row ‖x_i‖² and
// x_i·E[i], making updates O(1) per touched cell and evaluations
// O(subsets), independent of the sketch width.

#ifndef FGM_SAFEZONE_SELFJOIN_SZ_H_
#define FGM_SAFEZONE_SELFJOIN_SZ_H_

#include <memory>
#include <vector>

#include "safezone/median_compose.h"
#include "safezone/safe_function.h"
#include "sketch/fast_agms.h"
#include "util/real_vector.h"

namespace fgm {

class SelfJoinSafeFunction : public SafeFunction {
 public:
  /// `reference` is the coordinator's estimate sketch E (flattened,
  /// dimension projection.dimension()); thresholds bound the median of
  /// row squared norms. Requires odd depth, T_hi > 0, and that the
  /// reference satisfies T_lo < Q1(E) < T_hi.
  SelfJoinSafeFunction(std::shared_ptr<const AgmsProjection> projection,
                       RealVector reference, double t_lo, double t_hi);

  size_t dimension() const override { return reference_.dim(); }
  double Eval(const RealVector& x) const override;
  double AtZero() const override { return at_zero_; }
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;

  double t_lo() const { return t_lo_; }
  double t_hi() const { return t_hi_; }
  const RealVector& reference() const { return reference_; }
  const AgmsProjection& projection() const { return *projection_; }

 private:
  friend class SelfJoinEvaluator;

  /// Per-row φ values with the perspective scale λ, given the primitives
  /// q = ‖x_i‖² and dot = x_i·E[i] for a row.
  double UpperRowValue(int row, double q, double dot, double lambda) const;
  double LowerRowValue(int row, double dot, double lambda) const;

  /// Composes side values into φ (used by Eval and the evaluator).
  double ComposeSides(const std::vector<double>& upper_values,
                      const std::vector<double>& lower_values) const;

  std::shared_ptr<const AgmsProjection> projection_;
  RealVector reference_;
  double t_lo_;
  double t_hi_;
  double sqrt_t_hi_;
  double sqrt_t_lo_;  // only meaningful when lower side is active

  std::vector<double> row_norm_;     // ‖E[i]‖ per row
  std::vector<int> upper_rows_;      // rows with ‖E[i]‖² < T_hi
  std::vector<int> lower_rows_;      // rows with ‖E[i]‖² > T_lo (if T_lo > 0)
  MedianComposition upper_;
  MedianComposition lower_;
  double at_zero_ = 0.0;
};

}  // namespace fgm

#endif  // FGM_SAFEZONE_SELFJOIN_SZ_H_
