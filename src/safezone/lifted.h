// Lifting a safe function to a larger product state.
//
// Simultaneous monitoring of several queries (cf. Lazerson et al. KDD'17,
// cited by the paper) concatenates their state vectors; each query's safe
// function then acts on its own block of coordinates. The lifted
// functions all share the big dimension, so they compose with max/sum
// (Thm 2.2) exactly like same-space functions: the admissible region of
// the max is the intersection of the per-query regions, and
//   Σ_i max_j φ_j(X_i[block_j]) ≤ 0  ⇒  every query's bound holds.

#ifndef FGM_SAFEZONE_LIFTED_H_
#define FGM_SAFEZONE_LIFTED_H_

#include <memory>

#include "safezone/safe_function.h"

namespace fgm {

/// φ'(x) = φ(x[offset .. offset+φ.dim)), as a function on R^total_dim.
class LiftedSafeFunction : public SafeFunction {
 public:
  LiftedSafeFunction(std::unique_ptr<SafeFunction> inner, size_t offset,
                     size_t total_dim);

  size_t dimension() const override { return total_dim_; }
  double Eval(const RealVector& x) const override;
  double AtZero() const override { return inner_->AtZero(); }
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;
  double LipschitzBound() const override {
    return inner_->LipschitzBound();
  }

  size_t offset() const { return offset_; }
  const SafeFunction& inner() const { return *inner_; }

 private:
  std::unique_ptr<SafeFunction> inner_;
  size_t offset_;
  size_t total_dim_;
};

}  // namespace fgm

#endif  // FGM_SAFEZONE_LIFTED_H_
