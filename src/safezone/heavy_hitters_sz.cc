#include "safezone/heavy_hitters_sz.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/check.h"

namespace fgm {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

// Lazy-heap evaluator: tracks val_i = E_i + x_i, the total drift t = Σx,
// a min-heap over the heavy group (for max of -val) and a max-heap over
// the light group. Stale heap entries are discarded on read.
class HeavyHitterEvaluator : public VectorDriftEvaluator {
 public:
  explicit HeavyHitterEvaluator(const HeavyHitterSafeFunction* fn)
      : VectorDriftEvaluator(fn->dimension()), fn_(fn) {
    Reset();
  }

  void ApplyDelta(size_t index, double delta) override {
    x_[index] += delta;
    total_ += delta;
    values_[index] += delta;
    if (fn_->heavy_[index]) {
      heavy_min_.push({values_[index], index});
    } else {
      light_max_.push({values_[index], index});
    }
  }

  double Value() const override { return ValueAtScale(1.0); }

  double ValueAtScale(double lambda) const override {
    if (lambda == 1.0) {
      return fn_->Compose(-HeavyMin(), LightMax(), total_, 1.0);
    }
    // The λ-scaled maxima reorder the items; fall back to a scan.
    double max_heavy_neg = kNegInf, max_light = kNegInf;
    for (size_t i = 0; i < x_.dim(); ++i) {
      const double v = lambda * fn_->reference_[i] + x_[i];
      if (fn_->heavy_[i]) {
        max_heavy_neg = std::max(max_heavy_neg, -v);
      } else {
        max_light = std::max(max_light, v);
      }
    }
    return fn_->Compose(max_heavy_neg, max_light, total_, lambda);
  }

  void Reset() override {
    x_.SetZero();
    total_ = 0.0;
    values_.assign(fn_->dimension(), 0.0);
    heavy_min_ = {};
    light_max_ = {};
    for (size_t i = 0; i < fn_->dimension(); ++i) {
      values_[i] = fn_->reference_[i];
      if (fn_->heavy_[i]) {
        heavy_min_.push({values_[i], i});
      } else {
        light_max_.push({values_[i], i});
      }
    }
  }

  std::unique_ptr<DriftEvaluator> Clone() const override {
    return std::make_unique<HeavyHitterEvaluator>(*this);
  }

 private:
  struct Entry {
    double value;
    size_t index;
  };
  struct MinOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.value > b.value;  // min-heap
    }
  };
  struct MaxOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.value < b.value;  // max-heap
    }
  };

  double HeavyMin() const {
    if (!fn_->has_heavy_) return -kNegInf;  // +inf → -max = -inf branch
    while (!heavy_min_.empty() &&
           heavy_min_.top().value != values_[heavy_min_.top().index]) {
      heavy_min_.pop();
    }
    FGM_CHECK(!heavy_min_.empty());
    return heavy_min_.top().value;
  }

  double LightMax() const {
    if (!fn_->has_light_) return kNegInf;
    while (!light_max_.empty() &&
           light_max_.top().value != values_[light_max_.top().index]) {
      light_max_.pop();
    }
    FGM_CHECK(!light_max_.empty());
    return light_max_.top().value;
  }

  const HeavyHitterSafeFunction* fn_;
  double total_ = 0.0;
  std::vector<double> values_;  // E_i + x_i
  mutable std::priority_queue<Entry, std::vector<Entry>, MinOrder> heavy_min_;
  mutable std::priority_queue<Entry, std::vector<Entry>, MaxOrder> light_max_;
};

HeavyHitterSafeFunction::HeavyHitterSafeFunction(RealVector reference,
                                                 double theta, double eps)
    : reference_(std::move(reference)), theta_(theta), eps_(eps) {
  FGM_CHECK(theta > 0.0 && theta < 1.0);
  FGM_CHECK(eps > 0.0 && eps < theta);
  const size_t d = reference_.dim();
  FGM_CHECK_GE(d, 2u);
  ref_total_ = reference_.Sum();
  FGM_CHECK_GT(ref_total_, 0.0);

  heavy_.assign(d, 0);
  const double cut = theta_ * ref_total_;
  for (size_t i = 0; i < d; ++i) {
    if (reference_[i] >= cut) {
      heavy_[i] = 1;
      has_heavy_ = true;
    } else {
      has_light_ = true;
    }
  }

  // Gradient norms are shared within each group (see header).
  const double dd = static_cast<double>(d);
  const double a = theta_ - eps_;
  const double b = theta_ + eps_;
  heavy_norm_ = std::sqrt(dd * a * a - 2.0 * a + 1.0);
  light_norm_ = std::sqrt(dd * b * b - 2.0 * b + 1.0);

  at_zero_ = Eval(RealVector(d));
  FGM_CHECK_LT(at_zero_, 0.0);
}

double HeavyHitterSafeFunction::Compose(double max_heavy_neg,
                                        double max_light,
                                        double drift_total,
                                        double lambda) const {
  const double n = lambda * ref_total_ + drift_total;
  double value = kNegInf;
  if (has_heavy_) {
    value = ((theta_ - eps_) * n + max_heavy_neg) / heavy_norm_;
  }
  if (has_light_) {
    value = std::max(value, (max_light - (theta_ + eps_) * n) / light_norm_);
  }
  return value;
}

double HeavyHitterSafeFunction::Eval(const RealVector& x) const {
  FGM_CHECK_EQ(x.dim(), reference_.dim());
  double max_heavy_neg = kNegInf, max_light = kNegInf;
  double total = 0.0;
  for (size_t i = 0; i < x.dim(); ++i) {
    total += x[i];
    const double v = reference_[i] + x[i];
    if (heavy_[i]) {
      max_heavy_neg = std::max(max_heavy_neg, -v);
    } else {
      max_light = std::max(max_light, v);
    }
  }
  return Compose(max_heavy_neg, max_light, total, 1.0);
}

std::unique_ptr<DriftEvaluator> HeavyHitterSafeFunction::MakeEvaluator()
    const {
  return std::make_unique<HeavyHitterEvaluator>(this);
}

}  // namespace fgm
