#include "safezone/cheap_bound.h"

#include <cmath>

#include "util/check.h"

namespace fgm {

namespace {

// λb(x/λ) = L‖x‖ + λa: only the offset rescales. O(1) everywhere.
class CheapBoundEvaluator : public VectorDriftEvaluator {
 public:
  explicit CheapBoundEvaluator(const CheapBoundFunction* fn)
      : VectorDriftEvaluator(fn->dimension()), fn_(fn) {}

  void ApplyDelta(size_t index, double delta) override {
    q_ += (2.0 * x_[index] + delta) * delta;
    x_[index] += delta;
  }

  double Value() const override { return ValueAtScale(1.0); }

  double ValueAtScale(double lambda) const override {
    return fn_->LipschitzBound() * std::sqrt(std::max(q_, 0.0)) +
           lambda * fn_->offset();
  }

  void Reset() override {
    x_.SetZero();
    q_ = 0.0;
  }

  std::unique_ptr<DriftEvaluator> Clone() const override {
    return std::make_unique<CheapBoundEvaluator>(*this);
  }

 private:
  const CheapBoundFunction* fn_;
  double q_ = 0.0;  // ‖x‖²
};

}  // namespace

CheapBoundFunction::CheapBoundFunction(size_t dimension, double offset,
                                       double lipschitz)
    : dimension_(dimension), offset_(offset), lipschitz_(lipschitz) {
  FGM_CHECK_LT(offset, 0.0);
  FGM_CHECK_GT(lipschitz, 0.0);
}

CheapBoundFunction CheapBoundFunction::For(const SafeFunction& fn) {
  return CheapBoundFunction(fn.dimension(), fn.AtZero(), fn.LipschitzBound());
}

double CheapBoundFunction::Eval(const RealVector& x) const {
  FGM_CHECK_EQ(x.dim(), dimension_);
  return lipschitz_ * x.Norm() + offset_;
}

std::unique_ptr<DriftEvaluator> CheapBoundFunction::MakeEvaluator() const {
  return std::make_unique<CheapBoundEvaluator>(this);
}

}  // namespace fgm
