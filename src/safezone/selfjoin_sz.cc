#include "safezone/selfjoin_sz.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace fgm {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

class SelfJoinEvaluator : public VectorDriftEvaluator {
 public:
  explicit SelfJoinEvaluator(const SelfJoinSafeFunction* fn)
      : VectorDriftEvaluator(fn->dimension()),
        fn_(fn),
        depth_(fn->projection().depth()),
        width_(fn->projection().width()),
        qx_(static_cast<size_t>(depth_), 0.0),
        dxe_(static_cast<size_t>(depth_), 0.0),
        upper_scratch_(fn->upper_rows_.size()),
        lower_scratch_(fn->lower_rows_.size()) {}

  void ApplyDelta(size_t index, double delta) override {
    const size_t row = index / static_cast<size_t>(width_);
    qx_[row] += (2.0 * x_[index] + delta) * delta;
    dxe_[row] += fn_->reference()[index] * delta;
    x_[index] += delta;
  }

  double Value() const override { return ValueAtScale(1.0); }

  double ValueAtScale(double lambda) const override {
    for (size_t j = 0; j < fn_->upper_rows_.size(); ++j) {
      const size_t r = static_cast<size_t>(fn_->upper_rows_[j]);
      upper_scratch_[j] = fn_->UpperRowValue(static_cast<int>(r), qx_[r],
                                             dxe_[r], lambda);
    }
    for (size_t j = 0; j < fn_->lower_rows_.size(); ++j) {
      const size_t r = static_cast<size_t>(fn_->lower_rows_[j]);
      lower_scratch_[j] =
          fn_->LowerRowValue(static_cast<int>(r), dxe_[r], lambda);
    }
    return fn_->ComposeSides(upper_scratch_, lower_scratch_);
  }

  void Reset() override {
    x_.SetZero();
    std::fill(qx_.begin(), qx_.end(), 0.0);
    std::fill(dxe_.begin(), dxe_.end(), 0.0);
  }

  std::unique_ptr<DriftEvaluator> Clone() const override {
    return std::make_unique<SelfJoinEvaluator>(*this);
  }

 private:
  const SelfJoinSafeFunction* fn_;
  int depth_;
  int width_;
  std::vector<double> qx_;   // per-row ‖x_i‖²
  std::vector<double> dxe_;  // per-row x_i·E[i]
  mutable std::vector<double> upper_scratch_;
  mutable std::vector<double> lower_scratch_;
};

SelfJoinSafeFunction::SelfJoinSafeFunction(
    std::shared_ptr<const AgmsProjection> projection, RealVector reference,
    double t_lo, double t_hi)
    : projection_(std::move(projection)),
      reference_(std::move(reference)),
      t_lo_(t_lo),
      t_hi_(t_hi) {
  const int d = projection_->depth();
  const int w = projection_->width();
  FGM_CHECK_EQ(reference_.dim(), projection_->dimension());
  FGM_CHECK_EQ(d % 2, 1);  // the median composition needs odd depth
  FGM_CHECK_GT(t_hi_, 0.0);
  FGM_CHECK_LT(t_lo_, t_hi_);
  sqrt_t_hi_ = std::sqrt(t_hi_);
  sqrt_t_lo_ = t_lo_ > 0.0 ? std::sqrt(t_lo_) : 0.0;

  row_norm_.resize(static_cast<size_t>(d));
  std::vector<double> upper_weights;
  std::vector<double> lower_weights;
  for (int r = 0; r < d; ++r) {
    double sq = 0.0;
    const size_t base = static_cast<size_t>(r) * static_cast<size_t>(w);
    for (int j = 0; j < w; ++j) {
      const double v = reference_[base + static_cast<size_t>(j)];
      sq += v * v;
    }
    const double norm = std::sqrt(sq);
    row_norm_[static_cast<size_t>(r)] = norm;
    // Rows within floating-point noise of a threshold are excluded: their
    // weight |φ_r(0)| would be ~0 and the composition degenerate.
    const double weight_floor = 1e-10 * (1.0 + norm);
    if (sq < t_hi_ && sqrt_t_hi_ - norm > weight_floor) {
      upper_rows_.push_back(r);
      upper_weights.push_back(sqrt_t_hi_ - norm);  // |φ⁺_r(0)|
    }
    if (t_lo_ > 0.0 && sq > t_lo_ && norm - sqrt_t_lo_ > weight_floor) {
      lower_rows_.push_back(r);
      lower_weights.push_back(norm - sqrt_t_lo_);  // |φ⁻_r(0)|
    }
  }

  // Subset size |D±| - (d-1)/2; positivity is guaranteed when the
  // reference satisfies T_lo < Q1(E) < T_hi (at least (d+1)/2 rows on
  // each active side).
  const int half = (d - 1) / 2;
  const int m_up = static_cast<int>(upper_rows_.size()) - half;
  FGM_CHECK_GE(m_up, 1);
  upper_ = MedianComposition(std::move(upper_weights), m_up);
  if (t_lo_ > 0.0) {
    const int m_lo = static_cast<int>(lower_rows_.size()) - half;
    FGM_CHECK_GE(m_lo, 1);
    lower_ = MedianComposition(std::move(lower_weights), m_lo);
  }

  at_zero_ = upper_.AtZero();
  if (!lower_.empty()) at_zero_ = std::max(at_zero_, lower_.AtZero());
  FGM_CHECK_LT(at_zero_, 0.0);
}

double SelfJoinSafeFunction::UpperRowValue(int row, double q, double dot,
                                           double lambda) const {
  // λφ⁺(x/λ) = √(‖x‖² + 2λ x·E + λ²‖E‖²) - λ√T_hi.
  const double e = row_norm_[static_cast<size_t>(row)];
  const double arg = q + 2.0 * lambda * dot + lambda * lambda * e * e;
  return std::sqrt(std::max(arg, 0.0)) - lambda * sqrt_t_hi_;
}

double SelfJoinSafeFunction::LowerRowValue(int row, double dot,
                                           double lambda) const {
  // λφ⁻(x/λ) = λ(√T_lo - ‖E‖) - x·E/‖E‖.
  const double e = row_norm_[static_cast<size_t>(row)];
  return lambda * (sqrt_t_lo_ - e) - dot / e;
}

double SelfJoinSafeFunction::ComposeSides(
    const std::vector<double>& upper_values,
    const std::vector<double>& lower_values) const {
  double value = upper_.Compose(upper_values);
  if (!lower_.empty()) {
    value = std::max(value, lower_.Compose(lower_values));
  }
  return value;
}

double SelfJoinSafeFunction::Eval(const RealVector& x) const {
  FGM_CHECK_EQ(x.dim(), dimension());
  const int w = projection_->width();
  std::vector<double> upper_values(upper_rows_.size(), kNegInf);
  std::vector<double> lower_values(lower_rows_.size(), kNegInf);
  auto row_primitives = [&](int r, double* q, double* dot) {
    const size_t base = static_cast<size_t>(r) * static_cast<size_t>(w);
    double qq = 0.0, dd = 0.0;
    for (int j = 0; j < w; ++j) {
      const double xv = x[base + static_cast<size_t>(j)];
      qq += xv * xv;
      dd += xv * reference_[base + static_cast<size_t>(j)];
    }
    *q = qq;
    *dot = dd;
  };
  for (size_t j = 0; j < upper_rows_.size(); ++j) {
    double q, dot;
    row_primitives(upper_rows_[j], &q, &dot);
    upper_values[j] = UpperRowValue(upper_rows_[j], q, dot, 1.0);
  }
  for (size_t j = 0; j < lower_rows_.size(); ++j) {
    double q, dot;
    row_primitives(lower_rows_[j], &q, &dot);
    lower_values[j] = LowerRowValue(lower_rows_[j], dot, 1.0);
  }
  return ComposeSides(upper_values, lower_values);
}

std::unique_ptr<DriftEvaluator> SelfJoinSafeFunction::MakeEvaluator() const {
  return std::make_unique<SelfJoinEvaluator>(this);
}

}  // namespace fgm
