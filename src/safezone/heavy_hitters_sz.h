// Safe function for heavy-hitter set monitoring.
//
// Fix a support threshold θ and slack ε. From the reference histogram E
// (total mass N_E), the report set is H = {items with E_i ≥ θ·N_E}. The
// monitored guarantee is the usual ε-approximate one: while quiescent,
//     every i ∈ H     keeps   S_i ≥ (θ-ε)·N(S), and
//     every i ∉ H     keeps   S_i ≤ (θ+ε)·N(S),
// so H stays a valid ε-approximate heavy-hitter set for the live stream.
//
// Every condition is linear in the state (N(S) = Σ_j S_j), so the safe
// function is the max of |H| + |Hᶜ| halfspaces:
//     heavy i:  f_i(x) = (θ-ε)·N(E+x) - (E_i + x_i),
//     light i:  f_i(x) = (E_i + x_i) - (θ+ε)·N(E+x),
// each normalized by its gradient norm (identical within a group). The
// evaluator maintains the two group maxima incrementally with lazy
// max-heaps: a delta moves ONE item term and the shared total, so
// updates are O(log D) amortized instead of O(D).

#ifndef FGM_SAFEZONE_HEAVY_HITTERS_SZ_H_
#define FGM_SAFEZONE_HEAVY_HITTERS_SZ_H_

#include <memory>
#include <vector>

#include "safezone/safe_function.h"
#include "util/real_vector.h"

namespace fgm {

class HeavyHitterSafeFunction : public SafeFunction {
 public:
  /// Requires 0 < θ < 1, 0 < ε < θ, and a reference where every item is
  /// strictly inside its side's condition (guaranteed when H is derived
  /// from E itself: heavy items have E_i ≥ θN > (θ-ε)N, light ones
  /// E_i < θN < (θ+ε)N — checked).
  HeavyHitterSafeFunction(RealVector reference, double theta, double eps);

  size_t dimension() const override { return reference_.dim(); }
  double Eval(const RealVector& x) const override;
  double AtZero() const override { return at_zero_; }
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;

  const std::vector<uint8_t>& heavy() const { return heavy_; }
  double theta() const { return theta_; }
  double eps() const { return eps_; }

 private:
  friend class HeavyHitterEvaluator;

  /// φ from the two group primitives: max over heavy of -(E_i+x_i), max
  /// over light of (E_i+x_i), and the total drift t = Σx_j. λ-perspective
  /// supported (all terms are affine).
  double Compose(double max_heavy_neg, double max_light, double drift_total,
                 double lambda) const;

  RealVector reference_;
  double theta_;
  double eps_;
  std::vector<uint8_t> heavy_;  // 1 = in the report set H
  double ref_total_ = 0.0;
  double heavy_norm_ = 1.0;  // gradient norm of heavy conditions
  double light_norm_ = 1.0;  // gradient norm of light conditions
  bool has_heavy_ = false;
  bool has_light_ = false;
  double at_zero_ = 0.0;
};

}  // namespace fgm

#endif  // FGM_SAFEZONE_HEAVY_HITTERS_SZ_H_
