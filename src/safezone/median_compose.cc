#include "safezone/median_compose.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/subsets.h"

namespace fgm {

MedianComposition::MedianComposition(std::vector<double> weights,
                                     int subset_size)
    : weights_(std::move(weights)), subset_size_(subset_size) {
  const int n = static_cast<int>(weights_.size());
  FGM_CHECK_GE(subset_size, 1);
  FGM_CHECK_LE(subset_size, n);
  for (double w : weights_) FGM_CHECK_GT(w, 0.0);

  at_zero_ = std::numeric_limits<double>::infinity();
  for (const std::vector<int>& rows : EnumerateSubsets(n, subset_size)) {
    Subset s;
    s.rows = rows;
    double sq = 0.0;
    for (int r : rows) {
      const double w = weights_[static_cast<size_t>(r)];
      s.weight.push_back(w);
      sq += w * w;
    }
    s.inv_norm = 1.0 / std::sqrt(sq);
    // At zero, φ_i(0) = -w_i, so the subset value is -√(Σw²).
    at_zero_ = std::min(at_zero_, std::sqrt(sq));
    subsets_.push_back(std::move(s));
  }
  at_zero_ = -at_zero_;
}

double MedianComposition::Compose(
    const std::vector<double>& row_values) const {
  FGM_CHECK_EQ(row_values.size(), weights_.size());
  double best = -std::numeric_limits<double>::infinity();
  for (const Subset& s : subsets_) {
    double acc = 0.0;
    for (size_t j = 0; j < s.rows.size(); ++j) {
      acc += s.weight[j] * row_values[static_cast<size_t>(s.rows[j])];
    }
    const double value = acc * s.inv_norm;
    if (value > best) best = value;
  }
  return best;
}

}  // namespace fgm
