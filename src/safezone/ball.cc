#include "safezone/ball.h"

#include <cmath>

#include "util/check.h"

namespace fgm {

namespace {

// Incremental state: q = ‖x‖², d = x·c. Then for the perspective,
//   λφ(x/λ) = √(q + 2λd + λ²‖c‖²) - λr,
// which reduces to φ(x) at λ = 1. O(1) per delta and per evaluation.
class BallEvaluator : public VectorDriftEvaluator {
 public:
  explicit BallEvaluator(const BallSafeFunction* fn)
      : VectorDriftEvaluator(fn->dimension()),
        fn_(fn),
        center_sq_(fn->center().SquaredNorm()) {}

  void ApplyDelta(size_t index, double delta) override {
    q_ += (2.0 * x_[index] + delta) * delta;
    d_ += fn_->center()[index] * delta;
    x_[index] += delta;
  }

  double Value() const override { return ValueAtScale(1.0); }

  double ValueAtScale(double lambda) const override {
    const double arg = q_ + 2.0 * lambda * d_ + lambda * lambda * center_sq_;
    return std::sqrt(std::max(arg, 0.0)) - lambda * fn_->radius();
  }

  void Reset() override {
    x_.SetZero();
    q_ = 0.0;
    d_ = 0.0;
  }

  std::unique_ptr<DriftEvaluator> Clone() const override {
    return std::make_unique<BallEvaluator>(*this);
  }

 private:
  const BallSafeFunction* fn_;
  double center_sq_;
  double q_ = 0.0;
  double d_ = 0.0;
};

}  // namespace

BallSafeFunction::BallSafeFunction(RealVector center, double radius)
    : center_(std::move(center)), radius_(radius) {
  FGM_CHECK_GT(radius, center_.Norm());
}

double BallSafeFunction::Eval(const RealVector& x) const {
  FGM_CHECK_EQ(x.dim(), center_.dim());
  double acc = 0.0;
  for (size_t i = 0; i < x.dim(); ++i) {
    const double v = x[i] + center_[i];
    acc += v * v;
  }
  return std::sqrt(acc) - radius_;
}

double BallSafeFunction::AtZero() const { return center_.Norm() - radius_; }

std::unique_ptr<DriftEvaluator> BallSafeFunction::MakeEvaluator() const {
  return std::make_unique<BallEvaluator>(this);
}

}  // namespace fgm
