// The "cheap" safe function of §4.2.1: b(x) = L·‖x‖ + a.
//
// When the full safe function φ is L-Lipschitz (nonexpansive for L = 1),
//     φ(x) ≤ φ(0) + L‖x‖ = b(x)  with a = φ(0),
// so b pointwise dominates φ and is therefore safe whenever φ is (safety
// is monotone under pointwise dominance, §2.3). Crucially b needs only 3
// words to ship (p, q, a in the paper's notation) instead of the D-word
// reference vector E — this is what the FGM/O cost-based optimizer
// exploits to slash upstream costs.

#ifndef FGM_SAFEZONE_CHEAP_BOUND_H_
#define FGM_SAFEZONE_CHEAP_BOUND_H_

#include <memory>

#include "safezone/safe_function.h"

namespace fgm {

class CheapBoundFunction : public SafeFunction {
 public:
  /// b(x) = lipschitz·‖x‖ + offset, offset < 0 (= φ(0) of the dominated
  /// function).
  CheapBoundFunction(size_t dimension, double offset, double lipschitz = 1.0);

  /// Builds the cheap bound dominating `fn`.
  static CheapBoundFunction For(const SafeFunction& fn);

  size_t dimension() const override { return dimension_; }
  double Eval(const RealVector& x) const override;
  double AtZero() const override { return offset_; }
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;
  double LipschitzBound() const override { return lipschitz_; }

  double offset() const { return offset_; }

  /// Words needed to ship this function (p, q, a of the paper): 3.
  static constexpr int kShippingWords = 3;

 private:
  size_t dimension_;
  double offset_;
  double lipschitz_;
};

}  // namespace fgm

#endif  // FGM_SAFEZONE_CHEAP_BOUND_H_
