// Safe functions (Definition 2.1 of the paper).
//
// A function φ : R^D → R is (A, E, k)-safe when φ(0) < 0 and
//     Σ_{i=1..k} φ(X_i) ≤ 0   ⇒   E + (1/k) Σ X_i ∈ A.
// FGM sites continuously track φ(X_i) as their drift X_i absorbs stream
// updates; the protocols only ever interact with safe functions through
// the two interfaces below:
//
//  * SafeFunction — an immutable description; supports reference (from
//    scratch) evaluation, used by the coordinator (rebalancing bisection)
//    and by tests.
//  * DriftEvaluator — a mutable site-local state that OWNS the drift
//    vector and maintains φ incrementally: ApplyDelta is O(1) or O(rows)
//    per touched coordinate instead of O(D).
//
// Rebalancing (§4.1) monitors the perspective λφ(X/λ); evaluators expose
// ValueAtScale(λ) for this, with specialized O(1) implementations where
// the function's structure allows it.
//
// All concrete safe functions in this library are convex (the paper's
// Thms 2.3/2.5 show convex functions suffice and are optimal) and report a
// Lipschitz bound, which the FGM/O optimizer uses to build the 3-word
// "cheap" upper bound b(x) = L·‖x‖ + φ(0) of §4.2.1.

#ifndef FGM_SAFEZONE_SAFE_FUNCTION_H_
#define FGM_SAFEZONE_SAFE_FUNCTION_H_

#include <cstddef>
#include <memory>

#include "util/real_vector.h"

namespace fgm {

/// Mutable, site-local incremental evaluator of a safe function. Owns the
/// drift vector it evaluates at.
class DriftEvaluator {
 public:
  virtual ~DriftEvaluator() = default;

  /// x[index] += delta, updating internal derived quantities.
  virtual void ApplyDelta(size_t index, double delta) = 0;

  /// φ(x) at the current drift.
  virtual double Value() const = 0;

  /// λφ(x/λ), λ ∈ (0, 1] — the perspective used by rebalancing. Equals
  /// Value() at λ = 1.
  virtual double ValueAtScale(double lambda) const = 0;

  /// Resets the drift to 0.
  virtual void Reset() = 0;

  /// The current drift vector.
  virtual const RealVector& drift() const = 0;

  /// Deep copy of the complete evaluator state (drift plus every derived
  /// incremental quantity), preserving the exact floating-point bits. The
  /// parallel execution engine checkpoints sites with Clone() and replays
  /// from the copy, which is what makes speculative execution bit-exact.
  virtual std::unique_ptr<DriftEvaluator> Clone() const = 0;
};

/// Immutable description of a safe function for a fixed admissible region
/// and reference point E.
class SafeFunction {
 public:
  virtual ~SafeFunction() = default;

  /// Dimension D of drift vectors.
  virtual size_t dimension() const = 0;

  /// Reference (non-incremental) evaluation of φ(x).
  virtual double Eval(const RealVector& x) const = 0;

  /// φ(0). Must be negative for a usable safe function.
  virtual double AtZero() const { return Eval(RealVector(dimension())); }

  /// Creates an incremental evaluator positioned at x = 0.
  virtual std::unique_ptr<DriftEvaluator> MakeEvaluator() const = 0;

  /// An upper bound L on the Lipschitz constant of φ with respect to the
  /// Euclidean norm: |φ(x) - φ(y)| <= L‖x - y‖. All shipped safe functions
  /// are normalized to L = 1 (nonexpansive, §4.2.1) unless documented.
  virtual double LipschitzBound() const { return 1.0; }
};

/// Helper base for evaluators that keep the raw drift vector.
class VectorDriftEvaluator : public DriftEvaluator {
 public:
  explicit VectorDriftEvaluator(size_t dim) : x_(dim) {}

  const RealVector& drift() const override { return x_; }

 protected:
  RealVector x_;
};

/// A generic evaluator that re-evaluates the safe function from scratch on
/// every query. O(D) per Value(); used as a correctness fallback and for
/// functions without incremental structure.
class NaiveDriftEvaluator : public VectorDriftEvaluator {
 public:
  explicit NaiveDriftEvaluator(const SafeFunction* fn)
      : VectorDriftEvaluator(fn->dimension()), fn_(fn) {}

  void ApplyDelta(size_t index, double delta) override { x_[index] += delta; }
  double Value() const override { return fn_->Eval(x_); }
  double ValueAtScale(double lambda) const override;
  void Reset() override { x_.SetZero(); }
  std::unique_ptr<DriftEvaluator> Clone() const override {
    return std::make_unique<NaiveDriftEvaluator>(*this);
  }

 private:
  const SafeFunction* fn_;  // not owned
};

/// Wraps an incremental evaluator and cross-checks its Value() against the
/// safe function's reference Eval(drift) every `period` deltas, catching
/// incremental-maintenance drift (lost updates, accumulated cancellation)
/// at the point where it happens instead of at the end of a run.
class ParanoidDriftEvaluator : public DriftEvaluator {
 public:
  /// `fn` must outlive the evaluator; `period` >= 1.
  ParanoidDriftEvaluator(const SafeFunction* fn,
                         std::unique_ptr<DriftEvaluator> inner,
                         int64_t period);

  void ApplyDelta(size_t index, double delta) override;
  double Value() const override { return inner_->Value(); }
  double ValueAtScale(double lambda) const override {
    return inner_->ValueAtScale(lambda);
  }
  void Reset() override;
  const RealVector& drift() const override { return inner_->drift(); }
  std::unique_ptr<DriftEvaluator> Clone() const override;

 private:
  void CrossCheck() const;

  const SafeFunction* fn_;  // not owned
  std::unique_ptr<DriftEvaluator> inner_;
  int64_t period_;
  int64_t since_check_ = 0;
};

/// Wraps `inner` in a ParanoidDriftEvaluator when the FGM_PARANOID
/// environment variable is set (its value is the check period N; values
/// that do not parse to a positive integer default to 64). Unset or
/// empty: returns `inner` unchanged. The protocols route every site
/// evaluator through this hook.
std::unique_ptr<DriftEvaluator> MakeCheckedEvaluator(
    const SafeFunction* fn, std::unique_ptr<DriftEvaluator> inner);

/// Reference implementation of λφ(x/λ) by explicit scaling; O(D).
double PerspectiveEval(const SafeFunction& fn, const RealVector& x,
                       double lambda);

}  // namespace fgm

#endif  // FGM_SAFEZONE_SAFE_FUNCTION_H_
