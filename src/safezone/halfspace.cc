#include "safezone/halfspace.h"

#include "util/check.h"

namespace fgm {

namespace {

// λφ(x/λ) = λβ - n·x: the linear term does not rescale, so the
// perspective only scales the offset. O(1) per delta and evaluation.
class HalfspaceEvaluator : public VectorDriftEvaluator {
 public:
  explicit HalfspaceEvaluator(const HalfspaceSafeFunction* fn)
      : VectorDriftEvaluator(fn->dimension()), fn_(fn) {}

  void ApplyDelta(size_t index, double delta) override {
    s_ += fn_->unit_normal()[index] * delta;
    x_[index] += delta;
  }

  double Value() const override { return fn_->offset() - s_; }

  double ValueAtScale(double lambda) const override {
    return lambda * fn_->offset() - s_;
  }

  void Reset() override {
    x_.SetZero();
    s_ = 0.0;
  }

  std::unique_ptr<DriftEvaluator> Clone() const override {
    return std::make_unique<HalfspaceEvaluator>(*this);
  }

 private:
  const HalfspaceSafeFunction* fn_;
  double s_ = 0.0;  // n·x
};

}  // namespace

HalfspaceSafeFunction::HalfspaceSafeFunction(RealVector normal, double offset)
    : normal_(std::move(normal)) {
  const double len = normal_.Norm();
  FGM_CHECK_GT(len, 0.0);
  normal_ *= 1.0 / len;
  // The caller specifies the offset for the *normalized* constraint.
  offset_ = offset;
  FGM_CHECK_LT(offset_, 0.0);
}

double HalfspaceSafeFunction::Eval(const RealVector& x) const {
  return offset_ - normal_.Dot(x);
}

std::unique_ptr<DriftEvaluator> HalfspaceSafeFunction::MakeEvaluator() const {
  return std::make_unique<HalfspaceEvaluator>(this);
}

}  // namespace fgm
