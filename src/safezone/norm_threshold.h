// ℓp-norm threshold safe function: φ(x) = ‖x + E‖_p - T.
//
// This is the safe function of the paper's §3 (complexity results for F_p
// moments): the F_p moment of a frequency vector S is ‖S‖_p^p, and
// selecting the un-raised norm form yields the better (level-minimal)
// quiescent region while matching the asymptotics. Convex for p ≥ 1.
//
// Lipschitz: w.r.t. the Euclidean norm, ‖v‖_p ≤ ‖v‖_2 for p ≥ 2 (so
// nonexpansive), while for 1 ≤ p < 2 the constant is D^{1/p - 1/2}.

#ifndef FGM_SAFEZONE_NORM_THRESHOLD_H_
#define FGM_SAFEZONE_NORM_THRESHOLD_H_

#include <memory>

#include "safezone/safe_function.h"
#include "util/real_vector.h"

namespace fgm {

class LpNormThreshold : public SafeFunction {
 public:
  /// φ(x) = ‖x + reference‖_p - threshold. Requires p >= 1 and
  /// ‖reference‖_p < threshold (so φ(0) < 0).
  LpNormThreshold(RealVector reference, double p, double threshold);

  size_t dimension() const override { return reference_.dim(); }
  double Eval(const RealVector& x) const override;
  double AtZero() const override;
  std::unique_ptr<DriftEvaluator> MakeEvaluator() const override;
  double LipschitzBound() const override;

  const RealVector& reference() const { return reference_; }
  double p() const { return p_; }
  double threshold() const { return threshold_; }

 private:
  RealVector reference_;
  double p_;
  double threshold_;
};

}  // namespace fgm

#endif  // FGM_SAFEZONE_NORM_THRESHOLD_H_
