#include "gm/gm_protocol.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fgm {

void LoadDrift(DriftEvaluator* evaluator, const RealVector& value) {
  evaluator->Reset();
  for (size_t i = 0; i < value.dim(); ++i) {
    if (value[i] != 0.0) evaluator->ApplyDelta(i, value[i]);
  }
}

namespace {

std::unique_ptr<Transport> MakeGmTransport(const GmConfig& config,
                                           int num_sites) {
  if (config.net.enabled()) {
    return std::make_unique<sim::EventNetwork>(num_sites, config.net);
  }
  return MakeTransport(config.transport, num_sites);
}

}  // namespace

GmProtocol::GmProtocol(const ContinuousQuery* query, int num_sites,
                       GmConfig config)
    : query_(query),
      sites_k_(num_sites),
      config_(config),
      transport_(MakeGmTransport(config, num_sites)),
      rng_(config.seed),
      estimate_(query->dimension()),
      sites_(static_cast<size_t>(num_sites)) {
  FGM_CHECK(query != nullptr);
  FGM_CHECK_GE(num_sites, 1);
  // GM has no crash/rejoin handshake: a fault plan would strand a site.
  FGM_CHECK(config_.net.fault_plan.empty());
  if (config_.net.enabled()) {
    sim_ = static_cast<sim::EventNetwork*>(transport_.get());
  }
  trace_ = config_.trace;
  if (trace_ != nullptr) transport_->set_trace(trace_);
  if (config_.metrics != nullptr) {
    transport_->set_metrics(config_.metrics);
    sketch_timer_ = config_.metrics->GetTimer("sketch_update");
    safe_fn_timer_ = config_.metrics->GetTimer("safe_fn_eval");
  }
  StartRound();
}

void GmProtocol::StartRound() {
  ++full_syncs_;
  query_value_ = query_->Evaluate(estimate_);
  thresholds_ = query_->Thresholds(estimate_);
  safe_fn_ = query_->MakeSafeFunction(estimate_);
  FGM_CHECK_LT(safe_fn_->AtZero(), 0.0);
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kRoundStart;
    e.round = full_syncs_;
    e.k = sites_k_;
    e.value = safe_fn_->AtZero();
    // eps stays 0: GM rounds have no subround machinery to certify.
    trace_->Emit(e);
  }
  for (int i = 0; i < sites_k_; ++i) {
    transport_->ShipSafeZone(i, SafeZoneMsg{estimate_});
    Site& site = sites_[static_cast<size_t>(i)];
    // Wrapped with the FGM_PARANOID cross-check when the env var is set.
    site.evaluator =
        MakeCheckedEvaluator(safe_fn_.get(), safe_fn_->MakeEvaluator());
    site.log.Reset();
    site.updates_since_known = 0;
    site.known = RealVector(query_->dimension());
  }
}

void GmProtocol::ProcessRecord(const StreamRecord& record) {
  if (sim_ != nullptr) sim_->Advance(1);
  double value = 0.0;
  const int64_t weight = LocalProcess(record, &value);
  if (weight > 0) {
    CommitEvent(LocalEvent{0, record.site, weight, value});
  }
}

int64_t GmProtocol::LocalProcess(const StreamRecord& record, double* value) {
  FGM_CHECK(record.site >= 0 && record.site < sites_k_);
  Site& site = sites_[static_cast<size_t>(record.site)];
  site.scratch.clear();
  {
    ScopedTimer timed(sketch_timer_);
    query_->MapRecord(record, &site.scratch);
  }
  site.log.Record(record, query_->dimension());
  double v;
  {
    ScopedTimer timed(safe_fn_timer_);
    for (const CellUpdate& u : site.scratch) {
      site.evaluator->ApplyDelta(u.index, u.delta);
    }
    v = site.evaluator->Value();
  }
  ++site.updates_since_known;
  if (value != nullptr) *value = v;
  return v > 0.0 ? 1 : 0;
}

int64_t GmProtocol::LocalProcessBatch(const StreamRecord* base,
                                      const int64_t* positions, int64_t n,
                                      int64_t budget, int32_t shard,
                                      std::vector<LocalEvent>* events) {
  Site& site = sites_[static_cast<size_t>(shard)];
  int64_t own_weight = 0;
  int64_t processed = 0;
  // Map in blocks through the batched projection, then apply per record:
  // the violation test needs each record's post-update value, but the
  // hash-family work amortizes over the whole block.
  constexpr int64_t kMapBlock = 512;
  std::vector<CellUpdate>& deltas = site.scratch;
  std::vector<size_t> ends;
  for (int64_t start = 0; start < n && own_weight < budget;
       start += kMapBlock) {
    const int64_t m = std::min(kMapBlock, n - start);
    deltas.clear();
    ends.clear();
    {
      ScopedTimer timed(sketch_timer_);
      query_->MapRecordBatch(base, positions + start, m, &deltas, &ends);
    }
    ScopedTimer timed(safe_fn_timer_);
    size_t delta_begin = 0;
    for (int64_t j = 0; j < m; ++j) {
      const int64_t pos = positions[start + j];
      site.log.Record(base[pos], query_->dimension());
      const size_t delta_end = ends[static_cast<size_t>(j)];
      for (size_t u = delta_begin; u < delta_end; ++u) {
        site.evaluator->ApplyDelta(deltas[u].index, deltas[u].delta);
      }
      delta_begin = delta_end;
      const double v = site.evaluator->Value();
      ++site.updates_since_known;
      ++processed;
      if (v > 0.0) {
        events->push_back(LocalEvent{pos, shard, 1, v});
        if (++own_weight >= budget) break;
      }
    }
  }
  return processed;
}

bool GmProtocol::CommitEvent(const LocalEvent& event) {
  ++violations_;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kThresholdCross;
    e.round = full_syncs_;
    e.site = event.site;
    e.value = event.value;
    e.label = "local-violation";
    trace_->Emit(e);
  }
  HandleViolation(event.site);
  return true;
}

void GmProtocol::SaveCheckpoint(int shard) {
  Site& site = sites_[static_cast<size_t>(shard)];
  site.saved_evaluator = site.evaluator->Clone();
  site.saved_mark = site.log.MarkPosition();
  site.saved_updates_since_known = site.updates_since_known;
  site.checkpoint_valid = true;
}

void GmProtocol::RestoreCheckpoint(int shard) {
  Site& site = sites_[static_cast<size_t>(shard)];
  FGM_CHECK(site.checkpoint_valid);
  site.evaluator = std::move(site.saved_evaluator);
  site.log.Rewind(site.saved_mark);
  site.updates_since_known = site.saved_updates_since_known;
  site.checkpoint_valid = false;
}

const RealVector& GmProtocol::CollectDrift(int site_id) {
  Site& site = sites_[static_cast<size_t>(site_id)];
  // The site ships the cheaper of its dense drift and the raw updates
  // since the coordinator last knew it (§2.1's min(D, n) + 1 accounting).
  const DriftFlushMsg delivered = transport_->SendDriftFlush(
      site_id, DriftFlushMsg::ForFlush(site.evaluator->drift(),
                                       site.updates_since_known, site.log));
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kDriftFlush;
    e.round = full_syncs_;
    e.site = site_id;
    e.words = delivered.Words();
    e.count = delivered.update_count;
    trace_->Emit(e);
  }
  if (delivered.drift.dim() != 0) {
    site.known = delivered.drift;
  } else {
    // Verbatim: re-project the delta updates on top of the drift the
    // coordinator already knows (bit-exact, same deltas in the same
    // order as the site applied them).
    ReprojectRawUpdates(*query_, site_id, delivered.raw, &site.known);
  }
  site.log.Reset();
  site.updates_since_known = 0;
  return site.known;
}

void GmProtocol::HandleViolation(int violator) {
  const double k = static_cast<double>(sites_k_);

  // The violator reports itself (1 control word) and ships its drift.
  transport_->SendControl(violator, ControlMsg{ControlOp::kViolation});
  RealVector sum = CollectDrift(violator);
  std::vector<int> collected = {violator};

  // Candidate peers ordered by how deep inside the zone they sit: the
  // coordinator polls the one-word φ-values (k words each way) and
  // collects from the most-negative sites first, which keeps the
  // rebalancing set small. Ties/noise are broken by the shuffled base
  // order, as in the randomized policy of [28].
  std::vector<int> peers;
  for (int i = 0; i < sites_k_; ++i) {
    if (i != violator) peers.push_back(i);
  }
  for (size_t i = peers.size(); i > 1; --i) {
    std::swap(peers[i - 1], peers[rng_.NextBounded(i)]);
  }
  if (config_.rebalance) {
    std::vector<double> phi(static_cast<size_t>(sites_k_), 0.0);
    for (int i = 0; i < sites_k_; ++i) {
      if (i == violator) continue;
      transport_->ShipControl(i, ControlMsg{ControlOp::kPollPhi});
      const PhiValueMsg reply = transport_->SendPhiValue(
          i, PhiValueMsg{sites_[static_cast<size_t>(i)].evaluator->Value()});
      phi[static_cast<size_t>(i)] = reply.value;
    }
    std::stable_sort(peers.begin(), peers.end(), [&](int a, int b) {
      return phi[static_cast<size_t>(a)] < phi[static_cast<size_t>(b)];
    });
  }

  RealVector avg(query_->dimension());
  const double slack_level = config_.slack_margin * safe_fn_->AtZero();
  auto balanced = [&]() {
    avg = sum;
    avg *= 1.0 / static_cast<double>(collected.size());
    return safe_fn_->Eval(avg) < slack_level;
  };

  if (config_.rebalance) {
    size_t next_peer = 0;
    while (!balanced() && next_peer < peers.size()) {
      const int peer = peers[next_peer++];
      transport_->ShipControl(peer, ControlMsg{ControlOp::kDriftRequest});
      sum += CollectDrift(peer);
      collected.push_back(peer);
    }
    if (balanced() && collected.size() < static_cast<size_t>(sites_k_)) {
      // Assign the common average back to the collected sites; the drift
      // sum (hence the global state) is unchanged. When every site had to
      // be collected we fall through to the full sync instead, which costs
      // the same upstream but refreshes the safe zone around the new E.
      ++partial_rebalances_;
      if (trace_ != nullptr) {
        // GM partial rebalance; lambda records the collected fraction.
        TraceEvent e;
        e.kind = TraceEventKind::kRebalance;
        e.round = full_syncs_;
        e.lambda = static_cast<double>(collected.size()) / k;
        trace_->Emit(e);
      }
      for (int site_id : collected) {
        const SafeZoneMsg delivered =
            transport_->ShipSafeZone(site_id, SafeZoneMsg{avg});
        Site& site = sites_[static_cast<size_t>(site_id)];
        LoadDrift(site.evaluator.get(), delivered.reference);
        site.known = delivered.reference;
        site.log.Reset();
      }
      return;
    }
    // Collect any stragglers for the full sync.
    while (next_peer < peers.size()) {
      const int peer = peers[next_peer++];
      transport_->ShipControl(peer, ControlMsg{ControlOp::kDriftRequest});
      sum += CollectDrift(peer);
      collected.push_back(peer);
    }
  } else {
    // Without rebalancing, collect everything for the full sync.
    for (int peer : peers) {
      transport_->ShipControl(peer, ControlMsg{ControlOp::kDriftRequest});
      sum += CollectDrift(peer);
      collected.push_back(peer);
    }
  }

  // Full synchronization: all drifts are in `sum` (rebalancing exhausted
  // every site), fold into E and start a new round.
  FGM_CHECK_EQ(collected.size(), static_cast<size_t>(sites_k_));
  estimate_.Axpy(1.0 / k, sum);
  StartRound();
}

}  // namespace fgm
